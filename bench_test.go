// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations of the design choices called out in DESIGN.md.
//
// Each benchmark runs a complete deterministic simulation per iteration
// and reports the headline quantity as a custom metric (Mbit/s, µs RTT,
// µs jitter), so `go test -bench=. -benchmem` reproduces the paper's
// numbers directly in the benchmark output. Durations use the Quick
// calibration; run cmd/netco-bench for paper-length runs.
package netco_test

import (
	"fmt"
	"testing"
	"time"

	"netco"
)

func quick() netco.Params {
	return netco.DefaultParams().Quick()
}

// BenchmarkTable1Row regenerates one Table I column (TCP + UDP + RTT) per
// scenario.
func BenchmarkTable1Row(b *testing.B) {
	for _, s := range netco.TableScenarios {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := quick()
			var tcp, udp float64
			var rtt time.Duration
			for i := 0; i < b.N; i++ {
				tcp = netco.RunTCP(p, s).Mbps
				udp = netco.RunUDPMax(p, s).Mbps
				rtt = netco.RunPing(p, s).AvgRTT
			}
			b.ReportMetric(tcp, "tcp-Mbit/s")
			b.ReportMetric(udp, "udp-Mbit/s")
			b.ReportMetric(float64(rtt.Microseconds()), "rtt-µs")
		})
	}
}

// BenchmarkFig4TCPThroughput regenerates Fig. 4 (TCP throughput, six
// scenarios).
func BenchmarkFig4TCPThroughput(b *testing.B) {
	for _, s := range netco.AllScenarios {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := quick()
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = netco.RunTCP(p, s).Mbps
			}
			b.ReportMetric(mbps, "Mbit/s")
		})
	}
}

// BenchmarkFig5UDPThroughput regenerates Fig. 5 (max UDP throughput at
// <0.5 % loss, six scenarios).
func BenchmarkFig5UDPThroughput(b *testing.B) {
	for _, s := range netco.AllScenarios {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := quick()
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = netco.RunUDPMax(p, s).Mbps
			}
			b.ReportMetric(mbps, "Mbit/s")
		})
	}
}

// BenchmarkFig6LossCorrelation regenerates Fig. 6 (throughput↔loss on
// Central3).
func BenchmarkFig6LossCorrelation(b *testing.B) {
	p := quick()
	rates := []float64{100e6, 250e6, 400e6}
	var knee float64
	for i := 0; i < b.N; i++ {
		pts := netco.RunFig6(p, rates)
		knee = pts[len(pts)-1].Loss
	}
	b.ReportMetric(knee*100, "loss-%@400Mbit/s")
}

// BenchmarkFig7PingRTT regenerates Fig. 7 (echo RTT, five scenarios).
func BenchmarkFig7PingRTT(b *testing.B) {
	for _, s := range netco.TableScenarios {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := quick()
			var rtt time.Duration
			for i := 0; i < b.N; i++ {
				rtt = netco.RunPing(p, s).AvgRTT
			}
			b.ReportMetric(float64(rtt.Microseconds()), "rtt-µs")
		})
	}
}

// BenchmarkFig8Jitter regenerates Fig. 8 (jitter vs UDP packet size) for
// the reference scenario.
func BenchmarkFig8Jitter(b *testing.B) {
	for _, size := range []int{128, 1470} {
		size := size
		b.Run(fmt.Sprintf("Central3/%dB", size), func(b *testing.B) {
			p := quick()
			var jitter time.Duration
			for i := 0; i < b.N; i++ {
				pts := netco.RunJitter(p, netco.Central3, []int{size})
				jitter = pts[0].Jitter
			}
			b.ReportMetric(float64(jitter.Microseconds()), "jitter-µs")
		})
	}
}

// BenchmarkCaseStudy regenerates the §VI datacenter-attack case study.
func BenchmarkCaseStudy(b *testing.B) {
	p := netco.DefaultParams()
	var r netco.CaseStudyResult
	for i := 0; i < b.N; i++ {
		r = netco.RunCaseStudy(p)
	}
	b.ReportMetric(float64(r.Attack.RequestsAtFirewall), "attack-reqs-at-fw")
	b.ReportMetric(float64(r.Protected.ResponsesAtVM), "protected-responses")
}

// BenchmarkVirtualNetCo regenerates the §VII virtualized-combiner
// demonstration.
func BenchmarkVirtualNetCo(b *testing.B) {
	p := quick()
	var r netco.VirtualResult
	for i := 0; i < b.N; i++ {
		r = netco.RunVirtual(p)
	}
	b.ReportMetric(r.CombinedMbps, "combined-Mbit/s")
	b.ReportMetric(r.BaselineMbps, "baseline-Mbit/s")
}

// BenchmarkAblationCompareMode compares the three copy-equality notions
// (§III: bit-by-bit, hashed, header-only) on Central3 UDP throughput.
func BenchmarkAblationCompareMode(b *testing.B) {
	modes := []struct {
		name string
		mode netco.CompareMode
	}{
		{"bitexact", netco.CompareBitExact},
		{"hashed", netco.CompareHashed},
		{"header", netco.CompareHeader},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			p := quick()
			p.CompareMode = m.mode
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = netco.RunUDPMax(p, netco.Central3).Mbps
			}
			b.ReportMetric(mbps, "Mbit/s")
		})
	}
}

// BenchmarkAblationHoldTimeout sweeps the compare's bounded waiting time
// (§IV: too short risks suppressing slow honest copies, too long grows
// the cache).
func BenchmarkAblationHoldTimeout(b *testing.B) {
	for _, hold := range []time.Duration{2 * time.Millisecond, 20 * time.Millisecond, 200 * time.Millisecond} {
		hold := hold
		b.Run(hold.String(), func(b *testing.B) {
			p := quick()
			p.CompareHold = hold
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = netco.RunUDPMax(p, netco.Central3).Mbps
			}
			b.ReportMetric(mbps, "Mbit/s")
		})
	}
}

// BenchmarkEngineIngest is the microbenchmark of the compare decision
// core itself: cost per 3-copy majority decision.
func BenchmarkEngineIngest(b *testing.B) {
	// Covered in detail by internal/core benches; this repo-level bench
	// tracks the end-to-end simulator event rate instead: packets
	// through a Central3 testbed per wall second.
	p := quick()
	tb := netco.BuildTestbed(p.TestbedParams(netco.Central3, nil))
	defer tb.Close()
	sink := netco.NewUDPSink(tb.H2, 5001)
	src := netco.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), netco.UDPSourceConfig{
		Rate: 100e6, PayloadSize: 1470,
	})
	src.Start()
	b.ReportAllocs()
	b.ResetTimer()
	start := tb.Sched.Executed()
	for i := 0; i < b.N; i++ {
		tb.Sched.RunFor(time.Millisecond)
	}
	b.StopTimer()
	executed := tb.Sched.Executed() - start
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(executed)/secs, "events/s")
	}
	src.Stop()
	if b.N > 100 && sink.Stats().Unique == 0 {
		b.Fatal("no traffic flowed")
	}
}

// BenchmarkArchitectures compares the three compare placements at k=3
// (out-of-band, inband middlebox, controller) — the §IX comparison.
func BenchmarkArchitectures(b *testing.B) {
	for _, s := range []netco.Scenario{netco.Central3, netco.Inline3, netco.POX3} {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			p := quick()
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = netco.RunTCP(p, s).Mbps
			}
			b.ReportMetric(mbps, "tcp-Mbit/s")
		})
	}
}
