// Package openflow implements the OpenFlow 1.0 subset the NetCo prototype
// is built on: the 12-tuple match with wildcards, the header-rewriting and
// output actions, a priority flow table with idle/hard timeouts and
// counters, and a wire codec for the protocol messages exchanged between
// switches and the controller (Hello, Echo, Features, PacketIn, PacketOut,
// FlowMod, FlowRemoved, PortStatus, flow/port Stats).
//
// The paper's prototype "is based on the OpenFlow 1.0 standard" (§IV); its
// flow rules only match the MAC destination and rewrite the MAC source, but
// the full 1.0 match/action model is implemented here so the §VI case-study
// attack (VLAN rewriting, mirroring) and the §VII virtualized combiner
// (VLAN-tagged path splitting) can be expressed with real flow rules.
package openflow

import (
	"fmt"
	"strings"

	"netco/internal/packet"
)

// Wildcard bits, as in ofp_flow_wildcards (OpenFlow 1.0 §5.2.3).
const (
	WildcardInPort  uint32 = 1 << 0
	WildcardDlVLAN  uint32 = 1 << 1
	WildcardDlSrc   uint32 = 1 << 2
	WildcardDlDst   uint32 = 1 << 3
	WildcardDlType  uint32 = 1 << 4
	WildcardNwProto uint32 = 1 << 5
	WildcardTpSrc   uint32 = 1 << 6
	WildcardTpDst   uint32 = 1 << 7

	nwSrcShift               = 8
	nwDstShift               = 14
	wildcardNwSrcMask        = 0x3f << nwSrcShift
	wildcardNwDstMask        = 0x3f << nwDstShift
	WildcardNwSrcAll         = 32 << nwSrcShift
	WildcardNwDstAll         = 32 << nwDstShift
	WildcardDlVLANPCP        = 1 << 20
	WildcardNwTOS            = 1 << 21
	WildcardAll       uint32 = 0x3fffff
)

// VLANNone is the dl_vlan value that matches untagged frames
// (OFP_VLAN_NONE).
const VLANNone uint16 = 0xffff

// Match is the OpenFlow 1.0 12-tuple flow match. A field takes part in
// matching only when its wildcard bit is clear (for nw_src/nw_dst, when the
// prefix length is greater than zero).
type Match struct {
	Wildcards uint32
	InPort    uint16
	DlSrc     packet.MAC
	DlDst     packet.MAC
	DlVLAN    uint16 // VLANNone matches untagged frames
	DlVLANPCP uint8
	DlType    uint16
	NwTOS     uint8
	NwProto   uint8
	NwSrc     packet.IPAddr
	NwDst     packet.IPAddr
	TpSrc     uint16
	TpDst     uint16
}

// MatchAll returns the fully wildcarded match.
func MatchAll() Match {
	return Match{Wildcards: WildcardAll}
}

// The With* builders clear one wildcard and set the field, enabling
// literal-style rule construction:
//
//	openflow.MatchAll().WithDlDst(mac).WithInPort(2)

// WithInPort matches the ingress port.
func (m Match) WithInPort(p uint16) Match {
	m.Wildcards &^= WildcardInPort
	m.InPort = p
	return m
}

// WithDlSrc matches the Ethernet source address.
func (m Match) WithDlSrc(mac packet.MAC) Match {
	m.Wildcards &^= WildcardDlSrc
	m.DlSrc = mac
	return m
}

// WithDlDst matches the Ethernet destination address.
func (m Match) WithDlDst(mac packet.MAC) Match {
	m.Wildcards &^= WildcardDlDst
	m.DlDst = mac
	return m
}

// WithDlVLAN matches the VLAN ID (VLANNone for untagged frames).
func (m Match) WithDlVLAN(vid uint16) Match {
	m.Wildcards &^= WildcardDlVLAN
	m.DlVLAN = vid
	return m
}

// WithDlVLANPCP matches the VLAN priority.
func (m Match) WithDlVLANPCP(pcp uint8) Match {
	m.Wildcards &^= WildcardDlVLANPCP
	m.DlVLANPCP = pcp
	return m
}

// WithDlType matches the EtherType.
func (m Match) WithDlType(t uint16) Match {
	m.Wildcards &^= WildcardDlType
	m.DlType = t
	return m
}

// WithNwProto matches the IP protocol (requires DlType IPv4 to be
// meaningful, as in OpenFlow 1.0).
func (m Match) WithNwProto(p uint8) Match {
	m.Wildcards &^= WildcardNwProto
	m.NwProto = p
	return m
}

// WithNwTOS matches the IP TOS byte.
func (m Match) WithNwTOS(t uint8) Match {
	m.Wildcards &^= WildcardNwTOS
	m.NwTOS = t
	return m
}

// WithNwSrc matches an IPv4 source prefix of the given length (1–32).
func (m Match) WithNwSrc(ip packet.IPAddr, prefixLen int) Match {
	m.Wildcards = m.Wildcards&^uint32(wildcardNwSrcMask) | uint32(32-prefixLen)<<nwSrcShift
	m.NwSrc = ip
	return m
}

// WithNwDst matches an IPv4 destination prefix of the given length (1–32).
func (m Match) WithNwDst(ip packet.IPAddr, prefixLen int) Match {
	m.Wildcards = m.Wildcards&^uint32(wildcardNwDstMask) | uint32(32-prefixLen)<<nwDstShift
	m.NwDst = ip
	return m
}

// WithTpSrc matches the transport source port (ICMP type for ICMP).
func (m Match) WithTpSrc(p uint16) Match {
	m.Wildcards &^= WildcardTpSrc
	m.TpSrc = p
	return m
}

// WithTpDst matches the transport destination port (ICMP code for ICMP).
func (m Match) WithTpDst(p uint16) Match {
	m.Wildcards &^= WildcardTpDst
	m.TpDst = p
	return m
}

// nwSrcIgnoreBits returns how many low bits of nw_src are wildcarded
// (>= 32 disables the field entirely).
func (m Match) nwSrcIgnoreBits() uint32 { return (m.Wildcards >> nwSrcShift) & 0x3f }

func (m Match) nwDstIgnoreBits() uint32 { return (m.Wildcards >> nwDstShift) & 0x3f }

func prefixMatches(want, got packet.IPAddr, ignoreBits uint32) bool {
	if ignoreBits >= 32 {
		return true
	}
	mask := ^uint32(0) << ignoreBits
	return want.Uint32()&mask == got.Uint32()&mask
}

// Matches reports whether a packet arriving on inPort satisfies the match.
// Semantics follow OpenFlow 1.0 §3.4: L3 fields are consulted only for
// IPv4 frames, L4 ports only for TCP/UDP (and ICMP type/code via
// tp_src/tp_dst).
func (m Match) Matches(inPort uint16, pkt *packet.Packet) bool {
	if m.Wildcards&WildcardInPort == 0 && inPort != m.InPort {
		return false
	}
	if m.Wildcards&WildcardDlSrc == 0 && pkt.Eth.Src != m.DlSrc {
		return false
	}
	if m.Wildcards&WildcardDlDst == 0 && pkt.Eth.Dst != m.DlDst {
		return false
	}
	if m.Wildcards&WildcardDlVLAN == 0 {
		if pkt.Eth.VLAN == nil {
			if m.DlVLAN != VLANNone {
				return false
			}
		} else if m.DlVLAN == VLANNone || pkt.Eth.VLAN.VID != m.DlVLAN&0x0fff {
			return false
		}
	}
	if m.Wildcards&WildcardDlVLANPCP == 0 {
		if pkt.Eth.VLAN == nil || pkt.Eth.VLAN.PCP != m.DlVLANPCP {
			return false
		}
	}
	if m.Wildcards&WildcardDlType == 0 && pkt.Eth.EtherType != m.DlType {
		return false
	}

	ip := pkt.IP
	if m.Wildcards&WildcardNwProto == 0 && (ip == nil || ip.Protocol != m.NwProto) {
		return false
	}
	if m.Wildcards&WildcardNwTOS == 0 && (ip == nil || ip.TOS != m.NwTOS) {
		return false
	}
	if bits := m.nwSrcIgnoreBits(); bits < 32 {
		if ip == nil || !prefixMatches(m.NwSrc, ip.Src, bits) {
			return false
		}
	}
	if bits := m.nwDstIgnoreBits(); bits < 32 {
		if ip == nil || !prefixMatches(m.NwDst, ip.Dst, bits) {
			return false
		}
	}

	if m.Wildcards&WildcardTpSrc == 0 {
		if got, ok := tpSrcOf(pkt); !ok || got != m.TpSrc {
			return false
		}
	}
	if m.Wildcards&WildcardTpDst == 0 {
		if got, ok := tpDstOf(pkt); !ok || got != m.TpDst {
			return false
		}
	}
	return true
}

func tpSrcOf(pkt *packet.Packet) (uint16, bool) {
	switch {
	case pkt.TCP != nil:
		return pkt.TCP.SrcPort, true
	case pkt.UDP != nil:
		return pkt.UDP.SrcPort, true
	case pkt.ICMP != nil:
		return uint16(pkt.ICMP.Type), true
	}
	return 0, false
}

func tpDstOf(pkt *packet.Packet) (uint16, bool) {
	switch {
	case pkt.TCP != nil:
		return pkt.TCP.DstPort, true
	case pkt.UDP != nil:
		return pkt.UDP.DstPort, true
	case pkt.ICMP != nil:
		return uint16(pkt.ICMP.Code), true
	}
	return 0, false
}

// Subsumes reports whether every packet matched by other is also matched
// by m (m is equally or less specific). Used for non-strict flow deletion.
func (m Match) Subsumes(other Match) bool {
	simple := []uint32{
		WildcardInPort, WildcardDlVLAN, WildcardDlSrc, WildcardDlDst,
		WildcardDlType, WildcardNwProto, WildcardTpSrc, WildcardTpDst,
		WildcardDlVLANPCP, WildcardNwTOS,
	}
	for _, bit := range simple {
		if m.Wildcards&bit == 0 {
			if other.Wildcards&bit != 0 {
				return false
			}
			if !fieldEqual(bit, m, other) {
				return false
			}
		}
	}
	if mb, ob := m.nwSrcIgnoreBits(), other.nwSrcIgnoreBits(); mb < 32 {
		if ob > mb || !prefixMatches(m.NwSrc, other.NwSrc, mb) {
			return false
		}
	}
	if mb, ob := m.nwDstIgnoreBits(), other.nwDstIgnoreBits(); mb < 32 {
		if ob > mb || !prefixMatches(m.NwDst, other.NwDst, mb) {
			return false
		}
	}
	return true
}

func fieldEqual(bit uint32, a, b Match) bool {
	switch bit {
	case WildcardInPort:
		return a.InPort == b.InPort
	case WildcardDlVLAN:
		return a.DlVLAN == b.DlVLAN
	case WildcardDlSrc:
		return a.DlSrc == b.DlSrc
	case WildcardDlDst:
		return a.DlDst == b.DlDst
	case WildcardDlType:
		return a.DlType == b.DlType
	case WildcardNwProto:
		return a.NwProto == b.NwProto
	case WildcardTpSrc:
		return a.TpSrc == b.TpSrc
	case WildcardTpDst:
		return a.TpDst == b.TpDst
	case WildcardDlVLANPCP:
		return a.DlVLANPCP == b.DlVLANPCP
	case WildcardNwTOS:
		return a.NwTOS == b.NwTOS
	}
	return false
}

// String renders the non-wildcarded fields, nicest-first, for diagnostics.
func (m Match) String() string {
	if m.Wildcards&WildcardAll == WildcardAll &&
		m.nwSrcIgnoreBits() >= 32 && m.nwDstIgnoreBits() >= 32 {
		return "any"
	}
	var parts []string
	add := func(bit uint32, s string) {
		if m.Wildcards&bit == 0 {
			parts = append(parts, s)
		}
	}
	add(WildcardInPort, fmt.Sprintf("in_port=%d", m.InPort))
	add(WildcardDlSrc, "dl_src="+m.DlSrc.String())
	add(WildcardDlDst, "dl_dst="+m.DlDst.String())
	add(WildcardDlVLAN, fmt.Sprintf("dl_vlan=%d", m.DlVLAN))
	add(WildcardDlVLANPCP, fmt.Sprintf("dl_vlan_pcp=%d", m.DlVLANPCP))
	add(WildcardDlType, fmt.Sprintf("dl_type=%#04x", m.DlType))
	add(WildcardNwTOS, fmt.Sprintf("nw_tos=%d", m.NwTOS))
	add(WildcardNwProto, fmt.Sprintf("nw_proto=%d", m.NwProto))
	if bits := m.nwSrcIgnoreBits(); bits < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", m.NwSrc, 32-bits))
	}
	if bits := m.nwDstIgnoreBits(); bits < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", m.NwDst, 32-bits))
	}
	add(WildcardTpSrc, fmt.Sprintf("tp_src=%d", m.TpSrc))
	add(WildcardTpDst, fmt.Sprintf("tp_dst=%d", m.TpDst))
	return strings.Join(parts, ",")
}
