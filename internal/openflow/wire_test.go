package openflow

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"netco/internal/packet"
)

func roundTrip(t *testing.T, m Message, xid uint32) Message {
	t.Helper()
	wire := Encode(m, xid)
	got, gotXid, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode(%T): %v", m, err)
	}
	if gotXid != xid {
		t.Fatalf("xid = %d, want %d", gotXid, xid)
	}
	return got
}

func TestEncodeDecodeSimpleMessages(t *testing.T) {
	msgs := []Message{
		Hello{},
		FeaturesRequest{},
		BarrierRequest{},
		BarrierReply{},
		EchoRequest{Data: []byte("ping")},
		EchoReply{Data: []byte("pong")},
		Error{ErrType: 1, Code: 2, Data: []byte("bad")},
	}
	for i, m := range msgs {
		got := roundTrip(t, m, uint32(i))
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %T: got %+v, want %+v", m, got, m)
		}
	}
}

func TestEncodeDecodeFeaturesReply(t *testing.T) {
	m := FeaturesReply{
		DatapathID:   0x0102030405060708,
		NBuffers:     256,
		NTables:      1,
		Capabilities: 0x87,
		ActionBits:   0xfff,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: packet.HostMAC(1), Name: "eth1", Curr: 0x20},
			{PortNo: 2, HWAddr: packet.HostMAC(2), Name: "eth2", State: 1},
		},
	}
	got := roundTrip(t, m, 42)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodePacketIn(t *testing.T) {
	data := udpPkt().Marshal()
	m := PacketIn{
		BufferID: NoBuffer,
		TotalLen: uint16(len(data)),
		InPort:   3,
		Reason:   PacketInNoMatch,
		Data:     data,
	}
	got := roundTrip(t, m, 7)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v\nwant %+v", got, m)
	}
	// The embedded frame survives intact.
	if _, err := packet.Unmarshal(got.(PacketIn).Data); err != nil {
		t.Fatalf("embedded frame corrupted: %v", err)
	}
}

func TestEncodeDecodePacketOut(t *testing.T) {
	m := PacketOut{
		BufferID: NoBuffer,
		InPort:   PortNone,
		Actions:  []Action{SetDlSrc(packet.HostMAC(5)), Output(2)},
		Data:     udpPkt().Marshal(),
	}
	got := roundTrip(t, m, 1)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeFlowMod(t *testing.T) {
	m := FlowMod{
		Match:       MatchAll().WithDlDst(packet.HostMAC(2)).WithNwDst(packet.HostIP(2), 24),
		Cookie:      99,
		Command:     FlowAdd,
		IdleTimeout: 30,
		HardTimeout: 300,
		Priority:    1000,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Flags:       FlagSendFlowRem,
		Actions: []Action{
			SetVLANVID(10), SetVLANPCP(5), StripVLAN(),
			SetDlSrc(packet.HostMAC(1)), SetDlDst(packet.HostMAC(2)),
			SetNwSrc(packet.HostIP(1)), SetNwDst(packet.HostIP(2)),
			SetNwTOS(0x48), SetTpSrc(80), SetTpDst(443),
			OutputController(128), Output(4),
		},
	}
	got := roundTrip(t, m, 0xdeadbeef)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeFlowRemoved(t *testing.T) {
	m := FlowRemoved{
		Match:       MatchAll().WithDlDst(packet.HostMAC(2)),
		Cookie:      7,
		Priority:    10,
		Reason:      RemovedIdleTimeout,
		DurationSec: 12,
		IdleTimeout: 30,
		PacketCount: 1000,
		ByteCount:   1500000,
	}
	got := roundTrip(t, m, 3)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodePortStatus(t *testing.T) {
	m := PortStatus{
		Reason: 2,
		Desc:   PhyPort{PortNo: 4, HWAddr: packet.HostMAC(4), Name: "r1-eth0", State: 1},
	}
	got := roundTrip(t, m, 9)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeStats(t *testing.T) {
	req := StatsRequest{
		StatsType: StatsFlow,
		Flow:      &FlowStatsRequest{Match: MatchAll(), TableID: 0xff, OutPort: PortNone},
	}
	if got := roundTrip(t, req, 11); !reflect.DeepEqual(got, req) {
		t.Fatalf("flow stats request: got %+v\nwant %+v", got, req)
	}

	preq := StatsRequest{StatsType: StatsPort, Port: &PortStatsRequest{PortNo: PortNone}}
	if got := roundTrip(t, preq, 12); !reflect.DeepEqual(got, preq) {
		t.Fatalf("port stats request: got %+v\nwant %+v", got, preq)
	}

	rep := StatsReply{
		StatsType: StatsFlow,
		Flow: []FlowStats{
			{
				Match:       MatchAll().WithDlDst(packet.HostMAC(2)),
				DurationSec: 5,
				Priority:    100,
				Cookie:      1,
				PacketCount: 42,
				ByteCount:   63000,
				Actions:     []Action{Output(1)},
			},
			{Match: MatchAll(), Priority: 1, Actions: []Action{Output(2), Output(3)}},
		},
	}
	if got := roundTrip(t, rep, 13); !reflect.DeepEqual(got, rep) {
		t.Fatalf("flow stats reply: got %+v\nwant %+v", got, rep)
	}

	prep := StatsReply{
		StatsType: StatsPort,
		Port: []PortStats{
			{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 1000, TxBytes: 2000, RxDropped: 1, TxDropped: 2},
			{PortNo: 2},
		},
	}
	if got := roundTrip(t, prep, 14); !reflect.DeepEqual(got, prep) {
		t.Fatalf("port stats reply: got %+v\nwant %+v", got, prep)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short buffer: err = %v", err)
	}
	wire := Encode(Hello{}, 0)
	wire[0] = 0x04 // OpenFlow 1.3
	if _, _, err := Decode(wire); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v", err)
	}
	wire = Encode(FlowMod{Match: MatchAll(), Command: FlowAdd}, 0)
	wire[3] = 200 // declared length beyond buffer
	if _, _, err := Decode(wire); !errors.Is(err, ErrShortMessage) {
		t.Errorf("overlong declared length: err = %v", err)
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	full := Encode(FlowMod{Match: MatchAll(), Command: FlowAdd, Actions: []Action{Output(1)}}, 0)
	for cut := 9; cut < len(full); cut++ {
		b := append([]byte(nil), full[:cut]...)
		// Fix up the declared length so the header is self-consistent.
		b[2] = byte(cut >> 8)
		b[3] = byte(cut)
		if _, _, err := Decode(b); err == nil && cut < len(full)-8 {
			t.Errorf("truncated flow-mod at %d decoded successfully", cut)
		}
	}
}

// Property: match encoding round-trips for arbitrary field values.
func TestMatchWireRoundTripProperty(t *testing.T) {
	f := func(wc uint32, inPort uint16, src, dst packet.MAC, vlan uint16,
		pcp, tos, proto uint8, nwSrc, nwDst packet.IPAddr, tpSrc, tpDst uint16) bool {
		m := Match{
			Wildcards: wc & WildcardAll,
			InPort:    inPort,
			DlSrc:     src,
			DlDst:     dst,
			DlVLAN:    vlan,
			DlVLANPCP: pcp,
			DlType:    packet.EtherTypeIPv4,
			NwTOS:     tos,
			NwProto:   proto,
			NwSrc:     nwSrc,
			NwDst:     nwDst,
			TpSrc:     tpSrc,
			TpDst:     tpDst,
		}
		got, err := decodeMatch(encodeMatch(m))
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any FlowMod with a random action list survives the codec.
func TestFlowModWireRoundTripProperty(t *testing.T) {
	f := func(kinds []uint8, prio uint16, cookie uint64) bool {
		var actions []Action
		for _, k := range kinds {
			switch k % 8 {
			case 0:
				actions = append(actions, Output(uint16(k)))
			case 1:
				actions = append(actions, SetVLANVID(uint16(k)))
			case 2:
				actions = append(actions, StripVLAN())
			case 3:
				actions = append(actions, SetDlSrc(packet.HostMAC(uint32(k))))
			case 4:
				actions = append(actions, SetNwDst(packet.HostIP(uint32(k))))
			case 5:
				actions = append(actions, SetTpDst(uint16(k)*7))
			case 6:
				actions = append(actions, SetNwTOS(k))
			default:
				actions = append(actions, OutputController(64))
			}
		}
		m := FlowMod{
			Match:    MatchAll().WithInPort(prio % 16),
			Cookie:   cookie,
			Command:  FlowAdd,
			Priority: prio,
			BufferID: NoBuffer,
			OutPort:  PortNone,
			Actions:  actions,
		}
		got, _, err := Decode(Encode(m, 1))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeFlowMod(b *testing.B) {
	m := FlowMod{
		Match:    MatchAll().WithDlDst(packet.HostMAC(2)),
		Command:  FlowAdd,
		Priority: 100,
		Actions:  []Action{SetDlSrc(packet.HostMAC(1)), Output(2)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m, uint32(i))
	}
}

func BenchmarkDecodePacketIn(b *testing.B) {
	wire := Encode(PacketIn{BufferID: NoBuffer, InPort: 1, Data: udpPkt().Marshal()}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
