package openflow

import (
	"sort"

	"netco/internal/packet"
)

// This file implements tier 2 of the flow classifier: tuple-space search
// (Srinivasan/Suri/Varghese), the scheme OVS uses for its slow(er) path.
// Entries are grouped by their exact wildcard mask; within a group, the
// masked header tuple is an exact value, so each group is one hash-table
// lookup. Groups are searched in descending order of the highest priority
// they contain, with early exit once the best match found so far outranks
// every remaining group — so a lookup costs O(masks) hashes instead of
// O(entries) match evaluations, and real rule sets use very few distinct
// masks (the fat-tree case study uses exactly one: dl_dst).

// flowKey is the canonical masked header tuple: every field a mask
// inspects, with non-participating fields zeroed. It is a comparable
// value type so it can key a Go map without allocation.
type flowKey struct {
	inPort    uint16
	dlType    uint16
	dlVLAN    uint16
	tpSrc     uint16
	tpDst     uint16
	nwSrc     uint32
	nwDst     uint32
	dlSrc     packet.MAC
	dlDst     packet.MAC
	nwTOS     uint8
	nwProto   uint8
	dlVLANPCP uint8
}

// canonMask normalises a Wildcards value so that semantically identical
// masks land in the same tuple-space group: bits outside the defined set
// are cleared and nw_src/nw_dst ignore counts above 32 (which all mean
// "field fully wildcarded") are clamped to exactly 32.
func canonMask(wc uint32) uint32 {
	wc &= WildcardAll
	if bits := (wc >> nwSrcShift) & 0x3f; bits > 32 {
		wc = wc&^uint32(wildcardNwSrcMask) | 32<<nwSrcShift
	}
	if bits := (wc >> nwDstShift) & 0x3f; bits > 32 {
		wc = wc&^uint32(wildcardNwDstMask) | 32<<nwDstShift
	}
	return wc
}

// entryKey canonicalises a match into the masked tuple under its own
// (canonical) mask: participating fields keep their (masked) values,
// wildcarded fields are zeroed so that garbage in them cannot split a
// group. It mirrors Match.Matches field for field.
func entryKey(wc uint32, m Match) flowKey {
	var k flowKey
	if wc&WildcardInPort == 0 {
		k.inPort = m.InPort
	}
	if wc&WildcardDlSrc == 0 {
		k.dlSrc = m.DlSrc
	}
	if wc&WildcardDlDst == 0 {
		k.dlDst = m.DlDst
	}
	if wc&WildcardDlVLAN == 0 {
		if m.DlVLAN == VLANNone {
			k.dlVLAN = VLANNone
		} else {
			k.dlVLAN = m.DlVLAN & 0x0fff
		}
	}
	if wc&WildcardDlVLANPCP == 0 {
		k.dlVLANPCP = m.DlVLANPCP
	}
	if wc&WildcardDlType == 0 {
		k.dlType = m.DlType
	}
	if wc&WildcardNwProto == 0 {
		k.nwProto = m.NwProto
	}
	if wc&WildcardNwTOS == 0 {
		k.nwTOS = m.NwTOS
	}
	if bits := (wc >> nwSrcShift) & 0x3f; bits < 32 {
		k.nwSrc = m.NwSrc.Uint32() & (^uint32(0) << bits)
	}
	if bits := (wc >> nwDstShift) & 0x3f; bits < 32 {
		k.nwDst = m.NwDst.Uint32() & (^uint32(0) << bits)
	}
	if wc&WildcardTpSrc == 0 {
		k.tpSrc = m.TpSrc
	}
	if wc&WildcardTpDst == 0 {
		k.tpDst = m.TpDst
	}
	return k
}

// packetKey extracts the masked tuple of a packet under a group's mask.
// ok is false when the packet lacks a layer the mask inspects (no VLAN
// tag for a PCP match, no IPv4 for L3/L4 fields), in which case no entry
// of the group can match — the same early-outs Match.Matches takes.
func packetKey(wc uint32, inPort uint16, pkt *packet.Packet) (k flowKey, ok bool) {
	if wc&WildcardInPort == 0 {
		k.inPort = inPort
	}
	if wc&WildcardDlSrc == 0 {
		k.dlSrc = pkt.Eth.Src
	}
	if wc&WildcardDlDst == 0 {
		k.dlDst = pkt.Eth.Dst
	}
	if wc&WildcardDlVLAN == 0 {
		if pkt.Eth.VLAN == nil {
			k.dlVLAN = VLANNone
		} else {
			k.dlVLAN = pkt.Eth.VLAN.VID
		}
	}
	if wc&WildcardDlVLANPCP == 0 {
		if pkt.Eth.VLAN == nil {
			return k, false
		}
		k.dlVLANPCP = pkt.Eth.VLAN.PCP
	}
	if wc&WildcardDlType == 0 {
		k.dlType = pkt.Eth.EtherType
	}
	ip := pkt.IP
	if wc&WildcardNwProto == 0 {
		if ip == nil {
			return k, false
		}
		k.nwProto = ip.Protocol
	}
	if wc&WildcardNwTOS == 0 {
		if ip == nil {
			return k, false
		}
		k.nwTOS = ip.TOS
	}
	if bits := (wc >> nwSrcShift) & 0x3f; bits < 32 {
		if ip == nil {
			return k, false
		}
		k.nwSrc = ip.Src.Uint32() & (^uint32(0) << bits)
	}
	if bits := (wc >> nwDstShift) & 0x3f; bits < 32 {
		if ip == nil {
			return k, false
		}
		k.nwDst = ip.Dst.Uint32() & (^uint32(0) << bits)
	}
	if wc&WildcardTpSrc == 0 {
		got, have := tpSrcOf(pkt)
		if !have {
			return k, false
		}
		k.tpSrc = got
	}
	if wc&WildcardTpDst == 0 {
		got, have := tpDstOf(pkt)
		if !have {
			return k, false
		}
		k.tpDst = got
	}
	return k, true
}

// maskGroup is one tuple-space group: every installed entry sharing a
// canonical wildcard mask, hashed by masked tuple. A tuple bucket holds
// the (rare) entries that share mask and masked tuple but differ in
// priority, ordered best-first.
type maskGroup struct {
	wc      uint32
	maxPrio uint16
	size    int
	buckets map[flowKey][]*FlowEntry
}

// better reports whether a beats b under lookup order: higher priority,
// ties broken by insertion sequence (the stable-sort order the linear
// scan used).
func better(a, b *FlowEntry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// tupleSpace is the full tier-2 classifier state.
type tupleSpace struct {
	groups []*maskGroup          // sorted by maxPrio descending
	byMask map[uint32]*maskGroup // canonical mask -> group
}

func (ts *tupleSpace) add(e *FlowEntry) {
	wc := canonMask(e.Match.Wildcards)
	g := ts.byMask[wc]
	if g == nil {
		if ts.byMask == nil {
			ts.byMask = make(map[uint32]*maskGroup)
		}
		g = &maskGroup{wc: wc, maxPrio: e.Priority, buckets: make(map[flowKey][]*FlowEntry)}
		ts.byMask[wc] = g
		ts.groups = append(ts.groups, g)
	}
	k := entryKey(wc, e.Match)
	bucket := g.buckets[k]
	i := sort.Search(len(bucket), func(i int) bool { return !better(bucket[i], e) })
	bucket = append(bucket, nil)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = e
	g.buckets[k] = bucket
	g.size++
	if e.Priority > g.maxPrio {
		g.maxPrio = e.Priority
	}
	ts.reorder()
}

func (ts *tupleSpace) remove(e *FlowEntry) {
	wc := canonMask(e.Match.Wildcards)
	g := ts.byMask[wc]
	if g == nil {
		return
	}
	k := entryKey(wc, e.Match)
	bucket := g.buckets[k]
	for i, cand := range bucket {
		if cand == e {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.buckets, k)
	} else {
		g.buckets[k] = bucket
	}
	g.size--
	if g.size == 0 {
		delete(ts.byMask, wc)
		for i, cand := range ts.groups {
			if cand == g {
				ts.groups = append(ts.groups[:i], ts.groups[i+1:]...)
				break
			}
		}
		return
	}
	if e.Priority == g.maxPrio {
		// The ceiling may have dropped; recompute it exactly so the
		// early-exit stays tight. Control-plane cost only.
		max := uint16(0)
		for _, bucket := range g.buckets {
			if p := bucket[0].Priority; p > max {
				max = p
			}
		}
		g.maxPrio = max
		ts.reorder()
	}
}

// reorder restores the descending-maxPrio order of groups after a
// ceiling changed. Insertion sort: the slice is almost sorted and tiny.
func (ts *tupleSpace) reorder() {
	gs := ts.groups
	for i := 1; i < len(gs); i++ {
		g := gs[i]
		j := i - 1
		for j >= 0 && gs[j].maxPrio < g.maxPrio {
			gs[j+1] = gs[j]
			j--
		}
		gs[j+1] = g
	}
}

// search returns the best-matching installed entry for the packet, or
// nil. probes is incremented once per mask group actually hashed, the
// quantity the MaskProbes stat reports.
func (ts *tupleSpace) search(inPort uint16, pkt *packet.Packet, probes *uint64) *FlowEntry {
	var best *FlowEntry
	for _, g := range ts.groups {
		if best != nil && best.Priority > g.maxPrio {
			break
		}
		*probes++
		k, ok := packetKey(g.wc, inPort, pkt)
		if !ok {
			continue
		}
		if bucket := g.buckets[k]; len(bucket) > 0 {
			if cand := bucket[0]; best == nil || better(cand, best) {
				best = cand
			}
		}
	}
	return best
}
