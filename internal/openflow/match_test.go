package openflow

import (
	"strings"
	"testing"

	"netco/internal/packet"
)

func udpPkt() *packet.Packet {
	src := packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1000}
	dst := packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2000}
	return packet.NewUDP(src, dst, []byte("x"))
}

func TestMatchAllMatchesEverything(t *testing.T) {
	m := MatchAll()
	if !m.Matches(7, udpPkt()) {
		t.Fatal("MatchAll did not match")
	}
	arp := &packet.Packet{Eth: packet.Ethernet{EtherType: packet.EtherTypeARP}}
	if !m.Matches(0, arp) {
		t.Fatal("MatchAll did not match non-IP frame")
	}
}

func TestMatchFields(t *testing.T) {
	pkt := udpPkt()
	tests := []struct {
		name string
		m    Match
		want bool
	}{
		{"in_port hit", MatchAll().WithInPort(3), true},
		{"in_port miss", MatchAll().WithInPort(4), false},
		{"dl_dst hit", MatchAll().WithDlDst(packet.HostMAC(2)), true},
		{"dl_dst miss", MatchAll().WithDlDst(packet.HostMAC(9)), false},
		{"dl_src hit", MatchAll().WithDlSrc(packet.HostMAC(1)), true},
		{"dl_src miss", MatchAll().WithDlSrc(packet.HostMAC(9)), false},
		{"dl_type hit", MatchAll().WithDlType(packet.EtherTypeIPv4), true},
		{"dl_type miss", MatchAll().WithDlType(packet.EtherTypeARP), false},
		{"nw_proto hit", MatchAll().WithNwProto(packet.ProtoUDP), true},
		{"nw_proto miss", MatchAll().WithNwProto(packet.ProtoTCP), false},
		{"nw_src /32 hit", MatchAll().WithNwSrc(packet.HostIP(1), 32), true},
		{"nw_src /32 miss", MatchAll().WithNwSrc(packet.HostIP(3), 32), false},
		{"nw_src /24 hit", MatchAll().WithNwSrc(packet.MustParseIP("10.0.0.99"), 24), true},
		{"nw_src /8 hit", MatchAll().WithNwSrc(packet.MustParseIP("10.9.9.9"), 8), true},
		{"nw_src /8 miss", MatchAll().WithNwSrc(packet.MustParseIP("11.0.0.1"), 8), false},
		{"nw_dst hit", MatchAll().WithNwDst(packet.HostIP(2), 32), true},
		{"nw_dst miss", MatchAll().WithNwDst(packet.HostIP(7), 32), false},
		{"tp_src hit", MatchAll().WithTpSrc(1000), true},
		{"tp_src miss", MatchAll().WithTpSrc(1001), false},
		{"tp_dst hit", MatchAll().WithTpDst(2000), true},
		{"tp_dst miss", MatchAll().WithTpDst(2001), false},
		{"untagged vlan hit", MatchAll().WithDlVLAN(VLANNone), true},
		{"vlan miss on untagged", MatchAll().WithDlVLAN(5), false},
		{"compound hit", MatchAll().WithDlDst(packet.HostMAC(2)).WithNwProto(packet.ProtoUDP).WithTpDst(2000), true},
		{"compound miss", MatchAll().WithDlDst(packet.HostMAC(2)).WithNwProto(packet.ProtoUDP).WithTpDst(1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.Matches(3, pkt); got != tt.want {
				t.Errorf("Matches = %v, want %v (match %s)", got, tt.want, tt.m)
			}
		})
	}
}

func TestMatchVLANTagged(t *testing.T) {
	pkt := udpPkt()
	pkt.Eth.VLAN = &packet.VLANTag{PCP: 2, VID: 100}
	if !MatchAll().WithDlVLAN(100).Matches(0, pkt) {
		t.Error("tagged frame did not match dl_vlan=100")
	}
	if MatchAll().WithDlVLAN(101).Matches(0, pkt) {
		t.Error("tagged frame matched wrong VID")
	}
	if MatchAll().WithDlVLAN(VLANNone).Matches(0, pkt) {
		t.Error("tagged frame matched VLANNone")
	}
	if !MatchAll().WithDlVLANPCP(2).Matches(0, pkt) {
		t.Error("tagged frame did not match pcp=2")
	}
	if MatchAll().WithDlVLANPCP(3).Matches(0, pkt) {
		t.Error("tagged frame matched wrong pcp")
	}
}

func TestMatchL3FieldsOnNonIP(t *testing.T) {
	arp := &packet.Packet{Eth: packet.Ethernet{EtherType: packet.EtherTypeARP}}
	if MatchAll().WithNwProto(6).Matches(0, arp) {
		t.Error("nw_proto matched non-IP frame")
	}
	if MatchAll().WithNwSrc(packet.HostIP(1), 8).Matches(0, arp) {
		t.Error("nw_src matched non-IP frame")
	}
	if MatchAll().WithTpDst(80).Matches(0, arp) {
		t.Error("tp_dst matched non-IP frame")
	}
}

func TestMatchICMPTypeCode(t *testing.T) {
	src := packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1)}
	dst := packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2)}
	pkt := packet.NewICMPEcho(src, dst, packet.ICMPEchoRequest, 1, 1, nil)
	// OpenFlow 1.0 maps ICMP type/code onto tp_src/tp_dst.
	if !MatchAll().WithNwProto(packet.ProtoICMP).WithTpSrc(uint16(packet.ICMPEchoRequest)).Matches(0, pkt) {
		t.Error("ICMP type match failed")
	}
	if MatchAll().WithTpSrc(uint16(packet.ICMPEchoReply)).Matches(0, pkt) {
		t.Error("ICMP type mismatch matched")
	}
}

func TestSubsumes(t *testing.T) {
	anyM := MatchAll()
	dst := MatchAll().WithDlDst(packet.HostMAC(2))
	dstPort := dst.WithInPort(1)
	tests := []struct {
		name string
		a, b Match
		want bool
	}{
		{"any subsumes specific", anyM, dstPort, true},
		{"specific does not subsume any", dstPort, anyM, false},
		{"equal subsumes", dst, dst, true},
		{"less specific subsumes more", dst, dstPort, true},
		{"more specific does not subsume less", dstPort, dst, false},
		{"different values", MatchAll().WithDlDst(packet.HostMAC(3)), dst, false},
		{"wider prefix subsumes narrower",
			MatchAll().WithNwDst(packet.MustParseIP("10.0.0.0"), 8),
			MatchAll().WithNwDst(packet.HostIP(5), 32), true},
		{"narrower prefix does not subsume wider",
			MatchAll().WithNwDst(packet.HostIP(5), 32),
			MatchAll().WithNwDst(packet.MustParseIP("10.0.0.0"), 8), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Subsumes(tt.b); got != tt.want {
				t.Errorf("Subsumes = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchString(t *testing.T) {
	if got := MatchAll().String(); got != "any" {
		t.Errorf("MatchAll().String() = %q, want \"any\"", got)
	}
	s := MatchAll().WithDlDst(packet.HostMAC(2)).WithInPort(1).String()
	if !strings.Contains(s, "in_port=1") || !strings.Contains(s, "dl_dst=") {
		t.Errorf("String() = %q", s)
	}
}

func TestApplyHeaderActions(t *testing.T) {
	pkt := udpPkt()

	ApplyHeader(SetVLANVID(42), pkt)
	if pkt.Eth.VLAN == nil || pkt.Eth.VLAN.VID != 42 {
		t.Fatal("SetVLANVID failed")
	}
	ApplyHeader(SetVLANPCP(5), pkt)
	if pkt.Eth.VLAN.PCP != 5 {
		t.Fatal("SetVLANPCP failed")
	}
	ApplyHeader(StripVLAN(), pkt)
	if pkt.Eth.VLAN != nil {
		t.Fatal("StripVLAN failed")
	}
	ApplyHeader(SetDlSrc(packet.HostMAC(9)), pkt)
	if pkt.Eth.Src != packet.HostMAC(9) {
		t.Fatal("SetDlSrc failed")
	}
	ApplyHeader(SetDlDst(packet.HostMAC(8)), pkt)
	if pkt.Eth.Dst != packet.HostMAC(8) {
		t.Fatal("SetDlDst failed")
	}
	ApplyHeader(SetNwSrc(packet.HostIP(7)), pkt)
	if pkt.IP.Src != packet.HostIP(7) {
		t.Fatal("SetNwSrc failed")
	}
	ApplyHeader(SetNwDst(packet.HostIP(6)), pkt)
	if pkt.IP.Dst != packet.HostIP(6) {
		t.Fatal("SetNwDst failed")
	}
	ApplyHeader(SetNwTOS(0xfc), pkt)
	if pkt.IP.TOS != 0xfc {
		t.Fatal("SetNwTOS failed")
	}
	ApplyHeader(SetTpSrc(111), pkt)
	if pkt.UDP.SrcPort != 111 {
		t.Fatal("SetTpSrc failed")
	}
	ApplyHeader(SetTpDst(222), pkt)
	if pkt.UDP.DstPort != 222 {
		t.Fatal("SetTpDst failed")
	}
	// Output is a data-plane concern; header application ignores it.
	before := pkt.Clone()
	ApplyHeader(Output(3), pkt)
	if pkt.String() != before.String() {
		t.Fatal("Output mutated the packet")
	}
}

func TestActionString(t *testing.T) {
	cases := map[string]Action{
		"output:3":          Output(3),
		"output:CONTROLLER": OutputController(128),
		"output:FLOOD":      Output(PortFlood),
		"set_vlan_vid:9":    SetVLANVID(9),
		"strip_vlan":        StripVLAN(),
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
