package openflow

import (
	"fmt"
	"testing"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// referenceLookup is the seed implementation the classifier must be
// indistinguishable from: first match in priority-then-insertion order
// over the table's own entry snapshot. It reads no classifier state, so
// any divergence is a classifier bug, not a reference bug.
func referenceLookup(t *FlowTable, inPort uint16, pkt *packet.Packet) *FlowEntry {
	for _, e := range t.Entries() {
		if e.Match.Matches(inPort, pkt) {
			return e
		}
	}
	return nil
}

// randMatch draws a match over deliberately tiny value pools so random
// rule sets overlap, tie, subsume and contradict each other constantly —
// the regimes where a classifier and a linear scan can disagree.
func randMatch(rng *sim.RNG) Match {
	m := MatchAll()
	if rng.Intn(3) == 0 {
		m = m.WithInPort(uint16(rng.Intn(3)))
	}
	if rng.Intn(3) == 0 {
		m = m.WithDlSrc(packet.HostMAC(uint32(rng.Intn(3))))
	}
	if rng.Intn(2) == 0 {
		m = m.WithDlDst(packet.HostMAC(uint32(rng.Intn(4))))
	}
	if rng.Intn(4) == 0 {
		// Include VLANNone (untagged), real VIDs, and a VID with garbage
		// in the upper bits that must be masked to 12 bits.
		vids := []uint16{VLANNone, 1, 2, 0x1002}
		m = m.WithDlVLAN(vids[rng.Intn(len(vids))])
	}
	if rng.Intn(6) == 0 {
		m = m.WithDlVLANPCP(uint8(rng.Intn(2)))
	}
	if rng.Intn(3) == 0 {
		types := []uint16{packet.EtherTypeIPv4, packet.EtherTypeARP}
		m = m.WithDlType(types[rng.Intn(len(types))])
	}
	if rng.Intn(4) == 0 {
		protos := []uint8{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}
		m = m.WithNwProto(protos[rng.Intn(len(protos))])
	}
	if rng.Intn(8) == 0 {
		m = m.WithNwTOS(uint8(rng.Intn(2) * 0x10))
	}
	if rng.Intn(3) == 0 {
		// CIDR prefixes of every flavour, including /32 and short ones
		// that alias several host addresses into one group key.
		lens := []int{32, 24, 30, 8, 16}
		m = m.WithNwSrc(packet.HostIP(uint32(rng.Intn(4))), lens[rng.Intn(len(lens))])
	}
	if rng.Intn(3) == 0 {
		lens := []int{32, 24, 12}
		m = m.WithNwDst(packet.HostIP(uint32(rng.Intn(4))), lens[rng.Intn(len(lens))])
	}
	if rng.Intn(5) == 0 {
		m = m.WithTpSrc(uint16(1000 + rng.Intn(3)))
	}
	if rng.Intn(5) == 0 {
		m = m.WithTpDst(uint16(2000 + rng.Intn(3)))
	}
	// Garbage in wildcarded fields must not affect classification.
	if m.Wildcards&WildcardDlSrc != 0 {
		m.DlSrc = packet.HostMAC(uint32(rng.Intn(1000)))
	}
	if m.Wildcards&WildcardDlVLAN != 0 {
		m.DlVLAN = uint16(rng.Uint64())
	}
	return m
}

// randPacket draws packets from the same tiny pools as randMatch:
// tagged/untagged, IPv4 (TCP/UDP/ICMP) and non-IP ARP frames.
func randPacket(rng *sim.RNG) *packet.Packet {
	src := packet.Endpoint{
		MAC:  packet.HostMAC(uint32(rng.Intn(3))),
		IP:   packet.HostIP(uint32(rng.Intn(4))),
		Port: uint16(1000 + rng.Intn(3)),
	}
	dst := packet.Endpoint{
		MAC:  packet.HostMAC(uint32(rng.Intn(4))),
		IP:   packet.HostIP(uint32(rng.Intn(4))),
		Port: uint16(2000 + rng.Intn(3)),
	}
	var pkt *packet.Packet
	switch rng.Intn(4) {
	case 0:
		pkt = packet.NewUDP(src, dst, []byte("payload"))
	case 1:
		pkt = packet.NewTCP(src, dst, 1, 2, packet.TCPAck, 64, nil)
	case 2:
		pkt = packet.NewICMPEcho(src, dst, packet.ICMPEchoRequest, uint16(rng.Intn(2)), 1, nil)
	default:
		pkt = &packet.Packet{Eth: packet.Ethernet{
			Dst: dst.MAC, Src: src.MAC, EtherType: packet.EtherTypeARP,
		}}
	}
	if pkt.IP != nil {
		pkt.IP.TOS = uint8(rng.Intn(2) * 0x10)
	}
	if rng.Intn(3) == 0 {
		pkt.Eth.VLAN = &packet.VLANTag{VID: uint16(1 + rng.Intn(2)), PCP: uint8(rng.Intn(2))}
	}
	return pkt
}

// TestClassifierDifferential is the two-tier classifier's acceptance
// gate: across randomized rule sets and packets — priority ties,
// overlapping masks, CIDR prefixes, VLANNone, garbage in wildcarded
// fields — Lookup must select the byte-identical entry (same pointer,
// same counters afterwards) as the reference linear scan, including
// straight after Add/Delete churn (generation invalidation) and on
// repeated lookups (microflow-cache hits).
func TestClassifierDifferential(t *testing.T) {
	rng := sim.NewRNG(42)
	trials := 0
	for round := 0; round < 250; round++ {
		sched := sim.NewScheduler()
		tbl := NewFlowTable(sched)
		for i := 0; i < 1+rng.Intn(40); i++ {
			tbl.Add(&FlowEntry{
				Priority: uint16(rng.Intn(6)), // dense priorities force ties
				Match:    randMatch(rng),
				Cookie:   uint64(i),
				Actions:  []Action{Output(uint16(i))},
			})
		}
		for p := 0; p < 50; p++ {
			// Mid-round churn: adds and deletes must invalidate the
			// microflow cache and reshape the tuple space coherently.
			switch rng.Intn(12) {
			case 0:
				tbl.Add(&FlowEntry{Priority: uint16(rng.Intn(6)), Match: randMatch(rng)})
			case 1:
				tbl.Delete(randMatch(rng), uint16(rng.Intn(6)), rng.Intn(2) == 0, PortNone)
			}
			pkt := randPacket(rng)
			inPort := uint16(rng.Intn(3))
			want := referenceLookup(tbl, inPort, pkt)
			var wantPackets uint64
			if want != nil {
				wantPackets = want.Packets + 1
			}
			got := tbl.Lookup(inPort, pkt)
			if got != want {
				t.Fatalf("round %d pkt %d: Lookup = %v, reference = %v\npacket %v in_port %d\ntable:\n%s",
					round, p, describe(got), describe(want), pkt, inPort, dumpTable(tbl))
			}
			if want != nil && want.Packets != wantPackets {
				t.Fatalf("round %d pkt %d: winner counters not updated (Packets=%d)", round, p, want.Packets)
			}
			// Second lookup of the identical packet exercises the
			// microflow-hit path; the winner must be unchanged.
			if again := tbl.Lookup(inPort, pkt); again != want {
				t.Fatalf("round %d pkt %d: cached lookup = %v, want %v", round, p, describe(again), describe(want))
			}
			trials++
		}
	}
	if trials < 10000 {
		t.Fatalf("only %d differential trials, want >= 10000", trials)
	}
}

func describe(e *FlowEntry) string {
	if e == nil {
		return "<miss>"
	}
	return fmt.Sprintf("{prio %d cookie %d match %s}", e.Priority, e.Cookie, e.Match)
}

func dumpTable(t *FlowTable) string {
	out := ""
	for _, e := range t.Entries() {
		out += "  " + describe(e) + "\n"
	}
	return out
}

// TestClassifierStatsAccounting pins the stats plumbing: a fresh packet
// costs a tuple lookup, an identical repeat is a microflow hit, and a
// table mutation invalidates the cache.
func TestClassifierStatsAccounting(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll().WithDlDst(packet.HostMAC(2))})
	tbl.Add(&FlowEntry{Priority: 2, Match: MatchAll().WithInPort(0).WithDlDst(packet.HostMAC(2))})

	pkt := udpPkt()
	tbl.Lookup(0, pkt)
	tbl.Lookup(0, pkt)
	tbl.Lookup(0, pkt)
	s := tbl.Stats()
	if s.Lookups != 3 || s.MicroflowHits != 2 || s.TupleLookups != 1 {
		t.Fatalf("stats after warm lookups = %+v, want 3 lookups / 2 hits / 1 tuple", s)
	}
	if s.Masks != 2 {
		t.Fatalf("Masks = %d, want 2 distinct wildcard masks", s.Masks)
	}

	// Any mutation bumps the generation: the next lookup must re-search.
	tbl.Add(&FlowEntry{Priority: 9, Match: MatchAll().WithInPort(0)})
	if e := tbl.Lookup(0, pkt); e == nil || e.Priority != 9 {
		t.Fatalf("stale microflow hit after Add: got %v", describe(e))
	}
	s = tbl.Stats()
	if s.TupleLookups != 2 {
		t.Fatalf("TupleLookups = %d, want 2 (cache invalidated by Add)", s.TupleLookups)
	}
}

// TestFlowTableReentrantOnRemoved is the regression for the compaction
// hazard: an OnRemoved callback that immediately re-installs rules (a
// controller reacting to FlowRemoved) must not corrupt an in-progress
// Delete or expiry pass.
func TestFlowTableReentrantOnRemoved(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	reinstalled := 0
	tbl.OnRemoved = func(e *FlowEntry, reason RemovedReason) {
		// React to every removal by installing a replacement rule at a
		// recognisable priority — while the removal pass is running.
		reinstalled++
		tbl.Add(&FlowEntry{Priority: 1000 + e.Priority, Match: e.Match, Actions: e.Actions})
	}
	for i := 0; i < 8; i++ {
		tbl.Add(&FlowEntry{
			Priority: uint16(i),
			Match:    MatchAll().WithDlDst(packet.HostMAC(uint32(i))),
			Actions:  []Action{Output(uint16(i))},
		})
	}
	if n := tbl.Delete(MatchAll(), 0, false, PortNone); n != 8 {
		t.Fatalf("Delete removed %d, want 8", n)
	}
	if reinstalled != 8 {
		t.Fatalf("OnRemoved fired %d times, want 8", reinstalled)
	}
	if tbl.Len() != 8 {
		t.Fatalf("Len = %d after reinstalling callbacks, want 8", tbl.Len())
	}
	for i := 0; i < 8; i++ {
		pkt := udpPkt()
		pkt.Eth.Dst = packet.HostMAC(uint32(i))
		e := tbl.Lookup(0, pkt)
		if e == nil || e.Priority != uint16(1000+i) {
			t.Fatalf("entry %d: Lookup = %v, want reinstalled priority %d", i, describe(e), 1000+i)
		}
	}

	// Same hazard via the expiry path: expiring entries while the
	// callback installs fresh ones.
	sched2 := sim.NewScheduler()
	tbl2 := NewFlowTable(sched2)
	installed := 0
	tbl2.OnRemoved = func(e *FlowEntry, reason RemovedReason) {
		installed++
		tbl2.Add(&FlowEntry{Priority: 500, Match: e.Match})
	}
	for i := 0; i < 4; i++ {
		tbl2.Add(&FlowEntry{
			Priority:    uint16(i),
			Match:       MatchAll().WithDlDst(packet.HostMAC(uint32(i))),
			HardTimeout: time.Second,
		})
	}
	sched2.RunUntil(2 * time.Second)
	if installed != 4 {
		t.Fatalf("expiry callbacks = %d, want 4", installed)
	}
	if tbl2.Len() != 4 {
		t.Fatalf("Len = %d after reentrant expiry, want 4 reinstalled", tbl2.Len())
	}
	for _, e := range tbl2.Entries() {
		if e.Priority != 500 {
			t.Fatalf("surviving entry %s has priority %d, want 500", e.Match, e.Priority)
		}
	}
}

// TestTimerDrivenExpiryOrdering verifies FlowRemoved messages fire at
// the right virtual times and in deadline order without any lookups or
// sweeps driving the table.
func TestTimerDrivenExpiryOrdering(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	type ev struct {
		cookie uint64
		reason RemovedReason
		at     time.Duration
	}
	var got []ev
	tbl.OnRemoved = func(e *FlowEntry, r RemovedReason) {
		got = append(got, ev{e.Cookie, r, sched.Now()})
	}

	tbl.Add(&FlowEntry{Cookie: 1, Priority: 1, Match: MatchAll().WithInPort(1), HardTimeout: 3 * time.Second})
	tbl.Add(&FlowEntry{Cookie: 2, Priority: 1, Match: MatchAll().WithInPort(2), IdleTimeout: time.Second})
	tbl.Add(&FlowEntry{Cookie: 3, Priority: 1, Match: MatchAll().WithInPort(3), IdleTimeout: 4 * time.Second, HardTimeout: 2 * time.Second})

	// Keep cookie 2 alive with traffic at 700 ms: its idle deadline
	// slides to 1.7 s, past nothing else.
	pkt := udpPkt()
	sched.After(700*time.Millisecond, func() { tbl.Lookup(2, pkt) })

	sched.Run()
	want := []ev{
		{2, RemovedIdleTimeout, 1700 * time.Millisecond},
		{3, RemovedHardTimeout, 2 * time.Second},
		{1, RemovedHardTimeout, 3 * time.Second},
	}
	if len(got) != len(want) {
		t.Fatalf("removals = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("removal %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d after all timeouts, want 0", tbl.Len())
	}
	if sched.Now() != 3*time.Second {
		t.Fatalf("queue drained at %v; expiry timers must not linger past the last deadline", sched.Now())
	}
}

// TestExpiryTimerReleasedOnDelete: deleting every timed entry must leave
// no live timer events keeping the simulation queue busy.
func TestExpiryTimerReleasedOnDelete(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll(), HardTimeout: time.Hour})
	tbl.Delete(MatchAll(), 0, false, PortNone)
	sched.Run()
	if sched.Now() != 0 {
		t.Fatalf("clock advanced to %v; orphaned expiry timer fired", sched.Now())
	}
	if tbl.Len() != 0 {
		t.Fatal("table not empty")
	}
}
