package openflow

import (
	"time"
)

// This file implements timer-driven flow expiry. The old table swept
// every entry's timeouts on every lookup — O(n) per packet and, worse,
// FlowRemoved only fired "whenever the next packet arrived". Deadlines
// now live in a small min-heap serviced by one scheduler event armed for
// the earliest deadline, so Lookup does zero expiry work and removals
// happen at the exact virtual time the timeout elapses.
//
// Lookup refreshes an entry's idle timer by writing lastUsed only; the
// heap is intentionally not touched on the hot path. When the stale
// deadline fires, the service routine recomputes the entry's true
// deadline and, if traffic kept it alive, re-arms it — the classic lazy
// timer-wheel trade: at most one spurious wakeup per idle period per
// entry, never per-packet heap work.

// deadlineNode is one pending expiry check.
type deadlineNode struct {
	at time.Duration
	e  *FlowEntry
}

// deadlineHeap is a binary min-heap over deadlines. Ties need no
// tie-break: firing order of equal deadlines does not affect the table
// state, and callbacks are ordered by the removal pass itself.
type deadlineHeap []deadlineNode

func (h *deadlineHeap) push(n deadlineNode) {
	*h = append(*h, n)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].at <= s[i].at {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *deadlineHeap) pop() deadlineNode {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = deadlineNode{} // release the entry pointer to the GC
	*h = s[:n]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && s[r].at < s[l].at {
			c = r
		}
		if s[i].at <= s[c].at {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// deadline returns the entry's next expiry instant, or ok=false when the
// entry has no timeouts.
func deadline(e *FlowEntry) (time.Duration, bool) {
	var d time.Duration
	ok := false
	if e.HardTimeout > 0 {
		d = e.installed + e.HardTimeout
		ok = true
	}
	if e.IdleTimeout > 0 {
		if idle := e.lastUsed + e.IdleTimeout; !ok || idle < d {
			d = idle
		}
		ok = true
	}
	return d, ok
}

// scheduleExpiry registers a freshly installed entry's deadline.
func (t *FlowTable) scheduleExpiry(e *FlowEntry) {
	if d, ok := deadline(e); ok {
		t.expiry.push(deadlineNode{at: d, e: e})
		t.rearm()
	}
}

// rearm points the single scheduler timer at the current heap minimum,
// skipping nodes for entries that already left the table.
func (t *FlowTable) rearm() {
	for len(t.expiry) > 0 && t.expiry[0].e.dead {
		t.expiry.pop()
	}
	if len(t.expiry) == 0 {
		if t.timerSet {
			t.timer.Stop()
			t.timerSet = false
		}
		return
	}
	at := t.expiry[0].at
	if t.timerSet && t.timerAt == at {
		return
	}
	if t.timerSet {
		t.timer.Stop()
	}
	t.timer = t.sched.AtCall(at, flowTableExpire, t, nil, 0)
	t.timerAt = at
	t.timerSet = true
}

// flowTableExpire is the scheduler callback (AtCall shape, so arming a
// timer never allocates a closure).
func flowTableExpire(a0, _ any, _ int) {
	t := a0.(*FlowTable)
	t.timerSet = false
	t.expireDue()
}

// expireDue services every heap node whose deadline has arrived:
// entries whose true deadline passed are removed (and their FlowRemoved
// hooks fired), entries refreshed by traffic are re-armed at their new
// deadline. Callbacks run only after the table is consistent, so a
// controller reacting to FlowRemoved by installing rules is safe.
func (t *FlowTable) expireDue() {
	now := t.sched.Now()
	var removed []removal
	for len(t.expiry) > 0 && t.expiry[0].at <= now {
		n := t.expiry.pop()
		if n.e.dead {
			continue
		}
		d, ok := deadline(n.e)
		if !ok {
			continue
		}
		if d > now {
			t.expiry.push(deadlineNode{at: d, e: n.e})
			continue
		}
		t.detach(n.e)
		removed = append(removed, removal{n.e, timeoutReason(n.e, now)})
	}
	t.rearm()
	t.fire(removed)
}

// timeoutReason mirrors the old sweep's precedence: a hard timeout that
// has elapsed wins over a simultaneous idle timeout.
func timeoutReason(e *FlowEntry, now time.Duration) RemovedReason {
	if e.HardTimeout > 0 && now-e.installed >= e.HardTimeout {
		return RemovedHardTimeout
	}
	return RemovedIdleTimeout
}
