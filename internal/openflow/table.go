package openflow

import (
	"sort"
	"time"

	"netco/internal/metrics"
	"netco/internal/packet"
	"netco/internal/sim"
)

// FlowEntry is one rule in a flow table.
type FlowEntry struct {
	Priority uint16
	Match    Match
	Actions  []Action
	Cookie   uint64

	// IdleTimeout evicts the entry after this long without a matching
	// packet; HardTimeout evicts it unconditionally. Zero disables.
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// Counters.
	Packets uint64
	Bytes   uint64

	installed time.Duration
	lastUsed  time.Duration
	seq       uint64
	dead      bool // set once the entry leaves the table
}

// Duration returns how long the entry has been installed.
func (e *FlowEntry) Duration(now time.Duration) time.Duration { return now - e.installed }

// RemovedReason says why a flow entry left the table (ofp_flow_removed_reason).
type RemovedReason uint8

// Flow removal reasons.
const (
	RemovedIdleTimeout RemovedReason = 0
	RemovedHardTimeout RemovedReason = 1
	RemovedDelete      RemovedReason = 2
)

// FlowTable is a priority-ordered OpenFlow 1.0 flow table with a two-tier
// lookup classifier and timer-driven timeout expiry.
//
// Tier 1 is an exact-match microflow cache keyed by (inPort, header
// fingerprint); tier 2 is a tuple-space search over per-mask hash tables
// (see microflow.go and classifier.go). Steady-state Lookup therefore
// costs O(1) regardless of how many rules are installed, and allocates
// nothing. Idle/hard timeouts are serviced by a deadline heap driven off
// the simulation scheduler (expiry.go), so FlowRemoved fires at the
// exact virtual time a timeout elapses, not at the next packet.
type FlowTable struct {
	sched *sim.Scheduler
	// entries stays sorted in lookup order (priority descending,
	// insertion sequence ascending) for Entries(), Delete subsumption
	// scans and Sweep — control-plane paths only; Lookup never walks it.
	entries []*FlowEntry
	seq     uint64
	// gen is the classifier generation, bumped on every mutation; the
	// microflow cache trusts a slot only when its generation matches.
	gen uint64

	// micro is allocated on the first cache fill: a fluid-tier fabric
	// builds tens of thousands of switches that never see a packet, and
	// the 16 KiB cache array would dominate their footprint.
	micro *microCache
	ts    tupleSpace

	// Deadline-ordered expiry state (expiry.go).
	expiry   deadlineHeap
	timer    sim.Timer
	timerAt  time.Duration
	timerSet bool

	stats metrics.ClassifierStats

	// OnRemoved, when non-nil, is invoked for every entry leaving the
	// table (the hook the switch uses to emit FlowRemoved messages).
	// Callbacks fire only after the table has been fully updated, so a
	// callback may safely re-install or delete rules.
	OnRemoved func(e *FlowEntry, reason RemovedReason)

	// Misses counts lookups that matched no entry.
	Misses uint64
}

// NewFlowTable returns an empty table bound to the scheduler's clock.
func NewFlowTable(sched *sim.Scheduler) *FlowTable {
	return &FlowTable{sched: sched}
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns a snapshot of the installed entries in lookup order.
func (t *FlowTable) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Stats returns a snapshot of the classifier counters.
func (t *FlowTable) Stats() metrics.ClassifierStats {
	s := t.stats
	s.Misses = t.Misses
	s.Masks = len(t.ts.groups)
	return s
}

// removal pairs an entry with its removal reason while callbacks are
// deferred past the structural mutation.
type removal struct {
	e      *FlowEntry
	reason RemovedReason
}

// fire invokes OnRemoved for each collected removal, after the table is
// already consistent.
func (t *FlowTable) fire(removed []removal) {
	if t.OnRemoved == nil {
		return
	}
	for _, r := range removed {
		t.OnRemoved(r.e, r.reason)
	}
}

// attach inserts an entry into every lookup structure. The entry's seq
// must already be assigned.
func (t *FlowTable) attach(e *FlowEntry) {
	i := sort.Search(len(t.entries), func(i int) bool { return !better(t.entries[i], e) })
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	t.ts.add(e)
	t.gen++
	t.scheduleExpiry(e)
}

// detach removes an entry from every lookup structure and marks it dead
// so pending expiry-heap nodes for it are discarded lazily.
func (t *FlowTable) detach(e *FlowEntry) {
	for i, cand := range t.entries {
		if cand == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			break
		}
	}
	t.ts.remove(e)
	e.dead = true
	t.gen++
}

// Add installs an entry. An entry with an identical match and priority
// replaces the existing one, keeping its counters at zero (OFPFC_ADD
// semantics without OFPFF_CHECK_OVERLAP). The replacement inherits the
// old entry's position in lookup order, as the in-place replacement of
// the linear table did.
func (t *FlowTable) Add(e *FlowEntry) {
	now := t.sched.Now()
	e.installed = now
	e.lastUsed = now
	e.dead = false
	replaced := false
	for _, old := range t.entries {
		if old.Priority == e.Priority && old.Match == e.Match {
			e.seq = old.seq
			t.detach(old)
			replaced = true
			break
		}
	}
	if !replaced {
		e.seq = t.seq
		t.seq++
	}
	t.attach(e)
	if replaced {
		t.rearm() // the replaced entry may have owned the armed timer
	}
}

// Reset empties the table the way a cold restart does: every entry is
// discarded silently — no OnRemoved callbacks, because a crashed switch
// cannot report FlowRemoved for state it just lost — the expiry heap is
// cleared, the armed timer cancelled, and the generation bumped so every
// microflow-cache slot filled before the crash misses. Counters
// (classifier stats, Misses) survive; they are observations of the run,
// not switch state.
func (t *FlowTable) Reset() {
	for _, e := range t.entries {
		e.dead = true
	}
	t.entries = t.entries[:0]
	t.ts = tupleSpace{}
	t.gen++
	for i := range t.expiry {
		t.expiry[i] = deadlineNode{} // release entry pointers to the GC
	}
	t.expiry = t.expiry[:0]
	if t.timerSet {
		t.timer.Stop()
		t.timerSet = false
	}
}

// Delete removes entries. With strict set, only an exact match+priority
// entry is removed; otherwise every entry whose match is subsumed by m is
// removed (OFPFC_DELETE semantics). outPort, when not PortNone, restricts
// deletion to entries with an output action to that port.
func (t *FlowTable) Delete(m Match, priority uint16, strict bool, outPort uint16) int {
	var doomed []removal
	for _, e := range t.entries {
		del := false
		if strict {
			del = e.Priority == priority && e.Match == m
		} else {
			del = m.Subsumes(e.Match)
		}
		if del && outPort != PortNone {
			del = false
			for _, a := range e.Actions {
				if a.Type == ActionOutput && a.Port == outPort {
					del = true
					break
				}
			}
		}
		if del {
			doomed = append(doomed, removal{e, RemovedDelete})
		}
	}
	for _, r := range doomed {
		t.detach(r.e)
	}
	if len(doomed) > 0 {
		t.rearm() // release timers whose entries just left
	}
	t.fire(doomed)
	return len(doomed)
}

// Lookup returns the highest-priority entry matching the packet, updating
// its counters and idle timer. It returns nil on a table miss. Lookup
// does no expiry work: timeouts are handled by scheduler timers.
func (t *FlowTable) Lookup(inPort uint16, pkt *packet.Packet) *FlowEntry {
	t.stats.Lookups++
	hash := packet.HeaderKey(pkt)
	var e *FlowEntry
	if t.micro != nil {
		e = t.micro.get(hash, inPort, t.gen, pkt)
	}
	if e != nil {
		t.stats.MicroflowHits++
	} else {
		t.stats.TupleLookups++
		e = t.ts.search(inPort, pkt, &t.stats.MaskProbes)
		if e == nil {
			t.Misses++
			return nil
		}
		if t.micro == nil {
			t.micro = new(microCache)
		}
		t.micro.put(hash, inPort, t.gen, e)
	}
	e.Packets++
	e.Bytes += uint64(pkt.WireLen())
	e.lastUsed = t.sched.Now()
	return e
}

// Sweep forces a full timeout scan now. Expiry is timer-driven, so in a
// running simulation Sweep finds nothing to do; it remains the forcing
// function for tests and for callers that move the clock by hand.
func (t *FlowTable) Sweep() {
	now := t.sched.Now()
	var removed []removal
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now-e.installed >= e.HardTimeout:
			removed = append(removed, removal{e, RemovedHardTimeout})
		case e.IdleTimeout > 0 && now-e.lastUsed >= e.IdleTimeout:
			removed = append(removed, removal{e, RemovedIdleTimeout})
		}
	}
	for _, r := range removed {
		t.detach(r.e)
	}
	if len(removed) > 0 {
		t.rearm()
	}
	t.fire(removed)
}
