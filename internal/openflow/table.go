package openflow

import (
	"sort"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// FlowEntry is one rule in a flow table.
type FlowEntry struct {
	Priority uint16
	Match    Match
	Actions  []Action
	Cookie   uint64

	// IdleTimeout evicts the entry after this long without a matching
	// packet; HardTimeout evicts it unconditionally. Zero disables.
	IdleTimeout time.Duration
	HardTimeout time.Duration

	// Counters.
	Packets uint64
	Bytes   uint64

	installed time.Duration
	lastUsed  time.Duration
	seq       uint64
}

// Duration returns how long the entry has been installed.
func (e *FlowEntry) Duration(now time.Duration) time.Duration { return now - e.installed }

// RemovedReason says why a flow entry left the table (ofp_flow_removed_reason).
type RemovedReason uint8

// Flow removal reasons.
const (
	RemovedIdleTimeout RemovedReason = 0
	RemovedHardTimeout RemovedReason = 1
	RemovedDelete      RemovedReason = 2
)

// FlowTable is a priority-ordered OpenFlow 1.0 flow table with lazy
// timeout expiry.
type FlowTable struct {
	sched   *sim.Scheduler
	entries []*FlowEntry
	seq     uint64

	// OnRemoved, when non-nil, is invoked for every entry leaving the
	// table (the hook the switch uses to emit FlowRemoved messages).
	OnRemoved func(e *FlowEntry, reason RemovedReason)

	// Misses counts lookups that matched no entry.
	Misses uint64
}

// NewFlowTable returns an empty table bound to the scheduler's clock.
func NewFlowTable(sched *sim.Scheduler) *FlowTable {
	return &FlowTable{sched: sched}
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns a snapshot of the installed entries in lookup order.
func (t *FlowTable) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

// Add installs an entry. An entry with an identical match and priority
// replaces the existing one, keeping its counters at zero (OFPFC_ADD
// semantics without OFPFF_CHECK_OVERLAP).
func (t *FlowTable) Add(e *FlowEntry) {
	now := t.sched.Now()
	e.installed = now
	e.lastUsed = now
	e.seq = t.seq
	t.seq++
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match == e.Match {
			t.entries[i] = e
			return
		}
	}
	t.entries = append(t.entries, e)
	// Highest priority first; ties broken by insertion order for
	// determinism.
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
}

// Delete removes entries. With strict set, only an exact match+priority
// entry is removed; otherwise every entry whose match is subsumed by m is
// removed (OFPFC_DELETE semantics). outPort, when not PortNone, restricts
// deletion to entries with an output action to that port.
func (t *FlowTable) Delete(m Match, priority uint16, strict bool, outPort uint16) int {
	removed := 0
	kept := t.entries[:0]
	for _, e := range t.entries {
		del := false
		if strict {
			del = e.Priority == priority && e.Match == m
		} else {
			del = m.Subsumes(e.Match)
		}
		if del && outPort != PortNone {
			del = false
			for _, a := range e.Actions {
				if a.Type == ActionOutput && a.Port == outPort {
					del = true
					break
				}
			}
		}
		if del {
			removed++
			if t.OnRemoved != nil {
				t.OnRemoved(e, RemovedDelete)
			}
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return removed
}

// Lookup returns the highest-priority entry matching the packet, updating
// its counters and idle timer, after expiring any timed-out entries. It
// returns nil on a table miss.
func (t *FlowTable) Lookup(inPort uint16, pkt *packet.Packet) *FlowEntry {
	t.expire()
	for _, e := range t.entries {
		if e.Match.Matches(inPort, pkt) {
			e.Packets++
			e.Bytes += uint64(pkt.WireLen())
			e.lastUsed = t.sched.Now()
			return e
		}
	}
	t.Misses++
	return nil
}

// expire lazily removes entries whose idle or hard timeout has elapsed.
func (t *FlowTable) expire() {
	now := t.sched.Now()
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now-e.installed >= e.HardTimeout:
			if t.OnRemoved != nil {
				t.OnRemoved(e, RemovedHardTimeout)
			}
		case e.IdleTimeout > 0 && now-e.lastUsed >= e.IdleTimeout:
			if t.OnRemoved != nil {
				t.OnRemoved(e, RemovedIdleTimeout)
			}
		default:
			kept = append(kept, e)
		}
	}
	t.entries = kept
}

// Sweep forces timeout expiry now; switches call it periodically so that
// FlowRemoved messages are not delayed until the next lookup.
func (t *FlowTable) Sweep() { t.expire() }
