package openflow

import (
	"netco/internal/packet"
)

// This file implements tier 1 of the flow classifier: an OVS-EMC-style
// exact-match microflow cache mapping (inPort, header fingerprint)
// straight to the winning *FlowEntry. Hits skip the tuple-space search
// entirely, so steady-state per-packet cost is independent of rule count.
//
// Invalidation is generational: every table mutation (Add, Delete,
// expiry) bumps the table's generation counter, and a slot is only
// trusted when its stored generation matches — no flush scans, and a
// stale slot costs exactly one tier-2 search to refresh.

// microSlots is the fixed cache size: 512 direct-mapped slots is 16 KiB
// per table, large enough that the handful of concurrent microflows a
// simulated port sees never thrash it.
const microSlots = 512

type microSlot struct {
	hash   uint64
	gen    uint64
	inPort uint16
	entry  *FlowEntry
}

// microCache is a fixed-size direct-mapped cache. It lives inline in the
// FlowTable (no pointers to chase, no allocation ever).
type microCache struct {
	slots [microSlots]microSlot
}

func microIndex(hash uint64, inPort uint16) uint64 {
	// Fold the ingress port into the slot index so the same frame seen
	// on two ports (a combiner replicates frames!) occupies two slots.
	return (hash ^ uint64(inPort)*0x9e3779b97f4a7c15) & (microSlots - 1)
}

// get returns the cached winning entry for (inPort, hash) under the
// current table generation, or nil. The Match re-check keeps a 64-bit
// fingerprint collision from ever returning an entry the packet does not
// satisfy; the residual risk — a colliding header tuple that satisfies
// the cached winner but has a different true winner — is accepted, as in
// any fingerprint-keyed flow cache.
func (c *microCache) get(hash uint64, inPort uint16, gen uint64, pkt *packet.Packet) *FlowEntry {
	s := &c.slots[microIndex(hash, inPort)]
	if s.entry == nil || s.gen != gen || s.hash != hash || s.inPort != inPort {
		return nil
	}
	if !s.entry.Match.Matches(inPort, pkt) {
		return nil
	}
	return s.entry
}

// put caches the winning entry for (inPort, hash) at the current
// generation, evicting whatever occupied the slot.
func (c *microCache) put(hash uint64, inPort uint16, gen uint64, e *FlowEntry) {
	c.slots[microIndex(hash, inPort)] = microSlot{hash: hash, gen: gen, inPort: inPort, entry: e}
}
