package openflow

import (
	"testing"
	"testing/quick"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

func TestFlowTablePriorityOrder(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 10, Match: MatchAll(), Actions: []Action{Output(1)}})
	tbl.Add(&FlowEntry{Priority: 100, Match: MatchAll().WithDlDst(packet.HostMAC(2)), Actions: []Action{Output(2)}})

	e := tbl.Lookup(0, udpPkt())
	if e == nil || e.Priority != 100 {
		t.Fatalf("Lookup chose %+v, want priority 100", e)
	}

	// A packet not matching the specific rule falls to the catch-all.
	other := udpPkt()
	other.Eth.Dst = packet.HostMAC(9)
	e = tbl.Lookup(0, other)
	if e == nil || e.Priority != 10 {
		t.Fatalf("Lookup chose %+v, want priority 10", e)
	}
}

func TestFlowTableTieBreakInsertionOrder(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 5, Match: MatchAll().WithInPort(0), Actions: []Action{Output(1)}})
	tbl.Add(&FlowEntry{Priority: 5, Match: MatchAll(), Actions: []Action{Output(2)}})
	e := tbl.Lookup(0, udpPkt())
	if e.Actions[0].Port != 1 {
		t.Fatalf("tie broken to %v, want first-inserted entry", e.Actions[0])
	}
}

func TestFlowTableMiss(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll().WithDlType(packet.EtherTypeARP)})
	if e := tbl.Lookup(0, udpPkt()); e != nil {
		t.Fatalf("Lookup = %+v, want miss", e)
	}
	if tbl.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", tbl.Misses)
	}
}

func TestFlowTableCounters(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll()})
	pkt := udpPkt()
	for i := 0; i < 3; i++ {
		tbl.Lookup(0, pkt)
	}
	e := tbl.Entries()[0]
	if e.Packets != 3 {
		t.Errorf("Packets = %d, want 3", e.Packets)
	}
	if e.Bytes != uint64(3*pkt.WireLen()) {
		t.Errorf("Bytes = %d, want %d", e.Bytes, 3*pkt.WireLen())
	}
}

func TestFlowTableReplaceSamePriorityAndMatch(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	m := MatchAll().WithDlDst(packet.HostMAC(2))
	tbl.Add(&FlowEntry{Priority: 7, Match: m, Actions: []Action{Output(1)}})
	tbl.Add(&FlowEntry{Priority: 7, Match: m, Actions: []Action{Output(9)}})
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace semantics)", tbl.Len())
	}
	if e := tbl.Lookup(0, udpPkt()); e.Actions[0].Port != 9 {
		t.Fatalf("entry not replaced: %v", e.Actions[0])
	}
}

func TestFlowTableDeleteStrict(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	m := MatchAll().WithDlDst(packet.HostMAC(2))
	tbl.Add(&FlowEntry{Priority: 7, Match: m})
	tbl.Add(&FlowEntry{Priority: 8, Match: m})
	if n := tbl.Delete(m, 7, true, PortNone); n != 1 {
		t.Fatalf("strict delete removed %d, want 1", n)
	}
	if tbl.Len() != 1 || tbl.Entries()[0].Priority != 8 {
		t.Fatal("wrong entry deleted")
	}
}

func TestFlowTableDeleteNonStrictSubsumption(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll().WithDlDst(packet.HostMAC(2)).WithInPort(1)})
	tbl.Add(&FlowEntry{Priority: 2, Match: MatchAll().WithDlDst(packet.HostMAC(2))})
	tbl.Add(&FlowEntry{Priority: 3, Match: MatchAll().WithDlDst(packet.HostMAC(3))})
	n := tbl.Delete(MatchAll().WithDlDst(packet.HostMAC(2)), 0, false, PortNone)
	if n != 2 {
		t.Fatalf("non-strict delete removed %d, want 2", n)
	}
	if tbl.Len() != 1 || tbl.Entries()[0].Match.DlDst != packet.HostMAC(3) {
		t.Fatal("wrong entries deleted")
	}
}

func TestFlowTableDeleteByOutPort(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll().WithInPort(1), Actions: []Action{Output(5)}})
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll().WithInPort(2), Actions: []Action{Output(6)}})
	n := tbl.Delete(MatchAll(), 0, false, 5)
	if n != 1 {
		t.Fatalf("out_port-filtered delete removed %d, want 1", n)
	}
	if tbl.Entries()[0].Actions[0].Port != 6 {
		t.Fatal("wrong entry deleted")
	}
}

func TestFlowTableIdleTimeout(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	var removed []RemovedReason
	tbl.OnRemoved = func(e *FlowEntry, r RemovedReason) { removed = append(removed, r) }
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll(), IdleTimeout: time.Second})

	// Traffic at 600 ms keeps the entry alive past 1 s.
	sched.After(600*time.Millisecond, func() { tbl.Lookup(0, udpPkt()) })
	sched.RunUntil(1200 * time.Millisecond)
	if tbl.Len() != 1 {
		t.Fatal("entry expired despite traffic refreshing the idle timer")
	}

	// Expiry is timer-driven: the entry leaves at exactly lastUsed +
	// IdleTimeout = 1.6 s, with no Lookup or Sweep needed.
	sched.RunUntil(1599 * time.Millisecond)
	if tbl.Len() != 1 {
		t.Fatal("entry expired before its refreshed idle deadline")
	}
	sched.RunUntil(1600 * time.Millisecond)
	if tbl.Len() != 0 {
		t.Fatal("idle entry did not expire at its deadline")
	}
	if len(removed) != 1 || removed[0] != RemovedIdleTimeout {
		t.Fatalf("removal callbacks %v, want [idle]", removed)
	}
}

func TestFlowTableHardTimeout(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	var reasons []RemovedReason
	tbl.OnRemoved = func(e *FlowEntry, r RemovedReason) { reasons = append(reasons, r) }
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll(), HardTimeout: time.Second})

	// Constant traffic cannot save it.
	for i := time.Duration(0); i < 2000; i += 100 {
		sched.At(i*time.Millisecond, func() { tbl.Lookup(0, udpPkt()) })
	}
	sched.Run()
	if tbl.Len() != 0 {
		t.Fatal("hard-timeout entry survived")
	}
	if len(reasons) != 1 || reasons[0] != RemovedHardTimeout {
		t.Fatalf("removal reasons %v, want [hard]", reasons)
	}
}

func TestFlowTableDeleteCallback(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	got := 0
	tbl.OnRemoved = func(e *FlowEntry, r RemovedReason) {
		if r != RemovedDelete {
			t.Errorf("reason = %v, want delete", r)
		}
		got++
	}
	tbl.Add(&FlowEntry{Priority: 1, Match: MatchAll()})
	tbl.Delete(MatchAll(), 0, false, PortNone)
	if got != 1 {
		t.Fatalf("callbacks = %d, want 1", got)
	}
}

// Property: the entry returned by Lookup always has priority >= every other
// matching entry in the table.
func TestLookupPriorityInvariant(t *testing.T) {
	f := func(prios []uint16) bool {
		sched := sim.NewScheduler()
		tbl := NewFlowTable(sched)
		for i, p := range prios {
			tbl.Add(&FlowEntry{Priority: p, Match: MatchAll(), Cookie: uint64(i)})
		}
		if len(prios) == 0 {
			return tbl.Lookup(0, udpPkt()) == nil
		}
		got := tbl.Lookup(0, udpPkt())
		for _, p := range prios {
			if got.Priority < p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
