package openflow

import (
	"fmt"
	"sort"
	"testing"

	"netco/internal/packet"
	"netco/internal/sim"
)

// linearFlowTable reimplements the seed's classifier — a full-table
// timeout sweep followed by a linear priority-ordered scan on every
// lookup — as the permanent baseline the two-tier numbers in
// BENCH_3.json are measured against.
type linearFlowTable struct {
	sched   *sim.Scheduler
	entries []*FlowEntry
}

func (t *linearFlowTable) add(e *FlowEntry) {
	e.installed = t.sched.Now()
	e.lastUsed = e.installed
	t.entries = append(t.entries, e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
}

func (t *linearFlowTable) lookup(inPort uint16, pkt *packet.Packet) *FlowEntry {
	now := t.sched.Now()
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now-e.installed >= e.HardTimeout:
		case e.IdleTimeout > 0 && now-e.lastUsed >= e.IdleTimeout:
		default:
			kept = append(kept, e)
		}
	}
	t.entries = kept
	for _, e := range t.entries {
		if e.Match.Matches(inPort, pkt) {
			e.Packets++
			e.Bytes += uint64(pkt.WireLen())
			e.lastUsed = now
			return e
		}
	}
	return nil
}

// macRule is the fat-tree case-study rule shape: per-host dl_dst match.
func macRule(i int) *FlowEntry {
	return &FlowEntry{
		Priority: 100,
		Match:    MatchAll().WithDlDst(packet.HostMAC(uint32(i))),
		Actions:  []Action{Output(uint16(i % 4))},
	}
}

func benchPackets(n int) []*packet.Packet {
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = packet.NewUDP(
			packet.Endpoint{MAC: packet.HostMAC(1000), IP: packet.HostIP(1000), Port: 4001},
			packet.Endpoint{MAC: packet.HostMAC(uint32(i)), IP: packet.HostIP(uint32(i)), Port: 5001},
			[]byte("payload"),
		)
	}
	return pkts
}

var tableSizes = []int{8, 64, 512}

// workingSet caps the concurrent-flow count at the table size so every
// benchmark packet has a matching rule.
func workingSet(n int) int {
	if n < 16 {
		return n
	}
	return 16
}

// BenchmarkFlowTableLookup measures the two-tier classifier in steady
// state: a small working set of flows over an n-entry table, so lookups
// after warm-up are microflow-cache hits. This is the headline number
// recorded in BENCH_3.json; per-op cost must be flat across table sizes
// and allocation-free.
func BenchmarkFlowTableLookup(b *testing.B) {
	for _, n := range tableSizes {
		b.Run(fmt.Sprintf("%dentries", n), func(b *testing.B) {
			sched := sim.NewScheduler()
			tbl := NewFlowTable(sched)
			for i := 0; i < n; i++ {
				tbl.Add(macRule(i))
			}
			pkts := benchPackets(workingSet(n)) // concurrent microflows, all matching rules
			for _, p := range pkts {
				tbl.Lookup(3, p) // warm the cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tbl.Lookup(3, pkts[i%len(pkts)]) == nil {
					b.Fatal("unexpected miss")
				}
			}
			s := tbl.Stats()
			b.ReportMetric(s.HitRate()*100, "hit%")
		})
	}
}

// BenchmarkFlowTableLookupTier2 forces every lookup through the
// tuple-space search by invalidating the microflow cache each time —
// the cost a table mutation storm would expose.
func BenchmarkFlowTableLookupTier2(b *testing.B) {
	for _, n := range tableSizes {
		b.Run(fmt.Sprintf("%dentries", n), func(b *testing.B) {
			sched := sim.NewScheduler()
			tbl := NewFlowTable(sched)
			for i := 0; i < n; i++ {
				tbl.Add(macRule(i))
			}
			pkts := benchPackets(workingSet(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tbl.gen++ // invalidate tier 1: every lookup re-searches
				if tbl.Lookup(3, pkts[i%len(pkts)]) == nil {
					b.Fatal("unexpected miss")
				}
			}
		})
	}
}

// BenchmarkFlowTableLookupLinear is the seed baseline on the identical
// workload.
func BenchmarkFlowTableLookupLinear(b *testing.B) {
	for _, n := range tableSizes {
		b.Run(fmt.Sprintf("%dentries", n), func(b *testing.B) {
			sched := sim.NewScheduler()
			tbl := &linearFlowTable{sched: sched}
			for i := 0; i < n; i++ {
				tbl.add(macRule(i))
			}
			pkts := benchPackets(workingSet(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tbl.lookup(3, pkts[i%len(pkts)]) == nil {
					b.Fatal("unexpected miss")
				}
			}
		})
	}
}

// TestFlowTableLookupZeroAlloc is the hard guarantee behind the
// benchmarks: steady-state lookups allocate nothing, on the microflow
// path and on the tuple-space path alike.
func TestFlowTableLookupZeroAlloc(t *testing.T) {
	sched := sim.NewScheduler()
	tbl := NewFlowTable(sched)
	for i := 0; i < 64; i++ {
		tbl.Add(macRule(i))
	}
	pkts := benchPackets(8)
	for _, p := range pkts {
		tbl.Lookup(3, p)
	}

	if avg := testing.AllocsPerRun(200, func() {
		for _, p := range pkts {
			if tbl.Lookup(3, p) == nil {
				t.Fatal("miss")
			}
		}
	}); avg != 0 {
		t.Fatalf("microflow-hit Lookup allocates %.1f/run, want 0", avg)
	}

	if avg := testing.AllocsPerRun(200, func() {
		tbl.gen++ // force tier 2
		for _, p := range pkts {
			if tbl.Lookup(3, p) == nil {
				t.Fatal("miss")
			}
		}
	}); avg != 0 {
		t.Fatalf("tuple-search Lookup allocates %.1f/run, want 0", avg)
	}

	if avg := testing.AllocsPerRun(200, func() {
		pkt := pkts[0]
		save := pkt.Eth.Dst
		pkt.Eth.Dst = packet.HostMAC(9999) // matches no rule
		if tbl.Lookup(3, pkt) != nil {
			t.Fatal("unexpected hit")
		}
		pkt.Eth.Dst = save
	}); avg != 0 {
		t.Fatalf("table-miss Lookup allocates %.1f/run, want 0", avg)
	}
}
