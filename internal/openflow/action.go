package openflow

import (
	"fmt"

	"netco/internal/packet"
)

// Reserved output port numbers (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// ActionType enumerates the OpenFlow 1.0 action subset implemented here.
type ActionType uint16

// Action types, with their ofp_action_type wire values.
const (
	ActionOutput     ActionType = 0
	ActionSetVLANVID ActionType = 1
	ActionSetVLANPCP ActionType = 2
	ActionStripVLAN  ActionType = 3
	ActionSetDlSrc   ActionType = 4
	ActionSetDlDst   ActionType = 5
	ActionSetNwSrc   ActionType = 6
	ActionSetNwDst   ActionType = 7
	ActionSetNwTOS   ActionType = 8
	ActionSetTpSrc   ActionType = 9
	ActionSetTpDst   ActionType = 10
)

// Action is a single OpenFlow action. Which fields are meaningful depends
// on Type, mirroring the variant encoding of ofp_action_*. An empty action
// list means drop.
type Action struct {
	Type ActionType

	Port   uint16        // Output
	MaxLen uint16        // Output to controller: bytes to include
	MAC    packet.MAC    // SetDlSrc / SetDlDst
	IP     packet.IPAddr // SetNwSrc / SetNwDst
	VLAN   uint16        // SetVLANVID
	PCP    uint8         // SetVLANPCP
	TOS    uint8         // SetNwTOS
	TpPort uint16        // SetTpSrc / SetTpDst
}

// Output returns an output-to-port action.
func Output(port uint16) Action { return Action{Type: ActionOutput, Port: port} }

// OutputController returns an output-to-controller action carrying at most
// maxLen bytes of the packet.
func OutputController(maxLen uint16) Action {
	return Action{Type: ActionOutput, Port: PortController, MaxLen: maxLen}
}

// SetVLANVID returns an action that tags the frame with the VLAN ID.
func SetVLANVID(vid uint16) Action { return Action{Type: ActionSetVLANVID, VLAN: vid} }

// SetVLANPCP returns an action that sets the VLAN priority.
func SetVLANPCP(pcp uint8) Action { return Action{Type: ActionSetVLANPCP, PCP: pcp} }

// StripVLAN returns an action that removes any VLAN tag.
func StripVLAN() Action { return Action{Type: ActionStripVLAN} }

// SetDlSrc returns an action that rewrites the Ethernet source.
func SetDlSrc(mac packet.MAC) Action { return Action{Type: ActionSetDlSrc, MAC: mac} }

// SetDlDst returns an action that rewrites the Ethernet destination.
func SetDlDst(mac packet.MAC) Action { return Action{Type: ActionSetDlDst, MAC: mac} }

// SetNwSrc returns an action that rewrites the IPv4 source.
func SetNwSrc(ip packet.IPAddr) Action { return Action{Type: ActionSetNwSrc, IP: ip} }

// SetNwDst returns an action that rewrites the IPv4 destination.
func SetNwDst(ip packet.IPAddr) Action { return Action{Type: ActionSetNwDst, IP: ip} }

// SetNwTOS returns an action that rewrites the IP TOS byte.
func SetNwTOS(tos uint8) Action { return Action{Type: ActionSetNwTOS, TOS: tos} }

// SetTpSrc returns an action that rewrites the transport source port.
func SetTpSrc(p uint16) Action { return Action{Type: ActionSetTpSrc, TpPort: p} }

// SetTpDst returns an action that rewrites the transport destination port.
func SetTpDst(p uint16) Action { return Action{Type: ActionSetTpDst, TpPort: p} }

// ApplyHeader applies a header-rewriting action to pkt in place. Output
// actions are a no-op here; the switch data plane interprets them.
func ApplyHeader(a Action, pkt *packet.Packet) {
	switch a.Type {
	case ActionSetVLANVID:
		if pkt.Eth.VLAN == nil {
			pkt.Eth.VLAN = &packet.VLANTag{}
		}
		pkt.Eth.VLAN.VID = a.VLAN & 0x0fff
	case ActionSetVLANPCP:
		if pkt.Eth.VLAN == nil {
			pkt.Eth.VLAN = &packet.VLANTag{}
		}
		pkt.Eth.VLAN.PCP = a.PCP & 0x7
	case ActionStripVLAN:
		pkt.Eth.VLAN = nil
	case ActionSetDlSrc:
		pkt.Eth.Src = a.MAC
	case ActionSetDlDst:
		pkt.Eth.Dst = a.MAC
	case ActionSetNwSrc:
		if pkt.IP != nil {
			pkt.IP.Src = a.IP
		}
	case ActionSetNwDst:
		if pkt.IP != nil {
			pkt.IP.Dst = a.IP
		}
	case ActionSetNwTOS:
		if pkt.IP != nil {
			pkt.IP.TOS = a.TOS &^ 0x3
		}
	case ActionSetTpSrc:
		switch {
		case pkt.TCP != nil:
			pkt.TCP.SrcPort = a.TpPort
		case pkt.UDP != nil:
			pkt.UDP.SrcPort = a.TpPort
		}
	case ActionSetTpDst:
		switch {
		case pkt.TCP != nil:
			pkt.TCP.DstPort = a.TpPort
		case pkt.UDP != nil:
			pkt.UDP.DstPort = a.TpPort
		}
	}
}

// String renders the action for diagnostics.
func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		switch a.Port {
		case PortController:
			return "output:CONTROLLER"
		case PortFlood:
			return "output:FLOOD"
		case PortAll:
			return "output:ALL"
		case PortInPort:
			return "output:IN_PORT"
		default:
			return fmt.Sprintf("output:%d", a.Port)
		}
	case ActionSetVLANVID:
		return fmt.Sprintf("set_vlan_vid:%d", a.VLAN)
	case ActionSetVLANPCP:
		return fmt.Sprintf("set_vlan_pcp:%d", a.PCP)
	case ActionStripVLAN:
		return "strip_vlan"
	case ActionSetDlSrc:
		return "set_dl_src:" + a.MAC.String()
	case ActionSetDlDst:
		return "set_dl_dst:" + a.MAC.String()
	case ActionSetNwSrc:
		return "set_nw_src:" + a.IP.String()
	case ActionSetNwDst:
		return "set_nw_dst:" + a.IP.String()
	case ActionSetNwTOS:
		return fmt.Sprintf("set_nw_tos:%d", a.TOS)
	case ActionSetTpSrc:
		return fmt.Sprintf("set_tp_src:%d", a.TpPort)
	case ActionSetTpDst:
		return fmt.Sprintf("set_tp_dst:%d", a.TpPort)
	}
	return fmt.Sprintf("unknown(%d)", a.Type)
}
