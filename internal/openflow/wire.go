package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netco/internal/packet"
)

// Version is the OpenFlow protocol version implemented (1.0).
const Version uint8 = 0x01

// MsgType enumerates OpenFlow 1.0 message types.
type MsgType uint8

// Message types (ofp_type).
const (
	MsgHello           MsgType = 0
	MsgError           MsgType = 1
	MsgEchoRequest     MsgType = 2
	MsgEchoReply       MsgType = 3
	MsgVendor          MsgType = 4
	MsgFeaturesRequest MsgType = 5
	MsgFeaturesReply   MsgType = 6
	MsgPacketIn        MsgType = 10
	MsgFlowRemoved     MsgType = 11
	MsgPortStatus      MsgType = 12
	MsgPacketOut       MsgType = 13
	MsgFlowMod         MsgType = 14
	MsgStatsRequest    MsgType = 16
	MsgStatsReply      MsgType = 17
	MsgBarrierRequest  MsgType = 18
	MsgBarrierReply    MsgType = 19
)

// FlowMod commands (ofp_flow_mod_command).
const (
	FlowAdd          uint16 = 0
	FlowModify       uint16 = 1
	FlowModifyStrict uint16 = 2
	FlowDelete       uint16 = 3
	FlowDeleteStrict uint16 = 4
)

// PacketIn reasons (ofp_packet_in_reason).
const (
	PacketInNoMatch uint8 = 0
	PacketInAction  uint8 = 1
)

// Stats types (ofp_stats_types).
const (
	StatsFlow uint16 = 1
	StatsPort uint16 = 4
)

// NoBuffer is the buffer id meaning "full packet included".
const NoBuffer uint32 = 0xffffffff

// Codec errors.
var (
	ErrShortMessage = errors.New("openflow: message truncated")
	ErrBadVersion   = errors.New("openflow: unsupported version")
	ErrBadMessage   = errors.New("openflow: malformed message")
)

// Message is any OpenFlow protocol message.
type Message interface {
	// MsgType returns the wire type code.
	MsgType() MsgType
}

// Hello opens the handshake.
type Hello struct{}

// MsgType implements Message.
func (Hello) MsgType() MsgType { return MsgHello }

// EchoRequest is a liveness probe carrying arbitrary data.
type EchoRequest struct{ Data []byte }

// MsgType implements Message.
func (EchoRequest) MsgType() MsgType { return MsgEchoRequest }

// EchoReply answers an EchoRequest with the same data.
type EchoReply struct{ Data []byte }

// MsgType implements Message.
func (EchoReply) MsgType() MsgType { return MsgEchoReply }

// FeaturesRequest asks a switch to describe itself.
type FeaturesRequest struct{}

// MsgType implements Message.
func (FeaturesRequest) MsgType() MsgType { return MsgFeaturesRequest }

// PhyPort describes one switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     packet.MAC
	Name       string // at most 15 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

// FeaturesReply describes a switch (ofp_switch_features).
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	ActionBits   uint32
	Ports        []PhyPort
}

// MsgType implements Message.
func (FeaturesReply) MsgType() MsgType { return MsgFeaturesReply }

// PacketIn carries a data-plane packet to the controller.
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// MsgType implements Message.
func (PacketIn) MsgType() MsgType { return MsgPacketIn }

// PacketOut injects a packet into the data plane.
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

// MsgType implements Message.
func (PacketOut) MsgType() MsgType { return MsgPacketOut }

// FlowMod adds, modifies or deletes flow entries. Idle and hard timeouts
// are in seconds, as on the wire.
type FlowMod struct {
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// FlowMod flags.
const (
	FlagSendFlowRem uint16 = 1 << 0
)

// MsgType implements Message.
func (FlowMod) MsgType() MsgType { return MsgFlowMod }

// FlowRemoved notifies the controller that an entry left the table.
type FlowRemoved struct {
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       RemovedReason
	DurationSec  uint32
	DurationNSec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// MsgType implements Message.
func (FlowRemoved) MsgType() MsgType { return MsgFlowRemoved }

// PortStatus reports a port change.
type PortStatus struct {
	Reason uint8
	Desc   PhyPort
}

// MsgType implements Message.
func (PortStatus) MsgType() MsgType { return MsgPortStatus }

// BarrierRequest requests completion of all prior messages.
type BarrierRequest struct{}

// MsgType implements Message.
func (BarrierRequest) MsgType() MsgType { return MsgBarrierRequest }

// BarrierReply confirms a barrier.
type BarrierReply struct{}

// MsgType implements Message.
func (BarrierReply) MsgType() MsgType { return MsgBarrierReply }

// Error reports a protocol error.
type Error struct {
	Code    uint16
	ErrType uint16
	Data    []byte
}

// MsgType implements Message.
func (Error) MsgType() MsgType { return MsgError }

// FlowStatsRequest selects flows for a StatsRequest.
type FlowStatsRequest struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// PortStatsRequest selects a port (PortNone = all) for a StatsRequest.
type PortStatsRequest struct {
	PortNo uint16
}

// StatsRequest queries switch statistics. Exactly one of Flow/Port is
// non-nil, per StatsType.
type StatsRequest struct {
	StatsType uint16
	Flags     uint16
	Flow      *FlowStatsRequest
	Port      *PortStatsRequest
}

// MsgType implements Message.
func (StatsRequest) MsgType() MsgType { return MsgStatsRequest }

// FlowStats is one entry of a flow-stats reply.
type FlowStats struct {
	TableID     uint8
	Match       Match
	DurationSec uint32
	Priority    uint16
	IdleTimeout uint16
	HardTimeout uint16
	Cookie      uint64
	PacketCount uint64
	ByteCount   uint64
	Actions     []Action
}

// PortStats is one entry of a port-stats reply (transmit/receive counters
// only; the error counters the prototype never reads are omitted from the
// struct but padded on the wire).
type PortStats struct {
	PortNo    uint16
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

// StatsReply answers a StatsRequest.
type StatsReply struct {
	StatsType uint16
	Flags     uint16
	Flow      []FlowStats
	Port      []PortStats
}

// MsgType implements Message.
func (StatsReply) MsgType() MsgType { return MsgStatsReply }

const (
	headerLen = 8
	matchLen  = 40
)

// Encode serialises a message with the given transaction id into OpenFlow
// 1.0 wire format.
func Encode(m Message, xid uint32) []byte {
	body := encodeBody(m)
	buf := make([]byte, headerLen, headerLen+len(body))
	buf[0] = Version
	buf[1] = byte(m.MsgType())
	binary.BigEndian.PutUint16(buf[2:4], uint16(headerLen+len(body)))
	binary.BigEndian.PutUint32(buf[4:8], xid)
	return append(buf, body...)
}

// AppendEncode appends the encoded form of m to dst and returns the
// extended slice. PacketIn and PacketOut — the compare channel's
// per-copy messages — are encoded directly into dst with a single exact
// reservation instead of the intermediate body buffer Encode builds, so
// the simulator hot path pays one allocation (or none, when dst has
// capacity) per encapsulation.
func AppendEncode(dst []byte, m Message, xid uint32) []byte {
	switch v := m.(type) {
	case PacketIn:
		dst = reserve(dst, headerLen+10+len(v.Data))
		dst = appendHeader(dst, m.MsgType(), headerLen+10+len(v.Data), xid)
		dst = binary.BigEndian.AppendUint32(dst, v.BufferID)
		dst = binary.BigEndian.AppendUint16(dst, v.TotalLen)
		dst = binary.BigEndian.AppendUint16(dst, v.InPort)
		dst = append(dst, v.Reason, 0)
		return append(dst, v.Data...)
	case PacketOut:
		alen := actionsWireLen(v.Actions)
		total := headerLen + 8 + alen + len(v.Data)
		dst = reserve(dst, total)
		dst = appendHeader(dst, m.MsgType(), total, xid)
		dst = binary.BigEndian.AppendUint32(dst, v.BufferID)
		dst = binary.BigEndian.AppendUint16(dst, v.InPort)
		dst = binary.BigEndian.AppendUint16(dst, uint16(alen))
		dst = appendActions(dst, v.Actions)
		return append(dst, v.Data...)
	default:
		body := encodeBody(m)
		dst = reserve(dst, headerLen+len(body))
		dst = appendHeader(dst, m.MsgType(), headerLen+len(body), xid)
		return append(dst, body...)
	}
}

// reserve guarantees dst has capacity for n more bytes.
func reserve(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	grown := make([]byte, len(dst), len(dst)+n)
	copy(grown, dst)
	return grown
}

func appendHeader(dst []byte, t MsgType, total int, xid uint32) []byte {
	dst = append(dst, Version, byte(t))
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	return binary.BigEndian.AppendUint32(dst, xid)
}

// actionsWireLen returns the encoded length of an action list.
func actionsWireLen(actions []Action) int {
	n := 0
	for _, a := range actions {
		switch a.Type {
		case ActionSetDlSrc, ActionSetDlDst:
			n += 16
		default:
			n += 8
		}
	}
	return n
}

func encodeBody(m Message) []byte {
	switch v := m.(type) {
	case Hello, FeaturesRequest, BarrierRequest, BarrierReply:
		return nil
	case EchoRequest:
		return v.Data
	case EchoReply:
		return v.Data
	case Error:
		b := make([]byte, 4, 4+len(v.Data))
		binary.BigEndian.PutUint16(b[0:2], v.ErrType)
		binary.BigEndian.PutUint16(b[2:4], v.Code)
		return append(b, v.Data...)
	case FeaturesReply:
		b := make([]byte, 24, 24+48*len(v.Ports))
		binary.BigEndian.PutUint64(b[0:8], v.DatapathID)
		binary.BigEndian.PutUint32(b[8:12], v.NBuffers)
		b[12] = v.NTables
		binary.BigEndian.PutUint32(b[16:20], v.Capabilities)
		binary.BigEndian.PutUint32(b[20:24], v.ActionBits)
		for _, p := range v.Ports {
			b = append(b, encodePhyPort(p)...)
		}
		return b
	case PacketIn:
		b := make([]byte, 10, 10+len(v.Data))
		binary.BigEndian.PutUint32(b[0:4], v.BufferID)
		binary.BigEndian.PutUint16(b[4:6], v.TotalLen)
		binary.BigEndian.PutUint16(b[6:8], v.InPort)
		b[8] = v.Reason
		return append(b, v.Data...)
	case PacketOut:
		actions := encodeActions(v.Actions)
		b := make([]byte, 8, 8+len(actions)+len(v.Data))
		binary.BigEndian.PutUint32(b[0:4], v.BufferID)
		binary.BigEndian.PutUint16(b[4:6], v.InPort)
		binary.BigEndian.PutUint16(b[6:8], uint16(len(actions)))
		b = append(b, actions...)
		return append(b, v.Data...)
	case FlowMod:
		b := make([]byte, 0, matchLen+24)
		b = append(b, encodeMatch(v.Match)...)
		b = binary.BigEndian.AppendUint64(b, v.Cookie)
		b = binary.BigEndian.AppendUint16(b, v.Command)
		b = binary.BigEndian.AppendUint16(b, v.IdleTimeout)
		b = binary.BigEndian.AppendUint16(b, v.HardTimeout)
		b = binary.BigEndian.AppendUint16(b, v.Priority)
		b = binary.BigEndian.AppendUint32(b, v.BufferID)
		b = binary.BigEndian.AppendUint16(b, v.OutPort)
		b = binary.BigEndian.AppendUint16(b, v.Flags)
		return append(b, encodeActions(v.Actions)...)
	case FlowRemoved:
		b := make([]byte, 0, matchLen+40)
		b = append(b, encodeMatch(v.Match)...)
		b = binary.BigEndian.AppendUint64(b, v.Cookie)
		b = binary.BigEndian.AppendUint16(b, v.Priority)
		b = append(b, byte(v.Reason), 0)
		b = binary.BigEndian.AppendUint32(b, v.DurationSec)
		b = binary.BigEndian.AppendUint32(b, v.DurationNSec)
		b = binary.BigEndian.AppendUint16(b, v.IdleTimeout)
		b = append(b, 0, 0)
		b = binary.BigEndian.AppendUint64(b, v.PacketCount)
		return binary.BigEndian.AppendUint64(b, v.ByteCount)
	case PortStatus:
		b := make([]byte, 8, 8+48)
		b[0] = v.Reason
		return append(b, encodePhyPort(v.Desc)...)
	case StatsRequest:
		b := make([]byte, 4)
		binary.BigEndian.PutUint16(b[0:2], v.StatsType)
		binary.BigEndian.PutUint16(b[2:4], v.Flags)
		switch v.StatsType {
		case StatsFlow:
			b = append(b, encodeMatch(v.Flow.Match)...)
			b = append(b, v.Flow.TableID, 0)
			b = binary.BigEndian.AppendUint16(b, v.Flow.OutPort)
		case StatsPort:
			b = binary.BigEndian.AppendUint16(b, v.Port.PortNo)
			b = append(b, 0, 0, 0, 0, 0, 0)
		}
		return b
	case StatsReply:
		b := make([]byte, 4)
		binary.BigEndian.PutUint16(b[0:2], v.StatsType)
		binary.BigEndian.PutUint16(b[2:4], v.Flags)
		switch v.StatsType {
		case StatsFlow:
			for _, fs := range v.Flow {
				b = append(b, encodeFlowStats(fs)...)
			}
		case StatsPort:
			for _, ps := range v.Port {
				b = append(b, encodePortStats(ps)...)
			}
		}
		return b
	default:
		panic(fmt.Sprintf("openflow: cannot encode %T", m))
	}
}

// DecodePacketIn is the compare channel's zero-allocation decode path: it
// parses a PacketIn without boxing the result in the Message interface,
// and the returned Data field aliases buf instead of copying it. Callers
// must therefore treat the data as valid only while buf is; the generic
// Decode keeps its defensive copy.
func DecodePacketIn(buf []byte) (PacketIn, error) {
	body, err := checkHeader(buf, MsgPacketIn)
	if err != nil {
		return PacketIn{}, err
	}
	if len(body) < 10 {
		return PacketIn{}, fmt.Errorf("%w: packet-in body", ErrShortMessage)
	}
	return PacketIn{
		BufferID: binary.BigEndian.Uint32(body[0:4]),
		TotalLen: binary.BigEndian.Uint16(body[4:6]),
		InPort:   binary.BigEndian.Uint16(body[6:8]),
		Reason:   body[8],
		Data:     body[10:],
	}, nil
}

// DecodePacketOutData extracts a PacketOut's payload without materialising
// the action list or copying: the returned slice aliases buf. The action
// bytes are length-checked but not parsed — the compare channel's release
// path only forwards the enclosed frame.
func DecodePacketOutData(buf []byte) ([]byte, error) {
	body, err := checkHeader(buf, MsgPacketOut)
	if err != nil {
		return nil, err
	}
	if len(body) < 8 {
		return nil, fmt.Errorf("%w: packet-out body", ErrShortMessage)
	}
	alen := int(binary.BigEndian.Uint16(body[6:8]))
	if 8+alen > len(body) {
		return nil, fmt.Errorf("%w: packet-out actions", ErrShortMessage)
	}
	return body[8+alen:], nil
}

// checkHeader validates the OpenFlow header and expected type, returning
// the body slice.
func checkHeader(buf []byte, want MsgType) ([]byte, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("%w: header (%d bytes)", ErrShortMessage, len(buf))
	}
	if buf[0] != Version {
		return nil, fmt.Errorf("%w: %#x", ErrBadVersion, buf[0])
	}
	if MsgType(buf[1]) != want {
		return nil, fmt.Errorf("%w: type %d, want %d", ErrBadMessage, buf[1], want)
	}
	length := int(binary.BigEndian.Uint16(buf[2:4]))
	if length < headerLen || length > len(buf) {
		return nil, fmt.Errorf("%w: declared %d of %d bytes", ErrShortMessage, length, len(buf))
	}
	return buf[headerLen:length], nil
}

// Decode parses one wire-format message, returning the message and its
// transaction id.
func Decode(buf []byte) (Message, uint32, error) {
	if len(buf) < headerLen {
		return nil, 0, fmt.Errorf("%w: header (%d bytes)", ErrShortMessage, len(buf))
	}
	if buf[0] != Version {
		return nil, 0, fmt.Errorf("%w: %#x", ErrBadVersion, buf[0])
	}
	typ := MsgType(buf[1])
	length := int(binary.BigEndian.Uint16(buf[2:4]))
	xid := binary.BigEndian.Uint32(buf[4:8])
	if length < headerLen || length > len(buf) {
		return nil, 0, fmt.Errorf("%w: declared %d of %d bytes", ErrShortMessage, length, len(buf))
	}
	body := buf[headerLen:length]
	m, err := decodeBody(typ, body)
	if err != nil {
		return nil, 0, err
	}
	return m, xid, nil
}

func decodeBody(typ MsgType, b []byte) (Message, error) {
	switch typ {
	case MsgHello:
		return Hello{}, nil
	case MsgEchoRequest:
		return EchoRequest{Data: clone(b)}, nil
	case MsgEchoReply:
		return EchoReply{Data: clone(b)}, nil
	case MsgFeaturesRequest:
		return FeaturesRequest{}, nil
	case MsgBarrierRequest:
		return BarrierRequest{}, nil
	case MsgBarrierReply:
		return BarrierReply{}, nil
	case MsgError:
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: error body", ErrShortMessage)
		}
		return Error{
			ErrType: binary.BigEndian.Uint16(b[0:2]),
			Code:    binary.BigEndian.Uint16(b[2:4]),
			Data:    clone(b[4:]),
		}, nil
	case MsgFeaturesReply:
		if len(b) < 24 || (len(b)-24)%48 != 0 {
			return nil, fmt.Errorf("%w: features reply body %d", ErrBadMessage, len(b))
		}
		v := FeaturesReply{
			DatapathID:   binary.BigEndian.Uint64(b[0:8]),
			NBuffers:     binary.BigEndian.Uint32(b[8:12]),
			NTables:      b[12],
			Capabilities: binary.BigEndian.Uint32(b[16:20]),
			ActionBits:   binary.BigEndian.Uint32(b[20:24]),
		}
		for off := 24; off < len(b); off += 48 {
			v.Ports = append(v.Ports, decodePhyPort(b[off:off+48]))
		}
		return v, nil
	case MsgPacketIn:
		if len(b) < 10 {
			return nil, fmt.Errorf("%w: packet-in body", ErrShortMessage)
		}
		return PacketIn{
			BufferID: binary.BigEndian.Uint32(b[0:4]),
			TotalLen: binary.BigEndian.Uint16(b[4:6]),
			InPort:   binary.BigEndian.Uint16(b[6:8]),
			Reason:   b[8],
			Data:     clone(b[10:]),
		}, nil
	case MsgPacketOut:
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: packet-out body", ErrShortMessage)
		}
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		if 8+alen > len(b) {
			return nil, fmt.Errorf("%w: packet-out actions", ErrShortMessage)
		}
		actions, err := decodeActions(b[8 : 8+alen])
		if err != nil {
			return nil, err
		}
		return PacketOut{
			BufferID: binary.BigEndian.Uint32(b[0:4]),
			InPort:   binary.BigEndian.Uint16(b[4:6]),
			Actions:  actions,
			Data:     clone(b[8+alen:]),
		}, nil
	case MsgFlowMod:
		if len(b) < matchLen+24 {
			return nil, fmt.Errorf("%w: flow-mod body", ErrShortMessage)
		}
		m, err := decodeMatch(b[:matchLen])
		if err != nil {
			return nil, err
		}
		rest := b[matchLen:]
		actions, err := decodeActions(rest[24:])
		if err != nil {
			return nil, err
		}
		return FlowMod{
			Match:       m,
			Cookie:      binary.BigEndian.Uint64(rest[0:8]),
			Command:     binary.BigEndian.Uint16(rest[8:10]),
			IdleTimeout: binary.BigEndian.Uint16(rest[10:12]),
			HardTimeout: binary.BigEndian.Uint16(rest[12:14]),
			Priority:    binary.BigEndian.Uint16(rest[14:16]),
			BufferID:    binary.BigEndian.Uint32(rest[16:20]),
			OutPort:     binary.BigEndian.Uint16(rest[20:22]),
			Flags:       binary.BigEndian.Uint16(rest[22:24]),
			Actions:     actions,
		}, nil
	case MsgFlowRemoved:
		if len(b) < matchLen+40 {
			return nil, fmt.Errorf("%w: flow-removed body", ErrShortMessage)
		}
		m, err := decodeMatch(b[:matchLen])
		if err != nil {
			return nil, err
		}
		rest := b[matchLen:]
		return FlowRemoved{
			Match:        m,
			Cookie:       binary.BigEndian.Uint64(rest[0:8]),
			Priority:     binary.BigEndian.Uint16(rest[8:10]),
			Reason:       RemovedReason(rest[10]),
			DurationSec:  binary.BigEndian.Uint32(rest[12:16]),
			DurationNSec: binary.BigEndian.Uint32(rest[16:20]),
			IdleTimeout:  binary.BigEndian.Uint16(rest[20:22]),
			PacketCount:  binary.BigEndian.Uint64(rest[24:32]),
			ByteCount:    binary.BigEndian.Uint64(rest[32:40]),
		}, nil
	case MsgPortStatus:
		if len(b) < 8+48 {
			return nil, fmt.Errorf("%w: port-status body", ErrShortMessage)
		}
		return PortStatus{Reason: b[0], Desc: decodePhyPort(b[8:56])}, nil
	case MsgStatsRequest:
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: stats request", ErrShortMessage)
		}
		v := StatsRequest{
			StatsType: binary.BigEndian.Uint16(b[0:2]),
			Flags:     binary.BigEndian.Uint16(b[2:4]),
		}
		rest := b[4:]
		switch v.StatsType {
		case StatsFlow:
			if len(rest) < matchLen+4 {
				return nil, fmt.Errorf("%w: flow stats request", ErrShortMessage)
			}
			m, err := decodeMatch(rest[:matchLen])
			if err != nil {
				return nil, err
			}
			v.Flow = &FlowStatsRequest{
				Match:   m,
				TableID: rest[matchLen],
				OutPort: binary.BigEndian.Uint16(rest[matchLen+2 : matchLen+4]),
			}
		case StatsPort:
			if len(rest) < 8 {
				return nil, fmt.Errorf("%w: port stats request", ErrShortMessage)
			}
			v.Port = &PortStatsRequest{PortNo: binary.BigEndian.Uint16(rest[0:2])}
		default:
			return nil, fmt.Errorf("%w: stats type %d", ErrBadMessage, v.StatsType)
		}
		return v, nil
	case MsgStatsReply:
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: stats reply", ErrShortMessage)
		}
		v := StatsReply{
			StatsType: binary.BigEndian.Uint16(b[0:2]),
			Flags:     binary.BigEndian.Uint16(b[2:4]),
		}
		rest := b[4:]
		switch v.StatsType {
		case StatsFlow:
			for len(rest) > 0 {
				fs, n, err := decodeFlowStats(rest)
				if err != nil {
					return nil, err
				}
				v.Flow = append(v.Flow, fs)
				rest = rest[n:]
			}
		case StatsPort:
			if len(rest)%104 != 0 {
				return nil, fmt.Errorf("%w: port stats body %d", ErrBadMessage, len(rest))
			}
			for off := 0; off < len(rest); off += 104 {
				v.Port = append(v.Port, decodePortStats(rest[off:off+104]))
			}
		default:
			return nil, fmt.Errorf("%w: stats type %d", ErrBadMessage, v.StatsType)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadMessage, typ)
	}
}

func clone(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// encodeMatch serialises ofp_match (40 bytes).
func encodeMatch(m Match) []byte {
	b := make([]byte, matchLen)
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DlSrc[:])
	copy(b[12:18], m.DlDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DlVLAN)
	b[20] = m.DlVLANPCP
	binary.BigEndian.PutUint16(b[22:24], m.DlType)
	b[24] = m.NwTOS
	b[25] = m.NwProto
	copy(b[28:32], m.NwSrc[:])
	copy(b[32:36], m.NwDst[:])
	binary.BigEndian.PutUint16(b[36:38], m.TpSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TpDst)
	return b
}

func decodeMatch(b []byte) (Match, error) {
	var m Match
	if len(b) < matchLen {
		return m, fmt.Errorf("%w: match", ErrShortMessage)
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DlSrc[:], b[6:12])
	copy(m.DlDst[:], b[12:18])
	m.DlVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DlVLANPCP = b[20]
	m.DlType = binary.BigEndian.Uint16(b[22:24])
	m.NwTOS = b[24]
	m.NwProto = b[25]
	copy(m.NwSrc[:], b[28:32])
	copy(m.NwDst[:], b[32:36])
	m.TpSrc = binary.BigEndian.Uint16(b[36:38])
	m.TpDst = binary.BigEndian.Uint16(b[38:40])
	return m, nil
}

func encodePhyPort(p PhyPort) []byte {
	b := make([]byte, 48)
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	copy(b[8:24], p.Name)
	b[23] = 0 // NUL-terminated on the wire
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
	return b
}

func decodePhyPort(b []byte) PhyPort {
	var p PhyPort
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return p
}

// encodeActions serialises an action list (ofp_action_*).
func encodeActions(actions []Action) []byte {
	return appendActions(nil, actions)
}

// appendActions serialises an action list into b.
func appendActions(b []byte, actions []Action) []byte {
	for _, a := range actions {
		switch a.Type {
		case ActionOutput:
			b = appendActionHeader(b, a.Type, 8)
			b = binary.BigEndian.AppendUint16(b, a.Port)
			b = binary.BigEndian.AppendUint16(b, a.MaxLen)
		case ActionSetVLANVID:
			b = appendActionHeader(b, a.Type, 8)
			b = binary.BigEndian.AppendUint16(b, a.VLAN)
			b = append(b, 0, 0)
		case ActionSetVLANPCP:
			b = appendActionHeader(b, a.Type, 8)
			b = append(b, a.PCP, 0, 0, 0)
		case ActionStripVLAN:
			b = appendActionHeader(b, a.Type, 8)
			b = append(b, 0, 0, 0, 0)
		case ActionSetDlSrc, ActionSetDlDst:
			b = appendActionHeader(b, a.Type, 16)
			b = append(b, a.MAC[:]...)
			b = append(b, 0, 0, 0, 0, 0, 0)
		case ActionSetNwSrc, ActionSetNwDst:
			b = appendActionHeader(b, a.Type, 8)
			b = append(b, a.IP[:]...)
		case ActionSetNwTOS:
			b = appendActionHeader(b, a.Type, 8)
			b = append(b, a.TOS, 0, 0, 0)
		case ActionSetTpSrc, ActionSetTpDst:
			b = appendActionHeader(b, a.Type, 8)
			b = binary.BigEndian.AppendUint16(b, a.TpPort)
			b = append(b, 0, 0)
		}
	}
	return b
}

func appendActionHeader(b []byte, t ActionType, length uint16) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(t))
	return binary.BigEndian.AppendUint16(b, length)
}

func decodeActions(b []byte) ([]Action, error) {
	var actions []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: action header", ErrShortMessage)
		}
		t := ActionType(binary.BigEndian.Uint16(b[0:2]))
		length := int(binary.BigEndian.Uint16(b[2:4]))
		if length < 8 || length > len(b) {
			return nil, fmt.Errorf("%w: action length %d of %d", ErrBadMessage, length, len(b))
		}
		body := b[4:length]
		a := Action{Type: t}
		switch t {
		case ActionOutput:
			a.Port = binary.BigEndian.Uint16(body[0:2])
			a.MaxLen = binary.BigEndian.Uint16(body[2:4])
		case ActionSetVLANVID:
			a.VLAN = binary.BigEndian.Uint16(body[0:2])
		case ActionSetVLANPCP:
			a.PCP = body[0]
		case ActionStripVLAN:
		case ActionSetDlSrc, ActionSetDlDst:
			if len(body) < 6 {
				return nil, fmt.Errorf("%w: dl action", ErrShortMessage)
			}
			copy(a.MAC[:], body[0:6])
		case ActionSetNwSrc, ActionSetNwDst:
			copy(a.IP[:], body[0:4])
		case ActionSetNwTOS:
			a.TOS = body[0]
		case ActionSetTpSrc, ActionSetTpDst:
			a.TpPort = binary.BigEndian.Uint16(body[0:2])
		default:
			return nil, fmt.Errorf("%w: action type %d", ErrBadMessage, t)
		}
		actions = append(actions, a)
		b = b[length:]
	}
	return actions, nil
}

func encodeFlowStats(fs FlowStats) []byte {
	actions := encodeActions(fs.Actions)
	b := make([]byte, 0, 88+len(actions))
	b = binary.BigEndian.AppendUint16(b, uint16(88+len(actions)))
	b = append(b, fs.TableID, 0)
	b = append(b, encodeMatch(fs.Match)...)
	b = binary.BigEndian.AppendUint32(b, fs.DurationSec)
	b = binary.BigEndian.AppendUint32(b, 0) // duration_nsec
	b = binary.BigEndian.AppendUint16(b, fs.Priority)
	b = binary.BigEndian.AppendUint16(b, fs.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, fs.HardTimeout)
	b = append(b, 0, 0, 0, 0, 0, 0) // pad
	b = binary.BigEndian.AppendUint64(b, fs.Cookie)
	b = binary.BigEndian.AppendUint64(b, fs.PacketCount)
	b = binary.BigEndian.AppendUint64(b, fs.ByteCount)
	return append(b, actions...)
}

func decodeFlowStats(b []byte) (FlowStats, int, error) {
	var fs FlowStats
	if len(b) < 88 {
		return fs, 0, fmt.Errorf("%w: flow stats entry", ErrShortMessage)
	}
	length := int(binary.BigEndian.Uint16(b[0:2]))
	if length < 88 || length > len(b) {
		return fs, 0, fmt.Errorf("%w: flow stats length %d", ErrBadMessage, length)
	}
	fs.TableID = b[2]
	m, err := decodeMatch(b[4:44])
	if err != nil {
		return fs, 0, err
	}
	fs.Match = m
	fs.DurationSec = binary.BigEndian.Uint32(b[44:48])
	fs.Priority = binary.BigEndian.Uint16(b[52:54])
	fs.IdleTimeout = binary.BigEndian.Uint16(b[54:56])
	fs.HardTimeout = binary.BigEndian.Uint16(b[56:58])
	fs.Cookie = binary.BigEndian.Uint64(b[64:72])
	fs.PacketCount = binary.BigEndian.Uint64(b[72:80])
	fs.ByteCount = binary.BigEndian.Uint64(b[80:88])
	actions, err := decodeActions(b[88:length])
	if err != nil {
		return fs, 0, err
	}
	fs.Actions = actions
	return fs, length, nil
}

func encodePortStats(ps PortStats) []byte {
	b := make([]byte, 104)
	binary.BigEndian.PutUint16(b[0:2], ps.PortNo)
	binary.BigEndian.PutUint64(b[8:16], ps.RxPackets)
	binary.BigEndian.PutUint64(b[16:24], ps.TxPackets)
	binary.BigEndian.PutUint64(b[24:32], ps.RxBytes)
	binary.BigEndian.PutUint64(b[32:40], ps.TxBytes)
	binary.BigEndian.PutUint64(b[40:48], ps.RxDropped)
	binary.BigEndian.PutUint64(b[48:56], ps.TxDropped)
	return b
}

func decodePortStats(b []byte) PortStats {
	return PortStats{
		PortNo:    binary.BigEndian.Uint16(b[0:2]),
		RxPackets: binary.BigEndian.Uint64(b[8:16]),
		TxPackets: binary.BigEndian.Uint64(b[16:24]),
		RxBytes:   binary.BigEndian.Uint64(b[24:32]),
		TxBytes:   binary.BigEndian.Uint64(b[32:40]),
		RxDropped: binary.BigEndian.Uint64(b[40:48]),
		TxDropped: binary.BigEndian.Uint64(b[48:56]),
	}
}
