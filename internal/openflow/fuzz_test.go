package openflow

import (
	"testing"
	"testing/quick"

	"netco/internal/sim"
)

// TestDecodeNeverPanics feeds the codec random garbage: it must reject
// gracefully, never panic — a compromised switch owns one end of the
// control channel, so the decoder is attack surface.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		_, _, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnMutatedValid mutates valid messages byte by
// byte: decoding must never panic, and a successful decode must
// re-encode without panicking either.
func TestDecodeNeverPanicsOnMutatedValid(t *testing.T) {
	rng := sim.NewRNG(11)
	seeds := [][]byte{
		Encode(FlowMod{Match: MatchAll(), Command: FlowAdd, Actions: []Action{Output(1), SetVLANVID(5)}}, 1),
		Encode(PacketIn{BufferID: NoBuffer, InPort: 2, Data: []byte{1, 2, 3, 4}}, 2),
		Encode(StatsReply{StatsType: StatsFlow, Flow: []FlowStats{{Match: MatchAll(), Actions: []Action{Output(3)}}}}, 3),
		Encode(FeaturesReply{DatapathID: 9, Ports: []PhyPort{{PortNo: 1, Name: "x"}}}, 4),
	}
	for _, seed := range seeds {
		for trial := 0; trial < 500; trial++ {
			b := append([]byte(nil), seed...)
			for n := rng.Intn(4) + 1; n > 0; n-- {
				b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Decode panicked on mutated %x: %v", b, r)
					}
				}()
				if m, xid, err := Decode(b); err == nil {
					Encode(m, xid) // must also survive re-encoding
				}
			}()
		}
	}
}

// TestDecodeTruncationsNeverPanic decodes every prefix of valid messages.
func TestDecodeTruncationsNeverPanic(t *testing.T) {
	wire := Encode(FlowMod{
		Match:   MatchAll().WithInPort(1),
		Command: FlowAdd,
		Actions: []Action{SetDlSrc([6]byte{1, 2, 3, 4, 5, 6}), Output(2)},
	}, 7)
	for cut := 0; cut <= len(wire); cut++ {
		b := append([]byte(nil), wire[:cut]...)
		if cut >= 4 {
			// Keep the declared length self-consistent so the parser
			// digs into the body.
			b[2] = byte(cut >> 8)
			b[3] = byte(cut)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked at cut %d: %v", cut, r)
				}
			}()
			_, _, _ = Decode(b)
		}()
	}
}
