package runner

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"netco/internal/experiment"
	"netco/internal/metrics"
)

// Results come back in input order no matter how completion order is
// shuffled across workers.
func TestMapOrderIndependentOfCompletion(t *testing.T) {
	const n = 64
	results, errs := Map(context.Background(), 8, n, func(i int) (int, error) {
		// Early indices sleep longest, so completion order is roughly
		// reversed relative to dispatch order.
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("errs[%d] = %v", i, errs[i])
		}
		if results[i] != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, results[i], i*i)
		}
	}
}

// A panicking run fails with *PanicError; the process and the other runs
// survive.
func TestMapCapturesPanics(t *testing.T) {
	results, errs := Map(context.Background(), 4, 10, func(i int) (string, error) {
		if i == 3 {
			panic("boom")
		}
		return "ok", nil
	})
	var pe *PanicError
	if !errors.As(errs[3], &pe) {
		t.Fatalf("errs[3] = %v, want *PanicError", errs[3])
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v, want value boom with stack", pe)
	}
	if pe.Error() != "panic: boom" {
		t.Fatalf("Error() = %q, want deterministic short form", pe.Error())
	}
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if errs[i] != nil || results[i] != "ok" {
			t.Fatalf("run %d: result=%q err=%v", i, results[i], errs[i])
		}
	}
}

// Cancellation marks unstarted runs with ctx.Err() without invoking them.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var invoked atomic.Int64
	results, errs := Map(ctx, 1, 8, func(i int) (int, error) {
		invoked.Add(1)
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if got := invoked.Load(); got != 3 {
		t.Fatalf("invoked %d runs, want 3 (0,1,2 then cancel)", got)
	}
	for i := 0; i <= 2; i++ {
		if errs[i] != nil || results[i] != i {
			t.Fatalf("run %d: result=%d err=%v", i, results[i], errs[i])
		}
	}
	for i := 3; i < 8; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, errs[i])
		}
	}
}

func TestMapZeroAndDefaults(t *testing.T) {
	results, errs := Map(context.Background(), 0, 0, func(i int) (int, error) { return i, nil })
	if len(results) != 0 || len(errs) != 0 {
		t.Fatalf("n=0: got %d/%d", len(results), len(errs))
	}
	// workers <= 0 (GOMAXPROCS) and workers > n both still cover all runs.
	results, errs = Map(context.Background(), -1, 3, func(i int) (int, error) { return i + 1, nil })
	for i, r := range results {
		if errs[i] != nil || r != i+1 {
			t.Fatalf("run %d: %d/%v", i, r, errs[i])
		}
	}
}

// sweepGrid is a small but real grid: two kinds, two scenarios, two
// seeds, with durations cut far below even Quick for test wall-time.
func sweepGrid() Grid {
	p := experiment.DefaultParams().Quick()
	p.PingCount = 5
	p.UDPDuration = 50 * time.Millisecond
	return Grid{
		Kinds:     []experiment.Kind{experiment.KindPing, experiment.KindUDP},
		Scenarios: []experiment.Scenario{experiment.ScenLinespeed, experiment.ScenCentral3},
		Seeds:     []int64{1, 2},
		Variants:  []Variant{{Params: p}},
	}
}

// The acceptance criterion: the same grid produces byte-identical JSON
// whether one worker runs it or many.
func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	jobs := sweepGrid().Jobs()
	if len(jobs) != 8 {
		t.Fatalf("grid expanded to %d jobs, want 8", len(jobs))
	}
	serial := Sweep(context.Background(), 1, jobs)
	parallel := Sweep(context.Background(), 4, jobs)

	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("workers=1 and workers=4 artifacts differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b.String())
	}
	if serial.Failed != 0 {
		t.Fatalf("%d runs failed", serial.Failed)
	}
}

// Merged summaries equal the single-threaded fold of the same runs.
func TestSweepMergeMatchesSingleThreadedFold(t *testing.T) {
	jobs := sweepGrid().Jobs()
	rep := Sweep(context.Background(), 4, jobs)

	want := make(map[string]metrics.Summary)
	for _, rec := range rep.Runs {
		if rec.Result == nil {
			t.Fatalf("run %s seed %d failed: %s", rec.Group, rec.Seed, rec.Err)
		}
		for _, name := range summaryNames(rec.Result.Summaries) {
			key := rec.Group + "." + name
			m := want[key]
			m.Merge(rec.Result.Summaries[name])
			want[key] = m
		}
	}
	if len(rep.Merged) == 0 {
		t.Fatal("no merged summaries")
	}
	for key, w := range want {
		g, ok := rep.Merged[key]
		if !ok {
			t.Fatalf("merged missing %q", key)
		}
		if g.N() != w.N() || math.Abs(g.Mean()-w.Mean()) > 1e-12 || g.Min() != w.Min() || g.Max() != w.Max() {
			t.Fatalf("merged[%q] = %+v, want %+v", key, g, w)
		}
	}
	// Every ping group merged two seeds' samples.
	if s := rep.Merged["ping/Linespeed.rtt_avg_ms"]; s.N() != 2 {
		t.Fatalf("ping/Linespeed.rtt_avg_ms N = %d, want 2", s.N())
	}
}

// Hybrid runs attach histogram sketches; the report folds them per
// group exactly (integer bucket counts) and the artifact stays
// byte-identical across worker counts.
func TestSweepMergesHybridHists(t *testing.T) {
	p := experiment.DefaultParams().Quick()
	p.UDPDuration = 60 * time.Millisecond
	jobs := Grid{
		Kinds:     []experiment.Kind{experiment.KindHybrid},
		Scenarios: []experiment.Scenario{experiment.ScenCentral3},
		Seeds:     []int64{1, 2},
		Variants:  []Variant{{Params: p}},
	}.Jobs()

	serial := Sweep(context.Background(), 1, jobs)
	parallel := Sweep(context.Background(), 2, jobs)
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("hybrid artifacts differ across worker counts")
	}

	if serial.Failed != 0 {
		t.Fatalf("%d runs failed", serial.Failed)
	}
	want := make(map[string]metrics.Hist)
	for _, rec := range serial.Runs {
		for _, name := range histNames(rec.Result.Hists) {
			key := rec.Group + "." + name
			m := want[key]
			m.Merge(rec.Result.Hists[name])
			want[key] = m
		}
	}
	if len(want) == 0 || len(serial.MergedHists) != len(want) {
		t.Fatalf("merged hists: got %d keys, want %d", len(serial.MergedHists), len(want))
	}
	for key, w := range want {
		g, ok := serial.MergedHists[key]
		if !ok || g.N() != w.N() || g.Min() != w.Min() || g.Max() != w.Max() {
			t.Fatalf("merged hist %q diverged from single-threaded fold (ok=%v)", key, ok)
		}
	}
	if h := serial.MergedHists["hybrid/Central3.flow_rate_mbps"]; h.N() == 0 {
		t.Fatal("flow_rate_mbps sketch empty after merge")
	}
}

// A run that panics (unknown kind) fails its record deterministically
// and leaves the rest of the sweep intact.
func TestSweepRecordsPanicsAsFailedRuns(t *testing.T) {
	p := experiment.DefaultParams().Quick()
	p.PingCount = 5
	jobs := []Job{
		{Kind: experiment.KindPing, Scenario: experiment.ScenLinespeed, Params: p, Seed: 1},
		{Kind: experiment.Kind(99), Scenario: experiment.ScenLinespeed, Params: p, Seed: 1},
	}
	rep := Sweep(context.Background(), 2, jobs)
	if rep.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", rep.Failed)
	}
	if rep.Runs[0].Result == nil || rep.Runs[0].Err != "" {
		t.Fatalf("healthy run affected: %+v", rep.Runs[0])
	}
	if rep.Runs[1].Result != nil || rep.Runs[1].Err != "panic: experiment: unknown Kind 99" {
		t.Fatalf("failed run record = %+v", rep.Runs[1])
	}
}
