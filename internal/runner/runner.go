// Package runner fans independent simulation runs out across a worker
// pool. The simulator itself is strictly single-threaded — schedulers,
// packet pools and compare engines all belong to one goroutine — so the
// unit of parallelism is a whole run: each worker builds its own testbed
// from scratch and nothing is shared between runs. Because every run is
// a pure function of its inputs and results are returned in input order,
// the output is bit-identical however many workers execute it.
package runner

import (
	"context"

	"netco/internal/pool"
)

// PanicError wraps a panic recovered from one run, failing that run
// instead of the process. It is pool.PanicError re-exported; the pool
// machinery itself lives below the simulation packages so topology
// builders can share it (see internal/pool).
type PanicError = pool.PanicError

// Map runs fn(0..n-1) across a pool of workers and returns the results
// in index order, independent of completion order. workers <= 0 uses
// GOMAXPROCS. A run that panics fails with a *PanicError in its error
// slot; once ctx is cancelled, not-yet-started runs fail with ctx.Err()
// without invoking fn (in-flight runs finish — the simulator has no
// preemption points). errs[i] is nil exactly when results[i] is valid.
func Map[R any](ctx context.Context, workers, n int, fn func(int) (R, error)) (results []R, errs []error) {
	return pool.Map(ctx, workers, n, fn)
}
