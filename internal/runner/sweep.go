package runner

import (
	"context"
	"encoding/json"
	"io"
	"sort"

	"netco/internal/experiment"
	"netco/internal/metrics"
)

// Job is one schedulable experiment run: a pure (Kind, Params, Scenario,
// seed) tuple. Variant optionally tags a parameter-grid point so runs of
// the same measurement at different calibrations merge into distinct
// groups.
type Job struct {
	Kind     experiment.Kind
	Scenario experiment.Scenario
	Params   experiment.Params
	Seed     int64
	Variant  string
}

// Group keys the job for merging: runs with equal groups (same variant,
// kind and scenario, across seeds) aggregate into one merged summary.
func (j Job) Group() string {
	g := j.Kind.String() + "/" + j.Scenario.String()
	if j.Variant != "" {
		g = j.Variant + "/" + g
	}
	return g
}

// Variant is one point of a parameter grid.
type Variant struct {
	Name   string
	Params experiment.Params
}

// Grid is a sweep specification: the cross product of variants, kinds,
// scenarios and seeds.
type Grid struct {
	Kinds     []experiment.Kind
	Scenarios []experiment.Scenario
	Seeds     []int64
	Variants  []Variant
}

// Jobs expands the grid in deterministic order (variant, kind, scenario,
// seed — seeds innermost so one group's runs are contiguous).
func (g Grid) Jobs() []Job {
	var jobs []Job
	for _, v := range g.Variants {
		for _, k := range g.Kinds {
			for _, s := range g.Scenarios {
				for _, seed := range g.Seeds {
					jobs = append(jobs, Job{Kind: k, Scenario: s, Params: v.Params, Seed: seed, Variant: v.Name})
				}
			}
		}
	}
	return jobs
}

// RunRecord is one job's outcome in the report. Exactly one of Result
// and Err is set. Err is a short deterministic description (for panics,
// "panic: <value>" without the stack), so artifacts compare bytewise
// across reruns.
type RunRecord struct {
	Group  string             `json:"group"`
	Seed   int64              `json:"seed"`
	Result *experiment.Result `json:"result,omitempty"`
	Err    string             `json:"err,omitempty"`
}

// Report is a sweep's full outcome: every run in job order plus the
// per-group merged summaries and histogram sketches. It contains no
// wall-clock fields — the report for a given job list is byte-identical
// regardless of worker count, machine or run time.
type Report struct {
	Runs   []RunRecord                `json:"runs"`
	Merged map[string]metrics.Summary `json:"merged"`
	// MergedHists folds each run's histogram sketches per group (key
	// "<group>.<hist>"). Hist.Merge is exact (integer bucket counts),
	// so unlike Summary the fold order cannot even perturb float bits.
	MergedHists map[string]metrics.Hist `json:"merged_hists,omitempty"`
	Failed      int                     `json:"failed"`
}

// Sweep executes the jobs across the worker pool and assembles the
// report. Results appear in job order; summaries merge in job order
// (metric keyed "<group>.<summary>"), so the merged statistics equal the
// single-threaded fold exactly.
func Sweep(ctx context.Context, workers int, jobs []Job) Report {
	results, errs := Map(ctx, workers, len(jobs), func(i int) (experiment.Result, error) {
		j := jobs[i]
		return experiment.Run(j.Kind, j.Params, j.Scenario, j.Seed), nil
	})

	rep := Report{Runs: make([]RunRecord, len(jobs)), Merged: make(map[string]metrics.Summary)}
	for i, j := range jobs {
		rec := RunRecord{Group: j.Group(), Seed: j.Seed}
		if errs[i] != nil {
			rec.Err = errs[i].Error()
			rep.Failed++
		} else {
			r := results[i]
			rec.Result = &r
			for _, name := range summaryNames(r.Summaries) {
				key := rec.Group + "." + name
				merged := rep.Merged[key]
				merged.Merge(r.Summaries[name])
				rep.Merged[key] = merged
			}
			for _, name := range histNames(r.Hists) {
				if rep.MergedHists == nil {
					rep.MergedHists = make(map[string]metrics.Hist)
				}
				key := rec.Group + "." + name
				merged := rep.MergedHists[key]
				merged.Merge(r.Hists[name])
				rep.MergedHists[key] = merged
			}
		}
		rep.Runs[i] = rec
	}
	return rep
}

// histNames returns the histogram keys in sorted order.
func histNames(m map[string]metrics.Hist) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// summaryNames returns the summary keys in sorted order so merging is
// order-stable (Merge is not exactly commutative in floating point).
func summaryNames(m map[string]metrics.Summary) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the report as indented JSON. encoding/json sorts map
// keys, so equal reports serialise to equal bytes.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
