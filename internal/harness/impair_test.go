package harness

import (
	"bytes"
	"testing"

	"netco/internal/sim"
)

// impairAllStages is a pipeline with every stage kind active, at rates
// heavy enough that the noise demonstrably reaches the observation.
func impairAllStages() *ImpairConfig {
	return &ImpairConfig{
		LossPct:      2,
		LossCorrPct:  25,
		GEGoodBadPct: 1,
		GEBadGoodPct: 25,
		DupPct:       1,
		CorruptPct:   0.5,
		ReorderPct:   25,
		ReorderUs:    100,
	}
}

// TestImpairedScenarioClean runs an adversarial, fully impaired scenario
// through the whole oracle stack (including the serial/parallel
// determinism re-executions inside Check) and requires a clean verdict:
// under noise the armed oracles are no-forgery and determinism, and
// neither may fire on honest machinery. The clean twin's observation
// must differ — otherwise the pipeline never touched the wire and the
// verdict is vacuous.
func TestImpairedScenarioClean(t *testing.T) {
	for _, k := range []int{2, 3} {
		k := k
		t.Run("k="+itoa(k), func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Seed:      11,
				Topology:  TopoTestbed,
				K:         k,
				TrunkMbps: 1000,
				Flows: []Flow{
					{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256},
					{Kind: FlowPing, Count: 5, Reverse: true},
				},
				Adversaries: []Adversary{
					{Router: k - 1, Chain: []Atom{{Kind: AtomModify, Scope: "udp", Rewrite: "tos"}}},
				},
				Impair: impairAllStages(),
			}
			if !sc.Impaired() {
				t.Fatal("scenario not impaired")
			}
			res, err := Check(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("impaired scenario violated oracles: %+v", res.Violations)
			}

			clean := sc
			clean.Impair = nil
			rc, err := Execute(clean)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(res.Obs.CanonicalJSON(), rc.Obs.CanonicalJSON()) {
				t.Fatal("impaired observation identical to clean twin: pipeline inactive")
			}
		})
	}
}

// TestImpairedChaosClean layers the impairment pipeline under a timed
// fault plan — a link flap cutting through the noise — and requires the
// full Check (with its 4-partition re-execution) to stay clean. This is
// the oracle-stack counterpart of netem's TestImpairChaosFlapResume: the
// loss-state machines must resume deterministically across outages in
// every engine mode, or the determinism oracle fires here.
func TestImpairedChaosClean(t *testing.T) {
	sc := Scenario{
		Seed:      23,
		Topology:  TopoTestbed,
		K:         3,
		TrunkMbps: 1000,
		Flows: []Flow{
			{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256},
			{Kind: FlowPing, Count: 5, Reverse: true},
		},
		Chaos: []ChaosAction{
			{Kind: ChaosLinkFlap, Router: 1, Side: 0, AtMs: 20, DownMs: 10, Cycles: 2, PeriodMs: 30},
			{Kind: ChaosRouterCrash, Router: 0, AtMs: 40, DownMs: 20},
		},
		Impair: impairAllStages(),
	}
	res, err := Check(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("impair × chaos scenario violated oracles: %+v", res.Violations)
	}
	if res.Obs.Recovery == nil {
		t.Fatal("chaos scenario recorded no recovery observation")
	}
}

// TestImpairValidateBounds pins the genome's magnitude envelope.
func TestImpairValidateBounds(t *testing.T) {
	base := Scenario{
		Seed: 1, Topology: TopoTestbed, K: 3, TrunkMbps: 1000,
		Flows: []Flow{{Kind: FlowPing, Count: 3}},
	}
	bad := []ImpairConfig{
		{LossPct: 50},                        // beyond the loss cap
		{LossPct: -1},                        // negative
		{LossCorrPct: 25},                    // correlation without loss
		{GEGoodBadPct: 1},                    // GE missing the recovery rate
		{GEBadGoodPct: 25},                   // GE missing the entry rate
		{GEGoodBadPct: 40, GEBadGoodPct: 25}, // entry rate beyond cap
		{DupPct: 11},                         // beyond the dup cap
		{CorruptPct: 6},                      // beyond the no-forgery bound
		{ReorderPct: 120, ReorderUs: 50},     // not a probability
		{ReorderPct: 25},                     // reorder without jitter
		{ReorderPct: 25, ReorderUs: 5000},    // jitter beyond cap
		{ReorderUs: 50},                      // jitter without reorder
	}
	for i := range bad {
		sc := base
		sc.Impair = &bad[i]
		if err := sc.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated, want error", i, bad[i])
		}
	}
	sc := base
	sc.Impair = impairAllStages()
	if err := sc.Validate(); err != nil {
		t.Errorf("in-bounds config rejected: %v", err)
	}
	sc.Impair = &ImpairConfig{}
	if err := sc.Validate(); err != nil {
		t.Errorf("empty config rejected: %v", err)
	}
	if sc.Impaired() {
		t.Error("empty config reports Impaired")
	}
}

// TestImpairGeneratorValid: every generated impaired scenario passes
// Validate and actually carries an active pipeline; Weaken runs never
// roll one spontaneously (the sabotage self-test must stay noise-free).
func TestImpairGeneratorValid(t *testing.T) {
	rng := sim.NewRNG(17)
	impaired := 0
	for i := 0; i < 300; i++ {
		sc := Generate(rng, Options{Impair: true})
		if err := sc.Validate(); err != nil {
			t.Fatalf("impaired scenario %d invalid: %v\n%+v", i, err, sc)
		}
		if !sc.Impaired() {
			t.Fatalf("impaired scenario %d carries no active pipeline: %+v", i, sc.Impair)
		}
	}
	for i := 0; i < 300; i++ {
		sc := Generate(rng, Options{})
		if err := sc.Validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v", i, err)
		}
		if sc.Impaired() {
			impaired++
		}
	}
	if impaired == 0 {
		t.Error("default options never rolled an impairment pipeline")
	}
	for i := 0; i < 100; i++ {
		if sc := Generate(rng, Options{Weaken: true}); sc.Impair != nil {
			t.Fatalf("weaken scenario %d rolled an impairment pipeline: %+v", i, sc.Impair)
		}
	}
}

// TestImpairShrinkDropsPipeline: when the violation is the weakened
// majority, not the noise, the shrinker must strip the impairment
// pipeline from the counterexample.
func TestImpairShrinkDropsPipeline(t *testing.T) {
	sc := Scenario{
		Seed: 13, Topology: TopoTestbed, K: 3, TrunkMbps: 1000,
		Flows:          []Flow{{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256}},
		Adversaries:    []Adversary{{Router: 0, Chain: []Atom{{Kind: AtomModify, Rewrite: "tos"}}}},
		WeakenMajority: true,
		Impair:         &ImpairConfig{DupPct: 1, ReorderPct: 25, ReorderUs: 100},
	}
	res, err := Check(sc)
	if err != nil {
		t.Fatal(err)
	}
	hasForgery := false
	for _, o := range res.Oracles() {
		if o == OracleNoForgery {
			hasForgery = true
		}
	}
	if !hasForgery {
		t.Fatalf("weakened impaired scenario did not trip no-forgery: %+v", res.Violations)
	}
	min := Shrink(sc, []string{OracleNoForgery}, 60)
	if min.Impair != nil {
		t.Errorf("shrinker kept the impairment pipeline: %+v", min.Impair)
	}
}
