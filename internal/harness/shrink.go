package harness

// Shrink greedily minimises a failing scenario while preserving at least
// one of the originally violated oracles. Each pass tries, in order:
// simplifying the topology, dropping whole adversaries, dropping flows,
// shortening adversary chains, and softening atom magnitudes. A candidate
// is accepted if Check still reports one of the target oracles; passes
// repeat until a fixpoint or the execution budget (number of Check calls)
// runs out.
//
// Shrinking re-executes candidates, so it is the expensive half of a
// fuzzing run — but it only runs on failures, which should be rare.
func Shrink(sc Scenario, oracles []string, budget int) Scenario {
	if len(oracles) == 0 || budget <= 0 {
		return sc
	}
	want := make(map[string]bool, len(oracles))
	for _, o := range oracles {
		want[o] = true
	}
	stillFails := func(cand Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if cand.Validate() != nil {
			return false
		}
		res, err := Check(cand)
		if err != nil {
			return false
		}
		for _, o := range res.Oracles() {
			if want[o] {
				return true
			}
		}
		return false
	}

	for changed := true; changed && budget > 0; {
		changed = false

		// 1. Topology: testbed is the smallest fabric. Router indices are
		// per-combiner-relative, so collapsing a chain keeps only the
		// combiner-0 adversary.
		if sc.Topology != TopoTestbed {
			cand := sc
			cand.Topology = TopoTestbed
			cand.Adversaries = nil
			for _, a := range sc.Adversaries {
				if a.Router < sc.K {
					cand.Adversaries = append(cand.Adversaries, a)
				}
			}
			// Chaos targets are indexed like adversaries: keep only what
			// the single remaining combiner can host.
			cand.Chaos = nil
			for _, ca := range sc.Chaos {
				switch ca.Kind {
				case ChaosCompareCrash:
					if ca.Combiner == 0 {
						cand.Chaos = append(cand.Chaos, ca)
					}
				default:
					if ca.Router < sc.K {
						cand.Chaos = append(cand.Chaos, ca)
					}
				}
			}
			if stillFails(cand) {
				sc = cand
				changed = true
			}
		}

		// 2. Drop whole adversaries.
		for i := 0; i < len(sc.Adversaries); i++ {
			cand := sc
			cand.Adversaries = dropIndexA(sc.Adversaries, i)
			if stillFails(cand) {
				sc = cand
				changed = true
				i--
			}
		}

		// 2b. Drop chaos actions.
		for i := 0; i < len(sc.Chaos); i++ {
			cand := sc
			cand.Chaos = dropIndexC(sc.Chaos, i)
			if stillFails(cand) {
				sc = cand
				changed = true
				i--
			}
		}

		// 2c. Drop the impairment pipeline: a violation that reproduces on
		// a clean wire is strictly easier to debug.
		if sc.Impair != nil {
			cand := sc
			cand.Impair = nil
			if stillFails(cand) {
				sc = cand
				changed = true
			}
		}

		// 3. Drop flows (keep at least one — Validate requires it).
		for i := 0; i < len(sc.Flows) && len(sc.Flows) > 1; i++ {
			cand := sc
			cand.Flows = dropIndexF(sc.Flows, i)
			if stillFails(cand) {
				sc = cand
				changed = true
				i--
			}
		}

		// 4. Shorten chains.
		for ai := range sc.Adversaries {
			for j := 0; j < len(sc.Adversaries[ai].Chain) && len(sc.Adversaries[ai].Chain) > 1; j++ {
				cand := sc
				cand.Adversaries = cloneAdvs(sc.Adversaries)
				cand.Adversaries[ai].Chain = dropIndexT(cand.Adversaries[ai].Chain, j)
				if stillFails(cand) {
					sc = cand
					changed = true
					j--
				}
			}
		}

		// 5. Soften magnitudes: ping counts, TCP sizes, replay
		// amplification, flood rates toward their minimums.
		for i, fl := range sc.Flows {
			var cand Scenario
			switch {
			case fl.Kind == FlowPing && fl.Count > 1:
				cand = sc
				cand.Flows = cloneFlows(sc.Flows)
				cand.Flows[i].Count = fl.Count / 2
			case fl.Kind == FlowTCP && fl.KiB > 4:
				cand = sc
				cand.Flows = cloneFlows(sc.Flows)
				cand.Flows[i].KiB = fl.KiB / 2
			case fl.Kind == FlowUDP && fl.RateMbps > 2:
				cand = sc
				cand.Flows = cloneFlows(sc.Flows)
				cand.Flows[i].RateMbps = fl.RateMbps / 2
			default:
				continue
			}
			if stillFails(cand) {
				sc = cand
				changed = true
			}
		}
		for ai := range sc.Adversaries {
			for j, atom := range sc.Adversaries[ai].Chain {
				var next Atom
				switch {
				case atom.Kind == AtomReplay && atom.Extra > 2:
					next = atom
					next.Extra = 2
				case atom.Kind == AtomFlood && atom.RateKpps > 2:
					next = atom
					next.RateKpps = 2
				default:
					continue
				}
				cand := sc
				cand.Adversaries = cloneAdvs(sc.Adversaries)
				cand.Adversaries[ai].Chain[j] = next
				if stillFails(cand) {
					sc = cand
					changed = true
				}
			}
		}
		// Chaos: flaps down to single outages, outages toward 5 ms.
		// Halving DownMs preserves the period > down invariant whenever
		// the original plan held it.
		for i, ca := range sc.Chaos {
			var next ChaosAction
			switch {
			case ca.Cycles > 1:
				next = ca
				next.Cycles = 1
			case ca.DownMs > 5:
				next = ca
				next.DownMs = ca.DownMs / 2
			default:
				continue
			}
			cand := sc
			cand.Chaos = cloneChaos(sc.Chaos)
			cand.Chaos[i] = next
			if stillFails(cand) {
				sc = cand
				changed = true
			}
		}
	}
	return sc
}

func dropIndexA(s []Adversary, i int) []Adversary {
	out := make([]Adversary, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func dropIndexF(s []Flow, i int) []Flow {
	out := make([]Flow, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func dropIndexT(s []Atom, i int) []Atom {
	out := make([]Atom, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func cloneAdvs(s []Adversary) []Adversary {
	out := make([]Adversary, len(s))
	for i, a := range s {
		out[i] = a
		out[i].Chain = append([]Atom(nil), a.Chain...)
	}
	return out
}

func dropIndexC(s []ChaosAction, i int) []ChaosAction {
	out := make([]ChaosAction, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func cloneFlows(s []Flow) []Flow {
	return append([]Flow(nil), s...)
}

func cloneChaos(s []ChaosAction) []ChaosAction {
	return append([]ChaosAction(nil), s...)
}
