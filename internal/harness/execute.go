package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math/bits"
	"sort"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/packet"
	"netco/internal/trace"
	"netco/internal/traffic"
)

// Observation is the canonical artifact of one execution: everything the
// determinism oracle compares, serialised with encoding/json (fixed field
// order, no maps) so equal observations are equal bytes.
type Observation struct {
	// Released has one entry per (combiner, edge) direction, in that
	// order.
	Released []DirObs `json:"released"`
	// Alarms lists every compare alarm in the order it fired.
	Alarms []AlarmObs `json:"alarms"`
	// Flows reports per-flow outcomes in scenario order.
	Flows []FlowObs `json:"flows"`
	// TraceDigests fingerprints router 0's transmission trace in each
	// combiner (the trace-artifact half of the determinism oracle).
	TraceDigests []string `json:"trace_digests"`
	// Recovery reports the post-chaos liveness probe (chaos scenarios
	// only).
	Recovery *RecoveryObs `json:"recovery,omitempty"`
	// Activity sums every adversary counter; DetectableActivity only the
	// counters of behaviors that provably leave a compare-visible trace
	// (see detection oracle notes in oracle.go).
	Activity           uint64 `json:"activity"`
	DetectableActivity uint64 `json:"detectable_activity"`
}

// DirObs summarises one direction's compare egress.
type DirObs struct {
	Combiner int `json:"combiner"`
	Edge     int `json:"edge"`
	// Count is released frames; SeqDigest fingerprints the raw release
	// sequence in order; SetDigest fingerprints the sorted multiset of
	// IP-ID-normalised frame digests (the masking oracle's comparand —
	// order- and IP-ID-insensitive, content-sensitive).
	Count     int    `json:"count"`
	SeqDigest string `json:"seq_digest"`
	SetDigest string `json:"set_digest"`
}

// AlarmObs is one compare alarm.
type AlarmObs struct {
	Combiner int    `json:"combiner"`
	Edge     int    `json:"edge"`
	Kind     string `json:"kind"`
	Router   int    `json:"router"`
	AtNs     int64  `json:"at_ns"`
	Copies   int    `json:"copies,omitempty"`
}

// FlowObs is one flow's outcome.
type FlowObs struct {
	Kind string `json:"kind"`
	// Ping: Sent/Received cycles. UDP: Sent datagrams, Received unique.
	// TCP: Sent segments, Received goodput bytes.
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	Dups     uint64 `json:"dups,omitempty"`
	Done     bool   `json:"done,omitempty"`
}

// RecoveryObs is the outcome of the recovery probe: pings launched a
// grace period after the chaos plan's last heal.
type RecoveryObs struct {
	// LastHealMs is the final heal instant, window-relative.
	LastHealMs    int64  `json:"last_heal_ms"`
	ProbeSent     uint64 `json:"probe_sent"`
	ProbeReceived uint64 `json:"probe_received"`
}

// Violation is one oracle failure.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Oracle names.
const (
	OracleMasking     = "masking"
	OracleDetection   = "detection"
	OracleNoForgery   = "no-forgery"
	OracleDeterminism = "determinism"
	OracleRecovery    = "recovery"
)

// RunResult is one execution's outcome: the observation plus the
// violations decidable from a single run (no-forgery, detection).
type RunResult struct {
	Obs        Observation
	Violations []Violation
}

// CanonicalJSON renders the observation to its canonical byte form.
func (o Observation) CanonicalJSON() []byte {
	b, err := json.Marshal(o)
	if err != nil {
		panic(err) // struct of plain fields; cannot fail
	}
	return b
}

// dirTap accumulates one direction's release stream.
type dirTap struct {
	count    int
	seq      hash.Hash
	multiset []string
}

// emitKey identifies a frame a router put on the wire toward one edge.
type emitKey struct {
	edge   int
	digest packet.Digest
}

// combTap observes one combiner: which routers emitted which frames
// (no-forgery ledger) and what the compare released. All of a tap's
// state is written only from its combiner's domain, so taps need no
// locking under the partitioned engine; alarms and violations are
// collected per combiner and merged deterministically after the run
// (identically in serial mode, so observations stay byte-identical).
type combTap struct {
	emitted map[emitKey]uint16 // bitmask of router indices
	// released is every released frame in release order. The no-forgery
	// verdict is deferred to end-of-run, when the emission ledger is
	// complete: under a weakened release threshold plus trunk reordering,
	// the compare can legitimately release the first copy before the
	// *other* routers have transmitted theirs, so a release-time mask
	// read would misfire on honest frames. A genuinely forged frame is
	// never majority-emitted at any point, so deferral loses nothing.
	released   []emitKey
	dirs       [2]*dirTap
	tracer     *trace.Tracer
	alarms     []AlarmObs
	violations []Violation
}

// Execute runs the scenario once on the serial engine and returns its
// observation plus the single-run oracle verdicts. It is a pure function
// of the scenario: the whole simulation (scheduler, pools, engines) is
// built and discarded inside, so concurrent Executes are safe.
func Execute(sc Scenario) (RunResult, error) { return ExecuteP(sc, 1) }

// ExecuteP is Execute on the conservative parallel engine with the given
// domain count (1 = serial). The observation is bit-identical to the
// serial one at every partition count — that is the tentpole guarantee,
// and Check enforces it as part of the determinism oracle.
func ExecuteP(sc Scenario, partitions int) (RunResult, error) {
	if err := sc.Validate(); err != nil {
		return RunResult{}, err
	}
	f := buildFabric(sc, partitions)
	defer f.close()

	// Taps. Router OnTransmit feeds the no-forgery ledger; the compare's
	// OnRelease hook records every release for the end-of-run ledger
	// check and feeds the per-direction release digests.
	var res RunResult
	taps := make([]*combTap, len(f.combs))
	majority := sc.K/2 + 1
	forgeryChecked := sc.K >= 3 // k=2 releases on first copy by design
	for ci, comb := range f.combs {
		tap := &combTap{emitted: make(map[emitKey]uint16)}
		for d := 0; d < 2; d++ {
			tap.dirs[d] = &dirTap{seq: sha256.New()}
		}
		tap.tracer = trace.New(512)
		tap.tracer.Attach(comb.Routers[0])
		taps[ci] = tap

		for ri, r := range comb.Routers {
			ri := ri
			r.OnTransmit = func(outPort int, pkt *packet.Packet) {
				if outPort != core.RouterPortLeft && outPort != core.RouterPortRight {
					return
				}
				key := emitKey{edge: outPort, digest: packet.DigestBytes(pkt.Marshal())}
				tap.emitted[key] |= 1 << ri
			}
		}
		ci := ci
		comb.Compare.OnRelease = func(edgeID int, wire []byte) {
			d := tap.dirs[edgeID]
			d.count++
			d.seq.Write(wire)
			d.multiset = append(d.multiset, normalizedDigest(wire))
			if forgeryChecked {
				tap.released = append(tap.released, emitKey{edge: edgeID, digest: packet.DigestBytes(wire)})
			}
		}
		comb.Compare.OnAlarm = func(a core.Alarm) {
			tap.alarms = append(tap.alarms, AlarmObs{
				Combiner: ci,
				Edge:     a.Edge,
				Kind:     alarmKind(a.Kind),
				Router:   a.Router,
				AtNs:     int64(a.At),
				Copies:   a.Copies,
			})
		}
	}

	// Traffic, plus the recovery probe when the scenario injects faults.
	flows := startFlows(f, sc)
	var probe *traffic.Pinger
	var lastHeal time.Duration
	if len(sc.Chaos) > 0 {
		lastHeal = sc.chaosPlan().LastRecovery()
		probe = startRecoveryProbe(f, lastHeal)
	}

	// Run the fixed timeline to quiescence.
	f.runner.RunUntil(settleTime + windowTime + drainTime)

	// No-forgery, against the now-complete emission ledger: every
	// released frame must have been emitted by a strict majority of its
	// combiner's routers at some point in the run.
	for ci, tap := range taps {
		for _, key := range tap.released {
			if n := bits.OnesCount16(tap.emitted[key]); n < majority {
				tap.violations = append(tap.violations, Violation{
					Oracle: OracleNoForgery,
					Detail: fmt.Sprintf("combiner %d edge %d released a frame emitted by %d of %d routers (majority %d)",
						ci, key.edge, n, sc.K, majority),
				})
			}
		}
	}

	// Merge the per-combiner streams canonically: alarms globally by
	// firing time (stable, so same-instant alarms order by combiner,
	// then per-combiner firing order); violations in combiner order.
	for _, tap := range taps {
		res.Obs.Alarms = append(res.Obs.Alarms, tap.alarms...)
		res.Violations = append(res.Violations, tap.violations...)
	}
	sort.SliceStable(res.Obs.Alarms, func(i, j int) bool {
		return res.Obs.Alarms[i].AtNs < res.Obs.Alarms[j].AtNs
	})

	// Collect.
	for ci := range f.combs {
		for d := 0; d < 2; d++ {
			tap := taps[ci].dirs[d]
			sort.Strings(tap.multiset)
			set := sha256.New()
			for _, dg := range tap.multiset {
				set.Write([]byte(dg))
			}
			res.Obs.Released = append(res.Obs.Released, DirObs{
				Combiner:  ci,
				Edge:      d,
				Count:     tap.count,
				SeqDigest: hex.EncodeToString(tap.seq.Sum(nil)),
				SetDigest: hex.EncodeToString(set.Sum(nil)),
			})
		}
		tr := sha256.New()
		for _, rec := range taps[ci].tracer.Records() {
			tr.Write([]byte(rec.String()))
		}
		res.Obs.TraceDigests = append(res.Obs.TraceDigests, hex.EncodeToString(tr.Sum(nil)))
	}
	res.Obs.Flows = flows.observe()
	res.Obs.Activity, res.Obs.DetectableActivity = activity(f, sc)

	// Single-run oracles beyond no-forgery: detection (Theorem 2) —
	// skipped under chaos, where an outage window can legitimately swallow
	// the interference evidence before the compare sees it, and under
	// impairment, where wire loss can do the same to the mismatched copy.
	if sc.K == 2 && len(sc.Chaos) == 0 && !sc.Impaired() &&
		res.Obs.DetectableActivity > 0 && len(res.Obs.Alarms) == 0 {
		res.Violations = append(res.Violations, Violation{
			Oracle: OracleDetection,
			Detail: fmt.Sprintf("k=2 adversary interfered with %d packets but no alarm fired", res.Obs.DetectableActivity),
		})
	}

	// Recovery: after the last heal the fabric must carry traffic again.
	if probe != nil {
		r := probe.Result()
		res.Obs.Recovery = &RecoveryObs{
			LastHealMs:    int64((lastHeal - settleTime) / time.Millisecond),
			ProbeSent:     uint64(r.Sent),
			ProbeReceived: uint64(r.Received),
		}
		// An impaired fabric can legitimately eat every probe (a GE burst
		// straddling the grace period kills all three pings), so the
		// violation is gated; RecoveryObs is still recorded and the
		// determinism oracle still covers it.
		if r.Received == 0 && !sc.Impaired() {
			res.Violations = append(res.Violations, Violation{
				Oracle: OracleRecovery,
				Detail: fmt.Sprintf("no probe echo returned after the last heal at %v — the fabric did not recover", lastHeal),
			})
		}
	}
	return res, nil
}

// Recovery probe timing: the probe starts a grace period after the last
// heal (re-handshakes and rule replay settle in microseconds; the grace
// absorbs them with margin) and its last timeout expires well inside the
// drain for every plan Validate accepts.
const (
	recoveryGrace    = 5 * time.Millisecond
	recoveryProbes   = 3
	recoveryInterval = 5 * time.Millisecond
	recoveryTimeout  = 30 * time.Millisecond
	// recoveryProbeID keeps the probe's ICMP stream clear of scenario ping
	// flows (IDs 1..16).
	recoveryProbeID = 0x7e57
)

// startRecoveryProbe schedules the post-chaos liveness probe during
// single-threaded setup, on h1's own scheduler.
func startRecoveryProbe(f *fabric, lastHeal time.Duration) *traffic.Pinger {
	p := traffic.NewPinger(f.h1, f.h2.Endpoint(0), traffic.PingerConfig{
		Count:    recoveryProbes,
		Interval: recoveryInterval,
		Timeout:  recoveryTimeout,
		ID:       recoveryProbeID,
	})
	f.schedOf("h1").After(lastHeal+recoveryGrace, func() { p.Run(nil) })
	return p
}

// normalizedDigest fingerprints a released frame with the IP ID zeroed
// (and checksums recomputed). Hosts stamp IP IDs from a shared per-host
// counter, so cross-flow send interleaving — which adversarial timing
// perturbation legitimately shifts — leaks into frame bytes; everything
// else in the frame is content the masking property must preserve.
func normalizedDigest(wire []byte) string {
	pkt, err := packet.Unmarshal(wire)
	if err != nil || pkt.IP == nil {
		d := packet.DigestBytes(wire)
		return hex.EncodeToString(d[:])
	}
	pkt.IP.ID = 0
	d := packet.DigestBytes(pkt.Marshal())
	return hex.EncodeToString(d[:])
}

func alarmKind(k core.EventKind) string {
	switch k {
	case core.EventDoS:
		return "dos"
	case core.EventPortSilent:
		return "port-silent"
	case core.EventDetection:
		return "detection"
	default:
		return fmt.Sprintf("event-%d", int(k))
	}
}

// activity sums the adversary counters after a run. The second return
// only counts behaviors whose interference provably reaches the compare:
// reroute (the diverted copy is missing at the target edge), drop,
// modify, replay with Extra ≥ 2 (crosses the DoS threshold) and flood.
// Mirror is excluded — a mirrored copy bounced at a host-attached edge
// dies on the ingress spoof check, which is a defense, not an alarm.
func activity(f *fabric, sc Scenario) (total, detectable uint64) {
	for _, a := range sc.Adversaries {
		atoms := f.behaviors[a.Router].(adversary.Chain)
		total += adversary.Activity(atoms)
		for i, atom := range atoms {
			act := adversary.Activity(atom)
			if act == 0 {
				continue
			}
			switch a.Chain[i].Kind {
			case AtomReroute, AtomDrop, AtomModify, AtomFlood:
				detectable += act
			case AtomReplay:
				if act >= 2 {
					detectable += act
				}
			}
		}
	}
	return total, detectable
}

// runningFlows holds live traffic objects so outcomes can be read after
// the run.
type runningFlows struct {
	specs   []Flow
	pingers []*traffic.Pinger
	udpSrc  []*traffic.UDPSource
	udpSink []*traffic.UDPSink
	tcp     []*traffic.TCPFlow
}

// startFlows schedules every flow on the fixed timeline: flow i starts
// at settle + i·stagger; UDP sources stop at the window end; TCP and
// ping are self-bounding. Endpoints are constructed during this single-
// threaded setup phase; each start/stop event is scheduled on its source
// host's own scheduler, so flows work unchanged under partitioning.
func startFlows(f *fabric, sc Scenario) *runningFlows {
	rf := &runningFlows{specs: sc.Flows}
	rf.pingers = make([]*traffic.Pinger, len(sc.Flows))
	rf.udpSrc = make([]*traffic.UDPSource, len(sc.Flows))
	rf.udpSink = make([]*traffic.UDPSink, len(sc.Flows))
	rf.tcp = make([]*traffic.TCPFlow, len(sc.Flows))
	for i, fl := range sc.Flows {
		fl := fl
		src, dst := f.h1, f.h2
		if fl.Reverse {
			src, dst = f.h2, f.h1
		}
		srcSched := f.schedOf(src.Name())
		basePort := uint16(40000 + i*16)
		start := settleTime + time.Duration(i)*flowStagger
		switch fl.Kind {
		case FlowPing:
			p := traffic.NewPinger(src, dst.Endpoint(0), traffic.PingerConfig{
				Count:    fl.Count,
				Interval: 10 * time.Millisecond,
				Timeout:  50 * time.Millisecond,
				ID:       uint16(1 + i),
			})
			rf.pingers[i] = p
			srcSched.After(start, func() { p.Run(nil) })
		case FlowUDP:
			sink := traffic.NewUDPSink(dst, basePort+1)
			s := traffic.NewUDPSource(src, basePort, dst.Endpoint(basePort+1), traffic.UDPSourceConfig{
				Rate:        fl.RateMbps * 1e6,
				PayloadSize: fl.PayloadSize,
			})
			rf.udpSrc[i], rf.udpSink[i] = s, sink
			srcSched.After(start, s.Start)
			srcSched.After(settleTime+windowTime, s.Stop)
		case FlowTCP:
			t := traffic.NewTCPFlow(src, dst, basePort, basePort+1, traffic.TCPConfig{
				MaxBytes: uint32(fl.KiB) << 10,
			})
			rf.tcp[i] = t
			srcSched.After(start, t.Start)
		}
	}
	return rf
}

func (rf *runningFlows) observe() []FlowObs {
	obs := make([]FlowObs, len(rf.specs))
	for i, fl := range rf.specs {
		o := FlowObs{Kind: fl.Kind}
		switch fl.Kind {
		case FlowPing:
			r := rf.pingers[i].Result()
			o.Sent = uint64(r.Sent)
			o.Received = uint64(r.Received)
			o.Dups = uint64(r.Duplicates)
		case FlowUDP:
			o.Sent = rf.udpSrc[i].Sent
			st := rf.udpSink[i].Stats()
			o.Received = st.Unique
			o.Dups = st.Duplicates
		case FlowTCP:
			if t := rf.tcp[i]; t != nil {
				st := t.Stats()
				o.Sent = st.SegmentsSent
				o.Received = st.GoodputBytes
				o.Done = t.Done()
			}
		}
		obs[i] = o
	}
	return obs
}
