package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// artifactVersion guards against replaying artifacts written by an
// incompatible harness.
const artifactVersion = 1

// Artifact is a replayable counterexample: the minimized scenario plus
// the oracle names it violated when it was written. Replay re-executes
// the scenario and asserts exactly the same oracles still fire. An empty
// Expect records a *fixed* bug: the scenario once violated an oracle and
// must now stay clean forever.
type Artifact struct {
	Version int `json:"netco_harness"`
	// Scenario is stored fully decoded, so replay does not depend on the
	// generator staying bit-stable across versions.
	Scenario Scenario `json:"scenario"`
	// Expect is the sorted set of violated oracle names.
	Expect []string `json:"expect"`
	// Note is free-form provenance (what produced this artifact).
	Note string `json:"note,omitempty"`
}

// WriteArtifact serialises the artifact to path (indented, trailing
// newline — stable enough to check into testdata).
func WriteArtifact(path string, a Artifact) error {
	a.Version = artifactVersion
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal artifact: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadArtifact loads and validates an artifact from path.
func ReadArtifact(path string) (Artifact, error) {
	var a Artifact
	b, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(b, &a); err != nil {
		return a, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	if a.Version != artifactVersion {
		return a, fmt.Errorf("harness: %s: unsupported artifact version %d", path, a.Version)
	}
	if err := a.Scenario.Validate(); err != nil {
		return a, fmt.Errorf("harness: %s: %w", path, err)
	}
	return a, nil
}
