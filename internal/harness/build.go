package harness

import (
	"fmt"
	"strings"
	"time"

	"netco/internal/adversary"
	"netco/internal/chaos"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/sim/par"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// Fixed execution timeline (virtual time). Every run follows the same
// schedule so identical scenarios produce identical event sequences:
// flows start inside [settle, settle+window) and the drain leaves the
// compare enough time to expire and retire every outstanding entry
// (hold 20 ms ≪ drain).
const (
	settleTime  = 10 * time.Millisecond
	windowTime  = 120 * time.Millisecond
	drainTime   = 120 * time.Millisecond
	flowStagger = time.Millisecond
)

// Calibration shared by every harness run. Deliberately generous — the
// oracles reason about Byzantine interference, so honest resource
// exhaustion (queue drops, compare overload) must stay out of frame.
const (
	hostLinkRate   = 2e9
	propDelay      = 16 * time.Microsecond
	linkQueue      = 256
	switchProc     = 2 * time.Microsecond
	switchQueue    = 1024
	edgeProc       = 1 * time.Microsecond
	edgeQueue      = 1024
	hostIngest     = 2 * time.Microsecond
	hostQueue      = 256
	comparePerCopy = 1 * time.Microsecond
	compareQueue   = 2048
	compareHold    = 20 * time.Millisecond
	compareCache   = 8192
	compareCleanup = 100 * time.Nanosecond
	compareBlock   = 50 * time.Millisecond
)

// floodSrcMAC is the forged source of flood frames. It must not be
// registered at any edge, or the ingress spoof check would eat the flood
// before the compare ever sees it.
var floodSrcMAC = packet.HostMAC(0xee)

// fabric is an assembled scenario network, before taps and traffic.
type fabric struct {
	runner sim.Runner
	net    *netem.Network
	h1     *traffic.Host
	h2     *traffic.Host
	combs  []*core.Combiner
	// behaviors maps global router index -> installed adversary chain,
	// so activity accounting can read the counters after a run.
	behaviors map[int]switching.Behavior
	// floods collects the generators so Execute can bound them.
	floods []*adversary.Flood
}

// schedOf returns the scheduler owning a node, in either engine mode.
func (f *fabric) schedOf(name string) *sim.Scheduler {
	return f.net.SchedulerFor(name)
}

func (f *fabric) close() {
	for _, c := range f.combs {
		c.Close()
	}
	for _, fl := range f.floods {
		fl.Stop()
	}
}

// fabricUnits is the co-location unit count of each scenario topology
// (see internal/topo/partition.go for the unit rule: nodes that share
// mutable state through direct calls must share a domain).
func fabricUnits(sc Scenario) int {
	switch sc.Topology {
	case TopoChain:
		return 4 // c0, c1, h1, h2
	case TopoFatTree:
		return 9 // 4 pods, 2 core groups, combiner, h1, h2
	default:
		return 3 // combiner, h1, h2
	}
}

// fabricUnit maps a node name to its unit. Combiner nodes all carry the
// "c<i>-" prefix, so a whole combiner (edges, routers, compare — which
// call each other directly) lands in one unit; hosts get their own; the
// fat-tree switches reuse the pod/core-group scheme.
func fabricUnit(sc Scenario, name string) int {
	switch sc.Topology {
	case TopoChain:
		switch {
		case strings.HasPrefix(name, "c0-"):
			return 0
		case strings.HasPrefix(name, "c1-"):
			return 1
		case name == "h1":
			return 2
		default:
			return 3
		}
	case TopoFatTree:
		switch {
		case strings.HasPrefix(name, "c0-"):
			return 6
		case name == "h1":
			return 7
		case name == "h2":
			return 8
		default:
			// 4-ary fat tree: pods 0..3, core groups 4..5. With six
			// domains the modulo inside FatTreeAssign is the identity.
			return topo.FatTreeAssign(4, 6)(name)
		}
	default:
		switch name {
		case "h1":
			return 1
		case "h2":
			return 2
		default:
			return 0
		}
	}
}

// buildFabric wires the scenario's topology with its adversaries already
// attached (behaviors must be installed at router construction so Flood
// generators start with the simulation). partitions > 1 runs the fabric
// on the conservative parallel engine with that many domains (capped at
// the topology's unit count); the result is bit-identical to serial.
func buildFabric(sc Scenario, partitions int) *fabric {
	f := &fabric{behaviors: make(map[int]switching.Behavior)}
	domains := partitions
	if u := fabricUnits(sc); domains > u {
		domains = u
	}
	var eng *par.Engine
	if domains > 1 {
		eng = par.New(domains, 0)
		f.net = netem.NewPartitioned(eng.Schedulers(),
			func(name string) int { return fabricUnit(sc, name) % domains },
			func(src, dst int) netem.CrossPost { return eng.Boundary(src, dst) })
		f.runner = eng
	} else {
		sched := sim.NewScheduler()
		f.net = netem.New(sched)
		f.runner = sched
	}

	hostCfg := traffic.HostConfig{
		IngestPerPacket: hostIngest,
		IngestQueue:     hostQueue,
		EchoResponder:   true,
	}
	f.h1 = traffic.NewHost(f.schedOf("h1"), "h1", packet.HostMAC(1), packet.HostIP(1), hostCfg)
	f.h2 = traffic.NewHost(f.schedOf("h2"), "h2", packet.HostMAC(2), packet.HostIP(2), hostCfg)
	f.net.Add(f.h1)
	f.net.Add(f.h2)

	switch sc.Topology {
	case TopoFatTree:
		buildFatTreeFabric(f, sc)
	case TopoChain:
		buildChainFabric(f, sc)
	default:
		buildTestbedFabric(f, sc)
	}
	f.scheduleChaos(sc)
	if eng != nil {
		// Every harness link has propDelay > 0, so the lookahead is
		// always positive.
		eng.SetLookahead(f.net.MinCrossDelay())
	}
	return f
}

// scheduleChaos arms the scenario's fault plan during single-threaded
// setup. Each action gets a positional target wired to its node or link;
// the transitions themselves execute later, as timed events on the
// target's own scheduler (see internal/chaos), so chaotic runs stay
// race-free and bit-identical under the partitioned engine.
func (f *fabric) scheduleChaos(sc Scenario) {
	if len(sc.Chaos) == 0 {
		return
	}
	reg := chaos.Registry{}
	for i, a := range sc.Chaos {
		name := fmt.Sprintf("chaos%d", i)
		switch a.Kind {
		case ChaosRouterCrash:
			ci, ri := a.Router/sc.K, a.Router%sc.K
			comb := f.combs[ci]
			sw := comb.Routers[ri]
			// Restart goes through the combiner, which replays the
			// proactively installed rules onto the cold table.
			reg[name] = chaos.NodeTarget(f.schedOf(sw.Name()), sw.Crash,
				func() { comb.RestartRouter(ri) })
		case ChaosCompareCrash:
			cn := f.combs[a.Combiner].Compare
			reg[name] = chaos.NodeTarget(f.schedOf(cn.Name()), cn.Crash, cn.Restart)
		case ChaosLinkFlap:
			ci, ri := a.Router/sc.K, a.Router%sc.K
			reg[name] = chaos.LinkTarget(f.combs[ci].RouterLinks[ri][a.Side])
		}
	}
	if err := sc.chaosPlan().Schedule(reg); err != nil {
		// Validate accepted the scenario before the fabric was built.
		panic(err)
	}
}

func (f *fabric) hostLink() netem.LinkConfig {
	return netem.LinkConfig{Bandwidth: hostLinkRate, Delay: propDelay, QueueLimit: linkQueue}
}

// trunkLink is every link the scenario's trunk rate shapes: the
// combiner's edge↔router links and (for the fat tree) the fabric and
// splice links. Impairments attach here and only here — host and compare
// links stay clean, matching the threat model's trusted attachment
// points. The reorder stage only ever *adds* propagation delay, so the
// partitioned engine's lookahead (min cross-link delay) stays sound.
func (f *fabric) trunkLink(sc Scenario) netem.LinkConfig {
	cfg := netem.LinkConfig{Bandwidth: sc.TrunkMbps * 1e6, Delay: propDelay, QueueLimit: linkQueue}
	if sc.Impaired() {
		cfg.Impairments = sc.Impair.spec(sc.Seed)
	}
	return cfg
}

// buildCombiner assembles combiner ci of the scenario, attaching the
// adversary assigned to one of its routers (if any).
func (f *fabric) buildCombiner(sc Scenario, ci int) *core.Combiner {
	spec := core.CombinerSpec{
		NamePrefix: fmt.Sprintf("c%d-", ci),
		K:          sc.K,
		Mode:       core.CombinerCentral,
		Compare: core.CompareNodeConfig{
			Engine: core.Config{
				HoldTimeout:   compareHold,
				CacheCapacity: compareCache,
				DetectOnly:    sc.K == 2,
			},
			PerCopyCost:     comparePerCopy,
			QueueLimit:      compareQueue,
			CleanupPerEntry: compareCleanup,
			BlockDuration:   compareBlock,
		},
		EdgeProcDelay: edgeProc,
		EdgeProcQueue: edgeQueue,
		RouterLink:    f.trunkLink(sc),
		CompareLink:   netem.LinkConfig{Bandwidth: hostLinkRate, Delay: propDelay, QueueLimit: 4 * linkQueue},
	}
	if sc.WeakenMajority {
		spec.Compare.Engine.Majority = sc.K / 2
	}
	comb := core.Build(f.net, spec, func(i int) *switching.Switch {
		name := fmt.Sprintf("c%d-r%d", ci, i)
		sw := switching.New(f.schedOf(name), switching.Config{
			Name:       name,
			DatapathID: uint64(100 + ci*core.MaxK + i),
			ProcDelay:  switchProc,
			ProcQueue:  switchQueue,
		})
		if b := f.behaviorFor(sc, ci*sc.K+i); b != nil {
			sw.SetBehavior(b)
		}
		return sw
	})
	f.combs = append(f.combs, comb)
	return comb
}

// behaviorFor materialises the adversary chain assigned to global router
// index g, or nil for an honest router.
func (f *fabric) behaviorFor(sc Scenario, g int) switching.Behavior {
	for _, a := range sc.Adversaries {
		if a.Router != g {
			continue
		}
		chain := make(adversary.Chain, 0, len(a.Chain))
		for j, atom := range a.Chain {
			chain = append(chain, f.buildAtom(sc, atom, g, j))
		}
		f.behaviors[g] = chain
		return chain
	}
	return nil
}

func (f *fabric) buildAtom(sc Scenario, a Atom, g, j int) switching.Behavior {
	match := openflow.MatchAll()
	switch a.Scope {
	case "udp":
		match = match.WithNwProto(packet.ProtoUDP)
	case "tcp":
		match = match.WithNwProto(packet.ProtoTCP)
	case "icmp":
		match = match.WithNwProto(packet.ProtoICMP)
	}
	switch a.Kind {
	case AtomReroute:
		// Bounce packets arriving on Dir straight back where they came
		// from — always the wrong direction for the matched traffic.
		return &adversary.Reroute{Match: match.WithInPort(uint16(a.Dir)), ToPort: uint16(a.Dir)}
	case AtomMirror:
		return &adversary.Mirror{Match: match.WithInPort(uint16(a.Dir)), ToPort: uint16(a.Dir)}
	case AtomDrop:
		d := &adversary.Drop{Match: match, Probability: a.Probability}
		if a.Probability > 0 && a.Probability < 1 {
			// Deterministic per (scenario, router, atom position).
			d.Rng = sim.NewRNG(sc.Seed ^ int64(g)<<16 ^ int64(j)<<8)
		}
		return d
	case AtomModify:
		var rewrite []openflow.Action
		switch a.Rewrite {
		case "tos":
			rewrite = []openflow.Action{openflow.SetNwTOS(0x10)}
		case "vlan":
			rewrite = []openflow.Action{openflow.SetVLANVID(77)}
		case "tp_dst":
			rewrite = []openflow.Action{openflow.SetTpDst(9999)}
		}
		return &adversary.Modify{Match: match, Rewrite: rewrite}
	case AtomReplay:
		return &adversary.Replay{Match: match, Extra: a.Extra}
	case AtomFlood:
		dst := f.h1
		if a.Dir == 1 {
			dst = f.h2
		}
		fl := &adversary.Flood{
			OutPort: a.Dir,
			Rate:    a.RateKpps * 1e3,
			Template: packet.NewUDP(
				packet.Endpoint{MAC: floodSrcMAC, IP: packet.HostIP(0xee), Port: 9},
				dst.Endpoint(9),
				make([]byte, 64),
			),
			Vary:     a.Vary,
			Duration: settleTime + windowTime,
		}
		f.floods = append(f.floods, fl)
		return fl
	}
	panic("harness: unreachable atom kind " + a.Kind)
}

// buildTestbedFabric is the Fig. 3 shape: hosts directly on the
// combiner's edges.
func buildTestbedFabric(f *fabric, sc Scenario) {
	comb := f.buildCombiner(sc, 0)
	comb.AttachHost(f.net, core.SideLeft, f.h1, traffic.HostPort, f.h1.MAC(), f.hostLink())
	comb.AttachHost(f.net, core.SideRight, f.h2, traffic.HostPort, f.h2.MAC(), f.hostLink())
}

// buildChainFabric joins two combiners in series through their host-side
// edge ports: h1 – C0 – C1 – h2. Each inward-facing edge registers the
// far host's MAC on its host port, so the ingress spoof checks and MAC
// tables work exactly as with a directly attached host.
func buildChainFabric(f *fabric, sc Scenario) {
	c0 := f.buildCombiner(sc, 0)
	c1 := f.buildCombiner(sc, 1)
	c0.AttachHost(f.net, core.SideLeft, f.h1, traffic.HostPort, f.h1.MAC(), f.hostLink())
	c1.AttachHost(f.net, core.SideRight, f.h2, traffic.HostPort, f.h2.MAC(), f.hostLink())
	f.net.Connect(c0.Right, core.EdgeHostPort, c1.Left, core.EdgeHostPort, f.hostLink())
	c0.Right.AddHostPort(core.EdgeHostPort, f.h2.MAC())
	c1.Left.AddHostPort(core.EdgeHostPort, f.h1.MAC())
	c0.InstallRoute(f.h2.MAC(), core.SideRight)
	c1.InstallRoute(f.h1.MAC(), core.SideLeft)
}

// buildFatTreeFabric splices the combiner between two rack switches of a
// 4-ary fat tree (the §VI deployment): h1 under pod0-edge0, h2 under
// pod0-edge1, with the combiner hung off a spare up-port of each rack
// switch so inter-rack traffic must cross it.
func buildFatTreeFabric(f *fabric, sc Scenario) {
	link := f.trunkLink(sc)
	ft := topo.BuildFatTree(f.net, topo.FatTreeParams{
		Arity:           4,
		Link:            link,
		SwitchProcDelay: switchProc,
		SwitchProcQueue: switchQueue,
	})
	rack1, rack2 := ft.Pods[0].Edge[0], ft.Pods[0].Edge[1]
	f.net.Connect(f.h1, traffic.HostPort, rack1, ft.EdgeHostPortOf(0), f.hostLink())
	f.net.Connect(f.h2, traffic.HostPort, rack2, ft.EdgeHostPortOf(0), f.hostLink())

	route := func(sw *switching.Switch, dst packet.MAC, port int) {
		sw.Table().Add(&openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(dst),
			Actions:  []openflow.Action{openflow.Output(uint16(port))},
		})
	}
	route(rack1, f.h1.MAC(), ft.EdgeHostPortOf(0))
	route(rack2, f.h2.MAC(), ft.EdgeHostPortOf(0))

	comb := f.buildCombiner(sc, 0)
	const sparePort = 4
	f.net.Connect(rack1, sparePort, comb.Left, core.EdgeHostPort, link)
	f.net.Connect(rack2, sparePort, comb.Right, core.EdgeHostPort, link)
	comb.Left.AddRoute(f.h1.MAC(), core.EdgeHostPort)
	comb.Right.AddRoute(f.h2.MAC(), core.EdgeHostPort)
	comb.InstallRoute(f.h1.MAC(), core.SideLeft)
	comb.InstallRoute(f.h2.MAC(), core.SideRight)
	route(rack1, f.h2.MAC(), sparePort)
	route(rack2, f.h1.MAC(), sparePort)
}
