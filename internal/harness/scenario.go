// Package harness is a seeded, deterministic Byzantine scenario fuzzer
// for the NetCo combiner. It composes random topologies, adversary
// placements and traffic mixes into a Scenario — a fully self-contained,
// JSON-serialisable genome — executes each scenario in an isolated
// simulation, and checks the paper's correctness claims as invariant
// oracles (Theorems 1–2, §III):
//
//   - masking: with k=3 and ≤1 compromised router per combiner, the
//     compare egress stream equals the honest-only run of the same
//     scenario (frame multisets per direction, IP-ID-normalised);
//   - detection: with k=2 and an active adversary, at least one alarm
//     fires;
//   - no-forgery: no frame egresses a compare unless a majority of that
//     combiner's routers emitted it;
//   - determinism: the same scenario yields a byte-identical observation
//     artifact on every execution, whatever the worker count.
//
// On violation the harness greedily shrinks the scenario and writes a
// minimized replayable artifact (see Artifact); `go test
// ./internal/harness/ -run TestHarnessReplay -harness.replay=<file>`
// re-executes it exactly (the package path must precede the custom flag
// or go test will not forward it to the test binary).
package harness

import (
	"fmt"
	"time"

	"netco/internal/chaos"
	"netco/internal/netem"
)

// Topology names.
const (
	// TopoTestbed is the Fig. 3 shape: h1 – combiner – h2.
	TopoTestbed = "testbed"
	// TopoFatTree splices the combiner between two rack switches of a
	// 4-ary fat tree (the §VI case-study shape), so traffic crosses
	// honest switches before and after the combiner.
	TopoFatTree = "fattree"
	// TopoChain puts two combiners in series: h1 – C1 – C2 – h2, the
	// composition seam two independent deployments would form.
	TopoChain = "chain"
)

// Flow kinds.
const (
	FlowPing = "ping"
	FlowUDP  = "udp"
	FlowTCP  = "tcp"
)

// Chaos action kinds — one per lifecycle fault.
const (
	// ChaosRouterCrash cold-crashes a router (flow table, pipeline and
	// ingress blocks lost) and restarts it with its proactive rules
	// replayed by the combiner.
	ChaosRouterCrash = "router-crash"
	// ChaosCompareCrash crashes the compare node and restarts it with
	// every engine cache flushed.
	ChaosCompareCrash = "compare-crash"
	// ChaosLinkFlap toggles one edge↔router trunk link administratively
	// down and back up, optionally for several cycles.
	ChaosLinkFlap = "link-flap"
)

// chaosHealBoundMs is the latest window-relative instant a chaos plan may
// heal. It leaves the recovery probe (grace + pings + timeout) room to
// finish inside the drain, so Validate rejects plans the recovery oracle
// could not judge.
const chaosHealBoundMs = 110

// Atom kinds — one per adversary behavior.
const (
	AtomReroute = "reroute"
	AtomMirror  = "mirror"
	AtomDrop    = "drop"
	AtomModify  = "modify"
	AtomReplay  = "replay"
	AtomFlood   = "flood"
)

// Scenario is the genome: everything needed to reproduce one run. It is
// stored fully decoded in artifacts, so a replay does not depend on the
// generator staying bit-stable across versions.
type Scenario struct {
	// Seed drives all runtime randomness (probabilistic drops).
	Seed int64 `json:"seed"`
	// Topology is one of TopoTestbed, TopoFatTree, TopoChain.
	Topology string `json:"topology"`
	// K is the combiner parallelism: 3 runs the masking configuration,
	// 2 the detect-only configuration.
	K int `json:"k"`
	// TrunkMbps is the edge↔router line rate.
	TrunkMbps float64 `json:"trunk_mbps"`
	// Flows is the traffic mix; flow i derives its ports from i.
	Flows []Flow `json:"flows"`
	// Adversaries compromise at most one router per combiner.
	Adversaries []Adversary `json:"adversaries,omitempty"`
	// WeakenMajority is the deliberate-sabotage hook: it drops every
	// engine's release threshold to k/2 (one below a strict majority),
	// the off-by-one a correct no-forgery oracle must catch.
	WeakenMajority bool `json:"weaken_majority,omitempty"`
	// Chaos is the timed fault plan: crashes, restarts and link flaps
	// executed on virtual time during the traffic window. A non-empty
	// plan arms the recovery oracle and disarms masking and detection
	// (outage windows legitimately lose traffic and evidence).
	Chaos []ChaosAction `json:"chaos,omitempty"`
	// Impair attaches a deterministic impairment pipeline (loss,
	// Gilbert-Elliott bursts, duplication, corruption, reordering) to
	// every trunk link. Impaired scenarios keep no-forgery and
	// determinism armed but disarm masking, detection and the recovery
	// violation: honest wire noise legitimately loses traffic and
	// evidence, exactly like an outage window (see Impaired).
	Impair *ImpairConfig `json:"impair,omitempty"`
}

// ImpairConfig is the genome form of a trunk impairment pipeline. All
// probabilities are percentages (netem CLI convention); zero fields
// leave the corresponding stage out. The per-stage PRNGs seed from
// (Scenario.Seed, link creation index, direction, stage index), so the
// noise pattern is a pure function of the genome.
type ImpairConfig struct {
	// LossPct is i.i.d. (or, with LossCorrPct, correlated) wire loss.
	LossPct     float64 `json:"loss_pct,omitempty"`
	LossCorrPct float64 `json:"loss_corr_pct,omitempty"`
	// GEGoodBadPct/GEBadGoodPct configure a classic Gilbert-Elliott
	// burst-loss chain (lossy in the bad state, clean in the good one).
	GEGoodBadPct float64 `json:"ge_good_bad_pct,omitempty"`
	GEBadGoodPct float64 `json:"ge_bad_good_pct,omitempty"`
	// DupPct duplicates frames on the wire. Single duplication keeps
	// per-port copies of a frame below the compare's DoS threshold of 3,
	// so trunk dups exercise the dup-suppression path without demanding
	// an alarm.
	DupPct float64 `json:"dup_pct,omitempty"`
	// CorruptPct flips one bit per affected frame. Bounded at 5% so the
	// chance of two trunk copies of the same frame taking the *same*
	// flip — the only way line noise could forge a majority — stays
	// negligible (~1e-9 per frame at the bound) and no-forgery can stay
	// armed under noise.
	CorruptPct float64 `json:"corrupt_pct,omitempty"`
	// ReorderPct delays the affected fraction by up to ReorderUs extra
	// microseconds, reordering them past later sends.
	ReorderPct float64 `json:"reorder_pct,omitempty"`
	ReorderUs  int     `json:"reorder_us,omitempty"`
}

// Impaired reports whether the scenario carries an active impairment
// pipeline — the predicate the oracle gates key off.
func (s Scenario) Impaired() bool {
	c := s.Impair
	if c == nil {
		return false
	}
	return c.LossPct > 0 || c.GEGoodBadPct > 0 || c.DupPct > 0 ||
		c.CorruptPct > 0 || c.ReorderPct > 0
}

// validate bounds the genome: magnitudes the oracles stay meaningful
// under. Heavier noise is the sweep CLI's business, not the fuzzer's.
func (c *ImpairConfig) validate() error {
	if c.LossPct < 0 || c.LossPct > 20 {
		return fmt.Errorf("loss_pct %g out of range [0,20]", c.LossPct)
	}
	if c.LossCorrPct < 0 || c.LossCorrPct > 90 {
		return fmt.Errorf("loss_corr_pct %g out of range [0,90]", c.LossCorrPct)
	}
	if c.LossCorrPct > 0 && c.LossPct == 0 {
		return fmt.Errorf("loss_corr_pct %g without loss_pct", c.LossCorrPct)
	}
	if (c.GEGoodBadPct > 0) != (c.GEBadGoodPct > 0) {
		return fmt.Errorf("gilbert-elliott needs both transition rates (got %g/%g)",
			c.GEGoodBadPct, c.GEBadGoodPct)
	}
	if c.GEGoodBadPct < 0 || c.GEGoodBadPct > 20 {
		return fmt.Errorf("ge_good_bad_pct %g out of range [0,20]", c.GEGoodBadPct)
	}
	if c.GEBadGoodPct < 0 || c.GEBadGoodPct > 100 {
		return fmt.Errorf("ge_bad_good_pct %g out of range [0,100]", c.GEBadGoodPct)
	}
	if c.DupPct < 0 || c.DupPct > 10 {
		return fmt.Errorf("dup_pct %g out of range [0,10]", c.DupPct)
	}
	if c.CorruptPct < 0 || c.CorruptPct > 5 {
		// The no-forgery bound, see the field comment.
		return fmt.Errorf("corrupt_pct %g out of range [0,5]", c.CorruptPct)
	}
	if c.ReorderPct < 0 || c.ReorderPct > 100 {
		return fmt.Errorf("reorder_pct %g out of range [0,100]", c.ReorderPct)
	}
	if c.ReorderPct > 0 && (c.ReorderUs < 1 || c.ReorderUs > 1000) {
		return fmt.Errorf("reorder_us %d out of range [1,1000]", c.ReorderUs)
	}
	if c.ReorderUs != 0 && c.ReorderPct == 0 {
		return fmt.Errorf("reorder_us %d without reorder_pct", c.ReorderUs)
	}
	return nil
}

// spec renders the genome as the netem pipeline configuration, in the
// same stage order the experiment layer uses (loss → GE → corrupt →
// dup → reorder).
func (c *ImpairConfig) spec(seed int64) *netem.ImpairSpec {
	sp := &netem.ImpairSpec{Seed: seed}
	if c.LossPct > 0 {
		sp.Stages = append(sp.Stages, netem.Loss{P: c.LossPct / 100, Corr: c.LossCorrPct / 100})
	}
	if c.GEGoodBadPct > 0 {
		sp.Stages = append(sp.Stages, netem.LossGE{
			PGoodBad: c.GEGoodBadPct / 100,
			PBadGood: c.GEBadGoodPct / 100,
			LossBad:  1,
		})
	}
	if c.CorruptPct > 0 {
		sp.Stages = append(sp.Stages, netem.Corrupt{P: c.CorruptPct / 100})
	}
	if c.DupPct > 0 {
		sp.Stages = append(sp.Stages, netem.Duplicate{P: c.DupPct / 100})
	}
	if c.ReorderPct > 0 {
		sp.Stages = append(sp.Stages, netem.Reorder{
			P:      c.ReorderPct / 100,
			Jitter: time.Duration(c.ReorderUs) * time.Microsecond,
		})
	}
	return sp
}

// ChaosAction is one timed lifecycle fault. Times are in milliseconds
// relative to the start of the traffic window (millisecond granularity
// keeps genomes small and shrinkable; the underlying chaos.Plan is
// nanosecond-precise).
type ChaosAction struct {
	// Kind is ChaosRouterCrash, ChaosCompareCrash or ChaosLinkFlap.
	Kind string `json:"kind"`
	// Router is the global router index (router-crash, link-flap),
	// numbered like Adversary.Router.
	Router int `json:"router,omitempty"`
	// Combiner is the combiner index (compare-crash).
	Combiner int `json:"combiner,omitempty"`
	// Side selects which trunk link flaps (link-flap): 0 the left-edge
	// side, 1 the right-edge side.
	Side int `json:"side,omitempty"`
	// AtMs is the first failure instant, DownMs each outage's duration.
	AtMs   int `json:"at_ms"`
	DownMs int `json:"down_ms"`
	// Cycles repeats the outage (0 and 1 both mean once); PeriodMs is the
	// failure-to-failure flap period (0 defaults to 2×DownMs).
	Cycles   int `json:"cycles,omitempty"`
	PeriodMs int `json:"period_ms,omitempty"`
}

// action renders the ms-granular genome form as a chaos.Action anchored
// at the traffic window start.
func (a ChaosAction) action(target string) chaos.Action {
	return chaos.Action{
		Target: target,
		At:     settleTime + time.Duration(a.AtMs)*time.Millisecond,
		Down:   time.Duration(a.DownMs) * time.Millisecond,
		Cycles: a.Cycles,
		Period: time.Duration(a.PeriodMs) * time.Millisecond,
	}
}

// chaosPlan is the scenario's fault plan with positional target names
// ("chaos0", "chaos1", ...); buildFabric registers the matching targets.
func (s Scenario) chaosPlan() chaos.Plan {
	var p chaos.Plan
	for i, a := range s.Chaos {
		p.Actions = append(p.Actions, a.action(fmt.Sprintf("chaos%d", i)))
	}
	return p
}

// Flow is one traffic stream between the two end hosts.
type Flow struct {
	// Kind is FlowPing, FlowUDP or FlowTCP.
	Kind string `json:"kind"`
	// Reverse sends right→left (h2 to h1) instead of left→right.
	Reverse bool `json:"reverse,omitempty"`
	// Count is the ping cycle count (FlowPing).
	Count int `json:"count,omitempty"`
	// RateMbps and PayloadSize shape the datagram stream (FlowUDP).
	RateMbps    float64 `json:"rate_mbps,omitempty"`
	PayloadSize int     `json:"payload_size,omitempty"`
	// KiB bounds the transfer (FlowTCP): the flow sends KiB kibibytes
	// and quiesces.
	KiB int `json:"kib,omitempty"`
}

// Adversary compromises one router with a chain of behaviors.
type Adversary struct {
	// Router is the global router index: combiner Router/K, local index
	// Router%K (TopoChain has 2K routers; the others K).
	Router int `json:"router"`
	// Chain is applied in order, exactly like adversary.Chain.
	Chain []Atom `json:"chain"`
}

// Atom describes one adversary behavior. Directional atoms (reroute,
// mirror, flood) carry Dir — the router port they interfere with: 0 is
// the left-edge side, 1 the right-edge side. Reroute and mirror act on
// packets *arriving* on Dir and send them back out of Dir (the wrong
// way); flood injects *toward* the edge on Dir.
type Atom struct {
	Kind string `json:"kind"`
	// Scope restricts the match: "all", "udp", "tcp" or "icmp".
	Scope string `json:"scope,omitempty"`
	// Dir is the router port (0 or 1) for directional atoms.
	Dir int `json:"dir,omitempty"`
	// Probability is the drop fraction (AtomDrop; 0 or 1 = always).
	Probability float64 `json:"probability,omitempty"`
	// Rewrite selects the modify flavour: "tos", "vlan" or "tp_dst".
	Rewrite string `json:"rewrite,omitempty"`
	// Extra is the replay amplification (AtomReplay; ≥2 so the copies of
	// one frame cross the compare's DoS threshold).
	Extra int `json:"extra,omitempty"`
	// RateKpps and Vary shape the flood (AtomFlood).
	RateKpps float64 `json:"rate_kpps,omitempty"`
	Vary     bool    `json:"vary,omitempty"`
}

// Combiners returns how many combiners the topology contains.
func (s Scenario) Combiners() int {
	if s.Topology == TopoChain {
		return 2
	}
	return 1
}

// Validate rejects scenarios the executor cannot run — the guard that
// makes replaying artifacts from disk safe.
func (s Scenario) Validate() error {
	switch s.Topology {
	case TopoTestbed, TopoFatTree, TopoChain:
	default:
		return fmt.Errorf("harness: unknown topology %q", s.Topology)
	}
	if s.K != 2 && s.K != 3 {
		return fmt.Errorf("harness: k=%d out of range (want 2 or 3)", s.K)
	}
	if s.TrunkMbps <= 0 || s.TrunkMbps > 10000 {
		return fmt.Errorf("harness: trunk rate %g Mbit/s out of range", s.TrunkMbps)
	}
	if len(s.Flows) == 0 || len(s.Flows) > 16 {
		return fmt.Errorf("harness: %d flows out of range [1,16]", len(s.Flows))
	}
	for i, f := range s.Flows {
		switch f.Kind {
		case FlowPing:
			if f.Count <= 0 || f.Count > 10 {
				return fmt.Errorf("harness: flow %d: ping count %d out of range [1,10]", i, f.Count)
			}
		case FlowUDP:
			if f.RateMbps <= 0 || f.RateMbps > 50 {
				return fmt.Errorf("harness: flow %d: udp rate %g Mbit/s out of range", i, f.RateMbps)
			}
			if f.PayloadSize < 16 || f.PayloadSize > 1470 {
				return fmt.Errorf("harness: flow %d: payload %d out of range [16,1470]", i, f.PayloadSize)
			}
		case FlowTCP:
			if f.KiB <= 0 || f.KiB > 256 {
				return fmt.Errorf("harness: flow %d: tcp size %d KiB out of range [1,256]", i, f.KiB)
			}
		default:
			return fmt.Errorf("harness: flow %d: unknown kind %q", i, f.Kind)
		}
	}
	perCombiner := make(map[int]bool)
	for i, a := range s.Adversaries {
		if a.Router < 0 || a.Router >= s.Combiners()*s.K {
			return fmt.Errorf("harness: adversary %d: router %d out of range", i, a.Router)
		}
		ci := a.Router / s.K
		if perCombiner[ci] {
			// More than one compromised router per combiner is outside
			// the threat model of both theorems; neither oracle applies.
			return fmt.Errorf("harness: adversary %d: combiner %d already compromised", i, ci)
		}
		perCombiner[ci] = true
		if len(a.Chain) == 0 || len(a.Chain) > 4 {
			return fmt.Errorf("harness: adversary %d: chain length %d out of range [1,4]", i, len(a.Chain))
		}
		for j, atom := range a.Chain {
			if err := atom.validate(); err != nil {
				return fmt.Errorf("harness: adversary %d atom %d: %w", i, j, err)
			}
		}
	}
	if s.WeakenMajority && s.K != 3 {
		return fmt.Errorf("harness: weaken_majority requires k=3")
	}
	if len(s.Chaos) > 4 {
		return fmt.Errorf("harness: %d chaos actions out of range [0,4]", len(s.Chaos))
	}
	for i, a := range s.Chaos {
		if err := a.validate(s); err != nil {
			return fmt.Errorf("harness: chaos %d: %w", i, err)
		}
	}
	if s.Impair != nil {
		if err := s.Impair.validate(); err != nil {
			return fmt.Errorf("harness: impair: %w", err)
		}
		if err := s.Impair.spec(s.Seed).Validate(); err != nil {
			return fmt.Errorf("harness: impair: %w", err)
		}
	}
	if len(s.Chaos) > 0 {
		p := s.chaosPlan()
		if err := p.Validate(); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
		if heal := p.LastRecovery() - settleTime; heal > chaosHealBoundMs*time.Millisecond {
			return fmt.Errorf("harness: chaos heals %v into the window, after the %dms bound — the recovery probe would not fit in the drain",
				heal, chaosHealBoundMs)
		}
	}
	return nil
}

// validate checks the fields the chaos.Action conversion cannot: target
// indices and the genome's own magnitude bounds. Timing sanity (negative
// instants, empty outages, period vs duty cycle) is enforced once, by
// chaos.Action.Validate on the converted plan.
func (a ChaosAction) validate(s Scenario) error {
	switch a.Kind {
	case ChaosRouterCrash, ChaosLinkFlap:
		if a.Router < 0 || a.Router >= s.Combiners()*s.K {
			return fmt.Errorf("router %d out of range", a.Router)
		}
	case ChaosCompareCrash:
		if a.Combiner < 0 || a.Combiner >= s.Combiners() {
			return fmt.Errorf("combiner %d out of range", a.Combiner)
		}
	default:
		return fmt.Errorf("unknown chaos kind %q", a.Kind)
	}
	if a.Side != 0 && a.Side != 1 {
		return fmt.Errorf("side %d out of range", a.Side)
	}
	// The plan anchors At at the window start (settleTime), so a small
	// negative offset would still convert to a schedulable instant;
	// reject it here instead.
	if a.AtMs < 0 {
		return fmt.Errorf("at_ms %d negative", a.AtMs)
	}
	if a.Cycles < 0 || a.Cycles > 5 {
		return fmt.Errorf("cycles %d out of range [0,5]", a.Cycles)
	}
	return nil
}

func (a Atom) validate() error {
	switch a.Scope {
	case "", "all", "udp", "tcp", "icmp":
	default:
		return fmt.Errorf("unknown scope %q", a.Scope)
	}
	if a.Dir != 0 && a.Dir != 1 {
		return fmt.Errorf("dir %d out of range", a.Dir)
	}
	switch a.Kind {
	case AtomReroute, AtomMirror:
	case AtomDrop:
		if a.Probability < 0 || a.Probability > 1 {
			return fmt.Errorf("drop probability %g out of range", a.Probability)
		}
	case AtomModify:
		switch a.Rewrite {
		case "tos", "vlan", "tp_dst":
		default:
			return fmt.Errorf("unknown rewrite %q", a.Rewrite)
		}
	case AtomReplay:
		if a.Extra < 2 || a.Extra > 4 {
			// Extra < 2 keeps per-port copies of a frame below the
			// compare's DoS threshold of 3 — an amplification too weak
			// for any oracle to demand an alarm.
			return fmt.Errorf("replay extra %d out of range [2,4]", a.Extra)
		}
	case AtomFlood:
		if a.RateKpps <= 0 || a.RateKpps > 20 {
			return fmt.Errorf("flood rate %g kpps out of range", a.RateKpps)
		}
	default:
		return fmt.Errorf("unknown atom kind %q", a.Kind)
	}
	return nil
}
