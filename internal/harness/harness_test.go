package harness

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"netco/internal/sim"
)

// TestHonestBaselines runs an adversary-free scenario on each topology
// and checks traffic actually crosses the combiner(s) without tripping
// any oracle.
func TestHonestBaselines(t *testing.T) {
	for _, topo := range []string{TopoTestbed, TopoFatTree, TopoChain} {
		for _, k := range []int{2, 3} {
			topo, k := topo, k
			t.Run(topo+"/k="+itoa(k), func(t *testing.T) {
				t.Parallel()
				sc := Scenario{
					Seed:      1,
					Topology:  topo,
					K:         k,
					TrunkMbps: 1000,
					Flows: []Flow{
						{Kind: FlowPing, Count: 5},
						{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256, Reverse: true},
						{Kind: FlowTCP, KiB: 32},
					},
				}
				res, err := Check(sc)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("honest run violated oracles: %+v", res.Violations)
				}
				for i, fo := range res.Obs.Flows {
					if fo.Received == 0 {
						t.Errorf("flow %d (%s) delivered nothing: %+v", i, fo.Kind, fo)
					}
					if fo.Kind == FlowTCP && !fo.Done {
						t.Errorf("flow %d tcp did not quiesce: %+v", i, fo)
					}
				}
				if len(res.Obs.Alarms) != 0 {
					t.Errorf("honest run raised alarms: %+v", res.Obs.Alarms)
				}
			})
		}
	}
}

// TestWeakenedMajorityCaughtAndShrinks is the acceptance drill for the
// sabotage hook: a deliberately weakened compare (release threshold one
// below a strict majority) must be caught by the no-forgery oracle, and
// the shrunk counterexample must be small.
func TestWeakenedMajorityCaughtAndShrinks(t *testing.T) {
	rng := sim.NewRNG(42)
	var sc Scenario
	var oracles []string
	found := false
	for i := 0; i < 20 && !found; i++ {
		cand := Generate(rng, Options{Weaken: true})
		res, err := Check(cand)
		if err != nil {
			t.Fatalf("generated invalid scenario: %v", err)
		}
		for _, o := range res.Oracles() {
			if o == OracleNoForgery {
				sc, oracles, found = cand, res.Oracles(), true
			}
		}
	}
	if !found {
		t.Fatal("weakened-majority generator never tripped the no-forgery oracle")
	}

	min := Shrink(sc, []string{OracleNoForgery}, 60)
	if len(min.Flows) > 5 {
		t.Errorf("shrunk scenario keeps %d flows, want <= 5", len(min.Flows))
	}
	if len(min.Adversaries) > 2 {
		t.Errorf("shrunk scenario keeps %d adversaries, want <= 2", len(min.Adversaries))
	}
	res, err := Check(min)
	if err != nil {
		t.Fatal(err)
	}
	still := false
	for _, o := range res.Oracles() {
		if o == OracleNoForgery {
			still = true
		}
	}
	if !still {
		t.Fatalf("shrunk scenario no longer violates no-forgery: %+v", res.Violations)
	}

	// Round-trip the artifact.
	path := filepath.Join(t.TempDir(), "weakened.json")
	if err := WriteArtifact(path, Artifact{Scenario: min, Expect: oracles, Note: "test"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario.Seed != min.Seed || len(back.Expect) != len(oracles) {
		t.Fatalf("artifact round-trip mismatch: %+v", back)
	}
}

// TestGenerateDeterministic pins the generator: same RNG seed, same
// scenario stream.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(sim.NewRNG(7), Options{})
	b := Generate(sim.NewRNG(7), Options{})
	aj, bj := mustJSON(t, a), mustJSON(t, b)
	if aj != bj {
		t.Fatalf("generator not deterministic:\n%s\n%s", aj, bj)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedScenariosValid fuzz-lite: every generated scenario must
// pass Validate.
func TestGeneratedScenariosValid(t *testing.T) {
	rng := sim.NewRNG(99)
	for i := 0; i < 500; i++ {
		sc := Generate(rng, Options{})
		if err := sc.Validate(); err != nil {
			t.Fatalf("scenario %d invalid: %v\n%+v", i, err, sc)
		}
	}
	for i := 0; i < 100; i++ {
		sc := Generate(rng, Options{Weaken: true})
		if err := sc.Validate(); err != nil {
			t.Fatalf("weakened scenario %d invalid: %v", i, err)
		}
		if !sc.WeakenMajority || sc.K != 3 {
			t.Fatalf("weakened scenario %d lacks the hook: %+v", i, sc)
		}
	}
}

// TestCheckWallClock keeps one Check cheap enough that the 30-second
// smoke budget holds 200 scenarios.
func TestCheckWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	sc := Generate(sim.NewRNG(3), Options{})
	start := time.Now()
	if _, err := Check(sc); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("one Check took %v; smoke budget assumes well under 2s on average", d)
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
