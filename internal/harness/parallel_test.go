package harness

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// TestExecuteParallelByteIdentical is the harness leg of the differential
// determinism suite: adversarial scenarios on every topology, executed on
// the partitioned engine at several domain counts and GOMAXPROCS
// settings, must produce byte-identical canonical observations AND
// identical violation lists. Chain scenarios put two combiners in
// different domains, so this also exercises the per-combiner alarm and
// violation collection merge. Run with -race to check the partition
// barrier.
func TestExecuteParallelByteIdentical(t *testing.T) {
	scenarios := map[string]Scenario{
		"testbed-drop-k2": {
			Seed: 11, Topology: TopoTestbed, K: 2, TrunkMbps: 1000,
			Flows: []Flow{
				{Kind: FlowPing, Count: 5},
				{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256},
			},
			Adversaries: []Adversary{{Router: 0, Chain: []Atom{{Kind: AtomDrop, Probability: 1}}}},
		},
		"chain-modify-k3": {
			Seed: 7, Topology: TopoChain, K: 3, TrunkMbps: 1000,
			Flows: []Flow{
				{Kind: FlowTCP, KiB: 64},
				{Kind: FlowUDP, RateMbps: 20, PayloadSize: 512, Reverse: true},
			},
			Adversaries: []Adversary{
				{Router: 1, Chain: []Atom{{Kind: AtomModify, Rewrite: "tos"}}},
				{Router: 3, Chain: []Atom{{Kind: AtomReplay, Extra: 3}}},
			},
		},
		"fattree-flood-k3": {
			Seed: 3, Topology: TopoFatTree, K: 3, TrunkMbps: 1000,
			Flows: []Flow{
				{Kind: FlowPing, Count: 5},
				{Kind: FlowUDP, RateMbps: 10, PayloadSize: 300},
			},
			Adversaries: []Adversary{{Router: 2, Chain: []Atom{{Kind: AtomFlood, Dir: 1, RateKpps: 5}}}},
		},
	}

	for name, sc := range scenarios {
		name, sc := name, sc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref, err := Execute(sc)
			if err != nil {
				t.Fatal(err)
			}
			refJSON := ref.Obs.CanonicalJSON()
			for _, parts := range []int{2, 3, 4, 8} {
				for _, procs := range []int{1, 4} {
					got := executeAt(t, sc, parts, procs)
					if !bytes.Equal(got.Obs.CanonicalJSON(), refJSON) {
						t.Errorf("partitions=%d GOMAXPROCS=%d: observation diverged\n got: %s\nwant: %s",
							parts, procs, got.Obs.CanonicalJSON(), refJSON)
					}
					if fmt.Sprintf("%+v", got.Violations) != fmt.Sprintf("%+v", ref.Violations) {
						t.Errorf("partitions=%d GOMAXPROCS=%d: violations diverged\n got: %+v\nwant: %+v",
							parts, procs, got.Violations, ref.Violations)
					}
				}
			}
		})
	}
}

func executeAt(t *testing.T, sc Scenario, parts, procs int) RunResult {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	res, err := ExecuteP(sc, parts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
