package harness

import (
	"bytes"
	"context"
	"flag"
	"path/filepath"
	"testing"

	"netco/internal/runner"
)

// -harness.replay replays one artifact file instead of the checked-in
// corpus:
//
//	go test ./internal/harness/ -run TestHarnessReplay -harness.replay=path/to/counterexample.json
var replayFile = flag.String("harness.replay", "", "replay a single harness artifact instead of testdata/")

// TestHarnessReplay re-executes counterexample artifacts and asserts the
// recorded oracle violations reproduce exactly. Without -harness.replay
// it walks every artifact in testdata/, making each checked-in
// counterexample a permanent regression test.
func TestHarnessReplay(t *testing.T) {
	paths := []string{*replayFile}
	if *replayFile == "" {
		var err error
		paths, err = filepath.Glob("testdata/*.json")
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatal("no artifacts in testdata/")
		}
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			art, err := ReadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Check(art.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Oracles()
			if len(got) != len(art.Expect) {
				t.Fatalf("oracle set changed: got %v, artifact expects %v\nviolations: %+v",
					got, art.Expect, res.Violations)
			}
			for i := range got {
				if got[i] != art.Expect[i] {
					t.Fatalf("oracle set changed: got %v, artifact expects %v", got, art.Expect)
				}
			}
		})
	}
}

// TestReplayDeterministicAcrossWorkers executes every testdata artifact
// under worker counts 1 and 8 and requires byte-identical observations:
// scenario isolation means parallelism must never leak into results.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no artifacts in testdata/")
	}
	scenarios := make([]Scenario, len(paths))
	for i, p := range paths {
		art, err := ReadArtifact(p)
		if err != nil {
			t.Fatal(err)
		}
		scenarios[i] = art.Scenario
	}
	run := func(workers int) [][]byte {
		obs, errs := runner.Map(context.Background(), workers, len(scenarios), func(i int) ([]byte, error) {
			r, err := Execute(scenarios[i])
			if err != nil {
				return nil, err
			}
			return r.Obs.CanonicalJSON(), nil
		})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d scenario %s: %v", workers, paths[i], err)
			}
		}
		return obs
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("%s: observation differs between workers=1 and workers=8", paths[i])
		}
	}
}
