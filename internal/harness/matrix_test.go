package harness

import (
	"fmt"
	"testing"
)

// TestAdversaryMatrix is the differential matrix: every adversary
// behavior × {k=2, k=3} through the full combiner. At k=3 the combiner
// must mask every behavior (no oracle violation, traffic intact); at k=2
// the detectable behaviors must raise at least one alarm. Mirror is the
// documented exception at k=2 on the testbed topology: the bounced copy
// is killed by the edge ingress spoof check (its source MAC is the edge's
// own), which is a silent defense rather than an alarm, and the genuine
// copy still flows — so nothing reaches the compare off-profile.
func TestAdversaryMatrix(t *testing.T) {
	atoms := []struct {
		name      string
		atom      Atom
		wantAlarm bool // at k=2
	}{
		{"reroute", Atom{Kind: AtomReroute, Dir: 0}, true},
		{"mirror", Atom{Kind: AtomMirror, Dir: 0}, false},
		{"drop-all", Atom{Kind: AtomDrop, Probability: 1}, true},
		{"drop-half", Atom{Kind: AtomDrop, Probability: 0.5}, true},
		{"modify-tos", Atom{Kind: AtomModify, Rewrite: "tos"}, true},
		{"modify-vlan", Atom{Kind: AtomModify, Rewrite: "vlan"}, true},
		{"modify-tpdst", Atom{Kind: AtomModify, Scope: "udp", Rewrite: "tp_dst"}, true},
		{"replay", Atom{Kind: AtomReplay, Extra: 3}, true},
		{"flood", Atom{Kind: AtomFlood, Dir: 1, RateKpps: 5}, true},
		{"chain-drop+modify", Atom{}, true}, // placeholder; expanded below
	}

	flows := []Flow{
		{Kind: FlowPing, Count: 5},
		{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256},
	}

	for _, tc := range atoms {
		for _, k := range []int{2, 3} {
			tc, k := tc, k
			t.Run(fmt.Sprintf("%s/k=%d", tc.name, k), func(t *testing.T) {
				t.Parallel()
				chain := []Atom{tc.atom}
				if tc.name == "chain-drop+modify" {
					chain = []Atom{
						{Kind: AtomDrop, Scope: "icmp", Probability: 1},
						{Kind: AtomModify, Scope: "udp", Rewrite: "tos"},
					}
				}
				sc := Scenario{
					Seed:        11,
					Topology:    TopoTestbed,
					K:           k,
					TrunkMbps:   1000,
					Flows:       flows,
					Adversaries: []Adversary{{Router: 0, Chain: chain}},
				}
				res, err := Check(sc)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("oracle violations: %+v", res.Violations)
				}
				if res.Obs.Activity == 0 {
					t.Fatalf("adversary never acted; matrix case is vacuous")
				}
				switch k {
				case 3:
					// Masked: traffic must be whole despite the adversary.
					for i, fo := range res.Obs.Flows {
						if fo.Received == 0 {
							t.Errorf("k=3 flow %d (%s) starved: %+v", i, fo.Kind, fo)
						}
					}
				case 2:
					gotAlarm := len(res.Obs.Alarms) > 0
					if tc.wantAlarm && !gotAlarm {
						t.Errorf("k=2 %s raised no alarm (activity=%d)", tc.name, res.Obs.Activity)
					}
					if !tc.wantAlarm && gotAlarm {
						t.Errorf("k=2 %s unexpectedly alarmed: %+v", tc.name, res.Obs.Alarms)
					}
				}
			})
		}
	}
}
