package harness

import (
	"os"
	"path/filepath"
	"testing"

	"netco/internal/packet"
	"netco/internal/sim"
)

// FuzzScenario is the native fuzz entry point: the fuzz input is hashed
// into a generator seed, the derived scenario is executed, and every
// oracle is enforced. On violation the scenario is shrunk and written
// next to the fuzzer's own crash record so it can be checked into
// testdata/ as a replayable regression.
func FuzzScenario(f *testing.F) {
	f.Add([]byte("netco"))
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		seed := int64(packet.FastKey(data) >> 1)
		sc := Generate(sim.NewRNG(seed), Options{})
		res, err := Check(sc)
		if err != nil {
			t.Fatalf("generated scenario rejected: %v", err)
		}
		if len(res.Violations) == 0 {
			return
		}
		oracles := res.Oracles()
		min := Shrink(sc, oracles, 120)
		path := filepath.Join(t.TempDir(), "counterexample.json")
		if dir := os.Getenv("NETCO_FUZZ_ARTIFACTS"); dir != "" {
			path = filepath.Join(dir, "counterexample.json")
		}
		if werr := WriteArtifact(path, Artifact{
			Scenario: min,
			Expect:   oracles,
			Note:     "FuzzScenario minimized counterexample",
		}); werr != nil {
			t.Logf("could not write artifact: %v", werr)
		}
		t.Fatalf("oracle violation %v (minimized artifact: %s)\nviolations: %+v", oracles, path, res.Violations)
	})
}
