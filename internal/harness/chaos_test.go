package harness

import (
	"bytes"
	"fmt"
	"testing"

	"netco/internal/sim"
)

// TestChaosLifecycleClean runs each chaos kind through the full oracle
// stack on an otherwise healthy fabric: no oracle may fire, the recovery
// probe must come back, and the paper's availability claim holds under
// churn — a k=3 combiner masks a single router crash completely, while a
// compare outage (the shared component) loses exactly its window.
func TestChaosLifecycleClean(t *testing.T) {
	udp := Flow{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256}
	cases := []struct {
		name     string
		k        int
		topology string
		chaos    []ChaosAction
		// wantFull: the UDP flow must be delivered in full despite the
		// faults (majority masking); wantLoss: it must lose part of the
		// window (shared-component outage) but keep flowing.
		wantFull bool
		wantLoss bool
	}{
		{
			name: "router-crash-masked", k: 3, topology: TopoTestbed,
			chaos:    []ChaosAction{{Kind: ChaosRouterCrash, Router: 1, AtMs: 20, DownMs: 40}},
			wantFull: true,
		},
		{
			name: "compare-crash-window-lost", k: 3, topology: TopoTestbed,
			chaos:    []ChaosAction{{Kind: ChaosCompareCrash, Combiner: 0, AtMs: 30, DownMs: 20}},
			wantLoss: true,
		},
		{
			name: "link-flap-detect-only", k: 2, topology: TopoTestbed,
			chaos: []ChaosAction{{Kind: ChaosLinkFlap, Router: 0, Side: 1, AtMs: 10, DownMs: 10, Cycles: 3, PeriodMs: 25}},
			// k=2 releases on the first copy, so the surviving router
			// carries the stream through every flap.
			wantFull: true,
		},
		{
			name: "chain-mixed-faults", k: 3, topology: TopoChain,
			chaos: []ChaosAction{
				{Kind: ChaosRouterCrash, Router: 4, AtMs: 10, DownMs: 30},
				{Kind: ChaosLinkFlap, Router: 0, Side: 0, AtMs: 20, DownMs: 10, Cycles: 2, PeriodMs: 30},
			},
			wantFull: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Seed:      5,
				Topology:  tc.topology,
				K:         tc.k,
				TrunkMbps: 1000,
				Flows:     []Flow{udp, {Kind: FlowPing, Count: 3, Reverse: true}},
				Chaos:     tc.chaos,
			}
			res, err := Check(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("chaos run violated oracles: %+v", res.Violations)
			}
			rec := res.Obs.Recovery
			if rec == nil {
				t.Fatal("chaos run recorded no recovery observation")
			}
			if rec.ProbeReceived == 0 {
				t.Fatalf("recovery probe got no echoes: %+v", rec)
			}
			fo := res.Obs.Flows[0]
			if fo.Sent == 0 {
				t.Fatal("udp flow sent nothing; case is vacuous")
			}
			if tc.wantFull && fo.Received != fo.Sent {
				t.Errorf("udp delivered %d of %d — faults should have been masked", fo.Received, fo.Sent)
			}
			if tc.wantLoss && (fo.Received == 0 || fo.Received >= fo.Sent) {
				t.Errorf("udp delivered %d of %d — want partial loss from the outage window", fo.Received, fo.Sent)
			}
			if fo.Dups != 0 {
				t.Errorf("udp saw %d duplicates across the faults", fo.Dups)
			}
		})
	}
}

// TestChaosAdversaryChurn pits a compromised router against lifecycle
// churn on the others: no-forgery must hold throughout — crashes and
// flaps never let a minority frame out of the compare.
func TestChaosAdversaryChurn(t *testing.T) {
	sc := Scenario{
		Seed:      17,
		Topology:  TopoTestbed,
		K:         3,
		TrunkMbps: 1000,
		Flows: []Flow{
			{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256},
			{Kind: FlowTCP, KiB: 16, Reverse: true},
		},
		Adversaries: []Adversary{{Router: 0, Chain: []Atom{{Kind: AtomModify, Rewrite: "tos"}}}},
		Chaos: []ChaosAction{
			{Kind: ChaosRouterCrash, Router: 1, AtMs: 20, DownMs: 20},
			{Kind: ChaosCompareCrash, Combiner: 0, AtMs: 60, DownMs: 10},
		},
	}
	res, err := Check(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("adversary-under-churn violated oracles: %+v", res.Violations)
	}
	if res.Obs.Activity == 0 {
		t.Fatal("adversary never acted; churn case is vacuous")
	}
	if res.Obs.Recovery == nil || res.Obs.Recovery.ProbeReceived == 0 {
		t.Fatalf("fabric did not recover: %+v", res.Obs.Recovery)
	}
}

// TestChaosParallelByteIdentical is the chaos leg of the differential
// determinism suite: fault-injected scenarios executed serially and on
// the partitioned engine (4 domains) must produce byte-identical
// observations and identical violations. Run with -race to check that
// every chaos transition stays inside its target's domain.
func TestChaosParallelByteIdentical(t *testing.T) {
	scenarios := map[string]Scenario{
		"testbed-all-kinds": {
			Seed: 23, Topology: TopoTestbed, K: 3, TrunkMbps: 1000,
			Flows: []Flow{
				{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256},
				{Kind: FlowPing, Count: 3, Reverse: true},
			},
			Adversaries: []Adversary{{Router: 2, Chain: []Atom{{Kind: AtomDrop, Probability: 0.5}}}},
			Chaos: []ChaosAction{
				{Kind: ChaosRouterCrash, Router: 0, AtMs: 15, DownMs: 25},
				{Kind: ChaosLinkFlap, Router: 1, Side: 1, AtMs: 30, DownMs: 10, Cycles: 2, PeriodMs: 30},
				{Kind: ChaosCompareCrash, Combiner: 0, AtMs: 70, DownMs: 15},
			},
		},
		"chain-cross-domain": {
			Seed: 29, Topology: TopoChain, K: 2, TrunkMbps: 500,
			Flows: []Flow{{Kind: FlowUDP, RateMbps: 20, PayloadSize: 512}},
			Chaos: []ChaosAction{
				{Kind: ChaosRouterCrash, Router: 3, AtMs: 10, DownMs: 30},
				{Kind: ChaosLinkFlap, Router: 0, Side: 0, AtMs: 25, DownMs: 15, Cycles: 2, PeriodMs: 40},
			},
		},
	}
	for name, sc := range scenarios {
		name, sc := name, sc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref, err := Execute(sc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ExecuteP(sc, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Obs.CanonicalJSON(), ref.Obs.CanonicalJSON()) {
				t.Errorf("partitions=4 diverged from serial\n got: %s\nwant: %s",
					got.Obs.CanonicalJSON(), ref.Obs.CanonicalJSON())
			}
			if fmt.Sprintf("%+v", got.Violations) != fmt.Sprintf("%+v", ref.Violations) {
				t.Errorf("violations diverged\n got: %+v\nwant: %+v", got.Violations, ref.Violations)
			}
		})
	}
}

// TestChaosValidation pins the genome guard rails.
func TestChaosValidation(t *testing.T) {
	base := Scenario{
		Seed: 1, Topology: TopoTestbed, K: 3, TrunkMbps: 1000,
		Flows: []Flow{{Kind: FlowPing, Count: 3}},
	}
	valid := base
	valid.Chaos = []ChaosAction{{Kind: ChaosLinkFlap, Router: 2, Side: 1, AtMs: 0, DownMs: 5, Cycles: 5, PeriodMs: 20}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid chaos rejected: %v", err)
	}
	bad := []ChaosAction{
		{Kind: "meteor-strike", AtMs: 0, DownMs: 5},
		{Kind: ChaosRouterCrash, Router: 3, AtMs: 0, DownMs: 5},
		{Kind: ChaosCompareCrash, Combiner: 1, AtMs: 0, DownMs: 5},
		{Kind: ChaosLinkFlap, Router: 0, Side: 2, AtMs: 0, DownMs: 5},
		{Kind: ChaosRouterCrash, Router: 0, AtMs: -1, DownMs: 5},
		{Kind: ChaosRouterCrash, Router: 0, AtMs: 0, DownMs: 0},
		{Kind: ChaosLinkFlap, Router: 0, AtMs: 0, DownMs: 10, Cycles: 2, PeriodMs: 10},
		{Kind: ChaosLinkFlap, Router: 0, AtMs: 0, DownMs: 10, Cycles: 6, PeriodMs: 30},
		{Kind: ChaosRouterCrash, Router: 0, AtMs: 100, DownMs: 30}, // heals at 130ms > bound
	}
	for i, ca := range bad {
		sc := base
		sc.Chaos = []ChaosAction{ca}
		if err := sc.Validate(); err == nil {
			t.Errorf("bad chaos action %d validated: %+v", i, ca)
		}
	}
	sc := base
	for i := 0; i < 5; i++ {
		sc.Chaos = append(sc.Chaos, ChaosAction{Kind: ChaosRouterCrash, Router: 0, AtMs: 0, DownMs: 5})
	}
	if err := sc.Validate(); err == nil {
		t.Error("five chaos actions validated, want cap at four")
	}
}

// TestChaosGeneratorValid: every generated chaos scenario passes Validate
// and actually carries a plan.
func TestChaosGeneratorValid(t *testing.T) {
	rng := sim.NewRNG(31)
	for i := 0; i < 300; i++ {
		sc := Generate(rng, Options{Chaos: true})
		if err := sc.Validate(); err != nil {
			t.Fatalf("chaos scenario %d invalid: %v\n%+v", i, err, sc)
		}
		if len(sc.Chaos) == 0 {
			t.Fatalf("chaos scenario %d has no chaos actions", i)
		}
	}
}

// TestChaosShrinkDropsIrrelevantActions: when the violation is caused by
// a weakened majority, not by the faults, the shrinker must strip the
// chaos actions from the counterexample.
func TestChaosShrinkDropsIrrelevantActions(t *testing.T) {
	sc := Scenario{
		Seed: 13, Topology: TopoTestbed, K: 3, TrunkMbps: 1000,
		Flows:          []Flow{{Kind: FlowUDP, RateMbps: 10, PayloadSize: 256}},
		Adversaries:    []Adversary{{Router: 0, Chain: []Atom{{Kind: AtomModify, Rewrite: "tos"}}}},
		WeakenMajority: true,
		Chaos: []ChaosAction{
			{Kind: ChaosLinkFlap, Router: 1, Side: 0, AtMs: 20, DownMs: 10},
			{Kind: ChaosCompareCrash, Combiner: 0, AtMs: 60, DownMs: 10},
		},
	}
	res, err := Check(sc)
	if err != nil {
		t.Fatal(err)
	}
	hasForgery := false
	for _, o := range res.Oracles() {
		if o == OracleNoForgery {
			hasForgery = true
		}
	}
	if !hasForgery {
		t.Fatalf("weakened scenario under churn did not trip no-forgery: %+v", res.Violations)
	}
	min := Shrink(sc, []string{OracleNoForgery}, 40)
	if len(min.Chaos) != 0 {
		t.Errorf("shrunk counterexample keeps %d chaos actions, want 0", len(min.Chaos))
	}
}
