package harness

import (
	"netco/internal/sim"
)

// Options bounds the generator. The zero value is usable: defaults are
// filled in by Generate.
type Options struct {
	// MaxFlows caps the traffic mix size (default 4).
	MaxFlows int
	// MaxChainLen caps atoms per adversary (default 2).
	MaxChainLen int
	// Weaken forces the sabotage configuration: k=3, WeakenMajority set,
	// and at least one forging adversary (modify or flood — behaviors
	// that put frames on the wire no honest router emits), so a correct
	// no-forgery oracle must fire.
	Weaken bool
	// Chaos makes every scenario carry a timed fault plan — router
	// crashes, compare restarts, link flaps — alongside whatever
	// adversaries roll, arming the recovery oracle.
	Chaos bool
	// Impair makes every scenario carry a trunk impairment pipeline
	// (loss, bursts, duplication, corruption, reordering). Without it a
	// quarter of generated scenarios roll one anyway (except in Weaken
	// runs, which stay noise-free so the no-forgery self-test's verdict
	// is attributable to the sabotage alone).
	Impair bool
	// Topologies restricts the topology pool (default: all three).
	Topologies []string
}

func (o Options) withDefaults() Options {
	if o.MaxFlows <= 0 {
		o.MaxFlows = 4
	}
	if o.MaxChainLen <= 0 {
		o.MaxChainLen = 2
	}
	if len(o.Topologies) == 0 {
		o.Topologies = []string{TopoTestbed, TopoFatTree, TopoChain}
	}
	return o
}

// Generate derives a valid scenario from the RNG. The same RNG state and
// options always produce the same scenario; the scenario's own Seed is
// drawn from the stream too, so runtime randomness (probabilistic drops)
// is reproducible from the genome alone.
func Generate(rng *sim.RNG, opts Options) Scenario {
	opts = opts.withDefaults()
	sc := Scenario{
		Seed:      int64(rng.Uint64() >> 1),
		Topology:  opts.Topologies[rng.Intn(len(opts.Topologies))],
		K:         2 + rng.Intn(2),
		TrunkMbps: pickF(rng, 200, 500, 1000),
	}
	if opts.Weaken {
		sc.K = 3
		sc.WeakenMajority = true
	}

	nf := 1 + rng.Intn(opts.MaxFlows)
	for i := 0; i < nf; i++ {
		sc.Flows = append(sc.Flows, genFlow(rng))
	}

	for ci := 0; ci < sc.Combiners(); ci++ {
		if rng.Float64() < 0.7 {
			sc.Adversaries = append(sc.Adversaries, genAdversary(rng, opts, ci, sc.K))
		}
	}
	if opts.Weaken {
		// Guarantee a forging adversary on combiner 0: under the weakened
		// majority a single compromised router's frames release unopposed.
		sc.Adversaries = ensureForger(rng, sc.Adversaries, sc.K)
	}
	if opts.Chaos {
		sc.Chaos = genChaos(rng, sc)
	}
	if opts.Impair || (!opts.Weaken && rng.Float64() < 0.25) {
		sc.Impair = genImpair(rng)
	}
	return sc
}

// genImpair draws an impairment pipeline: one primary noise stage, with
// an independent chance of a low-rate corruption rider. Magnitudes stay
// well inside the Validate bounds — the fuzzer wants noise the armed
// oracles (no-forgery, determinism) must survive, not a dead wire.
func genImpair(rng *sim.RNG) *ImpairConfig {
	c := &ImpairConfig{}
	switch rng.Intn(4) {
	case 0:
		c.LossPct = pickF(rng, 0.5, 2, 5)
		if rng.Intn(2) == 1 {
			c.LossCorrPct = pickF(rng, 25, 50)
		}
	case 1:
		c.GEGoodBadPct = pickF(rng, 0.5, 1, 2)
		c.GEBadGoodPct = pickF(rng, 10, 25, 50)
	case 2:
		c.DupPct = pickF(rng, 0.5, 1, 2)
	default:
		c.ReorderPct = pickF(rng, 10, 25)
		c.ReorderUs = pickI(rng, 30, 100, 300)
	}
	if rng.Intn(4) == 0 {
		c.CorruptPct = pickF(rng, 0.1, 0.5, 1)
	}
	return c
}

// genChaos draws one or two timed faults. The magnitude pools keep the
// last heal inside the Validate bound by construction: worst case is
// at=40 with two 20 ms-down cycles at a 40 ms period, healing at 100 ms.
func genChaos(rng *sim.RNG, sc Scenario) []ChaosAction {
	n := 1 + rng.Intn(2)
	out := make([]ChaosAction, 0, n)
	for i := 0; i < n; i++ {
		a := ChaosAction{
			AtMs:   pickI(rng, 10, 20, 40),
			DownMs: pickI(rng, 10, 20),
		}
		switch rng.Intn(3) {
		case 0:
			a.Kind = ChaosRouterCrash
			a.Router = rng.Intn(sc.Combiners() * sc.K)
		case 1:
			a.Kind = ChaosCompareCrash
			a.Combiner = rng.Intn(sc.Combiners())
		default:
			a.Kind = ChaosLinkFlap
			a.Router = rng.Intn(sc.Combiners() * sc.K)
			a.Side = rng.Intn(2)
			a.Cycles = 1 + rng.Intn(2)
			a.PeriodMs = 2 * a.DownMs
		}
		out = append(out, a)
	}
	return out
}

func genFlow(rng *sim.RNG) Flow {
	fl := Flow{Reverse: rng.Intn(2) == 1}
	switch rng.Intn(3) {
	case 0:
		fl.Kind = FlowPing
		fl.Count = 3 + rng.Intn(5)
	case 1:
		fl.Kind = FlowUDP
		fl.RateMbps = pickF(rng, 5, 10, 20)
		fl.PayloadSize = pickI(rng, 64, 256, 1000)
	default:
		fl.Kind = FlowTCP
		fl.KiB = pickI(rng, 16, 32, 64)
	}
	return fl
}

func genAdversary(rng *sim.RNG, opts Options, ci, k int) Adversary {
	a := Adversary{Router: ci*k + rng.Intn(k)}
	n := 1 + rng.Intn(opts.MaxChainLen)
	for j := 0; j < n; j++ {
		a.Chain = append(a.Chain, genAtom(rng))
	}
	return a
}

func genAtom(rng *sim.RNG) Atom {
	a := Atom{
		Scope: pickS(rng, "all", "udp", "tcp", "icmp"),
		Dir:   rng.Intn(2),
	}
	switch rng.Intn(6) {
	case 0:
		a.Kind = AtomReroute
	case 1:
		a.Kind = AtomMirror
	case 2:
		a.Kind = AtomDrop
		a.Probability = pickF(rng, 1, 0.5)
	case 3:
		a.Kind = AtomModify
		a.Rewrite = pickS(rng, "tos", "vlan", "tp_dst")
	case 4:
		a.Kind = AtomReplay
		a.Extra = 2 + rng.Intn(2)
	default:
		a.Kind = AtomFlood
		a.RateKpps = pickF(rng, 2, 5, 10)
		a.Vary = rng.Intn(2) == 1
	}
	return a
}

// ensureForger makes sure combiner 0 hosts an adversary whose chain
// contains a frame-forging atom (modify or flood) scoped to all traffic.
func ensureForger(rng *sim.RNG, advs []Adversary, k int) []Adversary {
	forge := Atom{Kind: AtomModify, Scope: "all", Rewrite: pickS(rng, "tos", "tp_dst")}
	for i, a := range advs {
		if a.Router >= k {
			continue
		}
		for _, atom := range a.Chain {
			if atom.Kind == AtomModify || atom.Kind == AtomFlood {
				return advs
			}
		}
		advs[i].Chain[0] = forge
		return advs
	}
	return append(advs, Adversary{Router: rng.Intn(k), Chain: []Atom{forge}})
}

func pickF(rng *sim.RNG, vals ...float64) float64 { return vals[rng.Intn(len(vals))] }
func pickI(rng *sim.RNG, vals ...int) int         { return vals[rng.Intn(len(vals))] }
func pickS(rng *sim.RNG, vals ...string) string   { return vals[rng.Intn(len(vals))] }
