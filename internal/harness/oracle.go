package harness

import (
	"bytes"
	"fmt"
)

// CheckResult is the full verdict on one scenario.
type CheckResult struct {
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations"`
	// Obs is the adversarial run's observation (nil if the scenario was
	// invalid).
	Obs *Observation `json:"obs,omitempty"`
}

// Oracles returns the sorted, de-duplicated set of violated oracle names.
func (r CheckResult) Oracles() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range r.Violations {
		if !seen[v.Oracle] {
			seen[v.Oracle] = true
			out = append(out, v.Oracle)
		}
	}
	sortStrings(out)
	return out
}

// Check executes the scenario and applies all four oracles:
//
//   - no-forgery and detection are decided inside Execute;
//   - determinism re-executes the identical scenario twice more — once
//     serial, once on the partitioned parallel engine (4 domains) — and
//     requires byte-identical canonical observations from both;
//   - masking (k=3 only) executes the honest twin — same scenario,
//     adversaries stripped — and requires each direction's released
//     frame multiset to match. The twin comparison is on IP-ID-
//     normalised multisets, not release sequences: honest frame
//     *content* must be preserved bit-exactly, while cross-flow release
//     interleaving (and hence per-host IP-ID assignment) may shift with
//     adversarial timing, which the combiner does not claim to prevent.
//
// Masking is skipped when WeakenMajority is set — the hook deliberately
// breaks the release rule, and the interesting verdict there is
// no-forgery catching the forged releases. It is likewise skipped for
// chaos scenarios: outage windows drop honest traffic, and adversarial
// timing shifts *which* packets are in flight when a window opens, so the
// adversarial egress need not equal the honest twin's. Under churn the
// enforced claims are no-forgery, recovery (decided inside Execute) and
// determinism. Impaired scenarios skip masking for the same reason an
// outage does: wire loss hits the adversarial run and the honest twin at
// different packets (adversarial timing shifts what is on the wire when
// a loss draw fires), so equality of egress multisets is not a claim the
// combiner makes. No-forgery and determinism stay fully armed under
// noise — corruption bounded at 5% cannot forge a majority (see
// ImpairConfig.CorruptPct), and the impairment PRNGs are seeded from the
// genome alone.
func Check(sc Scenario) (CheckResult, error) {
	res := CheckResult{Scenario: sc}
	r1, err := Execute(sc)
	if err != nil {
		return res, err
	}
	res.Obs = &r1.Obs
	res.Violations = append(res.Violations, r1.Violations...)

	r2, err := Execute(sc)
	if err != nil {
		return res, err
	}
	if !bytes.Equal(r1.Obs.CanonicalJSON(), r2.Obs.CanonicalJSON()) {
		res.Violations = append(res.Violations, Violation{
			Oracle: OracleDeterminism,
			Detail: "identical scenario produced different observations across executions",
		})
	}

	rp, err := ExecuteP(sc, 4)
	if err != nil {
		return res, err
	}
	if !bytes.Equal(r1.Obs.CanonicalJSON(), rp.Obs.CanonicalJSON()) {
		res.Violations = append(res.Violations, Violation{
			Oracle: OracleDeterminism,
			Detail: "parallel engine (4 partitions) diverged from serial execution",
		})
	}

	if sc.K == 3 && !sc.WeakenMajority && len(sc.Chaos) == 0 && !sc.Impaired() {
		honest := sc
		honest.Adversaries = nil
		rh, err := Execute(honest)
		if err != nil {
			return res, err
		}
		res.Violations = append(res.Violations, compareMasking(r1.Obs, rh.Obs)...)
	}
	return res, nil
}

// compareMasking checks Theorem 1: the adversarial run's egress must be
// content-identical to the honest twin's, direction by direction.
func compareMasking(adv, honest Observation) []Violation {
	var out []Violation
	if len(adv.Released) != len(honest.Released) {
		return []Violation{{Oracle: OracleMasking, Detail: "direction count differs from honest twin"}}
	}
	honestTotal := 0
	for i := range adv.Released {
		a, h := adv.Released[i], honest.Released[i]
		honestTotal += h.Count
		if a.Count != h.Count || a.SetDigest != h.SetDigest {
			out = append(out, Violation{
				Oracle: OracleMasking,
				Detail: fmt.Sprintf("combiner %d edge %d egress differs from honest twin (%d vs %d frames)",
					a.Combiner, a.Edge, a.Count, h.Count),
			})
		}
	}
	// Vacuity guard: a scenario with traffic whose honest twin releases
	// nothing would render the comparison trivially true — that is a
	// harness wiring bug, not a masked attack.
	if honestTotal == 0 && len(honest.Flows) > 0 {
		out = append(out, Violation{
			Oracle: OracleMasking,
			Detail: "vacuous: honest twin released no frames despite traffic",
		})
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
