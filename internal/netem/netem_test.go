package netem

import (
	"testing"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// collector is a test Node recording arrivals with timestamps.
type collector struct {
	name  string
	sched *sim.Scheduler
	ports Ports

	got  []*packet.Packet
	at   []time.Duration
	onRx func(port int, pkt *packet.Packet)
	rxOn []int
}

func newCollector(sched *sim.Scheduler, name string) *collector {
	return &collector{name: name, sched: sched}
}

func (c *collector) Name() string  { return c.name }
func (c *collector) Ports() *Ports { return &c.ports }

func (c *collector) Receive(port int, pkt *packet.Packet) {
	c.got = append(c.got, pkt)
	c.at = append(c.at, c.sched.Now())
	c.rxOn = append(c.rxOn, port)
	if c.onRx != nil {
		c.onRx(port, pkt)
	}
}

func testPacket(n int) *packet.Packet {
	src := packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1}
	dst := packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2}
	return packet.NewUDP(src, dst, make([]byte, n))
}

func TestLinkDeliveryTiming(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	// 100 Mbit/s, 1 ms propagation.
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 100e6, Delay: time.Millisecond})

	pkt := testPacket(1000) // wire = 1000 + 42 headers = 1042; +24 overhead = 1066 B
	if !a.ports.Send(0, pkt) {
		t.Fatal("send rejected")
	}
	sched.Run()

	if len(b.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(b.got))
	}
	wantTx := time.Duration(float64(pkt.WireLen()+packet.FrameOverhead) * 8 / 100e6 * float64(time.Second))
	want := wantTx + time.Millisecond
	if got := b.at[0]; got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
}

func TestLinkSerialisationBackToBack(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 8e6}) // 1 byte/µs

	// Two packets sent simultaneously serialise one after the other.
	p := testPacket(58) // 100 B on wire, 124 with overhead → 124 µs each
	a.ports.Send(0, p)
	a.ports.Send(0, p.Clone())
	sched.Run()

	if len(b.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(b.at))
	}
	gap := b.at[1] - b.at[0]
	want := 124 * time.Microsecond
	if gap != want {
		t.Fatalf("inter-arrival %v, want %v", gap, want)
	}
}

func TestLinkTailDrop(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 8e6, QueueLimit: 3})

	accepted := 0
	for i := 0; i < 10; i++ {
		if a.ports.Send(0, testPacket(100)) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3 (queue limit)", accepted)
	}
	sched.Run()
	if len(b.got) != 3 {
		t.Fatalf("delivered %d, want 3", len(b.got))
	}
	if drops := l.Stats(0).Drops; drops != 7 {
		t.Fatalf("drops = %d, want 7", drops)
	}
	// Queue drains: further sends accepted again.
	if !a.ports.Send(0, testPacket(100)) {
		t.Fatal("send rejected after queue drained")
	}
}

func TestLinkDuplexIndependence(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 8e6})

	// Saturating a→b must not delay b→a.
	for i := 0; i < 50; i++ {
		a.ports.Send(0, testPacket(1400))
	}
	b.ports.Send(0, testPacket(58))
	sched.Run()
	if len(a.got) != 1 {
		t.Fatalf("reverse direction delivered %d, want 1", len(a.got))
	}
	if a.at[0] != 124*time.Microsecond {
		t.Fatalf("reverse delivery at %v, want 124µs (no cross-direction interference)", a.at[0])
	}
}

func TestLinkDown(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, LinkConfig{})
	l.SetDown(true)
	if a.ports.Send(0, testPacket(10)) {
		t.Fatal("send on down link accepted")
	}
	l.SetDown(false)
	if !a.ports.Send(0, testPacket(10)) {
		t.Fatal("send rejected after link restored")
	}
	sched.Run()
	if len(b.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(b.got))
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Delay: time.Microsecond})
	a.ports.Send(0, testPacket(100000))
	sched.Run()
	if b.at[0] != time.Microsecond {
		t.Fatalf("delivery at %v, want exactly the propagation delay", b.at[0])
	}
}

func TestLinkStats(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, LinkConfig{})
	p := testPacket(100)
	a.ports.Send(0, p)
	a.ports.Send(0, p.Clone())
	sched.Run()
	s := l.Stats(0)
	if s.TxPackets != 2 {
		t.Errorf("TxPackets = %d, want 2", s.TxPackets)
	}
	if s.TxBytes != uint64(2*p.WireLen()) {
		t.Errorf("TxBytes = %d, want %d", s.TxBytes, 2*p.WireLen())
	}
	if r := l.Stats(1); r.TxPackets != 0 {
		t.Errorf("reverse TxPackets = %d, want 0", r.TxPackets)
	}
}

func TestPortsSendUnbound(t *testing.T) {
	var ps Ports
	if ps.Send(3, testPacket(1)) {
		t.Fatal("send on unbound port succeeded")
	}
}

func TestPortsDoubleBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double bind did not panic")
		}
	}()
	sched := sim.NewScheduler()
	var ps Ports
	l := NewLink(sched, "l", LinkConfig{})
	ps.Bind(0, l, 0)
	ps.Bind(0, l, 1)
}

func TestPortsList(t *testing.T) {
	sched := sim.NewScheduler()
	var ps Ports
	for _, idx := range []int{5, 1, 3} {
		ps.Bind(idx, NewLink(sched, "l", LinkConfig{}), 0)
	}
	got := ps.List()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List() = %v, want %v", got, want)
		}
	}
	if ps.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", ps.Count())
	}
}

func TestNetworkDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	sched := sim.NewScheduler()
	net := New(sched)
	net.Add(newCollector(sched, "x"))
	net.Add(newCollector(sched, "x"))
}

func TestProcServiceTimes(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 10*time.Microsecond, 0)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		p.Submit(func() { done = append(done, sched.Now()) })
	}
	sched.Run()
	want := []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion times %v, want %v", done, want)
		}
	}
	if got := p.Stats().Processed; got != 3 {
		t.Fatalf("Processed = %d, want 3", got)
	}
}

func TestProcQueueLimit(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, time.Millisecond, 2)
	accepted := 0
	for i := 0; i < 5; i++ {
		if p.Submit(func() {}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2", accepted)
	}
	if p.Stats().Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", p.Stats().Dropped)
	}
	sched.Run()
	if p.Backlog() != 0 {
		t.Fatalf("Backlog = %d after drain, want 0", p.Backlog())
	}
}

func TestProcStall(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 10*time.Microsecond, 0)
	p.Stall(time.Millisecond)
	var done time.Duration
	p.Submit(func() { done = sched.Now() })
	sched.Run()
	if done != time.Millisecond+10*time.Microsecond {
		t.Fatalf("completion at %v, want 1.01ms (stall honoured)", done)
	}
}

func TestProcZeroCost(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 0, 0)
	fired := false
	p.Submit(func() { fired = true })
	sched.Run()
	if !fired || sched.Now() != 0 {
		t.Fatal("zero-cost proc should complete immediately")
	}
}

func TestProcReset(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 10*time.Microsecond, 0)
	ran := 0
	for i := 0; i < 4; i++ {
		p.Submit(func() { ran++ })
	}
	p.SubmitArgs(func(_, _ any, _ int) { ran++ }, nil, nil, 0)
	// Reset at 15 µs: the first item (done at 10 µs) ran; the other four
	// die in the queue.
	sched.At(15*time.Microsecond, func() { p.Reset() })
	// The resource serves normally after the reset, with no stale busy
	// horizon from the discarded work: a submission at 16 µs completes one
	// service time later, not behind the dead queue.
	var at time.Duration
	sched.At(16*time.Microsecond, func() {
		if p.Backlog() != 0 {
			t.Errorf("Backlog = %d after Reset, want 0", p.Backlog())
		}
		p.Submit(func() { at = sched.Now() })
	})
	sched.Run()
	if ran != 1 {
		t.Fatalf("%d callbacks ran, want 1 (rest discarded by Reset)", ran)
	}
	if at != 26*time.Microsecond {
		t.Fatalf("post-reset completion at %v, want 26µs (submit time + one service)", at)
	}
}

func TestProcSubmitCost(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, time.Microsecond, 0)
	var at time.Duration
	p.SubmitCost(5*time.Microsecond, func() { at = sched.Now() })
	sched.Run()
	if at != 5*time.Microsecond {
		t.Fatalf("completion at %v, want 5µs", at)
	}
}

// TestThroughputMatchesBandwidth drives a link at saturation and checks the
// delivered goodput equals the configured line rate minus framing overhead —
// the calibration fact behind the paper's 474 Mbit/s Linespeed TCP figure.
func TestThroughputMatchesBandwidth(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 500e6, QueueLimit: 10000})

	const n = 1000
	payload := 1460
	for i := 0; i < n; i++ {
		a.ports.Send(0, testPacket(payload))
	}
	sched.Run()
	elapsed := sched.Now().Seconds()
	goodput := float64(n*payload*8) / elapsed
	// UDP framing: 1460/(1460+42+24) of 500 Mbit/s ≈ 478.4 Mbit/s. (TCP's
	// 54-byte headers give the paper's 474 Mbit/s.)
	want := 500e6 * 1460 / 1526
	if diff := goodput/want - 1; diff > 0.001 || diff < -0.001 {
		t.Fatalf("goodput %.1f Mbit/s, want ≈%.1f", goodput/1e6, want/1e6)
	}
}

// TestLinkMinFrameTimingAt10G pins the serialisation time of back-to-back
// minimum-size frames at 10 Gb/s: 66 B on the wire (42 B headers + 24 B
// framing) is 528 bits = 52.8 ns, which must round to 53 ns — truncation
// would model 52 ns and, at still higher rates, 0 ns, collapsing distinct
// frames onto one instant.
func TestLinkMinFrameTimingAt10G(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 10e9})

	p := testPacket(0)
	const n = 8
	for i := 0; i < n; i++ {
		if !a.ports.Send(0, p.Clone()) {
			t.Fatalf("send %d rejected", i)
		}
	}
	sched.Run()
	if len(b.at) != n {
		t.Fatalf("delivered %d, want %d", len(b.at), n)
	}
	for i, at := range b.at {
		if want := time.Duration(i+1) * 53 * time.Nanosecond; at != want {
			t.Fatalf("frame %d delivered at %v, want %v (52.8 ns rounded per frame)", i, at, want)
		}
	}
}

// TestLinkSubNanosecondRateKeepsOrdering drives the rate high enough that
// the true per-frame serialisation time is under 1 ns: rounding must keep
// it at 1 ns so consecutive frames still get distinct, ordered instants.
func TestLinkSubNanosecondRateKeepsOrdering(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 1e12}) // 66 B → 0.528 ns

	p := testPacket(0)
	for i := 0; i < 4; i++ {
		a.ports.Send(0, p.Clone())
	}
	sched.Run()
	if len(b.at) != 4 {
		t.Fatalf("delivered %d, want 4", len(b.at))
	}
	for i := 1; i < len(b.at); i++ {
		if b.at[i] <= b.at[i-1] {
			t.Fatalf("frames %d and %d collapsed onto %v", i-1, i, b.at[i])
		}
	}
}
