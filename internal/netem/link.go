// Package netem is the discrete-event network emulator the NetCo
// reproduction runs on: the stand-in for the paper's Mininet testbed.
//
// It models the three resources that shape every number in the paper's
// evaluation:
//
//   - link serialisation (bandwidth) including Ethernet framing overhead,
//   - propagation delay and drop-tail queueing, and
//   - per-node packet processing cost and capacity (Proc), which is how the
//     compare element's CPU cost and a host's ingest limit are expressed.
//
// All activity is scheduled on a sim.Scheduler, so experiments are
// deterministic and run in virtual time.
package netem

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// Receiver is anything that can accept a packet on a numbered port: a
// switch, a host, a hub, or the compare element.
type Receiver interface {
	// Name identifies the node in traces and error messages.
	Name() string
	// Receive delivers pkt arriving on the given local port.
	Receive(port int, pkt *packet.Packet)
}

// LinkConfig describes one duplex link.
type LinkConfig struct {
	// Bandwidth is the line rate in bits per second. Zero means
	// infinitely fast (no serialisation delay).
	Bandwidth float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueLimit is the transmit queue capacity in packets for each
	// direction; the packet being serialised occupies one slot. Zero
	// means unbounded.
	QueueLimit int
	// DropInFlight makes a link-down event also discard packets that were
	// already serialised and are propagating when the link goes down — the
	// physical model of a cut fibre. Off (the default) preserves the
	// historical behaviour (and run digests): down only gates new sends,
	// and in-flight packets still arrive.
	DropInFlight bool
	// Impairments, when non-nil, attaches the seeded impairment pipeline
	// (loss models, duplication, corruption, reordering — see impair.go)
	// to both directions of the link. The spec is read-only and may be
	// shared across links; each direction builds private stage state.
	Impairments *ImpairSpec
}

// LinkStats counts traffic for one direction of a link.
//
// The drop counters are disjoint: Drops is backpressure and
// administrative refusal at the sender (tail drop, link down — Send
// returned false), InFlightDrops is the cut-fibre discard at the
// receiver, and ImpairDrops is stochastic wire loss from the impairment
// pipeline (the sender still saw the packet accepted). Corrupted,
// Duplicated and Reordered likewise count impairment-pipeline events
// only, never adversarial modification or protocol retransmission.
type LinkStats struct {
	TxPackets uint64
	TxBytes   uint64
	Drops     uint64
	// InFlightDrops counts packets of this direction that were already in
	// flight when the link went down and were discarded at the receiving
	// end (only with LinkConfig.DropInFlight).
	InFlightDrops uint64
	// ImpairDrops counts packets consumed by a loss stage of the
	// impairment pipeline after the sender accepted them.
	ImpairDrops uint64
	// Corrupted counts packets whose bytes a Corrupt stage flipped.
	Corrupted uint64
	// Duplicated counts extra copies a Duplicate stage injected.
	Duplicated uint64
	// Reordered counts deliveries scheduled to arrive earlier than a
	// previously scheduled delivery of the same direction (jitter from a
	// Reorder stage let a later send overtake an earlier one).
	Reordered uint64
}

type attachment struct {
	recv Receiver
	port int
}

type linkDir struct {
	busyUntil  time.Duration
	queued     int
	deliverSeq uint64 // per-direction delivery counter: the channel key
	// fluidBps is the aggregate fluid-tier load currently assigned to
	// this direction (bits per second of rate-process flows that are not
	// expanded into discrete packets). It shrinks the effective capacity
	// and inflates the queueing delay that discrete packets see — the
	// coexistence contract of the hybrid traffic engine.
	fluidBps float64
	stats    LinkStats
	// pipe is the direction's impairment pipeline (nil for clean links —
	// the fast path in Send stays bit-identical to the pre-impairment
	// engine). Owned by the transmitting end's domain.
	pipe *impairPipeline
	// maxDeliverAt is the latest delivery instant scheduled so far, used
	// to detect reordering. Only maintained when pipe is non-nil: the
	// hybrid fluid delay can also shrink between sends, and clean links
	// must not pay for (or report) impairment bookkeeping.
	maxDeliverAt time.Duration
}

// Fluid/packet coexistence constants.
const (
	// minEffectiveShare floors the capacity left to discrete packets
	// under fluid load: however much fluid rate the allocator assigns,
	// packets keep at least this fraction of the line rate, so a
	// misconfigured (oversubscribed) fluid tier degrades packet service
	// instead of stalling the simulation with near-infinite
	// serialisation times.
	minEffectiveShare = 0.05
	// maxFluidRho caps the utilisation used in the queue-delay
	// inflation term ρ/(1−ρ), which diverges as ρ → 1.
	maxFluidRho = 0.95
)

// CrossPost is the partitioned engine's boundary: where a link's two ends
// live in different partitions, deliveries are posted through it instead
// of being scheduled locally, carrying the same (channel, sequence) key a
// local delivery would. par.Boundary satisfies it.
type CrossPost interface {
	Post(at time.Duration, ch, seq uint64, fn sim.CallFunc, a0, a1 any, n int)
}

// Link is a duplex point-to-point link. Each direction has independent
// serialisation state and a drop-tail queue, like a veth pair with tc
// netem/tbf attached in the paper's Mininet setup.
//
// Every delivery is scheduled as a channel event keyed by
// (id*2+direction, per-direction sequence). The id is globally unique
// and monotone in creation order, so within any one run the keys of
// same-instant deliveries compare in link-creation order — the property
// that makes the serial and partitioned engines execute identical event
// sequences (see internal/sim/par).
type Link struct {
	name string
	id   uint64
	// denseIdx is the link's position in its Network's creation-order
	// link list, or -1 for links built outside a Network. The fluid
	// tier uses it to index per-(link, direction) state with a slice
	// instead of a map.
	denseIdx int
	// scheds[end] is the scheduler of the node attached at end; both
	// entries are the same scheduler unless the link crosses partitions.
	scheds [2]*sim.Scheduler
	// cross[fromEnd] is non-nil iff the ends are in different partitions:
	// the boundary that carries fromEnd's deliveries to the peer domain.
	cross [2]CrossPost
	cfg   LinkConfig
	ends  [2]attachment
	dirs  [2]linkDir

	// downAt[end] is end's local view of the link's administrative state,
	// read and written only from end's domain once workers run: Send
	// consults downAt[fromEnd], delivery consults downAt[receiving end].
	// Timed toggles (ScheduleDown) arm one event per end on that end's own
	// scheduler, so partitioned runs never share the flag across domains.
	downAt [2]endDown
}

// endDown is one end's administratively-down view plus the counter of
// in-flight packets this end discarded while down. Both fields are owned
// by the end's domain.
type endDown struct {
	down          bool
	inFlightDrops uint64
}

// linkIDs hands out globally unique, monotone link ids. Only the
// *relative* order of ids matters (they break same-instant delivery
// ties), so a process-wide counter keeps concurrent sweep runs
// deterministic: each run's links still get ids in its own creation
// order.
var linkIDs atomic.Uint64

// NewLink creates an unattached link. Most callers use Connect instead.
func NewLink(sched *sim.Scheduler, name string, cfg LinkConfig) *Link {
	l := &Link{}
	l.init(sched, name, linkIDs.Add(1), cfg)
	l.buildImpairments()
	return l
}

// buildImpairments instantiates the per-direction impairment pipelines
// from cfg.Impairments. Called after denseIdx is final: the stage seeds
// incorporate the link's creation index within its Network (not the
// process-global id, which varies across runs sharing the process), so
// the same run inputs always yield the same impairment decisions.
func (l *Link) buildImpairments() {
	spec := l.cfg.Impairments
	if spec == nil {
		return
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("netem: link %s: %v", l.name, err))
	}
	idx := uint64(l.denseIdx + 1) // standalone links (denseIdx -1) hash as 0
	for dir := range l.dirs {
		l.dirs[dir].pipe = spec.build(idx, dir)
	}
}

// init fills in a (possibly arena-allocated) zero link.
func (l *Link) init(sched *sim.Scheduler, name string, id uint64, cfg LinkConfig) {
	l.name = name
	l.id = id
	l.denseIdx = -1
	l.scheds = [2]*sim.Scheduler{sched, sched}
	l.cfg = cfg
}

// Name returns the link's diagnostic name. Links created through a
// Network synthesise it lazily from their attachments — at half a
// million links the name strings are pure build-time overhead, so they
// are only materialised when something actually asks.
func (l *Link) Name() string {
	if l.name == "" && l.ends[0].recv != nil && l.ends[1].recv != nil {
		l.name = fmt.Sprintf("%s:%d<->%s:%d",
			l.ends[0].recv.Name(), l.ends[0].port, l.ends[1].recv.Name(), l.ends[1].port)
	}
	return l.name
}

// Index returns the link's position in its Network's creation-order
// link list (-1 for standalone links).
func (l *Link) Index() int { return l.denseIdx }

// Attach binds one end of the link to a receiver port. end is 0 or 1.
func (l *Link) Attach(end int, r Receiver, port int) {
	l.ends[end] = attachment{recv: r, port: port}
}

// Peer returns the receiver attached at the far side from end.
func (l *Link) Peer(end int) (Receiver, int) {
	a := l.ends[1-end]
	return a.recv, a.port
}

// SetDown administratively disables the link: all sends are dropped. It
// writes both ends' views immediately, so it is only safe from setup code
// or a serial run's event context (the compare's port-blocking response,
// single-scheduler fault tests). Partitioned runs — and any toggle that
// must land at a specific virtual time — use ScheduleDown instead.
func (l *Link) SetDown(down bool) {
	l.downAt[0].down = down
	l.downAt[1].down = down
}

// ScheduleDown arms the administrative toggle as a timed event on each
// end's own scheduler, so each domain flips its local view from its own
// goroutine — the race-free path for partitioned runs. Call during
// single-threaded setup (before workers start), like all cross-domain
// scheduling. Ordinary events sort before same-instant deliveries, so a
// down at time T affects packets arriving at exactly T deterministically.
func (l *Link) ScheduleDown(at time.Duration, down bool) {
	n := 0
	if down {
		n = 1
	}
	l.scheds[0].AtCall(at, linkSetEndDown, l, nil, n)
	l.scheds[1].AtCall(at, linkSetEndDown, l, nil, 2|n)
}

// linkSetEndDown flips one end's local down view. n encodes end<<1|down.
func linkSetEndDown(a0, _ any, n int) {
	l := a0.(*Link)
	l.downAt[n>>1].down = n&1 == 1
}

// Down reports end's local view of the administrative state.
func (l *Link) Down(end int) bool { return l.downAt[end].down }

// Stats returns the counters for the direction transmitting from end.
// In-flight drops of that direction happen at — and are counted by — the
// receiving end; Stats folds them in, so call it only from setup/teardown
// or a serial run (like SetDown).
func (l *Link) Stats(end int) LinkStats {
	s := l.dirs[end].stats
	s.InFlightDrops = l.downAt[1-end].inFlightDrops
	return s
}

// SetFluidLoad assigns the aggregate fluid-tier rate (bits per second)
// riding the direction that transmits from end. The fluid tier's
// allocator calls it after every reallocation; packets sent afterwards
// see the shrunken effective capacity and inflated queueing delay.
// Negative loads clamp to zero.
func (l *Link) SetFluidLoad(fromEnd int, bps float64) {
	if bps < 0 || math.IsNaN(bps) {
		bps = 0
	}
	l.dirs[fromEnd].fluidBps = bps
}

// FluidLoad returns the aggregate fluid rate currently assigned to the
// direction transmitting from end.
func (l *Link) FluidLoad(fromEnd int) float64 { return l.dirs[fromEnd].fluidBps }

// Capacity returns the configured line rate (0 = infinitely fast) — the
// budget the fluid tier's max-min allocator water-fills.
func (l *Link) Capacity() float64 { return l.cfg.Bandwidth }

// EffectiveBandwidth returns the capacity left to discrete packets on
// the direction transmitting from end: the line rate minus the fluid
// load, floored at minEffectiveShare of the line rate. Zero means
// infinitely fast (an unbanded link stays unbanded; fluid load on it is
// accounting-only).
func (l *Link) EffectiveBandwidth(fromEnd int) float64 {
	bw := l.cfg.Bandwidth
	if bw == 0 {
		return 0
	}
	eff := bw - l.dirs[fromEnd].fluidBps
	if floor := bw * minEffectiveShare; eff < floor {
		eff = floor
	}
	return eff
}

// fluidQueueDelay returns the extra queueing latency a packet of the
// given serialisation time experiences from the fluid aggregate sharing
// the direction: the M/M/1-shaped ρ/(1−ρ) term, with ρ the fluid
// utilisation of the line rate, capped at maxFluidRho. It is zero when
// no fluid load is assigned, keeping the packet-only path bit-identical
// to the pre-hybrid engine.
func (d *linkDir) fluidQueueDelay(bw float64, txTime time.Duration) time.Duration {
	if d.fluidBps <= 0 || bw <= 0 {
		return 0
	}
	rho := d.fluidBps / bw
	if rho > maxFluidRho {
		rho = maxFluidRho
	}
	return time.Duration(math.Round(rho / (1 - rho) * float64(txTime)))
}

// Send transmits pkt from the given end toward the peer, modelling
// serialisation, queueing and propagation. It reports whether the packet
// was accepted (false = tail drop or link down). The caller must not
// mutate pkt after sending; forwarding elements that need to alter a
// packet send a Clone.
func (l *Link) Send(fromEnd int, pkt *packet.Packet) bool {
	d := &l.dirs[fromEnd]
	if l.downAt[fromEnd].down {
		d.stats.Drops++
		return false
	}
	if l.ends[1-fromEnd].recv == nil {
		panic(fmt.Sprintf("netem: link %s end %d has no peer", l.name, 1-fromEnd))
	}
	if d.pipe == nil {
		// Clean link: the pre-impairment fast path, bit-identical to the
		// historical engine.
		return l.sendOne(fromEnd, d, pkt, 0)
	}
	// Impaired link: the pipeline may drop the packet (wire loss — the
	// sender still sees success, unlike backpressure), replace it with a
	// corrupted clone, append duplicates, or assign extra delays. Each
	// surviving delivery then takes the ordinary serialisation path, so
	// duplicates occupy queue slots and transmission time like real
	// frames. Send reports acceptance: true unless backpressure refused
	// every surviving copy.
	dl := d.pipe.apply(pkt, &d.stats)
	ok := len(dl) > 0
	if !ok {
		return true // consumed by wire loss, not refused
	}
	sent := false
	for i := range dl {
		if l.sendOne(fromEnd, d, dl[i].pkt, dl[i].extra) {
			sent = true
		}
	}
	return sent
}

// sendOne runs one delivery through serialisation, queueing and
// propagation, with extra added to the propagation delay (jitter from a
// Reorder stage). It reports whether the queue accepted the packet.
func (l *Link) sendOne(fromEnd int, d *linkDir, pkt *packet.Packet, extra time.Duration) bool {
	if l.cfg.QueueLimit > 0 && d.queued >= l.cfg.QueueLimit {
		d.stats.Drops++
		return false
	}

	sched := l.scheds[fromEnd] // Send runs in the transmitting node's domain
	now := sched.Now()
	var txTime, fluidDelay time.Duration
	if l.cfg.Bandwidth > 0 {
		bits := float64(pkt.WireLen()+packet.FrameOverhead) * 8
		// Round to the nearest nanosecond instead of truncating: at high
		// line rates truncation yields txTime == 0 and back-to-back
		// frames collapse onto one instant (a 64 B minimum frame at
		// 10 Gb/s serialises in 67.2 ns — truncation would still order
		// them, but any rate where the true time is < 1 ns would not).
		// Serialisation runs at the capacity the fluid tier left over;
		// with no fluid load EffectiveBandwidth is exactly cfg.Bandwidth
		// and the arithmetic is bit-identical to the packet-only engine.
		txTime = time.Duration(math.Round(bits / l.EffectiveBandwidth(fromEnd) * 1e9))
		fluidDelay = d.fluidQueueDelay(l.cfg.Bandwidth, txTime)
	}
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	finish := start + txTime
	d.busyUntil = finish
	d.queued++
	d.stats.TxPackets++
	d.stats.TxBytes += uint64(pkt.WireLen())

	// Argument-carrying events: two events per transmission with zero
	// closure allocations (the link is the single hottest scheduler
	// client — every packet on every hop passes through here). The
	// tx-done bookkeeping is local to the sender; the delivery is a
	// keyed channel event on the receiver's scheduler, routed over the
	// partition boundary when the ends live in different domains.
	sched.AtCall(finish, linkTxDone, d, nil, 0)
	ch := l.id*2 + uint64(fromEnd)
	seq := d.deliverSeq
	d.deliverSeq++
	at := finish + l.cfg.Delay + fluidDelay + extra
	if d.pipe != nil {
		// Reorder accounting: a delivery landing strictly before one
		// already scheduled means a later send overtook an earlier one.
		// Channel-event keys need uniqueness only per (deadline, ch), so
		// out-of-order deadlines on one channel are fine — and the extra
		// delay is >= 0, so at never undercuts the propagation delay that
		// bounds the partitioned engine's lookahead.
		if at < d.maxDeliverAt {
			d.stats.Reordered++
		} else {
			d.maxDeliverAt = at
		}
	}
	if cp := l.cross[fromEnd]; cp != nil {
		cp.Post(at, ch, seq, linkDeliver, l, pkt, fromEnd)
	} else {
		sched.AtCallChan(at, ch, seq, linkDeliver, l, pkt, fromEnd)
	}
	return true
}

func linkTxDone(a0, _ any, _ int) {
	a0.(*linkDir).queued--
}

// linkDeliver runs in the receiving end's domain. With DropInFlight, a
// packet arriving while the receiving end's view says down is discarded
// and counted there (the receiving domain owns that counter).
func linkDeliver(a0, a1 any, n int) {
	l := a0.(*Link)
	re := 1 - n
	if ed := &l.downAt[re]; ed.down && l.cfg.DropInFlight {
		ed.inFlightDrops++
		return
	}
	dst := &l.ends[re]
	dst.recv.Receive(dst.port, a1.(*packet.Packet))
}
