package netem

import (
	"testing"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// sinkNode is a minimal port-bearing node that records arrivals.
type sinkNode struct {
	name     string
	ports    Ports
	received int
}

func (n *sinkNode) Name() string                         { return n.name }
func (n *sinkNode) Ports() *Ports                        { return &n.ports }
func (n *sinkNode) Receive(port int, pkt *packet.Packet) { n.received++ }

// deliveryProbe measures one packet's delivery time over a fresh link
// with the given fluid load applied to the transmitting direction.
func deliveryProbe(t *testing.T, cfg LinkConfig, fluidBps float64) time.Duration {
	t.Helper()
	sched := sim.NewScheduler()
	net := New(sched)
	a := &sinkNode{name: "a"}
	b := &sinkNode{name: "b"}
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, cfg)
	l.SetFluidLoad(0, fluidBps)

	pkt := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2},
		make([]byte, 1000))
	if !a.ports.Send(0, pkt) {
		t.Fatal("send rejected")
	}
	// Run to completion; the delivery is the last event.
	var last time.Duration
	for sched.Step() {
		last = sched.Now()
	}
	if b.received != 1 {
		t.Fatalf("delivered %d packets, want 1", b.received)
	}
	return last
}

func TestFluidLoadZeroIsBitIdentical(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Microsecond}
	base := deliveryProbe(t, cfg, 0)
	again := deliveryProbe(t, cfg, 0)
	if base != again {
		t.Fatalf("zero-load runs diverged: %v vs %v", base, again)
	}
	// Explicitly setting zero load must not perturb anything either
	// (SetFluidLoad(0) is the demotion path's reset).
	if explicit := deliveryProbe(t, cfg, -0.0); explicit != base {
		t.Fatalf("explicit zero load changed delivery: %v vs %v", explicit, base)
	}
}

func TestFluidLoadShrinksEffectiveCapacityAndInflatesDelay(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Microsecond}
	base := deliveryProbe(t, cfg, 0)
	half := deliveryProbe(t, cfg, 50e6) // 50% fluid: serialisation doubles + queue term
	if half <= base {
		t.Fatalf("50%% fluid load did not slow delivery: %v vs %v", half, base)
	}
	// Serialisation of 1000B+overhead at 100 Mb/s is ~82 µs; at the
	// remaining 50 Mb/s it is ~164 µs, plus a ρ/(1−ρ)=1 queue term of
	// another ~164 µs. Sanity-bound rather than bit-assert.
	if half < base+150*time.Microsecond {
		t.Fatalf("inflation too small: base=%v half=%v", base, half)
	}
	heavier := deliveryProbe(t, cfg, 90e6)
	if heavier <= half {
		t.Fatalf("90%% fluid load not slower than 50%%: %v vs %v", heavier, half)
	}
}

func TestFluidLoadFloorsPacketCapacity(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 100e6, Delay: time.Microsecond}
	sched := sim.NewScheduler()
	net := New(sched)
	a := &sinkNode{name: "a"}
	b := &sinkNode{name: "b"}
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, cfg)

	// Oversubscribed fluid tier: packets keep minEffectiveShare.
	l.SetFluidLoad(0, 500e6)
	if got, want := l.EffectiveBandwidth(0), 100e6*minEffectiveShare; got != want {
		t.Fatalf("EffectiveBandwidth = %v, want floor %v", got, want)
	}
	// Unbanded links stay unbanded under fluid accounting.
	l2 := net.Connect(a, 1, b, 1, LinkConfig{Delay: time.Microsecond})
	l2.SetFluidLoad(0, 1e9)
	if got := l2.EffectiveBandwidth(0); got != 0 {
		t.Fatalf("unbanded EffectiveBandwidth = %v, want 0", got)
	}
}

func TestFluidLoadAccessors(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a := &sinkNode{name: "a"}
	b := &sinkNode{name: "b"}
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 10e6})

	if l.Capacity() != 10e6 {
		t.Fatalf("Capacity = %v", l.Capacity())
	}
	l.SetFluidLoad(1, 3e6)
	if l.FluidLoad(1) != 3e6 || l.FluidLoad(0) != 0 {
		t.Fatalf("per-direction loads leaked: %v / %v", l.FluidLoad(0), l.FluidLoad(1))
	}
	l.SetFluidLoad(1, -5) // clamps
	if l.FluidLoad(1) != 0 {
		t.Fatalf("negative load not clamped: %v", l.FluidLoad(1))
	}

	// Ref exposes the (link, end) pair for path building.
	if ll, end := a.ports.Ref(0); ll != l || end != 0 {
		t.Fatalf("Ref(a,0) = %v end %d", ll.Name(), end)
	}
	if ll, end := b.ports.Ref(0); ll != l || end != 1 {
		t.Fatalf("Ref(b,0) = %v end %d", ll.Name(), end)
	}
}
