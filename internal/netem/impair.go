package netem

import (
	"fmt"
	"time"

	"netco/internal/packet"
)

// This file is the per-link impairment pipeline: the netem/pumba
// vocabulary (correlated loss, Gilbert-Elliott and 4-state Markov loss
// models, duplication, bit corruption, jitter-driven reordering) ported
// onto the emulator's links.
//
// An ImpairSpec is an ordered list of stage specs attached to a
// LinkConfig. Each link direction instantiates its own runtime pipeline
// from the spec, and each stage instance owns a splitmix64 PRNG seeded
// from (run seed, link creation index, direction, stage index) — never
// from the process-global link id, which differs between runs in one
// process. Decisions therefore depend only on the run's inputs and the
// per-direction packet order, both of which the serial and partitioned
// engines reproduce exactly, so impaired runs stay bit-identical at
// every worker and partition count.
//
// Stage order is spec order. Loss stages consume packets outright;
// corruption replaces the packet with a mutated clone (the pooled
// original is abandoned to the GC rather than recycled, since the
// sender may still hold the pointer); duplication appends an
// independent clone; reordering adds a per-packet extra propagation
// delay, which converts into reordered deliveries because later sends
// can draw smaller extras. Extra delays are always >= 0, so a
// cross-partition link's deliveries never land before the propagation
// delay that bounds the parallel engine's lookahead.

// splitmix64 constants (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators").
const (
	splitmixGamma = 0x9e3779b97f4a7c15
	splitmixMulA  = 0xbf58476d1ce4e5b9
	splitmixMulB  = 0x94d049bb133111eb
)

// mix64 is the splitmix64 output finalizer: a bijective avalanche over
// 64 bits, used both to derive stage seeds and to advance stage streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * splitmixMulA
	z = (z ^ (z >> 27)) * splitmixMulB
	return z ^ (z >> 31)
}

// impairRNG is a splitmix64 stream. Each stage instance owns one, so
// stages never share state across links, directions or stage positions.
type impairRNG struct{ state uint64 }

func (r *impairRNG) next() uint64 {
	r.state += splitmixGamma
	return mix64(r.state)
}

// float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *impairRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// stageSeed derives the PRNG seed of one stage instance from the run
// seed, the link's creation index within its Network (deterministic per
// run, unlike the process-global id), the direction and the stage
// position. Each input passes through the finalizer so adjacent indices
// land in unrelated streams.
func stageSeed(runSeed int64, linkIdx uint64, dir, stageIdx int) uint64 {
	h := mix64(uint64(runSeed) ^ splitmixGamma)
	h = mix64(h ^ linkIdx)
	h = mix64(h ^ uint64(dir)<<32)
	return mix64(h ^ uint64(stageIdx))
}

// ImpairSpec configures the impairment pipeline of a link: a shared,
// read-only recipe (safe to reference from any number of LinkConfigs)
// that each link direction expands into private runtime state at wire
// time.
type ImpairSpec struct {
	// Seed is the run seed the per-stage PRNG streams derive from.
	Seed int64
	// Stages apply in order to every transmission of the direction.
	Stages []StageSpec
}

// Validate rejects specs the pipeline cannot run.
func (s *ImpairSpec) Validate() error {
	if s == nil {
		return nil
	}
	for i, st := range s.Stages {
		if err := st.validate(); err != nil {
			return fmt.Errorf("netem: impairment stage %d: %w", i, err)
		}
	}
	return nil
}

// StageSpec configures one impairment stage. Implementations are the
// exported stage types in this file (Loss, LossGE, LossMarkov,
// Duplicate, Corrupt, Reorder).
type StageSpec interface {
	validate() error
	// build instantiates per-direction runtime state with its own PRNG.
	build(seed uint64) impairStage
}

// impairDelivery is one pending delivery of the pipeline: the packet
// plus the extra propagation delay accumulated so far.
type impairDelivery struct {
	pkt   *packet.Packet
	extra time.Duration
}

// impairStage is one per-direction stage instance. apply transforms the
// pending delivery list (drop, mutate, append, delay) and accounts its
// decisions in the direction's LinkStats.
type impairStage interface {
	apply(dl []impairDelivery, st *LinkStats) []impairDelivery
}

// impairPipeline is one direction's runtime pipeline. It is owned by
// the transmitting end's domain and reuses one scratch slice across
// packets, so steady-state application allocates nothing.
type impairPipeline struct {
	stages  []impairStage
	scratch []impairDelivery
}

// build expands the spec for one direction of one link.
func (s *ImpairSpec) build(linkIdx uint64, dir int) *impairPipeline {
	if s == nil || len(s.Stages) == 0 {
		return nil
	}
	p := &impairPipeline{
		stages:  make([]impairStage, len(s.Stages)),
		scratch: make([]impairDelivery, 0, 2),
	}
	for i, st := range s.Stages {
		p.stages[i] = st.build(stageSeed(s.Seed, linkIdx, dir, i))
	}
	return p
}

// apply runs one transmission through the pipeline. The returned slice
// is valid until the next apply on the same direction, which is safe:
// Send consumes it before returning, and each direction is driven from
// one domain.
func (p *impairPipeline) apply(pkt *packet.Packet, st *LinkStats) []impairDelivery {
	dl := append(p.scratch[:0], impairDelivery{pkt: pkt})
	for _, stage := range p.stages {
		dl = stage.apply(dl, st)
		if len(dl) == 0 {
			break
		}
	}
	p.scratch = dl[:0]
	return dl
}

// Loss drops packets with probability P. Corr is the netem-style loss
// correlation: with Corr > 0 a loss raises the next packet's loss
// probability to P + Corr·(1−P) and a delivery lowers it to P·(1−Corr),
// which keeps the stationary loss rate exactly P while clustering the
// losses. Corr = 0 is i.i.d. loss.
type Loss struct {
	P    float64
	Corr float64
}

func (l Loss) validate() error {
	if l.P < 0 || l.P > 1 {
		return fmt.Errorf("loss probability %g out of [0,1]", l.P)
	}
	if l.Corr < 0 || l.Corr >= 1 {
		return fmt.Errorf("loss correlation %g out of [0,1)", l.Corr)
	}
	return nil
}

func (l Loss) build(seed uint64) impairStage {
	return &lossStage{rng: impairRNG{state: seed}, p: l.P, corr: l.Corr}
}

type lossStage struct {
	rng      impairRNG
	p, corr  float64
	prevLost bool
}

func (s *lossStage) apply(dl []impairDelivery, st *LinkStats) []impairDelivery {
	out := dl[:0]
	for _, d := range dl {
		p := s.p * (1 - s.corr)
		if s.prevLost {
			p = s.p + s.corr*(1-s.p)
		}
		if s.rng.float64() < p {
			s.prevLost = true
			st.ImpairDrops++
			continue
		}
		s.prevLost = false
		out = append(out, d)
	}
	return out
}

// LossGE is the 2-state Gilbert-Elliott loss model (pumba's
// loss-gemodel): a good/bad Markov chain with per-state loss
// probabilities. PGoodBad is the good→bad transition probability per
// packet, PBadGood the bad→good one; LossBad and LossGood are the loss
// probabilities while in each state (classic Gilbert: LossBad = 1,
// LossGood = 0). The stationary loss rate is
//
//	πB·LossBad + (1−πB)·LossGood,  πB = PGoodBad/(PGoodBad+PBadGood),
//
// and with LossBad = 1 the mean loss-burst length is 1/PBadGood.
type LossGE struct {
	PGoodBad float64
	PBadGood float64
	LossBad  float64
	LossGood float64
}

func (l LossGE) validate() error {
	for _, v := range []float64{l.PGoodBad, l.PBadGood, l.LossBad, l.LossGood} {
		if v < 0 || v > 1 {
			return fmt.Errorf("gilbert-elliott parameter %g out of [0,1]", v)
		}
	}
	if l.PGoodBad > 0 && l.PBadGood == 0 {
		return fmt.Errorf("gilbert-elliott bad state is absorbing (p_bad_good = 0)")
	}
	return nil
}

func (l LossGE) build(seed uint64) impairStage {
	return &lossGEStage{rng: impairRNG{state: seed}, cfg: l}
}

type lossGEStage struct {
	rng impairRNG
	cfg LossGE
	bad bool
}

func (s *lossGEStage) apply(dl []impairDelivery, st *LinkStats) []impairDelivery {
	out := dl[:0]
	for _, d := range dl {
		// Transition first, then evaluate the new state's loss
		// probability: the chain's state always describes the packet
		// being decided.
		if s.bad {
			if s.rng.float64() < s.cfg.PBadGood {
				s.bad = false
			}
		} else if s.rng.float64() < s.cfg.PGoodBad {
			s.bad = true
		}
		p := s.cfg.LossGood
		if s.bad {
			p = s.cfg.LossBad
		}
		if p > 0 && s.rng.float64() < p {
			st.ImpairDrops++
			continue
		}
		out = append(out, d)
	}
	return out
}

// LossMarkov is the 4-state Markov loss model (netem's loss-state):
// state 1 delivers in a gap period, state 2 delivers inside a burst,
// state 3 loses inside a burst, state 4 loses one isolated packet in a
// gap and returns to state 1. The five parameters are the standard
// netem transition probabilities; every unlisted transition is the
// complementary self-loop.
type LossMarkov struct {
	P13 float64 // gap-delivery → burst-loss
	P31 float64 // burst-loss → gap-delivery
	P32 float64 // burst-loss → burst-delivery
	P23 float64 // burst-delivery → burst-loss
	P14 float64 // gap-delivery → isolated gap loss
}

func (l LossMarkov) validate() error {
	for _, v := range []float64{l.P13, l.P31, l.P32, l.P23, l.P14} {
		if v < 0 || v > 1 {
			return fmt.Errorf("markov parameter %g out of [0,1]", v)
		}
	}
	if l.P13+l.P14 > 1 {
		return fmt.Errorf("markov p13+p14 = %g exceeds 1", l.P13+l.P14)
	}
	if l.P31+l.P32 > 1 {
		return fmt.Errorf("markov p31+p32 = %g exceeds 1", l.P31+l.P32)
	}
	if l.P13 > 0 && l.P31+l.P32 == 0 {
		return fmt.Errorf("markov burst-loss state is absorbing (p31+p32 = 0)")
	}
	if l.P23 > 0 && l.P31 == 0 && l.P32 > 0 {
		return fmt.Errorf("markov burst states 2/3 cannot reach state 1 (p31 = 0)")
	}
	return nil
}

func (l LossMarkov) build(seed uint64) impairStage {
	return &lossMarkovStage{rng: impairRNG{state: seed}, cfg: l, state: 1}
}

type lossMarkovStage struct {
	rng   impairRNG
	cfg   LossMarkov
	state int
}

func (s *lossMarkovStage) apply(dl []impairDelivery, st *LinkStats) []impairDelivery {
	out := dl[:0]
	for _, d := range dl {
		// The current state decides this packet; the draw then moves
		// the chain for the next one. State 4 loses exactly one packet
		// and needs no draw: it always returns to the gap.
		lost := s.state == 3 || s.state == 4
		switch s.state {
		case 1:
			r := s.rng.float64()
			switch {
			case r < s.cfg.P13:
				s.state = 3
			case r < s.cfg.P13+s.cfg.P14:
				s.state = 4
			}
		case 2:
			if s.rng.float64() < s.cfg.P23 {
				s.state = 3
			}
		case 3:
			r := s.rng.float64()
			switch {
			case r < s.cfg.P31:
				s.state = 1
			case r < s.cfg.P31+s.cfg.P32:
				s.state = 2
			}
		case 4:
			s.state = 1
		}
		if lost {
			st.ImpairDrops++
			continue
		}
		out = append(out, d)
	}
	return out
}

// Duplicate delivers an extra copy of a packet with probability P. The
// copy is a deep clone, so the two deliveries never share mutable
// state, and it inherits the extra delay accumulated so far (stages
// after this one — reordering, typically — draw for each copy
// independently).
type Duplicate struct {
	P float64
}

func (d Duplicate) validate() error {
	if d.P < 0 || d.P > 1 {
		return fmt.Errorf("duplication probability %g out of [0,1]", d.P)
	}
	return nil
}

func (d Duplicate) build(seed uint64) impairStage {
	return &dupStage{rng: impairRNG{state: seed}, p: d.P}
}

type dupStage struct {
	rng impairRNG
	p   float64
}

func (s *dupStage) apply(dl []impairDelivery, st *LinkStats) []impairDelivery {
	n := len(dl)
	for i := 0; i < n; i++ {
		if s.rng.float64() < s.p {
			st.Duplicated++
			dl = append(dl, impairDelivery{pkt: dl[i].pkt.Clone(), extra: dl[i].extra})
		}
	}
	return dl
}

// Corrupt flips one random bit of a packet with probability P, modelling
// undetected line noise. The mutation targets the payload when there is
// one (the common case), falling back to the IP TOS byte and finally a
// source-MAC byte, so every frame shape has a corruptible bit. The
// corrupted frame replaces the original on the wire — the compare path
// sees genuinely different bytes — and carries Meta.Corrupted so
// receivers and tests can distinguish noise from adversarial
// modification. The replacement is a clone; the original (possibly
// pooled) packet is left to the GC, trading a little pool churn for the
// guarantee that a sender-retained pointer never observes the flip.
type Corrupt struct {
	P float64
}

func (c Corrupt) validate() error {
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("corruption probability %g out of [0,1]", c.P)
	}
	return nil
}

func (c Corrupt) build(seed uint64) impairStage {
	return &corruptStage{rng: impairRNG{state: seed}, p: c.P}
}

type corruptStage struct {
	rng impairRNG
	p   float64
}

func (s *corruptStage) apply(dl []impairDelivery, st *LinkStats) []impairDelivery {
	for i := range dl {
		if s.rng.float64() >= s.p {
			continue
		}
		st.Corrupted++
		q := dl[i].pkt.Clone()
		switch {
		case len(q.Payload) > 0:
			bit := s.rng.next() % uint64(len(q.Payload)*8)
			q.Payload[bit>>3] ^= 1 << (bit & 7)
		case q.IP != nil:
			q.IP.TOS ^= 1 << (s.rng.next() & 7)
		default:
			q.Eth.Src[5] ^= 1 << (s.rng.next() & 7)
		}
		q.Meta.Corrupted = true
		dl[i].pkt = q
	}
	return dl
}

// Reorder adds, with probability P, a uniform extra propagation delay in
// (0, Jitter] to a packet. A later packet drawing a smaller extra than
// its predecessor overtakes it in flight — the netem reorder model,
// expressed as delay so the serialisation order (and therefore the
// sender's queue accounting) is untouched. Deliveries that land before
// an already-scheduled one count in LinkStats.Reordered.
type Reorder struct {
	P      float64
	Jitter time.Duration
}

func (r Reorder) validate() error {
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("reorder probability %g out of [0,1]", r.P)
	}
	if r.Jitter <= 0 {
		return fmt.Errorf("reorder jitter %v must be positive", r.Jitter)
	}
	return nil
}

func (r Reorder) build(seed uint64) impairStage {
	return &reorderStage{rng: impairRNG{state: seed}, p: r.P, jitter: uint64(r.Jitter)}
}

type reorderStage struct {
	rng    impairRNG
	p      float64
	jitter uint64
}

func (s *reorderStage) apply(dl []impairDelivery, st *LinkStats) []impairDelivery {
	for i := range dl {
		if s.rng.float64() < s.p {
			dl[i].extra += time.Duration(1 + s.rng.next()%s.jitter)
		}
	}
	return dl
}
