package netem

import (
	"sync"
	"testing"
	"time"

	"netco/internal/sim"
)

// TestReserveLinksSlotLayout pins the LinkBatch contract the parallel
// topology builders depend on: slot s carries id base+s whatever order
// the slots are wired in, and the network's creation-order link list is
// the slot order — so same-instant tie-break bands are a function of
// the slot layout alone.
func TestReserveLinksSlotLayout(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	const n = 6
	nodes := make([]*collector, 2*n)
	for i := range nodes {
		nodes[i] = newCollector(sched, "n"+string(rune('a'+i)))
		net.Add(nodes[i])
	}
	batch := net.ReserveLinks(n)
	if batch.Len() != n {
		t.Fatalf("Len = %d", batch.Len())
	}
	// Wire the slots in reverse — the layout must not care.
	links := make([]*Link, n)
	for s := n - 1; s >= 0; s-- {
		links[s] = batch.Connect(s, nodes[2*s], 0, nodes[2*s+1], 0, LinkConfig{Bandwidth: 1e9})
	}
	all := net.Links()
	if len(all) != n {
		t.Fatalf("network has %d links, want %d", len(all), n)
	}
	for s := 0; s < n; s++ {
		if all[s] != links[s] {
			t.Fatalf("slot %d not at creation-order position %d", s, s)
		}
		if links[s].Index() != s {
			t.Fatalf("slot %d Index = %d", s, links[s].Index())
		}
		if links[s].id != links[0].id+uint64(s) {
			t.Fatalf("slot %d id %d not consecutive from base %d", s, links[s].id, links[0].id)
		}
	}
	// Batch-wired links carry traffic like Connect-wired ones.
	if !nodes[0].ports.Send(0, testPacket(100)) {
		t.Fatal("send over batch link rejected")
	}
	sched.Run()
	if len(nodes[1].got) != 1 {
		t.Fatal("packet not delivered over batch link")
	}
}

func TestReserveLinksDoubleWirePanics(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	batch := net.ReserveLinks(1)
	batch.Connect(0, a, 0, b, 0, LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("double-wiring a batch slot did not panic")
		}
	}()
	batch.Connect(0, a, 1, b, 1, LinkConfig{})
}

// TestReserveLinksInterleavesWithConnect checks ids and creation order
// stay coherent when plain Connects surround a reserved batch — the
// hybrid builder wires the fabric from a batch and the host links from
// another after it.
func TestReserveLinksInterleavesWithConnect(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	nodes := make([]*collector, 8)
	for i := range nodes {
		nodes[i] = newCollector(sched, "m"+string(rune('a'+i)))
		net.Add(nodes[i])
	}
	before := net.Connect(nodes[0], 0, nodes[1], 0, LinkConfig{})
	batch := net.ReserveLinks(2)
	batch.Connect(1, nodes[4], 0, nodes[5], 0, LinkConfig{})
	batch.Connect(0, nodes[2], 0, nodes[3], 0, LinkConfig{})
	after := net.Connect(nodes[6], 0, nodes[7], 0, LinkConfig{})
	ids := []uint64{before.id, net.Links()[1].id, net.Links()[2].id, after.id}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("ids not consecutive in creation order: %v", ids)
		}
	}
	if net.Links()[1].ends[0].recv != nodes[2] || net.Links()[2].ends[0].recv != nodes[4] {
		t.Fatal("batch slots out of creation-order positions")
	}
}

// TestPortsGrowConcurrentBind exercises the pattern wireParallel relies
// on: after Grow, Bind calls on distinct ports of one node are plain
// writes to disjoint slice elements and may run concurrently (the race
// detector enforces this in -race CI runs).
func TestPortsGrowConcurrentBind(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	hub := newCollector(sched, "hub")
	net.Add(hub)
	const n = 16
	peers := make([]*collector, n)
	for i := range peers {
		peers[i] = newCollector(sched, "p"+string(rune('a'+i)))
		net.Add(peers[i])
	}
	hub.ports.Grow(n)
	batch := net.ReserveLinks(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch.Connect(i, hub, i, peers[i], 0, LinkConfig{Bandwidth: 1e9, Delay: time.Microsecond})
		}(i)
	}
	wg.Wait()
	if hub.ports.Count() != n {
		t.Fatalf("bound %d ports, want %d", hub.ports.Count(), n)
	}
	for i := 0; i < n; i++ {
		l, end := hub.ports.Ref(i)
		if l == nil || l.Index() != i || end != 0 {
			t.Fatalf("port %d bound to link %v end %d", i, l, end)
		}
	}
}

// TestPortsEachAscending pins Each's iteration contract (ascending port
// index) — the region builder's BFS discovery order, and with it the
// region digest, depends on it.
func TestPortsEachAscending(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a := newCollector(sched, "a")
	net.Add(a)
	peers := []*collector{newCollector(sched, "x"), newCollector(sched, "y"), newCollector(sched, "z")}
	for _, p := range peers {
		net.Add(p)
	}
	// Bind out of order.
	net.Connect(a, 5, peers[0], 0, LinkConfig{})
	net.Connect(a, 1, peers[1], 0, LinkConfig{})
	net.Connect(a, 3, peers[2], 0, LinkConfig{})
	var idxs []int
	var seen []string
	a.ports.Each(func(idx int, l *Link, end int) {
		idxs = append(idxs, idx)
		peer, _ := l.Peer(end)
		seen = append(seen, peer.Name())
	})
	if len(idxs) != 3 || idxs[0] != 1 || idxs[1] != 3 || idxs[2] != 5 {
		t.Fatalf("Each order = %v, want ascending [1 3 5]", idxs)
	}
	if seen[0] != "y" || seen[1] != "z" || seen[2] != "x" {
		t.Fatalf("Each peers = %v", seen)
	}
}
