package netem

import (
	"reflect"
	"testing"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/sim/par"
)

// buildPongPair wires two collectors that bounce a packet back and forth
// `bounces` times over one link. With parts=0 both live on one serial
// scheduler; otherwise each gets its own partition joined by a boundary.
func buildPongPair(parts int, bounces int) (run func(), arrivals func() ([]time.Duration, []time.Duration)) {
	var net *Network
	var eng *par.Engine
	if parts == 0 {
		net = New(sim.NewScheduler())
	} else {
		eng = par.New(2, 2)
		net = NewPartitioned(eng.Schedulers(),
			func(name string) int {
				if name == "a" {
					return 0
				}
				return 1
			},
			func(src, dst int) CrossPost { return eng.Boundary(src, dst) })
	}
	a := newCollector(net.SchedulerFor("a"), "a")
	b := newCollector(net.SchedulerFor("b"), "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Microsecond})

	left := bounces
	a.onRx = func(port int, pkt *packet.Packet) {
		if left > 0 {
			left--
			a.ports.Send(0, pkt.Clone())
		}
	}
	b.onRx = func(port int, pkt *packet.Packet) {
		if left > 0 {
			left--
			b.ports.Send(0, pkt.Clone())
		}
	}

	run = func() {
		a.sched.At(0, func() { a.ports.Send(0, testPacket(200)) })
		if eng != nil {
			eng.SetLookahead(net.MinCrossDelay())
			eng.RunUntil(100 * time.Millisecond)
		} else {
			net.Sched.RunUntil(100 * time.Millisecond)
		}
	}
	arrivals = func() ([]time.Duration, []time.Duration) { return a.at, b.at }
	return run, arrivals
}

func TestPartitionedLinkMatchesSerial(t *testing.T) {
	const bounces = 20
	sr, sa := buildPongPair(0, bounces)
	sr()
	sAt, sBt := sa()
	if len(sBt) == 0 {
		t.Fatal("serial reference delivered nothing")
	}

	pr, pa := buildPongPair(2, bounces)
	pr()
	pAt, pBt := pa()
	if !reflect.DeepEqual(sAt, pAt) || !reflect.DeepEqual(sBt, pBt) {
		t.Fatalf("partitioned arrival timelines diverge from serial:\n a: %v vs %v\n b: %v vs %v",
			sAt, pAt, sBt, pBt)
	}
}

func TestZeroDelayCrossPartitionLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Connect should panic on a zero-delay cross-partition link")
		}
	}()
	eng := par.New(2, 1)
	net := NewPartitioned(eng.Schedulers(),
		func(name string) int {
			if name == "a" {
				return 0
			}
			return 1
		},
		func(src, dst int) CrossPost { return eng.Boundary(src, dst) })
	a := newCollector(net.SchedulerFor("a"), "a")
	b := newCollector(net.SchedulerFor("b"), "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, LinkConfig{Bandwidth: 100e6}) // Delay == 0
}
