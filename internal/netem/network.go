package netem

import (
	"fmt"
	"sort"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// Node is a network element that owns a set of numbered ports. All switch,
// host, hub and compare implementations satisfy it.
type Node interface {
	Receiver
	// Ports returns the node's port table, used by Connect to bind links.
	Ports() *Ports
}

// Ports is the port table a Node embeds (as a named field) to send packets
// out of numbered ports. The zero value is ready to use.
type Ports struct {
	byIdx map[int]portRef
}

type portRef struct {
	link *Link
	end  int
}

// Bind associates local port idx with one end of a link. Bind panics on
// double-binding, which is always a topology-construction bug.
func (ps *Ports) Bind(idx int, l *Link, end int) {
	if ps.byIdx == nil {
		ps.byIdx = make(map[int]portRef)
	}
	if _, dup := ps.byIdx[idx]; dup {
		panic(fmt.Sprintf("netem: port %d bound twice", idx))
	}
	ps.byIdx[idx] = portRef{link: l, end: end}
}

// Send transmits pkt out of local port idx. It reports whether the packet
// was accepted by the link (false on tail drop, link down, or unbound
// port).
func (ps *Ports) Send(idx int, pkt *packet.Packet) bool {
	ref, ok := ps.byIdx[idx]
	if !ok {
		return false
	}
	return ref.link.Send(ref.end, pkt)
}

// Link returns the link bound to port idx, or nil.
func (ps *Ports) Link(idx int) *Link {
	return ps.byIdx[idx].link
}

// Ref returns the link bound to port idx together with the local end
// (the end this node transmits from) — the (link, direction) pair the
// fluid tier's path builder needs. The link is nil for unbound ports.
func (ps *Ports) Ref(idx int) (*Link, int) {
	ref := ps.byIdx[idx]
	return ref.link, ref.end
}

// Count returns the number of bound ports.
func (ps *Ports) Count() int { return len(ps.byIdx) }

// List returns the bound port indices in ascending order.
func (ps *Ports) List() []int {
	out := make([]int, 0, len(ps.byIdx))
	for idx := range ps.byIdx {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Network owns a simulation's nodes and links and provides topology
// assembly helpers.
type Network struct {
	// Sched is the single scheduler of a serial network. It is nil in a
	// partitioned network — builders must place every node with
	// SchedulerFor, and a stray use of Sched fails fast instead of
	// silently scheduling into the wrong domain.
	Sched *sim.Scheduler

	nodes map[string]Node
	links []*Link

	// Partitioned-mode wiring (nil/zero in serial networks).
	scheds   []*sim.Scheduler
	assign   func(name string) int
	cross    func(src, dst int) CrossPost
	minCross time.Duration
}

// New creates an empty network on the given scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{Sched: sched, nodes: make(map[string]Node)}
}

// NewPartitioned creates a network split across the given domain
// schedulers. assign maps a node name to its domain (it must be total
// over the names the builder uses and pure — Connect calls it per
// endpoint); cross returns the boundary for src→dst handoffs, normally
// (*par.Engine).Boundary. Cross-partition links must have a positive
// Delay: it is the causality bound the epoch barrier relies on, and
// Connect panics on a zero-delay cut.
func NewPartitioned(scheds []*sim.Scheduler, assign func(name string) int, cross func(src, dst int) CrossPost) *Network {
	if len(scheds) == 0 {
		panic("netem: partitioned network needs at least one scheduler")
	}
	return &Network{
		nodes:  make(map[string]Node),
		scheds: scheds,
		assign: assign,
		cross:  cross,
	}
}

// Partitioned reports whether the network was built with NewPartitioned.
func (n *Network) Partitioned() bool { return n.scheds != nil }

// DomainOf returns the partition a node name is assigned to (0 for a
// serial network).
func (n *Network) DomainOf(name string) int {
	if n.scheds == nil {
		return 0
	}
	d := n.assign(name)
	if d < 0 || d >= len(n.scheds) {
		panic(fmt.Sprintf("netem: node %q assigned to domain %d of %d", name, d, len(n.scheds)))
	}
	return d
}

// SchedulerFor returns the scheduler a node with the given name must be
// built on: the domain's scheduler in a partitioned network, Sched
// otherwise.
func (n *Network) SchedulerFor(name string) *sim.Scheduler {
	if n.scheds == nil {
		return n.Sched
	}
	return n.scheds[n.DomainOf(name)]
}

// MinCrossDelay returns the smallest propagation delay over all
// cross-partition links created so far — the engine's lookahead bound.
// It is zero when no link crosses a partition.
func (n *Network) MinCrossDelay() time.Duration { return n.minCross }

// Add registers a node. It panics on duplicate names — a topology bug.
func (n *Network) Add(node Node) {
	if _, dup := n.nodes[node.Name()]; dup {
		panic(fmt.Sprintf("netem: node %q added twice", node.Name()))
	}
	n.nodes[node.Name()] = node
}

// NodeByName returns a registered node, or nil.
func (n *Network) NodeByName(name string) Node { return n.nodes[name] }

// Links returns all links created through Connect, in creation order.
func (n *Network) Links() []*Link { return n.links }

// Connect creates a duplex link between a's port aPort and b's port bPort
// and binds both ends.
func (n *Network) Connect(a Node, aPort int, b Node, bPort int, cfg LinkConfig) *Link {
	name := fmt.Sprintf("%s:%d<->%s:%d", a.Name(), aPort, b.Name(), bPort)
	l := NewLink(n.SchedulerFor(a.Name()), name, cfg)
	if n.scheds != nil {
		da, db := n.DomainOf(a.Name()), n.DomainOf(b.Name())
		l.scheds[0] = n.scheds[da]
		l.scheds[1] = n.scheds[db]
		if da != db {
			if cfg.Delay <= 0 {
				panic(fmt.Sprintf("netem: cross-partition link %s has zero delay; no lookahead bound", name))
			}
			l.cross[0] = n.cross(da, db)
			l.cross[1] = n.cross(db, da)
			if n.minCross == 0 || cfg.Delay < n.minCross {
				n.minCross = cfg.Delay
			}
		}
	}
	l.Attach(0, a, aPort)
	l.Attach(1, b, bPort)
	a.Ports().Bind(aPort, l, 0)
	b.Ports().Bind(bPort, l, 1)
	n.links = append(n.links, l)
	return l
}
