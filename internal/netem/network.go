package netem

import (
	"fmt"
	"sort"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// Node is a network element that owns a set of numbered ports. All switch,
// host, hub and compare implementations satisfy it.
type Node interface {
	Receiver
	// Ports returns the node's port table, used by Connect to bind links.
	Ports() *Ports
}

// Ports is the port table a Node embeds (as a named field) to send packets
// out of numbered ports. The zero value is ready to use.
//
// Port indices produced by topology construction are small and dense
// (0..arity), so the table is a slice indexed by port; a map catches
// negative or absurdly large indices (hand-crafted test harnesses only).
// At fat-tree scale this removes one map allocation and hash per node
// and per packet hop.
type Ports struct {
	dense  []portRef
	sparse map[int]portRef
}

type portRef struct {
	link *Link
	end  int
}

// maxDensePort bounds the dense port slice; topology builders never
// exceed it.
const maxDensePort = 4096

// Grow pre-sizes the dense table to hold ports 0..n-1. Calling it before
// concurrent wiring (ReserveLinks batches) is what makes distinct-port
// Bind calls on the same node race-free: each bind then writes its own
// element and never reallocates the slice.
func (ps *Ports) Grow(n int) {
	if n > maxDensePort {
		n = maxDensePort
	}
	if n > len(ps.dense) {
		grown := make([]portRef, n)
		copy(grown, ps.dense)
		ps.dense = grown
	}
}

// Bind associates local port idx with one end of a link. Bind panics on
// double-binding, which is always a topology-construction bug.
func (ps *Ports) Bind(idx int, l *Link, end int) {
	if idx < 0 || idx >= maxDensePort {
		if ps.sparse == nil {
			ps.sparse = make(map[int]portRef)
		}
		if _, dup := ps.sparse[idx]; dup {
			panic(fmt.Sprintf("netem: port %d bound twice", idx))
		}
		ps.sparse[idx] = portRef{link: l, end: end}
		return
	}
	if idx >= len(ps.dense) {
		ps.Grow(idx + 1)
	}
	if ps.dense[idx].link != nil {
		panic(fmt.Sprintf("netem: port %d bound twice", idx))
	}
	ps.dense[idx] = portRef{link: l, end: end}
}

// Send transmits pkt out of local port idx. It reports whether the packet
// was accepted by the link (false on tail drop, link down, or unbound
// port).
func (ps *Ports) Send(idx int, pkt *packet.Packet) bool {
	ref := ps.ref(idx)
	if ref.link == nil {
		return false
	}
	return ref.link.Send(ref.end, pkt)
}

func (ps *Ports) ref(idx int) portRef {
	if idx >= 0 && idx < len(ps.dense) {
		return ps.dense[idx]
	}
	return ps.sparse[idx]
}

// Link returns the link bound to port idx, or nil.
func (ps *Ports) Link(idx int) *Link {
	return ps.ref(idx).link
}

// Ref returns the link bound to port idx together with the local end
// (the end this node transmits from) — the (link, direction) pair the
// fluid tier's path builder needs. The link is nil for unbound ports.
func (ps *Ports) Ref(idx int) (*Link, int) {
	ref := ps.ref(idx)
	return ref.link, ref.end
}

// Count returns the number of bound ports.
func (ps *Ports) Count() int {
	n := len(ps.sparse)
	for i := range ps.dense {
		if ps.dense[i].link != nil {
			n++
		}
	}
	return n
}

// List returns the bound port indices in ascending order.
func (ps *Ports) List() []int {
	out := make([]int, 0, len(ps.dense)+len(ps.sparse))
	for idx := range ps.sparse {
		out = append(out, idx)
	}
	for i := range ps.dense {
		if ps.dense[i].link != nil {
			out = append(out, i)
		}
	}
	if len(ps.sparse) > 0 {
		sort.Ints(out)
	}
	return out
}

// Each calls fn for every bound port in ascending index order, without
// allocating. Region BFS and other topology walks use it in place of
// List on hot paths.
func (ps *Ports) Each(fn func(idx int, l *Link, end int)) {
	if len(ps.sparse) == 0 {
		for i := range ps.dense {
			if ps.dense[i].link != nil {
				fn(i, ps.dense[i].link, ps.dense[i].end)
			}
		}
		return
	}
	for _, idx := range ps.List() {
		ref := ps.ref(idx)
		fn(idx, ref.link, ref.end)
	}
}

// Network owns a simulation's nodes and links and provides topology
// assembly helpers.
type Network struct {
	// Sched is the single scheduler of a serial network. It is nil in a
	// partitioned network — builders must place every node with
	// SchedulerFor, and a stray use of Sched fails fast instead of
	// silently scheduling into the wrong domain.
	Sched *sim.Scheduler

	nodes map[string]Node
	links []*Link

	// arena is the slab the network's links are allocated from: fixed
	// chunks, so pointers into a chunk stay valid forever and topology
	// build does one allocation per linkArenaChunk links instead of one
	// per link.
	arena     []Link
	arenaUsed int

	// Partitioned-mode wiring (nil/zero in serial networks).
	scheds   []*sim.Scheduler
	assign   func(name string) int
	cross    func(src, dst int) CrossPost
	minCross time.Duration
}

// linkArenaChunk is the slab size for link allocation.
const linkArenaChunk = 4096

// allocLinks returns n contiguous zero links from the arena (one fresh
// chunk if the current one cannot fit them).
func (n *Network) allocLinks(count int) []Link {
	if count > linkArenaChunk {
		return make([]Link, count)
	}
	if n.arenaUsed+count > len(n.arena) {
		n.arena = make([]Link, linkArenaChunk)
		n.arenaUsed = 0
	}
	out := n.arena[n.arenaUsed : n.arenaUsed+count]
	n.arenaUsed += count
	return out
}

// New creates an empty network on the given scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{Sched: sched, nodes: make(map[string]Node)}
}

// NewPartitioned creates a network split across the given domain
// schedulers. assign maps a node name to its domain (it must be total
// over the names the builder uses and pure — Connect calls it per
// endpoint); cross returns the boundary for src→dst handoffs, normally
// (*par.Engine).Boundary. Cross-partition links must have a positive
// Delay: it is the causality bound the epoch barrier relies on, and
// Connect panics on a zero-delay cut.
func NewPartitioned(scheds []*sim.Scheduler, assign func(name string) int, cross func(src, dst int) CrossPost) *Network {
	if len(scheds) == 0 {
		panic("netem: partitioned network needs at least one scheduler")
	}
	return &Network{
		nodes:  make(map[string]Node),
		scheds: scheds,
		assign: assign,
		cross:  cross,
	}
}

// Partitioned reports whether the network was built with NewPartitioned.
func (n *Network) Partitioned() bool { return n.scheds != nil }

// DomainOf returns the partition a node name is assigned to (0 for a
// serial network).
func (n *Network) DomainOf(name string) int {
	if n.scheds == nil {
		return 0
	}
	d := n.assign(name)
	if d < 0 || d >= len(n.scheds) {
		panic(fmt.Sprintf("netem: node %q assigned to domain %d of %d", name, d, len(n.scheds)))
	}
	return d
}

// SchedulerFor returns the scheduler a node with the given name must be
// built on: the domain's scheduler in a partitioned network, Sched
// otherwise.
func (n *Network) SchedulerFor(name string) *sim.Scheduler {
	if n.scheds == nil {
		return n.Sched
	}
	return n.scheds[n.DomainOf(name)]
}

// MinCrossDelay returns the smallest propagation delay over all
// cross-partition links created so far — the engine's lookahead bound.
// It is zero when no link crosses a partition.
func (n *Network) MinCrossDelay() time.Duration { return n.minCross }

// Add registers a node. It panics on duplicate names — a topology bug.
func (n *Network) Add(node Node) {
	if _, dup := n.nodes[node.Name()]; dup {
		panic(fmt.Sprintf("netem: node %q added twice", node.Name()))
	}
	n.nodes[node.Name()] = node
}

// NodeByName returns a registered node, or nil.
func (n *Network) NodeByName(name string) Node { return n.nodes[name] }

// Links returns all links created through Connect, in creation order.
func (n *Network) Links() []*Link { return n.links }

// Connect creates a duplex link between a's port aPort and b's port bPort
// and binds both ends.
func (n *Network) Connect(a Node, aPort int, b Node, bPort int, cfg LinkConfig) *Link {
	l := &n.allocLinks(1)[0]
	l.init(n.SchedulerFor(a.Name()), "", linkIDs.Add(1), cfg)
	l.denseIdx = len(n.links)
	n.links = append(n.links, l)
	n.wire(l, a, aPort, b, bPort, cfg)
	return l
}

// wire binds both ends of an initialised link and applies partitioned-
// mode scheduler/boundary assignment.
func (n *Network) wire(l *Link, a Node, aPort int, b Node, bPort int, cfg LinkConfig) {
	// The impairment pipelines seed from denseIdx, which both Connect
	// paths (direct and batch) have finalised by now.
	l.buildImpairments()
	if n.scheds != nil {
		da, db := n.DomainOf(a.Name()), n.DomainOf(b.Name())
		l.scheds[0] = n.scheds[da]
		l.scheds[1] = n.scheds[db]
		if da != db {
			if cfg.Delay <= 0 {
				panic(fmt.Sprintf("netem: cross-partition link %s:%d<->%s:%d has zero delay; no lookahead bound",
					a.Name(), aPort, b.Name(), bPort))
			}
			l.cross[0] = n.cross(da, db)
			l.cross[1] = n.cross(db, da)
			if n.minCross == 0 || cfg.Delay < n.minCross {
				n.minCross = cfg.Delay
			}
		}
	}
	l.Attach(0, a, aPort)
	l.Attach(1, b, bPort)
	a.Ports().Bind(aPort, l, 0)
	b.Ports().Bind(bPort, l, 1)
}

// LinkBatch is a contiguous block of links reserved up front so wiring
// can proceed concurrently with deterministic link ids: slot s always
// carries id base+s, whatever goroutine fills it. The PR 5 same-instant
// tie-break bands (link-id order == creation order) are therefore a
// function of the slot layout alone, which builders define to match the
// serial wiring order exactly.
type LinkBatch struct {
	net   *Network
	links []*Link
}

// ReserveLinks preallocates count links with consecutive ids and
// registers them (in slot order) in the network's link list. Fill every
// slot with Connect before the simulation starts; reservation itself is
// serial-only.
func (n *Network) ReserveLinks(count int) *LinkBatch {
	slab := n.allocLinks(count)
	base := linkIDs.Add(uint64(count)) - uint64(count)
	b := &LinkBatch{net: n, links: make([]*Link, count)}
	for i := range slab {
		l := &slab[i]
		l.id = base + uint64(i) + 1
		l.denseIdx = len(n.links)
		n.links = append(n.links, l)
		b.links[i] = l
	}
	return b
}

// Len returns the number of reserved slots.
func (b *LinkBatch) Len() int { return len(b.links) }

// Connect wires slot into a duplex link like Network.Connect. Distinct
// slots may be wired from distinct goroutines, provided no two
// goroutines touch the same node's port table without pre-growing it
// (Ports.Grow) and every slot is filled before events run.
func (b *LinkBatch) Connect(slot int, a Node, aPort int, bn Node, bPort int, cfg LinkConfig) *Link {
	l := b.links[slot]
	if l.scheds[0] != nil {
		panic(fmt.Sprintf("netem: batch slot %d wired twice", slot))
	}
	sched := b.net.SchedulerFor(a.Name())
	l.scheds = [2]*sim.Scheduler{sched, sched}
	l.cfg = cfg
	b.net.wire(l, a, aPort, bn, bPort, cfg)
	return l
}
