package netem

import (
	"fmt"
	"sort"

	"netco/internal/packet"
	"netco/internal/sim"
)

// Node is a network element that owns a set of numbered ports. All switch,
// host, hub and compare implementations satisfy it.
type Node interface {
	Receiver
	// Ports returns the node's port table, used by Connect to bind links.
	Ports() *Ports
}

// Ports is the port table a Node embeds (as a named field) to send packets
// out of numbered ports. The zero value is ready to use.
type Ports struct {
	byIdx map[int]portRef
}

type portRef struct {
	link *Link
	end  int
}

// Bind associates local port idx with one end of a link. Bind panics on
// double-binding, which is always a topology-construction bug.
func (ps *Ports) Bind(idx int, l *Link, end int) {
	if ps.byIdx == nil {
		ps.byIdx = make(map[int]portRef)
	}
	if _, dup := ps.byIdx[idx]; dup {
		panic(fmt.Sprintf("netem: port %d bound twice", idx))
	}
	ps.byIdx[idx] = portRef{link: l, end: end}
}

// Send transmits pkt out of local port idx. It reports whether the packet
// was accepted by the link (false on tail drop, link down, or unbound
// port).
func (ps *Ports) Send(idx int, pkt *packet.Packet) bool {
	ref, ok := ps.byIdx[idx]
	if !ok {
		return false
	}
	return ref.link.Send(ref.end, pkt)
}

// Link returns the link bound to port idx, or nil.
func (ps *Ports) Link(idx int) *Link {
	return ps.byIdx[idx].link
}

// Count returns the number of bound ports.
func (ps *Ports) Count() int { return len(ps.byIdx) }

// List returns the bound port indices in ascending order.
func (ps *Ports) List() []int {
	out := make([]int, 0, len(ps.byIdx))
	for idx := range ps.byIdx {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Network owns a simulation's nodes and links and provides topology
// assembly helpers.
type Network struct {
	Sched *sim.Scheduler

	nodes map[string]Node
	links []*Link
}

// New creates an empty network on the given scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{Sched: sched, nodes: make(map[string]Node)}
}

// Add registers a node. It panics on duplicate names — a topology bug.
func (n *Network) Add(node Node) {
	if _, dup := n.nodes[node.Name()]; dup {
		panic(fmt.Sprintf("netem: node %q added twice", node.Name()))
	}
	n.nodes[node.Name()] = node
}

// NodeByName returns a registered node, or nil.
func (n *Network) NodeByName(name string) Node { return n.nodes[name] }

// Links returns all links created through Connect, in creation order.
func (n *Network) Links() []*Link { return n.links }

// Connect creates a duplex link between a's port aPort and b's port bPort
// and binds both ends.
func (n *Network) Connect(a Node, aPort int, b Node, bPort int, cfg LinkConfig) *Link {
	name := fmt.Sprintf("%s:%d<->%s:%d", a.Name(), aPort, b.Name(), bPort)
	l := NewLink(n.Sched, name, cfg)
	l.Attach(0, a, aPort)
	l.Attach(1, b, bPort)
	a.Ports().Bind(aPort, l, 0)
	b.Ports().Bind(bPort, l, 1)
	n.links = append(n.links, l)
	return l
}
