package netem

import (
	"time"

	"netco/internal/sim"
)

// ProcStats counts work handled by a Proc.
type ProcStats struct {
	Processed uint64
	Dropped   uint64
}

// Proc models a packet-processing resource with a fixed per-item cost and a
// bounded input queue: a switch pipeline, a host's receive stack, or the
// compare element's CPU. Items are served in FIFO order; an item submitted
// while the queue is full is dropped.
//
// Proc is the mechanism behind several of the paper's observations: the
// compare's per-copy cost bounds Central3/Central5 throughput, and the
// destination host's ingest capacity is what makes Dup5 slower than Dup3
// ("packets spend more time buffered on ... the destination host", §V-B).
type Proc struct {
	sched *sim.Scheduler

	// PerItem is the service time per submitted item. Zero means the
	// Proc is infinitely fast.
	perItem time.Duration
	// queueLimit bounds the number of items waiting or in service;
	// zero means unbounded.
	queueLimit int

	// hysteresis, when set, makes overflow sticky: once the queue
	// fills, everything is dropped until it drains to half capacity —
	// the burst-drop behaviour of a NIC ring serviced by a polling
	// driver. Burst drops are what correlate the losses of a packet's k
	// combiner copies at an overloaded destination host.
	hysteresis bool
	dropping   bool

	busyUntil time.Duration
	queued    int
	stats     ProcStats
	paused    time.Duration
}

// NewProc returns a processing resource. perItem is the service time per
// item (zero = infinitely fast); queueLimit bounds the queue (zero =
// unbounded).
func NewProc(sched *sim.Scheduler, perItem time.Duration, queueLimit int) *Proc {
	return &Proc{sched: sched, perItem: perItem, queueLimit: queueLimit}
}

// Stats returns the counters so far.
func (p *Proc) Stats() ProcStats { return p.stats }

// Backlog returns the number of items waiting or in service.
func (p *Proc) Backlog() int { return p.queued }

// Stall makes the resource unavailable for d beyond its current horizon.
// The compare element uses this to model cache-cleanup pauses, the
// mechanism behind the paper's jitter result (Fig. 8).
func (p *Proc) Stall(d time.Duration) {
	now := p.sched.Now()
	if p.busyUntil < now {
		p.busyUntil = now
	}
	p.busyUntil += d
	p.paused += d
}

// Submit enqueues work that runs fn after the item reaches the head of the
// queue and is serviced. It reports whether the item was accepted.
func (p *Proc) Submit(fn func()) bool {
	return p.SubmitCost(p.perItem, fn)
}

// SetHysteresis enables ring-buffer-style overflow: after the queue
// fills, all submissions are dropped until it drains below half capacity.
func (p *Proc) SetHysteresis(on bool) { p.hysteresis = on }

// SubmitCost is Submit with an explicit service time for this item,
// overriding the default. Used for size-dependent costs.
func (p *Proc) SubmitCost(cost time.Duration, fn func()) bool {
	if p.queueLimit > 0 {
		if p.queued >= p.queueLimit {
			p.dropping = p.hysteresis
			p.stats.Dropped++
			return false
		}
		if p.dropping {
			if p.queued > p.queueLimit/2 {
				p.stats.Dropped++
				return false
			}
			p.dropping = false
		}
	}
	now := p.sched.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	finish := start + cost
	p.busyUntil = finish
	p.queued++
	p.sched.At(finish, func() {
		p.queued--
		p.stats.Processed++
		fn()
	})
	return true
}
