package netem

import (
	"time"

	"netco/internal/sim"
)

// ProcStats counts work handled by a Proc.
type ProcStats struct {
	Processed uint64
	Dropped   uint64
}

// Proc models a packet-processing resource with a fixed per-item cost and a
// bounded input queue: a switch pipeline, a host's receive stack, or the
// compare element's CPU. Items are served in FIFO order; an item submitted
// while the queue is full is dropped.
//
// Proc is the mechanism behind several of the paper's observations: the
// compare's per-copy cost bounds Central3/Central5 throughput, and the
// destination host's ingest capacity is what makes Dup5 slower than Dup3
// ("packets spend more time buffered on ... the destination host", §V-B).
type Proc struct {
	sched *sim.Scheduler

	// PerItem is the service time per submitted item. Zero means the
	// Proc is infinitely fast.
	perItem time.Duration
	// queueLimit bounds the number of items waiting or in service;
	// zero means unbounded.
	queueLimit int

	// hysteresis, when set, makes overflow sticky: once the queue
	// fills, everything is dropped until it drains to half capacity —
	// the burst-drop behaviour of a NIC ring serviced by a polling
	// driver. Burst drops are what correlate the losses of a packet's k
	// combiner copies at an overloaded destination host.
	hysteresis bool
	dropping   bool

	busyUntil time.Duration
	queued    int
	stats     ProcStats
	paused    time.Duration

	// gen is bumped by Reset; completion events stamped with an older
	// generation are no-ops, which is how a crash discards work that was
	// queued or in service when it hit.
	gen uint32

	// freeCalls recycles SubmitArgs call records.
	freeCalls *procCall
}

// NewProc returns a processing resource. perItem is the service time per
// item (zero = infinitely fast); queueLimit bounds the queue (zero =
// unbounded).
func NewProc(sched *sim.Scheduler, perItem time.Duration, queueLimit int) *Proc {
	return &Proc{sched: sched, perItem: perItem, queueLimit: queueLimit}
}

// Stats returns the counters so far.
func (p *Proc) Stats() ProcStats { return p.stats }

// Backlog returns the number of items waiting or in service.
func (p *Proc) Backlog() int { return p.queued }

// Stall makes the resource unavailable for d beyond its current horizon.
// The compare element uses this to model cache-cleanup pauses, the
// mechanism behind the paper's jitter result (Fig. 8).
func (p *Proc) Stall(d time.Duration) {
	now := p.sched.Now()
	if p.busyUntil < now {
		p.busyUntil = now
	}
	p.busyUntil += d
	p.paused += d
}

// Submit enqueues work that runs fn after the item reaches the head of the
// queue and is serviced. It reports whether the item was accepted.
func (p *Proc) Submit(fn func()) bool {
	return p.SubmitCost(p.perItem, fn)
}

// Reset models a cold restart of the resource: every item waiting or in
// service is discarded (its completion callback never runs), the overflow
// latch clears, and the resource is idle from now on. Counters survive —
// they are observations, not state.
func (p *Proc) Reset() {
	p.gen++
	p.queued = 0
	p.dropping = false
	p.busyUntil = p.sched.Now()
}

// SetHysteresis enables ring-buffer-style overflow: after the queue
// fills, all submissions are dropped until it drains below half capacity.
func (p *Proc) SetHysteresis(on bool) { p.hysteresis = on }

// SubmitCost is Submit with an explicit service time for this item,
// overriding the default. Used for size-dependent costs.
func (p *Proc) SubmitCost(cost time.Duration, fn func()) bool {
	finish, ok := p.admit(cost)
	if !ok {
		return false
	}
	p.sched.AtCall(finish, procRun, p, fn, int(p.gen))
	return true
}

// SubmitArgs is the allocation-free form of Submit: instead of a fresh
// closure per item, the callback receives its state through the scheduler's
// inline argument slots. a0 and a1 should be pointer-shaped; n is carried
// inline. The per-copy paths of the edge and compare nodes use this so the
// steady state submits work with zero heap allocations.
func (p *Proc) SubmitArgs(fn sim.CallFunc, a0, a1 any, n int) bool {
	return p.SubmitArgsCost(p.perItem, fn, a0, a1, n)
}

// SubmitArgsCost is SubmitArgs with an explicit service time.
func (p *Proc) SubmitArgsCost(cost time.Duration, fn sim.CallFunc, a0, a1 any, n int) bool {
	finish, ok := p.admit(cost)
	if !ok {
		return false
	}
	c := p.freeCalls
	if c != nil {
		p.freeCalls = c.next
	} else {
		c = &procCall{}
	}
	c.fn, c.a0, c.a1 = fn, a0, a1
	c.gen = p.gen
	p.sched.AtCall(finish, procRunArgs, p, c, n)
	return true
}

// admit applies the queue policy and, on acceptance, books the service
// interval, returning the completion time.
func (p *Proc) admit(cost time.Duration) (time.Duration, bool) {
	if p.queueLimit > 0 {
		if p.queued >= p.queueLimit {
			p.dropping = p.hysteresis
			p.stats.Dropped++
			return 0, false
		}
		if p.dropping {
			if p.queued > p.queueLimit/2 {
				p.stats.Dropped++
				return 0, false
			}
			p.dropping = false
		}
	}
	start := p.sched.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	finish := start + cost
	p.busyUntil = finish
	p.queued++
	return finish, true
}

func procRun(a0, a1 any, n int) {
	p := a0.(*Proc)
	if uint32(n) != p.gen {
		return // submitted before a Reset: the work died with the crash
	}
	p.queued--
	p.stats.Processed++
	a1.(func())()
}

// procCall carries one SubmitArgs item's callback and arguments; instances
// are pooled on the owning Proc (a call is in flight from submission until
// its event fires, so the pool's steady state is the queue's high-water
// mark).
type procCall struct {
	fn     sim.CallFunc
	a0, a1 any
	gen    uint32
	next   *procCall
}

func procRunArgs(a0, a1 any, n int) {
	p := a0.(*Proc)
	c := a1.(*procCall)
	stale := c.gen != p.gen
	fn, ca0, ca1 := c.fn, c.a0, c.a1
	c.fn, c.a0, c.a1 = nil, nil, nil
	c.next = p.freeCalls
	p.freeCalls = c
	if stale {
		return // submitted before a Reset: the work died with the crash
	}
	p.queued--
	p.stats.Processed++
	fn(ca0, ca1, n)
}
