package netem

import (
	"testing"
	"time"

	"netco/internal/sim"
)

func TestProcHysteresisBurstDrops(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 10*time.Microsecond, 8)
	p.SetHysteresis(true)

	// Fill the queue completely.
	accepted := 0
	for i := 0; i < 8; i++ {
		if p.Submit(func() {}) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Fatalf("accepted %d of 8 into an empty queue", accepted)
	}
	// Overflow trips the drop state.
	if p.Submit(func() {}) {
		t.Fatal("9th submission accepted into a full queue")
	}
	// Drain one slot: without hysteresis this would be accepted; with
	// it the proc keeps dropping until half empty.
	sched.Step() // one service completes
	if p.Submit(func() {}) {
		t.Fatal("submission accepted while still draining above low water")
	}
	// Drain to half (4 left): submissions resume.
	for p.Backlog() > 4 {
		sched.Step()
	}
	if !p.Submit(func() {}) {
		t.Fatal("submission rejected after draining to the low-water mark")
	}
}

func TestProcNoHysteresisAcceptsImmediately(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 10*time.Microsecond, 8)
	for i := 0; i < 8; i++ {
		p.Submit(func() {})
	}
	if p.Submit(func() {}) {
		t.Fatal("overflow accepted")
	}
	sched.Step()
	if !p.Submit(func() {}) {
		t.Fatal("plain tail-drop queue rejected a submission after one drain")
	}
}

// TestProcHysteresisCorrelatesDrops is the combiner-relevant property:
// when k copies of each item arrive back-to-back under overload, whole
// groups are dropped or kept together, rather than one copy of each.
func TestProcHysteresisCorrelatesDrops(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewProc(sched, 15*time.Microsecond, 64)
	p.SetHysteresis(true)

	const k = 3
	const groups = 2000
	kept := make([]int, groups)
	// Offered: one group of 3 copies every 25 µs (120 kcopies/s) vs
	// ~66 kcopies/s service: heavy overload.
	for g := 0; g < groups; g++ {
		g := g
		sched.At(time.Duration(g)*25*time.Microsecond, func() {
			for c := 0; c < k; c++ {
				if p.Submit(func() {}) {
					kept[g]++
				}
			}
		})
	}
	sched.Run()

	full, partial, lost := 0, 0, 0
	for _, n := range kept {
		switch n {
		case k:
			full++
		case 0:
			lost++
		default:
			partial++
		}
	}
	if full == 0 || lost == 0 {
		t.Fatalf("expected both surviving and lost groups; full=%d partial=%d lost=%d", full, partial, lost)
	}
	// The point of hysteresis: partially-delivered groups are the rare
	// boundary cases, not the norm.
	if partial > (full+lost)/4 {
		t.Fatalf("drops not correlated: full=%d partial=%d lost=%d", full, partial, lost)
	}
}
