package netem

import (
	"math"
	"reflect"
	"testing"
	"time"

	"netco/internal/sim"
	"netco/internal/sim/par"
)

// The statistical validation suite: every impairment stage is checked
// against its analytic model at >= 3 parameter points. All runs use
// fixed seeds, so the empirical rates — and therefore pass/fail — are
// deterministic; the concentration bounds below (Hoeffding-style, ~5-6
// standard errors plus a small absolute slack) say how close a correct
// implementation must land, so a transposed parameter, an off-by-one in
// a chain transition, or a biased PRNG fails loudly rather than
// flakily.

// impairRun is one observed run of an impaired a→b link.
type impairRun struct {
	uids      []uint64 // arrival order (uid = send index)
	at        []time.Duration
	corrupted []bool
	payloads  [][]byte
	stats     LinkStats
}

// runImpaired drives n sequence-stamped packets, spaced `spacing` apart,
// across one a→b link with the given config and returns everything the
// receiver saw. Meta.UID carries the send index (it survives cloning
// and corruption, unlike payload bytes).
func runImpaired(n int, spacing time.Duration, cfg LinkConfig) impairRun {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, cfg)
	for i := 0; i < n; i++ {
		i := i
		sched.At(time.Duration(i)*spacing, func() {
			p := testPacket(100)
			p.Meta.UID = uint64(i)
			a.ports.Send(0, p)
		})
	}
	sched.Run()

	res := impairRun{stats: l.Stats(0)}
	for k, p := range b.got {
		res.uids = append(res.uids, p.Meta.UID)
		res.at = append(res.at, b.at[k])
		res.corrupted = append(res.corrupted, p.Meta.Corrupted)
		res.payloads = append(res.payloads, p.Payload)
	}
	return res
}

// lossPattern reconstructs the per-send lost/delivered sequence from
// arrival uids.
func lossPattern(n int, uids []uint64) []bool {
	lost := make([]bool, n)
	for i := range lost {
		lost[i] = true
	}
	for _, u := range uids {
		lost[u] = false
	}
	return lost
}

func countLost(lost []bool) int {
	c := 0
	for _, l := range lost {
		if l {
			c++
		}
	}
	return c
}

// bernoulliTol is the concentration half-width for an empirical rate of
// n i.i.d. Bernoulli(p) trials: five standard errors plus a 3/n
// absolute term so p near 0 keeps a meaningful band.
func bernoulliTol(p float64, n int) float64 {
	return 5*math.Sqrt(p*(1-p)/float64(n)) + 3/float64(n)
}

func checkRate(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: empirical rate %.5f outside %.5f ± %.5f", what, got, want, tol)
	}
}

const statN = 20000

func impairCfg(seed int64, stages ...StageSpec) LinkConfig {
	return LinkConfig{Impairments: &ImpairSpec{Seed: seed, Stages: stages}}
}

func TestImpairLossIID(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3} {
		res := runImpaired(statN, time.Microsecond, impairCfg(11, Loss{P: p}))
		lostN := statN - len(res.uids)
		checkRate(t, "iid loss", float64(lostN)/statN, p, bernoulliTol(p, statN))
		if got := res.stats.ImpairDrops; got != uint64(lostN) {
			t.Errorf("p=%g: ImpairDrops = %d, want %d (missing arrivals)", p, got, lostN)
		}
		// Impairment loss is wire loss, not backpressure: TxPackets counts
		// only the frames that actually serialised, Drops stays zero.
		if got := res.stats.TxPackets; got != uint64(len(res.uids)) {
			t.Errorf("p=%g: TxPackets = %d, want %d", p, got, len(res.uids))
		}
		if res.stats.Drops != 0 {
			t.Errorf("p=%g: Drops = %d, want 0", p, res.stats.Drops)
		}
	}
}

func TestImpairLossCorrelated(t *testing.T) {
	const p = 0.1
	for _, corr := range []float64{0.25, 0.5, 0.9} {
		res := runImpaired(statN, time.Microsecond, impairCfg(13, Loss{P: p, Corr: corr}))
		lost := lossPattern(statN, res.uids)

		// The stationary loss rate is exactly P regardless of correlation.
		checkRate(t, "correlated loss stationary", float64(countLost(lost))/statN, p,
			2*bernoulliTol(p, statN)) // correlation inflates the variance

		// The conditional structure is the model: P(loss | prev lost) =
		// p + corr·(1−p), P(loss | prev ok) = p·(1−corr).
		var afterLost, lostAfterLost, afterOK, lostAfterOK int
		for i := 1; i < statN; i++ {
			if lost[i-1] {
				afterLost++
				if lost[i] {
					lostAfterLost++
				}
			} else {
				afterOK++
				if lost[i] {
					lostAfterOK++
				}
			}
		}
		pLL := p + corr*(1-p)
		checkRate(t, "P(loss|prev lost)", float64(lostAfterLost)/float64(afterLost),
			pLL, bernoulliTol(pLL, afterLost))
		pLO := p * (1 - corr)
		checkRate(t, "P(loss|prev ok)", float64(lostAfterOK)/float64(afterOK),
			pLO, bernoulliTol(pLO, afterOK))
	}
}

func TestImpairLossGE(t *testing.T) {
	cases := []struct {
		ge LossGE
	}{
		{LossGE{PGoodBad: 0.01, PBadGood: 0.25, LossBad: 1}},
		{LossGE{PGoodBad: 0.05, PBadGood: 0.5, LossBad: 1}},
		{LossGE{PGoodBad: 0.02, PBadGood: 0.2, LossBad: 0.8, LossGood: 0.005}},
	}
	for _, tc := range cases {
		ge := tc.ge
		res := runImpaired(statN, time.Microsecond, impairCfg(17, ge))
		lost := lossPattern(statN, res.uids)

		piB := ge.PGoodBad / (ge.PGoodBad + ge.PBadGood)
		want := piB*ge.LossBad + (1-piB)*ge.LossGood
		// The chain decorrelates at rate pGB+pBG, so the effective sample
		// size shrinks accordingly; six (inflated) standard errors.
		nEff := statN * (ge.PGoodBad + ge.PBadGood) / 2
		tol := 6*math.Sqrt(want*(1-want)/nEff) + 3.0/statN
		checkRate(t, "gilbert-elliott loss", float64(countLost(lost))/statN, want, tol)

		if ge.LossBad == 1 && ge.LossGood == 0 {
			// Classic Gilbert: a loss burst is exactly a bad-state sojourn,
			// geometric with mean 1/PBadGood.
			var bursts, inBurst int
			var total float64
			for _, l := range lost {
				if l {
					inBurst++
				} else if inBurst > 0 {
					bursts++
					total += float64(inBurst)
					inBurst = 0
				}
			}
			wantMean := 1 / ge.PBadGood
			// Geometric variance (1−r)/r² over `bursts` samples.
			sd := math.Sqrt((1 - ge.PBadGood) / (ge.PBadGood * ge.PBadGood) / float64(bursts))
			if got := total / float64(bursts); math.Abs(got-wantMean) > 6*sd {
				t.Errorf("GE %+v: mean burst length %.3f outside %.3f ± %.3f (%d bursts)",
					ge, got, wantMean, 6*sd, bursts)
			}
		}
	}
}

// markovStationary computes the stationary distribution of the 4-state
// loss-state chain by power iteration — the analytic reference the
// empirical rate is checked against.
func markovStationary(m LossMarkov) [4]float64 {
	// Row-stochastic transition matrix, states 1..4 at indices 0..3.
	T := [4][4]float64{
		{1 - m.P13 - m.P14, 0, m.P13, m.P14},
		{0, 1 - m.P23, m.P23, 0},
		{m.P31, m.P32, 1 - m.P31 - m.P32, 0},
		{1, 0, 0, 0},
	}
	pi := [4]float64{1, 0, 0, 0}
	for it := 0; it < 100000; it++ {
		var next [4]float64
		for i := range pi {
			for j := range next {
				next[j] += pi[i] * T[i][j]
			}
		}
		pi = next
	}
	return pi
}

func TestImpairLossMarkov(t *testing.T) {
	cases := []LossMarkov{
		{P13: 0.05, P31: 0.3, P32: 0.1, P23: 0.2, P14: 0.01},
		{P13: 0.1, P31: 0.5, P14: 0.05},
		{P13: 0.02, P31: 0.2, P32: 0.3, P23: 0.4},
	}
	for _, m := range cases {
		res := runImpaired(statN, time.Microsecond, impairCfg(19, m))
		pi := markovStationary(m)
		want := pi[2] + pi[3] // states 3 and 4 lose
		// Conservative effective sample size for the chain's mixing.
		tol := 6*math.Sqrt(want*(1-want)/(statN/10.0)) + 3.0/statN
		got := float64(statN-len(res.uids)) / statN
		checkRate(t, "markov loss-state", got, want, tol)
	}
}

func TestImpairDuplicate(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.2} {
		res := runImpaired(statN, time.Microsecond, impairCfg(23, Duplicate{P: p}))
		extra := len(res.uids) - statN
		if extra < 0 {
			t.Fatalf("p=%g: lost packets under pure duplication", p)
		}
		checkRate(t, "duplication", float64(extra)/statN, p, bernoulliTol(p, statN))
		if res.stats.Duplicated != uint64(extra) {
			t.Errorf("p=%g: Duplicated = %d, want %d", p, res.stats.Duplicated, extra)
		}
		// Every uid arrives once or twice, never more (one Duplicate stage).
		seen := map[uint64]int{}
		for _, u := range res.uids {
			seen[u]++
		}
		for u, c := range seen {
			if c > 2 {
				t.Fatalf("p=%g: uid %d delivered %d times", p, u, c)
			}
		}
		if len(seen) != statN {
			t.Errorf("p=%g: %d distinct uids, want %d", p, len(seen), statN)
		}
	}
}

func TestImpairCorrupt(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.15} {
		res := runImpaired(statN, time.Microsecond, impairCfg(29, Corrupt{P: p}))
		if len(res.uids) != statN {
			t.Fatalf("p=%g: corruption changed delivery count: %d", p, len(res.uids))
		}
		var corrupted int
		for i, c := range res.corrupted {
			// testPacket payloads are all-zero, so a flipped bit is exactly
			// one nonzero byte — the compare path genuinely sees different
			// bytes, and only on flagged packets.
			nz := 0
			for _, b := range res.payloads[i] {
				if b != 0 {
					nz++
				}
			}
			if c {
				corrupted++
				if nz != 1 {
					t.Fatalf("p=%g: corrupted packet has %d nonzero payload bytes, want 1", p, nz)
				}
			} else if nz != 0 {
				t.Fatalf("p=%g: unflagged packet has mutated payload", p)
			}
		}
		checkRate(t, "corruption", float64(corrupted)/statN, p, bernoulliTol(p, statN))
		if res.stats.Corrupted != uint64(corrupted) {
			t.Errorf("p=%g: Corrupted = %d, want %d", p, res.stats.Corrupted, corrupted)
		}
	}
}

func TestImpairReorder(t *testing.T) {
	const spacing = 10 * time.Microsecond
	cases := []struct {
		r    Reorder
		want float64 // adjacent-inversion probability
	}{
		// P=1: inversion iff extra_i − extra_{i+1} > S, probability
		// ((J−S)/J)²/2 for uniform extras.
		{Reorder{P: 1, Jitter: 50 * time.Microsecond}, 0.32},
		{Reorder{P: 1, Jitter: 20 * time.Microsecond}, 0.125},
		// P=0.5, J=100µs: 0.25·((J−S)/J)²/2 + 0.25·P(extra > S) = 0.326.
		{Reorder{P: 0.5, Jitter: 100 * time.Microsecond}, 0.326},
	}
	for _, tc := range cases {
		res := runImpaired(statN, spacing, impairCfg(31, tc.r))
		if len(res.uids) != statN {
			t.Fatalf("reorder lost packets: %d", len(res.uids))
		}
		// arrival[uid] = delivery instant; all uids present.
		arrival := make([]time.Duration, statN)
		for k, u := range res.uids {
			arrival[u] = res.at[k]
		}
		var inversions int
		for i := 0; i+1 < statN; i++ {
			if arrival[i+1] < arrival[i] {
				inversions++
			}
		}
		// Adjacent inversions share a draw, so widen the i.i.d. bound.
		checkRate(t, "adjacent inversion", float64(inversions)/float64(statN-1),
			tc.want, 2*bernoulliTol(tc.want, statN-1))

		// Mean extra delay is P·J/2 (the uniform draw's mean, applied with
		// probability P).
		var meanExtra float64
		for i := range arrival {
			meanExtra += float64(arrival[i] - time.Duration(i)*spacing)
		}
		meanExtra /= statN
		wantExtra := tc.r.P * float64(tc.r.Jitter) / 2
		if math.Abs(meanExtra-wantExtra) > 0.02*float64(tc.r.Jitter) {
			t.Errorf("reorder %+v: mean extra %.0fns, want %.0fns", tc.r, meanExtra, wantExtra)
		}

		// The Reordered counter is exactly the number of deliveries
		// scheduled earlier than the latest already-scheduled delivery.
		var wantReordered uint64
		var maxAt time.Duration
		for i := range arrival {
			if arrival[i] < maxAt {
				wantReordered++
			} else {
				maxAt = arrival[i]
			}
		}
		if res.stats.Reordered != wantReordered {
			t.Errorf("reorder %+v: Reordered = %d, want %d", tc.r, res.stats.Reordered, wantReordered)
		}
	}
}

// TestImpairPipelineComposed checks counters stay disjoint and coherent
// when every stage kind runs in one pipeline.
func TestImpairPipelineComposed(t *testing.T) {
	cfg := impairCfg(37,
		Loss{P: 0.05, Corr: 0.3},
		LossGE{PGoodBad: 0.01, PBadGood: 0.3, LossBad: 1},
		Corrupt{P: 0.02},
		Duplicate{P: 0.05},
		Reorder{P: 0.3, Jitter: 40 * time.Microsecond},
	)
	res := runImpaired(statN, 10*time.Microsecond, cfg)
	s := res.stats
	if got := uint64(len(res.uids)); got != statN-s.ImpairDrops+s.Duplicated {
		t.Fatalf("arrivals %d != sent %d - lost %d + duplicated %d",
			got, statN, s.ImpairDrops, s.Duplicated)
	}
	if s.TxPackets != uint64(len(res.uids)) {
		t.Fatalf("TxPackets %d != deliveries %d", s.TxPackets, len(res.uids))
	}
	if s.Corrupted == 0 || s.Duplicated == 0 || s.ImpairDrops == 0 || s.Reordered == 0 {
		t.Fatalf("composed pipeline left a counter at zero: %+v", s)
	}
	if s.Drops != 0 || s.InFlightDrops != 0 {
		t.Fatalf("composed pipeline leaked into backpressure counters: %+v", s)
	}
}

func TestImpairDeterministicAcrossRuns(t *testing.T) {
	cfg := impairCfg(41,
		LossGE{PGoodBad: 0.02, PBadGood: 0.3, LossBad: 1},
		Duplicate{P: 0.05},
		Reorder{P: 0.5, Jitter: 30 * time.Microsecond},
	)
	a := runImpaired(5000, 10*time.Microsecond, cfg)
	b := runImpaired(5000, 10*time.Microsecond, cfg)
	if !reflect.DeepEqual(a.uids, b.uids) || !reflect.DeepEqual(a.at, b.at) {
		t.Fatal("identical configs produced different delivery sequences")
	}
	if a.stats != b.stats {
		t.Fatalf("identical configs produced different stats: %+v vs %+v", a.stats, b.stats)
	}

	// A different run seed must shift the decisions...
	cfg2 := cfg
	cfg2.Impairments = &ImpairSpec{Seed: 42, Stages: cfg.Impairments.Stages}
	c := runImpaired(5000, 10*time.Microsecond, cfg2)
	if reflect.DeepEqual(a.uids, c.uids) && reflect.DeepEqual(a.at, c.at) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestImpairDirectionsIndependent checks the two directions of one link
// draw from unrelated streams: the same traffic pattern sees different
// loss patterns per direction.
func TestImpairDirectionsIndependent(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, b, 0, impairCfg(43, Loss{P: 0.3}))
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		sched.At(time.Duration(i)*time.Microsecond, func() {
			pa := testPacket(100)
			pa.Meta.UID = uint64(i)
			a.ports.Send(0, pa)
			pb := testPacket(100)
			pb.Meta.UID = uint64(i)
			b.ports.Send(0, pb)
		})
	}
	sched.Run()
	gotA := make([]uint64, 0, len(b.got))
	for _, p := range b.got {
		gotA = append(gotA, p.Meta.UID)
	}
	gotB := make([]uint64, 0, len(a.got))
	for _, p := range a.got {
		gotB = append(gotB, p.Meta.UID)
	}
	if reflect.DeepEqual(gotA, gotB) {
		t.Fatal("a→b and b→a loss patterns identical: directions share a stream")
	}
}

func TestImpairSpecValidate(t *testing.T) {
	bad := []*ImpairSpec{
		{Stages: []StageSpec{Loss{P: 1.5}}},
		{Stages: []StageSpec{Loss{P: 0.1, Corr: 1}}},
		{Stages: []StageSpec{LossGE{PGoodBad: 0.1}}}, // absorbing bad state
		{Stages: []StageSpec{LossMarkov{P13: 0.8, P14: 0.3}}},
		{Stages: []StageSpec{LossMarkov{P13: 0.1}}}, // absorbing state 3
		{Stages: []StageSpec{Duplicate{P: -0.1}}},
		{Stages: []StageSpec{Corrupt{P: 2}}},
		{Stages: []StageSpec{Reorder{P: 0.5}}}, // zero jitter
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: Validate accepted invalid stage %#v", i, s.Stages[0])
		}
	}
	good := &ImpairSpec{Stages: []StageSpec{
		Loss{P: 0.1, Corr: 0.5},
		LossGE{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 1},
		LossMarkov{P13: 0.05, P31: 0.3, P32: 0.1, P23: 0.2, P14: 0.01},
		Duplicate{P: 0.1}, Corrupt{P: 0.05},
		Reorder{P: 0.3, Jitter: time.Millisecond},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected valid spec: %v", err)
	}
}

// buildImpairFlap wires an impaired a→b link whose GE burst machine is
// interrupted by an administrative flap mid-run (the impairment × chaos
// interaction): parts=0 is the serial reference, otherwise a partitioned
// engine with that many domains (a in the first, b in the last).
func buildImpairFlap(parts int) (run func(), result func() (impairRun, LinkStats)) {
	spec := &ImpairSpec{Seed: 47, Stages: []StageSpec{
		LossGE{PGoodBad: 0.08, PBadGood: 0.15, LossBad: 1},
		Reorder{P: 0.4, Jitter: 30 * time.Microsecond},
	}}
	cfg := LinkConfig{
		Bandwidth: 100e6, Delay: 50 * time.Microsecond,
		DropInFlight: true, Impairments: spec,
	}

	var net *Network
	var eng *par.Engine
	if parts == 0 {
		net = New(sim.NewScheduler())
	} else {
		eng = par.New(parts, 2)
		net = NewPartitioned(eng.Schedulers(),
			func(name string) int {
				if name == "a" {
					return 0
				}
				return parts - 1
			},
			func(src, dst int) CrossPost { return eng.Boundary(src, dst) })
	}
	a := newCollector(net.SchedulerFor("a"), "a")
	b := newCollector(net.SchedulerFor("b"), "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, cfg)

	const n = 600
	const spacing = 20 * time.Microsecond
	for i := 0; i < n; i++ {
		i := i
		a.sched.At(time.Duration(i)*spacing, func() {
			p := testPacket(100)
			p.Meta.UID = uint64(i)
			a.ports.Send(0, p)
		})
	}
	// Flap squarely inside the send train: the GE chain must not consume
	// draws while the link is down (Send refuses before the pipeline
	// runs), so after heal it resumes from the exact pre-flap state in
	// every engine.
	l.ScheduleDown(4*time.Millisecond, true)
	l.ScheduleDown(7*time.Millisecond, false)

	run = func() {
		if eng != nil {
			eng.SetLookahead(net.MinCrossDelay())
			eng.RunUntil(50 * time.Millisecond)
		} else {
			net.Sched.RunUntil(50 * time.Millisecond)
		}
	}
	result = func() (impairRun, LinkStats) {
		var r impairRun
		for k, p := range b.got {
			r.uids = append(r.uids, p.Meta.UID)
			r.at = append(r.at, b.at[k])
		}
		return r, l.Stats(0)
	}
	return run, result
}

// TestImpairChaosFlapResume is the impairment × chaos regression: a link
// flapping mid-GE-burst must drop its down-window traffic to Drops (not
// the loss model), then resume the loss-state machine deterministically —
// bit-identical across the serial engine and partitioned runs at 2 and 4
// domains.
func TestImpairChaosFlapResume(t *testing.T) {
	sRun, sRes := buildImpairFlap(0)
	sRun()
	ref, refStats := sRes()
	if len(ref.uids) == 0 {
		t.Fatal("serial reference delivered nothing")
	}
	if refStats.Drops == 0 {
		t.Fatal("flap window dropped nothing: down toggle did not land mid-run")
	}
	if refStats.ImpairDrops == 0 {
		t.Fatal("GE stage lost nothing: impairment inactive")
	}

	for _, parts := range []int{2, 4} {
		pRun, pRes := buildImpairFlap(parts)
		pRun()
		got, gotStats := pRes()
		if !reflect.DeepEqual(ref.uids, got.uids) || !reflect.DeepEqual(ref.at, got.at) {
			t.Fatalf("parts=%d: delivery timeline diverges from serial (%d vs %d arrivals)",
				parts, len(got.uids), len(ref.uids))
		}
		if refStats != gotStats {
			t.Fatalf("parts=%d: stats diverge: serial %+v vs partitioned %+v",
				parts, refStats, gotStats)
		}
	}
}
