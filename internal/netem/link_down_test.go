package netem

import (
	"fmt"
	"testing"
	"time"

	"netco/internal/sim"
	"netco/internal/sim/par"
)

// TestLinkScheduleDownFlap drives a deterministic down/up schedule on a
// serial link and checks the gate: sends inside the down window tail-drop
// at the transmitter, sends outside it deliver.
func TestLinkScheduleDownFlap(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, LinkConfig{Delay: time.Microsecond})

	l.ScheduleDown(10*time.Microsecond, true)
	l.ScheduleDown(20*time.Microsecond, false)

	// One send every 4 µs from t=0: sends at 12 and 16 µs fall in the down
	// window; 0, 4, 8 (before) and 20, 24 (after — the up toggle is an
	// ordinary event, sorted before same-instant deliveries) pass.
	for i := 0; i < 7; i++ {
		at := time.Duration(i) * 4 * time.Microsecond
		sched.At(at, func() { a.ports.Send(0, testPacket(10)) })
	}
	sched.Run()

	if len(b.got) != 5 {
		t.Fatalf("delivered %d, want 5 (two sends inside the down window dropped)", len(b.got))
	}
	if drops := l.Stats(0).Drops; drops != 2 {
		t.Fatalf("Drops = %d, want 2", drops)
	}
	if l.Down(0) || l.Down(1) {
		t.Fatal("link should be back up at both ends")
	}
}

// TestLinkDropInFlight pins both in-flight semantics: by default a packet
// already propagating when the link goes down still arrives (digest
// compatibility); with DropInFlight it is discarded at the receiving end
// and counted in InFlightDrops.
func TestLinkDropInFlight(t *testing.T) {
	for _, drop := range []bool{false, true} {
		t.Run(fmt.Sprintf("dropInFlight=%v", drop), func(t *testing.T) {
			sched := sim.NewScheduler()
			net := New(sched)
			a, b := newCollector(sched, "a"), newCollector(sched, "b")
			net.Add(a)
			net.Add(b)
			l := net.Connect(a, 0, b, 0, LinkConfig{Delay: 100 * time.Microsecond, DropInFlight: drop})

			// Sent at t=0, arrives at t=100µs; the link goes down at 50µs,
			// mid-propagation, and heals at 200µs.
			a.ports.Send(0, testPacket(10))
			l.ScheduleDown(50*time.Microsecond, true)
			l.ScheduleDown(200*time.Microsecond, false)
			sched.Run()

			wantDelivered, wantInFlight := 1, uint64(0)
			if drop {
				wantDelivered, wantInFlight = 0, 1
			}
			if len(b.got) != wantDelivered {
				t.Fatalf("delivered %d, want %d", len(b.got), wantDelivered)
			}
			s := l.Stats(0)
			if s.InFlightDrops != wantInFlight {
				t.Fatalf("InFlightDrops = %d, want %d", s.InFlightDrops, wantInFlight)
			}
			if s.Drops != 0 {
				t.Fatalf("Drops = %d, want 0 (send was accepted)", s.Drops)
			}
			if s.TxPackets != 1 {
				t.Fatalf("TxPackets = %d, want 1", s.TxPackets)
			}
		})
	}
}

// TestLinkDropInFlightBoundaryInstant pins the tie-break at the toggle
// instant: ordinary events sort before same-deadline channel events, so a
// DropInFlight link going down at exactly a packet's arrival time drops
// it, and one coming up at exactly an arrival time delivers it.
func TestLinkDropInFlightBoundaryInstant(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	a, b := newCollector(sched, "a"), newCollector(sched, "b")
	net.Add(a)
	net.Add(b)
	l := net.Connect(a, 0, b, 0, LinkConfig{Delay: 10 * time.Microsecond, DropInFlight: true})

	a.ports.Send(0, testPacket(10))           // arrives at exactly 10 µs
	l.ScheduleDown(10*time.Microsecond, true) // down lands first at 10 µs
	sched.Run()
	if len(b.got) != 0 {
		t.Fatal("packet arriving at the down instant should be dropped")
	}

	l.ScheduleDown(sched.Now()+5*time.Microsecond, false)
	sched.Run()
	if !a.ports.Send(0, testPacket(10)) {
		t.Fatal("send rejected after heal")
	}
	sched.Run()
	if len(b.got) != 1 {
		t.Fatal("packet after heal should deliver")
	}
}

// TestLinkScheduleDownPartitionedRace is the -race regression for the
// SetDown data race: a cross-partition link flapping on a timed schedule
// while both domains transmit through it concurrently. Run at partition
// counts 2 and 4 and checked bit-identical to the serial run.
func TestLinkScheduleDownPartitionedRace(t *testing.T) {
	type obs struct {
		aGot, bGot   int
		aStats       LinkStats
		lastA, lastB time.Duration
	}

	build := func(partitions int) obs {
		var scheds []*sim.Scheduler
		var netw *Network
		var eng *par.Engine
		if partitions <= 1 {
			s := sim.NewScheduler()
			scheds = []*sim.Scheduler{s}
			netw = New(s)
		} else {
			eng = par.New(partitions, partitions)
			scheds = eng.Schedulers()
			assign := func(name string) int {
				if name == "a" {
					return 0
				}
				return partitions - 1
			}
			netw = NewPartitioned(scheds, assign, func(src, dst int) CrossPost {
				return eng.Boundary(src, dst)
			})
		}
		a := newCollector(netw.SchedulerFor("a"), "a")
		b := newCollector(netw.SchedulerFor("b"), "b")
		netw.Add(a)
		netw.Add(b)
		l := netw.Connect(a, 0, b, 0, LinkConfig{Delay: 20 * time.Microsecond, DropInFlight: true})

		// Flap: down every 200 µs for 100 µs, five cycles.
		for c := 0; c < 5; c++ {
			base := time.Duration(c) * 200 * time.Microsecond
			l.ScheduleDown(base+100*time.Microsecond, true)
			l.ScheduleDown(base+200*time.Microsecond, false)
		}
		// Both ends transmit every 7 µs for the whole window — all armed at
		// setup on each sender's own scheduler, the thread-ownership rule.
		sa, sb := netw.SchedulerFor("a"), netw.SchedulerFor("b")
		for at := time.Duration(0); at < time.Millisecond; at += 7 * time.Microsecond {
			sa.At(at, func() { a.ports.Send(0, testPacket(64)) })
			sb.At(at, func() { b.ports.Send(0, testPacket(64)) })
		}

		if eng != nil {
			eng.SetLookahead(netw.MinCrossDelay())
			eng.RunUntil(2 * time.Millisecond)
		} else {
			scheds[0].RunUntil(2 * time.Millisecond)
		}
		o := obs{aGot: len(a.got), bGot: len(b.got), aStats: l.Stats(0)}
		if n := len(a.at); n > 0 {
			o.lastA = a.at[n-1]
		}
		if n := len(b.at); n > 0 {
			o.lastB = b.at[n-1]
		}
		return o
	}

	serial := build(1)
	if serial.aStats.Drops == 0 || serial.aStats.InFlightDrops == 0 {
		t.Fatalf("flap schedule produced no drops (stats %+v) — test is vacuous", serial.aStats)
	}
	if serial.aGot == 0 || serial.bGot == 0 {
		t.Fatal("no traffic delivered — test is vacuous")
	}
	for _, partitions := range []int{2, 4} {
		if got := build(partitions); got != serial {
			t.Fatalf("partitions=%d diverged from serial: %+v vs %+v", partitions, got, serial)
		}
	}
}
