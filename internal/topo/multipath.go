package topo

import (
	"fmt"
	"time"

	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/switching"
)

// MultipathParams parameterises the §VII virtualized-combiner network:
// two trusted virtual edges joined by k disjoint paths of untrusted
// switches (alternating "vendors" in the naming, to mirror Fig. 9's
// black/grey devices).
type MultipathParams struct {
	// Paths is k (2 for detection, 3 for prevention).
	Paths int
	// HopsPerPath is the number of untrusted switches on each path.
	HopsPerPath int
	// Link is used for all path links; EdgeLink for host↔edge.
	Link     netem.LinkConfig
	EdgeLink netem.LinkConfig
	// SwitchProcDelay and SwitchProcQueue configure the path switches.
	SwitchProcDelay time.Duration
	SwitchProcQueue int
	// Edge configures the two virtual edges (Paths is forced).
	Edge core.VirtualEdgeConfig
	// Compromise optionally returns a behavior for the switch at
	// (path, hop).
	Compromise func(path, hop int) switching.Behavior
}

// Multipath is an assembled §VII network.
type Multipath struct {
	// Left and Right are the trusted virtual edges.
	Left, Right *core.VirtualEdge
	// Paths holds the untrusted switches, [path][hop], hop 0 adjacent
	// to Left.
	Paths [][]*switching.Switch
}

// Close stops both edges' sweeps.
func (m *Multipath) Close() {
	m.Left.Close()
	m.Right.Close()
}

// Route installs MAC forwarding for dst toward the given side on every
// path switch and registers the release route on the far edge.
func (m *Multipath) Route(dst packet.MAC, side core.Side) {
	out := uint16(0) // toward Left
	if side == core.SideRight {
		out = 1 // toward Right
	}
	for _, path := range m.Paths {
		for _, sw := range path {
			sw.Table().Add(&openflow.FlowEntry{
				Priority: 100,
				Match:    openflow.MatchAll().WithDlDst(dst),
				Actions:  []openflow.Action{openflow.Output(out)},
			})
		}
	}
	if side == core.SideRight {
		m.Right.AddRoute(dst, core.VirtualHostPort)
	} else {
		m.Left.AddRoute(dst, core.VirtualHostPort)
	}
}

// BuildMultipath assembles the network. Path switches use port 0 toward
// Left and port 1 toward Right.
func BuildMultipath(net *netem.Network, p MultipathParams) *Multipath {
	if p.HopsPerPath < 1 {
		p.HopsPerPath = 1
	}
	leftCfg, rightCfg := p.Edge, p.Edge
	leftCfg.Name, rightCfg.Name = "vleft", "vright"
	leftCfg.Paths, rightCfg.Paths = p.Paths, p.Paths

	m := &Multipath{
		Left:  core.NewVirtualEdge(net.SchedulerFor(leftCfg.Name), leftCfg),
		Right: core.NewVirtualEdge(net.SchedulerFor(rightCfg.Name), rightCfg),
	}
	net.Add(m.Left)
	net.Add(m.Right)

	vendors := []string{"black", "grey"} // Fig. 9's two device vendors
	for i := 0; i < p.Paths; i++ {
		var path []*switching.Switch
		for h := 0; h < p.HopsPerPath; h++ {
			name := fmt.Sprintf("p%d-%s%d", i, vendors[(i+h)%len(vendors)], h)
			sw := switching.New(net.SchedulerFor(name), switching.Config{
				Name:       name,
				DatapathID: uint64(1000 + i*16 + h),
				ProcDelay:  p.SwitchProcDelay,
				ProcQueue:  p.SwitchProcQueue,
			})
			if p.Compromise != nil {
				if b := p.Compromise(i, h); b != nil {
					sw.SetBehavior(b)
				}
			}
			net.Add(sw)
			path = append(path, sw)
			if h > 0 {
				net.Connect(path[h-1], 1, sw, 0, p.Link)
			}
		}
		net.Connect(m.Left, m.Left.PathPort(i), path[0], 0, p.Link)
		net.Connect(path[len(path)-1], 1, m.Right, m.Right.PathPort(i), p.Link)
		m.Paths = append(m.Paths, path)
	}
	return m
}
