// Package topo assembles the concrete topologies of the paper: the Fig. 3
// performance testbed in all six scenario flavours (Linespeed, Dup3/5,
// Central3/5, POX3), the Clos/fat-tree of the §VI case study, and the
// disjoint-multipath network of the §VII virtualized combiner.
package topo

import (
	"fmt"
	"time"

	"netco/internal/controller"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/sim/par"
	"netco/internal/switching"
	"netco/internal/traffic"
)

// TestbedKind selects the evaluation scenario (§V-A).
type TestbedKind int

// Testbed kinds.
const (
	// KindLinespeed is the insecure baseline: h1–s1–r–s2–h2.
	KindLinespeed TestbedKind = iota + 1
	// KindCentral is the full combiner with the data-plane C compare.
	KindCentral
	// KindDup splits but never combines.
	KindDup
	// KindPOX runs the compare as a controller application.
	KindPOX
	// KindInline places the compare inband as a middlebox behind each
	// edge (the §IX alternative architecture).
	KindInline
)

// TestbedParams holds every physical constant of the Fig. 3 testbed.
type TestbedParams struct {
	Kind TestbedKind
	// K is the number of parallel routers (1 for Linespeed).
	K int

	// Links.
	HostLink    netem.LinkConfig
	RouterLink  netem.LinkConfig
	CompareLink netem.LinkConfig

	// Untrusted router pipeline.
	SwitchProcDelay time.Duration
	SwitchProcQueue int

	// Trusted edge pipeline.
	EdgeProcDelay time.Duration
	EdgeProcQueue int

	// Host stack.
	Host traffic.HostConfig

	// Compare (Central kinds).
	Compare core.CompareNodeConfig

	// POX kind: control-channel latency and interpreter per-copy cost.
	CtrlLatency    time.Duration
	POXPerCopyCost time.Duration
	POXQueueLimit  int
	POXEngine      core.Config

	// Compromise optionally returns a behavior for router i (nil =
	// honest); used by attack experiments.
	Compromise func(i int) switching.Behavior

	// Partitions > 1 runs the testbed on the parallel engine, splitting
	// it into up to three domains (combiner, h1, h2). The result is
	// bit-identical to the serial build. POX testbeds and testbeds whose
	// host links have no propagation delay fall back to serial (the
	// former shares a controller across switches, the latter has no
	// lookahead bound).
	Partitions int
	// Workers bounds the engine's worker goroutines (0 = GOMAXPROCS).
	Workers int
}

// Testbed is an assembled Fig. 3 network.
type Testbed struct {
	// Sched is the single scheduler of a serial build; nil when the
	// testbed is partitioned. Drivers should advance time through Runner,
	// which is set in both modes.
	Sched  *sim.Scheduler
	Runner sim.Runner
	// Engine is the parallel engine of a partitioned build, nil otherwise.
	Engine *par.Engine
	Net    *netem.Network
	H1    *traffic.Host
	H2    *traffic.Host

	// Combiner is set for Linespeed/Central/Dup kinds.
	Combiner *core.Combiner
	// POXApp and Edges are set for the POX kind.
	POXApp *controller.CompareApp
	Edges  []*switching.Switch

	Routers []*switching.Switch
}

// Close releases periodic activity (compare sweeps) so a finished
// simulation's event queue can drain.
func (tb *Testbed) Close() {
	if tb.Combiner != nil {
		tb.Combiner.Close()
	}
	if tb.POXApp != nil {
		tb.POXApp.Close()
	}
}

// BuildTestbed assembles the testbed per the parameters.
func BuildTestbed(p TestbedParams) *Testbed {
	tb := &Testbed{}
	domains := p.Partitions
	if domains > 3 {
		domains = 3 // the testbed has only three independent units
	}
	var net *netem.Network
	if domains > 1 && p.Kind != KindPOX && p.HostLink.Delay > 0 {
		eng := par.New(domains, p.Workers)
		net = netem.NewPartitioned(eng.Schedulers(), TestbedAssign(domains),
			func(src, dst int) netem.CrossPost { return eng.Boundary(src, dst) })
		tb.Engine = eng
		tb.Runner = eng
	} else {
		sched := sim.NewScheduler()
		net = netem.New(sched)
		tb.Sched = sched
		tb.Runner = sched
	}
	tb.Net = net

	tb.H1 = traffic.NewHost(net.SchedulerFor("h1"), "h1", packet.HostMAC(1), packet.HostIP(1), p.Host)
	tb.H2 = traffic.NewHost(net.SchedulerFor("h2"), "h2", packet.HostMAC(2), packet.HostIP(2), p.Host)
	net.Add(tb.H1)
	net.Add(tb.H2)

	newRouter := func(i int) *switching.Switch {
		name := fmt.Sprintf("r%d", i)
		sw := switching.New(net.SchedulerFor(name), switching.Config{
			Name:       name,
			DatapathID: uint64(100 + i),
			ProcDelay:  p.SwitchProcDelay,
			ProcQueue:  p.SwitchProcQueue,
		})
		if p.Compromise != nil {
			if b := p.Compromise(i); b != nil {
				sw.SetBehavior(b)
			}
		}
		return sw
	}

	switch p.Kind {
	case KindPOX:
		buildPOXTestbed(tb, p, newRouter)
	default:
		mode := core.CombinerCentral
		k := p.K
		switch p.Kind {
		case KindLinespeed:
			mode, k = core.CombinerDup, 1
		case KindDup:
			mode = core.CombinerDup
		case KindInline:
			mode = core.CombinerInline
		}
		spec := core.CombinerSpec{
			K:             k,
			Mode:          mode,
			Compare:       p.Compare,
			EdgeProcDelay: p.EdgeProcDelay,
			EdgeProcQueue: p.EdgeProcQueue,
			RouterLink:    p.RouterLink,
			CompareLink:   p.CompareLink,
		}
		tb.Combiner = core.Build(net, spec, newRouter)
		tb.Routers = tb.Combiner.Routers
		tb.Combiner.AttachHost(net, core.SideLeft, tb.H1, traffic.HostPort, tb.H1.MAC(), p.HostLink)
		tb.Combiner.AttachHost(net, core.SideRight, tb.H2, traffic.HostPort, tb.H2.MAC(), p.HostLink)
	}
	if tb.Engine != nil {
		tb.Engine.SetLookahead(net.MinCrossDelay())
	}
	return tb
}

// buildPOXTestbed wires the POX3 scenario: the trusted edges are plain
// OpenFlow switches and the compare runs on the controller.
func buildPOXTestbed(tb *Testbed, p TestbedParams, newRouter func(i int) *switching.Switch) {
	sched, net := tb.Sched, tb.Net
	s1 := switching.New(sched, switching.Config{Name: "s1", DatapathID: 1, ProcDelay: p.EdgeProcDelay, ProcQueue: p.EdgeProcQueue})
	s2 := switching.New(sched, switching.Config{Name: "s2", DatapathID: 2, ProcDelay: p.EdgeProcDelay, ProcQueue: p.EdgeProcQueue})
	net.Add(s1)
	net.Add(s2)
	tb.Edges = []*switching.Switch{s1, s2}

	net.Connect(tb.H1, traffic.HostPort, s1, 0, p.HostLink)
	net.Connect(tb.H2, traffic.HostPort, s2, 0, p.HostLink)

	routerPorts := make([]uint16, 0, p.K)
	for i := 0; i < p.K; i++ {
		r := newRouter(i)
		net.Add(r)
		tb.Routers = append(tb.Routers, r)
		net.Connect(s1, 1+i, r, core.RouterPortLeft, p.RouterLink)
		net.Connect(s2, 1+i, r, core.RouterPortRight, p.RouterLink)
		r.Table().Add(&openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(tb.H2.MAC()),
			Actions:  []openflow.Action{openflow.Output(core.RouterPortRight)},
		})
		r.Table().Add(&openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(tb.H1.MAC()),
			Actions:  []openflow.Action{openflow.Output(core.RouterPortLeft)},
		})
		routerPorts = append(routerPorts, uint16(1+i))
	}

	app := controller.NewCompareApp(sched, controller.CompareAppConfig{
		Engine:      p.POXEngine,
		PerCopyCost: p.POXPerCopyCost,
		QueueLimit:  p.POXQueueLimit,
	})
	app.ConfigureDatapath(1, 0, routerPorts, map[packet.MAC]uint16{tb.H1.MAC(): 0})
	app.ConfigureDatapath(2, 0, routerPorts, map[packet.MAC]uint16{tb.H2.MAC(): 0})
	s1.ConnectController(app, p.CtrlLatency)
	s2.ConnectController(app, p.CtrlLatency)
	tb.POXApp = app

	// Let the handshake and proactive rules settle before traffic.
	sched.RunFor(20 * time.Millisecond)
}
