package topo

import (
	"context"
	"fmt"
	"time"

	"netco/internal/netem"
	"netco/internal/pool"
	"netco/internal/switching"
)

// FatTreeParams parameterises a k-ary fat-tree (Al-Fares-style Clos), the
// "typical fat-tree topology where servers are organized in racks, which
// are in turn organized in pods, interconnected by core routers" of the
// §VI case study (Fig. 1, left).
type FatTreeParams struct {
	// Arity is k: k pods, each with k/2 edge and k/2 aggregation
	// switches; (k/2)² cores; k/2 hosts per edge switch. Must be even
	// and ≥ 2.
	Arity int
	// Link is used for every switch-to-switch link.
	Link netem.LinkConfig
	// SwitchProcDelay and SwitchProcQueue configure every switch.
	SwitchProcDelay time.Duration
	SwitchProcQueue int
	// Workers > 1 wires pods concurrently via runner.Map over a link
	// batch reserved up front. The batch's slot layout reproduces the
	// serial creation order exactly, so link ids — and with them the
	// same-instant event tie-break bands — are bit-identical to a
	// serial build. Ignored (serial build) on partitioned networks,
	// whose cross-domain bookkeeping is not safe to mutate concurrently.
	Workers int
}

// FatTree is an assembled fat-tree fabric. Hosts are not created; attach
// them to edge-switch host ports (0..k/2-1) with the network's Connect.
type FatTree struct {
	// Arity is the tree's k.
	Arity int
	// Cores holds the (k/2)² core switches; core c belongs to group
	// c / (k/2) (the group determines which aggregation switch of each
	// pod it connects to).
	Cores []*switching.Switch
	// Pods holds the k pods.
	Pods []*FatTreePod
}

// FatTreePod is one pod: k/2 aggregation and k/2 edge switches.
type FatTreePod struct {
	Agg  []*switching.Switch
	Edge []*switching.Switch
}

// Fat-tree port conventions.
//
// Edge switch:  ports 0..k/2-1 → hosts, ports k/2..k-1 → aggs (k/2+j → agg j).
// Agg switch:   ports 0..k/2-1 → edges (i → edge i), ports k/2..k-1 → cores.
// Core switch:  port p → pod p's agg of the core's group.

// EdgeHostPortOf returns the edge-switch port for host slot s.
func (ft *FatTree) EdgeHostPortOf(s int) int { return s }

// EdgeUpPortOf returns the edge-switch port toward aggregation switch j.
func (ft *FatTree) EdgeUpPortOf(j int) int { return ft.Arity/2 + j }

// AggDownPortOf returns the aggregation-switch port toward edge switch i.
func (ft *FatTree) AggDownPortOf(i int) int { return i }

// AggUpPortOf returns the aggregation-switch port toward the m-th core of
// its group.
func (ft *FatTree) AggUpPortOf(m int) int { return ft.Arity/2 + m }

// CorePodPortOf returns the core-switch port toward pod p.
func (ft *FatTree) CorePodPortOf(p int) int { return p }

// BuildFatTree assembles the fabric into net.
func BuildFatTree(net *netem.Network, p FatTreeParams) *FatTree {
	k := p.Arity
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity %d must be even and >= 2", k))
	}
	half := k / 2
	newSwitch := func(name string, dpid uint64) *switching.Switch {
		sw := switching.New(net.SchedulerFor(name), switching.Config{
			Name:       name,
			DatapathID: dpid,
			ProcDelay:  p.SwitchProcDelay,
			ProcQueue:  p.SwitchProcQueue,
		})
		net.Add(sw)
		return sw
	}

	ft := &FatTree{Arity: k}
	dpid := uint64(1)
	for c := 0; c < half*half; c++ {
		ft.Cores = append(ft.Cores, newSwitch(fmt.Sprintf("core%d", c), dpid))
		dpid++
	}
	for pod := 0; pod < k; pod++ {
		fp := &FatTreePod{}
		for j := 0; j < half; j++ {
			fp.Agg = append(fp.Agg, newSwitch(fmt.Sprintf("pod%d-agg%d", pod, j), dpid))
			dpid++
		}
		for i := 0; i < half; i++ {
			fp.Edge = append(fp.Edge, newSwitch(fmt.Sprintf("pod%d-edge%d", pod, i), dpid))
			dpid++
		}
		ft.Pods = append(ft.Pods, fp)
	}

	if p.Workers > 1 && !net.Partitioned() {
		ft.wireParallel(net, p)
	} else {
		ft.wireSerial(net, p)
	}
	return ft
}

// wireSerial creates the fabric's links one Connect at a time, in the
// canonical order: per pod, the intra-pod edge↔agg bipartite (i-major),
// then the agg↔core uplinks (j-major).
func (ft *FatTree) wireSerial(net *netem.Network, p FatTreeParams) {
	half := ft.Arity / 2
	for pod, fp := range ft.Pods {
		// Edge i ↔ agg j, full bipartite inside the pod.
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				net.Connect(fp.Edge[i], ft.EdgeUpPortOf(j), fp.Agg[j], ft.AggDownPortOf(i), p.Link)
			}
		}
		// Agg j ↔ its core group.
		for j := 0; j < half; j++ {
			for m := 0; m < half; m++ {
				coreBk := ft.Cores[j*half+m]
				net.Connect(fp.Agg[j], ft.AggUpPortOf(m), coreBk, ft.CorePodPortOf(pod), p.Link)
			}
		}
	}
}

// wireParallel reserves one contiguous link batch and fills it from a
// pod-per-task worker pool. The slot layout is exactly wireSerial's
// creation order — pod-major, intra-pod bipartite before uplinks — so a
// parallel build assigns every physical link the same id a serial build
// would. Port tables are pre-grown first, which makes the concurrent
// Bind calls (distinct ports, including distinct pods hitting the same
// core switch) plain writes to disjoint slice elements.
func (ft *FatTree) wireParallel(net *netem.Network, p FatTreeParams) {
	k, half := ft.Arity, ft.Arity/2
	for _, core := range ft.Cores {
		core.Ports().Grow(k)
	}
	for _, fp := range ft.Pods {
		for j := 0; j < half; j++ {
			fp.Agg[j].Ports().Grow(k)
			fp.Edge[j].Ports().Grow(k)
		}
	}
	perPod := 2 * half * half
	batch := net.ReserveLinks(k * perPod)
	_, errs := pool.Map(context.Background(), p.Workers, k, func(pod int) (struct{}, error) {
		fp := ft.Pods[pod]
		base := pod * perPod
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				batch.Connect(base+i*half+j, fp.Edge[i], ft.EdgeUpPortOf(j), fp.Agg[j], ft.AggDownPortOf(i), p.Link)
			}
		}
		for j := 0; j < half; j++ {
			for m := 0; m < half; m++ {
				coreBk := ft.Cores[j*half+m]
				batch.Connect(base+half*half+j*half+m, fp.Agg[j], ft.AggUpPortOf(m), coreBk, ft.CorePodPortOf(pod), p.Link)
			}
		}
		return struct{}{}, nil
	})
	for _, err := range errs {
		if err != nil {
			panic(err) // wiring is infallible; only a re-panic can land here
		}
	}
}
