package topo_test

import (
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/traffic"
)

func TestFatTreeStructure(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	ft := topo.BuildFatTree(net, topo.FatTreeParams{Arity: 4, Link: netem.LinkConfig{}})

	if len(ft.Cores) != 4 {
		t.Fatalf("cores = %d, want 4", len(ft.Cores))
	}
	if len(ft.Pods) != 4 {
		t.Fatalf("pods = %d, want 4", len(ft.Pods))
	}
	for i, pod := range ft.Pods {
		if len(pod.Agg) != 2 || len(pod.Edge) != 2 {
			t.Fatalf("pod %d has %d agg / %d edge, want 2/2", i, len(pod.Agg), len(pod.Edge))
		}
		// Every edge has 2 up ports bound, every agg 2 down + 2 up.
		for _, e := range pod.Edge {
			if e.Ports().Count() != 2 { // host ports unbound until hosts attach
				t.Fatalf("edge %s has %d bound ports, want 2 uplinks", e.Name(), e.Ports().Count())
			}
		}
		for _, a := range pod.Agg {
			if a.Ports().Count() != 4 {
				t.Fatalf("agg %s has %d bound ports, want 4", a.Name(), a.Ports().Count())
			}
		}
	}
	for _, c := range ft.Cores {
		if c.Ports().Count() != 4 {
			t.Fatalf("core %s has %d bound ports, want 4 (one per pod)", c.Name(), c.Ports().Count())
		}
	}
}

func TestFatTreeOddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd arity did not panic")
		}
	}()
	sched := sim.NewScheduler()
	topo.BuildFatTree(netem.New(sched), topo.FatTreeParams{Arity: 3})
}

func TestFatTreeCrossPodPath(t *testing.T) {
	// Route a ping from pod 0 to pod 1 via agg0/core0 with static rules
	// to prove the fabric is correctly wired.
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 1e9, Delay: 5 * time.Microsecond, QueueLimit: 100}
	ft := topo.BuildFatTree(net, topo.FatTreeParams{Arity: 4, Link: link, SwitchProcDelay: time.Microsecond})

	h1 := traffic.NewHost(sched, "ha", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "hb", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, traffic.HostPort, ft.Pods[0].Edge[0], ft.EdgeHostPortOf(0), link)
	net.Connect(h2, traffic.HostPort, ft.Pods[1].Edge[0], ft.EdgeHostPortOf(0), link)

	route := func(sw *switching.Switch, mac packet.MAC, port int) {
		sw.Table().Add(&openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(mac),
			Actions:  []openflow.Action{openflow.Output(uint16(port))},
		})
	}
	// h1 → h2: edge0/pod0 up to agg0, agg0 up to core0, core0 to pod1,
	// pod1 agg0 down to edge0, edge to host. And the reverse.
	route(ft.Pods[0].Edge[0], h2.MAC(), ft.EdgeUpPortOf(0))
	route(ft.Pods[0].Agg[0], h2.MAC(), ft.AggUpPortOf(0))
	route(ft.Cores[0], h2.MAC(), ft.CorePodPortOf(1))
	route(ft.Pods[1].Agg[0], h2.MAC(), ft.AggDownPortOf(0))
	route(ft.Pods[1].Edge[0], h2.MAC(), ft.EdgeHostPortOf(0))

	route(ft.Pods[1].Edge[0], h1.MAC(), ft.EdgeUpPortOf(0))
	route(ft.Pods[1].Agg[0], h1.MAC(), ft.AggUpPortOf(0))
	route(ft.Cores[0], h1.MAC(), ft.CorePodPortOf(0))
	route(ft.Pods[0].Agg[0], h1.MAC(), ft.AggDownPortOf(0))
	route(ft.Pods[0].Edge[0], h1.MAC(), ft.EdgeHostPortOf(0))

	p := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 5, ID: 1})
	var res traffic.PingResult
	p.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(2 * time.Second)
	if res.Received != 5 {
		t.Fatalf("cross-pod ping: received %d of 5", res.Received)
	}
}

func buildMultipath(t *testing.T, paths int, compromise func(path, hop int) switching.Behavior) (*sim.Scheduler, *topo.Multipath, *traffic.Host, *traffic.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 1e9, Delay: 10 * time.Microsecond, QueueLimit: 100}
	mp := topo.BuildMultipath(net, topo.MultipathParams{
		Paths:           paths,
		HopsPerPath:     2,
		Link:            link,
		EdgeLink:        link,
		SwitchProcDelay: time.Microsecond,
		SwitchProcQueue: 500,
		Edge: core.VirtualEdgeConfig{
			Engine:      core.Config{HoldTimeout: 10 * time.Millisecond, CacheCapacity: 1 << 16, DetectOnly: paths == 2},
			PerCopyCost: 2 * time.Microsecond,
		},
		Compromise: compromise,
	})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, traffic.HostPort, mp.Left, core.VirtualHostPort, link)
	net.Connect(h2, traffic.HostPort, mp.Right, core.VirtualHostPort, link)
	mp.Route(h1.MAC(), core.SideLeft)
	mp.Route(h2.MAC(), core.SideRight)
	return sched, mp, h1, h2
}

func TestMultipathDeliversExactlyOnce(t *testing.T) {
	sched, mp, h1, h2 := buildMultipath(t, 3, nil)
	defer mp.Close()
	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 800})
	src.Start()
	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 {
		t.Fatalf("unique=%d dups=%d sent=%d", st.Unique, st.Duplicates, src.Sent)
	}
	if mp.Right.Stats().Combined != src.Sent {
		t.Fatalf("Combined = %d, want %d", mp.Right.Stats().Combined, src.Sent)
	}
	// Every path carried one tagged copy.
	if mp.Left.Stats().Split != 3*src.Sent {
		t.Fatalf("Split = %d, want %d", mp.Left.Stats().Split, 3*src.Sent)
	}
}

func TestMultipathPreventsPayloadTamper(t *testing.T) {
	// A malicious mid-path switch rewrites the IP TOS field on path 1;
	// the inband compare must out-vote it.
	sched, mp, h1, h2 := buildMultipath(t, 3, func(path, hop int) switching.Behavior {
		if path == 1 && hop == 1 {
			return &adversary.Modify{
				Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
				Rewrite: []openflow.Action{openflow.SetNwTOS(0xfc)},
			}
		}
		return nil
	})
	defer mp.Close()

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
	src.Start()
	sched.RunFor(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d", got, src.Sent)
	}
	if s := mp.Right.EngineStats().Suppressed; s == 0 {
		t.Fatal("tampered copies not suppressed")
	}
}

func TestMultipathDetectsVLANRewrite(t *testing.T) {
	// A device rewriting the tunnel label (the §II isolation attack) is
	// caught by the egress label check.
	sched, mp, h1, h2 := buildMultipath(t, 3, func(path, hop int) switching.Behavior {
		if path == 0 && hop == 0 {
			return &adversary.Modify{
				Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
				Rewrite: []openflow.Action{openflow.SetVLANVID(999)},
			}
		}
		return nil
	})
	defer mp.Close()

	alarms := 0
	mp.Right.OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventDetection {
			alarms++
		}
	}
	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
	src.Start()
	sched.RunFor(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d despite 2 honest paths", got, src.Sent)
	}
	if mp.Right.Stats().TagViolations == 0 {
		t.Fatal("VLAN rewrite went unnoticed")
	}
	if alarms == 0 {
		t.Fatal("no detection alarms for label violations")
	}
}

func TestMultipathTwoPathDetection(t *testing.T) {
	// §VII: two paths suffice for detection. A dropper on path 1 must
	// not affect delivery (detect-only releases the first copy) and
	// must raise detection alarms.
	sched, mp, h1, h2 := buildMultipath(t, 2, func(path, hop int) switching.Behavior {
		if path == 1 && hop == 0 {
			return &adversary.Drop{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2))}
		}
		return nil
	})
	defer mp.Close()

	detections := 0
	mp.Right.OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventDetection {
			detections++
		}
	}
	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
	src.Start()
	sched.RunFor(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d in detect-only mode", got, src.Sent)
	}
	if detections == 0 {
		t.Fatal("dropping path never detected")
	}
}

func TestMultipathPingRTT(t *testing.T) {
	sched, mp, h1, h2 := buildMultipath(t, 3, nil)
	defer mp.Close()
	p := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 2})
	var res traffic.PingResult
	p.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(2 * time.Second)
	if res.Received != 10 {
		t.Fatalf("received %d of 10", res.Received)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%d duplicate replies", res.Duplicates)
	}
}

func TestTestbedKinds(t *testing.T) {
	// Smoke-build each kind and push one ping through.
	p := base()
	for _, kind := range []topo.TestbedKind{topo.KindLinespeed, topo.KindCentral, topo.KindDup, topo.KindPOX} {
		tp := p
		tp.Kind = kind
		tp.K = 3
		tb := topo.BuildTestbed(tp)
		pinger := traffic.NewPinger(tb.H1, tb.H2.Endpoint(0), traffic.PingerConfig{Count: 3, ID: 1})
		var res traffic.PingResult
		pinger.Run(func(r traffic.PingResult) { res = r })
		tb.Sched.RunFor(3 * time.Second)
		if res.Received != 3 {
			t.Errorf("kind %v: received %d of 3", kind, res.Received)
		}
		tb.Close()
	}
}

func base() topo.TestbedParams {
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}
	return topo.TestbedParams{
		HostLink:        link,
		RouterLink:      link,
		CompareLink:     link,
		SwitchProcDelay: time.Microsecond,
		EdgeProcDelay:   time.Microsecond,
		Host:            traffic.HostConfig{EchoResponder: true},
		Compare: core.CompareNodeConfig{
			Engine:      core.Config{HoldTimeout: 10 * time.Millisecond},
			PerCopyCost: 5 * time.Microsecond,
		},
		CtrlLatency:    100 * time.Microsecond,
		POXPerCopyCost: 50 * time.Microsecond,
		POXEngine:      core.Config{HoldTimeout: 10 * time.Millisecond},
	}
}
