package topo_test

import (
	"fmt"
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/sim"
	"netco/internal/topo"
)

// wiringSignature flattens a fat-tree build into a canonical description
// of every port binding: node name, port, link creation-order index,
// link name (which encodes both endpoints and ports), and which end the
// node transmits from. Two builds producing equal signatures have wired
// every physical link identically AND created them in the same order —
// the property that keeps same-instant event tie-break bands stable.
func wiringSignature(t *testing.T, net *netem.Network, ft *topo.FatTree) []string {
	t.Helper()
	var sig []string
	addNode := func(name string, ps *netem.Ports) {
		ps.Each(func(idx int, l *netem.Link, end int) {
			sig = append(sig, fmt.Sprintf("%s#%d@%d=%s/%d", name, idx, end, l.Name(), l.Index()))
		})
	}
	for _, c := range ft.Cores {
		addNode(c.Name(), c.Ports())
	}
	for _, pod := range ft.Pods {
		for _, a := range pod.Agg {
			addNode(a.Name(), a.Ports())
		}
		for _, e := range pod.Edge {
			addNode(e.Name(), e.Ports())
		}
	}
	if len(net.Links()) == 0 {
		t.Fatal("no links created")
	}
	return sig
}

// TestFatTreeParallelWiringMatchesSerial pins the parallel build's
// determinism contract: at any worker count, every switch port is bound
// to the same physical link at the same creation-order position as a
// serial build.
func TestFatTreeParallelWiringMatchesSerial(t *testing.T) {
	build := func(workers int) []string {
		sched := sim.NewScheduler()
		net := netem.New(sched)
		ft := topo.BuildFatTree(net, topo.FatTreeParams{
			Arity:   6,
			Link:    netem.LinkConfig{Bandwidth: 1e9, Delay: time.Microsecond},
			Workers: workers,
		})
		return wiringSignature(t, net, ft)
	}
	serial := build(1)
	for _, workers := range []int{2, 4, 8} {
		parallel := build(workers)
		if len(serial) != len(parallel) {
			t.Fatalf("workers=%d: signature length %d vs serial %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: wiring diverged at entry %d: %q vs %q",
					workers, i, serial[i], parallel[i])
			}
		}
	}
}

// TestFatTreeParallelLinkCount sanity-checks the batch covers exactly
// the fabric: k pods × 2×(k/2)² links, every slot wired.
func TestFatTreeParallelLinkCount(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	topo.BuildFatTree(net, topo.FatTreeParams{Arity: 4, Workers: 3})
	want := 4 * 2 * 2 * 2 // k * 2 * (k/2)²
	if got := len(net.Links()); got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	for i, l := range net.Links() {
		if l.Index() != i {
			t.Fatalf("link %d has Index %d", i, l.Index())
		}
		if a, _ := l.Peer(1); a == nil {
			t.Fatalf("link %d end 0 unattached", i)
		}
		if b, _ := l.Peer(0); b == nil {
			t.Fatalf("link %d end 1 unattached", i)
		}
	}
}
