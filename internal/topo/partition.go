package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Partition assignment for the parallel engine (internal/sim/par).
//
// Every scheme follows one rule: nodes that share mutable state through
// direct method calls — a combiner's edges, routers and compare (the
// compare blocks edge ports synchronously), or a virtual edge and its
// embedded engine — form one *unit* and must land in the same domain.
// Units only ever talk to other units through netem links, whose
// propagation delay is the lookahead bound. Units are folded onto the
// requested domain count round-robin, so any domain count from 1 to the
// unit count is valid and produces the same simulation (bit-identical —
// see the par package doc).

// TestbedAssign partitions the Fig. 3 testbed: the whole combiner is
// unit 0, h1 unit 1, h2 unit 2. Useful domain counts are 1..3.
func TestbedAssign(domains int) func(name string) int {
	return func(name string) int {
		u := 0
		switch name {
		case "h1":
			u = 1
		case "h2":
			u = 2
		}
		return u % domains
	}
}

// FatTreeAssign partitions a k-ary fat tree: pod p is unit p, core c is
// unit k + c/(k/2) (one unit per core group), so there are k + k/2
// units. Any extra node must embed its pod in its name ("pod3-h0");
// unknown names panic rather than silently serialise.
func FatTreeAssign(arity, domains int) func(name string) int {
	half := arity / 2
	return func(name string) int {
		var u int
		switch {
		case strings.HasPrefix(name, "pod"):
			rest := name[len("pod"):]
			end := 0
			for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
				end++
			}
			n, err := strconv.Atoi(rest[:end])
			if err != nil {
				panic(fmt.Sprintf("topo: cannot parse pod index in node name %q", name))
			}
			u = n
		case strings.HasPrefix(name, "core"):
			c, err := strconv.Atoi(name[len("core"):])
			if err != nil {
				panic(fmt.Sprintf("topo: cannot parse core index in node name %q", name))
			}
			u = arity + c/half
		default:
			panic(fmt.Sprintf("topo: node %q has no fat-tree partition (name it pod<p>-...)", name))
		}
		return u % domains
	}
}

// MultipathAssign partitions the §VII network: vleft is unit 0, vright
// unit 1, path i unit 2+i. The end hosts ride with their edges (h1 with
// vleft, h2 with vright). Useful domain counts are 1..2+paths.
func MultipathAssign(domains int) func(name string) int {
	return func(name string) int {
		var u int
		switch {
		case name == "vleft" || name == "h1":
			u = 0
		case name == "vright" || name == "h2":
			u = 1
		case strings.HasPrefix(name, "p") && strings.Contains(name, "-"):
			i, err := strconv.Atoi(name[1:strings.Index(name, "-")])
			if err != nil {
				panic(fmt.Sprintf("topo: cannot parse path index in node name %q", name))
			}
			u = 2 + i
		default:
			panic(fmt.Sprintf("topo: node %q has no multipath partition", name))
		}
		return u % domains
	}
}
