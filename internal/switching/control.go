package switching

import (
	"fmt"
	"time"

	"netco/internal/openflow"
	"netco/internal/packet"
)

// Controller is the control-plane application interface. The controller
// package provides learning-switch, static-routing and compare-app
// implementations.
type Controller interface {
	// SwitchConnected fires after the Hello/Features handshake.
	SwitchConnected(conn *Conn, features openflow.FeaturesReply)
	// Handle receives every asynchronous switch-to-controller message
	// (PacketIn, FlowRemoved, PortStatus, StatsReply, EchoReply, Error).
	Handle(conn *Conn, msg openflow.Message, xid uint32)
}

// Conn is the controller's handle to one connected switch. Every message
// in both directions is encoded to OpenFlow 1.0 wire format, delayed by
// the channel latency, and decoded on the far side — so the control
// channel cost that dominates the paper's POX3 scenario is modelled, and
// the codec is exercised by every experiment.
type Conn struct {
	sw      *Switch
	ctrl    Controller
	latency time.Duration

	datapathID uint64
	nextXid    uint32

	// down models a controller outage: messages in both directions are
	// dropped (and counted) while set. Toggled by the chaos layer from
	// the switch's domain; a "failover" is a later ConnectController call
	// with the standby application, which re-runs the handshake.
	down bool

	// Stats.
	ToController   uint64
	FromController uint64
	DroppedDown    uint64
}

// DatapathID identifies the switch on this connection.
func (c *Conn) DatapathID() uint64 { return c.datapathID }

// SetDown starts or ends a controller outage on this connection. While
// down, every message in either direction is dropped. Call from the
// switch's domain (or setup code), like all per-node state.
func (c *Conn) SetDown(down bool) { c.down = down }

// IsDown reports whether the connection is in an outage.
func (c *Conn) IsDown() bool { return c.down }

// SwitchName returns the attached switch's node name.
func (c *Conn) SwitchName() string { return c.sw.Name() }

// ConnectController attaches a controller to the switch over a channel
// with the given one-way latency and runs the handshake.
func (sw *Switch) ConnectController(ctrl Controller, latency time.Duration) *Conn {
	conn := &Conn{sw: sw, ctrl: ctrl, latency: latency, datapathID: sw.cfg.DatapathID}
	sw.ctrl = &controllerLink{conn: conn}

	// Handshake: switch Hello → controller Hello → FeaturesRequest →
	// FeaturesReply → SwitchConnected. Collapsed to the observable
	// outcome: after two RTTs the controller learns the features.
	features := sw.featuresReply()
	sw.sched.After(4*latency, func() {
		ctrl.SwitchConnected(conn, features)
	})
	return conn
}

func (sw *Switch) featuresReply() openflow.FeaturesReply {
	fr := openflow.FeaturesReply{
		DatapathID: sw.cfg.DatapathID,
		NBuffers:   0, // packets are never buffered: full frames ride in PacketIn
		NTables:    1,
	}
	for _, p := range sw.ports.List() {
		fr.Ports = append(fr.Ports, openflow.PhyPort{
			PortNo: uint16(p),
			Name:   fmt.Sprintf("%s-eth%d", sw.cfg.Name, p),
		})
	}
	return fr
}

// Send transmits a controller-to-switch message. The message crosses the
// wire codec and arrives after the channel latency.
func (c *Conn) Send(m openflow.Message) {
	if c.down {
		c.DroppedDown++
		return
	}
	c.nextXid++
	xid := c.nextXid
	wire := openflow.Encode(m, xid)
	c.FromController++
	c.sw.sched.After(c.latency, func() {
		decoded, gotXid, err := openflow.Decode(wire)
		if err != nil {
			// A codec failure here is a programming error; surface it
			// loudly in simulation rather than silently dropping.
			panic(fmt.Sprintf("switching: control channel decode: %v", err))
		}
		c.sw.handleControllerMessage(c, decoded, gotXid)
	})
}

// InstallFlow is shorthand for sending an OFPFC_ADD FlowMod.
func (c *Conn) InstallFlow(fm openflow.FlowMod) {
	fm.Command = openflow.FlowAdd
	c.Send(fm)
}

// PacketOut injects data out of the given switch port.
func (c *Conn) PacketOut(outPort uint16, data []byte) {
	c.Send(openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   openflow.PortNone,
		Actions:  []openflow.Action{openflow.Output(outPort)},
		Data:     data,
	})
}

// controllerLink is the switch-side view of the control channel.
type controllerLink struct {
	conn *Conn
}

// sendPacketIn forwards a data-plane packet to the controller.
func (sw *Switch) sendPacketIn(inPort int, pkt *packet.Packet, reason uint8) {
	if sw.ctrl == nil {
		return
	}
	data := pkt.Marshal()
	msg := openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		TotalLen: uint16(len(data)),
		InPort:   uint16(inPort),
		Reason:   reason,
		Data:     data,
	}
	sw.sendToController(msg)
}

func (sw *Switch) flowRemoved(e *openflow.FlowEntry, reason openflow.RemovedReason) {
	if sw.ctrl == nil {
		return
	}
	dur := e.Duration(sw.sched.Now())
	sw.sendToController(openflow.FlowRemoved{
		Match:       e.Match,
		Cookie:      e.Cookie,
		Priority:    e.Priority,
		Reason:      reason,
		DurationSec: uint32(dur / time.Second),
		PacketCount: e.Packets,
		ByteCount:   e.Bytes,
	})
}

func (sw *Switch) sendToController(m openflow.Message) {
	conn := sw.ctrl.conn
	if conn.down {
		conn.DroppedDown++
		return
	}
	wire := openflow.Encode(m, sw.xid())
	conn.ToController++
	sw.sched.After(conn.latency, func() {
		decoded, xid, err := openflow.Decode(wire)
		if err != nil {
			panic(fmt.Sprintf("switching: control channel decode: %v", err))
		}
		conn.ctrl.Handle(conn, decoded, xid)
	})
}

// handleControllerMessage executes a controller-to-switch request.
func (sw *Switch) handleControllerMessage(c *Conn, m openflow.Message, xid uint32) {
	if sw.down {
		return // a crashed switch processes nothing
	}
	switch v := m.(type) {
	case openflow.FlowMod:
		sw.applyFlowMod(v)
	case openflow.PacketOut:
		pkt, err := packet.Unmarshal(v.Data)
		if err != nil {
			sw.sendToController(openflow.Error{ErrType: 1, Code: 0, Data: v.Data})
			return
		}
		sw.execute(int(v.InPort), pkt, v.Actions)
	case openflow.StatsRequest:
		sw.sendToController(sw.stats(v))
	case openflow.EchoRequest:
		sw.sendToController(openflow.EchoReply{Data: v.Data})
	case openflow.BarrierRequest:
		sw.sendToController(openflow.BarrierReply{})
	case openflow.FeaturesRequest:
		sw.sendToController(sw.featuresReply())
	}
}

func (sw *Switch) applyFlowMod(fm openflow.FlowMod) {
	switch fm.Command {
	case openflow.FlowAdd, openflow.FlowModify, openflow.FlowModifyStrict:
		sw.table.Add(&openflow.FlowEntry{
			Priority:    fm.Priority,
			Match:       fm.Match,
			Actions:     fm.Actions,
			Cookie:      fm.Cookie,
			IdleTimeout: time.Duration(fm.IdleTimeout) * time.Second,
			HardTimeout: time.Duration(fm.HardTimeout) * time.Second,
		})
	case openflow.FlowDelete:
		sw.table.Delete(fm.Match, fm.Priority, false, fm.OutPort)
	case openflow.FlowDeleteStrict:
		sw.table.Delete(fm.Match, fm.Priority, true, fm.OutPort)
	}
}

func (sw *Switch) stats(req openflow.StatsRequest) openflow.StatsReply {
	rep := openflow.StatsReply{StatsType: req.StatsType}
	switch req.StatsType {
	case openflow.StatsFlow:
		now := sw.sched.Now()
		for _, e := range sw.table.Entries() {
			if req.Flow != nil && !req.Flow.Match.Subsumes(e.Match) {
				continue
			}
			rep.Flow = append(rep.Flow, openflow.FlowStats{
				Match:       e.Match,
				DurationSec: uint32(e.Duration(now) / time.Second),
				Priority:    e.Priority,
				Cookie:      e.Cookie,
				PacketCount: e.Packets,
				ByteCount:   e.Bytes,
				Actions:     e.Actions,
			})
		}
	case openflow.StatsPort:
		want := openflow.PortNone
		if req.Port != nil {
			want = req.Port.PortNo
		}
		for _, p := range sw.ports.List() {
			if want != openflow.PortNone && uint16(p) != want {
				continue
			}
			pc := sw.PortCounters(p)
			rep.Port = append(rep.Port, openflow.PortStats{
				PortNo:    uint16(p),
				RxPackets: pc.RxPackets,
				TxPackets: pc.TxPackets,
				RxBytes:   pc.RxBytes,
				TxBytes:   pc.TxBytes,
				RxDropped: pc.RxDropped,
			})
		}
	}
	return rep
}
