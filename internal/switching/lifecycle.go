package switching

// This file is the switch's crash/restart lifecycle, the mechanism under
// the chaos layer's router actions (internal/chaos). A crash is a cold
// power loss: all volatile state — flow table (rules, timeout heap, the
// armed expiry timer, the microflow cache), the pipeline queue, ingress
// blocks — is gone, and nothing is reported to the controller (a dead
// switch cannot send FlowRemoved). A restart brings the switch up empty
// and, when a controller is attached, re-runs the handshake so the
// control application re-learns or re-installs its rules.

// LifecycleStats counts crash/restart transitions and the packets the
// switch dropped while down.
type LifecycleStats struct {
	Crashes     uint64
	Restarts    uint64
	RxWhileDown uint64
	TxWhileDown uint64
}

// Crash takes the switch down, losing all volatile state: flow rules and
// their idle/hard timeout heap entries (the armed expiry timer is
// cancelled — no FlowRemoved fires for a pre-crash rule), the microflow
// cache (generation bump), every packet queued or in service in the
// pipeline, and all BlockIngress state. The attached Behavior survives:
// compromised firmware persists across reboots. Idempotent while down.
func (sw *Switch) Crash() {
	if sw.down {
		return
	}
	sw.down = true
	sw.life.Crashes++
	sw.table.Reset()
	sw.proc.Reset()
	for p := range sw.blockedIngress {
		delete(sw.blockedIngress, p)
	}
}

// Restart powers the switch back up with an empty flow table. If a
// controller is attached, the Hello/Features handshake re-runs, so the
// control application's SwitchConnected fires again after two RTTs and
// repopulates state exactly as it did on first connect (the learning
// controller starts a fresh MAC table; static apps reinstall routes).
// Idempotent while up.
func (sw *Switch) Restart() {
	if !sw.down {
		return
	}
	sw.down = false
	sw.life.Restarts++
	if sw.ctrl != nil {
		conn := sw.ctrl.conn
		features := sw.featuresReply()
		sw.sched.After(4*conn.latency, func() {
			conn.ctrl.SwitchConnected(conn, features)
		})
	}
}

// IsDown reports whether the switch is crashed.
func (sw *Switch) IsDown() bool { return sw.down }

// Lifecycle returns the crash/restart counters.
func (sw *Switch) Lifecycle() LifecycleStats { return sw.life }
