package switching

import (
	"testing"
	"time"

	"netco/internal/openflow"
	"netco/internal/packet"
)

// TestCrashCancelsFlowTimeouts is the regression for the pre-crash-timer
// bug: a rule's idle/hard timeout heap entry must not survive a crash —
// no FlowRemoved fires for a rule the switch lost with its power.
func TestCrashCancelsFlowTimeouts(t *testing.T) {
	sched, sw, hosts := testbed(t)
	removed := 0
	sw.Table().OnRemoved = func(e *openflow.FlowEntry, reason openflow.RemovedReason) { removed++ }
	sw.Table().Add(&openflow.FlowEntry{
		Priority:    10,
		Match:       openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:     []openflow.Action{openflow.Output(1)},
		IdleTimeout: 5 * time.Millisecond,
	})

	sched.At(time.Millisecond, func() { sw.Crash() })
	sched.RunUntil(20 * time.Millisecond) // well past the pre-crash deadline
	if removed != 0 {
		t.Fatalf("%d FlowRemoved callbacks fired for pre-crash rules, want 0", removed)
	}
	if sw.Table().Len() != 0 {
		t.Fatalf("table has %d entries after crash, want 0", sw.Table().Len())
	}

	// Expiry still works for rules installed after a restart.
	sw.Restart()
	sw.Table().Add(&openflow.FlowEntry{
		Priority:    10,
		Match:       openflow.MatchAll().WithDlDst(packet.HostMAC(3)),
		Actions:     []openflow.Action{openflow.Output(2)},
		IdleTimeout: 5 * time.Millisecond,
	})
	sched.RunUntil(40 * time.Millisecond)
	if removed != 1 {
		t.Fatalf("post-restart rule fired %d FlowRemoved, want 1", removed)
	}
	_ = hosts
}

// TestCrashClearsIngressBlocks: BlockIngress deadlines are volatile state
// and must not outlive a crash.
func TestCrashClearsIngressBlocks(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	sw.BlockIngress(0, time.Hour)
	sw.Crash()
	sw.Restart()
	if sw.IngressBlocked(0) {
		t.Fatal("ingress block survived the crash")
	}
	// The restarted switch has an empty table; reinstall and forward.
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[1].got) != 1 {
		t.Fatalf("h1 got %d packets after restart, want 1", len(hosts[1].got))
	}
}

// TestCrashDropsPipelinedPackets: packets queued in the ingress pipeline
// when the crash hits never come out the other side.
func TestCrashDropsPipelinedPackets(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	// ProcDelay is 1 µs; ten back-to-back packets arrive at ~2 µs (1 µs
	// link delay) and the pipeline drains one per µs. Crash at 5 µs:
	// roughly the first three clear, the rest die in the queue.
	for i := 0; i < 10; i++ {
		hosts[0].ports.Send(0, testUDP(2))
	}
	sched.At(5*time.Microsecond, func() { sw.Crash() })
	sched.Run()
	if got := len(hosts[1].got); got >= 10 || got == 0 {
		t.Fatalf("h1 got %d packets, want a proper prefix of 10 (crash mid-queue)", got)
	}
	if sw.Lifecycle().Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", sw.Lifecycle().Crashes)
	}
}

// staticApp is a minimal controller installing one route on every
// handshake — the re-learn seam Restart exercises.
type staticApp struct{ connected int }

func (s *staticApp) SwitchConnected(conn *Conn, features openflow.FeaturesReply) {
	s.connected++
	conn.InstallFlow(openflow.FlowMod{
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Priority: 100,
		Actions:  []openflow.Action{openflow.Output(1)},
	})
}
func (s *staticApp) Handle(conn *Conn, msg openflow.Message, xid uint32) {}

// TestRestartReRunsHandshake: a restart re-runs the Hello/Features
// handshake so the controller reinstalls its rules without operator help.
func TestRestartReRunsHandshake(t *testing.T) {
	sched, sw, hosts := testbed(t)
	app := &staticApp{}
	sw.ConnectController(app, 100*time.Microsecond)
	sched.Run()
	if app.connected != 1 || sw.Table().Len() != 1 {
		t.Fatalf("initial connect: connected=%d len=%d, want 1/1", app.connected, sw.Table().Len())
	}

	sched.At(time.Millisecond, func() { sw.Crash() })
	sched.At(2*time.Millisecond, func() { sw.Restart() })
	sched.Run()
	if app.connected != 2 {
		t.Fatalf("connected = %d after restart, want 2 (handshake re-ran)", app.connected)
	}
	if sw.Table().Len() != 1 {
		t.Fatalf("table len = %d after re-handshake, want 1 (route reinstalled)", sw.Table().Len())
	}
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[1].got) != 1 {
		t.Fatalf("h1 got %d packets after recovery, want 1", len(hosts[1].got))
	}
}

// TestControllerOutageDropsBothDirections: messages in either direction
// vanish while the connection is down, and flow normally after.
func TestControllerOutageDropsBothDirections(t *testing.T) {
	sched, sw, _ := testbed(t)
	app := &staticApp{}
	conn := sw.ConnectController(app, 100*time.Microsecond)
	sched.Run()

	conn.SetDown(true)
	conn.InstallFlow(openflow.FlowMod{
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(3)),
		Priority: 50,
		Actions:  []openflow.Action{openflow.Output(2)},
	})
	sw.SetMissSendToController(true)
	sw.Receive(0, testUDP(9)) // table miss → PacketIn, dropped at the outage
	sched.Run()
	if sw.Table().Len() != 1 {
		t.Fatalf("table len = %d, want 1 (FlowMod dropped during outage)", sw.Table().Len())
	}
	if conn.DroppedDown != 2 {
		t.Fatalf("DroppedDown = %d, want 2 (one FlowMod, one PacketIn)", conn.DroppedDown)
	}

	conn.SetDown(false)
	conn.InstallFlow(openflow.FlowMod{
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(3)),
		Priority: 50,
		Actions:  []openflow.Action{openflow.Output(2)},
	})
	sched.Run()
	if sw.Table().Len() != 2 {
		t.Fatalf("table len = %d after outage ends, want 2", sw.Table().Len())
	}
}
