// Package switching implements the OpenFlow 1.0 switch data plane: flow
// table lookup, action execution, packet-in on table miss, and a modelled
// control channel to the controller that round-trips every message through
// the openflow wire codec.
//
// The same Switch type plays three roles in the reproduction:
//
//   - the untrusted routers r_i inside a combiner (optionally compromised
//     by attaching a Behavior),
//   - the trusted s1/s2 components at the combiner edges (driven by the
//     rules in internal/core), and
//   - the edge/aggregation/core switches of the §VI fat-tree case study.
package switching

import (
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
)

// Behavior lets a compromised switch deviate from its flow table. The
// adversary package provides implementations of the paper's four attack
// classes (§II): rerouting, mirroring, packet modification, and DoS.
type Behavior interface {
	// Attach is called once when the behavior is installed, giving it
	// access to the switch (e.g. to schedule unsolicited packet
	// generation for DoS attacks).
	Attach(sw *Switch)
	// Forward intercepts one forwarding decision. pkt is the received
	// packet (treat as immutable; clone before mutating) and honest is
	// the action list the flow table selected (nil on table miss). The
	// returned packet/action list is executed instead.
	Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action)
}

// Config parameterises a switch.
type Config struct {
	// Name is the unique node name.
	Name string
	// DatapathID identifies the switch to the controller.
	DatapathID uint64
	// ProcDelay is the per-packet pipeline latency (lookup + action
	// execution). Zero means instantaneous.
	ProcDelay time.Duration
	// ProcQueue bounds the pipeline input queue in packets (zero =
	// unbounded).
	ProcQueue int
	// MissSendToController, when set, forwards table-miss packets to the
	// controller as PacketIn messages (OpenFlow 1.0 default behaviour).
	// When clear, misses are dropped — the behaviour of the untrusted
	// routers in the prototype, whose rules are installed proactively.
	MissSendToController bool
}

// PortCounters tracks per-port traffic, the data the §VI case study reads
// when screening for stray packets.
type PortCounters struct {
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
	RxDropped uint64
}

// Switch is an OpenFlow 1.0 switch node.
type Switch struct {
	cfg   Config
	sched *sim.Scheduler
	ports netem.Ports
	table *openflow.FlowTable
	proc  *netem.Proc

	behavior Behavior
	ctrl     *controllerLink
	nextXid  uint32

	// down is the crash state (lifecycle.go): a crashed switch drops all
	// ingress, transmits nothing, and ignores the control channel.
	down bool
	life LifecycleStats

	blockedIngress map[int]time.Duration // port -> blocked until

	// Port counters live in a dense slice indexed by port for the
	// per-packet Receive/transmit paths; the map handles negative or
	// absurdly large port numbers (hand-crafted test harnesses only).
	portDense []*PortCounters
	portStats map[int]*PortCounters

	// OnTransmit, when non-nil, observes every packet the switch puts on
	// the wire (after adversarial rewriting); the case study uses it as
	// its tcpdump equivalent.
	OnTransmit func(outPort int, pkt *packet.Packet)
}

var _ netem.Node = (*Switch)(nil)

// New creates a switch on the scheduler.
func New(sched *sim.Scheduler, cfg Config) *Switch {
	// blockedIngress and portStats (the sparse port-counter fallback)
	// allocate lazily: nil-map reads, ranges and deletes are all legal,
	// so only the write paths materialise them, and the fluid-tier
	// switches of a scaled fabric stay map-free.
	sw := &Switch{
		cfg:   cfg,
		sched: sched,
		table: openflow.NewFlowTable(sched),
		proc:  netem.NewProc(sched, cfg.ProcDelay, cfg.ProcQueue),
	}
	sw.table.OnRemoved = sw.flowRemoved
	return sw
}

// Name implements netem.Node.
func (sw *Switch) Name() string { return sw.cfg.Name }

// Ports implements netem.Node.
func (sw *Switch) Ports() *netem.Ports { return &sw.ports }

// Scheduler returns the simulation scheduler (used by behaviors).
func (sw *Switch) Scheduler() *sim.Scheduler { return sw.sched }

// Table exposes the flow table for proactive rule installation by trusted
// components and tests.
func (sw *Switch) Table() *openflow.FlowTable { return sw.table }

// SetMissSendToController toggles table-miss punting to the controller
// at runtime (OFPC_FRAG-style switch reconfiguration is out of scope;
// this is the one config bit reactive applications need).
func (sw *Switch) SetMissSendToController(on bool) {
	sw.cfg.MissSendToController = on
}

// SetBehavior installs (or clears) the compromised-forwarding hook.
func (sw *Switch) SetBehavior(b Behavior) {
	sw.behavior = b
	if b != nil {
		b.Attach(sw)
	}
}

// maxDensePort bounds the dense counter slice; ports beyond it (never
// produced by topology construction) fall back to the sparse map.
const maxDensePort = 1024

// PortCounters returns the counters for a port (always non-nil). The
// fast path is a bounds check and a slice index — Receive calls this for
// every packet.
func (sw *Switch) PortCounters(port int) *PortCounters {
	if port >= 0 && port < len(sw.portDense) {
		if pc := sw.portDense[port]; pc != nil {
			return pc
		}
	}
	return sw.portCountersSlow(port)
}

// portCountersSlow materialises the counters for a first-touched port.
func (sw *Switch) portCountersSlow(port int) *PortCounters {
	if port < 0 || port >= maxDensePort {
		pc, ok := sw.portStats[port]
		if !ok {
			if sw.portStats == nil {
				sw.portStats = make(map[int]*PortCounters)
			}
			pc = &PortCounters{}
			sw.portStats[port] = pc
		}
		return pc
	}
	if port >= len(sw.portDense) {
		grown := make([]*PortCounters, port+1)
		copy(grown, sw.portDense)
		sw.portDense = grown
	}
	pc := &PortCounters{}
	sw.portDense[port] = pc
	return pc
}

// BlockIngress drops everything arriving on port until the given duration
// elapses — the compare's advised response to a DoS-ing router (§IV case 2).
// Expired blocks on other ports are pruned here, so a long-running
// simulation under repeated attacks cannot grow the block table without
// bound.
func (sw *Switch) BlockIngress(port int, d time.Duration) {
	now := sw.sched.Now()
	for p, u := range sw.blockedIngress {
		if now >= u {
			delete(sw.blockedIngress, p)
		}
	}
	until := now + d
	if cur, ok := sw.blockedIngress[port]; !ok || until > cur {
		if sw.blockedIngress == nil {
			sw.blockedIngress = make(map[int]time.Duration)
		}
		sw.blockedIngress[port] = until
	}
}

// IngressBlocked reports whether port is currently blocked; an expired
// entry is deleted on the way out.
func (sw *Switch) IngressBlocked(port int) bool {
	until, ok := sw.blockedIngress[port]
	if !ok {
		return false
	}
	if sw.sched.Now() >= until {
		delete(sw.blockedIngress, port)
		return false
	}
	return true
}

// Receive implements netem.Receiver: the start of the ingress pipeline.
func (sw *Switch) Receive(port int, pkt *packet.Packet) {
	pc := sw.PortCounters(port)
	pc.RxPackets++
	pc.RxBytes += uint64(pkt.WireLen())
	if sw.down {
		pc.RxDropped++
		sw.life.RxWhileDown++
		return
	}
	if sw.IngressBlocked(port) {
		pc.RxDropped++
		return
	}
	if !sw.proc.SubmitArgs(switchPipeline, sw, pkt, port) {
		pc.RxDropped++
	}
}

func switchPipeline(a0, a1 any, port int) {
	a0.(*Switch).pipeline(port, a1.(*packet.Packet))
}

// pipeline runs table lookup and action execution for one packet.
func (sw *Switch) pipeline(inPort int, pkt *packet.Packet) {
	var honest []openflow.Action
	if e := sw.table.Lookup(uint16(inPort), pkt); e != nil {
		honest = e.Actions
	} else if sw.cfg.MissSendToController && sw.ctrl != nil {
		sw.sendPacketIn(inPort, pkt, openflow.PacketInNoMatch)
		return
	}

	out := pkt
	actions := honest
	if sw.behavior != nil {
		out, actions = sw.behavior.Forward(inPort, pkt, honest)
	}
	if actions == nil {
		return // drop
	}
	sw.execute(inPort, out, actions)
}

// execute applies an OpenFlow action list: header rewrites take effect for
// subsequent outputs, per OF 1.0 semantics. The incoming packet is treated
// as immutable; a working copy is made before the first rewrite.
func (sw *Switch) execute(inPort int, pkt *packet.Packet, actions []openflow.Action) {
	work := pkt
	modified := false
	for _, a := range actions {
		if a.Type == openflow.ActionOutput {
			sw.output(inPort, int(a.Port), a, work)
			continue
		}
		if !modified {
			work = work.Clone()
			modified = true
		}
		openflow.ApplyHeader(a, work)
	}
}

func (sw *Switch) output(inPort, outPort int, a openflow.Action, pkt *packet.Packet) {
	switch uint16(outPort) {
	case openflow.PortFlood, openflow.PortAll:
		for _, p := range sw.ports.List() {
			if p == inPort && uint16(outPort) == openflow.PortFlood {
				continue
			}
			sw.transmit(p, pkt)
		}
	case openflow.PortInPort:
		sw.transmit(inPort, pkt)
	case openflow.PortController:
		sw.sendPacketIn(inPort, pkt, openflow.PacketInAction)
	case openflow.PortNone, openflow.PortLocal, openflow.PortTable, openflow.PortNormal:
		// Not modelled: drop.
	default:
		sw.transmit(outPort, pkt)
	}
}

func (sw *Switch) transmit(port int, pkt *packet.Packet) {
	if sw.down {
		// A crashed switch puts nothing on the wire — this also silences
		// behaviors whose self-scheduled injections fire mid-outage.
		sw.life.TxWhileDown++
		return
	}
	if sw.OnTransmit != nil {
		sw.OnTransmit(port, pkt)
	}
	if sw.ports.Send(port, pkt) {
		pc := sw.PortCounters(port)
		pc.TxPackets++
		pc.TxBytes += uint64(pkt.WireLen())
	}
}

// InjectLocal lets a behavior or test originate a packet from inside the
// switch, as if its firmware crafted it (§IV: "a router starts crafting
// packets unsolicited").
func (sw *Switch) InjectLocal(outPort int, pkt *packet.Packet) {
	sw.transmit(outPort, pkt)
}

func (sw *Switch) xid() uint32 {
	sw.nextXid++
	return sw.nextXid
}
