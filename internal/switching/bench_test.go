package switching

import (
	"fmt"
	"testing"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
)

// sinkNode discards deliveries so benchmark iterations retain nothing.
type sinkNode struct {
	name  string
	ports netem.Ports
	n     uint64
}

func (s *sinkNode) Name() string                          { return s.name }
func (s *sinkNode) Ports() *netem.Ports                   { return &s.ports }
func (s *sinkNode) Receive(port int, pkt *packet.Packet)  { s.n++ }

// BenchmarkSwitchPipeline measures the full ingress pipeline — Receive,
// port accounting, flow-table lookup, action execution, transmit — for
// rule tables of fat-tree size. With the two-tier classifier the cost
// must stay flat as rules grow.
func BenchmarkSwitchPipeline(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("%drules", n), func(b *testing.B) {
			sched := sim.NewScheduler()
			net := netem.New(sched)
			sw := New(sched, Config{Name: "sw"})
			net.Add(sw)
			in := &sinkNode{name: "in"}
			out := &sinkNode{name: "out"}
			net.Add(in)
			net.Add(out)
			net.Connect(in, 0, sw, 0, netem.LinkConfig{})
			net.Connect(out, 0, sw, 1, netem.LinkConfig{})
			for i := 0; i < n; i++ {
				sw.Table().Add(&openflow.FlowEntry{
					Priority: 100,
					Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(uint32(i))),
					Actions:  []openflow.Action{openflow.Output(1)},
				})
			}
			pkts := make([]*packet.Packet, 16)
			for i := range pkts {
				pkts[i] = testUDP(uint32(i % n))
			}
			// Warm pools and the microflow cache.
			for _, p := range pkts {
				sw.Receive(0, p)
			}
			sched.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Receive(0, pkts[i&15])
				sched.Run()
			}
			b.StopTimer()
			if out.n == 0 {
				b.Fatal("nothing forwarded")
			}
		})
	}
}
