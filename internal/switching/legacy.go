package switching

import (
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
)

// Legacy is a fixed-function router with no control plane: a static
// destination-MAC forwarding table configured out of band, the §IX
// observation that "while we have so far focused on building a secure
// router out of insecure OpenFlow switches, we believe that our approach
// can easily be extended to legacy routers." A Legacy node slots into a
// combiner exactly like an OpenFlow candidate — the compare never knows
// the difference.
type Legacy struct {
	name  string
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	routes map[packet.MAC]uint16

	// Forwarded and Dropped count routed and unrouted packets.
	Forwarded uint64
	Dropped   uint64
}

var _ netem.Node = (*Legacy)(nil)

// NewLegacy creates a legacy router with the given per-packet forwarding
// cost.
func NewLegacy(sched *sim.Scheduler, name string, procDelay time.Duration, procQueue int) *Legacy {
	return &Legacy{
		name:   name,
		sched:  sched,
		proc:   netem.NewProc(sched, procDelay, procQueue),
		routes: make(map[packet.MAC]uint16),
	}
}

// Name implements netem.Node.
func (l *Legacy) Name() string { return l.name }

// Ports implements netem.Node.
func (l *Legacy) Ports() *netem.Ports { return &l.ports }

// AddMACRoute installs static dst-MAC forwarding out of port.
func (l *Legacy) AddMACRoute(mac packet.MAC, port uint16) {
	l.routes[mac] = port
}

// Receive implements netem.Receiver.
func (l *Legacy) Receive(port int, pkt *packet.Packet) {
	if !l.proc.SubmitArgs(legacyForward, l, pkt, 0) {
		l.Dropped++
	}
}

func legacyForward(a0, a1 any, _ int) {
	a0.(*Legacy).forward(a1.(*packet.Packet))
}

func (l *Legacy) forward(pkt *packet.Packet) {
	out, ok := l.routes[pkt.Eth.Dst]
	if !ok {
		l.Dropped++
		return
	}
	if l.ports.Send(int(out), pkt) {
		l.Forwarded++
	}
}

// AddMACRoute gives Switch the same out-of-band provisioning surface as
// Legacy, so heterogeneous candidate sets can be configured uniformly.
func (sw *Switch) AddMACRoute(mac packet.MAC, port uint16) {
	sw.table.Add(&openflow.FlowEntry{
		Priority: 100,
		Match:    openflow.MatchAll().WithDlDst(mac),
		Actions:  []openflow.Action{openflow.Output(port)},
	})
}

// MACRouter is the uniform provisioning surface shared by OpenFlow and
// legacy candidates.
type MACRouter interface {
	netem.Node
	AddMACRoute(mac packet.MAC, port uint16)
}

var (
	_ MACRouter = (*Switch)(nil)
	_ MACRouter = (*Legacy)(nil)
)
