package switching

import (
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
)

// endpointNode is a minimal test node capturing deliveries.
type endpointNode struct {
	name  string
	ports netem.Ports
	got   []*packet.Packet
	gotOn []int
}

func (e *endpointNode) Name() string        { return e.name }
func (e *endpointNode) Ports() *netem.Ports { return &e.ports }
func (e *endpointNode) Receive(port int, pkt *packet.Packet) {
	e.got = append(e.got, pkt)
	e.gotOn = append(e.gotOn, port)
}

func testUDP(dst uint32) *packet.Packet {
	return packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1000},
		packet.Endpoint{MAC: packet.HostMAC(dst), IP: packet.HostIP(dst), Port: 2000},
		[]byte("payload"),
	)
}

// testbed: h0 -- sw -- h1, h2 on ports 0..2.
func testbed(t *testing.T) (*sim.Scheduler, *Switch, []*endpointNode) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw", DatapathID: 1, ProcDelay: time.Microsecond})
	net.Add(sw)
	hosts := make([]*endpointNode, 3)
	for i := range hosts {
		hosts[i] = &endpointNode{name: "h" + string(rune('0'+i))}
		net.Add(hosts[i])
		net.Connect(hosts[i], 0, sw, i, netem.LinkConfig{Delay: time.Microsecond})
	}
	return sched, sw, hosts
}

func TestSwitchForwardsByFlowTable(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[1].got) != 1 {
		t.Fatalf("h1 got %d packets, want 1", len(hosts[1].got))
	}
	if len(hosts[2].got) != 0 {
		t.Fatal("h2 got a packet it should not have")
	}
	pc := sw.PortCounters(1)
	if pc.TxPackets != 1 {
		t.Fatalf("port 1 TxPackets = %d, want 1", pc.TxPackets)
	}
}

func TestSwitchDropsOnMissWithoutController(t *testing.T) {
	sched, sw, hosts := testbed(t)
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[1].got)+len(hosts[2].got) != 0 {
		t.Fatal("table miss was forwarded")
	}
	if sw.Table().Misses != 1 {
		t.Fatalf("Misses = %d, want 1", sw.Table().Misses)
	}
}

func TestSwitchFloodAction(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 1,
		Match:    openflow.MatchAll(),
		Actions:  []openflow.Action{openflow.Output(openflow.PortFlood)},
	})
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[0].got) != 0 {
		t.Fatal("flood echoed out the ingress port")
	}
	if len(hosts[1].got) != 1 || len(hosts[2].got) != 1 {
		t.Fatalf("flood delivered %d/%d, want 1/1", len(hosts[1].got), len(hosts[2].got))
	}
}

func TestSwitchHeaderRewriteThenOutput(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions: []openflow.Action{
			openflow.Output(2), // pre-rewrite copy
			openflow.SetVLANVID(42),
			openflow.Output(1), // post-rewrite copy
		},
	})
	orig := testUDP(2)
	hosts[0].ports.Send(0, orig)
	sched.Run()
	if hosts[2].got[0].Eth.VLAN != nil {
		t.Fatal("pre-rewrite output was tagged")
	}
	if hosts[1].got[0].Eth.VLAN == nil || hosts[1].got[0].Eth.VLAN.VID != 42 {
		t.Fatal("post-rewrite output not tagged")
	}
	if orig.Eth.VLAN != nil {
		t.Fatal("switch mutated the original packet (immutability violated)")
	}
}

func TestSwitchIngressBlock(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 1, Match: openflow.MatchAll(),
		Actions: []openflow.Action{openflow.Output(1)},
	})
	sw.BlockIngress(0, 10*time.Millisecond)
	hosts[0].ports.Send(0, testUDP(2))
	sched.RunFor(5 * time.Millisecond)
	if len(hosts[1].got) != 0 {
		t.Fatal("blocked ingress forwarded")
	}
	if sw.PortCounters(0).RxDropped != 1 {
		t.Fatalf("RxDropped = %d, want 1", sw.PortCounters(0).RxDropped)
	}
	// After expiry the port works again.
	sched.RunFor(6 * time.Millisecond)
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[1].got) != 1 {
		t.Fatal("port still blocked after expiry")
	}
}

func TestSwitchProcessingDelay(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw", ProcDelay: 100 * time.Microsecond})
	net.Add(sw)
	a, b := &endpointNode{name: "a"}, &endpointNode{name: "b"}
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})
	net.Connect(b, 0, sw, 1, netem.LinkConfig{})
	sw.Table().Add(&openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Actions: []openflow.Action{openflow.Output(1)}})
	a.ports.Send(0, testUDP(2))
	sched.Run()
	if sched.Now() != 100*time.Microsecond {
		t.Fatalf("delivery completed at %v, want exactly the pipeline delay", sched.Now())
	}
}

func TestSwitchOnTransmitTap(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.Table().Add(&openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Actions: []openflow.Action{openflow.Output(1)}})
	var tapped []int
	sw.OnTransmit = func(outPort int, pkt *packet.Packet) { tapped = append(tapped, outPort) }
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(tapped) != 1 || tapped[0] != 1 {
		t.Fatalf("tap saw %v, want [1]", tapped)
	}
}

// recordingController captures controller-plane traffic.
type recordingController struct {
	connected    []uint64
	packetIns    []openflow.PacketIn
	onPacketIn   func(conn *Conn, pin openflow.PacketIn)
	onConnected  func(features openflow.FeaturesReply)
	statsReplies []openflow.StatsReply
	others       []openflow.Message
}

func (rc *recordingController) SwitchConnected(conn *Conn, features openflow.FeaturesReply) {
	rc.connected = append(rc.connected, features.DatapathID)
	if rc.onConnected != nil {
		rc.onConnected(features)
	}
}

func (rc *recordingController) Handle(conn *Conn, msg openflow.Message, xid uint32) {
	switch v := msg.(type) {
	case openflow.PacketIn:
		rc.packetIns = append(rc.packetIns, v)
		if rc.onPacketIn != nil {
			rc.onPacketIn(conn, v)
		}
	case openflow.StatsReply:
		rc.statsReplies = append(rc.statsReplies, v)
	default:
		rc.others = append(rc.others, msg)
	}
}

func TestControlChannelHandshakeAndPacketIn(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw", DatapathID: 42, MissSendToController: true})
	net.Add(sw)
	a, b := &endpointNode{name: "a"}, &endpointNode{name: "b"}
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})
	net.Connect(b, 0, sw, 1, netem.LinkConfig{})

	rc := &recordingController{}
	rc.onPacketIn = func(conn *Conn, pin openflow.PacketIn) {
		// React like a controller: install a rule and push the packet out.
		conn.InstallFlow(openflow.FlowMod{
			Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
			Priority: 5,
			Actions:  []openflow.Action{openflow.Output(1)},
		})
		conn.PacketOut(1, pin.Data)
	}
	const latency = 200 * time.Microsecond
	sw.ConnectController(rc, latency)
	sched.RunFor(10 * time.Millisecond)
	if len(rc.connected) != 1 || rc.connected[0] != 42 {
		t.Fatalf("handshake: connected=%v", rc.connected)
	}

	// First packet: miss → controller → rule installed + packet out.
	a.ports.Send(0, testUDP(2))
	sched.RunFor(10 * time.Millisecond)
	if len(rc.packetIns) != 1 {
		t.Fatalf("packet-ins = %d, want 1", len(rc.packetIns))
	}
	if rc.packetIns[0].InPort != 0 {
		t.Fatalf("packet-in in_port = %d, want 0", rc.packetIns[0].InPort)
	}
	if len(b.got) != 1 {
		t.Fatalf("b got %d packets after packet-out, want 1", len(b.got))
	}

	// Second packet: hardware path, no controller involvement.
	a.ports.Send(0, testUDP(2))
	sched.RunFor(10 * time.Millisecond)
	if len(rc.packetIns) != 1 {
		t.Fatal("second packet still went to the controller")
	}
	if len(b.got) != 2 {
		t.Fatalf("b got %d packets, want 2", len(b.got))
	}
}

func TestControlChannelLatency(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw", MissSendToController: true})
	net.Add(sw)
	a := &endpointNode{name: "a"}
	net.Add(a)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})

	var arrival time.Duration
	rc := &recordingController{}
	rc.onPacketIn = func(conn *Conn, pin openflow.PacketIn) { arrival = sched.Now() }
	const latency = 500 * time.Microsecond
	sw.ConnectController(rc, latency)
	sched.Run()

	sent := sched.Now()
	a.ports.Send(0, testUDP(9))
	sched.Run()
	if got := arrival - sent; got != latency {
		t.Fatalf("packet-in arrived after %v, want the channel latency %v", got, latency)
	}
}

func TestFlowStatsOverControlChannel(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw", DatapathID: 7})
	net.Add(sw)
	a, b := &endpointNode{name: "a"}, &endpointNode{name: "b"}
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})
	net.Connect(b, 0, sw, 1, netem.LinkConfig{})

	rc := &recordingController{}
	conn := sw.ConnectController(rc, 100*time.Microsecond)
	sched.Run()

	conn.InstallFlow(openflow.FlowMod{
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Priority: 9,
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	sched.Run()
	for i := 0; i < 4; i++ {
		a.ports.Send(0, testUDP(2))
	}
	sched.Run()

	conn.Send(openflow.StatsRequest{
		StatsType: openflow.StatsFlow,
		Flow:      &openflow.FlowStatsRequest{Match: openflow.MatchAll(), OutPort: openflow.PortNone},
	})
	sched.Run()
	if len(rc.statsReplies) != 1 {
		t.Fatalf("stats replies = %d, want 1", len(rc.statsReplies))
	}
	fs := rc.statsReplies[0].Flow
	if len(fs) != 1 || fs[0].PacketCount != 4 {
		t.Fatalf("flow stats = %+v, want one entry with 4 packets", fs)
	}

	// Port stats too.
	conn.Send(openflow.StatsRequest{StatsType: openflow.StatsPort, Port: &openflow.PortStatsRequest{PortNo: openflow.PortNone}})
	sched.Run()
	if len(rc.statsReplies) != 2 {
		t.Fatalf("stats replies = %d, want 2", len(rc.statsReplies))
	}
	var tx uint64
	for _, ps := range rc.statsReplies[1].Port {
		tx += ps.TxPackets
	}
	if tx != 4 {
		t.Fatalf("port stats TxPackets total = %d, want 4", tx)
	}
}

func TestFlowDeleteViaFlowMod(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw"})
	net.Add(sw)
	a := &endpointNode{name: "a"}
	net.Add(a)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})
	rc := &recordingController{}
	conn := sw.ConnectController(rc, 0)
	sched.Run()
	conn.InstallFlow(openflow.FlowMod{Match: openflow.MatchAll(), Priority: 3, Actions: []openflow.Action{openflow.Output(0)}})
	sched.Run()
	if sw.Table().Len() != 1 {
		t.Fatal("flow not installed")
	}
	conn.Send(openflow.FlowMod{Match: openflow.MatchAll(), Command: openflow.FlowDelete, OutPort: openflow.PortNone})
	sched.Run()
	if sw.Table().Len() != 0 {
		t.Fatal("flow not deleted")
	}
}

func TestEchoOverControlChannel(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw"})
	net.Add(sw)
	echoed := false
	rc := &recordingController{}
	conn := sw.ConnectController(rc, 50*time.Microsecond)
	sched.Run()
	// Hijack Handle via a wrapper is overkill; instead check via counters:
	before := conn.ToController
	conn.Send(openflow.EchoRequest{Data: []byte("hi")})
	sched.Run()
	if conn.ToController != before+1 {
		t.Fatal("no echo reply came back")
	}
	_ = echoed
}

func TestFlowRemovedNotifiesController(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw"})
	net.Add(sw)
	a := &endpointNode{name: "a"}
	net.Add(a)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})

	var removed []openflow.FlowRemoved
	rc := &recordingController{}
	conn := sw.ConnectController(rc, 50*time.Microsecond)
	sched.Run()

	// Wrap Handle to capture FlowRemoved via the recording controller.
	conn.InstallFlow(openflow.FlowMod{
		Match:       openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Priority:    4,
		IdleTimeout: 1, // second
		Actions:     []openflow.Action{openflow.Output(0)},
	})
	sched.RunFor(time.Millisecond) // deliver the FlowMod
	if sw.Table().Len() != 1 {
		t.Fatal("flow not installed")
	}
	// Let it idle out: expiry is timer-driven, no sweep needed — the
	// FlowRemoved fires at the timeout's virtual time.
	sched.RunUntil(sched.Now() + 1500*time.Millisecond)
	sched.Run()
	_ = removed
	if sw.Table().Len() != 0 {
		t.Fatal("flow did not expire")
	}
	found := false
	for _, m := range rc.others {
		if fr, ok := m.(openflow.FlowRemoved); ok {
			if fr.Reason != openflow.RemovedIdleTimeout {
				t.Fatalf("reason = %v, want idle timeout", fr.Reason)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("controller never received FlowRemoved")
	}
}

func TestPacketOutGarbageYieldsError(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw"})
	net.Add(sw)
	a := &endpointNode{name: "a"}
	net.Add(a)
	net.Connect(a, 0, sw, 0, netem.LinkConfig{})
	rc := &recordingController{}
	conn := sw.ConnectController(rc, 0)
	sched.Run()

	conn.Send(openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   openflow.PortNone,
		Actions:  []openflow.Action{openflow.Output(0)},
		Data:     []byte{0xde, 0xad}, // not a parseable frame
	})
	sched.Run()
	gotError := false
	for _, m := range rc.others {
		if _, ok := m.(openflow.Error); ok {
			gotError = true
		}
	}
	if !gotError {
		t.Fatal("switch did not report an Error for garbage packet-out data")
	}
	if len(a.got) != 0 {
		t.Fatal("garbage was transmitted")
	}
}

func TestFeaturesReplyListsPorts(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := New(sched, Config{Name: "sw", DatapathID: 3})
	net.Add(sw)
	nodes := make([]*endpointNode, 3)
	for i := range nodes {
		nodes[i] = &endpointNode{name: string(rune('a' + i))}
		net.Add(nodes[i])
		net.Connect(nodes[i], 0, sw, i*2, netem.LinkConfig{}) // ports 0, 2, 4
	}
	var features openflow.FeaturesReply
	rc := &recordingController{}
	rc.onConnected = func(fr openflow.FeaturesReply) { features = fr }
	sw.ConnectController(rc, 0)
	sched.Run()

	if features.DatapathID != 3 {
		t.Fatalf("dpid = %d, want 3", features.DatapathID)
	}
	if len(features.Ports) != 3 {
		t.Fatalf("ports = %d, want 3", len(features.Ports))
	}
	want := []uint16{0, 2, 4}
	for i, p := range features.Ports {
		if p.PortNo != want[i] {
			t.Fatalf("port %d = %d, want %d", i, p.PortNo, want[i])
		}
	}
}

func TestLegacyRouterForwards(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	lr := NewLegacy(sched, "legacy", time.Microsecond, 10)
	a, b := &endpointNode{name: "a"}, &endpointNode{name: "b"}
	net.Add(lr)
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, lr, 0, netem.LinkConfig{})
	net.Connect(b, 0, lr, 1, netem.LinkConfig{})
	lr.AddMACRoute(packet.HostMAC(2), 1)

	a.ports.Send(0, testUDP(2)) // routed
	a.ports.Send(0, testUDP(9)) // no route: dropped
	sched.Run()

	if len(b.got) != 1 {
		t.Fatalf("b received %d, want 1", len(b.got))
	}
	if lr.Forwarded != 1 || lr.Dropped != 1 {
		t.Fatalf("forwarded=%d dropped=%d, want 1/1", lr.Forwarded, lr.Dropped)
	}
}

func TestLegacyRouterQueueOverflow(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	lr := NewLegacy(sched, "legacy", time.Millisecond, 2)
	a, b := &endpointNode{name: "a"}, &endpointNode{name: "b"}
	net.Add(lr)
	net.Add(a)
	net.Add(b)
	net.Connect(a, 0, lr, 0, netem.LinkConfig{})
	net.Connect(b, 0, lr, 1, netem.LinkConfig{})
	lr.AddMACRoute(packet.HostMAC(2), 1)
	for i := 0; i < 10; i++ {
		a.ports.Send(0, testUDP(2))
	}
	sched.Run()
	if len(b.got) != 2 {
		t.Fatalf("b received %d, want 2 (queue limit)", len(b.got))
	}
	if lr.Dropped != 8 {
		t.Fatalf("Dropped = %d, want 8", lr.Dropped)
	}
}

func TestSwitchAddMACRoute(t *testing.T) {
	sched, sw, hosts := testbed(t)
	sw.AddMACRoute(packet.HostMAC(2), 1)
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()
	if len(hosts[1].got) != 1 {
		t.Fatal("AddMACRoute rule did not forward")
	}
}

func TestPortCountersDenseSparseAndStable(t *testing.T) {
	sched, sw, hosts := testbed(t)
	// Pointers must be stable across later first-touches of other ports,
	// dense or sparse: callers hold them while traffic keeps counting.
	pc1 := sw.PortCounters(1)
	neg := sw.PortCounters(-3)
	big := sw.PortCounters(99999)
	sw.PortCounters(900) // grow the dense slice after pc1 was handed out

	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	hosts[0].ports.Send(0, testUDP(2))
	sched.Run()

	if pc1 != sw.PortCounters(1) || neg != sw.PortCounters(-3) || big != sw.PortCounters(99999) {
		t.Fatal("PortCounters pointer not stable across calls")
	}
	if pc1.TxPackets != 1 {
		t.Fatalf("TxPackets via retained pointer = %d, want 1", pc1.TxPackets)
	}
	if neg.RxPackets != 0 || big.RxPackets != 0 {
		t.Fatal("sparse counters spuriously counted")
	}
}

func TestBlockedIngressPruned(t *testing.T) {
	sched, sw, _ := testbed(t)
	sw.BlockIngress(0, time.Millisecond)
	sw.BlockIngress(1, time.Minute)
	if !sw.IngressBlocked(0) || !sw.IngressBlocked(1) {
		t.Fatal("fresh blocks not effective")
	}
	sched.RunUntil(2 * time.Millisecond)
	if sw.IngressBlocked(0) {
		t.Fatal("expired block still effective")
	}
	if _, ok := sw.blockedIngress[0]; ok {
		t.Fatal("IngressBlocked left the expired entry in the table")
	}
	// Blocking a new port prunes other expired entries too.
	sched.RunUntil(2 * time.Minute)
	sw.BlockIngress(2, time.Second)
	if _, ok := sw.blockedIngress[1]; ok {
		t.Fatal("BlockIngress did not prune the expired entry")
	}
	if len(sw.blockedIngress) != 1 {
		t.Fatalf("blockedIngress holds %d entries, want 1", len(sw.blockedIngress))
	}
}
