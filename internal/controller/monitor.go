package controller

import (
	"time"

	"netco/internal/openflow"
	"netco/internal/sim"
	"netco/internal/switching"
)

// Monitor is a control-plane application that periodically polls flow and
// port statistics from every connected switch — the automated version of
// the screening the §VI case study performs by hand ("monitoring the flow
// table counters of all switches"). It composes with a forwarding app via
// Apps.
type Monitor struct {
	// Interval between polls (default 500 ms).
	Interval time.Duration
	// Forward, when non-nil, receives SwitchConnected and non-stats
	// messages, so Monitor can wrap a forwarding application.
	Forward switching.Controller
	// OnUpdate, when non-nil, fires after each snapshot refresh.
	OnUpdate func(dpid uint64, snap StatsSnapshot)

	sched   *sim.Scheduler
	snaps   map[uint64]StatsSnapshot
	stopped bool
}

// StatsSnapshot is the latest statistics view of one switch.
type StatsSnapshot struct {
	At    time.Duration
	Ports []openflow.PortStats
	Flows []openflow.FlowStats
}

// TxPackets sums transmitted packets across ports.
func (s StatsSnapshot) TxPackets() uint64 {
	var total uint64
	for _, p := range s.Ports {
		total += p.TxPackets
	}
	return total
}

// PortTx returns the transmit counter of one port (0 if absent).
func (s StatsSnapshot) PortTx(port uint16) uint64 {
	for _, p := range s.Ports {
		if p.PortNo == port {
			return p.TxPackets
		}
	}
	return 0
}

var _ switching.Controller = (*Monitor)(nil)

// NewMonitor creates a stats poller on the scheduler, optionally wrapping
// a forwarding application.
func NewMonitor(sched *sim.Scheduler, forward switching.Controller) *Monitor {
	return &Monitor{
		Interval: 500 * time.Millisecond,
		Forward:  forward,
		sched:    sched,
		snaps:    make(map[uint64]StatsSnapshot),
	}
}

// Snapshot returns the latest statistics for a datapath.
func (m *Monitor) Snapshot(dpid uint64) StatsSnapshot { return m.snaps[dpid] }

// Close stops future polls.
func (m *Monitor) Close() { m.stopped = true }

// SwitchConnected implements switching.Controller.
func (m *Monitor) SwitchConnected(conn *switching.Conn, features openflow.FeaturesReply) {
	if m.Forward != nil {
		m.Forward.SwitchConnected(conn, features)
	}
	m.poll(conn)
}

func (m *Monitor) poll(conn *switching.Conn) {
	if m.stopped {
		return
	}
	conn.Send(openflow.StatsRequest{
		StatsType: openflow.StatsPort,
		Port:      &openflow.PortStatsRequest{PortNo: openflow.PortNone},
	})
	conn.Send(openflow.StatsRequest{
		StatsType: openflow.StatsFlow,
		Flow:      &openflow.FlowStatsRequest{Match: openflow.MatchAll(), OutPort: openflow.PortNone},
	})
	m.sched.After(m.Interval, func() { m.poll(conn) })
}

// Handle implements switching.Controller.
func (m *Monitor) Handle(conn *switching.Conn, msg openflow.Message, xid uint32) {
	rep, ok := msg.(openflow.StatsReply)
	if !ok {
		if m.Forward != nil {
			m.Forward.Handle(conn, msg, xid)
		}
		return
	}
	snap := m.snaps[conn.DatapathID()]
	snap.At = m.sched.Now()
	switch rep.StatsType {
	case openflow.StatsPort:
		snap.Ports = rep.Port
	case openflow.StatsFlow:
		snap.Flows = rep.Flow
	}
	m.snaps[conn.DatapathID()] = snap
	if m.OnUpdate != nil {
		m.OnUpdate(conn.DatapathID(), snap)
	}
}
