package controller

import (
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/switching"
)

// StaticRouter proactively installs MAC-destination routes on connect —
// the prototype's forwarding scheme ("the only matched header field is the
// MAC destination address", §IV). Routes are declared per datapath before
// the switches connect.
type StaticRouter struct {
	// Priority of installed rules.
	Priority uint16

	routes map[uint64][]Route
}

// Route is one MAC-destination forwarding rule.
type Route struct {
	DstMAC  packet.MAC
	OutPort uint16
}

var _ switching.Controller = (*StaticRouter)(nil)

// NewStaticRouter returns an empty static routing app.
func NewStaticRouter() *StaticRouter {
	return &StaticRouter{Priority: 100, routes: make(map[uint64][]Route)}
}

// AddRoute declares that datapath forwards frames for dst out of port.
func (sr *StaticRouter) AddRoute(datapathID uint64, dst packet.MAC, port uint16) {
	sr.routes[datapathID] = append(sr.routes[datapathID], Route{DstMAC: dst, OutPort: port})
}

// SwitchConnected implements switching.Controller: it pushes the declared
// routes as flow rules.
func (sr *StaticRouter) SwitchConnected(conn *switching.Conn, features openflow.FeaturesReply) {
	for _, r := range sr.routes[features.DatapathID] {
		conn.InstallFlow(openflow.FlowMod{
			Match:    openflow.MatchAll().WithDlDst(r.DstMAC),
			Priority: sr.Priority,
			Actions:  []openflow.Action{openflow.Output(r.OutPort)},
		})
	}
}

// Handle implements switching.Controller. Static routing drops table
// misses (there is nothing to learn).
func (sr *StaticRouter) Handle(conn *switching.Conn, msg openflow.Message, xid uint32) {}
