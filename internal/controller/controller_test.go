package controller_test

import (
	"testing"
	"time"

	"netco/internal/controller"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

const ctrlLatency = 100 * time.Microsecond

var lanLink = netem.LinkConfig{Bandwidth: 1e9, Delay: 5 * time.Microsecond, QueueLimit: 100}

func TestLearningSwitchLearnsAndInstalls(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw", DatapathID: 1, MissSendToController: true})
	net.Add(sw)
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, traffic.HostPort, sw, 0, lanLink)
	net.Connect(h2, traffic.HostPort, sw, 1, lanLink)

	ls := controller.NewLearningSwitch()
	sw.ConnectController(ls, ctrlLatency)
	sched.RunFor(10 * time.Millisecond)

	p := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 1})
	var res traffic.PingResult
	p.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(2 * time.Second)

	if res.Received != 10 {
		t.Fatalf("received %d of 10", res.Received)
	}
	// After learning both MACs the data path is hardware-only: exactly
	// two floods (first request, first reply) hit the controller, plus
	// possibly the packets racing the rule installation.
	if ls.PacketIns > 6 {
		t.Fatalf("PacketIns = %d; learning did not stick", ls.PacketIns)
	}
	ports := ls.KnownPorts(1)
	if ports[h1.MAC()] != 0 || ports[h2.MAC()] != 1 {
		t.Fatalf("learned table %v", ports)
	}
	if sw.Table().Len() == 0 {
		t.Fatal("no flows installed")
	}
}

func TestStaticRouterInstallsOnConnect(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw", DatapathID: 5})
	net.Add(sw)
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, traffic.HostPort, sw, 0, lanLink)
	net.Connect(h2, traffic.HostPort, sw, 1, lanLink)

	sr := controller.NewStaticRouter()
	sr.AddRoute(5, h1.MAC(), 0)
	sr.AddRoute(5, h2.MAC(), 1)
	sw.ConnectController(sr, ctrlLatency)
	sched.RunFor(10 * time.Millisecond)

	if sw.Table().Len() != 2 {
		t.Fatalf("flow table has %d entries, want 2", sw.Table().Len())
	}
	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 5e6, PayloadSize: 500})
	src.Start()
	sched.RunFor(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(10 * time.Millisecond)
	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d", got, src.Sent)
	}
}

// buildPOX3 assembles the POX3 scenario: trusted edges are OpenFlow
// switches whose compare runs on the controller.
func buildPOX3(t *testing.T, k int) (*sim.Scheduler, *controller.CompareApp, *traffic.Host, *traffic.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)

	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	s1 := switching.New(sched, switching.Config{Name: "s1", DatapathID: 1, ProcDelay: time.Microsecond})
	s2 := switching.New(sched, switching.Config{Name: "s2", DatapathID: 2, ProcDelay: time.Microsecond})
	net.Add(h1)
	net.Add(h2)
	net.Add(s1)
	net.Add(s2)

	// Port 0 of each edge faces its host; ports 1..k face the routers.
	net.Connect(h1, traffic.HostPort, s1, 0, lanLink)
	net.Connect(h2, traffic.HostPort, s2, 0, lanLink)
	routerPorts := make([]uint16, 0, k)
	for i := 0; i < k; i++ {
		r := switching.New(sched, switching.Config{Name: "r" + string(rune('0'+i)), ProcDelay: time.Microsecond})
		net.Add(r)
		net.Connect(s1, 1+i, r, 0, lanLink)
		net.Connect(s2, 1+i, r, 1, lanLink)
		r.Table().Add(&openflow.FlowEntry{
			Priority: 100, Match: openflow.MatchAll().WithDlDst(h2.MAC()),
			Actions: []openflow.Action{openflow.Output(1)},
		})
		r.Table().Add(&openflow.FlowEntry{
			Priority: 100, Match: openflow.MatchAll().WithDlDst(h1.MAC()),
			Actions: []openflow.Action{openflow.Output(0)},
		})
		routerPorts = append(routerPorts, uint16(1+i))
	}

	app := controller.NewCompareApp(sched, controller.CompareAppConfig{
		Engine:      core.Config{HoldTimeout: 20 * time.Millisecond},
		PerCopyCost: 50 * time.Microsecond,
	})
	app.ConfigureDatapath(1, 0, routerPorts, map[packet.MAC]uint16{h1.MAC(): 0})
	app.ConfigureDatapath(2, 0, routerPorts, map[packet.MAC]uint16{h2.MAC(): 0})
	s1.ConnectController(app, ctrlLatency)
	s2.ConnectController(app, ctrlLatency)
	sched.RunFor(10 * time.Millisecond)
	return sched, app, h1, h2
}

func TestCompareAppEndToEnd(t *testing.T) {
	sched, app, h1, h2 := buildPOX3(t, 3)

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 5e6, PayloadSize: 500})
	src.Start()
	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 {
		t.Fatalf("%d duplicates leaked", st.Duplicates)
	}
	if app.PacketIns == 0 || app.PacketOuts == 0 {
		t.Fatalf("controller path unused: ins=%d outs=%d", app.PacketIns, app.PacketOuts)
	}
	// Every copy rides the controller channel: 3 per packet.
	if app.PacketIns != 3*src.Sent {
		t.Fatalf("PacketIns = %d, want %d", app.PacketIns, 3*src.Sent)
	}
}

func TestCompareAppPingSlowerThanDataPlaneCompare(t *testing.T) {
	// POX3's RTT must exceed a data-plane compare's by roughly the two
	// extra control-channel crossings — the paper's §V-B explanation.
	sched, _, h1, h2 := buildPOX3(t, 3)
	p := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 20, ID: 7})
	var res traffic.PingResult
	p.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(3 * time.Second)

	if res.Received != 20 {
		t.Fatalf("received %d of 20", res.Received)
	}
	rtt := res.RTT.MeanDuration()
	// Two controller detours per direction ≈ 4 × latency + 4 × cost ≈
	// 0.8 ms extra at minimum.
	if rtt < 500*time.Microsecond {
		t.Fatalf("POX3 RTT = %v — too fast to be the controller path", rtt)
	}
}

func TestMonitorCollectsStats(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw", DatapathID: 9, MissSendToController: true})
	net.Add(sw)
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, traffic.HostPort, sw, 0, lanLink)
	net.Connect(h2, traffic.HostPort, sw, 1, lanLink)

	// Monitor wraps a learning switch: forwarding still works, stats
	// accumulate on the side.
	mon := controller.NewMonitor(sched, controller.NewLearningSwitch())
	updates := 0
	mon.OnUpdate = func(dpid uint64, snap controller.StatsSnapshot) { updates++ }
	sw.ConnectController(mon, ctrlLatency)
	sched.RunFor(20 * time.Millisecond)

	// Bidirectional warm-up so the learning switch installs rules.
	pinger := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 5, ID: 2})
	pinger.Run(nil)
	sched.RunFor(200 * time.Millisecond)

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 5e6, PayloadSize: 500})
	src.Start()
	sched.RunFor(2 * time.Second)
	src.Stop()
	mon.Close()
	sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("forwarding broken under the monitor: %d of %d", got, src.Sent)
	}
	snap := mon.Snapshot(9)
	if snap.At == 0 {
		t.Fatal("no snapshot collected")
	}
	if snap.TxPackets() == 0 {
		t.Fatal("port counters empty")
	}
	// The learned flow rule's counter tracks the traffic.
	var flowPackets uint64
	for _, f := range snap.Flows {
		flowPackets += f.PacketCount
	}
	if flowPackets == 0 {
		t.Fatal("flow counters empty")
	}
	if updates < 4 {
		t.Fatalf("updates = %d, want several polls over 2s", updates)
	}
	// Screening use: most traffic left via h2's port.
	if snap.PortTx(1) < snap.PortTx(0) {
		t.Fatalf("port tx skew wrong: port1=%d port0=%d", snap.PortTx(1), snap.PortTx(0))
	}
}
