package controller_test

import (
	"testing"
	"time"

	"netco/internal/controller"
	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// buildRoutedFatTree connects every switch of a 4-ary fat tree to an
// L2Routing controller and attaches two hosts in different pods.
func buildRoutedFatTree(t *testing.T) (*sim.Scheduler, *controller.L2Routing, *traffic.Host, *traffic.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 1e9, Delay: 5 * time.Microsecond, QueueLimit: 200}
	ft := topo.BuildFatTree(net, topo.FatTreeParams{
		Arity:           4,
		Link:            link,
		SwitchProcDelay: time.Microsecond,
		SwitchProcQueue: 1000,
	})

	// Hosts attach before the switches connect so the host ports appear
	// in the features replies (real switches would send PortStatus).
	ha := traffic.NewHost(sched, "ha", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	hb := traffic.NewHost(sched, "hb", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(ha)
	net.Add(hb)
	net.Connect(ha, traffic.HostPort, ft.Pods[0].Edge[0], ft.EdgeHostPortOf(0), link)
	net.Connect(hb, traffic.HostPort, ft.Pods[2].Edge[1], ft.EdgeHostPortOf(1), link)

	app := controller.NewL2Routing(sched)
	for _, c := range ft.Cores {
		c.SetMissSendToController(true)
		c.ConnectController(app, 100*time.Microsecond)
	}
	for _, pod := range ft.Pods {
		for _, sw := range pod.Agg {
			sw.SetMissSendToController(true)
			sw.ConnectController(app, 100*time.Microsecond)
		}
		for _, sw := range pod.Edge {
			sw.SetMissSendToController(true)
			sw.ConnectController(app, 100*time.Microsecond)
		}
	}

	// Let handshakes finish and discovery converge (a few probe rounds).
	sched.RunFor(1200 * time.Millisecond)
	return sched, app, ha, hb
}

func TestDiscoveryLearnsFatTreeTopology(t *testing.T) {
	sched, app, _, _ := buildRoutedFatTree(t)
	defer app.Close()
	_ = sched

	d := app.Discovery()
	if got := len(d.Dpids()); got != 20 {
		t.Fatalf("connected switches = %d, want 20", got)
	}
	// A 4-ary fat tree has 32 inter-switch links: 16 edge↔agg + 16
	// agg↔core. Every one must be discovered in both directions.
	links := 0
	for _, dpid := range d.Dpids() {
		links += len(d.Neighbors(dpid))
	}
	if links != 64 {
		t.Fatalf("directed link entries = %d, want 64", links)
	}
	// Host-facing ports are edge ports.
	if !d.IsEdgePort(controller.PortID{Dpid: dpidOfEdge(0, 0), Port: 0}) {
		t.Fatal("host port misclassified as inter-switch")
	}
}

// dpidOfEdge mirrors BuildFatTree's dpid assignment: cores first (1..4),
// then per pod: agg, agg, edge, edge.
func dpidOfEdge(pod, idx int) uint64 {
	return uint64(4 + pod*4 + 2 + idx + 1)
}

func TestL2RoutingCrossPodTraffic(t *testing.T) {
	sched, app, ha, hb := buildRoutedFatTree(t)
	defer app.Close()

	// ARP first — the controller floods it to edge ports only.
	okCh := false
	ha.Resolve(hb.IP(), func(mac packet.MAC, ok bool) { okCh = ok && mac == hb.MAC() })
	sched.RunFor(200 * time.Millisecond)
	if !okCh {
		t.Fatal("ARP across the routed fabric failed")
	}

	// Ping and UDP ride shortest paths installed on demand.
	pinger := traffic.NewPinger(ha, hb.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 3})
	var res traffic.PingResult
	pinger.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(2 * time.Second)
	if res.Received != 10 {
		t.Fatalf("ping %d/10 across pods", res.Received)
	}

	sink := traffic.NewUDPSink(hb, 5001)
	src := traffic.NewUDPSource(ha, 4001, hb.Endpoint(5001), traffic.UDPSourceConfig{Rate: 50e6, PayloadSize: 1200})
	src.Start()
	sched.RunFor(500 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 {
		t.Fatalf("udp %d/%d dups=%d", st.Unique, src.Sent, st.Duplicates)
	}
	if app.PathsInstalled == 0 {
		t.Fatal("no shortest paths were installed")
	}
	// Host locations were learned at the right edges.
	if loc, ok := app.HostLocation(ha.MAC()); !ok || loc.Port != 0 {
		t.Fatalf("ha location %+v", loc)
	}
	if loc, ok := app.HostLocation(hb.MAC()); !ok || loc.Port != 1 {
		t.Fatalf("hb location %+v", loc)
	}
}

func TestL2RoutingSteadyStateBypassesController(t *testing.T) {
	sched, app, ha, hb := buildRoutedFatTree(t)
	defer app.Close()

	// Warm the path.
	pinger := traffic.NewPinger(ha, hb.Endpoint(0), traffic.PingerConfig{Count: 3, ID: 1})
	pinger.Run(nil)
	sched.RunFor(time.Second)

	before := app.PacketIns
	src := traffic.NewUDPSource(ha, 4001, hb.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 1000})
	sink := traffic.NewUDPSink(hb, 5001)
	src.Start()
	sched.RunFor(300 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	if sink.Stats().Unique != src.Sent {
		t.Fatalf("udp %d/%d", sink.Stats().Unique, src.Sent)
	}
	if app.PacketIns-before > 2 {
		t.Fatalf("%d packet-ins in steady state — rules not used", app.PacketIns-before)
	}
}
