// Package controller provides SDN control-plane applications: a MAC
// learning switch, a static MAC-destination router (the forwarding scheme
// the prototype uses, §VI: "routing based on MAC destination addresses"),
// and a controller-resident compare application reproducing the paper's
// POX3 baseline.
package controller

import (
	"time"

	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/switching"
)

// LearningSwitch is a classic L2 learning-switch application: it learns
// source MAC → ingress port bindings from PacketIn events, installs exact
// destination-MAC flow rules once both ends are known, and floods unknown
// destinations.
type LearningSwitch struct {
	// IdleTimeout for installed flows; zero installs permanent rules.
	IdleTimeout time.Duration
	// Priority of installed rules.
	Priority uint16

	tables map[uint64]map[packet.MAC]uint16 // datapath -> MAC -> port

	// PacketIns counts packets handled on the controller.
	PacketIns uint64
}

var _ switching.Controller = (*LearningSwitch)(nil)

// NewLearningSwitch returns a learning switch installing rules at the
// given priority.
func NewLearningSwitch() *LearningSwitch {
	return &LearningSwitch{Priority: 10, tables: make(map[uint64]map[packet.MAC]uint16)}
}

// SwitchConnected implements switching.Controller.
func (ls *LearningSwitch) SwitchConnected(conn *switching.Conn, features openflow.FeaturesReply) {
	ls.tables[features.DatapathID] = make(map[packet.MAC]uint16)
}

// Handle implements switching.Controller.
func (ls *LearningSwitch) Handle(conn *switching.Conn, msg openflow.Message, xid uint32) {
	pin, ok := msg.(openflow.PacketIn)
	if !ok {
		return
	}
	ls.PacketIns++
	pkt, err := packet.Unmarshal(pin.Data)
	if err != nil {
		return
	}
	table := ls.tables[conn.DatapathID()]
	if table == nil {
		table = make(map[packet.MAC]uint16)
		ls.tables[conn.DatapathID()] = table
	}
	if !pkt.Eth.Src.IsMulticast() {
		table[pkt.Eth.Src] = pin.InPort
	}

	outPort, known := table[pkt.Eth.Dst]
	if !known || pkt.Eth.Dst.IsMulticast() {
		// Flood, and do not install a rule: we may learn a better port.
		conn.Send(openflow.PacketOut{
			BufferID: openflow.NoBuffer,
			InPort:   pin.InPort,
			Actions:  []openflow.Action{openflow.Output(openflow.PortFlood)},
			Data:     pin.Data,
		})
		return
	}

	conn.InstallFlow(openflow.FlowMod{
		Match:       openflow.MatchAll().WithDlDst(pkt.Eth.Dst),
		Priority:    ls.Priority,
		IdleTimeout: uint16(ls.IdleTimeout / time.Second),
		Actions:     []openflow.Action{openflow.Output(outPort)},
	})
	// Forward the triggering packet along the new rule's path.
	conn.PacketOut(outPort, pin.Data)
}

// KnownPorts returns the learned MAC table for a datapath (for tests and
// diagnostics).
func (ls *LearningSwitch) KnownPorts(datapathID uint64) map[packet.MAC]uint16 {
	out := make(map[packet.MAC]uint16, len(ls.tables[datapathID]))
	for mac, port := range ls.tables[datapathID] {
		out[mac] = port
	}
	return out
}
