package controller

import (
	"encoding/binary"
	"time"

	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
)

// EtherTypeLLDP tags the discovery probes (the real LLDP ethertype; the
// payload is this package's compact format, not IEEE TLVs).
const EtherTypeLLDP uint16 = 0x88cc

const lldpMagic uint32 = 0x4e43_4f44 // "NCOD"

// lldpProbe is the discovery payload: which switch and port emitted it.
type lldpProbe struct {
	Dpid uint64
	Port uint16
}

func marshalProbe(p lldpProbe) []byte {
	b := make([]byte, 14)
	binary.BigEndian.PutUint32(b[0:4], lldpMagic)
	binary.BigEndian.PutUint64(b[4:12], p.Dpid)
	binary.BigEndian.PutUint16(b[12:14], p.Port)
	return b
}

func parseProbe(b []byte) (lldpProbe, bool) {
	if len(b) < 14 || binary.BigEndian.Uint32(b[0:4]) != lldpMagic {
		return lldpProbe{}, false
	}
	return lldpProbe{
		Dpid: binary.BigEndian.Uint64(b[4:12]),
		Port: binary.BigEndian.Uint16(b[12:14]),
	}, true
}

// PortID identifies one switch port fabric-wide.
type PortID struct {
	Dpid uint64
	Port uint16
}

// Discovery learns the inter-switch topology by emitting LLDP-style
// probes out of every port of every connected switch and observing where
// they arrive — the discovery half of every real SDN controller
// (OpenFlow has no topology primitive of its own). Forwarding
// applications layer on top via the Links/IsEdgePort queries.
type Discovery struct {
	// Interval between probe rounds (default 500 ms).
	Interval time.Duration
	// OnLink, when non-nil, fires when a link is first learned.
	OnLink func(a, b PortID)

	sched   *sim.Scheduler
	links   map[PortID]PortID
	conns   map[uint64]*switching.Conn
	ports   map[uint64][]uint16
	stopped bool
}

// NewDiscovery creates a topology learner.
func NewDiscovery(sched *sim.Scheduler) *Discovery {
	return &Discovery{
		Interval: 500 * time.Millisecond,
		sched:    sched,
		links:    make(map[PortID]PortID),
		conns:    make(map[uint64]*switching.Conn),
		ports:    make(map[uint64][]uint16),
	}
}

// Close stops future probe rounds.
func (d *Discovery) Close() { d.stopped = true }

// Link returns the peer of a switch port, if one was discovered.
func (d *Discovery) Link(p PortID) (PortID, bool) {
	peer, ok := d.links[p]
	return peer, ok
}

// IsEdgePort reports whether no inter-switch link was discovered on the
// port — i.e. it (presumably) faces a host.
func (d *Discovery) IsEdgePort(p PortID) bool {
	_, inter := d.links[p]
	return !inter
}

// Dpids returns the connected datapaths.
func (d *Discovery) Dpids() []uint64 {
	out := make([]uint64, 0, len(d.conns))
	for dpid := range d.conns {
		out = append(out, dpid)
	}
	return out
}

// Ports returns the known port list of a datapath.
func (d *Discovery) Ports(dpid uint64) []uint16 { return d.ports[dpid] }

// Conn returns the control connection for a datapath.
func (d *Discovery) Conn(dpid uint64) *switching.Conn { return d.conns[dpid] }

// Neighbors returns, for each port of dpid with a discovered link, the
// peer datapath (port → peer dpid).
func (d *Discovery) Neighbors(dpid uint64) map[uint16]uint64 {
	out := make(map[uint16]uint64)
	for _, port := range d.ports[dpid] {
		if peer, ok := d.links[PortID{Dpid: dpid, Port: port}]; ok {
			out[port] = peer.Dpid
		}
	}
	return out
}

// Register begins probing a newly connected switch. Forwarding wrappers
// call it from SwitchConnected.
func (d *Discovery) Register(conn *switching.Conn, features openflow.FeaturesReply) {
	dpid := features.DatapathID
	d.conns[dpid] = conn
	d.ports[dpid] = nil
	for _, p := range features.Ports {
		d.ports[dpid] = append(d.ports[dpid], p.PortNo)
	}
	d.probe(dpid)
}

func (d *Discovery) probe(dpid uint64) {
	if d.stopped {
		return
	}
	conn := d.conns[dpid]
	for _, port := range d.ports[dpid] {
		frame := &packet.Packet{
			Eth: packet.Ethernet{
				Dst:       packet.MAC{0x01, 0x80, 0xc2, 0, 0, 0x0e}, // LLDP multicast
				Src:       packet.HostMAC(uint32(dpid)),
				EtherType: EtherTypeLLDP,
			},
			Payload: marshalProbe(lldpProbe{Dpid: dpid, Port: port}),
		}
		conn.PacketOut(port, frame.Marshal())
	}
	d.sched.After(d.Interval, func() { d.probe(dpid) })
}

// HandlePacketIn consumes a probe arrival. It reports whether the message
// was a discovery frame (and therefore fully handled).
func (d *Discovery) HandlePacketIn(conn *switching.Conn, pin openflow.PacketIn) bool {
	frame, err := packet.Unmarshal(pin.Data)
	if err != nil || frame.Eth.EtherType != EtherTypeLLDP {
		return false
	}
	probe, ok := parseProbe(frame.Payload)
	if !ok {
		return true // malformed discovery frame: swallow it
	}
	from := PortID{Dpid: probe.Dpid, Port: probe.Port}
	to := PortID{Dpid: conn.DatapathID(), Port: pin.InPort}
	if _, known := d.links[from]; !known {
		d.links[from] = to
		d.links[to] = from
		if d.OnLink != nil {
			d.OnLink(from, to)
		}
	}
	return true
}
