package controller

import (
	"sort"

	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
)

// L2Routing is a topology-aware forwarding application (the POX
// l2_multi / ONOS-style equivalent): Discovery learns the switch graph,
// host locations are learned from packet-ins on edge ports, and flows
// are routed over shortest paths computed on the discovered graph, with
// destination-MAC rules installed along the whole path. Unknown
// destinations are delivered by a controller-mediated "flood" to every
// edge port of the fabric, which is loop-safe on arbitrary topologies
// (no data-plane broadcast ever enters the switch graph).
type L2Routing struct {
	// Priority of installed path rules.
	Priority uint16

	sched     *sim.Scheduler
	discovery *Discovery
	hosts     map[packet.MAC]PortID
	routed    map[routeKey]bool

	// PacketIns counts data packet-ins; PathsInstalled full path
	// installations; Floods controller-mediated deliveries.
	PacketIns      uint64
	PathsInstalled uint64
	Floods         uint64
}

type routeKey struct {
	dst  packet.MAC
	from uint64
}

var _ switching.Controller = (*L2Routing)(nil)

// NewL2Routing creates the routing application with its own Discovery.
func NewL2Routing(sched *sim.Scheduler) *L2Routing {
	return &L2Routing{
		Priority:  50,
		sched:     sched,
		discovery: NewDiscovery(sched),
		hosts:     make(map[packet.MAC]PortID),
		routed:    make(map[routeKey]bool),
	}
}

// Discovery exposes the topology learner (for queries and tuning).
func (r *L2Routing) Discovery() *Discovery { return r.discovery }

// Close stops discovery probing.
func (r *L2Routing) Close() { r.discovery.Close() }

// HostLocation returns where a MAC was last seen, if known.
func (r *L2Routing) HostLocation(mac packet.MAC) (PortID, bool) {
	loc, ok := r.hosts[mac]
	return loc, ok
}

// SwitchConnected implements switching.Controller.
func (r *L2Routing) SwitchConnected(conn *switching.Conn, features openflow.FeaturesReply) {
	r.discovery.Register(conn, features)
}

// Handle implements switching.Controller.
func (r *L2Routing) Handle(conn *switching.Conn, msg openflow.Message, xid uint32) {
	pin, ok := msg.(openflow.PacketIn)
	if !ok {
		return
	}
	if r.discovery.HandlePacketIn(conn, pin) {
		return
	}
	frame, err := packet.Unmarshal(pin.Data)
	if err != nil {
		return
	}
	r.PacketIns++

	here := PortID{Dpid: conn.DatapathID(), Port: pin.InPort}
	// Learn the source host, but only on edge ports: a MAC seen on an
	// inter-switch port is transit traffic, not a location.
	if !frame.Eth.Src.IsMulticast() && r.discovery.IsEdgePort(here) {
		r.hosts[frame.Eth.Src] = here
	}

	dst := frame.Eth.Dst
	loc, known := r.hosts[dst]
	if !known || dst.IsMulticast() {
		r.flood(here, pin.Data)
		return
	}
	if r.installPath(conn.DatapathID(), dst, loc) {
		r.PathsInstalled++
	}
	// Deliver the triggering packet straight at the destination edge.
	r.discovery.Conn(loc.Dpid).PacketOut(loc.Port, pin.Data)
}

// flood delivers the frame to every edge port in the fabric except the
// ingress — a loop-safe broadcast that never transits the switch graph.
func (r *L2Routing) flood(from PortID, data []byte) {
	r.Floods++
	dpids := r.discovery.Dpids()
	sort.Slice(dpids, func(i, j int) bool { return dpids[i] < dpids[j] })
	for _, dpid := range dpids {
		conn := r.discovery.Conn(dpid)
		for _, port := range r.discovery.Ports(dpid) {
			p := PortID{Dpid: dpid, Port: port}
			if p == from || !r.discovery.IsEdgePort(p) {
				continue
			}
			conn.PacketOut(port, data)
		}
	}
}

// installPath computes the shortest path from switch `from` to the
// destination's edge switch and installs dst-MAC rules along it. It
// reports whether new rules were installed.
func (r *L2Routing) installPath(from uint64, dst packet.MAC, loc PortID) bool {
	key := routeKey{dst: dst, from: from}
	if r.routed[key] {
		return false
	}
	hops, ok := r.shortestPath(from, loc.Dpid)
	if !ok {
		return false
	}
	for _, hop := range hops {
		r.discovery.Conn(hop.Dpid).InstallFlow(openflow.FlowMod{
			Match:    openflow.MatchAll().WithDlDst(dst),
			Priority: r.Priority,
			Actions:  []openflow.Action{openflow.Output(hop.Port)},
		})
	}
	// Final hop: the destination switch's edge port.
	r.discovery.Conn(loc.Dpid).InstallFlow(openflow.FlowMod{
		Match:    openflow.MatchAll().WithDlDst(dst),
		Priority: r.Priority,
		Actions:  []openflow.Action{openflow.Output(loc.Port)},
	})
	r.routed[key] = true
	return true
}

// shortestPath runs BFS over the discovered graph and returns, for each
// switch along the path (excluding the destination switch), the egress
// port toward the next hop.
func (r *L2Routing) shortestPath(from, to uint64) ([]PortID, bool) {
	if from == to {
		return nil, true
	}
	type step struct {
		dpid    uint64
		prev    uint64
		viaPort uint16 // egress port on prev toward dpid
	}
	visited := map[uint64]step{from: {dpid: from}}
	queue := []uint64{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			break
		}
		// Deterministic expansion order.
		type edge struct {
			port uint16
			peer uint64
		}
		var edges []edge
		for port, peer := range r.discovery.Neighbors(cur) {
			edges = append(edges, edge{port: port, peer: peer})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].port < edges[j].port })
		for _, e := range edges {
			if _, seen := visited[e.peer]; seen {
				continue
			}
			visited[e.peer] = step{dpid: e.peer, prev: cur, viaPort: e.port}
			queue = append(queue, e.peer)
		}
	}
	if _, ok := visited[to]; !ok {
		return nil, false
	}
	// Walk back, collecting (switch, egress port) pairs.
	var hops []PortID
	for cur := to; cur != from; {
		st := visited[cur]
		hops = append(hops, PortID{Dpid: st.prev, Port: st.viaPort})
		cur = st.prev
	}
	// Reverse into path order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return hops, true
}
