package controller

import (
	"time"

	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
)

// CompareAppConfig parameterises the controller-resident compare — the
// paper's POX3 baseline, where the compare runs "as a SDN application
// running on the POX controller instead of h3" (§V-A).
type CompareAppConfig struct {
	// Engine configures the decision core (Engine.K is forced per
	// datapath by ConfigureDatapath).
	Engine core.Config
	// PerCopyCost is the interpreter cost per copy. The paper explains
	// POX3's poor showing by "precompiled C code is generally executed
	// much faster than interpreted Python"; the default (10× the C
	// compare's calibrated cost) encodes exactly that factor.
	PerCopyCost time.Duration
	// QueueLimit bounds the controller's processing backlog in copies.
	QueueLimit int
}

// dpState is the app's per-switch knowledge.
type dpState struct {
	conn        *switching.Conn
	k           int
	hostPort    uint16
	routerPorts []uint16
	routerIdx   map[uint16]int
	macTable    map[packet.MAC]uint16
	engine      *core.Engine
}

// CompareApp is the POX-style compare: edge switches punt every router
// copy to the controller (output:CONTROLLER rules installed on connect),
// the app performs the majority decision, and releases with PacketOut.
// Every copy therefore pays the control-channel latency twice plus the
// interpreter cost — the two factors §V-B blames for POX3's performance.
type CompareApp struct {
	cfg   CompareAppConfig
	sched *sim.Scheduler
	proc  *netem.Proc

	dps map[uint64]*dpState

	// OnAlarm receives DoS / port-silence / detection alarms.
	OnAlarm func(core.Alarm)

	// Stats.
	PacketIns  uint64
	PacketOuts uint64
	Overloads  uint64 // copies dropped by the controller's queue

	closed bool
}

var _ switching.Controller = (*CompareApp)(nil)

// NewCompareApp creates the app. ConfigureDatapath must be called for
// every edge switch before it connects.
func NewCompareApp(sched *sim.Scheduler, cfg CompareAppConfig) *CompareApp {
	return &CompareApp{
		cfg:   cfg,
		sched: sched,
		proc:  netem.NewProc(sched, cfg.PerCopyCost, cfg.QueueLimit),
		dps:   make(map[uint64]*dpState),
	}
}

// ConfigureDatapath declares one edge switch: its host-facing port, its
// router ports in router-index order, and the MAC table used to forward
// released packets.
func (a *CompareApp) ConfigureDatapath(dpid uint64, hostPort uint16, routerPorts []uint16, macTable map[packet.MAC]uint16) {
	engCfg := a.cfg.Engine
	engCfg.K = len(routerPorts)
	st := &dpState{
		k:           len(routerPorts),
		hostPort:    hostPort,
		routerPorts: append([]uint16(nil), routerPorts...),
		routerIdx:   make(map[uint16]int, len(routerPorts)),
		macTable:    macTable,
		engine:      core.NewEngine(engCfg),
	}
	for i, p := range routerPorts {
		st.routerIdx[p] = i
	}
	a.dps[dpid] = st
}

// Engine returns the decision core for a datapath (for tests and stats).
func (a *CompareApp) Engine(dpid uint64) *core.Engine {
	if st := a.dps[dpid]; st != nil {
		return st.engine
	}
	return nil
}

// SwitchConnected implements switching.Controller: it installs the edge
// rules — replicate host traffic to every router, punt router traffic to
// the controller.
func (a *CompareApp) SwitchConnected(conn *switching.Conn, features openflow.FeaturesReply) {
	st, ok := a.dps[features.DatapathID]
	if !ok {
		return
	}
	st.conn = conn

	// Fan-out actions in router-index order for determinism.
	ordered := make([]openflow.Action, 0, st.k)
	for _, port := range st.routerPorts {
		ordered = append(ordered, openflow.Output(port))
	}
	conn.InstallFlow(openflow.FlowMod{
		Match:    openflow.MatchAll().WithInPort(st.hostPort),
		Priority: 100,
		Actions:  ordered,
	})
	for _, port := range st.routerPorts {
		conn.InstallFlow(openflow.FlowMod{
			Match:    openflow.MatchAll().WithInPort(port),
			Priority: 100,
			Actions:  []openflow.Action{openflow.OutputController(0xffff)},
		})
	}
	// Start the periodic expiry sweep for this datapath.
	a.scheduleSweep(features.DatapathID)
}

func (a *CompareApp) scheduleSweep(dpid uint64) {
	st := a.dps[dpid]
	interval := st.engine.Config().HoldTimeout / 2
	a.sched.After(interval, func() {
		if a.closed || st.conn == nil {
			return
		}
		a.handleEvents(st, st.engine.Expire(a.sched.Now()))
		a.scheduleSweep(dpid)
	})
}

// Close stops the periodic expiry sweeps so a finished simulation's event
// queue can drain.
func (a *CompareApp) Close() { a.closed = true }

// Handle implements switching.Controller.
func (a *CompareApp) Handle(conn *switching.Conn, msg openflow.Message, xid uint32) {
	pin, ok := msg.(openflow.PacketIn)
	if !ok {
		return
	}
	st := a.dps[conn.DatapathID()]
	if st == nil {
		return
	}
	a.PacketIns++
	if !a.proc.Submit(func() { a.process(st, pin) }) {
		a.Overloads++
	}
}

func (a *CompareApp) process(st *dpState, pin openflow.PacketIn) {
	idx, ok := st.routerIdx[pin.InPort]
	if !ok {
		return
	}
	pkt, err := packet.Unmarshal(pin.Data)
	if err != nil {
		return
	}
	events := st.engine.Ingest(a.sched.Now(), idx, pin.Data, pkt)
	a.handleEvents(st, events)
	if st.engine.OverCapacity() {
		cleanupEvents, scanned := st.engine.Cleanup(a.sched.Now())
		if scanned > 0 {
			a.proc.Stall(time.Duration(scanned) * 500 * time.Nanosecond)
		}
		a.handleEvents(st, cleanupEvents)
	}
}

func (a *CompareApp) handleEvents(st *dpState, events []core.Event) {
	for _, ev := range events {
		switch ev.Kind {
		case core.EventRelease:
			out, ok := st.macTable[ev.Pkt.Eth.Dst]
			if !ok {
				out = st.hostPort
			}
			a.PacketOuts++
			st.conn.PacketOut(out, ev.Pkt.Marshal())
		case core.EventDoS, core.EventPortSilent, core.EventDetection:
			if a.OnAlarm != nil {
				a.OnAlarm(core.Alarm{Kind: ev.Kind, Router: ev.Port, At: a.sched.Now(), Copies: ev.Copies})
			}
		}
	}
}
