// Package traffic provides the workload side of the reproduction: an
// emulated host stack plus the iperf and ping equivalents the paper
// measures with — a Reno-style TCP bulk flow, a constant-bit-rate UDP
// source with an RFC 3550 jitter-measuring sink, and an ICMP echo client.
package traffic

import (
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// HostPort is the port index a host uses for its single NIC.
const HostPort = 0

// HostConfig parameterises a host's receive stack.
type HostConfig struct {
	// IngestPerPacket is the CPU time to receive one packet. Together
	// with IngestQueue it models the destination-host buffering that
	// the paper blames for Dup5's poor showing ("packets spend more
	// time buffered on ... the destination host", §V-B).
	IngestPerPacket time.Duration
	// IngestQueue bounds the receive queue in packets (zero =
	// unbounded).
	IngestQueue int
	// EchoResponder enables the ICMP echo service.
	EchoResponder bool
}

// HostStats counts host stack activity.
type HostStats struct {
	RxPackets      uint64
	RxDropped      uint64 // ingest queue overflow
	RxUnclaimed    uint64 // no handler registered
	TxPackets      uint64
	EchoesAnswered uint64
}

// Host is an emulated end host: one NIC, an ingest-capacity receive
// stack, and demultiplexing to protocol handlers.
type Host struct {
	name  string
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	mac packet.MAC
	ip  packet.IPAddr

	udpHandlers  map[uint16]func(*packet.Packet)
	tcpHandlers  map[uint16]func(*packet.Packet)
	icmpHandlers map[uint16]func(*packet.Packet)

	arp *arpState

	nextIPID uint16
	stats    HostStats
}

var _ netem.Node = (*Host)(nil)

// NewHost creates a host.
func NewHost(sched *sim.Scheduler, name string, mac packet.MAC, ip packet.IPAddr, cfg HostConfig) *Host {
	proc := netem.NewProc(sched, cfg.IngestPerPacket, cfg.IngestQueue)
	// NIC-ring semantics: overload drops whole bursts, so the k combiner
	// copies of one packet are lost (or kept) together.
	proc.SetHysteresis(true)
	// Handler maps and ARP state are allocated on first use: a scaled
	// fluid-tier fabric builds hundreds of thousands of hosts whose
	// traffic never reaches the packet stack, and four maps per host
	// would dominate the build's allocation volume.
	h := &Host{
		name:  name,
		sched: sched,
		proc:  proc,
		mac:   mac,
		ip:    ip,
	}
	if cfg.EchoResponder {
		h.HandleEchoRequest(h.answerEcho)
	}
	return h
}

// Name implements netem.Node.
func (h *Host) Name() string { return h.name }

// Ports implements netem.Node.
func (h *Host) Ports() *netem.Ports { return &h.ports }

// MAC returns the host's hardware address.
func (h *Host) MAC() packet.MAC { return h.mac }

// IP returns the host's IPv4 address.
func (h *Host) IP() packet.IPAddr { return h.ip }

// Stats returns the stack counters.
func (h *Host) Stats() HostStats { return h.stats }

// Endpoint returns this host's address at the given transport port.
func (h *Host) Endpoint(port uint16) packet.Endpoint {
	return packet.Endpoint{MAC: h.mac, IP: h.ip, Port: port}
}

// Send transmits a packet out of the NIC, stamping a fresh IP ID — the
// detail that keeps TCP retransmissions bit-distinct from their originals,
// so the compare's duplicate suppression cannot swallow them.
func (h *Host) Send(pkt *packet.Packet) bool {
	if pkt.IP != nil {
		h.nextIPID++
		pkt.IP.ID = h.nextIPID
	}
	h.stats.TxPackets++
	return h.ports.Send(HostPort, pkt)
}

// HandleUDP registers a handler for datagrams addressed to the port.
func (h *Host) HandleUDP(port uint16, fn func(*packet.Packet)) {
	if h.udpHandlers == nil {
		h.udpHandlers = make(map[uint16]func(*packet.Packet))
	}
	h.udpHandlers[port] = fn
}

// HandleTCP registers a handler for segments addressed to the port.
func (h *Host) HandleTCP(port uint16, fn func(*packet.Packet)) {
	if h.tcpHandlers == nil {
		h.tcpHandlers = make(map[uint16]func(*packet.Packet))
	}
	h.tcpHandlers[port] = fn
}

// HandleEchoRequest registers the echo-request service handler (slot 0).
func (h *Host) HandleEchoRequest(fn func(*packet.Packet)) {
	h.HandleEchoReply(0, fn)
}

// HandleEchoReply registers a handler for echo replies with the ICMP id.
func (h *Host) HandleEchoReply(id uint16, fn func(*packet.Packet)) {
	if h.icmpHandlers == nil {
		h.icmpHandlers = make(map[uint16]func(*packet.Packet))
	}
	h.icmpHandlers[id] = fn
}

// Receive implements netem.Receiver.
func (h *Host) Receive(port int, pkt *packet.Packet) {
	if pkt.Eth.Dst != h.mac && !pkt.Eth.Dst.IsBroadcast() {
		return // not ours (hub floods, mirrored strays)
	}
	h.stats.RxPackets++
	if !h.proc.SubmitArgs(hostDeliver, h, pkt, 0) {
		h.stats.RxDropped++
	}
}

func hostDeliver(a0, a1 any, _ int) {
	a0.(*Host).deliver(a1.(*packet.Packet))
}

func (h *Host) deliver(pkt *packet.Packet) {
	if pkt.Eth.EtherType == packet.EtherTypeARP {
		h.handleARP(pkt)
		return
	}
	switch {
	case pkt.UDP != nil:
		if fn := h.udpHandlers[pkt.UDP.DstPort]; fn != nil {
			fn(pkt)
			return
		}
	case pkt.TCP != nil:
		if fn := h.tcpHandlers[pkt.TCP.DstPort]; fn != nil {
			fn(pkt)
			return
		}
	case pkt.ICMP != nil:
		switch pkt.ICMP.Type {
		case packet.ICMPEchoRequest:
			if fn := h.icmpHandlers[0]; fn != nil {
				fn(pkt)
				return
			}
		case packet.ICMPEchoReply:
			if fn := h.icmpHandlers[pkt.ICMP.ID]; fn != nil {
				fn(pkt)
				return
			}
		}
	}
	h.stats.RxUnclaimed++
}

func (h *Host) answerEcho(req *packet.Packet) {
	if req.IP.Dst != h.ip {
		return
	}
	h.stats.EchoesAnswered++
	h.Send(packet.EchoReply(req))
}
