package traffic

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// fluidOp is one scripted allocator mutation, applied shortly after an
// epoch boundary so it lands in the following settle.
type fluidOp struct {
	epoch int // boundary index the op follows
	kind  int // 0 toggle start/stop, 1 retarget demand, 2 capacity change
	tgt   int // flow index (kinds 0, 1) or link index (kind 2)
	val   float64
}

// genFluidScript produces a deterministic randomized mutation schedule
// over nf flows and nl links: every epoch toggles, retargets, and
// resizes a few of them.
func genFluidScript(seed int64, epochs, opsPerEpoch, nf, nl int) []fluidOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []fluidOp
	for e := 0; e < epochs; e++ {
		for o := 0; o < opsPerEpoch; o++ {
			op := fluidOp{epoch: e, kind: rng.Intn(3)}
			switch op.kind {
			case 0:
				op.tgt = rng.Intn(nf)
			case 1:
				op.tgt = rng.Intn(nf)
				op.val = float64(rng.Intn(24)) * 0.5e6 // 0..11.5e6
			case 2:
				op.tgt = rng.Intn(nl)
				op.val = 1e6 + float64(rng.Intn(23))*0.5e6
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// runFluidScript replays the script against a fresh chain topology and
// returns the exact bit patterns of every flow rate and directed link
// load observed just before each epoch boundary. The chain's links are
// shared by overlapping sub-paths, so the script continually splits and
// merges allocator components.
func runFluidScript(t *testing.T, ops []fluidOp, caps []float64, nf int, full bool, workers int) []uint64 {
	t.Helper()
	sched, links := fluidRig(t, caps)
	epoch := 10 * time.Millisecond
	fn := NewFluidNet(sched, FluidConfig{Epoch: epoch, FullResettle: full, SettleWorkers: workers})

	// Flow i runs the sub-chain [i%len, i%len+1+i%3] clipped to the
	// chain — short overlapping paths, many sharing each link.
	flows := make([]*FluidFlow, nf)
	for i := range flows {
		lo := i % len(links)
		hi := lo + 1 + i%3
		if hi > len(links) {
			hi = len(links)
		}
		var hops []Hop
		for j := lo; j < hi; j++ {
			hops = append(hops, Hop{Link: links[j], End: 0})
		}
		flows[i] = fn.NewFlow(float64(1+i%7)*1e6, hops)
		if i%2 == 0 {
			flows[i].Start()
		}
	}

	epochs := 0
	for _, op := range ops {
		op := op
		if op.epoch+1 > epochs {
			epochs = op.epoch + 1
		}
		at := time.Duration(op.epoch)*epoch + time.Millisecond
		sched.After(at, func() {
			switch op.kind {
			case 0:
				f := flows[op.tgt]
				if f.Active() {
					f.Stop()
				} else {
					f.Start()
				}
			case 1:
				flows[op.tgt].SetDemand(op.val)
			case 2:
				fn.SetCapacity(links[op.tgt], 0, op.val)
			}
		})
	}

	var sig []uint64
	for e := 1; e <= epochs+1; e++ {
		sched.After(time.Duration(e)*epoch-time.Microsecond, func() {
			for _, f := range flows {
				sig = append(sig, math.Float64bits(f.Rate()))
			}
			for _, l := range links {
				sig = append(sig, math.Float64bits(l.FluidLoad(0)))
			}
		})
	}
	sched.RunFor(time.Duration(epochs+2) * epoch)
	return sig
}

// TestFluidIncrementalMatchesFullResettle pins the dirty-set allocator
// bit for bit to the full progressive-filling oracle across randomized
// start/stop/retarget/capacity-change sequences. Any divergence — a
// frozen flow that should have been re-solved, a component the dirty
// seeds failed to reach — shows up as a differing rate or load bit
// pattern at some epoch boundary.
func TestFluidIncrementalMatchesFullResettle(t *testing.T) {
	caps := []float64{7e6, 11e6, 5e6, 9e6, 13e6, 6e6}
	const nf = 24
	for seed := int64(1); seed <= 4; seed++ {
		ops := genFluidScript(seed, 20, 4, nf, len(caps))
		fullSig := runFluidScript(t, ops, caps, nf, true, 1)
		incSig := runFluidScript(t, ops, caps, nf, false, 1)
		if len(fullSig) != len(incSig) {
			t.Fatalf("seed %d: signature lengths differ: %d vs %d", seed, len(fullSig), len(incSig))
		}
		for i := range fullSig {
			if fullSig[i] != incSig[i] {
				t.Fatalf("seed %d: sample %d diverged: full %x vs incremental %x",
					seed, i, fullSig[i], incSig[i])
			}
		}
	}
}

// TestFluidParallelSettleMatchesSerial pins the parallel per-component
// settle bit-equal to serial — and, transitively through the test
// above, to the FullResettle oracle — at every worker count, in both
// incremental and full mode. Fill is pure component-local arithmetic
// and discovery/publish stay serial, so nothing may diverge.
func TestFluidParallelSettleMatchesSerial(t *testing.T) {
	caps := []float64{7e6, 11e6, 5e6, 9e6, 13e6, 6e6}
	const nf = 24
	for seed := int64(1); seed <= 3; seed++ {
		ops := genFluidScript(seed, 20, 4, nf, len(caps))
		for _, full := range []bool{false, true} {
			want := runFluidScript(t, ops, caps, nf, full, 1)
			for _, workers := range []int{2, 4, 8} {
				got := runFluidScript(t, ops, caps, nf, full, workers)
				if len(got) != len(want) {
					t.Fatalf("seed %d full=%v workers=%d: signature lengths differ: %d vs %d",
						seed, full, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d full=%v workers=%d: sample %d diverged: %x vs serial %x",
							seed, full, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFluidUntouchedComponentKeepsRates checks the point of the dirty
// set: re-settling one component must not re-solve — or even visit —
// flows in a disjoint component. Their rates keep the exact bit
// patterns of the previous settle.
func TestFluidUntouchedComponentKeepsRates(t *testing.T) {
	sched, links := fluidRig(t, []float64{7e6, 9e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	// Two disjoint components: a/b on link 0, c on link 1.
	a := fn.NewFlow(5e6, []Hop{{Link: links[0], End: 0}})
	b := fn.NewFlow(5e6, []Hop{{Link: links[0], End: 0}})
	c := fn.NewFlow(20e6, []Hop{{Link: links[1], End: 0}})
	a.Start()
	b.Start()
	c.Start()
	sched.RunFor(10 * time.Millisecond)
	aBits, bBits := math.Float64bits(a.Rate()), math.Float64bits(b.Rate())
	if a.Rate() != 3.5e6 || c.Rate() != 9e6 {
		t.Fatalf("initial rates: a=%v c=%v", a.Rate(), c.Rate())
	}

	// Touch only c's component.
	c.SetDemand(4e6)
	sched.RunFor(10 * time.Millisecond)
	if c.Rate() != 4e6 {
		t.Fatalf("c not re-solved: %v", c.Rate())
	}
	if math.Float64bits(a.Rate()) != aBits || math.Float64bits(b.Rate()) != bBits {
		t.Fatalf("disjoint component disturbed: a=%v b=%v", a.Rate(), b.Rate())
	}
}

// TestFluidSettleSteadyStateAllocs guards the steady-state settle path
// against per-epoch allocation creep: once the component scratch has
// grown to the working set, a retarget + settle cycle must stay within
// a handful of allocations (the scheduler's timer event and closure —
// nothing proportional to flows or links).
func TestFluidSettleSteadyStateAllocs(t *testing.T) {
	sched, links := fluidRig(t, []float64{9e6, 7e6, 11e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	flows := make([]*FluidFlow, 64)
	for i := range flows {
		flows[i] = fn.NewFlow(float64(1+i%5)*1e6, []Hop{
			{Link: links[i%3], End: 0}, {Link: links[(i+1)%3], End: 0},
		})
		flows[i].Start()
	}
	sched.RunFor(10 * time.Millisecond) // warm the scratch
	demand := 2e6
	avg := testing.AllocsPerRun(20, func() {
		demand += 0.5e6
		flows[17].SetDemand(demand)
		sched.RunFor(10 * time.Millisecond)
	})
	if avg > 8 {
		t.Fatalf("steady-state settle allocates %.1f allocs/epoch, want <= 8", avg)
	}
}

// TestFluidCongestionCallback exercises the promotion hook: flows on a
// direction at or above CongestionRho are reported once per settle,
// already-promoted flows are skipped, and a quiet settle reports
// nothing.
func TestFluidCongestionCallback(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6, 10e6})
	var fired []struct {
		f   *FluidFlow
		rho float64
	}
	var fn *FluidNet
	fn = NewFluidNet(sched, FluidConfig{
		Epoch:         10 * time.Millisecond,
		CongestionRho: 0.9,
		OnCongested: func(f *FluidFlow, rho float64) {
			fired = append(fired, struct {
				f   *FluidFlow
				rho float64
			}{f, rho})
		},
	})
	hot := []Hop{{Link: links[0], End: 0}}
	cold := []Hop{{Link: links[1], End: 0}}
	a := fn.NewFlow(6e6, hot)
	b := fn.NewFlow(6e6, hot)
	c := fn.NewFlow(2e6, cold) // ρ = 0.2, never congested
	a.Start()
	b.Start()
	c.Start()
	sched.RunFor(10 * time.Millisecond)
	if len(fired) != 2 || fired[0].f != a || fired[1].f != b {
		t.Fatalf("first settle fired %d callbacks, want a then b", len(fired))
	}
	for _, ev := range fired {
		if ev.rho != 1.0 {
			t.Fatalf("rho = %v, want 1.0", ev.rho)
		}
	}

	// Promote a; the next congested settle reports only b.
	a.Promote(&fakeExpander{})
	fired = fired[:0]
	b.SetDemand(7e6)
	sched.RunFor(10 * time.Millisecond)
	if len(fired) != 1 || fired[0].f != b {
		t.Fatalf("post-promotion settle fired %d callbacks", len(fired))
	}

	// A settle of the cold component only reports nothing.
	fired = fired[:0]
	c.SetDemand(3e6)
	sched.RunFor(10 * time.Millisecond)
	if len(fired) != 0 {
		t.Fatalf("cold settle fired %d callbacks", len(fired))
	}
	_ = fn
}

// TestFluidSetCapacityReallocates covers the chaos-hook entry point:
// shrinking a traversed direction re-solves its component at the next
// boundary, and untraversed directions are ignored.
func TestFluidSetCapacityReallocates(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6, 10e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	a := fn.NewFlow(8e6, []Hop{{Link: links[0], End: 0}})
	b := fn.NewFlow(8e6, []Hop{{Link: links[0], End: 0}})
	a.Start()
	b.Start()
	sched.RunFor(10 * time.Millisecond)
	if a.Rate() != 5e6 || b.Rate() != 5e6 {
		t.Fatalf("initial split: %v %v", a.Rate(), b.Rate())
	}
	fn.SetCapacity(links[0], 0, 6e6)
	fn.SetCapacity(links[1], 0, 1e6) // untraversed: no-op, must not panic or settle
	sched.RunFor(10 * time.Millisecond)
	if a.Rate() != 3e6 || b.Rate() != 3e6 {
		t.Fatalf("post-shrink split: %v %v", a.Rate(), b.Rate())
	}
	if got := links[0].FluidLoad(0); got != 6e6 {
		t.Fatalf("load = %v, want 6e6", got)
	}
}
