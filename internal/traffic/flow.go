package traffic

// FlowMode distinguishes the hybrid engine's two fidelity tiers.
type FlowMode uint8

// Flow fidelity modes.
const (
	// FlowPacket flows materialise every segment/datagram/echo as a
	// discrete packet event — the tier the whole paper evaluation runs
	// on, and the only tier compare/adversary regions accept.
	FlowPacket FlowMode = iota
	// FlowFluid flows are rate processes: a demand, a path of link
	// hops, and a max-min fair allocation. No per-packet events exist
	// unless the flow is promoted across a packet-exact region.
	FlowFluid
)

// String names the mode for reports.
func (m FlowMode) String() string {
	if m == FlowFluid {
		return "fluid"
	}
	return "packet"
}

// Flow is the common per-flow state machine interface of the hybrid
// traffic engine: packet-mode TCP/UDP/ping generators and fluid-mode
// rate processes all satisfy it, so experiment drivers can mix tiers
// behind one handle.
type Flow interface {
	// Start begins the flow's activity (idempotent while running).
	Start()
	// Stop halts the flow (idempotent).
	Stop()
	// Mode reports the flow's fidelity tier.
	Mode() FlowMode
}

// Compile-time checks that every traffic generator is a Flow.
var (
	_ Flow = (*TCPFlow)(nil)
	_ Flow = (*UDPSource)(nil)
	_ Flow = (*Pinger)(nil)
	_ Flow = (*FluidFlow)(nil)
)

// Mode implements Flow for the Reno-style TCP bulk flow.
func (f *TCPFlow) Mode() FlowMode { return FlowPacket }

// Mode implements Flow for the constant-bit-rate UDP source.
func (s *UDPSource) Mode() FlowMode { return FlowPacket }

// Mode implements Flow for the ICMP echo client.
func (p *Pinger) Mode() FlowMode { return FlowPacket }
