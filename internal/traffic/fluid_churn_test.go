package traffic

import (
	"testing"
	"time"
)

// TestFluidFlowRecycle pins the Release lifecycle: a released flow is
// recycled exactly once its final settle has delisted it, its
// delivered bits fold into RetiredBits, and the next NewFlow reuses
// the object (pointer identity) with a fresh id and clean state.
func TestFluidFlowRecycle(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6, 10e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	hops := []Hop{{Link: links[0], End: 0}}

	a := fn.NewFlow(4e6, hops)
	a.Start()
	sched.RunFor(30 * time.Millisecond) // settle at 10ms, then 20ms of accrual
	delivered := a.DeliveredBits()
	if delivered <= 0 {
		t.Fatalf("no bits accrued before release: %v", delivered)
	}

	a.Release() // active: stops, recycles at the next settle
	if fn.Recycled() != 0 || fn.RetiredBits() != 0 {
		t.Fatalf("recycled before the delisting settle: recycled=%d retired=%v",
			fn.Recycled(), fn.RetiredBits())
	}
	sched.RunFor(10 * time.Millisecond) // the delisting settle
	if fn.Flows() != 0 {
		t.Fatalf("flow still listed after release settle: %d", fn.Flows())
	}
	if got := fn.RetiredBits(); got != delivered {
		t.Fatalf("RetiredBits = %v, want %v", got, delivered)
	}

	b := fn.NewFlow(2e6, []Hop{{Link: links[1], End: 0}})
	if b != a {
		t.Fatal("NewFlow did not reuse the released object")
	}
	if fn.Recycled() != 1 {
		t.Fatalf("Recycled() = %d, want 1", fn.Recycled())
	}
	if b.ID() == 0 || b.Rate() != 0 || b.Active() || b.Promoted() || b.DeliveredBits() != 0 {
		t.Fatalf("recycled flow not reset: id=%d rate=%v active=%v", b.ID(), b.Rate(), b.Active())
	}
	b.Start()
	sched.RunFor(10 * time.Millisecond)
	if b.Rate() != 2e6 {
		t.Fatalf("recycled flow rate = %v, want 2e6", b.Rate())
	}

	// A never-listed flow recycles immediately.
	c := fn.NewFlow(1e6, hops)
	c.Release()
	if fn.NewFlow(1e6, hops) != c {
		t.Fatal("never-listed release did not recycle immediately")
	}

	// Release is idempotent.
	b.Release()
	b.Release()
	sched.RunFor(10 * time.Millisecond)
	if fn.Recycled() != 2 {
		t.Fatalf("Recycled() = %d after idempotent release, want 2", fn.Recycled())
	}
}

// TestFluidChurnConservesBits checks whole-run accounting across heavy
// recycling: total delivered traffic (retired + live) equals rate ×
// time integrated over the schedule, so recycling loses no bits.
func TestFluidChurnConservesBits(t *testing.T) {
	sched, links := fluidRig(t, []float64{50e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	hops := []Hop{{Link: links[0], End: 0}}
	// 5 generations of 4 flows at 1e6 bps on an uncongested link.
	// Generation g starts at 30g ms (allocated at the 30g+10 boundary),
	// releases at 30g+15 ms, and is delisted + recycled at the 30g+20
	// boundary — comfortably before generation g+1's NewFlow at
	// 30(g+1), so every later generation draws from the free list.
	for g := 0; g < 5; g++ {
		base := time.Duration(g) * 30 * time.Millisecond
		var flows [4]*FluidFlow
		sched.After(base, func() {
			for i := range flows {
				flows[i] = fn.NewFlow(1e6, hops)
				flows[i].Start()
			}
		})
		sched.After(base+15*time.Millisecond, func() {
			for i := range flows {
				flows[i].Release()
			}
		})
	}
	sched.RunFor(200 * time.Millisecond)
	// Each flow carries 1e6 bps from its first settle (30g+10) to its
	// Stop accrual instant (30g+15): 5 ms → 5_000 bits, 20 flows.
	want := 20 * 5_000.0
	if got := fn.RetiredBits(); got != want {
		t.Fatalf("RetiredBits = %v, want %v", got, want)
	}
	if fn.Recycled() != 16 {
		// 20 flows; only generation 0 allocates fresh objects.
		t.Fatalf("Recycled() = %d, want 16", fn.Recycled())
	}
}

// TestFluidChurnSteadyStateAllocs is the churn-lifecycle allocation
// guard the tentpole demands: once the arena and scratch are warm, a
// full churn epoch — release a batch, create + start a same-shaped
// batch, settle — allocates no flow objects; the whole cycle stays
// within the settle path's existing ≤8 allocs/epoch envelope.
func TestFluidChurnSteadyStateAllocs(t *testing.T) {
	sched, links := fluidRig(t, []float64{9e6, 7e6, 11e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	const n = 64
	flows := make([]*FluidFlow, n)
	hops := make([]Hop, 2)
	mk := func(i int) *FluidFlow {
		hops[0] = Hop{Link: links[i%3], End: 0}
		hops[1] = Hop{Link: links[(i+1)%3], End: 0}
		f := fn.NewFlow(float64(1+i%5)*1e6, hops)
		f.Start()
		return f
	}
	for i := range flows {
		flows[i] = mk(i)
	}
	sched.RunFor(10 * time.Millisecond)
	// Churn a few generations to fill the free list and warm scratch.
	for g := 0; g < 3; g++ {
		for i := 0; i < n; i += 2 {
			flows[i].Release()
			flows[i] = mk(i)
		}
		sched.RunFor(10 * time.Millisecond)
	}
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i += 2 {
			flows[i].Release()
			flows[i] = mk(i)
		}
		sched.RunFor(10 * time.Millisecond)
	})
	if avg > 8 {
		t.Fatalf("steady-state churn epoch allocates %.1f allocs, want <= 8", avg)
	}
}

// TestFluidDemoteHysteresis exercises the demotion path: a promoted
// flow whose worst utilisation falls below DemoteRho is reported only
// after the DemoteAfter cooldown, a demoted flow becomes eligible for
// congestion promotion again, and flows above the threshold are left
// alone.
func TestFluidDemoteHysteresis(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6, 10e6})
	var promoted, demoted []*FluidFlow
	var fn *FluidNet
	exps := map[*FluidFlow]*fakeExpander{}
	fn = NewFluidNet(sched, FluidConfig{
		Epoch:         10 * time.Millisecond,
		CongestionRho: 0.9,
		OnCongested: func(f *FluidFlow, rho float64) {
			promoted = append(promoted, f)
			e := exps[f]
			if e == nil {
				e = &fakeExpander{}
				exps[f] = e
			}
			f.Promote(e)
		},
		DemoteRho:   0.5,
		DemoteAfter: 25 * time.Millisecond,
		OnUncongested: func(f *FluidFlow, rho float64) {
			demoted = append(demoted, f)
			f.Demote()
		},
	})
	hot := []Hop{{Link: links[0], End: 0}}
	a := fn.NewFlow(6e6, hot)
	b := fn.NewFlow(6e6, hot)
	a.Start()
	b.Start()
	sched.RunFor(10 * time.Millisecond) // ρ=1.0: both promoted
	if len(promoted) != 2 || !a.Promoted() || !b.Promoted() {
		t.Fatalf("promotions = %d (a=%v b=%v), want both", len(promoted), a.Promoted(), b.Promoted())
	}

	// Drop the load below DemoteRho. The settle at 20ms sees ρ=0.4 but
	// the cooldown (promoted at 10ms, 25ms after = 35ms) hasn't
	// elapsed, so nothing demotes yet — and with no further dirtiness
	// the component wouldn't re-settle on its own, so poke it each
	// epoch like real churn traffic would.
	a.SetDemand(2e6)
	b.SetDemand(2e6)
	sched.RunFor(10 * time.Millisecond)
	if len(demoted) != 0 {
		t.Fatalf("demoted %d flows inside the cooldown", len(demoted))
	}
	a.SetDemand(1.9e6) // re-dirty; settle at 30ms: still < 35ms cooldown
	sched.RunFor(10 * time.Millisecond)
	if len(demoted) != 0 {
		t.Fatalf("demoted %d flows inside the cooldown (second settle)", len(demoted))
	}
	a.SetDemand(2e6) // settle at 40ms: cooldown elapsed, ρ=0.4 < 0.5
	sched.RunFor(10 * time.Millisecond)
	if len(demoted) != 2 || a.Promoted() || b.Promoted() {
		t.Fatalf("demotions = %d (a=%v b=%v), want both demoted", len(demoted), a.Promoted(), b.Promoted())
	}
	if exps[a].stopped != 1 || exps[a].started != 1 {
		t.Fatalf("expander not stopped on demote: started=%d stopped=%d", exps[a].started, exps[a].stopped)
	}

	// Re-congest: demoted flows are promotion-eligible again.
	a.SetDemand(6e6)
	b.SetDemand(6e6)
	sched.RunFor(10 * time.Millisecond)
	if len(promoted) != 4 || !a.Promoted() || !b.Promoted() {
		t.Fatalf("re-promotions: %d total, a=%v b=%v", len(promoted), a.Promoted(), b.Promoted())
	}
	if exps[a].started != 2 {
		t.Fatalf("expander restarted %d times, want 2", exps[a].started)
	}
}

// BenchmarkFluidChurnEpoch measures one steady-state churn epoch on a
// shared-chain topology: release and respawn half the flows, then
// settle. Runs under bench-guard's -benchmem leg as the allocation
// canary for the churn hot path.
func BenchmarkFluidChurnEpoch(b *testing.B) {
	sched, links := fluidRig(b, []float64{9e6, 7e6, 11e6, 13e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	const n = 512
	flows := make([]*FluidFlow, n)
	hops := make([]Hop, 2)
	mk := func(i int) *FluidFlow {
		hops[0] = Hop{Link: links[i%4], End: 0}
		hops[1] = Hop{Link: links[(i+1)%4], End: 0}
		f := fn.NewFlow(float64(1+i%5)*1e6, hops)
		f.Start()
		return f
	}
	for i := range flows {
		flows[i] = mk(i)
	}
	sched.RunFor(20 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i := 0; i < n; i += 2 {
			flows[i].Release()
			flows[i] = mk(i)
		}
		sched.RunFor(10 * time.Millisecond)
	}
}
