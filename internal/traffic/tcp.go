package traffic

import (
	"time"

	"netco/internal/metrics"
	"netco/internal/packet"
	"netco/internal/sim"
)

// TCPConfig parameterises a bulk TCP flow (the iperf TCP equivalent).
// The congestion control is NewReno: slow start, congestion avoidance,
// fast retransmit/fast recovery with partial-ACK retransmission, and an
// RFC 6298 retransmission timer. This fidelity matters: the paper's Dup3/
// Dup5 collapse is caused by duplicate segments provoking dup-ACK storms
// and spurious fast retransmits, and its Central numbers by loss-driven
// slow start — both emergent behaviours of this state machine.
type TCPConfig struct {
	// MSS is the maximum segment size in bytes (default 1460).
	MSS int
	// InitCwndSegments is the initial congestion window (default 10,
	// the Linux default at the paper's time).
	InitCwndSegments int
	// ReceiveWindow is the advertised receive window in bytes (default
	// 128 KiB, roughly what Linux autotuning opens on a sub-millisecond
	// LAN path; it is ≈10× the testbed's bandwidth-delay product, so it
	// never binds steady-state throughput but it does bound slow-start
	// overshoot, as a real receiver's window would).
	ReceiveWindow uint32
	// MinRTO floors the retransmission timer (default 200 ms, as in
	// Linux).
	MinRTO time.Duration
	// DupThresh is the duplicate-ACK fast-retransmit threshold
	// (default 3).
	DupThresh int
	// AckEvery makes the receiver ACK every n-th in-order segment
	// (default 1 = immediate ACKs); a pending delayed ACK flushes after
	// DelAckTimeout. Out-of-order and duplicate segments always ACK
	// immediately, per RFC 5681.
	AckEvery int
	// DelAckTimeout bounds ACK delay (default 1 ms).
	DelAckTimeout time.Duration
	// MaxBytes bounds the transfer: the sender offers no new data once
	// MaxBytes have been put on the wire (rounded up to whole segments),
	// so the flow quiesces deterministically once everything is
	// acknowledged. Zero means unbounded (the iperf-style
	// duration-bounded use).
	MaxBytes uint32
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitCwndSegments == 0 {
		c.InitCwndSegments = 10
	}
	if c.ReceiveWindow == 0 {
		c.ReceiveWindow = 128 << 10
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.DupThresh == 0 {
		c.DupThresh = 3
	}
	if c.AckEvery == 0 {
		c.AckEvery = 1
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = time.Millisecond
	}
	return c
}

// TCPStats is a snapshot of a flow's progress.
type TCPStats struct {
	// BytesAcked is the sender's cumulative acknowledged bytes;
	// GoodputBytes the receiver's in-order delivered bytes.
	BytesAcked   uint64
	GoodputBytes uint64
	// SegmentsSent counts first transmissions; Retransmits all
	// retransmissions; FastRetransmits and Timeouts their triggers.
	SegmentsSent    uint64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	// DupAcksSeen counts duplicate ACKs observed by the sender; DupSegments
	// counts duplicate/old data segments seen by the receiver.
	DupSegments uint64
	DupAcksSeen uint64
	// SRTT is the sender's smoothed RTT estimate.
	SRTT time.Duration
	// CwndBytes is the current congestion window.
	CwndBytes float64
}

// Goodput returns the receiver-side goodput in bits/s over the interval.
func (s TCPStats) Goodput(interval time.Duration) float64 {
	return metrics.Throughput(s.GoodputBytes, interval)
}

// TCPFlow is a unidirectional bulk transfer between two hosts.
type TCPFlow struct {
	sender   *tcpSender
	receiver *tcpReceiver
}

// NewTCPFlow wires a bulk flow between two hosts without sending
// anything yet: both endpoints' handlers are registered immediately, and
// Start launches the transfer. Separating construction from start lets a
// partitioned simulation register the two endpoints during single-
// threaded setup — Start then runs entirely on the sender's scheduler,
// so from and to may live in different partition domains.
func NewTCPFlow(from, to *Host, srcPort, dstPort uint16, cfg TCPConfig) *TCPFlow {
	cfg = cfg.withDefaults()
	f := &TCPFlow{}
	f.receiver = newTCPReceiver(to, to.Endpoint(dstPort), from.Endpoint(srcPort), cfg)
	f.sender = newTCPSender(from, from.Endpoint(srcPort), to.Endpoint(dstPort), cfg)
	to.HandleTCP(dstPort, f.receiver.onSegment)
	from.HandleTCP(srcPort, f.sender.onAck)
	return f
}

// Start begins the transfer (first transmission burst).
func (f *TCPFlow) Start() { f.sender.sendData() }

// StartTCPFlow wires a bulk flow from one host to another and starts
// sending immediately. srcPort/dstPort identify the flow's 4-tuple.
func StartTCPFlow(from, to *Host, srcPort, dstPort uint16, cfg TCPConfig) *TCPFlow {
	f := NewTCPFlow(from, to, srcPort, dstPort, cfg)
	f.Start()
	return f
}

// Stop freezes the sender (in-flight packets still drain).
func (f *TCPFlow) Stop() { f.sender.stop() }

// Done reports whether a bounded flow (MaxBytes > 0) has offered all its
// data and seen every byte acknowledged. Unbounded flows are never done.
func (f *TCPFlow) Done() bool {
	s := f.sender
	return s.cfg.MaxBytes > 0 && s.sndNxt >= s.cfg.MaxBytes && s.sndUna == s.sndNxt
}

// Stats merges sender and receiver accounting.
func (f *TCPFlow) Stats() TCPStats {
	s := f.sender.stats
	s.GoodputBytes = f.receiver.goodputBytes
	s.DupSegments = f.receiver.dupSegments
	s.SRTT = f.sender.srtt
	s.CwndBytes = f.sender.cwnd
	return s
}

type tcpSender struct {
	cfg   TCPConfig
	sched *sim.Scheduler
	host  *Host
	src   packet.Endpoint
	dst   packet.Endpoint

	sndUna, sndNxt uint32
	// maxSndNxt is the transmission high-water mark: after an RTO rewinds
	// sndNxt (go-back-N), sends below it are retransmissions.
	maxSndNxt      uint32
	cwnd, ssthresh float64
	dupAcks        int
	inRecovery     bool
	recover        uint32
	inflateCap     float64
	stopped        bool

	// RTT estimation (RFC 6298) with Karn's algorithm: one timed
	// segment at a time, never a retransmitted one.
	srtt, rttvar time.Duration
	hasSRTT      bool
	rto          time.Duration
	rttSeq       uint32
	rttStart     time.Duration
	rttPending   bool

	// Pacing (sch_fq-style): transmissions are spread at 2·cwnd/SRTT
	// rather than window-dumped, once an RTT estimate exists.
	nextSend  time.Duration
	paceTimer sim.Timer

	rtoTimer sim.Timer
	stats    TCPStats
}

func newTCPSender(host *Host, src, dst packet.Endpoint, cfg TCPConfig) *tcpSender {
	return &tcpSender{
		cfg:      cfg,
		sched:    host.sched,
		host:     host,
		src:      src,
		dst:      dst,
		cwnd:     float64(cfg.InitCwndSegments * cfg.MSS),
		ssthresh: 1 << 30,
		rto:      cfg.MinRTO,
	}
}

func (s *tcpSender) stop() {
	s.stopped = true
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
}

func (s *tcpSender) flight() float64 { return float64(s.sndNxt - s.sndUna) }

// sendData transmits new segments while the congestion and receive
// windows allow.
func (s *tcpSender) sendData() {
	if s.stopped {
		return
	}
	wnd := s.cwnd
	if rw := float64(s.cfg.ReceiveWindow); rw < wnd {
		wnd = rw
	}
	for s.flight()+float64(s.cfg.MSS) <= wnd {
		if s.cfg.MaxBytes > 0 && s.sndNxt >= s.cfg.MaxBytes {
			break
		}
		now := s.sched.Now()
		if s.hasSRTT && now < s.nextSend {
			if !s.paceTimer.Scheduled() {
				s.paceTimer = s.sched.At(s.nextSend, func() {
					s.paceTimer = sim.Timer{}
					s.sendData()
				})
			}
			break
		}
		retx := s.sndNxt < s.maxSndNxt
		s.transmit(s.sndNxt, retx)
		s.sndNxt += uint32(s.cfg.MSS)
		if !retx {
			s.stats.SegmentsSent++
			s.maxSndNxt = s.sndNxt
		}
		if s.hasSRTT {
			interval := time.Duration(float64(s.srtt) * float64(s.cfg.MSS) / (2 * s.cwnd))
			base := now
			if s.nextSend > base {
				base = s.nextSend
			}
			s.nextSend = base + interval
		}
	}
	s.armRTO()
}

func (s *tcpSender) transmit(seq uint32, isRetransmit bool) {
	if isRetransmit {
		s.stats.Retransmits++
		if s.rttPending && seq <= s.rttSeq {
			s.rttPending = false // Karn: invalidate the timed sample
		}
	} else if !s.rttPending {
		s.rttSeq = seq
		s.rttStart = s.sched.Now()
		s.rttPending = true
	}
	seg := packet.NewTCP(s.src, s.dst, seq, 0, packet.TCPAck, 0xffff, make([]byte, s.cfg.MSS))
	s.host.Send(seg)
}

func (s *tcpSender) armRTO() {
	s.rtoTimer.Stop()
	s.rtoTimer = sim.Timer{}
	if s.sndNxt == s.sndUna || s.stopped {
		return
	}
	s.rtoTimer = s.sched.After(s.rto, s.onRTO)
}

func (s *tcpSender) onRTO() {
	if s.stopped || s.sndNxt == s.sndUna {
		return
	}
	s.stats.Timeouts++
	s.ssthresh = maxf(s.flight()/2, float64(2*s.cfg.MSS))
	s.cwnd = float64(s.cfg.MSS)
	s.inRecovery = false
	s.dupAcks = 0
	s.rttPending = false
	// Go back N, as BSD TCP does on timeout: everything past sndUna is
	// presumed lost and becomes eligible for retransmission as the window
	// reopens. Without the rewind a multi-segment tail loss (say, a link
	// outage) lingers as phantom flight that blocks new data, and the
	// flow crawls back one segment per doubled RTO.
	s.sndNxt = s.sndUna
	s.transmit(s.sndUna, true)
	s.sndNxt += uint32(s.cfg.MSS)
	s.rto *= 2
	if s.rto > time.Minute {
		s.rto = time.Minute
	}
	s.armRTO()
}

// onAck processes an incoming (possibly duplicate) acknowledgement.
func (s *tcpSender) onAck(pkt *packet.Packet) {
	if pkt.TCP == nil || pkt.TCP.Flags&packet.TCPAck == 0 || s.stopped {
		return
	}
	ack := pkt.TCP.Ack
	// The acceptable upper bound is the high-water mark, not sndNxt:
	// after a go-back-N rewind the receiver may cumulatively acknowledge
	// data sent before the timeout, above the rewound sndNxt.
	switch {
	case ack > s.sndUna && ack <= s.maxSndNxt:
		s.onNewAck(ack)
	case ack == s.sndUna && s.sndNxt > s.sndUna:
		s.onDupAck()
	}
}

func (s *tcpSender) onNewAck(ack uint32) {
	if s.rttPending && ack > s.rttSeq {
		s.sampleRTT(s.sched.Now() - s.rttStart)
		s.rttPending = false
	}
	acked := float64(ack - s.sndUna)
	s.sndUna = ack
	if s.sndNxt < ack {
		s.sndNxt = ack // the ACK leapfrogged a go-back-N rewind
	}
	s.stats.BytesAcked += uint64(acked)

	mss := float64(s.cfg.MSS)
	if s.inRecovery {
		if ack >= s.recover {
			// Full acknowledgement: leave recovery, deflate.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.dupAcks = 0
		} else {
			// Partial acknowledgement (NewReno): retransmit the next
			// hole, deflate by the amount acknowledged.
			s.transmit(s.sndUna, true)
			s.cwnd = maxf(s.cwnd-acked+mss, mss)
		}
	} else {
		s.dupAcks = 0
		if s.cwnd < s.ssthresh {
			s.cwnd += mss // slow start
		} else {
			s.cwnd += mss * mss / s.cwnd // congestion avoidance
		}
	}
	s.armRTO()
	s.sendData()
}

func (s *tcpSender) onDupAck() {
	s.dupAcks++
	s.stats.DupAcksSeen++
	mss := float64(s.cfg.MSS)
	switch {
	case !s.inRecovery && s.dupAcks == s.cfg.DupThresh:
		// Fast retransmit + fast recovery.
		s.stats.FastRetransmits++
		s.ssthresh = maxf(s.flight()/2, 2*mss)
		s.recover = s.sndNxt
		// Inflation can never legitimately exceed the data actually in
		// flight at loss time; the cap keeps duplicated ACK frames (a
		// Dup-path artefact, or an ACK-division attack) from pumping
		// the window arbitrarily.
		s.inflateCap = s.ssthresh + s.flight()
		s.transmit(s.sndUna, true)
		s.cwnd = s.ssthresh + float64(s.cfg.DupThresh)*mss
		s.inRecovery = true
	case s.inRecovery:
		// Window inflation: each further dup ACK signals a departure.
		if s.cwnd+mss <= s.inflateCap {
			s.cwnd += mss
		}
		s.sendData()
	}
}

// sampleRTT implements RFC 6298 SRTT/RTTVAR.
func (s *tcpSender) sampleRTT(rtt time.Duration) {
	if !s.hasSRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.hasSRTT = true
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
}

type tcpReceiver struct {
	cfg   TCPConfig
	sched *sim.Scheduler
	host  *Host
	local packet.Endpoint
	peer  packet.Endpoint

	rcvNxt       uint32
	outOfOrder   map[uint32]int
	goodputBytes uint64
	dupSegments  uint64

	pendingAcks int
	delAckTimer sim.Timer
}

func newTCPReceiver(host *Host, local, peer packet.Endpoint, cfg TCPConfig) *tcpReceiver {
	return &tcpReceiver{
		cfg:        cfg,
		sched:      host.sched,
		host:       host,
		local:      local,
		peer:       peer,
		outOfOrder: make(map[uint32]int),
	}
}

func (r *tcpReceiver) onSegment(pkt *packet.Packet) {
	if pkt.TCP == nil || len(pkt.Payload) == 0 {
		return
	}
	seq := pkt.TCP.Seq
	n := len(pkt.Payload)
	switch {
	case seq == r.rcvNxt:
		r.rcvNxt += uint32(n)
		r.goodputBytes += uint64(n)
		// Drain any now-contiguous out-of-order data.
		for {
			ln, ok := r.outOfOrder[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.outOfOrder, r.rcvNxt)
			r.rcvNxt += uint32(ln)
			r.goodputBytes += uint64(ln)
		}
		r.ackInOrder()
	case seq < r.rcvNxt:
		// Old or duplicate data: immediate duplicate ACK (RFC 5681).
		r.dupSegments++
		r.sendAck()
	default:
		// Hole: buffer and signal with an immediate duplicate ACK.
		if _, dup := r.outOfOrder[seq]; dup {
			r.dupSegments++
		} else {
			r.outOfOrder[seq] = n
		}
		r.sendAck()
	}
}

func (r *tcpReceiver) ackInOrder() {
	r.pendingAcks++
	if r.pendingAcks >= r.cfg.AckEvery {
		r.sendAck()
		return
	}
	if !r.delAckTimer.Scheduled() {
		r.delAckTimer = r.sched.After(r.cfg.DelAckTimeout, func() {
			r.delAckTimer = sim.Timer{}
			if r.pendingAcks > 0 {
				r.sendAck()
			}
		})
	}
}

func (r *tcpReceiver) sendAck() {
	r.pendingAcks = 0
	r.delAckTimer.Stop()
	r.delAckTimer = sim.Timer{}
	ack := packet.NewTCP(r.local, r.peer, 0, r.rcvNxt, packet.TCPAck, 0xffff, nil)
	r.host.Send(ack)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
