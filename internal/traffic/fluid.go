package traffic

import (
	"fmt"
	"math"
	"time"

	"netco/internal/netem"
	"netco/internal/sim"
)

// The fluid tier models flows as rate processes instead of packet
// streams: each flow is a demand plus a path of directed link hops, and
// a max-min fair allocator shares every link's capacity among the flows
// crossing it. No per-packet events exist for a fluid flow — links just
// carry its allocated rate as aggregate load (netem.Link.SetFluidLoad),
// which the packet tier sees as shrunken effective capacity and
// inflated queue delay. This is what makes million-flow scenarios
// tractable: cost scales with rate *changes* (epoch settles), not with
// packets.
//
// Determinism contract: the allocator never iterates a Go map. Flows
// are processed in creation order and link directions in first-touch
// order, so identical construction sequences produce bit-identical
// allocations, loads, and delivered-byte counters regardless of host,
// worker count, or run repetition.

// Hop is one directed link traversal on a fluid flow's path: the link
// plus the end the flow transmits from (netem's 0/1 orientation, as
// returned by Ports.Ref).
type Hop struct {
	Link *netem.Link
	End  int
}

// Expander drives real packets for a fluid flow promoted across a
// packet-exact region: the fluid tier retargets its rate at every
// reallocation and reads back how many bytes the packet tier actually
// delivered end to end.
type Expander interface {
	// SetRate retargets the packet generator's offered load (bits/s).
	SetRate(bps float64)
	// DeliveredBytes returns cumulative bytes delivered by the packet
	// tier since the expander was created (monotone).
	DeliveredBytes() uint64
	// Start and Stop control the underlying generator.
	Start()
	Stop()
}

// FluidConfig parameterises a FluidNet.
type FluidConfig struct {
	// Epoch is the reallocation quantum: rate changes requested inside
	// an epoch (flow starts, stops, demand edits) are coalesced and
	// applied together at the next epoch boundary. Default 10 ms.
	Epoch time.Duration
}

// fluidDir is the allocator's per-(link, direction) state.
type fluidDir struct {
	link *netem.Link
	end  int
	cap  float64 // link capacity in bits/s; 0 = unconstrained

	// Scratch for one settle pass.
	load     float64 // total allocated rate through this direction
	unfrozen int     // flows still receiving increments
	sat      bool    // saturated this round
}

type dirKey struct {
	link *netem.Link
	end  int
}

// FluidNet owns the fluid flows of one simulation and runs the max-min
// fair allocator over them at epoch boundaries.
type FluidNet struct {
	sched *sim.Scheduler
	epoch time.Duration

	flows  []*FluidFlow // active + recently-stopped, creation order
	dirs   []*fluidDir  // first-touch order
	dirOf  map[dirKey]*fluidDir
	nextID int

	dirty   bool
	armed   bool
	timer   sim.Timer
	settles uint64
}

// NewFluidNet creates an empty fluid tier on the scheduler.
func NewFluidNet(sched *sim.Scheduler, cfg FluidConfig) *FluidNet {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 10 * time.Millisecond
	}
	return &FluidNet{
		sched: sched,
		epoch: cfg.Epoch,
		dirOf: make(map[dirKey]*fluidDir),
	}
}

// Epoch returns the reallocation quantum.
func (fn *FluidNet) Epoch() time.Duration { return fn.epoch }

// Settles returns how many reallocation passes have run — the fluid
// tier's event-count analogue.
func (fn *FluidNet) Settles() uint64 { return fn.settles }

// Flows returns the number of flows currently tracked (active or
// awaiting their final settle).
func (fn *FluidNet) Flows() int { return len(fn.flows) }

// Close cancels any pending epoch timer. Loads already pushed to links
// stay as they are; call after the measurement window closes.
func (fn *FluidNet) Close() {
	fn.timer.Stop()
	fn.armed = false
	fn.dirty = false
}

// NewFlow registers a rate process with the given demand (bits/s) and
// directed path. The flow is idle until Start. Demand is clamped to
// finite non-negative; a nil link in the path panics (construction
// bug).
func (fn *FluidNet) NewFlow(demand float64, path []Hop) *FluidFlow {
	if math.IsNaN(demand) || math.IsInf(demand, 0) || demand < 0 {
		demand = 0
	}
	f := &FluidFlow{
		net:    fn,
		id:     fn.nextID,
		demand: demand,
		dirs:   make([]*fluidDir, len(path)),
	}
	fn.nextID++
	for i, h := range path {
		if h.Link == nil {
			panic(fmt.Sprintf("traffic: fluid flow %d hop %d has nil link", f.id, i))
		}
		f.dirs[i] = fn.dirFor(h)
	}
	return f
}

func (fn *FluidNet) dirFor(h Hop) *fluidDir {
	k := dirKey{link: h.Link, end: h.End}
	if d, ok := fn.dirOf[k]; ok {
		return d
	}
	d := &fluidDir{link: h.Link, end: h.End, cap: h.Link.Capacity()}
	fn.dirOf[k] = d
	fn.dirs = append(fn.dirs, d)
	return d
}

// markDirty schedules a settle at the next epoch boundary (strictly
// after now), coalescing every change requested inside the epoch into
// one reallocation.
func (fn *FluidNet) markDirty() {
	fn.dirty = true
	if fn.armed {
		return
	}
	fn.armed = true
	now := fn.sched.Now()
	boundary := (now/fn.epoch + 1) * fn.epoch
	fn.timer = fn.sched.After(boundary-now, fn.onEpoch)
}

func (fn *FluidNet) onEpoch() {
	fn.armed = false
	if fn.dirty {
		fn.settle()
	}
}

// settle recomputes the max-min fair allocation by progressive filling:
// all unfrozen flows' rates rise in lockstep until a flow hits its
// demand or a link direction saturates; affected flows freeze and the
// filling continues among the rest. Each round freezes at least one
// flow, so the pass terminates in at most len(flows) rounds (uniform
// demands collapse to one or two).
func (fn *FluidNet) settle() {
	fn.dirty = false
	now := fn.sched.Now()

	// Accrue every flow to now at its old rate before changing anything,
	// and compact out flows that have fully stopped.
	act := fn.flows[:0]
	for _, f := range fn.flows {
		f.accrue(now)
		if f.active {
			act = append(act, f)
		} else {
			f.listed = false
		}
	}
	fn.flows = act

	for _, d := range fn.dirs {
		d.load, d.unfrozen, d.sat = 0, 0, false
	}
	for _, f := range act {
		f.rate = 0
		f.frozen = false
		for _, d := range f.dirs {
			d.unfrozen++
		}
	}

	unfrozen := len(act)
	for unfrozen > 0 {
		// Smallest increment that saturates a direction or satisfies a
		// demand.
		inc := math.Inf(1)
		for _, d := range fn.dirs {
			if d.unfrozen == 0 || d.cap <= 0 {
				continue
			}
			if h := (d.cap - d.load) / float64(d.unfrozen); h < inc {
				inc = h
			}
		}
		for _, f := range act {
			if f.frozen {
				continue
			}
			if h := f.demand - f.rate; h < inc {
				inc = h
			}
		}
		if inc < 0 || math.IsInf(inc, 1) {
			inc = 0 // saturated below zero headroom, or all demands met
		}
		for _, f := range act {
			if !f.frozen {
				f.rate += inc
			}
		}
		for _, d := range fn.dirs {
			d.load += inc * float64(d.unfrozen)
			d.sat = d.cap > 0 && d.load >= d.cap*(1-1e-9)
		}
		froze := false
		for _, f := range act {
			if f.frozen {
				continue
			}
			stop := f.rate >= f.demand*(1-1e-9)
			if !stop {
				for _, d := range f.dirs {
					if d.sat {
						stop = true
						break
					}
				}
			}
			if stop {
				f.frozen = true
				froze = true
				unfrozen--
				for _, d := range f.dirs {
					d.unfrozen--
				}
			}
		}
		if !froze {
			// Floating-point pathology guard: freeze everything rather
			// than spin.
			for _, f := range act {
				if !f.frozen {
					f.frozen = true
					unfrozen--
				}
			}
		}
	}

	// Push the aggregate loads into the packet tier and retarget any
	// promoted flows' expanders.
	for _, d := range fn.dirs {
		d.link.SetFluidLoad(d.end, d.load)
	}
	for _, f := range act {
		if f.exp != nil {
			f.exp.SetRate(f.rate)
		}
	}
	fn.settles++
}

// FluidFlow is a rate process managed by a FluidNet. It satisfies Flow.
type FluidFlow struct {
	net    *FluidNet
	id     int
	demand float64
	dirs   []*fluidDir

	rate   float64 // current allocation, bits/s
	frozen bool    // settle scratch

	active bool
	listed bool // in the allocator's flow list (drained at settle)

	// Delivered-bit accounting: lazy accrual at the current rate while
	// fluid, expander byte deltas while promoted.
	accrued     float64
	lastAccrual time.Duration

	exp     Expander
	expBase uint64
}

// ID returns the flow's creation index (the allocator's iteration
// order).
func (f *FluidFlow) ID() int { return f.id }

// Mode implements Flow.
func (f *FluidFlow) Mode() FlowMode { return FlowFluid }

// Demand returns the flow's offered load in bits/s.
func (f *FluidFlow) Demand() float64 { return f.demand }

// Rate returns the current max-min allocation in bits/s (zero until the
// first settle after Start).
func (f *FluidFlow) Rate() float64 { return f.rate }

// Start activates the flow. Its load joins the allocation at the next
// epoch boundary. Idempotent.
func (f *FluidFlow) Start() {
	if f.active {
		return
	}
	f.active = true
	f.lastAccrual = f.net.sched.Now()
	if !f.listed {
		f.listed = true
		f.net.flows = append(f.net.flows, f)
	}
	f.net.markDirty()
}

// Stop deactivates the flow; its load leaves the links at the next
// epoch boundary. A promoted flow's expander stops immediately.
// Idempotent.
func (f *FluidFlow) Stop() {
	if !f.active {
		return
	}
	f.accrue(f.net.sched.Now())
	if f.exp != nil {
		f.demoteLocked()
	}
	f.active = false
	f.rate = 0
	f.net.markDirty()
}

// Promote expands the flow across a packet-exact region: from now on
// exp emits real packets at the flow's allocated rate and delivered
// bytes are read from the packet tier instead of accrued analytically.
// The flow's fluid path (its hops outside the region) keeps carrying
// its aggregate load. Promoting an already-promoted flow panics.
func (f *FluidFlow) Promote(exp Expander) {
	if f.exp != nil {
		panic(fmt.Sprintf("traffic: fluid flow %d promoted twice", f.id))
	}
	f.accrue(f.net.sched.Now())
	f.exp = exp
	f.expBase = exp.DeliveredBytes()
	exp.SetRate(f.rate)
	exp.Start()
}

// Demote collapses the flow back to a pure rate process: the expander's
// delivered bytes are folded into the flow's total and analytic accrual
// resumes. No-op if not promoted.
func (f *FluidFlow) Demote() {
	if f.exp == nil {
		return
	}
	f.demoteLocked()
}

func (f *FluidFlow) demoteLocked() {
	now := f.net.sched.Now()
	f.accrue(now) // folds expander bytes, resets lastAccrual
	f.exp.Stop()
	f.exp = nil
}

// Promoted reports whether the flow currently drives a packet expander.
func (f *FluidFlow) Promoted() bool { return f.exp != nil }

// accrue folds delivered bits up to now into the running total: the
// expander's byte delta while promoted, rate × elapsed while fluid.
func (f *FluidFlow) accrue(now time.Duration) {
	if f.exp != nil {
		cur := f.exp.DeliveredBytes()
		f.accrued += float64(cur-f.expBase) * 8
		f.expBase = cur
	} else if f.active {
		f.accrued += f.rate * (now - f.lastAccrual).Seconds()
	}
	f.lastAccrual = now
}

// DeliveredBits returns the flow's cumulative delivered traffic in bits
// up to the scheduler's current time.
func (f *FluidFlow) DeliveredBits() float64 {
	f.accrue(f.net.sched.Now())
	return f.accrued
}

// DeliveredBytes returns DeliveredBits in bytes, rounded down.
func (f *FluidFlow) DeliveredBytes() uint64 {
	return uint64(f.DeliveredBits() / 8)
}

// UDPExpander adapts a UDPSource/UDPSink pair to the Expander
// interface, letting a promoted fluid flow drive real datagrams through
// a packet-exact region and measure what actually arrived.
type UDPExpander struct {
	Src  *UDPSource
	Sink *UDPSink
}

var _ Expander = (*UDPExpander)(nil)

// NewUDPExpander wires a source and sink into an expander.
func NewUDPExpander(src *UDPSource, sink *UDPSink) *UDPExpander {
	return &UDPExpander{Src: src, Sink: sink}
}

// SetRate implements Expander.
func (e *UDPExpander) SetRate(bps float64) { e.Src.SetRate(bps) }

// Start implements Expander.
func (e *UDPExpander) Start() { e.Src.Start() }

// Stop implements Expander.
func (e *UDPExpander) Stop() { e.Src.Stop() }

// DeliveredBytes implements Expander with the sink's unique payload
// bytes.
func (e *UDPExpander) DeliveredBytes() uint64 { return e.Sink.Stats().UniqueBytes }
