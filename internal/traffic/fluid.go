package traffic

import (
	"context"
	"fmt"
	"math"
	"time"

	"netco/internal/netem"
	"netco/internal/pool"
	"netco/internal/sim"
)

// The fluid tier models flows as rate processes instead of packet
// streams: each flow is a demand plus a path of directed link hops, and
// a max-min fair allocator shares every link's capacity among the flows
// crossing it. No per-packet events exist for a fluid flow — links just
// carry its allocated rate as aggregate load (netem.Link.SetFluidLoad),
// which the packet tier sees as shrunken effective capacity and
// inflated queue delay. This is what makes million-flow scenarios
// tractable: cost scales with rate *changes* (epoch settles), not with
// packets.
//
// Determinism contract: the allocator never iterates a Go map. Flow and
// link-direction worklists are built in event order and traversed as
// slices, so identical construction sequences produce bit-identical
// allocations, loads, and delivered-byte counters regardless of host,
// worker count, or run repetition.
//
// Settles are incremental: a flow start/stop/retarget or a capacity
// change marks its flow (or direction) dirty, and the settle pass
// re-solves only the connected components of the flow/direction
// dependency graph that contain a dirty seed. Flows in untouched
// components keep their rates — safe because a component is closed
// under "shares a link direction with", so no constraint of an
// untouched flow has changed. Each component is solved from scratch by
// progressive filling, and FluidConfig.FullResettle (the reference
// oracle) simply seeds every component dirty; both modes run the same
// per-component solver, which is what makes them bit-identical.

// Hop is one directed link traversal on a fluid flow's path: the link
// plus the end the flow transmits from (netem's 0/1 orientation, as
// returned by Ports.Ref).
type Hop struct {
	Link *netem.Link
	End  int
}

// Expander drives real packets for a fluid flow promoted across a
// packet-exact region: the fluid tier retargets its rate at every
// reallocation and reads back how many bytes the packet tier actually
// delivered end to end.
type Expander interface {
	// SetRate retargets the packet generator's offered load (bits/s).
	SetRate(bps float64)
	// DeliveredBytes returns cumulative bytes delivered by the packet
	// tier since the expander was created (monotone).
	DeliveredBytes() uint64
	// Start and Stop control the underlying generator.
	Start()
	Stop()
}

// FluidConfig parameterises a FluidNet.
type FluidConfig struct {
	// Epoch is the reallocation quantum: rate changes requested inside
	// an epoch (flow starts, stops, demand edits) are coalesced and
	// applied together at the next epoch boundary. Default 10 ms.
	Epoch time.Duration

	// FullResettle disables the dirty-set optimisation: every settle
	// re-solves every connected component from scratch. This is the
	// reference oracle the incremental mode is differentially tested
	// against; both run the same per-component solver, so their rates
	// are bit-identical.
	FullResettle bool

	// CongestionRho, when > 0, fires OnCongested after a settle for
	// every active, unpromoted flow crossing a direction whose
	// utilisation load/cap reached the threshold. Callbacks fire in
	// deterministic order (dirty-seed order, then per-direction flow
	// order), once per flow per settle, after all loads are pushed —
	// so a callback may promote the flow immediately.
	CongestionRho float64
	OnCongested   func(f *FluidFlow, rho float64)

	// DemoteRho, when > 0, is the hysteresis lower threshold for
	// congestion-promoted flows: after a settle, every promoted flow in
	// a touched component whose worst direction utilisation has fallen
	// below DemoteRho — and that has been promoted for at least
	// DemoteAfter — gets an OnUncongested callback (which typically
	// calls Demote). Evaluated only when the flow's component is
	// re-solved: an untouched component's utilisations have not
	// changed, so no new demotion evidence exists for it. Callbacks
	// fire after OnCongested ones, in component order.
	DemoteRho     float64
	DemoteAfter   time.Duration
	OnUncongested func(f *FluidFlow, rho float64)

	// SettleWorkers fans the per-component progressive-filling solves
	// of one settle across a worker pool. Components are independent by
	// construction (they partition the flow/direction graph), component
	// discovery and result publication stay serial in deterministic
	// seed order, and the per-component arithmetic is untouched — so
	// allocations are bit-identical at every worker count, which the
	// differential tests pin. <= 1 solves serially on the caller.
	SettleWorkers int
}

// fluidDir is the allocator's per-(link, direction) state.
type fluidDir struct {
	link *netem.Link
	end  int
	cap  float64 // link capacity in bits/s; 0 = unconstrained

	// flows lists every path occurrence of a listed flow through this
	// direction (a flow appears once per traversal), maintained by
	// list/unlist with swap-removal. It is the edge set the settle
	// pass's component BFS walks.
	flows []dirFlow

	dirty bool // queued in dirtyDirs for the next settle
	mark  int  // settle generation this dir was last visited in

	// Scratch for one settle pass.
	load     float64 // total allocated rate through this direction
	unfrozen int     // flows still receiving increments
	sat      bool    // saturated this round
}

// dirFlow is one path occurrence of a flow through a direction: the
// flow plus the index of this direction in the flow's own hop list
// (so a swap-removal can fix the moved occurrence's back-pointer).
type dirFlow struct {
	f  *FluidFlow
	di int
}

type dirKey struct {
	link *netem.Link
	end  int
}

// FluidNet owns the fluid flows of one simulation and runs the max-min
// fair allocator over them at epoch boundaries.
type FluidNet struct {
	sched *sim.Scheduler
	epoch time.Duration

	flows  []*FluidFlow // listed flows (order perturbed by swap-removal)
	dirs   []*fluidDir  // first-touch order
	dirOf  map[dirKey]*fluidDir
	nextID int

	// Dirty seeds for the next settle, in event order. A flow or dir
	// appears at most once (guarded by its dirty flag).
	dirtyFlows []*FluidFlow
	dirtyDirs  []*fluidDir

	// Settle scratch, reused across passes so the steady-state settle
	// path allocates nothing. comps[:ncomps] holds this settle's
	// discovered components; entries keep their slice capacity across
	// settles.
	comps       []fluidComp
	ncomps      int
	congested   []congEvent
	uncongested []congEvent
	seeds       []*FluidFlow // full-mode snapshot of flows (delisting-safe)
	retired     []*FluidFlow // delisted flows awaiting recycle this settle
	gen         int

	// Flow arena: Release'd flows are recycled through this free list
	// once their final settle has delisted them, so steady-state churn
	// (NewFlow/Start/.../Stop/Release) allocates no flow objects.
	freeFlows   []*FluidFlow
	recycled    uint64
	retiredBits float64

	full        bool
	congRho     float64
	onCong      func(f *FluidFlow, rho float64)
	demoteRho   float64
	demoteAfter time.Duration
	onUncong    func(f *FluidFlow, rho float64)
	workers     int

	dirty      bool
	armed      bool
	timer      sim.Timer
	onEpochFn  func()
	settles    uint64
	compSolves uint64
}

// fluidComp is one connected component of the flow/direction graph
// discovered by a settle: the active flows to allocate and the
// directions constraining them. Slices are recycled across settles.
type fluidComp struct {
	flows []*FluidFlow
	dirs  []*fluidDir
}

// congEvent is one pending OnCongested callback.
type congEvent struct {
	f   *FluidFlow
	rho float64
}

// NewFluidNet creates an empty fluid tier on the scheduler.
func NewFluidNet(sched *sim.Scheduler, cfg FluidConfig) *FluidNet {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 10 * time.Millisecond
	}
	fn := &FluidNet{
		sched:       sched,
		epoch:       cfg.Epoch,
		dirOf:       make(map[dirKey]*fluidDir),
		full:        cfg.FullResettle,
		congRho:     cfg.CongestionRho,
		onCong:      cfg.OnCongested,
		demoteRho:   cfg.DemoteRho,
		demoteAfter: cfg.DemoteAfter,
		onUncong:    cfg.OnUncongested,
		workers:     cfg.SettleWorkers,
	}
	fn.onEpochFn = fn.onEpoch // bound once; arming a timer allocates nothing
	return fn
}

// Epoch returns the reallocation quantum.
func (fn *FluidNet) Epoch() time.Duration { return fn.epoch }

// Settles returns how many reallocation passes have run — the fluid
// tier's event-count analogue.
func (fn *FluidNet) Settles() uint64 { return fn.settles }

// Flows returns the number of flows currently tracked (active or
// awaiting their final settle).
func (fn *FluidNet) Flows() int { return len(fn.flows) }

// Recycled returns how many NewFlow calls were served from the free
// list instead of allocating — the churn engine's recycle counter.
func (fn *FluidNet) Recycled() uint64 { return fn.recycled }

// RetiredBits returns the cumulative delivered bits folded in from
// Release'd flows, so whole-run accounting survives flow recycling.
func (fn *FluidNet) RetiredBits() float64 { return fn.retiredBits }

// ComponentsSolved returns the cumulative number of per-component
// progressive-filling solves across all settles.
func (fn *FluidNet) ComponentsSolved() uint64 { return fn.compSolves }

// Close cancels any pending epoch timer. Loads already pushed to links
// stay as they are; call after the measurement window closes.
func (fn *FluidNet) Close() {
	fn.timer.Stop()
	fn.armed = false
	fn.dirty = false
}

// NewFlow registers a rate process with the given demand (bits/s) and
// directed path. The flow is idle until Start. Demand is clamped to
// finite non-negative; a nil link in the path panics (construction
// bug). Flow objects come from the Release free list when one is
// available, so steady-state churn allocates nothing (path slices are
// reused when capacity suffices).
func (fn *FluidNet) NewFlow(demand float64, path []Hop) *FluidFlow {
	if math.IsNaN(demand) || math.IsInf(demand, 0) || demand < 0 {
		demand = 0
	}
	var f *FluidFlow
	if n := len(fn.freeFlows); n > 0 {
		f = fn.freeFlows[n-1]
		fn.freeFlows[n-1] = nil
		fn.freeFlows = fn.freeFlows[:n-1]
		fn.recycled++
		f.id = fn.nextID
		f.demand = demand
	} else {
		f = &FluidFlow{net: fn, id: fn.nextID, demand: demand}
	}
	fn.nextID++
	if len(path) > 0 {
		if cap(f.dirs) >= len(path) {
			f.dirs = f.dirs[:len(path)]
			f.posInDir = f.posInDir[:len(path)]
		} else {
			f.dirs = make([]*fluidDir, len(path))
			f.posInDir = make([]int, len(path))
		}
		for i, h := range path {
			if h.Link == nil {
				panic(fmt.Sprintf("traffic: fluid flow %d hop %d has nil link", f.id, i))
			}
			f.dirs[i] = fn.dirFor(h)
		}
	}
	return f
}

// recycle resets a fully-delisted Release'd flow and returns it to the
// free list, folding its delivered bits into the retired total.
func (fn *FluidNet) recycle(f *FluidFlow) {
	fn.retiredBits += f.accrued
	f.id = -1
	f.demand = 0
	f.dirs = f.dirs[:0]
	f.posInDir = f.posInDir[:0]
	f.rate = 0
	f.frozen = false
	f.released = false
	f.accrued = 0
	f.lastAccrual = 0
	f.exp = nil
	f.expBase = 0
	f.promotedAt = 0
	fn.freeFlows = append(fn.freeFlows, f)
}

func (fn *FluidNet) dirFor(h Hop) *fluidDir {
	k := dirKey{link: h.Link, end: h.End}
	if d, ok := fn.dirOf[k]; ok {
		return d
	}
	d := &fluidDir{link: h.Link, end: h.End, cap: h.Link.Capacity()}
	fn.dirOf[k] = d
	fn.dirs = append(fn.dirs, d)
	return d
}

// SetCapacity overrides the allocator's capacity for the (link, end)
// direction — chaos hooks and tests use it to model capacity changes.
// It is a no-op for a direction no fluid flow has ever traversed. The
// new allocation takes effect at the next epoch boundary.
func (fn *FluidNet) SetCapacity(l *netem.Link, end int, bps float64) {
	d, ok := fn.dirOf[dirKey{link: l, end: end}]
	if !ok || d.cap == bps {
		return
	}
	d.cap = bps
	fn.dirtyDir(d)
	fn.markDirty()
}

// dirtyFlow queues f as a settle seed (once per settle).
func (fn *FluidNet) dirtyFlow(f *FluidFlow) {
	if !f.dirtyMk {
		f.dirtyMk = true
		fn.dirtyFlows = append(fn.dirtyFlows, f)
	}
}

// dirtyDir queues d as a settle seed (once per settle).
func (fn *FluidNet) dirtyDir(d *fluidDir) {
	if !d.dirty {
		d.dirty = true
		fn.dirtyDirs = append(fn.dirtyDirs, d)
	}
}

// list enters f into the allocator: the flow list plus every traversed
// direction's occurrence list.
func (fn *FluidNet) list(f *FluidFlow) {
	f.listed = true
	f.listPos = len(fn.flows)
	fn.flows = append(fn.flows, f)
	for i, d := range f.dirs {
		f.posInDir[i] = len(d.flows)
		d.flows = append(d.flows, dirFlow{f: f, di: i})
	}
}

// unlist removes f from the allocator by swap-removal, fixing the
// back-pointers of whatever moved into the vacated slots.
func (fn *FluidNet) unlist(f *FluidFlow) {
	for i, d := range f.dirs {
		p := f.posInDir[i]
		last := len(d.flows) - 1
		moved := d.flows[last]
		d.flows[p] = moved
		moved.f.posInDir[moved.di] = p
		d.flows[last] = dirFlow{} // release the pointer to the GC
		d.flows = d.flows[:last]
	}
	p := f.listPos
	last := len(fn.flows) - 1
	fn.flows[p] = fn.flows[last]
	fn.flows[p].listPos = p
	fn.flows[last] = nil
	fn.flows = fn.flows[:last]
	f.listed = false
}

// markDirty schedules a settle at the next epoch boundary (strictly
// after now), coalescing every change requested inside the epoch into
// one reallocation.
func (fn *FluidNet) markDirty() {
	fn.dirty = true
	if fn.armed {
		return
	}
	fn.armed = true
	now := fn.sched.Now()
	boundary := (now/fn.epoch + 1) * fn.epoch
	fn.timer = fn.sched.After(boundary-now, fn.onEpochFn)
}

func (fn *FluidNet) onEpoch() {
	fn.armed = false
	if fn.dirty {
		fn.settle()
	}
}

// settle re-solves every connected component of the flow/direction
// graph that contains a dirty seed. Components are discovered by BFS
// from each seed and solved one at a time, in seed order; flows in
// components with no seed keep their rates and are not even visited —
// the pass costs O(size of the dirty components), not O(flows).
//
// In FullResettle mode every flow and direction is seeded, which makes
// every settle a from-scratch solve of every component through the
// identical code path — the oracle the incremental mode is compared
// against bit for bit.
// The settle is a three-phase pass so the per-component solves can fan
// across workers without giving up bit-identity:
//
//	discover (serial) — BFS each dirty seed's component, accrue touched
//	  flows at their old rates, delist stopped flows; mutates shared
//	  state (generation marks, the flow list) so it stays on the caller.
//	fill (parallel) — progressive filling per component. Touches only
//	  component-local state (flow rates, direction loads); components
//	  partition the graph, so solves are independent and the arithmetic
//	  is identical at every worker count.
//	publish (serial, component order) — push loads into the packet
//	  tier, retarget promoted expanders, collect congestion/demotion
//	  candidates; ordering-sensitive (scheduler, callbacks), so it runs
//	  in deterministic discovery order.
func (fn *FluidNet) settle() {
	fn.dirty = false
	now := fn.sched.Now()
	fn.gen++
	fn.ncomps = 0

	fn.congested = fn.congested[:0]
	fn.uncongested = fn.uncongested[:0]
	if fn.full {
		// Seed everything. Still one solve per component: discovery
		// skips seeds already swept into an earlier component this
		// generation, so full mode differs from incremental mode only in
		// which components it visits, never in how it solves one. The
		// flow list is snapshotted because discovery delists stopped
		// flows by swap-removal; a snapshot entry delisted early is
		// marked, so the generation check skips it.
		fn.seeds = append(fn.seeds[:0], fn.flows...)
		for i, f := range fn.seeds {
			fn.seeds[i] = nil
			if f.mark != fn.gen {
				fn.discoverComponent(f, nil, now)
			}
		}
		fn.seeds = fn.seeds[:0]
		for _, d := range fn.dirs {
			if d.mark != fn.gen {
				fn.discoverComponent(nil, d, now)
			}
		}
		// Event-order seeds may include flows delisted above; their
		// flags still need clearing.
		for i, f := range fn.dirtyFlows {
			f.dirtyMk = false
			fn.dirtyFlows[i] = nil
		}
		for i, d := range fn.dirtyDirs {
			d.dirty = false
			fn.dirtyDirs[i] = nil
		}
	} else {
		for i, f := range fn.dirtyFlows {
			f.dirtyMk = false
			fn.dirtyFlows[i] = nil
			if f.mark != fn.gen {
				fn.discoverComponent(f, nil, now)
			}
		}
		for i, d := range fn.dirtyDirs {
			d.dirty = false
			fn.dirtyDirs[i] = nil
			if d.mark != fn.gen {
				fn.discoverComponent(nil, d, now)
			}
		}
	}
	fn.dirtyFlows = fn.dirtyFlows[:0]
	fn.dirtyDirs = fn.dirtyDirs[:0]

	// Solve. The parallel path is taken only when there is real fan-out
	// to win; either way the per-component arithmetic is the same code.
	if fn.workers > 1 && fn.ncomps > 1 {
		_, errs := pool.Map(context.Background(), fn.workers, fn.ncomps,
			func(i int) (struct{}, error) {
				fillComponent(&fn.comps[i])
				return struct{}{}, nil
			})
		for _, err := range errs {
			if err != nil {
				panic(err) // PanicError from a solve: surface, don't swallow
			}
		}
	} else {
		for i := 0; i < fn.ncomps; i++ {
			fillComponent(&fn.comps[i])
		}
	}
	fn.compSolves += uint64(fn.ncomps)

	for i := 0; i < fn.ncomps; i++ {
		fn.publishComponent(&fn.comps[i], now)
	}
	fn.settles++

	// Congestion callbacks fire last, after every component's loads are
	// pushed, so a callback sees a consistent network and may promote.
	// Demotion (hysteresis) callbacks follow.
	for i := range fn.congested {
		ev := fn.congested[i]
		fn.congested[i] = congEvent{}
		fn.onCong(ev.f, ev.rho)
	}
	fn.congested = fn.congested[:0]
	for i := range fn.uncongested {
		ev := fn.uncongested[i]
		fn.uncongested[i] = congEvent{}
		fn.onUncong(ev.f, ev.rho)
	}
	fn.uncongested = fn.uncongested[:0]

	// Recycle Release'd flows whose final settle just delisted them.
	// Deferred to the very end so no seed list, component slice or
	// callback can observe a reset flow.
	for i, f := range fn.retired {
		fn.retired[i] = nil
		fn.recycle(f)
	}
	fn.retired = fn.retired[:0]
}

// grabComp returns the next recycled component slot for this settle.
func (fn *FluidNet) grabComp() *fluidComp {
	if fn.ncomps == len(fn.comps) {
		fn.comps = append(fn.comps, fluidComp{})
	}
	c := &fn.comps[fn.ncomps]
	fn.ncomps++
	c.flows = c.flows[:0]
	c.dirs = c.dirs[:0]
	return c
}

// discoverComponent BFS-discovers the connected component containing
// the seed (a flow or a direction) into a recycled component slot,
// accrues every touched flow to now at its old rate before anything
// changes, and delists flows that have fully stopped (queueing
// Release'd ones for recycling). Visited nodes are stamped with the
// settle generation so overlapping seeds coalesce into one component.
// (Untouched flows need no accrual: their rate is constant, so the
// lazy accrue at next touch integrates the same total.)
func (fn *FluidNet) discoverComponent(seedF *FluidFlow, seedD *fluidDir, now time.Duration) {
	c := fn.grabComp()
	flows := c.flows
	dirs := c.dirs
	if seedF != nil {
		seedF.mark = fn.gen
		flows = append(flows, seedF)
	}
	if seedD != nil {
		seedD.mark = fn.gen
		dirs = append(dirs, seedD)
	}
	for fi, di := 0, 0; fi < len(flows) || di < len(dirs); {
		for ; fi < len(flows); fi++ {
			for _, d := range flows[fi].dirs {
				if d.mark != fn.gen {
					d.mark = fn.gen
					dirs = append(dirs, d)
				}
			}
		}
		for ; di < len(dirs); di++ {
			for _, e := range dirs[di].flows {
				if e.f.mark != fn.gen {
					e.f.mark = fn.gen
					flows = append(flows, e.f)
				}
			}
		}
	}

	act := flows[:0]
	for _, f := range flows {
		f.accrue(now)
		if f.active {
			act = append(act, f)
		} else {
			if f.listed {
				fn.unlist(f)
			}
			if f.released {
				fn.retired = append(fn.retired, f)
			}
		}
	}
	c.flows = act
	c.dirs = dirs
}

// fillComponent runs progressive filling over one component: all
// unfrozen flows' rates rise in lockstep until a flow hits its demand
// or a direction saturates; affected flows freeze and the filling
// continues among the rest. Each round freezes at least one flow, so
// the solve terminates in at most len(flows) rounds (uniform demands
// collapse to one or two). Every arithmetic step is a min-reduction or
// a per-entity update, so the result does not depend on the BFS visit
// order — only on the component's membership, which is unique. It
// touches nothing outside the component (no FluidNet state), which is
// what makes the parallel settle race-free and bit-identical to
// serial.
func fillComponent(c *fluidComp) {
	act := c.flows
	dirs := c.dirs
	for _, d := range dirs {
		d.load, d.unfrozen, d.sat = 0, 0, false
	}
	for _, f := range act {
		f.rate = 0
		f.frozen = false
		for _, d := range f.dirs {
			d.unfrozen++
		}
	}
	unfrozen := len(act)
	for unfrozen > 0 {
		// Smallest increment that saturates a direction or satisfies a
		// demand.
		inc := math.Inf(1)
		for _, d := range dirs {
			if d.unfrozen == 0 || d.cap <= 0 {
				continue
			}
			if h := (d.cap - d.load) / float64(d.unfrozen); h < inc {
				inc = h
			}
		}
		for _, f := range act {
			if f.frozen {
				continue
			}
			if h := f.demand - f.rate; h < inc {
				inc = h
			}
		}
		if inc < 0 || math.IsInf(inc, 1) {
			inc = 0 // saturated below zero headroom, or all demands met
		}
		for _, f := range act {
			if !f.frozen {
				f.rate += inc
			}
		}
		for _, d := range dirs {
			d.load += inc * float64(d.unfrozen)
			d.sat = d.cap > 0 && d.load >= d.cap*(1-1e-9)
		}
		froze := false
		for _, f := range act {
			if f.frozen {
				continue
			}
			stop := f.rate >= f.demand*(1-1e-9)
			if !stop {
				for _, d := range f.dirs {
					if d.sat {
						stop = true
						break
					}
				}
			}
			if stop {
				f.frozen = true
				froze = true
				unfrozen--
				for _, d := range f.dirs {
					d.unfrozen--
				}
			}
		}
		if !froze {
			// Floating-point pathology guard: freeze everything rather
			// than spin.
			for _, f := range act {
				if !f.frozen {
					f.frozen = true
					unfrozen--
				}
			}
		}
	}
}

// publishComponent pushes one solved component's aggregate loads into
// the packet tier, retargets promoted flows' expanders, and collects
// congestion-promotion and hysteresis-demotion candidates. Runs
// serially in component-discovery order: everything here is
// ordering-sensitive (scheduler interactions, callback order).
func (fn *FluidNet) publishComponent(c *fluidComp, now time.Duration) {
	act := c.flows
	dirs := c.dirs
	for _, d := range dirs {
		d.link.SetFluidLoad(d.end, d.load)
	}
	for _, f := range act {
		if f.exp != nil {
			f.exp.SetRate(f.rate)
		}
	}

	// Congestion-promotion candidates: active unpromoted flows crossing
	// a direction at or above the utilisation threshold, each at most
	// once per settle (the congestion stamp), tagged with the
	// triggering direction's utilisation.
	if fn.onCong != nil && fn.congRho > 0 {
		for _, d := range dirs {
			if d.cap <= 0 {
				continue
			}
			rho := d.load / d.cap
			if rho < fn.congRho {
				continue
			}
			for _, e := range d.flows {
				f := e.f
				if f.congMark == fn.gen || !f.active || f.exp != nil {
					continue
				}
				f.congMark = fn.gen
				fn.congested = append(fn.congested, congEvent{f: f, rho: rho})
			}
		}
	}

	// Hysteresis-demotion candidates: promoted flows whose worst
	// direction utilisation has dropped below the lower threshold and
	// whose cooldown has elapsed.
	if fn.onUncong != nil && fn.demoteRho > 0 {
		for _, f := range act {
			if f.exp == nil || now-f.promotedAt < fn.demoteAfter {
				continue
			}
			worst := 0.0
			for _, d := range f.dirs {
				if d.cap <= 0 {
					continue
				}
				if rho := d.load / d.cap; rho > worst {
					worst = rho
				}
			}
			if worst < fn.demoteRho {
				fn.uncongested = append(fn.uncongested, congEvent{f: f, rho: worst})
			}
		}
	}
}

// FluidFlow is a rate process managed by a FluidNet. It satisfies Flow.
type FluidFlow struct {
	net    *FluidNet
	id     int
	demand float64
	dirs   []*fluidDir

	// posInDir[i] is this flow's slot in dirs[i].flows — the
	// back-pointer swap-removal needs.
	posInDir []int
	listPos  int // slot in the allocator's flow list

	rate   float64 // current allocation, bits/s
	frozen bool    // settle scratch

	active   bool
	listed   bool // in the allocator's flow + per-direction lists
	dirtyMk  bool // queued in dirtyFlows for the next settle
	released bool // recycled into the free list once delisted
	mark     int  // settle generation last visited (component BFS)
	congMark int  // settle generation OnCongested last fired

	// Delivered-bit accounting: lazy accrual at the current rate while
	// fluid, expander byte deltas while promoted.
	accrued     float64
	lastAccrual time.Duration

	exp        Expander
	expBase    uint64
	promotedAt time.Duration // virtual time of Promote (hysteresis cooldown)
}

// ID returns the flow's creation index (the allocator's iteration
// order).
func (f *FluidFlow) ID() int { return f.id }

// Mode implements Flow.
func (f *FluidFlow) Mode() FlowMode { return FlowFluid }

// Demand returns the flow's offered load in bits/s.
func (f *FluidFlow) Demand() float64 { return f.demand }

// Rate returns the current max-min allocation in bits/s (zero until the
// first settle after Start).
func (f *FluidFlow) Rate() float64 { return f.rate }

// Active reports whether the flow is between Start and Stop.
func (f *FluidFlow) Active() bool { return f.active }

// Start activates the flow. Its load joins the allocation at the next
// epoch boundary. Idempotent.
func (f *FluidFlow) Start() {
	if f.active {
		return
	}
	f.active = true
	f.lastAccrual = f.net.sched.Now()
	if !f.listed {
		f.net.list(f)
	}
	f.net.dirtyFlow(f)
	f.net.markDirty()
}

// Stop deactivates the flow; its load leaves the links at the next
// epoch boundary. A promoted flow's expander stops immediately.
// Idempotent.
func (f *FluidFlow) Stop() {
	if !f.active {
		return
	}
	f.accrue(f.net.sched.Now())
	if f.exp != nil {
		f.demoteLocked()
	}
	f.active = false
	f.rate = 0
	f.net.dirtyFlow(f)
	f.net.markDirty()
}

// Release hands the flow back to the allocator's free list once it is
// fully retired: an active flow is stopped first and recycled at the
// settle that delists it; an already-stopped listed flow is recycled
// at its pending settle; a never-listed flow is recycled immediately.
// The flow's delivered bits are folded into FluidNet.RetiredBits. The
// caller must drop every reference — the object will be reused by a
// future NewFlow.
func (f *FluidFlow) Release() {
	if f.released {
		return
	}
	f.released = true
	if f.active {
		f.Stop()
		return
	}
	if f.listed || f.dirtyMk {
		// Stopped but still listed: its final settle (already queued by
		// Stop) will delist and recycle it.
		return
	}
	f.net.recycle(f)
}

// SetDemand retargets the flow's offered load (bits/s, clamped to
// finite non-negative). An active flow's links re-settle at the next
// epoch boundary.
func (f *FluidFlow) SetDemand(bps float64) {
	if math.IsNaN(bps) || math.IsInf(bps, 0) || bps < 0 {
		bps = 0
	}
	if bps == f.demand {
		return
	}
	f.demand = bps
	if f.active {
		f.net.dirtyFlow(f)
		f.net.markDirty()
	}
}

// Promote expands the flow across a packet-exact region: from now on
// exp emits real packets at the flow's allocated rate and delivered
// bytes are read from the packet tier instead of accrued analytically.
// The flow's fluid path (its hops outside the region) keeps carrying
// its aggregate load. Promoting an already-promoted flow panics.
func (f *FluidFlow) Promote(exp Expander) {
	if f.exp != nil {
		panic(fmt.Sprintf("traffic: fluid flow %d promoted twice", f.id))
	}
	now := f.net.sched.Now()
	f.accrue(now)
	f.exp = exp
	f.expBase = exp.DeliveredBytes()
	f.promotedAt = now
	exp.SetRate(f.rate)
	exp.Start()
}

// Demote collapses the flow back to a pure rate process: the expander's
// delivered bytes are folded into the flow's total and analytic accrual
// resumes. No-op if not promoted.
func (f *FluidFlow) Demote() {
	if f.exp == nil {
		return
	}
	f.demoteLocked()
}

func (f *FluidFlow) demoteLocked() {
	now := f.net.sched.Now()
	f.accrue(now) // folds expander bytes, resets lastAccrual
	f.exp.Stop()
	f.exp = nil
}

// Promoted reports whether the flow currently drives a packet expander.
func (f *FluidFlow) Promoted() bool { return f.exp != nil }

// accrue folds delivered bits up to now into the running total: the
// expander's byte delta while promoted, rate × elapsed while fluid.
func (f *FluidFlow) accrue(now time.Duration) {
	if f.exp != nil {
		cur := f.exp.DeliveredBytes()
		f.accrued += float64(cur-f.expBase) * 8
		f.expBase = cur
	} else if f.active {
		f.accrued += f.rate * (now - f.lastAccrual).Seconds()
	}
	f.lastAccrual = now
}

// DeliveredBits returns the flow's cumulative delivered traffic in bits
// up to the scheduler's current time.
func (f *FluidFlow) DeliveredBits() float64 {
	f.accrue(f.net.sched.Now())
	return f.accrued
}

// DeliveredBytes returns DeliveredBits in bytes, rounded down.
func (f *FluidFlow) DeliveredBytes() uint64 {
	return uint64(f.DeliveredBits() / 8)
}

// UDPExpander adapts a UDPSource/UDPSink pair to the Expander
// interface, letting a promoted fluid flow drive real datagrams through
// a packet-exact region and measure what actually arrived.
type UDPExpander struct {
	Src  *UDPSource
	Sink *UDPSink
}

var _ Expander = (*UDPExpander)(nil)

// NewUDPExpander wires a source and sink into an expander.
func NewUDPExpander(src *UDPSource, sink *UDPSink) *UDPExpander {
	return &UDPExpander{Src: src, Sink: sink}
}

// SetRate implements Expander.
func (e *UDPExpander) SetRate(bps float64) { e.Src.SetRate(bps) }

// Start implements Expander.
func (e *UDPExpander) Start() { e.Src.Start() }

// Stop implements Expander.
func (e *UDPExpander) Stop() { e.Src.Stop() }

// DeliveredBytes implements Expander with the sink's unique payload
// bytes.
func (e *UDPExpander) DeliveredBytes() uint64 { return e.Sink.Stats().UniqueBytes }
