package traffic

import (
	"math"
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// fluidRig builds a scheduler, network, and n hosts wired as a chain
// h0-h1-...-h(n-1) with the given per-link capacities (len(caps) = n-1).
// Returns the chain's links in order.
func fluidRig(t testing.TB, caps []float64) (*sim.Scheduler, []*netem.Link) {
	t.Helper()
	sched := sim.NewScheduler()
	nw := netem.New(sched)
	hosts := make([]*Host, len(caps)+1)
	for i := range hosts {
		hosts[i] = NewHost(sched, "h"+string(rune('0'+i)), packet.HostMAC(uint32(i+1)), packet.HostIP(uint32(i+1)), HostConfig{})
		nw.Add(hosts[i])
	}
	links := make([]*netem.Link, len(caps))
	for i, c := range caps {
		// Port 0 faces down-chain on the left host, port 1 up-chain.
		links[i] = nw.Connect(hosts[i], 1, hosts[i+1], 0, netem.LinkConfig{Bandwidth: c, Delay: time.Microsecond})
	}
	return sched, links
}

func TestFluidMaxMinSingleBottleneck(t *testing.T) {
	sched, links := fluidRig(t, []float64{9e6})
	fn := NewFluidNet(sched, FluidConfig{})
	hop := []Hop{{Link: links[0], End: 0}}

	f1 := fn.NewFlow(2e6, hop)
	f2 := fn.NewFlow(10e6, hop)
	f3 := fn.NewFlow(10e6, hop)
	f1.Start()
	f2.Start()
	f3.Start()
	sched.RunFor(fn.Epoch())

	// Progressive filling: f1 demand-freezes at 2e6, then f2/f3 split
	// the remaining 7e6. All values exactly representable.
	if f1.Rate() != 2e6 || f2.Rate() != 3.5e6 || f3.Rate() != 3.5e6 {
		t.Fatalf("rates = %v %v %v, want 2e6 3.5e6 3.5e6", f1.Rate(), f2.Rate(), f3.Rate())
	}
	if got := links[0].FluidLoad(0); got != 9e6 {
		t.Fatalf("link load = %v, want 9e6", got)
	}
	if fn.Settles() != 1 {
		t.Fatalf("settles = %d, want 1", fn.Settles())
	}
}

func TestFluidMaxMinMultiLink(t *testing.T) {
	sched, links := fluidRig(t, []float64{6e6, 10e6})
	fn := NewFluidNet(sched, FluidConfig{})

	fA := fn.NewFlow(100e6, []Hop{{Link: links[0], End: 0}, {Link: links[1], End: 0}})
	fB := fn.NewFlow(100e6, []Hop{{Link: links[0], End: 0}})
	fC := fn.NewFlow(100e6, []Hop{{Link: links[1], End: 0}})
	fA.Start()
	fB.Start()
	fC.Start()
	sched.RunFor(fn.Epoch())

	// l0 (6e6) is A/B's bottleneck: 3e6 each. C then takes l1's
	// leftover 7e6. The textbook max-min example, exact in floats.
	if fA.Rate() != 3e6 || fB.Rate() != 3e6 || fC.Rate() != 7e6 {
		t.Fatalf("rates = %v %v %v, want 3e6 3e6 7e6", fA.Rate(), fB.Rate(), fC.Rate())
	}
	if links[0].FluidLoad(0) != 6e6 || links[1].FluidLoad(0) != 10e6 {
		t.Fatalf("loads = %v %v", links[0].FluidLoad(0), links[1].FluidLoad(0))
	}
}

func TestFluidEpochCoalescesStaggeredStarts(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	hop := []Hop{{Link: links[0], End: 0}}
	f1 := fn.NewFlow(4e6, hop)
	f2 := fn.NewFlow(4e6, hop)

	sched.After(time.Millisecond, f1.Start)
	sched.After(5*time.Millisecond, f2.Start)
	sched.RunFor(9 * time.Millisecond)
	if fn.Settles() != 0 || f1.Rate() != 0 {
		t.Fatalf("settled inside epoch: settles=%d rate=%v", fn.Settles(), f1.Rate())
	}
	sched.RunFor(2 * time.Millisecond) // crosses the 10 ms boundary
	if fn.Settles() != 1 {
		t.Fatalf("settles = %d, want 1 (coalesced)", fn.Settles())
	}
	if f1.Rate() != 4e6 || f2.Rate() != 4e6 {
		t.Fatalf("rates = %v %v", f1.Rate(), f2.Rate())
	}
}

func TestFluidDeliveredBitsAccrual(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	f := fn.NewFlow(8e6, []Hop{{Link: links[0], End: 0}})
	f.Start()

	var at100 float64
	sched.After(100*time.Millisecond, func() { at100 = f.DeliveredBits() })
	sched.RunFor(100 * time.Millisecond)

	// Rate is 0 until the 10 ms settle, then 8e6 for the next 90 ms.
	want := 8e6 * 0.090
	if math.Abs(at100-want) > 1 {
		t.Fatalf("DeliveredBits = %v, want ≈ %v", at100, want)
	}
	if db := f.DeliveredBytes(); db != uint64(at100/8) {
		t.Fatalf("DeliveredBytes = %d", db)
	}
}

func TestFluidStopDrainsLoadAtBoundary(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	f := fn.NewFlow(6e6, []Hop{{Link: links[0], End: 0}})
	f.Start()
	sched.After(25*time.Millisecond, f.Stop)
	sched.RunFor(40 * time.Millisecond)

	if got := links[0].FluidLoad(0); got != 0 {
		t.Fatalf("load after stop = %v, want 0", got)
	}
	if fn.Flows() != 0 {
		t.Fatalf("flows not drained: %d", fn.Flows())
	}
	// Delivered: 6e6 from t=10ms to t=25ms.
	want := 6e6 * 0.015
	if got := f.DeliveredBits(); math.Abs(got-want) > 1 {
		t.Fatalf("DeliveredBits = %v, want ≈ %v", got, want)
	}
	// Accrual must not keep growing after Stop.
	later := f.DeliveredBits()
	if later != f.DeliveredBits() {
		t.Fatal("accrual continued after Stop")
	}
}

// fakeExpander records Expander interactions for promotion tests.
type fakeExpander struct {
	rate             float64
	started, stopped int
	bytes            uint64
}

func (e *fakeExpander) SetRate(bps float64)    { e.rate = bps }
func (e *fakeExpander) Start()                 { e.started++ }
func (e *fakeExpander) Stop()                  { e.stopped++ }
func (e *fakeExpander) DeliveredBytes() uint64 { return e.bytes }

func TestFluidPromoteDemoteBookkeeping(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6})
	fn := NewFluidNet(sched, FluidConfig{Epoch: 10 * time.Millisecond})
	f := fn.NewFlow(5e6, []Hop{{Link: links[0], End: 0}})
	f.Start()
	sched.RunFor(10 * time.Millisecond) // settle: rate 5e6

	exp := &fakeExpander{}
	f.Promote(exp)
	if !f.Promoted() || exp.started != 1 || exp.rate != 5e6 {
		t.Fatalf("promotion: promoted=%v started=%d rate=%v", f.Promoted(), exp.started, exp.rate)
	}

	// While promoted, delivered bits come from the expander, not the
	// analytic rate — advancing time without expander bytes adds zero.
	before := f.DeliveredBits()
	var mid float64
	sched.After(20*time.Millisecond, func() { mid = f.DeliveredBits() })
	sched.RunFor(20 * time.Millisecond)
	if mid != before {
		t.Fatalf("analytic accrual ran while promoted: %v -> %v", before, mid)
	}
	exp.bytes = 1000
	if got := f.DeliveredBits(); got != before+8000 {
		t.Fatalf("expander bytes not folded: %v, want %v", got, before+8000)
	}

	// Reallocation retargets the expander: add a competitor.
	g := fn.NewFlow(100e6, []Hop{{Link: links[0], End: 0}})
	g.Start()
	sched.RunFor(10 * time.Millisecond)
	if exp.rate != 5e6 { // f demand-limited at 5e6; g takes the rest
		t.Fatalf("expander rate after settle = %v, want 5e6", exp.rate)
	}

	f.Demote()
	if f.Promoted() || exp.stopped != 1 {
		t.Fatalf("demotion: promoted=%v stopped=%d", f.Promoted(), exp.stopped)
	}
	// Double promote panics; double demote is a no-op.
	f.Demote()
	f.Promote(&fakeExpander{})
	defer func() {
		if recover() == nil {
			t.Fatal("double Promote did not panic")
		}
	}()
	f.Promote(&fakeExpander{})
}

func TestFluidStopWhilePromotedStopsExpander(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6})
	fn := NewFluidNet(sched, FluidConfig{})
	f := fn.NewFlow(5e6, []Hop{{Link: links[0], End: 0}})
	f.Start()
	sched.RunFor(fn.Epoch())
	exp := &fakeExpander{}
	f.Promote(exp)
	f.Stop()
	if exp.stopped != 1 || f.Promoted() {
		t.Fatalf("Stop did not demote: stopped=%d promoted=%v", exp.stopped, f.Promoted())
	}
}

func TestFluidAllocationDeterminism(t *testing.T) {
	build := func() []uint64 {
		sched, links := fluidRig(t, []float64{7e6, 11e6, 5e6})
		fn := NewFluidNet(sched, FluidConfig{})
		demands := []float64{1.5e6, 9e6, 2.25e6, 9e6, 0.5e6, 9e6, 3e6}
		flows := make([]*FluidFlow, len(demands))
		for i, d := range demands {
			// Vary path lengths: flow i crosses links[i%3 ... 2].
			var hops []Hop
			for j := i % 3; j < 3; j++ {
				hops = append(hops, Hop{Link: links[j], End: 0})
			}
			flows[i] = fn.NewFlow(d, hops)
			flows[i].Start()
		}
		sched.RunFor(fn.Epoch())
		out := make([]uint64, len(flows))
		for i, f := range flows {
			out[i] = math.Float64bits(f.Rate())
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d rate differs across identical runs: %x vs %x", i, a[i], b[i])
		}
	}
	// Conservation sanity: rates are positive and within demand.
	sum := 0.0
	for _, bits := range a {
		r := math.Float64frombits(bits)
		if r < 0 {
			t.Fatalf("negative rate %v", r)
		}
		sum += r
	}
	if sum <= 0 {
		t.Fatal("no capacity allocated")
	}
}

func TestFluidZeroDemandFlow(t *testing.T) {
	sched, links := fluidRig(t, []float64{10e6})
	fn := NewFluidNet(sched, FluidConfig{})
	f := fn.NewFlow(0, []Hop{{Link: links[0], End: 0}})
	g := fn.NewFlow(4e6, []Hop{{Link: links[0], End: 0}})
	f.Start()
	g.Start()
	sched.RunFor(fn.Epoch())
	if f.Rate() != 0 || g.Rate() != 4e6 {
		t.Fatalf("rates = %v %v, want 0 4e6", f.Rate(), g.Rate())
	}
	// NaN / negative demands clamp at construction.
	if h := fn.NewFlow(math.NaN(), nil); h.Demand() != 0 {
		t.Fatalf("NaN demand not clamped: %v", h.Demand())
	}
}

func TestFluidFlowModes(t *testing.T) {
	if FlowPacket.String() != "packet" || FlowFluid.String() != "fluid" {
		t.Fatalf("mode names: %q %q", FlowPacket.String(), FlowFluid.String())
	}
	sched, links := fluidRig(t, []float64{1e6})
	fn := NewFluidNet(sched, FluidConfig{})
	var fl Flow = fn.NewFlow(1e5, []Hop{{Link: links[0], End: 0}})
	if fl.Mode() != FlowFluid {
		t.Fatalf("FluidFlow mode = %v", fl.Mode())
	}
}
