package traffic

import (
	"testing"
	"time"

	"netco/internal/packet"
)

func TestARPResolveDirect(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	var gotMAC packet.MAC
	resolved := false
	h1.Resolve(h2.IP(), func(mac packet.MAC, ok bool) {
		gotMAC, resolved = mac, ok
	})
	sched.RunFor(50 * time.Millisecond)
	if !resolved {
		t.Fatal("resolution did not complete")
	}
	if gotMAC != h2.MAC() {
		t.Fatalf("resolved %v, want %v", gotMAC, h2.MAC())
	}
	// The responder learned the requester opportunistically.
	if h2.ARPCache()[h1.IP()] != h1.MAC() {
		t.Fatal("responder did not learn the requester's binding")
	}
}

func TestARPCacheHitIsSynchronous(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	h1.Resolve(h2.IP(), func(packet.MAC, bool) {})
	sched.RunFor(50 * time.Millisecond)

	// Second resolve answers immediately from the cache, without any
	// new frames.
	before := h1.Stats().TxPackets
	called := false
	h1.Resolve(h2.IP(), func(mac packet.MAC, ok bool) {
		called = ok && mac == h2.MAC()
	})
	if !called {
		t.Fatal("cache hit not answered synchronously")
	}
	if h1.Stats().TxPackets != before {
		t.Fatal("cache hit sent frames")
	}
}

func TestARPResolveTimeout(t *testing.T) {
	sched, _, h1, _ := pipe(t, fastLink, HostConfig{})
	done := false
	ok := true
	h1.Resolve(packet.HostIP(99), func(_ packet.MAC, o bool) {
		done, ok = true, o
	})
	sched.RunFor(2 * time.Second)
	if !done {
		t.Fatal("resolution never gave up")
	}
	if ok {
		t.Fatal("resolution of a nonexistent host succeeded")
	}
	// Three requests were attempted.
	if tx := h1.Stats().TxPackets; tx != 3 {
		t.Fatalf("sent %d ARP requests, want 3 (with retries)", tx)
	}
}

func TestARPCoalescesConcurrentResolvers(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	calls := 0
	for i := 0; i < 5; i++ {
		h1.Resolve(h2.IP(), func(mac packet.MAC, ok bool) {
			if ok && mac == h2.MAC() {
				calls++
			}
		})
	}
	sched.RunFor(50 * time.Millisecond)
	if calls != 5 {
		t.Fatalf("callbacks = %d, want 5", calls)
	}
	// One request on the wire, not five.
	if tx := h1.Stats().TxPackets; tx != 1 {
		t.Fatalf("sent %d requests, want 1", tx)
	}
}

func TestARPIgnoresRequestsForOthers(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	// h1 asks for an IP that belongs to nobody on the link; h2 must not
	// answer even though it sees the broadcast.
	h1.Resolve(packet.HostIP(77), func(packet.MAC, bool) {})
	sched.RunFor(50 * time.Millisecond)
	if h2.Stats().TxPackets != 0 {
		t.Fatal("h2 answered an ARP request for a foreign IP")
	}
}

func TestARPWireRoundTrip(t *testing.T) {
	req := packet.NewARPRequest(packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1)}, packet.HostIP(2))
	parsed, err := packet.ParseARP(req.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Op != packet.ARPRequest || parsed.SenderIP != packet.HostIP(1) || parsed.TargetIP != packet.HostIP(2) {
		t.Fatalf("parsed %+v", parsed)
	}
	// The frame itself survives the generic packet codec.
	decoded, err := packet.Unmarshal(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Eth.EtherType != packet.EtherTypeARP {
		t.Fatal("ethertype lost")
	}
	if _, err := packet.ParseARP(decoded.Payload); err != nil {
		t.Fatalf("reparse after codec: %v", err)
	}
}
