package traffic

import (
	"encoding/binary"
	"math"
	"time"

	"netco/internal/metrics"
	"netco/internal/packet"
	"netco/internal/sim"
)

// udpHeaderOverhead is the sequencing header the source prepends to every
// datagram payload: sequence number (4) + send timestamp (8).
const udpHeaderOverhead = 12

// UDPSourceConfig parameterises a constant-bit-rate sender, the iperf -u
// -b equivalent.
type UDPSourceConfig struct {
	// Rate is the target offered load in bits per second (of UDP
	// payload, like iperf's -b accounting).
	Rate float64
	// PayloadSize is the datagram payload in bytes (iperf default 1470).
	PayloadSize int
	// TickInterval is the pacing granularity: each tick emits a
	// back-to-back burst of the datagrams accumulated since the last
	// one, reproducing the timer-coalescing burstiness of a real
	// user-space sender. Default 1 ms.
	TickInterval time.Duration
	// Jitter adds ±Jitter/2 uniform noise to tick times (deterministic
	// via Rng); zero disables.
	Jitter time.Duration
	// Rng drives tick jitter.
	Rng *sim.RNG
}

// UDPSource paces datagrams from a host to a destination endpoint.
type UDPSource struct {
	cfg   UDPSourceConfig
	sched *sim.Scheduler
	host  *Host
	src   packet.Endpoint
	dst   packet.Endpoint

	seq     uint32
	carry   float64
	running bool
	timer   sim.Timer

	// Sent counts datagrams handed to the NIC.
	Sent uint64
	// SentBytes counts payload bytes offered.
	SentBytes uint64
}

// NewUDPSource creates a source sending from host's srcPort to dst.
func NewUDPSource(host *Host, srcPort uint16, dst packet.Endpoint, cfg UDPSourceConfig) *UDPSource {
	if cfg.PayloadSize < udpHeaderOverhead {
		cfg.PayloadSize = udpHeaderOverhead
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = time.Millisecond
	}
	return &UDPSource{
		cfg:   cfg,
		sched: host.sched,
		host:  host,
		src:   host.Endpoint(srcPort),
		dst:   dst,
	}
}

// Start begins pacing until Stop (or forever).
func (s *UDPSource) Start() {
	if s.running {
		return
	}
	s.running = true
	s.scheduleTick()
}

// Stop halts the source.
func (s *UDPSource) Stop() {
	s.running = false
	s.timer.Stop()
}

// SetRate retargets the offered load in bits per second mid-run — the
// hook flow promotion uses to drive a packet expander at the fluid
// tier's allocation. Negative or NaN rates clamp to zero; the change
// takes effect from the next pacing tick.
func (s *UDPSource) SetRate(bps float64) {
	if bps < 0 || math.IsNaN(bps) {
		bps = 0
	}
	s.cfg.Rate = bps
}

// Rate returns the current target offered load in bits per second.
func (s *UDPSource) Rate() float64 { return s.cfg.Rate }

func (s *UDPSource) scheduleTick() {
	d := s.cfg.TickInterval
	if s.cfg.Jitter > 0 && s.cfg.Rng != nil {
		d += time.Duration((s.cfg.Rng.Float64() - 0.5) * float64(s.cfg.Jitter))
	}
	s.timer = s.sched.After(d, s.tick)
}

func (s *UDPSource) tick() {
	if !s.running {
		return
	}
	// Datagrams owed this tick, carrying the fractional remainder.
	s.carry += s.cfg.Rate * s.cfg.TickInterval.Seconds() / float64(s.cfg.PayloadSize*8)
	n := int(s.carry)
	s.carry -= float64(n)
	for i := 0; i < n; i++ {
		s.sendOne()
	}
	s.scheduleTick()
}

func (s *UDPSource) sendOne() {
	payload := make([]byte, s.cfg.PayloadSize)
	binary.BigEndian.PutUint32(payload[0:4], s.seq)
	binary.BigEndian.PutUint64(payload[4:12], uint64(s.sched.Now()))
	fillPattern(payload[udpHeaderOverhead:], s.seq)
	s.seq++
	s.Sent++
	s.SentBytes += uint64(s.cfg.PayloadSize)
	s.host.Send(packet.NewUDP(s.src, s.dst, payload))
}

// fillPattern writes a deterministic sequence-derived pattern so sinks
// can detect payload tampering end to end.
func fillPattern(b []byte, seq uint32) {
	for i := range b {
		b[i] = byte(seq) ^ byte(i*131>>3) ^ byte(i)
	}
}

func patternOK(b []byte, seq uint32) bool {
	for i := range b {
		if b[i] != byte(seq)^byte(i*131>>3)^byte(i) {
			return false
		}
	}
	return true
}

// UDPSinkStats is what the sink measured.
type UDPSinkStats struct {
	// Unique counts distinct sequence numbers received; Duplicates the
	// extra copies (Dup3 delivers ≈ 3 copies of everything).
	Unique     uint64
	Duplicates uint64
	// UniqueBytes counts payload bytes of unique datagrams.
	UniqueBytes uint64
	// Reordered counts arrivals with a sequence number lower than the
	// highest already seen.
	Reordered uint64
	// Corrupted counts datagrams whose payload pattern did not match
	// what the source generated — end-to-end integrity evidence of
	// in-flight tampering.
	Corrupted uint64
	// Jitter is the RFC 3550 estimate over first copies.
	Jitter time.Duration
	// First and Last bound the receive interval.
	First, Last time.Duration
}

// LossRate returns the fraction of sent datagrams never received (any
// copy), given the source's sent counter.
func (s UDPSinkStats) LossRate(sent uint64) float64 {
	if sent == 0 {
		return 0
	}
	lost := float64(sent) - float64(s.Unique)
	if lost < 0 {
		lost = 0
	}
	return lost / float64(sent)
}

// Goodput returns the unique-payload throughput in bits per second over
// the observation interval.
func (s UDPSinkStats) Goodput() float64 {
	return metrics.Throughput(s.UniqueBytes, s.Last-s.First)
}

// UDPSink receives and de-duplicates datagrams on a host port, measuring
// loss, duplication, reordering and jitter.
type UDPSink struct {
	sched  *sim.Scheduler
	seen   map[uint32]bool
	maxSeq uint32
	hasMax bool
	jitter metrics.Jitter
	stats  UDPSinkStats
}

// NewUDPSink attaches a sink to host's port.
func NewUDPSink(host *Host, port uint16) *UDPSink {
	sink := &UDPSink{sched: host.sched, seen: make(map[uint32]bool)}
	host.HandleUDP(port, sink.receive)
	return sink
}

func (k *UDPSink) receive(pkt *packet.Packet) {
	if len(pkt.Payload) < udpHeaderOverhead {
		return
	}
	now := k.sched.Now()
	seq := binary.BigEndian.Uint32(pkt.Payload[0:4])
	sent := time.Duration(binary.BigEndian.Uint64(pkt.Payload[4:12]))

	if !patternOK(pkt.Payload[udpHeaderOverhead:], seq) {
		k.stats.Corrupted++
		return
	}
	if k.seen[seq] {
		k.stats.Duplicates++
		return
	}
	k.seen[seq] = true
	k.stats.Unique++
	k.stats.UniqueBytes += uint64(len(pkt.Payload))
	if k.stats.First == 0 && k.stats.Unique == 1 {
		k.stats.First = now
	}
	k.stats.Last = now
	if k.hasMax && seq < k.maxSeq {
		k.stats.Reordered++
	}
	if !k.hasMax || seq > k.maxSeq {
		k.maxSeq = seq
		k.hasMax = true
	}
	k.jitter.Sample(now - sent)
}

// Stats returns a snapshot of the measurements.
func (k *UDPSink) Stats() UDPSinkStats {
	out := k.stats
	out.Jitter = k.jitter.Value()
	return out
}
