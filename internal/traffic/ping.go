package traffic

import (
	"time"

	"netco/internal/metrics"
	"netco/internal/packet"
	"netco/internal/sim"
)

// PingerConfig parameterises an ICMP echo sequence (the ping equivalent
// behind Fig. 7 and Table I's RTT row).
type PingerConfig struct {
	// Count is the number of echo request/response cycles.
	Count int
	// Interval between requests (default 10 ms; classic ping uses 1 s,
	// but virtual time makes the spacing irrelevant beyond isolation).
	Interval time.Duration
	// PayloadSize is the echo payload (default 56, as in ping).
	PayloadSize int
	// Timeout marks a request lost (default 1 s).
	Timeout time.Duration
	// ID is the ICMP identifier; distinct pingers on one host need
	// distinct IDs.
	ID uint16
}

// PingResult is the outcome of a sequence.
type PingResult struct {
	// Sent and Received count request/response cycles.
	Sent, Received int
	// Duplicates counts extra replies for already-answered sequences
	// (Dup topologies reply multiple times).
	Duplicates int
	// RTT summarises round-trip times of first replies.
	RTT metrics.Summary
}

// Pinger runs echo sequences from a host to a destination.
type Pinger struct {
	cfg   PingerConfig
	sched *sim.Scheduler
	host  *Host
	dst   packet.Endpoint

	inFlight map[uint16]time.Duration
	answered map[uint16]bool
	result   PingResult
	done     func(PingResult)
	seq      uint16
	started  bool
	stopped  bool
}

// NewPinger creates a pinger on host toward dst.
func NewPinger(host *Host, dst packet.Endpoint, cfg PingerConfig) *Pinger {
	if cfg.Count == 0 {
		cfg.Count = 1
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = 56
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Second
	}
	p := &Pinger{
		cfg:      cfg,
		sched:    host.sched,
		host:     host,
		dst:      dst,
		inFlight: make(map[uint16]time.Duration),
		answered: make(map[uint16]bool),
	}
	host.HandleEchoReply(cfg.ID, p.onReply)
	return p
}

// Run starts the sequence; done (optional) fires with the result after
// the last cycle resolves or times out.
func (p *Pinger) Run(done func(PingResult)) {
	if p.started {
		return
	}
	p.started = true
	p.done = done
	p.sendNext()
}

// Start implements Flow: it begins the sequence with no completion
// callback (use Run to get one). Idempotent while running.
func (p *Pinger) Start() { p.Run(nil) }

// Stop halts new requests; cycles already in flight still resolve or
// time out. Idempotent.
func (p *Pinger) Stop() { p.stopped = true }

// Result returns the result so far.
func (p *Pinger) Result() PingResult { return p.result }

func (p *Pinger) sendNext() {
	if p.stopped || p.result.Sent >= p.cfg.Count {
		return
	}
	p.seq++
	seq := p.seq
	p.result.Sent++
	p.inFlight[seq] = p.sched.Now()
	src := p.host.Endpoint(0)
	req := packet.NewICMPEcho(src, p.dst, packet.ICMPEchoRequest, p.cfg.ID, seq, make([]byte, p.cfg.PayloadSize))
	p.host.Send(req)

	p.sched.After(p.cfg.Timeout, func() {
		delete(p.inFlight, seq)
		p.maybeFinish()
	})
	p.sched.After(p.cfg.Interval, p.sendNext)
}

func (p *Pinger) onReply(rep *packet.Packet) {
	seq := rep.ICMP.Seq
	if p.answered[seq] {
		p.result.Duplicates++
		return
	}
	sentAt, ok := p.inFlight[seq]
	if !ok {
		return // timed out earlier
	}
	delete(p.inFlight, seq)
	p.answered[seq] = true
	p.result.Received++
	p.result.RTT.AddDuration(p.sched.Now() - sentAt)
	p.maybeFinish()
}

func (p *Pinger) maybeFinish() {
	if p.done != nil && p.result.Sent >= p.cfg.Count && len(p.inFlight) == 0 {
		done := p.done
		p.done = nil
		done(p.result)
	}
}
