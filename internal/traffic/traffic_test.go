package traffic

import (
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// pipe wires two hosts directly with the given link.
func pipe(t *testing.T, cfg netem.LinkConfig, hostCfg HostConfig) (*sim.Scheduler, *netem.Network, *Host, *Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	h1 := NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), hostCfg)
	h2 := NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), hostCfg)
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, HostPort, h2, HostPort, cfg)
	return sched, net, h1, h2
}

var fastLink = netem.LinkConfig{Bandwidth: 1e9, Delay: 10 * time.Microsecond, QueueLimit: 100}

func TestHostIgnoresForeignFrames(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	stranger := packet.Endpoint{MAC: packet.HostMAC(9), IP: packet.HostIP(9), Port: 1}
	other := packet.Endpoint{MAC: packet.HostMAC(8), IP: packet.HostIP(8), Port: 1}
	h1.Send(packet.NewUDP(stranger, other, []byte("not for h2")))
	sched.Run()
	if h2.Stats().RxPackets != 0 {
		t.Fatal("host accepted a frame addressed elsewhere")
	}
}

func TestHostEchoResponder(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{EchoResponder: true})
	p := NewPinger(h1, h2.Endpoint(0), PingerConfig{Count: 5, ID: 1})
	var got PingResult
	p.Run(func(r PingResult) { got = r })
	sched.Run()
	if got.Received != 5 {
		t.Fatalf("received %d of 5 replies", got.Received)
	}
	if h2.Stats().EchoesAnswered != 5 {
		t.Fatalf("EchoesAnswered = %d, want 5", h2.Stats().EchoesAnswered)
	}
	// RTT: 2 × (prop + tx). 56+42=98 B wire + 24 ovh = 122 B at 1 Gbit/s
	// ≈ 0.98 µs + 10 µs each way ≈ 22 µs round trip.
	rtt := got.RTT.MeanDuration()
	if rtt < 20*time.Microsecond || rtt > 30*time.Microsecond {
		t.Fatalf("mean RTT = %v, want ≈22µs", rtt)
	}
}

func TestPingTimeout(t *testing.T) {
	sched, net, h1, _ := pipe(t, fastLink, HostConfig{EchoResponder: true})
	net.Links()[0].SetDown(true)
	p := NewPinger(h1, packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2)},
		PingerConfig{Count: 3, ID: 1, Timeout: 50 * time.Millisecond})
	var got PingResult
	p.Run(func(r PingResult) { got = r })
	sched.Run()
	if got.Sent != 3 || got.Received != 0 {
		t.Fatalf("sent %d received %d, want 3/0", got.Sent, got.Received)
	}
}

func TestUDPSourceRate(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	sink := NewUDPSink(h2, 5001)
	src := NewUDPSource(h1, 4001, h2.Endpoint(5001), UDPSourceConfig{
		Rate:        50e6,
		PayloadSize: 1470,
	})
	src.Start()
	sched.RunUntil(time.Second)
	src.Stop()
	sched.RunFor(10 * time.Millisecond)

	// 50 Mbit/s of 1470 B payloads ≈ 4251 datagrams/s.
	if src.Sent < 4200 || src.Sent > 4300 {
		t.Fatalf("sent %d datagrams in 1s at 50 Mbit/s, want ≈4250", src.Sent)
	}
	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("received %d of %d (no loss expected)", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 || st.Reordered != 0 {
		t.Fatalf("dups=%d reordered=%d on a clean pipe", st.Duplicates, st.Reordered)
	}
	if g := st.Goodput(); g < 45e6 || g > 55e6 {
		t.Fatalf("goodput %.1f Mbit/s, want ≈50", g/1e6)
	}
}

func TestUDPLossOnOverload(t *testing.T) {
	// Offered 100 Mbit/s into a 50 Mbit/s link must lose ≈ half.
	link := netem.LinkConfig{Bandwidth: 50e6, Delay: 10 * time.Microsecond, QueueLimit: 50}
	sched, _, h1, h2 := pipe(t, link, HostConfig{})
	sink := NewUDPSink(h2, 5001)
	src := NewUDPSource(h1, 4001, h2.Endpoint(5001), UDPSourceConfig{Rate: 100e6, PayloadSize: 1470})
	src.Start()
	sched.RunUntil(time.Second)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	loss := sink.Stats().LossRate(src.Sent)
	if loss < 0.4 || loss > 0.6 {
		t.Fatalf("loss = %.2f, want ≈0.5", loss)
	}
	if g := sink.Stats().Goodput(); g > 51e6 {
		t.Fatalf("goodput %.1f Mbit/s exceeds link rate", g/1e6)
	}
}

func TestUDPSinkCountsDuplicates(t *testing.T) {
	sched, _, h1, h2 := pipe(t, fastLink, HostConfig{})
	sink := NewUDPSink(h2, 5001)
	src := NewUDPSource(h1, 4001, h2.Endpoint(5001), UDPSourceConfig{Rate: 10e6, PayloadSize: 200})
	// Send the same frames twice via a tap that re-sends clones.
	src.Start()
	sched.RunUntil(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(10 * time.Millisecond)
	first := sink.Stats().Unique

	// Replay the identical payload sequence: every datagram is a dup.
	src2 := NewUDPSource(h1, 4001, h2.Endpoint(5001), UDPSourceConfig{Rate: 10e6, PayloadSize: 200})
	src2.Start()
	sched.RunFor(100 * time.Millisecond)
	src2.Stop()
	sched.RunFor(10 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != first {
		t.Fatalf("unique grew from %d to %d on replay", first, st.Unique)
	}
	if st.Duplicates == 0 {
		t.Fatal("duplicates not counted")
	}
}

func TestHostIngestCapacity(t *testing.T) {
	// A 10 kpps ingest limit must drop most of a 40 kpps arrival rate.
	sched, _, h1, h2 := pipe(t, netem.LinkConfig{Bandwidth: 1e9, QueueLimit: 1000},
		HostConfig{IngestPerPacket: 100 * time.Microsecond, IngestQueue: 16})
	sink := NewUDPSink(h2, 5001)
	src := NewUDPSource(h1, 4001, h2.Endpoint(5001), UDPSourceConfig{Rate: 100e6, PayloadSize: 300})
	src.Start()
	sched.RunUntil(500 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	if h2.Stats().RxDropped == 0 {
		t.Fatal("overloaded host dropped nothing")
	}
	// Delivered rate ≈ 10 kpps regardless of offered.
	st := sink.Stats()
	pps := float64(st.Unique) / (st.Last - st.First).Seconds()
	if pps < 9000 || pps > 11000 {
		t.Fatalf("delivered %.0f pps, want ≈10000 (ingest bound)", pps)
	}
}

func TestTCPCleanLinkReachesCapacity(t *testing.T) {
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 15 * time.Microsecond, QueueLimit: 100}
	sched, _, h1, h2 := pipe(t, link, HostConfig{})
	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{})
	sched.RunUntil(3 * time.Second)
	flow.Stop()

	st := flow.Stats()
	goodput := st.Goodput(3 * time.Second)
	// 500 Mbit/s × 1460/1538 ≈ 474 Mbit/s — the paper's Linespeed figure.
	if goodput < 440e6 || goodput > 480e6 {
		t.Fatalf("goodput %.1f Mbit/s, want ≈474", goodput/1e6)
	}
	if st.Timeouts > 0 {
		t.Fatalf("clean link suffered %d RTO timeouts", st.Timeouts)
	}
}

func TestTCPBoundedTransferQuiesces(t *testing.T) {
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 15 * time.Microsecond, QueueLimit: 100}
	sched, _, h1, h2 := pipe(t, link, HostConfig{})
	const limit = 100 << 10
	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{MaxBytes: limit})
	sched.RunUntil(3 * time.Second)

	if !flow.Done() {
		t.Fatal("bounded flow did not finish in 3s")
	}
	st := flow.Stats()
	// The sender rounds the limit up to whole segments; the receiver must
	// see exactly what was offered, and nothing more arrives afterwards.
	wantBytes := uint64((limit + 1459) / 1460 * 1460)
	if st.BytesAcked != wantBytes || st.GoodputBytes != wantBytes {
		t.Fatalf("acked=%d goodput=%d, want %d", st.BytesAcked, st.GoodputBytes, wantBytes)
	}
	before := st.SegmentsSent
	sched.RunFor(time.Second)
	if after := flow.Stats().SegmentsSent; after != before {
		t.Fatalf("quiesced flow sent %d more segments", after-before)
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	// A tiny queue forces periodic drops; the flow must keep making
	// progress via fast retransmit rather than stalling.
	link := netem.LinkConfig{Bandwidth: 100e6, Delay: 100 * time.Microsecond, QueueLimit: 8}
	sched, _, h1, h2 := pipe(t, link, HostConfig{})
	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{})
	sched.RunUntil(3 * time.Second)
	flow.Stop()

	st := flow.Stats()
	if st.FastRetransmits == 0 {
		t.Fatal("no fast retransmits despite a lossy queue")
	}
	goodput := st.Goodput(3 * time.Second)
	if goodput < 60e6 {
		t.Fatalf("goodput %.1f Mbit/s, want > 60 (flow must survive loss)", goodput/1e6)
	}
	if st.GoodputBytes == 0 {
		t.Fatal("receiver got nothing")
	}
}

// duplicator forwards every packet twice — a minimal stand-in for a Dup
// path, to verify the dup-ACK collapse mechanism in isolation.
type duplicator struct {
	name  string
	ports netem.Ports
}

func (d *duplicator) Name() string        { return d.name }
func (d *duplicator) Ports() *netem.Ports { return &d.ports }
func (d *duplicator) Receive(port int, pkt *packet.Packet) {
	out := 1 - port
	d.ports.Send(out, pkt)
	d.ports.Send(out, pkt)
}

func TestTCPCollapsesUnderDuplication(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	h1 := NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), HostConfig{})
	h2 := NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), HostConfig{})
	dup := &duplicator{name: "dup"}
	net.Add(h1)
	net.Add(h2)
	net.Add(dup)
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 15 * time.Microsecond, QueueLimit: 100}
	net.Connect(h1, HostPort, dup, 0, link)
	net.Connect(dup, 1, h2, HostPort, link)

	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{})
	sched.RunUntil(2 * time.Second)
	flow.Stop()

	st := flow.Stats()
	if st.DupAcksSeen == 0 || st.DupSegments == 0 {
		t.Fatalf("duplication produced no dup signals: %+v", st)
	}
	goodput := st.Goodput(2 * time.Second)
	// The paper's observation: duplication slashes TCP throughput (Dup3 =
	// 122 vs Linespeed 474). Expect a clear collapse but sustained progress.
	if goodput > 300e6 {
		t.Fatalf("goodput %.1f Mbit/s — duplication should collapse TCP well below linespeed", goodput/1e6)
	}
	if goodput < 10e6 {
		t.Fatalf("goodput %.1f Mbit/s — flow starved entirely", goodput/1e6)
	}
}

func TestTCPDelayedAckReducesAckTraffic(t *testing.T) {
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 15 * time.Microsecond, QueueLimit: 100}
	run := func(ackEvery int) (uint64, float64) {
		sched, _, h1, h2 := pipe(t, link, HostConfig{})
		flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{AckEvery: ackEvery})
		sched.RunUntil(time.Second)
		flow.Stop()
		return h2.Stats().TxPackets, flow.Stats().Goodput(time.Second)
	}
	acksImmediate, _ := run(1)
	acksDelayed, goodputDelayed := run(2)
	if acksDelayed >= acksImmediate {
		t.Fatalf("delayed ACKs (%d) not fewer than immediate (%d)", acksDelayed, acksImmediate)
	}
	if goodputDelayed < 400e6 {
		t.Fatalf("delayed-ACK goodput %.1f Mbit/s collapsed", goodputDelayed/1e6)
	}
}

func TestTCPStatsConsistency(t *testing.T) {
	link := netem.LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Microsecond, QueueLimit: 20}
	sched, _, h1, h2 := pipe(t, link, HostConfig{})
	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{})
	sched.RunUntil(time.Second)
	flow.Stop()
	st := flow.Stats()
	if st.GoodputBytes > st.BytesAcked+(1<<20) {
		t.Fatalf("receiver got %d bytes but only %d acked", st.GoodputBytes, st.BytesAcked)
	}
	if st.SegmentsSent == 0 {
		t.Fatal("no segments sent")
	}
	if st.SRTT <= 0 {
		t.Fatal("no RTT estimate formed")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, time.Duration) {
		link := netem.LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Microsecond, QueueLimit: 10}
		sched, _, h1, h2 := pipe(t, link, HostConfig{})
		sink := NewUDPSink(h2, 5001)
		src := NewUDPSource(h1, 4001, h2.Endpoint(5001), UDPSourceConfig{
			Rate: 120e6, PayloadSize: 1470,
			Jitter: 200 * time.Microsecond, Rng: sim.NewRNG(7),
		})
		src.Start()
		flow := StartTCPFlow(h1, h2, 40000, 5002, TCPConfig{})
		sched.RunUntil(time.Second)
		src.Stop()
		flow.Stop()
		return sink.Stats().Unique, flow.Stats().GoodputBytes, sink.Stats().Jitter
	}
	u1, g1, j1 := run()
	u2, g2, j2 := run()
	if u1 != u2 || g1 != g2 || j1 != j2 {
		t.Fatalf("runs diverge: (%d,%d,%v) vs (%d,%d,%v)", u1, g1, j1, u2, g2, j2)
	}
}

func TestTCPSurvivesLinkOutage(t *testing.T) {
	// A 300 ms total outage forces RTO recovery with exponential
	// backoff; the flow must resume and make progress afterwards.
	link := netem.LinkConfig{Bandwidth: 100e6, Delay: 50 * time.Microsecond, QueueLimit: 50}
	sched, net, h1, h2 := pipe(t, link, HostConfig{})
	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{})

	sched.RunUntil(500 * time.Millisecond)
	net.Links()[0].SetDown(true)
	// In-flight packets drain for a few RTTs; after that nothing moves.
	sched.RunFor(50 * time.Millisecond)
	drained := flow.Stats().GoodputBytes
	sched.RunFor(250 * time.Millisecond)
	duringOutage := flow.Stats().GoodputBytes
	net.Links()[0].SetDown(false)
	sched.RunFor(time.Second)
	flow.Stop()

	st := flow.Stats()
	if duringOutage != drained {
		t.Fatalf("bytes delivered during a total outage: %d", duringOutage-drained)
	}
	if st.Timeouts == 0 {
		t.Fatal("no RTO fired during a 300ms outage")
	}
	recovered := st.GoodputBytes - duringOutage
	if recovered < 1<<20 {
		t.Fatalf("only %d bytes after the outage — flow never recovered", recovered)
	}
}

func TestTCPPacingAvoidsShallowQueueCollapse(t *testing.T) {
	// Pacing keeps the sender from dumping window-sized bursts into a
	// shallow bottleneck queue: the flow must fill a 200 Mbit/s link
	// through a 16-packet queue with no RTO and only mild loss. A
	// window-dumping sender overflows such a queue in slow start and
	// stalls in timeout recovery.
	link := netem.LinkConfig{Bandwidth: 200e6, Delay: 200 * time.Microsecond, QueueLimit: 16}
	sched, _, h1, h2 := pipe(t, link, HostConfig{})
	flow := StartTCPFlow(h1, h2, 40000, 5001, TCPConfig{})
	sched.RunUntil(2 * time.Second)
	flow.Stop()

	st := flow.Stats()
	if st.Timeouts != 0 {
		t.Fatalf("paced flow through a shallow queue hit %d RTOs", st.Timeouts)
	}
	goodput := st.Goodput(2 * time.Second)
	if goodput < 150e6 {
		t.Fatalf("goodput %.1f Mbit/s, want near line rate despite the shallow queue", goodput/1e6)
	}
}
