package traffic

import (
	"time"

	"netco/internal/packet"
)

// arpState is a host's address-resolution machinery: a cache plus
// pending resolutions with retry.
type arpState struct {
	cache   map[packet.IPAddr]packet.MAC
	pending map[packet.IPAddr][]func(packet.MAC, bool)
	retries map[packet.IPAddr]int
}

// ARP retry policy.
const (
	arpRetryInterval = 100 * time.Millisecond
	arpMaxRetries    = 3
)

// arpLazy returns the host's ARP state, allocating it on first use so
// hosts that never touch the packet stack stay map-free.
func (h *Host) arpLazy() *arpState {
	if h.arp == nil {
		h.arp = &arpState{
			cache:   make(map[packet.IPAddr]packet.MAC),
			pending: make(map[packet.IPAddr][]func(packet.MAC, bool)),
			retries: make(map[packet.IPAddr]int),
		}
	}
	return h.arp
}

// ARPCache returns a snapshot of the host's resolution cache.
func (h *Host) ARPCache() map[packet.IPAddr]packet.MAC {
	if h.arp == nil {
		return map[packet.IPAddr]packet.MAC{}
	}
	out := make(map[packet.IPAddr]packet.MAC, len(h.arp.cache))
	for ip, mac := range h.arp.cache {
		out[ip] = mac
	}
	return out
}

// Resolve looks up the MAC for ip, answering from the cache or by
// broadcasting ARP requests (with retries). done fires exactly once with
// (mac, true) on success or (zero, false) after the retries expire.
func (h *Host) Resolve(ip packet.IPAddr, done func(packet.MAC, bool)) {
	h.arpLazy()
	if mac, ok := h.arp.cache[ip]; ok {
		done(mac, true)
		return
	}
	first := len(h.arp.pending[ip]) == 0
	h.arp.pending[ip] = append(h.arp.pending[ip], done)
	if first {
		h.arp.retries[ip] = 0
		h.sendARPRequest(ip)
	}
}

func (h *Host) sendARPRequest(ip packet.IPAddr) {
	h.Send(packet.NewARPRequest(h.Endpoint(0), ip))
	h.sched.After(arpRetryInterval, func() { h.arpRetry(ip) })
}

func (h *Host) arpRetry(ip packet.IPAddr) {
	if h.arp == nil || len(h.arp.pending[ip]) == 0 {
		return // resolved meanwhile
	}
	h.arp.retries[ip]++
	if h.arp.retries[ip] >= arpMaxRetries {
		waiters := h.arp.pending[ip]
		delete(h.arp.pending, ip)
		delete(h.arp.retries, ip)
		for _, done := range waiters {
			done(packet.MAC{}, false)
		}
		return
	}
	h.sendARPRequest(ip)
}

// handleARP processes an incoming ARP frame.
func (h *Host) handleARP(pkt *packet.Packet) {
	a, err := packet.ParseARP(pkt.Payload)
	if err != nil {
		h.stats.RxUnclaimed++
		return
	}
	// Opportunistic learning from any valid sender binding.
	if a.SenderIP != (packet.IPAddr{}) {
		h.arpLazy()
		h.arp.cache[a.SenderIP] = a.SenderMAC
		if waiters := h.arp.pending[a.SenderIP]; len(waiters) > 0 {
			delete(h.arp.pending, a.SenderIP)
			delete(h.arp.retries, a.SenderIP)
			for _, done := range waiters {
				done(a.SenderMAC, true)
			}
		}
	}
	if a.Op == packet.ARPRequest && a.TargetIP == h.ip {
		h.Send(packet.NewARPReply(h.Endpoint(0), a))
	}
}
