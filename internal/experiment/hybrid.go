package experiment

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"netco/internal/core"
	"netco/internal/metrics"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/trace"
	"netco/internal/traffic"
)

// The hybrid traffic engine couples two fidelity tiers in one serial
// simulation:
//
//   - a fat-tree fabric whose flows are fluid rate processes (see
//     internal/traffic's FluidNet): no per-packet events, just max-min
//     fair allocations recomputed at epoch boundaries and pushed onto
//     the links as aggregate load;
//   - a packet-exact region — a NetCo combiner between two gateway
//     hosts — where every frame, copy and compare decision is simulated
//     exactly as in the paper's evaluation.
//
// A RegionMap (BFS ball around the compare node) decides each flow's
// tier: flows whose route crosses the region are promoted — expanded
// into real datagrams through the combiner via a UDP expander driven at
// the flow's fluid allocation — and collapse back to pure rate
// processes when they leave (Demote). Because the gateway/combiner
// component shares no links with the fabric, the region's observable
// behaviour (sink counters, alarms, compare stats) is a function of the
// expander streams alone; a pure-packet rerun of the same scenario
// (PacketFabric mode) reproduces it bit for bit while the fabric's
// goodput stays within fluid-model tolerance. That is the fidelity
// contract the differential test in hybrid_test.go enforces.
//
// The engine is serial by construction (one scheduler). Params.Workers
// parallelises topology *construction* only (pod wiring and host
// builds, with deterministic link-id assignment, so results are
// bit-identical at any worker count); the simulation itself never
// shares a scheduler across goroutines. Params.Partitions does not
// apply.

// hybridPayload is the UDP payload size used by expanders and
// packet-mode fabric sources (iperf's default datagram).
const hybridPayload = 1470

// buildWorkers clamps a Params.Workers value for topology-build
// parallelism (0 means serial, like 1).
func buildWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// HybridParams sizes one hybrid scenario.
type HybridParams struct {
	// Arity is the fat-tree k (even, ≥ 2). 30 gives the 1125-switch
	// fabric of BENCH_6; tests use 4.
	Arity int
	// FlowsPerHost fans each fabric host out to that many cross-pod
	// destinations.
	FlowsPerHost int
	// FlowDemand is each flow's offered load (bits/s).
	FlowDemand float64
	// CrossFlows is how many flows are monitored traffic steered through
	// the combiner region (promoted from the start).
	CrossFlows int
	// Duration is the measurement window; flows start staggered across
	// the first two allocation epochs and stop together at Duration.
	Duration time.Duration
	// Epoch is the fluid tier's reallocation quantum.
	Epoch time.Duration
	// RegionRadius is the packet-exact BFS radius around the compare.
	RegionRadius int
	// SwapAt, when positive, demotes half the crossing flows at that
	// time (their traffic exits the region) and promotes an equal number
	// of until-then fluid flows (entering it) — the live region-boundary
	// transition exercise.
	SwapAt time.Duration
	// PacketFabric materialises every fabric flow as a real UDP
	// packet stream (with proactive fat-tree routing) instead of a rate
	// process — the pure-packet baseline of the differential fidelity
	// test. Only sensible for small Arity.
	PacketFabric bool
	// StartWaves staggers flow starts across this many offsets inside
	// the first two epochs (default 4), exercising the allocator's
	// epoch coalescing. Each wave is one scheduler event starting its
	// stride of flows in index order — at million-flow scale a
	// per-flow timer apiece would dominate the build.
	StartWaves int
	// PromoteRho, when > 0 (hybrid mode only), promotes flows whose
	// bottleneck direction's utilisation load/cap reaches the
	// threshold: the flow is expanded through the combiner region like
	// a monitored flow, so congestion hot-spots get packet-exact
	// scrutiny. Flows holding a pre-built expander (the SwapAt set)
	// are exempt.
	PromoteRho float64
	// PromoteCap bounds congestion-triggered promotions (0 = no bound).
	PromoteCap int
	// DemoteRho, when > 0, demotes a congestion-promoted flow back to
	// the fluid tier once its worst direction's utilisation falls below
	// the threshold — the hysteresis loop closing PromoteRho. Pre-built
	// expanders (monitored and SwapAt flows) are exempt; a demoted flow
	// is promotion-eligible again and reuses its expander. Pick
	// DemoteRho well below PromoteRho or flows will ping-pong.
	DemoteRho float64
	// DemoteAfter is the minimum promoted residence time before
	// DemoteRho may demote a flow (default one epoch): the cooldown
	// half of the hysteresis.
	DemoteAfter time.Duration
	// SettleWorkers parallelises the fluid allocator's per-component
	// settle (see traffic.FluidConfig.SettleWorkers). Results are
	// bit-identical at any worker count; 0 or 1 is serial.
	SettleWorkers int
	// FullResettle forces the allocator's full progressive-filling
	// oracle on every settle — differential-test mode, never faster.
	FullResettle bool

	// Churn knobs (RunChurn / KindChurn only; RunHybrid ignores them).

	// ChurnArrivals is the target flow arrival rate per simulated
	// second. Flow lifetime is size/FlowDemand, so steady-state live
	// flows ≈ ChurnArrivals × ChurnMeanBytes × 8 / FlowDemand.
	ChurnArrivals float64
	// ChurnMeanBytes is the mean flow size. Sizes mix exponential
	// (mice) and Pareto α=1.5 (elephants) draws with this common mean.
	ChurnMeanBytes float64
	// ChurnParetoFrac is the fraction of flows drawn from the
	// heavy-tailed Pareto component (0 = all exponential).
	ChurnParetoFrac float64
	// ChurnWaveEvery batches arrivals: one scheduler event per wave
	// starts every flow due in the interval (default Epoch/4). Smaller
	// waves smooth the arrival process; larger ones stress batching.
	ChurnWaveEvery time.Duration
	// ChurnCrossFrac is the fraction of churn flows routed cross-pod
	// through the core. Cross-pod flows couple pod components into one
	// allocator component, so keep this small when measuring parallel
	// settle speedup (0 = all pod-local).
	ChurnCrossFrac float64
}

// DefaultHybridParams returns the small configuration used by the
// KindHybrid sweep unit and the smoke tests.
func DefaultHybridParams() HybridParams {
	return HybridParams{
		Arity:        4,
		FlowsPerHost: 2,
		FlowDemand:   2e6,
		CrossFlows:   4,
		Duration:     400 * time.Millisecond,
		Epoch:        5 * time.Millisecond,
		RegionRadius: 2,
		SwapAt:       200 * time.Millisecond,
		StartWaves:   4,

		ChurnArrivals:   10_000,
		ChurnMeanBytes:  40_000,
		ChurnParetoFrac: 0.3,
	}
}

// HybridResult is one hybrid run's outcome.
type HybridResult struct {
	Arity       int `json:"arity"`
	Hosts       int `json:"hosts"`
	Switches    int `json:"switches"` // fabric switches (combiner excluded)
	Flows       int `json:"flows"`
	CrossFlows  int `json:"cross_flows"`
	RegionNodes int `json:"region_nodes"`

	Events     uint64 `json:"events"`
	Settles    uint64 `json:"settles"`
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`
	// CongestionPromotions is the subset of Promotions triggered by the
	// PromoteRho threshold rather than region crossing or SwapAt;
	// CongestionDemotions counts the DemoteRho hysteresis returns.
	CongestionPromotions uint64 `json:"congestion_promotions,omitempty"`
	CongestionDemotions  uint64 `json:"congestion_demotions,omitempty"`

	// Build-time breakdown (wall clock, not simulated time): fabric
	// switches + links, host builds + host links + region map, and flow
	// construction. Provenance only — never folded into digests.
	BuildTopoMS  float64 `json:"build_topo_ms"`
	BuildWireMS  float64 `json:"build_wire_ms"`
	BuildFlowsMS float64 `json:"build_flows_ms"`

	// FluidDeliveredBits totals every flow's delivered traffic
	// (analytic accrual for fluid segments, measured sink bytes for
	// promoted segments). BackgroundDeliveredBits is the subtotal of
	// flows that never owned an expander — the apples-to-apples figure
	// the differential fidelity test compares across modes (in
	// PacketFabric mode it is measured at real packet sinks).
	FluidDeliveredBits      float64 `json:"fluid_delivered_bits"`
	BackgroundDeliveredBits float64 `json:"background_delivered_bits"`

	// RegionDigest canonically summarises the packet-exact region's
	// observable behaviour: per-expander sink counters, gateway stack
	// counters, compare stats and alarm count. A hybrid run and its
	// pure-packet baseline must produce equal RegionDigests.
	RegionDigest string `json:"region_digest"`
	// Digest extends RegionDigest with the fluid tier's outcome (per-
	// flow delivered bits and rates, folded exactly) plus event and
	// settle counts — the whole-run determinism witness.
	Digest string `json:"digest"`

	// ProjectedPacketEvents estimates what a pure-packet simulation of
	// the same scenario would execute; EventRatio divides it by the
	// events actually executed.
	ProjectedPacketEvents float64 `json:"projected_packet_events"`
	EventRatio            float64 `json:"event_ratio"`

	// Hists carries the run's streaming aggregates (the per-packet
	// trace replacement): flow_rate_mbps and flow_goodput_mbps from the
	// fluid tier, region_wire_bytes and region_gap_us folded live off
	// the combiner routers' transmissions by a trace.Aggregator.
	Hists map[string]metrics.Hist `json:"hists,omitempty"`
}

type hybridFlow struct {
	idx      int
	srcG     int
	dstG     int
	fluid    *traffic.FluidFlow
	exp      *traffic.UDPExpander // non-nil iff the flow can be promoted
	route    []string             // monitored flows only; fabric-only routes never cross
	crossing bool
	congExp  bool // exp was built by the PromoteRho path, not pre-provisioned
}

// RunHybrid builds and runs one hybrid scenario. It is a pure function
// of its inputs like the other experiment units, but always serial.
func RunHybrid(p Params, hp HybridParams) HybridResult {
	if hp.Arity < 2 || hp.Arity%2 != 0 {
		panic(fmt.Sprintf("experiment: hybrid arity %d must be even and >= 2", hp.Arity))
	}
	if hp.StartWaves <= 0 {
		hp.StartWaves = 4
	}
	if hp.Epoch <= 0 {
		hp.Epoch = 10 * time.Millisecond
	}

	sched := sim.NewScheduler()
	nw := netem.New(sched)

	// Packet-exact region first: a Central combiner between two gateway
	// hosts. Building it before the fabric keeps its links' creation
	// order — and therefore same-instant event ordering — independent
	// of fabric size and mode.
	gw0 := traffic.NewHost(sched, "gw0", packet.HostMAC(1<<20), packet.HostIP(1<<20), hostCfgOf(p))
	gw1 := traffic.NewHost(sched, "gw1", packet.HostMAC(1<<20+1), packet.HostIP(1<<20+1), hostCfgOf(p))
	nw.Add(gw0)
	nw.Add(gw1)
	comb := core.Build(nw, core.CombinerSpec{
		K:             3,
		Mode:          core.CombinerCentral,
		Compare:       p.TestbedParams(ScenCentral3, nil).Compare,
		EdgeProcDelay: p.EdgeProc,
		EdgeProcQueue: p.EdgeQueue,
		RouterLink:    p.TrunkLink(),
		CompareLink:   netem.LinkConfig{Bandwidth: p.HostLinkRate, Delay: p.PropDelay, QueueLimit: 4 * p.QueueLimit},
	}, func(i int) *switching.Switch {
		return switching.New(sched, switching.Config{
			Name:       fmt.Sprintf("r%d", i),
			DatapathID: uint64(100 + i),
			ProcDelay:  p.SwitchProc,
			ProcQueue:  p.SwitchQueue,
		})
	})
	comb.AttachHost(nw, core.SideLeft, gw0, traffic.HostPort, gw0.MAC(), p.HostLink())
	comb.AttachHost(nw, core.SideRight, gw1, traffic.HostPort, gw1.MAC(), p.HostLink())

	// Streaming capture on the region routers: the per-packet trace
	// replacement. Every transmission folds into O(1)-memory sketches
	// instead of a record ring.
	agg := trace.NewAggregator()
	for _, r := range comb.Routers {
		agg.Attach(r)
	}

	// Fluid fabric: a full fat tree plus hosts (shared with the churn
	// engine — see fabric.go). In hybrid mode the switches never see a
	// packet — the fluid tier only accounts rates on the links — so no
	// routing state is installed unless PacketFabric asks for the
	// pure-packet baseline.
	arity := hp.Arity
	fb := buildFluidFabric(sched, nw, p, arity)
	ft, hosts := fb.ft, fb.hosts
	perPod := fb.perPod
	buildTopoMS := fb.topoMS
	if hp.PacketFabric {
		installFatTreeRoutes(ft, hosts)
	}

	regionStart := time.Now()
	region := BuildRegionMap(nw, []string{"compare"}, hp.RegionRadius)
	buildWireMS := fb.wireMS + float64(time.Since(regionStart))/float64(time.Millisecond)

	total := len(hosts) * hp.FlowsPerHost
	if hp.CrossFlows > total {
		hp.CrossFlows = total
	}
	swapN := 0
	if hp.SwapAt > 0 && hp.SwapAt < hp.Duration {
		swapN = hp.CrossFlows / 2
		if hp.CrossFlows+swapN > total {
			swapN = total - hp.CrossFlows
		}
	}

	flows := make([]*hybridFlow, total)
	var promotions, demotions, congPromotions, congDemotions uint64
	congSlots := 0
	fcfg := traffic.FluidConfig{Epoch: hp.Epoch, SettleWorkers: hp.SettleWorkers, FullResettle: hp.FullResettle}
	if hp.PromoteRho > 0 && !hp.PacketFabric {
		fcfg.CongestionRho = hp.PromoteRho
		fcfg.OnCongested = func(f *traffic.FluidFlow, _ float64) {
			// In hybrid mode every flow registers with the allocator in
			// index order, so the fluid id is the hybridFlow index.
			hf := flows[f.ID()]
			if hf.exp != nil && !hf.congExp {
				return // pre-built expanders are reserved for SwapAt
			}
			if hf.exp == nil {
				// First promotion builds the expander; a hysteresis-demoted
				// flow re-promotes through its existing one, so PromoteCap
				// bounds distinct expanders, not promotion events.
				if hp.PromoteCap > 0 && congSlots >= hp.PromoteCap {
					return
				}
				slot := congSlots
				congSlots++
				src := traffic.NewUDPSource(gw0, uint16(10000+slot), gw1.Endpoint(uint16(40000+slot)),
					traffic.UDPSourceConfig{PayloadSize: hybridPayload})
				sink := traffic.NewUDPSink(gw1, uint16(40000+slot))
				hf.exp = traffic.NewUDPExpander(src, sink)
				hf.congExp = true
			}
			f.Promote(hf.exp)
			promotions++
			congPromotions++
		}
		if hp.DemoteRho > 0 {
			fcfg.DemoteRho = hp.DemoteRho
			fcfg.DemoteAfter = hp.DemoteAfter
			fcfg.OnUncongested = func(f *traffic.FluidFlow, _ float64) {
				if hf := flows[f.ID()]; !hf.congExp {
					return // only the PromoteRho set participates in hysteresis
				}
				f.Demote()
				demotions++
				congDemotions++
			}
		}
	}
	fn := traffic.NewFluidNet(sched, fcfg)

	flowStart := time.Now()
	hfArena := make([]hybridFlow, total) // one allocation for all flow records
	hopsBuf := make([]traffic.Hop, 0, 8)
	for g := range hosts {
		for k := 0; k < hp.FlowsPerHost; k++ {
			i := g*hp.FlowsPerHost + k
			sp, sl := g/perPod, g%perPod
			dp := (sp + 1 + k%(arity-1)) % arity
			dstG := dp*perPod + (sl+k)%perPod
			hf := &hfArena[i]
			hf.idx, hf.srcG, hf.dstG = i, g, dstG
			hopsBuf = fb.pathFor(g, dstG, hopsBuf[:0])
			// Flows 0..CrossFlows-1 are monitored: their traffic is
			// steered through the combiner, so the region map marks
			// them for promotion. Flows CrossFlows..CrossFlows+swapN-1
			// get expanders too, but enter the region only at SwapAt.
			if i < hp.CrossFlows {
				hf.route = append(fb.routeFor(g, dstG), "gw0", "s1", "compare", "s2", "gw1")
				hf.crossing = region.Crosses(hf.route)
			}
			if hf.crossing || (swapN > 0 && i >= hp.CrossFlows && i < hp.CrossFlows+swapN) {
				src := traffic.NewUDPSource(gw0, uint16(1000+i), gw1.Endpoint(uint16(30000+i)),
					traffic.UDPSourceConfig{PayloadSize: hybridPayload})
				sink := traffic.NewUDPSink(gw1, uint16(30000+i))
				hf.exp = traffic.NewUDPExpander(src, sink)
			}
			// The fluid allocator carries a flow's fabric segment in
			// every mode; in PacketFabric mode the purely-fluid
			// background flows are materialised as packet streams
			// instead and skip registration.
			if !hp.PacketFabric || hf.exp != nil {
				hf.fluid = fn.NewFlow(hp.FlowDemand, hopsBuf)
			}
			flows[i] = hf
		}
	}

	// Packet-mode baseline: real UDP sources/sinks on the fabric hosts
	// for every flow's fabric segment.
	var pktSrcs []*traffic.UDPSource
	var pktSinks []*traffic.UDPSink
	if hp.PacketFabric {
		pktSrcs = make([]*traffic.UDPSource, total)
		pktSinks = make([]*traffic.UDPSink, total)
		for _, hf := range flows {
			pktSinks[hf.idx] = traffic.NewUDPSink(hosts[hf.dstG], uint16(20000+hf.idx))
			pktSrcs[hf.idx] = traffic.NewUDPSource(hosts[hf.srcG], uint16(1000+hf.idx),
				hosts[hf.dstG].Endpoint(uint16(20000+hf.idx)),
				traffic.UDPSourceConfig{Rate: hp.FlowDemand, PayloadSize: hybridPayload})
		}
	}

	// Start waves: one scheduler event per wave starts its stride of
	// flows in index order — the same flow→offset assignment the old
	// per-flow timers produced (wave = idx mod StartWaves), at a
	// million fewer events.
	waveGap := 2 * hp.Epoch / time.Duration(hp.StartWaves)
	for w := 0; w < hp.StartWaves; w++ {
		w := w
		sched.After(time.Duration(w)*waveGap, func() {
			for i := w; i < total; i += hp.StartWaves {
				hf := flows[i]
				if hf.fluid != nil {
					hf.fluid.Start()
				}
				if hp.PacketFabric {
					pktSrcs[i].Start()
				}
				if hf.crossing && hf.exp != nil {
					hf.fluid.Promote(hf.exp)
					promotions++
				}
			}
		})
	}
	buildFlowsMS := float64(time.Since(flowStart)) / float64(time.Millisecond)
	if swapN > 0 {
		sched.After(hp.SwapAt, func() {
			for j := 0; j < swapN; j++ {
				out := flows[j]
				out.fluid.Demote()
				demotions++
				in := flows[hp.CrossFlows+j]
				in.fluid.Promote(in.exp)
				promotions++
			}
		})
	}

	sched.RunFor(hp.Duration)

	// Capture allocations before teardown: the final max-min state is
	// part of the fluid tier's observable outcome.
	var rateHist, goodHist metrics.Hist
	for _, hf := range flows {
		if hf.fluid != nil {
			rateHist.Add(hf.fluid.Rate() / 1e6)
		}
	}

	for _, hf := range flows {
		if hf.fluid != nil {
			hf.fluid.Stop()
		}
		if hp.PacketFabric {
			pktSrcs[hf.idx].Stop()
		}
	}
	sched.RunFor(50 * time.Millisecond) // drain in-flight region traffic
	fn.Close()
	comb.Close()

	// Delivered traffic per flow. Expander flows are measured by their
	// flow handle (sink bytes while promoted, analytic accrual
	// otherwise) in both modes; background flows by analytic accrual in
	// hybrid mode and by their real packet sink in the baseline — never
	// both, so the two modes count each flow exactly once.
	var deliveredTotal, backgroundTotal float64
	delivered := make([]float64, total)
	for _, hf := range flows {
		var bits float64
		switch {
		case hf.exp != nil:
			bits = hf.fluid.DeliveredBits()
		case hp.PacketFabric:
			bits = float64(pktSinks[hf.idx].Stats().UniqueBytes) * 8
		default:
			bits = hf.fluid.DeliveredBits()
		}
		delivered[hf.idx] = bits
		deliveredTotal += bits
		if hf.exp == nil {
			backgroundTotal += bits
		}
		goodHist.Add(bits / hp.Duration.Seconds() / 1e6)
	}

	// Region digest: everything the packet-exact region observed, in
	// flow order.
	var rb strings.Builder
	for _, hf := range flows {
		if hf.exp == nil {
			continue
		}
		st := hf.exp.Sink.Stats()
		fmt.Fprintf(&rb, "x%d:s=%d u=%d b=%d dup=%d re=%d cor=%d;",
			hf.idx, hf.exp.Src.Sent, st.Unique, st.UniqueBytes, st.Duplicates, st.Reordered, st.Corrupted)
	}
	cs := comb.Compare.Stats()
	fmt.Fprintf(&rb, "cmp:a=%d i=%d q=%d blk=%d;gw:%d/%d",
		cs.Alarms, cs.IngestDrops, cs.QuotaDrops, cs.Blocks,
		gw0.Stats().TxPackets, gw1.Stats().RxPackets)
	regionDigest := rb.String()

	// Whole-run digest: fold the fluid outcome exactly (bit patterns,
	// flow order) over the region digest.
	h := fnv.New64a()
	h.Write([]byte(regionDigest))
	var buf [8]byte
	put := func(v uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf[:])
	}
	for _, hf := range flows {
		put(math.Float64bits(delivered[hf.idx]))
		if hf.fluid != nil {
			put(math.Float64bits(hf.fluid.Rate()))
		}
	}
	put(fn.Settles())
	digest := fmt.Sprintf("%s|fluid=%016x|settles=%d|events=%d", regionDigest, h.Sum64(), fn.Settles(), sched.Executed())

	// Pure-packet projection: each flow at its offered rate would emit
	// demand/(8·payload) datagrams per second for the duration, each
	// crossing ~6 links at 2 scheduler events per link hop (tx-done +
	// delivery) plus ~8 more for switch pipelines and host ingest.
	perDatagram := 20.0
	projected := float64(total) * hp.FlowDemand / (8 * hybridPayload) * hp.Duration.Seconds() * perDatagram
	events := sched.Executed()
	ratio := 0.0
	if events > 0 {
		ratio = projected / float64(events)
	}

	return HybridResult{
		Arity:                   arity,
		Hosts:                   len(hosts),
		Switches:                fb.switches(),
		Flows:                   total,
		CrossFlows:              hp.CrossFlows,
		RegionNodes:             region.Size(),
		Events:                  events,
		Settles:                 fn.Settles(),
		Promotions:              promotions,
		Demotions:               demotions,
		CongestionPromotions:    congPromotions,
		CongestionDemotions:     congDemotions,
		BuildTopoMS:             buildTopoMS,
		BuildWireMS:             buildWireMS,
		BuildFlowsMS:            buildFlowsMS,
		FluidDeliveredBits:      deliveredTotal,
		BackgroundDeliveredBits: backgroundTotal,
		RegionDigest:            regionDigest,
		Digest:                  digest,
		ProjectedPacketEvents:   projected,
		EventRatio:              ratio,
		Hists: map[string]metrics.Hist{
			"flow_rate_mbps":    rateHist,
			"flow_goodput_mbps": goodHist,
			"region_wire_bytes": agg.WireLen(),
			"region_gap_us":     agg.Gap(),
		},
	}
}

// installFatTreeRoutes materialises the deterministic two-level routing
// (agg by destination slot, core by destination pod) as proactive
// dst-MAC flow entries — only needed when the fabric carries real
// packets.
func installFatTreeRoutes(ft *topo.FatTree, hosts []*traffic.Host) {
	arity := ft.Arity
	half := arity / 2
	perPod := half * half
	route := func(mac packet.MAC, out int) *openflow.FlowEntry {
		return &openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(mac),
			Actions:  []openflow.Action{openflow.Output(uint16(out))},
		}
	}
	for pod := 0; pod < arity; pod++ {
		for e := 0; e < half; e++ {
			for s := 0; s < half; s++ {
				mac := hosts[pod*perPod+e*half+s].MAC()
				jd, md := s%half, pod%half
				for p2 := 0; p2 < arity; p2++ {
					for e2 := 0; e2 < half; e2++ {
						if p2 == pod && e2 == e {
							ft.Pods[p2].Edge[e2].Table().Add(route(mac, ft.EdgeHostPortOf(s)))
						} else {
							ft.Pods[p2].Edge[e2].Table().Add(route(mac, ft.EdgeUpPortOf(jd)))
						}
					}
					for j := 0; j < half; j++ {
						if p2 == pod {
							ft.Pods[p2].Agg[j].Table().Add(route(mac, ft.AggDownPortOf(e)))
						} else {
							ft.Pods[p2].Agg[j].Table().Add(route(mac, ft.AggUpPortOf(md)))
						}
					}
				}
				for _, c := range ft.Cores {
					c.Table().Add(route(mac, ft.CorePodPortOf(pod)))
				}
			}
		}
	}
}
