package experiment

import (
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/sim/par"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// VirtualResult summarises the §VII virtualized-combiner demonstration.
type VirtualResult struct {
	// Prevention (3 disjoint paths, one tampering device).
	PreventSent       uint64
	PreventDelivered  uint64
	PreventSuppressed uint64

	// Detection (2 disjoint paths, one dropping device).
	DetectSent       uint64
	DetectDelivered  uint64
	DetectAlarms     int
	FirstDetectionAt time.Duration

	// Overhead: goodput with and without the virtual combiner on the
	// same substrate, plus the bandwidth amplification factor (the §VII
	// trade: no extra hardware, k× path bandwidth).
	BaselineMbps  float64
	CombinedMbps  float64
	BandwidthCost float64
}

// RunVirtual demonstrates the virtualized NetCo: prevention over three
// VLAN-labelled disjoint paths, detection over two, and the throughput
// cost of the inband compare.
func RunVirtual(p Params) VirtualResult {
	var res VirtualResult

	// Prevention: 3 paths, the middle one tampering with TOS.
	{
		r, mp, h1, h2 := buildVirtualNet(p, 3, false, func(path, hop int) switching.Behavior {
			if path == 1 && hop == 0 {
				return &adversary.Modify{
					Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
					Rewrite: []openflow.Action{openflow.SetNwTOS(0xfc)},
				}
			}
			return nil
		})
		sink := traffic.NewUDPSink(h2, 5001)
		src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 1000})
		src.Start()
		r.RunFor(500 * time.Millisecond)
		src.Stop()
		r.RunFor(100 * time.Millisecond)
		res.PreventSent = src.Sent
		res.PreventDelivered = sink.Stats().Unique
		res.PreventSuppressed = mp.Right.EngineStats().Suppressed
		mp.Close()
	}

	// Detection: 2 paths, one dropper; measure time to first alarm.
	{
		r, mp, h1, h2 := buildVirtualNet(p, 2, true, func(path, hop int) switching.Behavior {
			if path == 1 && hop == 0 {
				return &adversary.Drop{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2))}
			}
			return nil
		})
		res.FirstDetectionAt = -1
		mp.Right.OnAlarm = func(a core.Alarm) {
			if a.Kind == core.EventDetection {
				res.DetectAlarms++
				if res.FirstDetectionAt < 0 {
					res.FirstDetectionAt = a.At
				}
			}
		}
		sink := traffic.NewUDPSink(h2, 5001)
		src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 1000})
		src.Start()
		r.RunFor(500 * time.Millisecond)
		src.Stop()
		r.RunFor(100 * time.Millisecond)
		res.DetectSent = src.Sent
		res.DetectDelivered = sink.Stats().Unique
		mp.Close()
	}

	// Overhead: honest 3-path combiner vs a single bare path.
	{
		r, mp, h1, h2 := buildVirtualNet(p, 3, false, nil)
		pt := runVirtualUDP(r, h1, h2, p)
		res.CombinedMbps = pt
		res.BandwidthCost = 3
		mp.Close()
	}
	{
		sched := sim.NewScheduler()
		net := netem.New(sched)
		link := p.TrunkLink()
		sw := switching.New(sched, switching.Config{Name: "bare", ProcDelay: p.SwitchProc, ProcQueue: p.SwitchQueue})
		h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), hostCfgOf(p))
		h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), hostCfgOf(p))
		net.Add(sw)
		net.Add(h1)
		net.Add(h2)
		net.Connect(h1, traffic.HostPort, sw, 0, link)
		net.Connect(h2, traffic.HostPort, sw, 1, link)
		sw.Table().Add(&openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll().WithDlDst(h2.MAC()), Actions: []openflow.Action{openflow.Output(1)}})
		sw.Table().Add(&openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll().WithDlDst(h1.MAC()), Actions: []openflow.Action{openflow.Output(0)}})
		res.BaselineMbps = runVirtualUDP(sched, h1, h2, p)
	}
	return res
}

func hostCfgOf(p Params) traffic.HostConfig {
	return traffic.HostConfig{
		IngestPerPacket: p.HostIngest,
		IngestQueue:     p.HostQueue,
		EchoResponder:   true,
	}
}

func buildVirtualNet(p Params, paths int, detectOnly bool, compromise func(path, hop int) switching.Behavior) (sim.Runner, *topo.Multipath, *traffic.Host, *traffic.Host) {
	link := p.TrunkLink()
	var net *netem.Network
	var runner sim.Runner
	var eng *par.Engine
	domains := p.Partitions
	if units := 2 + paths; domains > units {
		domains = units
	}
	if domains > 1 && link.Delay > 0 && p.HostLink().Delay > 0 {
		eng = par.New(domains, p.Workers)
		net = netem.NewPartitioned(eng.Schedulers(), topo.MultipathAssign(domains),
			func(src, dst int) netem.CrossPost { return eng.Boundary(src, dst) })
		runner = eng
	} else {
		sched := sim.NewScheduler()
		net = netem.New(sched)
		runner = sched
	}
	mp := topo.BuildMultipath(net, topo.MultipathParams{
		Paths:           paths,
		HopsPerPath:     2,
		Link:            link,
		EdgeLink:        p.HostLink(),
		SwitchProcDelay: p.SwitchProc,
		SwitchProcQueue: p.SwitchQueue,
		Edge: core.VirtualEdgeConfig{
			Engine: core.Config{
				HoldTimeout:   p.CompareHold,
				CacheCapacity: p.CompareCache,
				DetectOnly:    detectOnly,
			},
			PerCopyCost: p.ComparePerCopy,
			QueueLimit:  p.CompareQueue,
		},
		Compromise: compromise,
	})
	h1 := traffic.NewHost(net.SchedulerFor("h1"), "h1", packet.HostMAC(1), packet.HostIP(1), hostCfgOf(p))
	h2 := traffic.NewHost(net.SchedulerFor("h2"), "h2", packet.HostMAC(2), packet.HostIP(2), hostCfgOf(p))
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, traffic.HostPort, mp.Left, core.VirtualHostPort, p.HostLink())
	net.Connect(h2, traffic.HostPort, mp.Right, core.VirtualHostPort, p.HostLink())
	mp.Route(h1.MAC(), core.SideLeft)
	mp.Route(h2.MAC(), core.SideRight)
	if eng != nil {
		eng.SetLookahead(net.MinCrossDelay())
	}
	return runner, mp, h1, h2
}

func runVirtualUDP(r sim.Runner, h1, h2 *traffic.Host, p Params) float64 {
	sink := traffic.NewUDPSink(h2, 5002)
	src := traffic.NewUDPSource(h1, 4002, h2.Endpoint(5002), traffic.UDPSourceConfig{Rate: 300e6, PayloadSize: 1470})
	src.Start()
	r.RunFor(p.UDPDuration)
	src.Stop()
	r.RunFor(100 * time.Millisecond)
	return sink.Stats().Goodput() / 1e6
}
