package experiment

import "netco/internal/topo"

// Scenario enumerates the six evaluation scenarios of §V-A.
type Scenario int

// Evaluation scenarios.
const (
	// ScenLinespeed is the insecure baseline without a combiner.
	ScenLinespeed Scenario = iota + 1
	// ScenCentral3 is the k=3 combiner with the data-plane compare.
	ScenCentral3
	// ScenCentral5 is the k=5 combiner.
	ScenCentral5
	// ScenPOX3 runs the k=3 compare on the controller.
	ScenPOX3
	// ScenDup3 splits over 3 routers without combining.
	ScenDup3
	// ScenDup5 splits over 5 routers without combining.
	ScenDup5
	// ScenInline3 is this repo's implementation of the paper's §IX
	// "compare as a middlebox" alternative: k=3 with inband compares,
	// no out-of-band detour. Not part of the paper's evaluation; used
	// by the architecture-comparison extension.
	ScenInline3
)

// AllScenarios is the Fig. 4/5 scenario set, in the paper's order.
var AllScenarios = []Scenario{ScenLinespeed, ScenDup3, ScenDup5, ScenCentral3, ScenCentral5, ScenPOX3}

// TableScenarios is the Table I / Fig. 7 scenario set (no POX3).
var TableScenarios = []Scenario{ScenLinespeed, ScenDup3, ScenDup5, ScenCentral3, ScenCentral5}

// ArchitectureScenarios compares compare placements at k=3: out-of-band
// data plane (Central3), inband middlebox (Inline3), controller (POX3).
var ArchitectureScenarios = []Scenario{ScenCentral3, ScenInline3, ScenPOX3}

// String returns the paper's scenario name.
func (s Scenario) String() string {
	switch s {
	case ScenLinespeed:
		return "Linespeed"
	case ScenCentral3:
		return "Central3"
	case ScenCentral5:
		return "Central5"
	case ScenPOX3:
		return "POX3"
	case ScenDup3:
		return "Dup3"
	case ScenDup5:
		return "Dup5"
	case ScenInline3:
		return "Inline3"
	}
	return "Unknown"
}

// K returns the combiner parallelism.
func (s Scenario) K() int {
	switch s {
	case ScenCentral5, ScenDup5:
		return 5
	case ScenLinespeed:
		return 1
	default:
		return 3
	}
}

func (s Scenario) kind() topo.TestbedKind {
	switch s {
	case ScenLinespeed:
		return topo.KindLinespeed
	case ScenCentral3, ScenCentral5:
		return topo.KindCentral
	case ScenPOX3:
		return topo.KindPOX
	case ScenInline3:
		return topo.KindInline
	default:
		return topo.KindDup
	}
}
