// Package experiment regenerates the paper's evaluation: every figure
// (4–8), Table I, the §VI datacenter-attack case study and the §VII
// virtualized combiner, over the scenarios of §V-A (Linespeed, Central3,
// Central5, POX3, Dup3, Dup5).
//
// All physical constants live in Params so the calibration is in one
// place and ablations can perturb it.
package experiment

import (
	"time"

	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// Params holds every physical constant of the testbed plus workload
// durations. DefaultParams is calibrated so the *shape* of the paper's
// results holds and most absolute values land near Table I:
//
//   - 500 Mbit/s trunks make Linespeed TCP ≈ 500 × 1460/1538 ≈ 474 Mbit/s;
//   - the compare's 15 µs/copy CPU bounds Central3/Central5 (data AND ACK
//     segments traverse the combiner: 6 resp. 10 copies per TCP segment);
//   - the destination host's ≈67 kpps ingest bounds Dup3/Dup5 UDP, the
//     paper's "buffered on the destination host" effect;
//   - duplicate segments trigger dup-ACK storms that collapse Dup TCP;
//   - the compare's bounded packet cache forces cleanup passes at high
//     packet rates, which is what makes small-packet jitter worse (Fig. 8).
type Params struct {
	// HostLinkRate is the host↔edge and edge↔compare line rate (the
	// trusted components get fast dedicated links); TrunkRate the
	// edge↔router line rate that defines the scenario bottleneck.
	HostLinkRate float64
	TrunkRate    float64
	// PropDelay is the per-link propagation delay; QueueLimit the
	// per-link drop-tail queue in packets.
	PropDelay  time.Duration
	QueueLimit int

	// SwitchProc is the untrusted routers' per-packet pipeline cost;
	// EdgeProc the trusted edges'.
	SwitchProc  time.Duration
	SwitchQueue int
	EdgeProc    time.Duration
	EdgeQueue   int

	// HostIngest is the destination stack's per-packet receive cost
	// (1/HostIngest = the pps ceiling that binds Dup5); HostQueue its
	// buffer.
	HostIngest time.Duration
	HostQueue  int

	// ComparePerCopy is the C compare's per-copy CPU cost;
	// CompareQueue its ingest bound in copies; CompareHold the §IV
	// bounded waiting time; CompareCache the packet-cache capacity whose
	// cleanup passes (CompareCleanupPerEntry each) drive Fig. 8;
	// CompareBlock the DoS block duration.
	ComparePerCopy         time.Duration
	CompareQueue           int
	CompareHold            time.Duration
	CompareCache           int
	CompareCleanupPerEntry time.Duration
	CompareBlock           time.Duration
	// CompareMode selects the copy-equality notion (bit-exact, hashed,
	// header-only); zero means bit-exact. Exposed for the ablation
	// benchmarks.
	CompareMode core.Mode

	// POXPerCopy is the controller compare's interpreter cost (the
	// paper: interpreted Python vs precompiled C); CtrlLatency the
	// one-way control-channel latency every POX3 copy pays twice.
	POXPerCopy  time.Duration
	POXQueue    int
	CtrlLatency time.Duration

	// Workload durations. The paper uses 10 s × 10 runs per direction;
	// these defaults trade a little averaging for wall-clock time and
	// are overridable from the CLI (-full restores paper-faithful
	// durations).
	TCPDuration time.Duration
	TCPRuns     int // alternating directions, as in §V-A
	UDPDuration time.Duration
	UDPLossGoal float64 // iperf criterion: max rate with loss below this
	PingCount   int     // cycles per sequence
	PingSeqs    int     // sequences averaged per bar (paper: 3 × 50)
	JitterRate  float64 // offered load for the Fig. 8 sweep
	Seed        int64

	// Churn knobs (KindChaos): ChaosCrashes routers cold-crash staggered
	// across the window, each down for ChaosCrashDown; ChaosFlapPeriod
	// > 0 flaps one trunk link at half duty for ChaosFlapCycles;
	// ChaosCompareRestart bounces the compare once mid-window.
	ChaosCrashes        int
	ChaosCrashDown      time.Duration
	ChaosFlapPeriod     time.Duration
	ChaosFlapCycles     int
	ChaosCompareRestart bool

	// Impair attaches the netem impairment pipeline (loss models,
	// corruption, duplication, reordering; see ImpairParams) to every
	// trunk link, seeded from the run seed. The zero value keeps trunks
	// clean and digests bit-identical to the pre-impairment engine.
	Impair ImpairParams

	// Partitions > 1 runs each testbed on the parallel engine with that
	// many domains (bit-identical to serial; see internal/sim/par).
	// Workers bounds the engine's goroutines (0 = GOMAXPROCS).
	Partitions int
	Workers    int
}

// DefaultParams returns the calibrated configuration.
func DefaultParams() Params {
	return Params{
		HostLinkRate: 2e9,
		TrunkRate:    500e6,
		PropDelay:    16 * time.Microsecond,
		QueueLimit:   100,

		SwitchProc:  2 * time.Microsecond,
		SwitchQueue: 500,
		EdgeProc:    2 * time.Microsecond,
		EdgeQueue:   500,

		HostIngest: 15 * time.Microsecond,
		HostQueue:  64,

		ComparePerCopy:         15 * time.Microsecond,
		CompareQueue:           192,
		CompareHold:            20 * time.Millisecond,
		CompareCache:           768,
		CompareCleanupPerEntry: 500 * time.Nanosecond,
		CompareBlock:           200 * time.Millisecond,

		POXPerCopy:  150 * time.Microsecond,
		POXQueue:    192,
		CtrlLatency: 200 * time.Microsecond,

		TCPDuration: 3 * time.Second,
		TCPRuns:     2,
		UDPDuration: 1 * time.Second,
		UDPLossGoal: 0.005,
		PingCount:   50,
		PingSeqs:    3,
		JitterRate:  20e6,
		Seed:        1,

		ChaosCrashes:    1,
		ChaosCrashDown:  40 * time.Millisecond,
		ChaosFlapPeriod: 0,
		ChaosFlapCycles: 3,
	}
}

// PaperFaithful stretches durations to the paper's methodology (10 s runs,
// 10 per direction).
func (p Params) PaperFaithful() Params {
	p.TCPDuration = 10 * time.Second
	p.TCPRuns = 10
	p.UDPDuration = 10 * time.Second
	return p
}

// Quick shrinks durations for smoke tests and testing.B benches.
func (p Params) Quick() Params {
	p.TCPDuration = 500 * time.Millisecond
	p.TCPRuns = 1
	p.UDPDuration = 300 * time.Millisecond
	p.PingCount = 20
	p.PingSeqs = 1
	return p
}

// HostLink is the calibrated host↔edge (and edge↔compare) link recipe.
// Exported so other builders (the fuzzing harness) share one calibration.
func (p Params) HostLink() netem.LinkConfig {
	return netem.LinkConfig{Bandwidth: p.HostLinkRate, Delay: p.PropDelay, QueueLimit: p.QueueLimit}
}

// TrunkLink is the calibrated edge↔router link recipe. The impairment
// pipeline rides the trunks only: hosts, edges and the compare keep
// their trusted clean links, matching the threat model (the unreliable
// part of the fabric is the routers and the wires between them).
func (p Params) TrunkLink() netem.LinkConfig {
	cfg := netem.LinkConfig{Bandwidth: p.TrunkRate, Delay: p.PropDelay, QueueLimit: p.QueueLimit}
	if p.Impair.Enabled() {
		cfg.Impairments = p.Impair.Spec(p.Seed)
	}
	return cfg
}

// TestbedParams expands the calibration into a topo build recipe for the
// scenario, with an optional compromise hook for attack experiments.
func (p Params) TestbedParams(s Scenario, compromise func(i int) switching.Behavior) topo.TestbedParams {
	tp := topo.TestbedParams{
		Kind:            s.kind(),
		K:               s.K(),
		HostLink:        p.HostLink(),
		RouterLink:      p.TrunkLink(),
		CompareLink:     netem.LinkConfig{Bandwidth: p.HostLinkRate, Delay: p.PropDelay, QueueLimit: 4 * p.QueueLimit},
		SwitchProcDelay: p.SwitchProc,
		SwitchProcQueue: p.SwitchQueue,
		EdgeProcDelay:   p.EdgeProc,
		EdgeProcQueue:   p.EdgeQueue,
		Host: traffic.HostConfig{
			IngestPerPacket: p.HostIngest,
			IngestQueue:     p.HostQueue,
			EchoResponder:   true,
		},
		Compare: core.CompareNodeConfig{
			Engine: core.Config{
				Mode:          p.CompareMode,
				HoldTimeout:   p.CompareHold,
				CacheCapacity: p.CompareCache,
			},
			PerCopyCost:     p.ComparePerCopy,
			QueueLimit:      p.CompareQueue,
			CleanupPerEntry: p.CompareCleanupPerEntry,
			BlockDuration:   p.CompareBlock,
		},
		CtrlLatency:    p.CtrlLatency,
		POXPerCopyCost: p.POXPerCopy,
		POXQueueLimit:  p.POXQueue,
		POXEngine: core.Config{
			Mode:          p.CompareMode,
			HoldTimeout:   p.CompareHold,
			CacheCapacity: p.CompareCache,
		},
		Compromise: compromise,
		Partitions: p.Partitions,
		Workers:    p.Workers,
	}
	return tp
}

// Build assembles the testbed for a scenario.
func (p Params) Build(s Scenario) *topo.Testbed {
	return topo.BuildTestbed(p.TestbedParams(s, nil))
}
