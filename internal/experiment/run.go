package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"netco/internal/metrics"
)

// Kind enumerates the experiment units the sweep runner can schedule.
// Each is a pure function of (Params, Scenario, seed): it builds a fresh
// testbed — its own scheduler, pools and engines — runs to completion,
// and returns a flat Result. Nothing is shared between invocations, so
// any number may run concurrently on separate goroutines.
type Kind int

// Schedulable experiment kinds.
const (
	// KindTCP is the Fig. 4 measurement: TCP bulk goodput.
	KindTCP Kind = iota + 1
	// KindUDP is the Fig. 5 measurement: max UDP rate under the loss goal.
	KindUDP
	// KindPing is the Fig. 7 measurement: ICMP echo RTT.
	KindPing
	// KindJitter is the Fig. 8 measurement: UDP jitter across packet sizes.
	KindJitter
	// KindHybrid runs the hybrid fluid/packet traffic engine's sweep
	// unit: a small fat-tree fluid fabric with a packet-exact combiner
	// region (see RunHybrid). The scenario only selects labelling — the
	// region is always a Central3 combiner — and the unit is serial by
	// construction, so Params.Partitions does not apply.
	KindHybrid
	// KindChaos measures availability under lifecycle churn: a UDP
	// stream through the scenario while routers crash and restart, a
	// trunk link flaps and (optionally) the compare bounces, plus the
	// recovery latency after the last heal (see RunChaos).
	KindChaos
	// KindImpair measures UDP delivery with the Params.Impair pipeline
	// (loss models, corruption, duplication, reordering) on every trunk
	// — the goodput-surface unit for impairment grids (see RunImpair).
	KindImpair
	// KindChurn runs the flow-lifecycle churn engine: an open
	// arrival/departure workload over a fat-tree fluid fabric,
	// measuring lifecycle throughput with arena recycling, parallel
	// settle and wheel-timed departures (see RunChurn). Serial by
	// construction like KindHybrid; the scenario only labels the run.
	KindChurn
)

// AllKinds lists every schedulable kind.
var AllKinds = []Kind{KindTCP, KindUDP, KindPing, KindJitter, KindHybrid, KindChaos, KindImpair, KindChurn}

// String names the kind for CLIs and artifacts.
func (k Kind) String() string {
	switch k {
	case KindTCP:
		return "tcp"
	case KindUDP:
		return "udp"
	case KindPing:
		return "ping"
	case KindJitter:
		return "jitter"
	case KindHybrid:
		return "hybrid"
	case KindChaos:
		return "chaos"
	case KindImpair:
		return "impair"
	case KindChurn:
		return "churn"
	}
	return "unknown"
}

// ParseKind is the inverse of Kind.String.
func ParseKind(name string) (Kind, error) {
	for _, k := range AllKinds {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown kind %q (want tcp, udp, ping, jitter, hybrid, chaos, impair or churn)", name)
}

// ParseScenario resolves a paper scenario name (case-insensitive).
func ParseScenario(name string) (Scenario, error) {
	for s := ScenLinespeed; s <= ScenInline3; s++ {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown scenario %q", name)
}

// Result is one experiment run's outcome in a flat, merge-friendly form:
// scalar metrics for reporting plus summaries the sweep runner merges
// across runs of the same (kind, scenario) group. All fields marshal
// deterministically (encoding/json sorts map keys), which is what lets
// the sweep CLI promise byte-identical artifacts regardless of worker
// count.
type Result struct {
	Kind     string `json:"kind"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Metrics holds the run's scalar measurements. NaN/Inf values (e.g.
	// statistics of an empty sample set) are omitted rather than faked
	// as zeros — JSON cannot carry them.
	Metrics map[string]float64 `json:"metrics"`
	// Summaries holds the run's distributions, mergeable across runs via
	// metrics.Summary.Merge.
	Summaries map[string]metrics.Summary `json:"summaries,omitempty"`
	// Hists holds the run's streaming histogram sketches (hybrid runs'
	// per-flow rate/goodput distributions), mergeable across runs via
	// metrics.Hist.Merge.
	Hists map[string]metrics.Hist `json:"hists,omitempty"`
}

// setMetric records a scalar, dropping non-finite values.
func (r *Result) setMetric(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	r.Metrics[name] = v
}

func (r *Result) addSummary(name string, s metrics.Summary) {
	if s.N() == 0 {
		return
	}
	if r.Summaries == nil {
		r.Summaries = make(map[string]metrics.Summary)
	}
	r.Summaries[name] = s
}

// Run executes one experiment kind as a pure function of its inputs. The
// seed argument overrides p.Seed, so a sweep can fan one Params out
// across a seed grid without mutating shared state. Run never shares
// schedulers, pools or engines with other invocations; it is safe to
// call from many goroutines at once.
func Run(k Kind, p Params, s Scenario, seed int64) Result {
	p.Seed = seed
	res := Result{
		Kind:     k.String(),
		Scenario: s.String(),
		Seed:     seed,
		Metrics:  make(map[string]float64),
	}
	switch k {
	case KindTCP:
		tr := RunTCP(p, s)
		res.setMetric("tcp_mbps", tr.Mbps)
		res.setMetric("tcp_retransmits", float64(tr.Retransmits))
		res.setMetric("tcp_timeouts", float64(tr.Timeouts))
		res.setMetric("tcp_dup_acks", float64(tr.DupAcks))
		var runs metrics.Summary
		for _, mbps := range tr.Runs {
			runs.Add(mbps)
		}
		res.addSummary("tcp_mbps", runs)
	case KindUDP:
		ur := RunUDPMax(p, s)
		res.setMetric("udp_mbps", ur.Mbps)
		res.setMetric("udp_loss", ur.Loss)
		var runs metrics.Summary
		runs.Add(ur.Mbps)
		res.addSummary("udp_mbps", runs)
	case KindPing:
		pr := RunPing(p, s)
		res.setMetric("ping_sent", float64(pr.Sent))
		res.setMetric("ping_received", float64(pr.Received))
		if pr.Received > 0 {
			res.setMetric("rtt_avg_ms", pr.AvgRTT.Seconds()*1e3)
			res.setMetric("rtt_min_ms", pr.MinRTT.Seconds()*1e3)
			res.setMetric("rtt_max_ms", pr.MaxRTT.Seconds()*1e3)
			var rtt metrics.Summary
			rtt.Add(pr.AvgRTT.Seconds() * 1e3)
			res.addSummary("rtt_avg_ms", rtt)
		}
	case KindJitter:
		var across metrics.Summary
		for _, pt := range RunJitter(p, s, nil) {
			us := float64(pt.Jitter) / float64(time.Microsecond)
			res.setMetric(fmt.Sprintf("jitter_us_%dB", pt.PayloadSize), us)
			res.setMetric(fmt.Sprintf("loss_%dB", pt.PayloadSize), pt.Loss)
			across.Add(us)
		}
		res.addSummary("jitter_us", across)
	case KindHybrid:
		hp := DefaultHybridParams()
		hp.Duration = p.UDPDuration
		hr := RunHybrid(p, hp)
		res.setMetric("hybrid_flows", float64(hr.Flows))
		res.setMetric("hybrid_cross_flows", float64(hr.CrossFlows))
		res.setMetric("hybrid_events", float64(hr.Events))
		res.setMetric("hybrid_settles", float64(hr.Settles))
		res.setMetric("hybrid_promotions", float64(hr.Promotions))
		res.setMetric("hybrid_demotions", float64(hr.Demotions))
		res.setMetric("hybrid_event_ratio", hr.EventRatio)
		res.setMetric("fluid_goodput_mbps", hr.FluidDeliveredBits/hp.Duration.Seconds()/1e6)
		var good metrics.Summary
		good.Add(hr.FluidDeliveredBits / hp.Duration.Seconds() / 1e6)
		res.addSummary("fluid_goodput_mbps", good)
		res.Hists = hr.Hists
	case KindChaos:
		cr := RunChaos(p, s)
		res.setMetric("chaos_sent", float64(cr.Sent))
		res.setMetric("chaos_delivered", float64(cr.Delivered))
		res.setMetric("chaos_dups", float64(cr.Dups))
		res.setMetric("delivered_frac", cr.DeliveredFrac)
		res.setMetric("chaos_crashes", float64(cr.Crashes))
		res.setMetric("chaos_flap_cycles", float64(cr.FlapCycles))
		res.setMetric("last_heal_ms", cr.LastHeal.Seconds()*1e3)
		if cr.Recovered {
			res.setMetric("recovery_ms", cr.Recovery.Seconds()*1e3)
			var rec metrics.Summary
			rec.Add(cr.Recovery.Seconds() * 1e3)
			res.addSummary("recovery_ms", rec)
		}
		var frac metrics.Summary
		frac.Add(cr.DeliveredFrac)
		res.addSummary("delivered_frac", frac)
		if p.Impair.Enabled() {
			// Chaos under impairment: surface the pipeline's accounting so
			// the grid can separate modelled wire loss from outage loss.
			res.setMetric("impair_drops", float64(cr.Impair.ImpairDrops))
			res.setMetric("impair_corrupted", float64(cr.Impair.Corrupted))
			res.setMetric("impair_duplicated", float64(cr.Impair.Duplicated))
			res.setMetric("impair_reordered", float64(cr.Impair.Reordered))
		}
	case KindChurn:
		hp := DefaultHybridParams()
		hp.Duration = p.UDPDuration
		cr := RunChurn(p, hp)
		res.setMetric("churn_arrivals", float64(cr.Arrivals))
		res.setMetric("churn_departures", float64(cr.Departures))
		res.setMetric("churn_peak_live", float64(cr.PeakLive))
		res.setMetric("churn_recycled", float64(cr.Recycled))
		res.setMetric("churn_settles", float64(cr.Settles))
		res.setMetric("churn_components_solved", float64(cr.ComponentsSolved))
		res.setMetric("churn_wheel_expired", float64(cr.WheelExpired))
		res.setMetric("arrivals_per_sim_s", cr.ArrivalsPerSimSec)
		res.setMetric("lifecycle_events_per_sim_s", cr.LifecycleEventsPerSimSec)
		res.setMetric("churn_goodput_mbps", cr.DeliveredBits/hp.Duration.Seconds()/1e6)
		var rate metrics.Summary
		rate.Add(cr.LifecycleEventsPerSimSec)
		res.addSummary("lifecycle_events_per_sim_s", rate)
	case KindImpair:
		ir := RunImpair(p, s)
		res.setMetric("impair_sent", float64(ir.Sent))
		res.setMetric("impair_delivered", float64(ir.Delivered))
		res.setMetric("impair_dups", float64(ir.Dups))
		res.setMetric("delivered_frac", ir.DeliveredFrac)
		res.setMetric("goodput_mbps", ir.GoodputMbps)
		res.setMetric("impair_drops", float64(ir.Counters.ImpairDrops))
		res.setMetric("impair_corrupted", float64(ir.Counters.Corrupted))
		res.setMetric("impair_duplicated", float64(ir.Counters.Duplicated))
		res.setMetric("impair_reordered", float64(ir.Counters.Reordered))
		var frac metrics.Summary
		frac.Add(ir.DeliveredFrac)
		res.addSummary("delivered_frac", frac)
		var good metrics.Summary
		good.Add(ir.GoodputMbps)
		res.addSummary("goodput_mbps", good)
	default:
		panic(fmt.Sprintf("experiment: unknown Kind %d", k))
	}
	return res
}
