package experiment

import (
	"fmt"
	"time"

	"netco/internal/chaos"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// ChaosResult is one churn run's outcome: delivery through the fault
// schedule plus the post-heal recovery latency, measured by a probe
// stream that starts exactly when the last outage heals.
type ChaosResult struct {
	Scenario Scenario
	// Sent/Delivered/Dups count the measurement stream's datagrams
	// across the whole window, faults included.
	Sent, Delivered, Dups uint64
	DeliveredFrac         float64
	// Crashes and FlapCycles report what the plan actually scheduled
	// (scenarios without a combiner or compare skip the targets they
	// lack).
	Crashes    int
	FlapCycles int
	// LastHeal is the instant the final outage heals; Recovery the gap
	// from there to the probe stream's first delivery. Recovered is false
	// if no probe datagram ever arrived.
	LastHeal  time.Duration
	Recovery  time.Duration
	Recovered bool
	// Impair aggregates the impairment-pipeline counters across the
	// fabric (all zero unless Params.Impair is configured), so chaos ×
	// impairment grids can split outage loss from modelled wire loss.
	Impair ImpairCounters
}

// chaosSettle matches the other experiment units' warm-up period.
const chaosSettle = 50 * time.Millisecond

// RunChaos measures availability under lifecycle churn: a UDP stream
// crosses the scenario's fabric while ChaosCrashes routers cold-crash
// (staggered across the window, rules replayed on restart), one trunk
// link flaps at ChaosFlapPeriod, and optionally the compare restarts with
// its caches flushed. The headline figures are the delivered fraction
// under churn — a k≥3 combiner should mask single crashes entirely — and
// the recovery time after the last heal.
func RunChaos(p Params, s Scenario) ChaosResult {
	tb := p.Build(s)
	defer tb.Close()

	window := p.UDPDuration
	// Outages must heal early enough that the probe can still run inside
	// the window.
	healBound := chaosSettle + window*9/10

	plan, reg, res := chaosPlanFor(p, s, tb, window, healBound)
	if err := plan.Schedule(reg); err != nil {
		panic(fmt.Sprintf("experiment: chaos plan: %v", err)) // plan is built clamped-valid
	}
	res.LastHeal = plan.LastRecovery()

	sink := traffic.NewUDPSink(tb.H2, 5001)
	src := traffic.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate:        50e6,
		PayloadSize: 1000,
	})

	// The probe stream starts at the last heal, on h1's own scheduler, so
	// its first arrival timestamps the fabric's return to service.
	probeSink := traffic.NewUDPSink(tb.H2, 5002)
	probe := traffic.NewUDPSource(tb.H1, 4002, tb.H2.Endpoint(5002), traffic.UDPSourceConfig{
		Rate:        10e6,
		PayloadSize: 256,
	})
	if res.LastHeal > 0 {
		h1 := tb.Net.SchedulerFor("h1")
		h1.After(res.LastHeal, probe.Start)
	}

	tb.Runner.RunFor(chaosSettle)
	src.Start()
	tb.Runner.RunFor(window)
	src.Stop()
	probe.Stop()
	tb.Runner.RunFor(2 * p.CompareHold) // drain in-flight copies

	st := sink.Stats()
	res.Sent = src.Sent
	res.Delivered = st.Unique
	res.Dups = st.Duplicates
	if src.Sent > 0 {
		res.DeliveredFrac = float64(st.Unique) / float64(src.Sent)
	}
	if res.LastHeal > 0 {
		pst := probeSink.Stats()
		if pst.Unique > 0 {
			res.Recovered = true
			res.Recovery = pst.First - res.LastHeal
		}
	}
	res.Impair = collectTestbedImpair(tb)
	return res
}

// chaosPlanFor expands the Params churn knobs into a plan against the
// testbed's targets, skipping targets the scenario lacks (POX has no
// combiner to flap, Dup no compare to restart) and clamping every outage
// to heal before healBound.
func chaosPlanFor(p Params, s Scenario, tb *topo.Testbed, window, healBound time.Duration) (chaos.Plan, chaos.Registry, ChaosResult) {
	var plan chaos.Plan
	reg := chaos.Registry{}
	res := ChaosResult{Scenario: s}

	clampAt := func(at, down time.Duration) time.Duration {
		if at+down > healBound {
			at = healBound - down
		}
		if at < chaosSettle {
			at = chaosSettle
		}
		return at
	}

	crashes := p.ChaosCrashes
	if n := len(tb.Routers); crashes > n {
		crashes = n
	}
	for i := 0; i < crashes; i++ {
		i := i
		sw := tb.Routers[i]
		restart := sw.Restart
		if tb.Combiner != nil {
			comb := tb.Combiner
			restart = func() { comb.RestartRouter(i) }
		}
		name := fmt.Sprintf("crash%d", i)
		reg[name] = chaos.NodeTarget(tb.Net.SchedulerFor(sw.Name()), sw.Crash, restart)
		at := clampAt(chaosSettle+window*time.Duration(i+1)/time.Duration(crashes+1), p.ChaosCrashDown)
		plan.Actions = append(plan.Actions, chaos.Action{
			Target: name, At: at, Down: p.ChaosCrashDown,
		})
		res.Crashes++
	}

	if p.ChaosFlapPeriod > 0 && tb.Combiner != nil && len(tb.Combiner.RouterLinks) > 0 {
		cycles := p.ChaosFlapCycles
		if cycles < 1 {
			cycles = 1
		}
		down := p.ChaosFlapPeriod / 2
		at := chaosSettle + window/5
		// Clamp the whole flap train, dropping cycles that cannot heal in
		// time.
		for cycles > 1 && at+time.Duration(cycles-1)*p.ChaosFlapPeriod+down > healBound {
			cycles--
		}
		reg["flap"] = chaos.LinkTarget(tb.Combiner.RouterLinks[0][0])
		plan.Actions = append(plan.Actions, chaos.Action{
			Target: "flap", At: clampAt(at, down), Down: down,
			Cycles: cycles, Period: p.ChaosFlapPeriod,
		})
		res.FlapCycles = cycles
	}

	if p.ChaosCompareRestart && tb.Combiner != nil && tb.Combiner.Compare != nil {
		cn := tb.Combiner.Compare
		const down = 20 * time.Millisecond
		reg["compare"] = chaos.NodeTarget(tb.Net.SchedulerFor(cn.Name()), cn.Crash, cn.Restart)
		plan.Actions = append(plan.Actions, chaos.Action{
			Target: "compare", At: clampAt(chaosSettle+window/2, down), Down: down,
		})
	}
	return plan, reg, res
}
