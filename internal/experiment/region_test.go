package experiment

import (
	"reflect"
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/traffic"
)

// regionChain builds h0-h1-...-h4 and returns the network.
func regionChain(t *testing.T) *netem.Network {
	t.Helper()
	sched := sim.NewScheduler()
	nw := netem.New(sched)
	var prev *traffic.Host
	for i := 0; i < 5; i++ {
		h := traffic.NewHost(sched, []string{"h0", "h1", "h2", "h3", "h4"}[i],
			packet.HostMAC(uint32(i+1)), packet.HostIP(uint32(i+1)), traffic.HostConfig{})
		nw.Add(h)
		if prev != nil {
			nw.Connect(prev, 1, h, 0, netem.LinkConfig{Delay: time.Microsecond})
		}
		prev = h
	}
	return nw
}

func TestRegionMapRadius(t *testing.T) {
	nw := regionChain(t)
	rm := BuildRegionMap(nw, []string{"h2"}, 1)
	want := []string{"h1", "h2", "h3"}
	if got := rm.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("radius-1 ball = %v, want %v", got, want)
	}
	if !rm.Contains("h2") || rm.Contains("h0") || rm.Size() != 3 {
		t.Fatalf("membership wrong: size=%d", rm.Size())
	}
	if rm.Radius() != 1 {
		t.Fatalf("radius = %d", rm.Radius())
	}

	// Radius 0 marks only the seed; a big radius floods the component.
	if got := BuildRegionMap(nw, []string{"h2"}, 0).Names(); !reflect.DeepEqual(got, []string{"h2"}) {
		t.Fatalf("radius-0 = %v", got)
	}
	if got := BuildRegionMap(nw, []string{"h0"}, 10).Size(); got != 5 {
		t.Fatalf("flooded ball size = %d, want 5", got)
	}
}

func TestRegionMapCrosses(t *testing.T) {
	nw := regionChain(t)
	rm := BuildRegionMap(nw, []string{"h2"}, 1)
	if !rm.Crosses([]string{"h0", "h1"}) {
		t.Fatal("route through h1 should cross")
	}
	if rm.Crosses([]string{"h0", "h4"}) {
		t.Fatal("route avoiding the ball should not cross")
	}
	if rm.Crosses(nil) {
		t.Fatal("empty route crosses nothing")
	}
}

func TestRegionMapUnknownSeed(t *testing.T) {
	nw := regionChain(t)
	rm := BuildRegionMap(nw, []string{"ghost"}, 3)
	if rm.Size() != 1 || !rm.Contains("ghost") {
		t.Fatalf("unknown seed handling: size=%d", rm.Size())
	}
}

// TestRegionBuilderReuse pins the scratch-reusing builder to the
// one-shot path: repeated Build calls on one builder — different seeds,
// radii, and orders — yield maps identical to fresh BuildRegionMap
// calls, including discovery order (Names is sorted, so compare the
// unsorted internals via iteration order of repeated builds too).
func TestRegionBuilderReuse(t *testing.T) {
	nw := regionChain(t)
	rb := NewRegionBuilder(nw)
	cases := []struct {
		seeds  []string
		radius int
	}{
		{[]string{"h2"}, 1},
		{[]string{"h0"}, 10},
		{[]string{"h4"}, 0},
		{[]string{"h1", "h3"}, 1},
		{[]string{"h2"}, 1}, // repeat: scratch from the flood must not leak
	}
	for i, c := range cases {
		got := rb.Build(c.seeds, c.radius)
		want := BuildRegionMap(nw, c.seeds, c.radius)
		if !reflect.DeepEqual(got.Names(), want.Names()) {
			t.Fatalf("case %d: reused builder = %v, fresh = %v", i, got.Names(), want.Names())
		}
		if got.Size() != want.Size() || got.Radius() != want.Radius() {
			t.Fatalf("case %d: size/radius mismatch", i)
		}
	}
}
