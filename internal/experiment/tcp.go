package experiment

import (
	"time"

	"netco/internal/metrics"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// TCPResult is one scenario's Fig. 4 bar.
type TCPResult struct {
	Scenario Scenario
	// Mbps is the mean goodput over all runs; Runs the individual
	// measurements (alternating direction, as in §V-A).
	Mbps float64
	Runs []float64
	// Retransmits, FastRetransmits, Timeouts and DupAcks aggregate the
	// sender diagnostics across runs (they explain the Dup collapse).
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	DupAcks         uint64
}

// RunTCP measures TCP bulk throughput for one scenario (Fig. 4): TCPRuns
// runs of TCPDuration each, alternating h1→h2 and h2→h1 as the paper
// does, each run on a fresh testbed.
func RunTCP(p Params, s Scenario) TCPResult {
	return runTCP(p, s, func() *topo.Testbed { return p.Build(s) })
}

// runTCPOn is RunTCP against an arbitrary testbed builder; it returns
// just the mean goodput (used by parameter sweeps).
func runTCPOn(p Params, build func() *topo.Testbed) float64 {
	return runTCP(p, 0, build).Mbps
}

func runTCP(p Params, s Scenario, build func() *topo.Testbed) TCPResult {
	res := TCPResult{Scenario: s}
	var sum metrics.Summary
	for run := 0; run < p.TCPRuns; run++ {
		tb := build()
		src, dst := tb.H1, tb.H2
		if run%2 == 1 {
			src, dst = tb.H2, tb.H1
		}
		// Let proactive state settle, then skip the connection's slow-
		// start transient (iperf's long runs amortise it; our shorter
		// windows measure the steady state directly).
		tb.Runner.RunFor(50 * time.Millisecond)
		flow := traffic.StartTCPFlow(src, dst, 40000+uint16(run), 5001, traffic.TCPConfig{})
		tb.Runner.RunFor(500 * time.Millisecond)
		warmupBytes := flow.Stats().GoodputBytes
		tb.Runner.RunFor(p.TCPDuration)
		flow.Stop()
		st := flow.Stats()
		goodput := metrics.Throughput(st.GoodputBytes-warmupBytes, p.TCPDuration)
		sum.Add(goodput)
		res.Runs = append(res.Runs, metrics.Mbps(goodput))
		res.Retransmits += st.Retransmits
		res.FastRetransmits += st.FastRetransmits
		res.Timeouts += st.Timeouts
		res.DupAcks += st.DupAcksSeen
		tb.Close()
	}
	if sum.N() > 0 {
		res.Mbps = metrics.Mbps(sum.Mean())
	}
	return res
}

// RunFig4 measures all six scenarios.
func RunFig4(p Params) []TCPResult {
	out := make([]TCPResult, 0, len(AllScenarios))
	for _, s := range AllScenarios {
		out = append(out, RunTCP(p, s))
	}
	return out
}
