package experiment

import (
	"time"

	"netco/internal/topo"
)

// KSweepPoint is one row of the redundancy-vs-performance sweep: how the
// combiner scales with the parallelism k (the paper evaluates k ∈ {3, 5};
// the sweep fills in the curve and anchors it at k=1).
type KSweepPoint struct {
	// K is the parallelism; Tolerated the number of simultaneously
	// misbehaving routers the majority out-votes (⌈k/2⌉−1).
	K         int
	Tolerated int
	TCPMbps   float64
	UDPMbps   float64
	AvgRTT    time.Duration
}

// RunKSweep measures Central-mode combiners across k values (default
// 1, 2, 3, 4, 5, 7).
func RunKSweep(p Params, ks []int) []KSweepPoint {
	if ks == nil {
		ks = []int{1, 2, 3, 4, 5, 7}
	}
	out := make([]KSweepPoint, 0, len(ks))
	for _, k := range ks {
		pt := KSweepPoint{K: k, Tolerated: (k+1)/2 - 1}
		pt.TCPMbps = runTCPOn(p, func() *topo.Testbed { return buildCentralK(p, k) })
		pt.UDPMbps = runUDPMaxOn(p, func() *topo.Testbed { return buildCentralK(p, k) })
		pt.AvgRTT = runPingOn(p, func() *topo.Testbed { return buildCentralK(p, k) })
		out = append(out, pt)
	}
	return out
}

func buildCentralK(p Params, k int) *topo.Testbed {
	tp := p.TestbedParams(ScenCentral3, nil)
	tp.K = k
	return topo.BuildTestbed(tp)
}
