package experiment

import (
	"fmt"
	"strings"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/sim/par"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// ScaleResult is one run of the fat-tree scaling workload — the
// benchmark the parallel engine is sized against, and the differential
// determinism suite's fat-tree subject.
type ScaleResult struct {
	Arity      int    `json:"arity"`
	Hosts      int    `json:"hosts"`
	Partitions int    `json:"partitions"`
	Workers    int    `json:"workers"`
	Events     uint64 `json:"events"`
	// Digest canonically summarises every sink's counters plus the
	// total event count; serial and parallel runs of the same inputs
	// must produce equal digests.
	Digest string `json:"digest"`
}

// RunScale drives cross-pod UDP over a full k-ary fat tree: k/2 hosts
// per edge switch, each streaming to the same slot in the opposite pod,
// so every flow crosses edge → agg → core → agg → edge. Partitioning
// (from p.Partitions) splits the fabric into one domain per pod plus one
// per core group.
func RunScale(p Params, arity int, duration time.Duration) ScaleResult {
	half := arity / 2
	units := arity + half // one per pod, one per core group
	domains := p.Partitions
	if domains > units {
		domains = units
	}
	link := p.TrunkLink()

	var net *netem.Network
	var runner sim.Runner
	var eng *par.Engine
	if domains > 1 && link.Delay > 0 {
		eng = par.New(domains, p.Workers)
		net = netem.NewPartitioned(eng.Schedulers(), topo.FatTreeAssign(arity, domains),
			func(src, dst int) netem.CrossPost { return eng.Boundary(src, dst) })
		runner = eng
	} else {
		domains = 1
		sched := sim.NewScheduler()
		net = netem.New(sched)
		runner = sched
	}

	ft := topo.BuildFatTree(net, topo.FatTreeParams{
		Arity:           arity,
		Link:            link,
		SwitchProcDelay: p.SwitchProc,
		SwitchProcQueue: p.SwitchQueue,
	})

	// k/2 hosts per edge switch, named pod<p>-h<local> so FatTreeAssign
	// places each in its pod's domain.
	perPod := half * half
	hosts := make([]*traffic.Host, arity*perPod)
	for pod := 0; pod < arity; pod++ {
		for e := 0; e < half; e++ {
			for s := 0; s < half; s++ {
				g := pod*perPod + e*half + s
				name := fmt.Sprintf("pod%d-h%d", pod, e*half+s)
				h := traffic.NewHost(net.SchedulerFor(name), name,
					packet.HostMAC(uint32(1+g)), packet.HostIP(uint32(1+g)), hostCfgOf(p))
				net.Add(h)
				net.Connect(h, traffic.HostPort, ft.Pods[pod].Edge[e], ft.EdgeHostPortOf(s), p.HostLink())
				hosts[g] = h
			}
		}
	}

	// Proactive two-level routing, dst-MAC matched like the combiner's
	// routers: the dst's edge delivers to the host port; any other edge
	// climbs to agg s%k/2; aggs in the dst pod descend, aggs elsewhere
	// climb to core member pod%k/2; cores descend to the dst pod.
	route := func(mac packet.MAC, out int) *openflow.FlowEntry {
		return &openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(mac),
			Actions:  []openflow.Action{openflow.Output(uint16(out))},
		}
	}
	for pod := 0; pod < arity; pod++ {
		for e := 0; e < half; e++ {
			for s := 0; s < half; s++ {
				mac := hosts[pod*perPod+e*half+s].MAC()
				jd, md := s%half, pod%half
				for p2 := 0; p2 < arity; p2++ {
					for e2 := 0; e2 < half; e2++ {
						if p2 == pod && e2 == e {
							ft.Pods[p2].Edge[e2].Table().Add(route(mac, ft.EdgeHostPortOf(s)))
						} else {
							ft.Pods[p2].Edge[e2].Table().Add(route(mac, ft.EdgeUpPortOf(jd)))
						}
					}
					for j := 0; j < half; j++ {
						if p2 == pod {
							ft.Pods[p2].Agg[j].Table().Add(route(mac, ft.AggDownPortOf(e)))
						} else {
							ft.Pods[p2].Agg[j].Table().Add(route(mac, ft.AggUpPortOf(md)))
						}
					}
				}
				for _, c := range ft.Cores {
					c.Table().Add(route(mac, ft.CorePodPortOf(pod)))
				}
			}
		}
	}

	// Every host streams UDP to its slot-twin in the opposite pod.
	sinks := make([]*traffic.UDPSink, len(hosts))
	srcs := make([]*traffic.UDPSource, len(hosts))
	for g, h := range hosts {
		sinks[g] = traffic.NewUDPSink(h, 7000)
	}
	for g, h := range hosts {
		pod := g / perPod
		partner := ((pod+arity/2)%arity)*perPod + g%perPod
		srcs[g] = traffic.NewUDPSource(h, uint16(6000+g), hosts[partner].Endpoint(7000),
			traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 512})
	}

	if eng != nil {
		eng.SetLookahead(net.MinCrossDelay())
	}
	for _, s := range srcs {
		s.Start()
	}
	runner.RunFor(duration)
	for _, s := range srcs {
		s.Stop()
	}
	runner.RunFor(20 * time.Millisecond) // drain in-flight datagrams

	var b strings.Builder
	for g := range hosts {
		st := sinks[g].Stats()
		fmt.Fprintf(&b, "%d:%d/%d u=%d b=%d d=%d r=%d;", g, srcs[g].Sent, srcs[g].SentBytes,
			st.Unique, st.UniqueBytes, st.Duplicates, st.Reordered)
	}
	fmt.Fprintf(&b, "exec=%d now=%d", runner.Executed(), runner.Now())
	return ScaleResult{
		Arity:      arity,
		Hosts:      len(hosts),
		Partitions: domains,
		Workers:    p.Workers,
		Events:     runner.Executed(),
		Digest:     b.String(),
	}
}
