package experiment

import (
	"context"
	"fmt"
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/pool"
	"netco/internal/sim"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// fluidFabric is the fat-tree fabric shared by the hybrid and churn
// engines: the switches, the hosts hanging off the edge layer, and the
// deterministic two-level routing that turns a (src, dst) host pair
// into a fluid path or a node-name route. Both engines build it the
// same way so their link creation order — and therefore same-instant
// event tie-breaking — is identical for identical sizing.
type fluidFabric struct {
	arity, half, perPod int

	ft    *topo.FatTree
	hosts []*traffic.Host

	// Build-time breakdown (wall clock): switches + trunk links, then
	// host builds + host links. Provenance only.
	topoMS, wireMS float64
}

// buildFluidFabric constructs the fat tree and its hosts. Hosts are
// built per pod (concurrently when Workers allows — NewHost touches
// only its own state), registered serially (the node map), then wired
// to their edge switches through a reserved link batch whose slot order
// equals the serial Connect order, keeping link ids — and same-instant
// tie-break bands — identical at any worker count.
func buildFluidFabric(sched *sim.Scheduler, nw *netem.Network, p Params, arity int) *fluidFabric {
	half := arity / 2
	perPod := half * half
	topoStart := time.Now()
	ft := topo.BuildFatTree(nw, topo.FatTreeParams{
		Arity:           arity,
		Link:            p.TrunkLink(),
		SwitchProcDelay: p.SwitchProc,
		SwitchProcQueue: p.SwitchQueue,
		Workers:         p.Workers,
	})
	topoMS := float64(time.Since(topoStart)) / float64(time.Millisecond)

	wireStart := time.Now()
	hosts := make([]*traffic.Host, arity*perPod)
	hcfg := hostCfgOf(p)
	pool.Map(context.Background(), buildWorkers(p.Workers), arity, func(pod int) (struct{}, error) {
		for e := 0; e < half; e++ {
			for s := 0; s < half; s++ {
				g := pod*perPod + e*half + s
				name := fmt.Sprintf("pod%d-h%d", pod, e*half+s)
				hosts[g] = traffic.NewHost(sched, name, packet.HostMAC(uint32(1+g)), packet.HostIP(uint32(1+g)), hcfg)
			}
		}
		return struct{}{}, nil
	})
	for _, h := range hosts {
		nw.Add(h)
	}
	hostBatch := nw.ReserveLinks(len(hosts))
	pool.Map(context.Background(), buildWorkers(p.Workers), arity, func(pod int) (struct{}, error) {
		for e := 0; e < half; e++ {
			for s := 0; s < half; s++ {
				g := pod*perPod + e*half + s
				hostBatch.Connect(g, hosts[g], traffic.HostPort, ft.Pods[pod].Edge[e], ft.EdgeHostPortOf(s), p.HostLink())
			}
		}
		return struct{}{}, nil
	})
	wireMS := float64(time.Since(wireStart)) / float64(time.Millisecond)

	return &fluidFabric{
		arity: arity, half: half, perPod: perPod,
		ft: ft, hosts: hosts,
		topoMS: topoMS, wireMS: wireMS,
	}
}

// switches counts the fabric switches (cores + per-pod agg and edge).
func (fb *fluidFabric) switches() int {
	return fb.half*fb.half + fb.arity*fb.arity
}

// hopOf resolves a transmitting (node, port) to a fluid Hop.
func (fb *fluidFabric) hopOf(n netem.Node, port int) traffic.Hop {
	l, end := n.Ports().Ref(port)
	return traffic.Hop{Link: l, End: end}
}

// pathFor appends the directed fluid path srcG→dstG to hops (a reused
// scratch buffer — NewFlow copies what it needs) along the
// deterministic fat-tree routing (agg by destination slot, core by
// destination pod — the same choice installFatTreeRoutes materialises
// as flow entries).
func (fb *fluidFabric) pathFor(srcG, dstG int, hops []traffic.Hop) []traffic.Hop {
	half, perPod, ft, hosts := fb.half, fb.perPod, fb.ft, fb.hosts
	sp, sl := srcG/perPod, srcG%perPod
	dp, dl := dstG/perPod, dstG%perPod
	se := sl / half
	de, ds := dl/half, dl%half
	jd, md := ds%half, dp%half

	hops = append(hops, fb.hopOf(hosts[srcG], traffic.HostPort))
	if sp == dp && se == de {
		return append(hops, fb.hopOf(ft.Pods[dp].Edge[de], ft.EdgeHostPortOf(ds)))
	}
	hops = append(hops, fb.hopOf(ft.Pods[sp].Edge[se], ft.EdgeUpPortOf(jd)))
	if sp != dp {
		cw := ft.Cores[jd*half+md]
		hops = append(hops,
			fb.hopOf(ft.Pods[sp].Agg[jd], ft.AggUpPortOf(md)),
			fb.hopOf(cw, ft.CorePodPortOf(dp)))
	}
	return append(hops,
		fb.hopOf(ft.Pods[dp].Agg[jd], ft.AggDownPortOf(de)),
		fb.hopOf(ft.Pods[dp].Edge[de], ft.EdgeHostPortOf(ds)))
}

// routeFor builds the node-name route srcG→dstG. Only monitored flows
// need one: the combiner region shares no links with the fabric, so a
// fabric-only route can never cross it, and at million-flow scale the
// name slices would dominate the build.
func (fb *fluidFabric) routeFor(srcG, dstG int) []string {
	half, perPod, ft, hosts := fb.half, fb.perPod, fb.ft, fb.hosts
	sp, sl := srcG/perPod, srcG%perPod
	dp, dl := dstG/perPod, dstG%perPod
	se := sl / half
	de, ds := dl/half, dl%half
	jd, md := ds%half, dp%half

	route := []string{hosts[srcG].Name(), ft.Pods[sp].Edge[se].Name()}
	if sp == dp && se == de {
		return append(route, hosts[dstG].Name())
	}
	route = append(route, ft.Pods[sp].Agg[jd].Name())
	if sp != dp {
		cw := ft.Cores[jd*half+md]
		route = append(route, cw.Name(), ft.Pods[dp].Agg[jd].Name())
	}
	return append(route, ft.Pods[dp].Edge[de].Name(), hosts[dstG].Name())
}
