package experiment

import (
	"time"

	"netco/internal/metrics"
	"netco/internal/sim"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// UDPPoint is one offered-load measurement (a Fig. 6 sample).
type UDPPoint struct {
	Scenario Scenario
	// OfferedMbps is the source rate; AchievedMbps the unique goodput
	// at the sink; Loss the fraction of datagrams never delivered.
	OfferedMbps  float64
	AchievedMbps float64
	Loss         float64
	// Jitter is the RFC 3550 estimate at this load.
	Jitter time.Duration
}

// UDPMaxResult is one scenario's Fig. 5 bar: the maximum throughput with
// loss below the iperf criterion, found by adjusting -b "until a maximum
// is reached" (§V-A).
type UDPMaxResult struct {
	Scenario Scenario
	Mbps     float64
	Loss     float64
}

// measureUDP runs one offered load on a fresh testbed and reports the
// outcome.
func measureUDP(p Params, s Scenario, rate float64, payload int) UDPPoint {
	return measureUDPOn(p, s, func() *topo.Testbed { return p.Build(s) }, rate, payload)
}

func measureUDPOn(p Params, s Scenario, build func() *topo.Testbed, rate float64, payload int) UDPPoint {
	tb := build()
	defer tb.Close()
	rng := sim.NewRNG(p.Seed)

	sink := traffic.NewUDPSink(tb.H2, 5001)
	src := traffic.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate:        rate,
		PayloadSize: payload,
		Jitter:      100 * time.Microsecond,
		Rng:         rng,
	})
	tb.Runner.RunFor(50 * time.Millisecond) // settle
	src.Start()
	tb.Runner.RunFor(p.UDPDuration)
	src.Stop()
	tb.Runner.RunFor(2 * p.CompareHold) // drain in-flight copies

	st := sink.Stats()
	return UDPPoint{
		Scenario:     s,
		OfferedMbps:  metrics.Mbps(rate),
		AchievedMbps: metrics.Mbps(st.Goodput()),
		Loss:         st.LossRate(src.Sent),
		Jitter:       st.Jitter,
	}
}

// RunUDPMax finds the scenario's maximum UDP throughput with loss below
// UDPLossGoal via bisection over the offered rate (Fig. 5).
func RunUDPMax(p Params, s Scenario) UDPMaxResult {
	return runUDPMax(p, s, func() *topo.Testbed { return p.Build(s) })
}

// runUDPMaxOn is RunUDPMax against an arbitrary testbed builder.
func runUDPMaxOn(p Params, build func() *topo.Testbed) float64 {
	return runUDPMax(p, 0, build).Mbps
}

func runUDPMax(p Params, s Scenario, build func() *topo.Testbed) UDPMaxResult {
	const payload = 1470 // iperf default datagram payload
	lo, hi := 1e6, p.TrunkRate
	best := UDPMaxResult{Scenario: s}
	for i := 0; i < 9; i++ {
		rate := (lo + hi) / 2
		pt := measureUDPOn(p, s, build, rate, payload)
		if pt.Loss <= p.UDPLossGoal {
			if pt.AchievedMbps > best.Mbps {
				best.Mbps = pt.AchievedMbps
				best.Loss = pt.Loss
			}
			lo = rate
		} else {
			hi = rate
		}
	}
	return best
}

// RunFig5 measures all six scenarios.
func RunFig5(p Params) []UDPMaxResult {
	out := make([]UDPMaxResult, 0, len(AllScenarios))
	for _, s := range AllScenarios {
		out = append(out, RunUDPMax(p, s))
	}
	return out
}

// RunFig6 sweeps offered load for Central3 and reports the
// throughput↔loss correlation (Fig. 6).
func RunFig6(p Params, rates []float64) []UDPPoint {
	if rates == nil {
		rates = []float64{50e6, 100e6, 150e6, 200e6, 225e6, 250e6, 275e6, 300e6, 350e6, 400e6}
	}
	out := make([]UDPPoint, 0, len(rates))
	for _, r := range rates {
		out = append(out, measureUDP(p, ScenCentral3, r, 1470))
	}
	return out
}
