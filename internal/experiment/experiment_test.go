package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestScenarioNames(t *testing.T) {
	want := map[Scenario]string{
		ScenLinespeed: "Linespeed",
		ScenCentral3:  "Central3",
		ScenCentral5:  "Central5",
		ScenPOX3:      "POX3",
		ScenDup3:      "Dup3",
		ScenDup5:      "Dup5",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("String(%d) = %q, want %q", s, s.String(), name)
		}
	}
	if Scenario(0).String() != "Unknown" {
		t.Error("zero scenario should be Unknown")
	}
}

func TestScenarioK(t *testing.T) {
	if ScenLinespeed.K() != 1 || ScenCentral3.K() != 3 || ScenCentral5.K() != 5 ||
		ScenDup3.K() != 3 || ScenDup5.K() != 5 || ScenPOX3.K() != 3 {
		t.Fatal("scenario K mapping wrong")
	}
}

func TestCaseStudyMatchesPaper(t *testing.T) {
	r := RunCaseStudy(DefaultParams())

	// Baseline: "we witness 10 perfect cycles" and no stray packets.
	b := r.Baseline
	if b.RequestsSent != 10 || b.RequestsAtFirewall != 10 || b.ResponsesAtVM != 10 {
		t.Fatalf("baseline = %+v, want 10/10/10", b)
	}
	if b.StrayAtCore != 0 {
		t.Fatalf("baseline saw %d stray packets at the core", b.StrayAtCore)
	}
	if b.PathRuleRequests != 10 {
		t.Fatalf("baseline flow counter = %d, want 10", b.PathRuleRequests)
	}

	// Attack: "After 10 requests sent, we witness 20 requests arriving
	// at fw1 and 0 responses arriving at vm1."
	a := r.Attack
	if a.RequestsAtFirewall != 20 {
		t.Fatalf("attack: %d requests at fw1, want 20", a.RequestsAtFirewall)
	}
	if a.ResponsesAtVM != 0 {
		t.Fatalf("attack: %d responses at vm1, want 0", a.ResponsesAtVM)
	}
	if a.StrayAtCore == 0 {
		t.Fatal("attack: mirrored packets never crossed the core")
	}

	// Protected: "all 10 request response cycles completed successfully"
	// and the mirrored packets died inside the compare.
	pr := r.Protected
	if pr.RequestsAtFirewall != 10 || pr.ResponsesAtVM != 10 {
		t.Fatalf("protected = %+v, want 10 requests / 10 responses", pr)
	}
	if pr.StrayAtCore != 0 {
		t.Fatalf("protected saw %d stray packets", pr.StrayAtCore)
	}
	if pr.CompareSuppressed != 10 {
		t.Fatalf("compare suppressed %d, want the 10 mirrored requests", pr.CompareSuppressed)
	}
	if pr.CompareReleased != 20 {
		t.Fatalf("compare released %d, want 20 (10 requests + 10 responses)", pr.CompareReleased)
	}
	if pr.DuplicateResponses != 0 {
		t.Fatalf("protected leaked %d duplicate responses", pr.DuplicateResponses)
	}
}

func TestRunVirtual(t *testing.T) {
	p := DefaultParams()
	p.UDPDuration = 300 * time.Millisecond
	r := RunVirtual(p)

	if r.PreventDelivered != r.PreventSent {
		t.Fatalf("prevention delivered %d of %d", r.PreventDelivered, r.PreventSent)
	}
	if r.PreventSuppressed == 0 {
		t.Fatal("prevention suppressed nothing despite a tampering path")
	}
	if r.DetectDelivered != r.DetectSent {
		t.Fatalf("detection delivered %d of %d", r.DetectDelivered, r.DetectSent)
	}
	if r.DetectAlarms == 0 || r.FirstDetectionAt < 0 {
		t.Fatal("detection raised no alarms")
	}
	if r.CombinedMbps <= 0 || r.BaselineMbps <= 0 {
		t.Fatal("overhead runs produced no throughput")
	}
	if r.CombinedMbps > r.BaselineMbps {
		t.Fatalf("virtual combiner (%.1f) outran the bare path (%.1f)", r.CombinedMbps, r.BaselineMbps)
	}
}

func TestRunTCPQuick(t *testing.T) {
	p := DefaultParams().Quick()
	r := RunTCP(p, ScenLinespeed)
	if r.Mbps < 300 {
		t.Fatalf("quick Linespeed TCP = %.1f Mbit/s, want near line rate", r.Mbps)
	}
	if len(r.Runs) != p.TCPRuns {
		t.Fatalf("runs = %d, want %d", len(r.Runs), p.TCPRuns)
	}
}

func TestRunUDPMaxQuick(t *testing.T) {
	p := DefaultParams().Quick()
	r := RunUDPMax(p, ScenCentral3)
	if r.Mbps < 100 || r.Mbps > 400 {
		t.Fatalf("quick Central3 UDP max = %.1f Mbit/s, want in (100, 400)", r.Mbps)
	}
	if r.Loss > p.UDPLossGoal {
		t.Fatalf("reported loss %.4f exceeds the goal", r.Loss)
	}
}

func TestRunPingQuick(t *testing.T) {
	p := DefaultParams().Quick()
	lin := RunPing(p, ScenLinespeed)
	cen := RunPing(p, ScenCentral3)
	if lin.Received != lin.Sent {
		t.Fatalf("linespeed lost pings: %d/%d", lin.Received, lin.Sent)
	}
	if cen.AvgRTT <= lin.AvgRTT {
		t.Fatalf("Central3 RTT %v not above Linespeed %v", cen.AvgRTT, lin.AvgRTT)
	}
}

func TestFig6LossGrowsWithLoad(t *testing.T) {
	p := DefaultParams()
	p.UDPDuration = 300 * time.Millisecond
	pts := RunFig6(p, []float64{100e6, 300e6, 450e6})
	if pts[0].Loss > 0.01 {
		t.Fatalf("loss %.3f at 100 Mbit/s, want ≈0", pts[0].Loss)
	}
	if pts[2].Loss <= pts[0].Loss {
		t.Fatalf("loss did not grow with load: %v", pts)
	}
	// Beyond the knee the achieved rate saturates below offered.
	if pts[2].AchievedMbps > pts[2].OfferedMbps*0.9 {
		t.Fatalf("achieved %.1f at offered %.1f — no saturation visible",
			pts[2].AchievedMbps, pts[2].OfferedMbps)
	}
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{{Scenario: ScenLinespeed, TCPMbps: 474, UDPMbps: 478, AvgRTT: 180 * time.Microsecond}}
	s := FormatTable1(rows)
	if !strings.Contains(s, "Linespeed") || !strings.Contains(s, "474") {
		t.Fatalf("FormatTable1 output %q", s)
	}
}

// TestEvaluationShape asserts the qualitative claims of §V-B on a
// moderately sized run: security costs performance; k=5 < k=3; combining
// beats duplication for TCP; UDP tracks Linespeed more closely than TCP;
// POX3 is drastically worst; RTT ordering.
func TestEvaluationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape run takes ~1 min")
	}
	p := DefaultParams()
	p.TCPDuration = time.Second
	p.TCPRuns = 1
	p.UDPDuration = 500 * time.Millisecond
	p.PingSeqs = 1

	tcp := make(map[Scenario]float64)
	for _, s := range AllScenarios {
		tcp[s] = RunTCP(p, s).Mbps
	}
	if !(tcp[ScenLinespeed] > tcp[ScenCentral3] &&
		tcp[ScenCentral3] > tcp[ScenDup3] &&
		tcp[ScenCentral3] > tcp[ScenCentral5] &&
		tcp[ScenDup3] > tcp[ScenDup5]) {
		t.Errorf("TCP ordering violated: %v", tcp)
	}
	if tcp[ScenPOX3] > tcp[ScenCentral5]/2 {
		t.Errorf("POX3 (%.1f) not drastically below the data-plane compare (%v)", tcp[ScenPOX3], tcp)
	}
	// Security costs performance: every combiner well below Linespeed.
	for _, s := range []Scenario{ScenCentral3, ScenCentral5, ScenDup3, ScenDup5} {
		if tcp[s] > 0.5*tcp[ScenLinespeed] {
			t.Errorf("%v TCP %.1f not clearly below Linespeed %.1f", s, tcp[s], tcp[ScenLinespeed])
		}
	}

	udp := make(map[Scenario]float64)
	for _, s := range TableScenarios {
		udp[s] = RunUDPMax(p, s).Mbps
	}
	// "The test scenarios better approximate the benchmark scenario
	// Linespeed when packets are exchanged using connectionless UDP."
	for _, s := range []Scenario{ScenCentral3, ScenDup3} {
		udpRatio := udp[s] / udp[ScenLinespeed]
		tcpRatio := tcp[s] / tcp[ScenLinespeed]
		if udpRatio <= tcpRatio {
			t.Errorf("%v: UDP ratio %.2f not above TCP ratio %.2f", s, udpRatio, tcpRatio)
		}
	}
	if !(udp[ScenCentral3] > udp[ScenCentral5] && udp[ScenDup3] > udp[ScenDup5]) {
		t.Errorf("UDP k ordering violated: %v", udp)
	}

	rtt := make(map[Scenario]time.Duration)
	for _, s := range TableScenarios {
		rtt[s] = RunPing(p, s).AvgRTT
	}
	if !(rtt[ScenLinespeed] <= rtt[ScenDup3] &&
		rtt[ScenDup3] <= rtt[ScenDup5]+time.Microsecond &&
		rtt[ScenDup5] < rtt[ScenCentral3] &&
		rtt[ScenCentral3] < rtt[ScenCentral5]) {
		t.Errorf("RTT ordering violated: %v", rtt)
	}
}

// TestFig8Shape asserts the jitter claim: "bigger packets lead to lower
// jitter", most visibly for the combining scenarios.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("jitter sweep takes ~30s")
	}
	p := DefaultParams()
	p.UDPDuration = 500 * time.Millisecond
	pts := RunJitter(p, ScenCentral3, []int{128, 1470})
	if pts[0].Jitter <= pts[1].Jitter {
		t.Errorf("jitter at 128 B (%v) not above 1470 B (%v)", pts[0].Jitter, pts[1].Jitter)
	}
}

func TestKSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("k sweep takes ~20s")
	}
	p := DefaultParams()
	p.TCPDuration = 500 * time.Millisecond
	p.TCPRuns = 1
	p.UDPDuration = 300 * time.Millisecond
	p.PingSeqs = 1
	p.PingCount = 10
	pts := RunKSweep(p, []int{1, 3, 5})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Tolerated != 0 || pts[1].Tolerated != 1 || pts[2].Tolerated != 2 {
		t.Fatalf("tolerance wrong: %+v", pts)
	}
	// Monotone cost with k.
	if !(pts[0].TCPMbps > pts[1].TCPMbps && pts[1].TCPMbps > pts[2].TCPMbps) {
		t.Errorf("TCP not decreasing in k: %+v", pts)
	}
	if !(pts[0].UDPMbps > pts[1].UDPMbps && pts[1].UDPMbps > pts[2].UDPMbps) {
		t.Errorf("UDP not decreasing in k: %+v", pts)
	}
	if pts[0].AvgRTT > pts[2].AvgRTT {
		t.Errorf("RTT decreasing in k: %+v", pts)
	}
}

func TestDoSDefences(t *testing.T) {
	p := DefaultParams()
	p.UDPDuration = 500 * time.Millisecond
	r := RunDoS(p)
	if r.BaselineMbps < 90 {
		t.Fatalf("baseline %.1f Mbit/s, want ≈100", r.BaselineMbps)
	}
	// Port blocking confines a replaying router with no benign impact.
	if r.ReplayBlocks == 0 {
		t.Fatal("replay attack never triggered a block")
	}
	if r.ReplayMbps < 0.95*r.BaselineMbps {
		t.Fatalf("replay goodput %.1f vs baseline %.1f — blocking ineffective", r.ReplayMbps, r.BaselineMbps)
	}
	// Buffer isolation keeps a forged flood from starving benign copies.
	if r.QuotaDrops == 0 {
		t.Fatal("isolation quota never engaged")
	}
	if r.FloodIsolatedMbps < 0.95*r.BaselineMbps {
		t.Fatalf("isolated flood goodput %.1f vs baseline %.1f", r.FloodIsolatedMbps, r.BaselineMbps)
	}
	if r.FloodSharedMbps > 0.92*r.FloodIsolatedMbps {
		t.Fatalf("shared-buffer flood goodput %.1f not clearly below isolated %.1f",
			r.FloodSharedMbps, r.FloodIsolatedMbps)
	}
}
