package experiment

import (
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/trace"
	"netco/internal/traffic"
)

// CaseStudyOutcome is the observable result of one §VI scenario: "After
// 10 requests sent, we witness 20 requests arriving at fw1 and 0
// responses arriving at vm1" is the paper's attack row.
type CaseStudyOutcome struct {
	// RequestsSent is the number of echo requests vm1 issued.
	RequestsSent int
	// RequestsAtFirewall counts echo requests fw1 received (mirroring
	// doubles it).
	RequestsAtFirewall int
	// ResponsesAtVM counts first responses received by vm1;
	// DuplicateResponses any further copies.
	ResponsesAtVM      int
	DuplicateResponses int
	// StrayAtCore counts data-plane packets observed on the core
	// switches — the tcpdump screening of the paper ("no copies are
	// received on any other node").
	StrayAtCore uint64
	// PathRuleRequests is the packet counter of the first-hop routing
	// rule (the flow-table screening method).
	PathRuleRequests uint64
	// CompareSuppressed counts mirrored/injected packets the compare
	// quarantined (NetCo scenario only).
	CompareSuppressed uint64
	// CompareReleased counts packets the compare forwarded (NetCo
	// scenario only).
	CompareReleased uint64
}

// CaseStudyResult bundles the three §VI scenarios.
type CaseStudyResult struct {
	Baseline  CaseStudyOutcome
	Attack    CaseStudyOutcome
	Protected CaseStudyOutcome
}

// RunCaseStudy reproduces §VI: a fat-tree datacenter, ICMP echo over the
// tunnel-2 path vm1→edge→agg→edge→fw1, with (a) all switches benign, (b)
// a malicious aggregation switch that mirrors firewall-bound packets
// toward the core and drops vm1-bound responses, and (c) the same
// malicious switch placed inside a k=3 NetCo combiner.
func RunCaseStudy(p Params) CaseStudyResult {
	return CaseStudyResult{
		Baseline:  runCaseStudyScenario(p, caseBaseline),
		Attack:    runCaseStudyScenario(p, caseAttack),
		Protected: runCaseStudyScenario(p, caseProtected),
	}
}

type caseKind int

const (
	caseBaseline caseKind = iota + 1
	caseAttack
	caseProtected
)

func runCaseStudyScenario(p Params, kind caseKind) CaseStudyOutcome {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := p.TrunkLink()

	ft := topo.BuildFatTree(net, topo.FatTreeParams{
		Arity:           4,
		Link:            link,
		SwitchProcDelay: p.SwitchProc,
		SwitchProcQueue: p.SwitchQueue,
	})
	pod := ft.Pods[0]
	edgeFW, edgeVM := pod.Edge[0], pod.Edge[1] // rack 1 (security), rack 2 (VMs)
	agg := pod.Agg[0]
	core0 := ft.Cores[0]

	hostCfg := traffic.HostConfig{
		IngestPerPacket: p.HostIngest,
		IngestQueue:     p.HostQueue,
		EchoResponder:   true,
	}
	fw1 := traffic.NewHost(sched, "fw1", packet.HostMAC(0xf1), packet.HostIP(0xf1), hostCfg)
	vm1 := traffic.NewHost(sched, "vm1", packet.HostMAC(0xa1), packet.HostIP(0xa1), hostCfg)
	vm2 := traffic.NewHost(sched, "vm2", packet.HostMAC(0xa2), packet.HostIP(0xa2), hostCfg)
	net.Add(fw1)
	net.Add(vm1)
	net.Add(vm2)
	net.Connect(fw1, traffic.HostPort, edgeFW, ft.EdgeHostPortOf(0), p.HostLink())
	net.Connect(vm1, traffic.HostPort, edgeVM, ft.EdgeHostPortOf(0), p.HostLink())
	net.Connect(vm2, traffic.HostPort, edgeVM, ft.EdgeHostPortOf(1), p.HostLink())

	route := func(sw *switching.Switch, dst packet.MAC, port int) *openflow.FlowEntry {
		e := &openflow.FlowEntry{
			Priority: 100,
			Match:    openflow.MatchAll().WithDlDst(dst),
			Actions:  []openflow.Action{openflow.Output(uint16(port))},
		}
		sw.Table().Add(e)
		return e
	}

	// Local rack routes.
	route(edgeFW, fw1.MAC(), ft.EdgeHostPortOf(0))
	route(edgeVM, vm1.MAC(), ft.EdgeHostPortOf(0))
	route(edgeVM, vm2.MAC(), ft.EdgeHostPortOf(1))

	var comb *core.Combiner
	var firstHopRule *openflow.FlowEntry
	if kind == caseProtected {
		// The aggregation hop is replaced by a NetCo combiner whose
		// candidate routers are three aggregation switches, one
		// compromised. The combiner edges hang off a spare up-port (4)
		// of each rack switch.
		spec := core.CombinerSpec{
			NamePrefix: "netco-",
			K:          3,
			Mode:       core.CombinerCentral,
			Compare: core.CompareNodeConfig{
				Engine: core.Config{
					HoldTimeout:   p.CompareHold,
					CacheCapacity: p.CompareCache,
				},
				PerCopyCost:     p.ComparePerCopy,
				QueueLimit:      p.CompareQueue,
				CleanupPerEntry: p.CompareCleanupPerEntry,
				BlockDuration:   p.CompareBlock,
			},
			EdgeProcDelay: p.EdgeProc,
			EdgeProcQueue: p.EdgeQueue,
			RouterLink:    link,
			CompareLink:   netem.LinkConfig{Bandwidth: p.HostLinkRate, Delay: p.PropDelay, QueueLimit: 4 * p.QueueLimit},
		}
		comb = core.Build(net, spec, func(i int) *switching.Switch {
			sw := switching.New(sched, switching.Config{
				Name:       "cand-agg" + string(rune('0'+i)),
				DatapathID: uint64(200 + i),
				ProcDelay:  p.SwitchProc,
				ProcQueue:  p.SwitchQueue,
			})
			if i == 1 {
				sw.SetBehavior(adversary.Chain{
					&adversary.Mirror{
						// Mirror firewall-bound packets out of the wrong
						// port — the exfiltration attempt.
						Match:  openflow.MatchAll().WithDlDst(fw1.MAC()).WithInPort(core.RouterPortLeft),
						ToPort: core.RouterPortLeft,
					},
					&adversary.Drop{Match: openflow.MatchAll().WithDlDst(vm1.MAC())},
				})
			}
			return sw
		})
		const sparePort = 4
		net.Connect(edgeVM, sparePort, comb.Left, core.EdgeHostPort, link)
		net.Connect(edgeFW, sparePort, comb.Right, core.EdgeHostPort, link)
		comb.Left.AddRoute(vm1.MAC(), core.EdgeHostPort)
		comb.Left.AddRoute(vm2.MAC(), core.EdgeHostPort)
		comb.Right.AddRoute(fw1.MAC(), core.EdgeHostPort)
		comb.InstallRoute(fw1.MAC(), core.SideRight)
		comb.InstallRoute(vm1.MAC(), core.SideLeft)
		comb.InstallRoute(vm2.MAC(), core.SideLeft)
		firstHopRule = route(edgeVM, fw1.MAC(), sparePort)
		route(edgeFW, vm1.MAC(), sparePort)
		route(edgeFW, vm2.MAC(), sparePort)
	} else {
		// Tunnel 2 rides the aggregation switch.
		firstHopRule = route(edgeVM, fw1.MAC(), ft.EdgeUpPortOf(0))
		route(edgeFW, vm1.MAC(), ft.EdgeUpPortOf(0))
		route(edgeFW, vm2.MAC(), ft.EdgeUpPortOf(0))
		route(agg, fw1.MAC(), ft.AggDownPortOf(0))
		route(agg, vm1.MAC(), ft.AggDownPortOf(1))
		route(agg, vm2.MAC(), ft.AggDownPortOf(1))
		// The core's route back toward the firewall (used by the
		// mirrored copies in the attack scenario).
		route(core0, fw1.MAC(), ft.CorePodPortOf(0))

		if kind == caseAttack {
			agg.SetBehavior(adversary.Chain{
				&adversary.Mirror{
					Match:  openflow.MatchAll().WithDlDst(fw1.MAC()).WithInPort(uint16(ft.AggDownPortOf(1))),
					ToPort: uint16(ft.AggUpPortOf(0)),
				},
				&adversary.Drop{Match: openflow.MatchAll().WithDlDst(vm1.MAC())},
			})
		}
	}

	// The paper's tcpdump screening: capture every transmission on every
	// core switch — any record there is a stray.
	coreTap := trace.New(256)
	for _, c := range ft.Cores {
		coreTap.Attach(c)
	}

	const cycles = 10
	pinger := traffic.NewPinger(vm1, fw1.Endpoint(0), traffic.PingerConfig{
		Count:    cycles,
		Interval: 20 * time.Millisecond,
		ID:       7,
	})
	var res traffic.PingResult
	pinger.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(time.Duration(cycles)*20*time.Millisecond + 3*time.Second)

	out := CaseStudyOutcome{
		RequestsSent:       res.Sent,
		RequestsAtFirewall: int(fw1.Stats().EchoesAnswered),
		ResponsesAtVM:      res.Received,
		DuplicateResponses: res.Duplicates,
		StrayAtCore:        coreTap.Total(),
		PathRuleRequests:   firstHopRule.Packets,
	}
	if comb != nil {
		es := comb.Compare.EngineStats()
		out.CompareSuppressed = es.Suppressed
		out.CompareReleased = es.Released
		comb.Close()
	}
	return out
}
