package experiment

import (
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"time"

	"netco/internal/netem"
	"netco/internal/sim"
	"netco/internal/traffic"
)

// The churn engine measures the fluid tier's flow *lifecycle*
// throughput: how many arrivals and departures per simulated second the
// allocator sustains on a full fat-tree fabric while staying exact. It
// leans on three mechanisms built for it:
//
//   - arena-recycled flows: FluidNet free-lists released flow objects
//     (and this engine free-lists its churnFlow records), so steady-
//     state churn allocates nothing per flow;
//   - parallel per-component settle: arrivals land pod-local by
//     default, so the fabric decomposes into ~Arity independent
//     allocator components that SettleWorkers solves concurrently,
//     bit-identical to serial;
//   - a hierarchical timer wheel: each flow's departure is one wheel
//     entry; a churn epoch costs O(expiring flows), not O(log n) heap
//     churn per arm/fire.
//
// The workload is an M/G/∞-style open system: Poisson-batched arrivals
// (ChurnArrivals per sim-second, batched into one scheduler event per
// ChurnWaveEvery), flow sizes mixing exponential mice with Pareto
// α=1.5 elephants around ChurnMeanBytes, and a departure armed at
// arrival + size/FlowDemand. Under contention a flow delivers less
// than its drawn size in that window — the model fixes *lifetimes*,
// not byte counts, so the lifecycle rate is a control variable rather
// than an outcome. Everything random is drawn from one sim.RNG seeded
// by Params.Seed in event order, so a run is a pure function of its
// inputs; the digest folds per-epoch allocator state and must be
// bit-identical at any SettleWorkers count and under the FullResettle
// oracle.

// ChurnResult is one churn run's outcome.
type ChurnResult struct {
	Arity         int `json:"arity"`
	Hosts         int `json:"hosts"`
	Switches      int `json:"switches"`
	SettleWorkers int `json:"settle_workers"`

	// Arrivals and Departures count natural lifecycle events inside
	// Duration (the end-of-run drain releases EndLive flows without
	// counting them). PeakLive is the high-water concurrent flow count.
	Arrivals   uint64 `json:"arrivals"`
	Departures uint64 `json:"departures"`
	EndLive    int    `json:"end_live"`
	PeakLive   int    `json:"peak_live"`

	// Recycled counts flow objects served from the allocator's free
	// list — arrivals minus the arena's high-water mark.
	Recycled uint64 `json:"recycled"`

	Events           uint64 `json:"events"`
	Settles          uint64 `json:"settles"`
	ComponentsSolved uint64 `json:"components_solved"`
	// WheelExpired counts departures fired through the timer wheel;
	// WheelPending is what remained armed past the drain (flows whose
	// deadline outlived the run).
	WheelExpired uint64 `json:"wheel_expired"`
	WheelPending int    `json:"wheel_pending"`

	// DeliveredBits totals every flow's delivered traffic; after the
	// drain all of it sits in the allocator's retired accumulator.
	DeliveredBits float64 `json:"delivered_bits"`

	ArrivalsPerSimSec        float64 `json:"arrivals_per_sim_s"`
	LifecycleEventsPerSimSec float64 `json:"lifecycle_events_per_sim_s"`

	BuildTopoMS float64 `json:"build_topo_ms"`
	BuildWireMS float64 `json:"build_wire_ms"`

	// Digest is the determinism witness: FNV-64a over per-epoch
	// (live flow rate bits, live count, settles) samples plus the final
	// accounting, bit-identical across SettleWorkers counts and the
	// FullResettle oracle.
	Digest string `json:"digest"`
}

// churnFlow is the engine's per-flow record. Records are free-listed
// like the fluid flows they wrap, so steady-state churn reuses both.
type churnFlow struct {
	fluid *traffic.FluidFlow
	pos   int // index in the live list; -1 when free
}

type churnEngine struct {
	sched *sim.Scheduler
	fn    *traffic.FluidNet
	wheel *sim.Wheel
	fb    *fluidFabric
	rng   *sim.RNG
	hp    HybridParams

	live     []*churnFlow
	free     []*churnFlow
	peakLive int

	arrivals, departures uint64
	carry                float64 // fractional arrivals carried wave to wave

	waveEvery time.Duration
	waveFn    func()
	sampleFn  func()

	departCall sim.CallFunc
	hopsBuf    []traffic.Hop

	digest  *fnvFold
	samples int
}

// fnvFold is a tiny helper folding uint64s into an FNV-64a stream.
type fnvFold struct {
	h   hash.Hash64
	buf [8]byte
}

func newFnvFold() *fnvFold { return &fnvFold{h: fnv.New64a()} }

func (f *fnvFold) put(v uint64) {
	for b := 0; b < 8; b++ {
		f.buf[b] = byte(v >> (8 * b))
	}
	f.h.Write(f.buf[:])
}

// drawSize draws one flow size (bytes): exponential mice, with
// probability ChurnParetoFrac a Pareto α=1.5 elephant, both with mean
// ChurnMeanBytes.
func (e *churnEngine) drawSize() float64 {
	mean := e.hp.ChurnMeanBytes
	if e.hp.ChurnParetoFrac > 0 && e.rng.Float64() < e.hp.ChurnParetoFrac {
		const alpha = 1.5
		xm := mean * (alpha - 1) / alpha // Pareto mean is α·xm/(α−1)
		return xm / math.Pow(1-e.rng.Float64(), 1/alpha)
	}
	return mean * e.rng.ExpFloat64()
}

// arrive starts one flow: pick endpoints (pod-local unless the
// ChurnCrossFrac draw routes it through the core), recycle or allocate
// a record, register the fluid flow, and arm its departure on the
// wheel. The wheel entry carries the record pointer directly — no
// closure, no allocation on the steady-state path.
func (e *churnEngine) arrive(now time.Duration) {
	fb := e.fb
	srcG := e.rng.Intn(len(fb.hosts))
	sp, sl := srcG/fb.perPod, srcG%fb.perPod
	var dstG int
	if e.hp.ChurnCrossFrac > 0 && e.rng.Float64() < e.hp.ChurnCrossFrac {
		dp := (sp + 1 + e.rng.Intn(fb.arity-1)) % fb.arity
		dstG = dp*fb.perPod + e.rng.Intn(fb.perPod)
	} else {
		dl := e.rng.Intn(fb.perPod - 1)
		if dl >= sl {
			dl++
		}
		dstG = sp*fb.perPod + dl
	}

	var cf *churnFlow
	if n := len(e.free); n > 0 {
		cf = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		cf = &churnFlow{}
	}
	e.hopsBuf = fb.pathFor(srcG, dstG, e.hopsBuf[:0])
	cf.fluid = e.fn.NewFlow(e.hp.FlowDemand, e.hopsBuf)
	cf.fluid.Start()
	cf.pos = len(e.live)
	e.live = append(e.live, cf)
	if len(e.live) > e.peakLive {
		e.peakLive = len(e.live)
	}
	e.arrivals++

	life := time.Duration(8 * e.drawSize() / e.hp.FlowDemand * float64(time.Second))
	if life <= 0 {
		life = time.Microsecond
	}
	e.wheel.AtCall(now+life, e.departCall, cf, nil, 0)
}

// depart is the wheel callback: release the flow back to the arena.
// Records already force-released by the drain are skipped.
func (e *churnEngine) depart(a0, _ any, _ int) {
	cf := a0.(*churnFlow)
	if cf.pos < 0 {
		return
	}
	e.remove(cf)
	e.departures++
}

// remove releases cf's fluid flow and returns the record to the free
// list (live-list swap removal, like the allocator's own flow list).
func (e *churnEngine) remove(cf *churnFlow) {
	cf.fluid.Release()
	last := len(e.live) - 1
	moved := e.live[last]
	e.live[cf.pos] = moved
	moved.pos = cf.pos
	e.live[last] = nil
	e.live = e.live[:last]
	cf.pos = -1
	cf.fluid = nil
	e.free = append(e.free, cf)
}

// wave is the batched-arrival event: start every flow due in the
// interval (rate × interval, with the fractional remainder carried so
// the long-run rate is exact), then re-arm until Duration.
func (e *churnEngine) wave() {
	now := e.sched.Now()
	n := e.hp.ChurnArrivals*e.waveEvery.Seconds() + e.carry
	k := int(n)
	e.carry = n - float64(k)
	for i := 0; i < k; i++ {
		e.arrive(now)
	}
	if now+e.waveEvery < e.hp.Duration {
		e.sched.After(e.waveEvery, e.waveFn)
	}
}

// sample folds the allocator's observable state into the digest just
// before each epoch boundary (1µs early, so it never ties with settle
// events). Any divergence in any settle — a rate, an accrual, a
// recycle — shows up here.
func (e *churnEngine) sample() {
	// Fold every live flow's settled rate, in live-list order. Rates are
	// the quantity the settle invariant actually pins bit-for-bit across
	// worker counts AND under the FullResettle oracle; accrued bits are
	// not (the oracle re-accrues every flow each settle, segmenting the
	// same rate·time integral differently in float arithmetic). The
	// live-list order itself is deterministic — it is a pure function of
	// the arrival/departure event sequence, which the digest inputs fix.
	for _, cf := range e.live {
		e.digest.put(math.Float64bits(cf.fluid.Rate()))
	}
	e.digest.put(uint64(len(e.live)))
	e.digest.put(e.fn.Settles())
	e.samples++
	if e.sched.Now()+e.hp.Epoch < e.hp.Duration {
		e.sched.After(e.hp.Epoch, e.sampleFn)
	}
}

// RunChurn builds a fat-tree fluid fabric and drives an open flow
// lifecycle workload over it. Like the other experiment units it is a
// pure function of (Params, HybridParams).
func RunChurn(p Params, hp HybridParams) ChurnResult {
	if hp.Arity < 2 || hp.Arity%2 != 0 {
		panic(fmt.Sprintf("experiment: churn arity %d must be even and >= 2", hp.Arity))
	}
	if hp.Epoch <= 0 {
		hp.Epoch = 10 * time.Millisecond
	}
	if hp.ChurnWaveEvery <= 0 {
		hp.ChurnWaveEvery = hp.Epoch / 4
	}
	if hp.ChurnMeanBytes <= 0 {
		hp.ChurnMeanBytes = 40_000
	}

	sched := sim.NewScheduler()
	nw := netem.New(sched)
	fb := buildFluidFabric(sched, nw, p, hp.Arity)

	fn := traffic.NewFluidNet(sched, traffic.FluidConfig{
		Epoch:         hp.Epoch,
		SettleWorkers: hp.SettleWorkers,
		FullResettle:  hp.FullResettle,
	})
	e := &churnEngine{
		sched:     sched,
		fn:        fn,
		wheel:     sim.NewWheel(sched, 100*time.Microsecond),
		fb:        fb,
		rng:       sim.NewRNG(p.Seed),
		hp:        hp,
		waveEvery: hp.ChurnWaveEvery,
		hopsBuf:   make([]traffic.Hop, 0, 8),
		digest:    newFnvFold(),
	}
	e.departCall = e.depart
	e.waveFn = e.wave
	e.sampleFn = e.sample
	sched.After(0, e.waveFn)
	sched.After(hp.Epoch-time.Microsecond, e.sampleFn)

	sched.RunFor(hp.Duration)

	// Natural lifecycle counts end here; the drain below releases the
	// remainder without counting them as departures.
	natDepartures := e.departures
	endLive := len(e.live)
	for len(e.live) > 0 {
		e.remove(e.live[len(e.live)-1])
	}
	sched.RunFor(2 * hp.Epoch) // the delisting settle retires the drained flows
	fn.Close()

	e.digest.put(e.arrivals)
	e.digest.put(natDepartures)
	e.digest.put(fn.Settles())
	digest := fmt.Sprintf("churn=%016x|arrivals=%d|departures=%d|samples=%d|settles=%d",
		e.digest.h.Sum64(), e.arrivals, natDepartures, e.samples, fn.Settles())

	secs := hp.Duration.Seconds()
	return ChurnResult{
		Arity:                    hp.Arity,
		Hosts:                    len(fb.hosts),
		Switches:                 fb.switches(),
		SettleWorkers:            hp.SettleWorkers,
		Arrivals:                 e.arrivals,
		Departures:               natDepartures,
		EndLive:                  endLive,
		PeakLive:                 e.peakLive,
		Recycled:                 fn.Recycled(),
		Events:                   sched.Executed(),
		Settles:                  fn.Settles(),
		ComponentsSolved:         fn.ComponentsSolved(),
		WheelExpired:             e.wheel.Expired(),
		WheelPending:             e.wheel.Pending(),
		DeliveredBits:            fn.RetiredBits(),
		ArrivalsPerSimSec:        float64(e.arrivals) / secs,
		LifecycleEventsPerSimSec: float64(e.arrivals+natDepartures) / secs,
		BuildTopoMS:              fb.topoMS,
		BuildWireMS:              fb.wireMS,
		Digest:                   digest,
	}
}
