package experiment

import (
	"testing"
	"time"
)

func quickChurn() (Params, HybridParams) {
	p := DefaultParams().Quick()
	hp := DefaultHybridParams()
	hp.Duration = 200 * time.Millisecond
	hp.Epoch = 5 * time.Millisecond
	hp.ChurnArrivals = 8_000
	hp.ChurnMeanBytes = 20_000
	hp.ChurnParetoFrac = 0.3
	return p, hp
}

// TestChurnLifecycleAccounting pins the engine's bookkeeping: every
// arrival is either naturally departed (through the wheel) or alive at
// the end; recycling actually happens under sustained churn; and the
// drained run retires every delivered bit.
func TestChurnLifecycleAccounting(t *testing.T) {
	p, hp := quickChurn()
	r := RunChurn(p, hp)
	if r.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	if r.Arrivals != r.Departures+uint64(r.EndLive) {
		t.Fatalf("lifecycle leak: %d arrivals vs %d departures + %d live",
			r.Arrivals, r.Departures, r.EndLive)
	}
	if r.Departures == 0 {
		t.Fatal("no flow completed within the run")
	}
	if r.WheelExpired < r.Departures {
		t.Fatalf("wheel fired %d entries for %d departures", r.WheelExpired, r.Departures)
	}
	if r.Recycled == 0 {
		t.Fatal("free list never used despite sustained churn")
	}
	if r.PeakLive < r.EndLive {
		t.Fatalf("peak live %d below end live %d", r.PeakLive, r.EndLive)
	}
	if r.DeliveredBits <= 0 {
		t.Fatalf("delivered bits = %v", r.DeliveredBits)
	}
	if r.Settles == 0 || r.ComponentsSolved == 0 {
		t.Fatalf("allocator idle: settles=%d components=%d", r.Settles, r.ComponentsSolved)
	}
	// Expected arrivals = rate × duration, exact up to the last wave's
	// fractional carry.
	want := hp.ChurnArrivals * hp.Duration.Seconds()
	if diff := float64(r.Arrivals) - want; diff > 1 || diff < -float64(hp.ChurnArrivals)*hp.ChurnWaveEvery.Seconds()-1 {
		t.Fatalf("arrivals %d, want ~%.0f", r.Arrivals, want)
	}
}

// TestChurnDigestAcrossSettleWorkers is the tentpole's determinism
// gate: the digest — per-epoch live flow rates, live counts and
// settle counts plus the final accounting — must be bit-identical at
// every SettleWorkers count and under the FullResettle oracle.
func TestChurnDigestAcrossSettleWorkers(t *testing.T) {
	p, hp := quickChurn()
	hp.ChurnCrossFrac = 0.1 // exercise component merging too
	base := RunChurn(p, hp)
	if base.Digest == "" {
		t.Fatal("empty digest")
	}
	for _, workers := range []int{2, 4, 8} {
		hp.SettleWorkers = workers
		r := RunChurn(p, hp)
		if r.Digest != base.Digest {
			t.Fatalf("digest diverged at %d workers:\nserial:   %s\nparallel: %s",
				workers, base.Digest, r.Digest)
		}
	}
	hp.SettleWorkers = 4
	hp.FullResettle = true
	r := RunChurn(p, hp)
	if r.Digest != base.Digest {
		t.Fatalf("digest diverged under the FullResettle oracle:\nincremental: %s\noracle:      %s",
			base.Digest, r.Digest)
	}
}

// TestChurnSeedSensitivity checks the workload is actually seeded:
// different seeds draw different endpoint/size streams.
func TestChurnSeedSensitivity(t *testing.T) {
	p, hp := quickChurn()
	a := RunChurn(p, hp)
	p.Seed = 7
	b := RunChurn(p, hp)
	if a.Digest == b.Digest {
		t.Fatal("digest insensitive to seed")
	}
}

// TestChurnKindRuns covers the sweep-unit surface.
func TestChurnKindRuns(t *testing.T) {
	p := DefaultParams().Quick()
	res := Run(KindChurn, p, ScenCentral3, 1)
	if res.Kind != "churn" {
		t.Fatalf("kind = %q", res.Kind)
	}
	if res.Metrics["churn_arrivals"] == 0 || res.Metrics["lifecycle_events_per_sim_s"] == 0 {
		t.Fatalf("metrics missing: %v", res.Metrics)
	}
	if _, err := ParseKind("churn"); err != nil {
		t.Fatal(err)
	}
}
