package experiment

import (
	"math"
	"testing"
	"time"
)

func quickHybrid() (Params, HybridParams) {
	p := DefaultParams().Quick()
	hp := DefaultHybridParams()
	hp.Duration = 300 * time.Millisecond
	hp.SwapAt = 150 * time.Millisecond
	return p, hp
}

// TestHybridDifferentialFidelity is the engine's core contract: a
// pure-packet rerun of the same scenario must observe bit-identical
// behaviour inside the packet-exact region, while the fluid model's
// off-region goodput stays within tolerance of the real packet streams.
func TestHybridDifferentialFidelity(t *testing.T) {
	p, hp := quickHybrid()

	hyb := RunHybrid(p, hp)
	hp.PacketFabric = true
	pure := RunHybrid(p, hp)

	if hyb.RegionDigest != pure.RegionDigest {
		t.Fatalf("compare-region observations diverged:\nhybrid: %s\npacket: %s", hyb.RegionDigest, pure.RegionDigest)
	}
	if hyb.Promotions != pure.Promotions || hyb.Demotions != pure.Demotions {
		t.Fatalf("promotion bookkeeping diverged: %d/%d vs %d/%d",
			hyb.Promotions, hyb.Demotions, pure.Promotions, pure.Demotions)
	}

	// Off-region goodput: the fluid model's analytic delivery vs what
	// real packet streams carried to real sinks. Start/stop
	// quantisation (epoch boundaries vs pacing ticks) and drain effects
	// bound the error.
	if hyb.BackgroundDeliveredBits <= 0 || pure.BackgroundDeliveredBits <= 0 {
		t.Fatalf("no background traffic delivered: hybrid=%v pure=%v",
			hyb.BackgroundDeliveredBits, pure.BackgroundDeliveredBits)
	}
	rel := math.Abs(hyb.BackgroundDeliveredBits-pure.BackgroundDeliveredBits) / pure.BackgroundDeliveredBits
	if rel > 0.1 {
		t.Fatalf("off-region goodput error %.1f%% exceeds tolerance: hybrid=%.0f pure=%.0f bits",
			rel*100, hyb.BackgroundDeliveredBits, pure.BackgroundDeliveredBits)
	}

	// The whole point: the hybrid run does far less work.
	if pure.Events <= hyb.Events {
		t.Fatalf("hybrid run executed more events than pure packet: %d vs %d", hyb.Events, pure.Events)
	}
}

func TestHybridDeterministicDigest(t *testing.T) {
	p, hp := quickHybrid()
	a := RunHybrid(p, hp)
	b := RunHybrid(p, hp)
	if a.Digest != b.Digest {
		t.Fatalf("hybrid digests diverged across identical runs:\n%s\n%s", a.Digest, b.Digest)
	}
	if a.Events != b.Events || a.Settles != b.Settles {
		t.Fatalf("counters diverged: events %d/%d settles %d/%d", a.Events, b.Events, a.Settles, b.Settles)
	}
}

func TestHybridEventReduction(t *testing.T) {
	p, hp := quickHybrid()
	// The ratio depends on the background:crossing mix; use a workload
	// shaped like the real thing (many fluid flows, few monitored).
	hp.FlowsPerHost = 8
	hp.CrossFlows = 2
	r := RunHybrid(p, hp)
	if r.EventRatio < 20 {
		t.Fatalf("event ratio %.1fx below the 20x acceptance floor (events=%d projected=%.0f)",
			r.EventRatio, r.Events, r.ProjectedPacketEvents)
	}
	if r.Settles == 0 {
		t.Fatal("fluid tier never settled")
	}
	if r.Promotions == 0 || r.Demotions == 0 {
		t.Fatalf("region boundary transitions not exercised: promotions=%d demotions=%d", r.Promotions, r.Demotions)
	}
	rates, goods := r.Hists["flow_rate_mbps"], r.Hists["flow_goodput_mbps"]
	if rates.N() == 0 || goods.N() == 0 {
		t.Fatal("hybrid histograms empty")
	}
}

func TestHybridKindRuns(t *testing.T) {
	p := DefaultParams().Quick()
	res := Run(KindHybrid, p, ScenCentral3, 1)
	if res.Kind != "hybrid" {
		t.Fatalf("kind = %q", res.Kind)
	}
	if res.Metrics["hybrid_flows"] == 0 || res.Metrics["hybrid_events"] == 0 {
		t.Fatalf("metrics missing: %v", res.Metrics)
	}
	if len(res.Hists) != 4 {
		t.Fatalf("hists missing: %v", res.Hists)
	}
	if _, err := ParseKind("hybrid"); err != nil {
		t.Fatal(err)
	}
}

// TestHybridCongestionPromotion exercises the ρ-threshold promotion
// path: with a demand high enough to saturate fabric links and a low
// threshold, background flows get expanded into real packet streams,
// the bookkeeping counts them, and the run stays deterministic.
func TestHybridCongestionPromotion(t *testing.T) {
	p, hp := quickHybrid()
	hp.FlowDemand = 300e6 // trunks (500 Mbit/s) saturate under a few flows
	hp.PromoteRho = 0.5
	hp.PromoteCap = 3

	a := RunHybrid(p, hp)
	if a.CongestionPromotions == 0 {
		t.Fatal("no congestion-triggered promotions despite saturated links")
	}
	if a.CongestionPromotions > uint64(hp.PromoteCap) {
		t.Fatalf("promotions %d exceed cap %d", a.CongestionPromotions, hp.PromoteCap)
	}
	if a.Promotions < a.CongestionPromotions {
		t.Fatalf("congestion promotions %d not folded into total %d",
			a.CongestionPromotions, a.Promotions)
	}
	b := RunHybrid(p, hp)
	if a.Digest != b.Digest || a.CongestionPromotions != b.CongestionPromotions {
		t.Fatalf("congestion-promotion run not deterministic: %d/%d promotions",
			a.CongestionPromotions, b.CongestionPromotions)
	}

	// Uncapped, the same workload promotes at least as many flows.
	hp.PromoteCap = 0
	c := RunHybrid(p, hp)
	if c.CongestionPromotions < a.CongestionPromotions {
		t.Fatalf("uncapped run promoted fewer flows: %d < %d",
			c.CongestionPromotions, a.CongestionPromotions)
	}

	// Threshold off: no congestion promotions on the same workload.
	hp.PromoteRho = 0
	d := RunHybrid(p, hp)
	if d.CongestionPromotions != 0 {
		t.Fatalf("PromoteRho=0 still promoted %d flows", d.CongestionPromotions)
	}
}

// TestHybridBuildBreakdownPopulated checks the build provenance fields
// the bench reports: phases are measured and sum to a sane total.
func TestHybridBuildBreakdownPopulated(t *testing.T) {
	p, hp := quickHybrid()
	r := RunHybrid(p, hp)
	if r.BuildTopoMS < 0 || r.BuildWireMS < 0 || r.BuildFlowsMS < 0 {
		t.Fatalf("negative build phase: topo=%v wire=%v flows=%v",
			r.BuildTopoMS, r.BuildWireMS, r.BuildFlowsMS)
	}
	if r.BuildTopoMS+r.BuildWireMS+r.BuildFlowsMS <= 0 {
		t.Fatal("build breakdown all zero — phases not measured")
	}
}
