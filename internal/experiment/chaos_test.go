package experiment

import (
	"testing"
	"time"
)

// TestRunChaosMasksSingleCrash: a k=3 combiner masks one router's
// cold-crash completely — delivery stays (nearly) perfect through the
// outage and the probe confirms recovery right after the heal.
func TestRunChaosMasksSingleCrash(t *testing.T) {
	p := DefaultParams().Quick()
	p.ChaosCrashes = 1
	r := RunChaos(p, ScenCentral3)

	if r.Crashes != 1 {
		t.Fatalf("scheduled %d crashes, want 1", r.Crashes)
	}
	if r.Sent == 0 {
		t.Fatal("measurement stream sent nothing")
	}
	if r.DeliveredFrac < 0.99 {
		t.Fatalf("delivered %.4f of datagrams under a single masked crash, want >= 0.99 (%d/%d)",
			r.DeliveredFrac, r.Delivered, r.Sent)
	}
	if !r.Recovered {
		t.Fatal("probe stream never delivered after the last heal")
	}
	if r.Recovery < 0 || r.Recovery > 50*time.Millisecond {
		t.Fatalf("recovery = %v, want within (0, 50ms]", r.Recovery)
	}
	if r.Dups != 0 {
		t.Fatalf("%d duplicate deliveries leaked through the combiner", r.Dups)
	}
}

// TestRunChaosFlapAndCompareRestart exercises the full knob set — two
// crashes, a flapping trunk and a compare bounce — on a k=5 combiner,
// which still masks everything but the compare's own outage window.
func TestRunChaosFlapAndCompareRestart(t *testing.T) {
	p := DefaultParams().Quick()
	p.ChaosCrashes = 2
	p.ChaosFlapPeriod = 20 * time.Millisecond
	p.ChaosFlapCycles = 2
	p.ChaosCompareRestart = true
	r := RunChaos(p, ScenCentral5)

	if r.Crashes != 2 || r.FlapCycles == 0 {
		t.Fatalf("plan scheduled crashes=%d flaps=%d, want 2 and >0", r.Crashes, r.FlapCycles)
	}
	// The compare restart drops its window; everything else is masked.
	if r.DeliveredFrac < 0.8 {
		t.Fatalf("delivered %.4f, want >= 0.8 (%d/%d)", r.DeliveredFrac, r.Delivered, r.Sent)
	}
	if !r.Recovered {
		t.Fatal("probe stream never delivered after the last heal")
	}
}

// TestRunChaosDegradesGracefully: scenarios without a combiner (POX) or
// compare (Dup) skip the targets they lack but still crash routers.
func TestRunChaosDegradesGracefully(t *testing.T) {
	p := DefaultParams().Quick()
	p.ChaosCrashes = 1
	p.ChaosFlapPeriod = 20 * time.Millisecond
	p.ChaosCompareRestart = true
	for _, s := range []Scenario{ScenPOX3, ScenDup3, ScenLinespeed} {
		r := RunChaos(p, s)
		if r.Crashes != 1 {
			t.Errorf("%s: scheduled %d crashes, want 1", s, r.Crashes)
		}
		if r.Sent == 0 || r.Delivered == 0 {
			t.Errorf("%s: no traffic flowed (sent=%d delivered=%d)", s, r.Sent, r.Delivered)
		}
		if !r.Recovered {
			t.Errorf("%s: probe never delivered after the heal", s)
		}
	}
}

// TestRunKindChaos checks the sweep-facing wrapper emits the headline
// metrics.
func TestRunKindChaos(t *testing.T) {
	p := DefaultParams().Quick()
	res := Run(KindChaos, p, ScenCentral3, 7)
	for _, key := range []string{"chaos_sent", "chaos_delivered", "delivered_frac", "chaos_crashes", "last_heal_ms"} {
		if _, ok := res.Metrics[key]; !ok {
			t.Errorf("metric %q missing from KindChaos result", key)
		}
	}
	if res.Metrics["delivered_frac"] < 0.99 {
		t.Errorf("delivered_frac = %v, want >= 0.99", res.Metrics["delivered_frac"])
	}
	if _, ok := res.Metrics["recovery_ms"]; !ok {
		t.Error("recovery_ms missing — probe did not recover")
	}
}
