package experiment

import (
	"sort"

	"netco/internal/netem"
)

// RegionMap marks the nodes of a network that must stay packet-exact —
// the compare/adversary/congestion neighbourhoods of a hybrid scenario.
// Everything outside the map is fair game for the fluid tier; a flow
// whose route touches the map must be promoted (expanded into real
// packets) for the in-region segment.
//
// The map is a BFS ball: every node within the given hop radius of a
// seed node, over the network's link adjacency. Construction iterates
// links in creation order and frontiers in discovery order, never a Go
// map, so identical networks yield identical maps.
type RegionMap struct {
	inside map[string]bool
	names  []string // discovery order
	radius int
}

// BuildRegionMap grows packet-exact regions of the given hop radius
// around each seed node name. Radius 0 marks the seeds alone; seeds not
// present in the network are still marked (they simply have no
// neighbours to spread to).
func BuildRegionMap(nw *netem.Network, seeds []string, radius int) *RegionMap {
	return NewRegionBuilder(nw).Build(seeds, radius)
}

// RegionBuilder builds RegionMaps over one network, reusing its BFS
// frontier scratch across calls. Promotion decisions at scale rebuild
// region balls repeatedly; the builder walks each frontier node's port
// table directly (Ports.Each, ascending port order) instead of
// materialising a whole-network adjacency map per call, so a build
// costs O(region ball), not O(network).
type RegionBuilder struct {
	nw       *netem.Network
	frontier []netem.Node
	next     []netem.Node
}

// NewRegionBuilder creates a builder over the network.
func NewRegionBuilder(nw *netem.Network) *RegionBuilder {
	return &RegionBuilder{nw: nw}
}

// Build grows a packet-exact region ball exactly as BuildRegionMap
// does. The returned map is independent of the builder; only the
// traversal scratch is shared between calls.
func (rb *RegionBuilder) Build(seeds []string, radius int) *RegionMap {
	rm := &RegionMap{inside: make(map[string]bool), radius: radius}
	rb.frontier = rb.frontier[:0]
	for _, s := range seeds {
		if rm.inside[s] {
			continue
		}
		rm.inside[s] = true
		rm.names = append(rm.names, s)
		if n := rb.nw.NodeByName(s); n != nil {
			rb.frontier = append(rb.frontier, n)
		}
	}
	for hop := 0; hop < radius && len(rb.frontier) > 0; hop++ {
		rb.next = rb.next[:0]
		for _, n := range rb.frontier {
			n.Ports().Each(func(_ int, l *netem.Link, end int) {
				peer, _ := l.Peer(end)
				if peer == nil {
					return
				}
				name := peer.Name()
				if rm.inside[name] {
					return
				}
				rm.inside[name] = true
				rm.names = append(rm.names, name)
				if pn, ok := peer.(netem.Node); ok {
					rb.next = append(rb.next, pn)
				}
			})
		}
		rb.frontier, rb.next = rb.next, rb.frontier
	}
	return rm
}

// Contains reports whether the node name lies inside a packet-exact
// region.
func (rm *RegionMap) Contains(name string) bool { return rm.inside[name] }

// Size returns the number of in-region nodes.
func (rm *RegionMap) Size() int { return len(rm.names) }

// Radius returns the BFS radius the map was built with.
func (rm *RegionMap) Radius() int { return rm.radius }

// Names returns the in-region node names, sorted.
func (rm *RegionMap) Names() []string {
	out := append([]string(nil), rm.names...)
	sort.Strings(out)
	return out
}

// Crosses reports whether any node of the route lies in a packet-exact
// region — the promotion predicate for a fluid flow.
func (rm *RegionMap) Crosses(route []string) bool {
	for _, n := range route {
		if rm.inside[n] {
			return true
		}
	}
	return false
}
