package experiment

import (
	"sort"

	"netco/internal/netem"
)

// RegionMap marks the nodes of a network that must stay packet-exact —
// the compare/adversary/congestion neighbourhoods of a hybrid scenario.
// Everything outside the map is fair game for the fluid tier; a flow
// whose route touches the map must be promoted (expanded into real
// packets) for the in-region segment.
//
// The map is a BFS ball: every node within the given hop radius of a
// seed node, over the network's link adjacency. Construction iterates
// links in creation order and frontiers in discovery order, never a Go
// map, so identical networks yield identical maps.
type RegionMap struct {
	inside map[string]bool
	names  []string // discovery order
	radius int
}

// BuildRegionMap grows packet-exact regions of the given hop radius
// around each seed node name. Radius 0 marks the seeds alone; seeds not
// present in the network are still marked (they simply have no
// neighbours to spread to).
func BuildRegionMap(nw *netem.Network, seeds []string, radius int) *RegionMap {
	adj := make(map[string][]string)
	for _, l := range nw.Links() {
		a, _ := l.Peer(1) // node attached at end 0
		b, _ := l.Peer(0) // node attached at end 1
		if a == nil || b == nil {
			continue
		}
		adj[a.Name()] = append(adj[a.Name()], b.Name())
		adj[b.Name()] = append(adj[b.Name()], a.Name())
	}

	rm := &RegionMap{inside: make(map[string]bool), radius: radius}
	frontier := make([]string, 0, len(seeds))
	for _, s := range seeds {
		if !rm.inside[s] {
			rm.inside[s] = true
			rm.names = append(rm.names, s)
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []string
		for _, n := range frontier {
			for _, m := range adj[n] {
				if !rm.inside[m] {
					rm.inside[m] = true
					rm.names = append(rm.names, m)
					next = append(next, m)
				}
			}
		}
		frontier = next
	}
	return rm
}

// Contains reports whether the node name lies inside a packet-exact
// region.
func (rm *RegionMap) Contains(name string) bool { return rm.inside[name] }

// Size returns the number of in-region nodes.
func (rm *RegionMap) Size() int { return len(rm.names) }

// Radius returns the BFS radius the map was built with.
func (rm *RegionMap) Radius() int { return rm.radius }

// Names returns the in-region node names, sorted.
func (rm *RegionMap) Names() []string {
	out := append([]string(nil), rm.names...)
	sort.Strings(out)
	return out
}

// Crosses reports whether any node of the route lies in a packet-exact
// region — the promotion predicate for a fluid flow.
func (rm *RegionMap) Crosses(route []string) bool {
	for _, n := range route {
		if rm.inside[n] {
			return true
		}
	}
	return false
}
