package experiment

import (
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// DoSResult quantifies the combiner under the §II denial-of-service
// attacker and the effectiveness of the two defences §IV prescribes:
// port blocking against replays and logically isolated buffers against
// resource exhaustion.
type DoSResult struct {
	// BaselineMbps is benign UDP goodput with no attacker.
	BaselineMbps float64

	// Replay attack (same packet repeatedly on one port, §IV case 2):
	// goodput while the compare detects and blocks the port.
	ReplayMbps   float64
	ReplayBlocks uint64

	// Forged-packet flood (distinct unsolicited packets from one
	// router): goodput with the per-router ingest quota on and off.
	FloodIsolatedMbps float64
	FloodSharedMbps   float64
	// QuotaDrops counts flood copies rejected by the isolation quota.
	QuotaDrops uint64
}

// RunDoS measures the §II attack-4 scenarios on a Central3 combiner with
// a 100 Mbit/s benign UDP flow.
func RunDoS(p Params) DoSResult {
	var res DoSResult
	res.BaselineMbps, _, _ = runDoSScenario(p, false, nil)

	replayMbps, blocks, _ := runDoSScenario(p, false, func(i int) switching.Behavior {
		if i != 0 {
			return nil
		}
		return &adversary.Replay{Match: openflow.MatchAll(), Extra: 10}
	})
	res.ReplayMbps, res.ReplayBlocks = replayMbps, blocks

	res.FloodIsolatedMbps, _, res.QuotaDrops = runDoSFlood(p, false)
	res.FloodSharedMbps, _, _ = runDoSFlood(p, true)
	return res
}

func runDoSScenario(p Params, noIsolation bool, compromise func(i int) switching.Behavior) (mbps float64, blocks, quotaDrops uint64) {
	tp := p.TestbedParams(ScenCentral3, nil)
	tp.Compare.NoBufferIsolation = noIsolation
	tp.Compromise = compromise
	tb := topo.BuildTestbed(tp)
	defer tb.Close()

	sink := traffic.NewUDPSink(tb.H2, 5001)
	src := traffic.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate:        100e6,
		PayloadSize: 1470,
	})
	tb.Runner.RunFor(50 * time.Millisecond)
	src.Start()
	tb.Runner.RunFor(p.UDPDuration)
	src.Stop()
	tb.Runner.RunFor(2 * p.CompareHold)

	return sink.Stats().Goodput() / 1e6,
		tb.Combiner.Compare.Stats().Blocks,
		tb.Combiner.Compare.Stats().QuotaDrops
}

// runDoSFlood runs the benign flow against a router injecting 60 kpps of
// distinct forged packets toward the destination edge.
func runDoSFlood(p Params, noIsolation bool) (mbps float64, blocks, quotaDrops uint64) {
	tp := p.TestbedParams(ScenCentral3, nil)
	tp.Compare.NoBufferIsolation = noIsolation
	forged := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(0x66), IP: packet.HostIP(0x66), Port: 6},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 5001},
		make([]byte, 400),
	)
	tp.Compromise = func(i int) switching.Behavior {
		if i != 0 {
			return nil
		}
		return &adversary.Flood{
			OutPort:  core.RouterPortRight,
			Rate:     60000,
			Template: forged,
			Vary:     true,
		}
	}
	tb := topo.BuildTestbed(tp)
	defer tb.Close()

	sink := traffic.NewUDPSink(tb.H2, 5001)
	src := traffic.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate:        100e6,
		PayloadSize: 1470,
	})
	tb.Runner.RunFor(50 * time.Millisecond)
	src.Start()
	tb.Runner.RunFor(p.UDPDuration)
	src.Stop()
	tb.Runner.RunFor(2 * p.CompareHold)

	return sink.Stats().Goodput() / 1e6,
		tb.Combiner.Compare.Stats().Blocks,
		tb.Combiner.Compare.Stats().QuotaDrops
}
