package experiment

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"netco/internal/traffic"
)

// The differential determinism suite: the parallel engine must produce
// byte-identical artifacts to the serial engine for the same inputs, at
// every partition count and under different GOMAXPROCS — on the Fig. 3
// testbed, the fat tree, and the multipath network.

func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestScaleDeterminismAcrossPartitions(t *testing.T) {
	base := DefaultParams().Quick()
	const arity, dur = 4, 60 * time.Millisecond

	base.Partitions = 1
	ref := RunScale(base, arity, dur)
	if ref.Events == 0 {
		t.Fatal("serial scale run executed no events")
	}

	for _, parts := range []int{2, 4, 8} {
		for _, procs := range []int{1, 4} {
			p := base
			p.Partitions = parts
			var got ScaleResult
			withGOMAXPROCS(procs, func() { got = RunScale(p, arity, dur) })
			if got.Digest != ref.Digest {
				t.Errorf("partitions=%d GOMAXPROCS=%d: digest diverged from serial\n got: %s\nwant: %s",
					parts, procs, got.Digest, ref.Digest)
			}
		}
	}
}

func TestRunParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations")
	}
	base := DefaultParams().Quick()
	marshal := func(p Params) []byte {
		res := Run(KindPing, p, ScenCentral3, 1)
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := marshal(base)

	for _, parts := range []int{1, 2, 4, 8} {
		for _, procs := range []int{1, 4} {
			if parts == 1 && procs == 4 {
				continue // single domain ignores GOMAXPROCS
			}
			p := base
			p.Partitions = parts
			var got []byte
			withGOMAXPROCS(procs, func() { got = marshal(p) })
			if string(got) != string(ref) {
				t.Errorf("partitions=%d GOMAXPROCS=%d: artifact diverged\n got: %s\nwant: %s",
					parts, procs, got, ref)
			}
		}
	}
}

func TestVirtualDeterminismAcrossPartitions(t *testing.T) {
	base := DefaultParams().Quick()
	base.UDPDuration = 150 * time.Millisecond

	digest := func(p Params) string {
		r, mp, h1, h2 := buildVirtualNet(p, 3, false, nil)
		defer mp.Close()
		sink := traffic.NewUDPSink(h2, 5002)
		src := traffic.NewUDPSource(h1, 4002, h2.Endpoint(5002),
			traffic.UDPSourceConfig{Rate: 60e6, PayloadSize: 700})
		src.Start()
		r.RunFor(p.UDPDuration)
		src.Stop()
		r.RunFor(50 * time.Millisecond)
		st := sink.Stats()
		return fmt.Sprintf("sent=%d u=%d b=%d d=%d r=%d sup=%d exec=%d",
			src.Sent, st.Unique, st.UniqueBytes, st.Duplicates, st.Reordered,
			mp.Right.EngineStats().Suppressed, r.Executed())
	}

	base.Partitions = 0
	ref := digest(base)
	for _, parts := range []int{1, 2, 4, 8} {
		for _, procs := range []int{1, 4} {
			if parts == 1 && procs == 4 {
				continue
			}
			p := base
			p.Partitions = parts
			var got string
			withGOMAXPROCS(procs, func() { got = digest(p) })
			if got != ref {
				t.Errorf("partitions=%d GOMAXPROCS=%d: diverged\n got: %s\nwant: %s", parts, procs, got, ref)
			}
		}
	}
}
