package experiment

import (
	"fmt"
	"strings"
	"time"
)

// Table1Row is one column of the paper's Table I (the paper lays
// scenarios out as columns; a row here is one scenario's triple).
type Table1Row struct {
	Scenario Scenario
	TCPMbps  float64
	UDPMbps  float64
	AvgRTT   time.Duration
}

// PaperTable1 is the published Table I, for side-by-side reporting.
var PaperTable1 = []Table1Row{
	{Scenario: ScenLinespeed, TCPMbps: 474, UDPMbps: 278, AvgRTT: 181 * time.Microsecond},
	{Scenario: ScenDup3, TCPMbps: 122, UDPMbps: 266, AvgRTT: 189 * time.Microsecond},
	{Scenario: ScenDup5, TCPMbps: 72, UDPMbps: 149, AvgRTT: 260 * time.Microsecond},
	{Scenario: ScenCentral3, TCPMbps: 145, UDPMbps: 245, AvgRTT: 319 * time.Microsecond},
	{Scenario: ScenCentral5, TCPMbps: 78, UDPMbps: 156, AvgRTT: 415 * time.Microsecond},
}

// RunTable1 reproduces Table I: average TCP bandwidth, average UDP
// bandwidth (max with loss < 0.5 %), and average ping RTT per scenario.
func RunTable1(p Params) []Table1Row {
	rows := make([]Table1Row, 0, len(TableScenarios))
	for _, s := range TableScenarios {
		tcp := RunTCP(p, s)
		udp := RunUDPMax(p, s)
		ping := RunPing(p, s)
		rows = append(rows, Table1Row{
			Scenario: s,
			TCPMbps:  tcp.Mbps,
			UDPMbps:  udp.Mbps,
			AvgRTT:   ping.AvgRTT,
		})
	}
	return rows
}

// FormatTable1 renders measured rows next to the paper's, in the paper's
// column order.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %18s %18s %16s\n", "scenario", "tcp Mbit/s (paper)", "udp Mbit/s (paper)", "rtt ms (paper)")
	for _, r := range rows {
		var paper *Table1Row
		for i := range PaperTable1 {
			if PaperTable1[i].Scenario == r.Scenario {
				paper = &PaperTable1[i]
			}
		}
		if paper != nil {
			fmt.Fprintf(&b, "%-12s %10.0f (%4.0f) %10.0f (%4.0f) %8.3f (%5.3f)\n",
				r.Scenario, r.TCPMbps, paper.TCPMbps, r.UDPMbps, paper.UDPMbps,
				r.AvgRTT.Seconds()*1e3, paper.AvgRTT.Seconds()*1e3)
		} else {
			fmt.Fprintf(&b, "%-12s %10.0f %10.0f %8.3f\n",
				r.Scenario, r.TCPMbps, r.UDPMbps, r.AvgRTT.Seconds()*1e3)
		}
	}
	return b.String()
}

// RunArchitectureComparison measures the three compare placements at
// k=3 — out-of-band data plane (Central3), inband middlebox (Inline3),
// controller (POX3) — the comparison the paper's conclusion asks for
// ("we also need to explore alternative architectures, which, e.g.,
// implement the compare function inband, as a middlebox or NFV
// function", §IX).
func RunArchitectureComparison(p Params) []Table1Row {
	rows := make([]Table1Row, 0, len(ArchitectureScenarios))
	for _, s := range ArchitectureScenarios {
		tcp := RunTCP(p, s)
		udp := RunUDPMax(p, s)
		ping := RunPing(p, s)
		rows = append(rows, Table1Row{
			Scenario: s,
			TCPMbps:  tcp.Mbps,
			UDPMbps:  udp.Mbps,
			AvgRTT:   ping.AvgRTT,
		})
	}
	return rows
}
