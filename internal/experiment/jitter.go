package experiment

import (
	"time"
)

// JitterPoint is one bar of Fig. 8: the jitter a scenario exhibits at one
// UDP packet size ("each bar representing the average of five
// measurements", §V-B).
type JitterPoint struct {
	Scenario    Scenario
	PayloadSize int
	Jitter      time.Duration
	Loss        float64
}

// Fig8Sizes are the payload sizes swept (bytes).
var Fig8Sizes = []int{128, 256, 512, 1024, 1470}

// RunJitter measures jitter for one scenario across packet sizes at the
// fixed JitterRate offered load: smaller packets mean a higher packet
// rate, which fills the compare's cache faster and triggers the cleanup
// passes behind the paper's "bigger packets lead to lower jitter"
// observation.
func RunJitter(p Params, s Scenario, sizes []int) []JitterPoint {
	if sizes == nil {
		sizes = Fig8Sizes
	}
	const runsPerBar = 5
	out := make([]JitterPoint, 0, len(sizes))
	for _, size := range sizes {
		var jitterSum time.Duration
		var lossSum float64
		for run := 0; run < runsPerBar; run++ {
			q := p
			q.Seed = p.Seed + int64(run)
			pt := measureUDP(q, s, p.JitterRate, size)
			jitterSum += pt.Jitter
			lossSum += pt.Loss
		}
		out = append(out, JitterPoint{
			Scenario:    s,
			PayloadSize: size,
			Jitter:      jitterSum / runsPerBar,
			Loss:        lossSum / runsPerBar,
		})
	}
	return out
}

// RunFig8 sweeps packet sizes for the five Table I scenarios.
func RunFig8(p Params) [][]JitterPoint {
	out := make([][]JitterPoint, 0, len(TableScenarios))
	for _, s := range TableScenarios {
		out = append(out, RunJitter(p, s, nil))
	}
	return out
}
