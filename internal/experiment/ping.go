package experiment

import (
	"time"

	"netco/internal/metrics"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// PingScenarioResult is one scenario's Fig. 7 bar: the average of
// PingSeqs sequences of PingCount consecutive ICMP request/response
// cycles ("each bar represents the average of three sequences of 50
// consecutive ICMP request response cycles", §V-B).
type PingScenarioResult struct {
	Scenario Scenario
	AvgRTT   time.Duration
	MinRTT   time.Duration
	MaxRTT   time.Duration
	Sent     int
	Received int
}

// RunPing measures echo RTT for one scenario.
func RunPing(p Params, s Scenario) PingScenarioResult {
	return runPing(p, s, func() *topo.Testbed { return p.Build(s) })
}

// runPingOn is RunPing against an arbitrary testbed builder; it returns
// just the average RTT (used by parameter sweeps).
func runPingOn(p Params, build func() *topo.Testbed) time.Duration {
	return runPing(p, 0, build).AvgRTT
}

func runPing(p Params, s Scenario, build func() *topo.Testbed) PingScenarioResult {
	res := PingScenarioResult{Scenario: s}
	var all metrics.Summary
	for seq := 0; seq < p.PingSeqs; seq++ {
		tb := build()
		tb.Runner.RunFor(50 * time.Millisecond)
		pinger := traffic.NewPinger(tb.H1, tb.H2.Endpoint(0), traffic.PingerConfig{
			Count:    p.PingCount,
			Interval: 10 * time.Millisecond,
			ID:       uint16(seq + 1),
		})
		var got traffic.PingResult
		pinger.Run(func(r traffic.PingResult) { got = r })
		tb.Runner.RunFor(time.Duration(p.PingCount)*10*time.Millisecond + 2*time.Second)
		res.Sent += got.Sent
		res.Received += got.Received
		if got.RTT.N() > 0 {
			all.Add(got.RTT.Mean())
			if res.MinRTT == 0 || time.Duration(got.RTT.Min()*float64(time.Second)) < res.MinRTT {
				res.MinRTT = time.Duration(got.RTT.Min() * float64(time.Second))
			}
			if d := time.Duration(got.RTT.Max() * float64(time.Second)); d > res.MaxRTT {
				res.MaxRTT = d
			}
		}
		tb.Close()
	}
	res.AvgRTT = all.MeanDuration()
	return res
}

// RunFig7 measures the five Table I scenarios.
func RunFig7(p Params) []PingScenarioResult {
	out := make([]PingScenarioResult, 0, len(TableScenarios))
	for _, s := range TableScenarios {
		out = append(out, RunPing(p, s))
	}
	return out
}
