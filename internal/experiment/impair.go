package experiment

import (
	"time"

	"netco/internal/netem"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// ImpairParams is the calibration's impairment surface: the netem
// vocabulary (correlated loss, Gilbert-Elliott loss, corruption,
// duplication, jitter reordering) expressed as percentages so CLI grids
// read like tc netem command lines. Zero values disable each stage; the
// whole struct zero means clean trunks and the exact pre-impairment
// digests.
type ImpairParams struct {
	// LossPct is i.i.d. (or, with LossCorrPct > 0, correlated) loss on
	// every trunk, in percent.
	LossPct     float64
	LossCorrPct float64
	// GE enables a Gilbert-Elliott loss stage when GE.PGoodBad > 0.
	GE netem.LossGE
	// CorruptPct flips one bit of that percentage of trunk packets.
	CorruptPct float64
	// DupPct duplicates that percentage of trunk packets.
	DupPct float64
	// ReorderPct of packets gain a uniform extra delay in
	// (0, ReorderJitter]; both must be positive to enable the stage.
	ReorderPct    float64
	ReorderJitter time.Duration
}

// Enabled reports whether any impairment stage is configured.
func (ip ImpairParams) Enabled() bool {
	return ip.LossPct > 0 || ip.GE.PGoodBad > 0 || ip.CorruptPct > 0 ||
		ip.DupPct > 0 || (ip.ReorderPct > 0 && ip.ReorderJitter > 0)
}

// Spec expands the knobs into the netem pipeline recipe, seeded with the
// run seed. Stage order is fixed — loss models first (a lost packet
// consumes no corruption/duplication/jitter draws), then corruption,
// duplication, reordering — so a given knob combination always means the
// same pipeline.
func (ip ImpairParams) Spec(seed int64) *netem.ImpairSpec {
	if !ip.Enabled() {
		return nil
	}
	spec := &netem.ImpairSpec{Seed: seed}
	if ip.LossPct > 0 {
		spec.Stages = append(spec.Stages, netem.Loss{P: ip.LossPct / 100, Corr: ip.LossCorrPct / 100})
	}
	if ip.GE.PGoodBad > 0 {
		spec.Stages = append(spec.Stages, ip.GE)
	}
	if ip.CorruptPct > 0 {
		spec.Stages = append(spec.Stages, netem.Corrupt{P: ip.CorruptPct / 100})
	}
	if ip.DupPct > 0 {
		spec.Stages = append(spec.Stages, netem.Duplicate{P: ip.DupPct / 100})
	}
	if ip.ReorderPct > 0 && ip.ReorderJitter > 0 {
		spec.Stages = append(spec.Stages, netem.Reorder{P: ip.ReorderPct / 100, Jitter: ip.ReorderJitter})
	}
	return spec
}

// ImpairCounters aggregates the per-stage LinkStats counters across a
// testbed's links, both directions.
type ImpairCounters struct {
	ImpairDrops uint64 `json:"impair_drops"`
	Corrupted   uint64 `json:"corrupted"`
	Duplicated  uint64 `json:"duplicated"`
	Reordered   uint64 `json:"reordered"`
}

// CollectImpair sums the impairment counters over every link of the
// network. Call after the run completes (Stats is a teardown-time API).
func CollectImpair(n *netem.Network) ImpairCounters {
	var c ImpairCounters
	for _, l := range n.Links() {
		for end := 0; end < 2; end++ {
			st := l.Stats(end)
			c.ImpairDrops += st.ImpairDrops
			c.Corrupted += st.Corrupted
			c.Duplicated += st.Duplicated
			c.Reordered += st.Reordered
		}
	}
	return c
}

// ImpairResult is one impairment run's outcome: UDP delivery through the
// configured noise plus the pipeline's own accounting, which is what the
// goodput-surface sweeps chart.
type ImpairResult struct {
	Scenario Scenario
	// Sent/Delivered/Dups count the measurement stream's datagrams.
	// Dups includes both impairment duplicates that survived to the sink
	// and combiner release duplicates — the collision the duplication
	// grid is designed to expose.
	Sent, Delivered, Dups uint64
	DeliveredFrac         float64
	GoodputMbps           float64
	Counters              ImpairCounters
}

// RunImpair measures UDP delivery across the scenario's fabric with the
// Params impairment pipeline on every trunk: the goodput-vs-noise unit
// behind the impairment sweeps. The stream and window match RunChaos so
// the two kinds' delivered fractions compare directly.
func RunImpair(p Params, s Scenario) ImpairResult {
	tb := p.Build(s)
	defer tb.Close()

	window := p.UDPDuration
	res := ImpairResult{Scenario: s}

	sink := traffic.NewUDPSink(tb.H2, 5001)
	src := traffic.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate:        50e6,
		PayloadSize: 1000,
	})

	tb.Runner.RunFor(chaosSettle)
	src.Start()
	tb.Runner.RunFor(window)
	src.Stop()
	tb.Runner.RunFor(2 * p.CompareHold) // drain in-flight copies

	st := sink.Stats()
	res.Sent = src.Sent
	res.Delivered = st.Unique
	res.Dups = st.Duplicates
	if src.Sent > 0 {
		res.DeliveredFrac = float64(st.Unique) / float64(src.Sent)
	}
	res.GoodputMbps = float64(st.Unique) * 1000 * 8 / window.Seconds() / 1e6
	res.Counters = collectTestbedImpair(tb)
	return res
}

// collectTestbedImpair gathers the counters once workers are quiesced.
func collectTestbedImpair(tb *topo.Testbed) ImpairCounters {
	return CollectImpair(tb.Net)
}
