// Package trace provides packet capture for the emulated network: a
// bounded ring of per-hop transmit records with filtering and text dumps.
// It is the tcpdump stand-in behind the §VI case study's screening
// ("using tcpdump to monitor packet arrivals on all interfaces adjacent
// to the benign path").
package trace

import (
	"fmt"
	"io"
	"time"

	"netco/internal/packet"
	"netco/internal/switching"
)

// Record is one captured transmission.
type Record struct {
	At   time.Duration
	Node string
	Port int
	Pkt  *packet.Packet
}

// String renders the record tcpdump-style.
func (r Record) String() string {
	return fmt.Sprintf("%12v %s:%d %s", r.At, r.Node, r.Port, r.Pkt)
}

// Tracer captures switch transmissions into a bounded ring buffer.
type Tracer struct {
	capacity int
	ring     []Record
	next     int
	wrapped  bool
	total    uint64

	filter func(*packet.Packet) bool
}

// New creates a tracer retaining up to capacity records (default 4096).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{capacity: capacity, ring: make([]Record, 0, capacity)}
}

// SetFilter restricts capture to packets the predicate accepts.
func (t *Tracer) SetFilter(fn func(*packet.Packet) bool) { t.filter = fn }

// Attach captures every transmission of sw, chaining any existing
// OnTransmit hook.
func (t *Tracer) Attach(sw *switching.Switch) {
	prev := sw.OnTransmit
	name := sw.Name()
	sched := sw.Scheduler()
	sw.OnTransmit = func(outPort int, pkt *packet.Packet) {
		if prev != nil {
			prev(outPort, pkt)
		}
		t.Capture(sched.Now(), name, outPort, pkt)
	}
}

// Capture records one transmission directly (for non-switch nodes).
func (t *Tracer) Capture(at time.Duration, node string, port int, pkt *packet.Packet) {
	if t.filter != nil && !t.filter(pkt) {
		return
	}
	t.total++
	rec := Record{At: at, Node: node, Port: port, Pkt: pkt}
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, rec)
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % t.capacity
	t.wrapped = true
}

// Total returns how many records matched the filter (including ones the
// ring has since evicted).
func (t *Tracer) Total() uint64 { return t.total }

// Records returns the retained records, oldest first.
func (t *Tracer) Records() []Record {
	if !t.wrapped {
		out := make([]Record, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Record, 0, t.capacity)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Matching returns retained records accepted by the predicate.
func (t *Tracer) Matching(fn func(Record) bool) []Record {
	var out []Record
	for _, r := range t.Records() {
		if fn(r) {
			out = append(out, r)
		}
	}
	return out
}

// Dump writes the retained records, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, r := range t.Records() {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}
