// Package trace provides packet capture for the emulated network: a
// bounded ring of per-hop transmit records with filtering and text dumps.
// It is the tcpdump stand-in behind the §VI case study's screening
// ("using tcpdump to monitor packet arrivals on all interfaces adjacent
// to the benign path").
package trace

import (
	"fmt"
	"io"
	"time"

	"netco/internal/packet"
	"netco/internal/switching"
)

// Snapshot is a by-value copy of a captured frame's identifying fields.
// The tracer snapshots at capture time because frames are pooled: the
// caller's *packet.Packet may be recycled — zeroed and rewritten as a
// different packet — as soon as the receiving node consumes it, which
// would retroactively corrupt any record that kept the pointer.
type Snapshot struct {
	Src, Dst  packet.MAC
	EtherType uint16

	// HasVLAN/VLANID mirror an 802.1Q tag when present.
	HasVLAN bool
	VLANID  uint16

	// HasIP gates the L3/L4 fields below.
	HasIP        bool
	SrcIP, DstIP packet.IPAddr
	Proto        uint8

	// TCP/UDP ports, and the TCP sequencing fields traces key on.
	SrcPort, DstPort uint16
	TCPSeq, TCPAck   uint32
	TCPFlags         uint8

	// ICMP echo identification.
	ICMPType, ICMPCode uint8
	ICMPID, ICMPSeq    uint16

	// WireLen is the marshalled frame length; UID the simulation-wide
	// logical packet id (identical across combiner copies of one packet).
	WireLen int
	UID     uint64
}

// Snap copies the fields a record needs out of a live frame.
func Snap(p *packet.Packet) Snapshot {
	s := Snapshot{
		Src:       p.Eth.Src,
		Dst:       p.Eth.Dst,
		EtherType: p.Eth.EtherType,
		WireLen:   p.WireLen(),
		UID:       p.Meta.UID,
	}
	if p.Eth.VLAN != nil {
		s.HasVLAN = true
		s.VLANID = p.Eth.VLAN.VID
	}
	if p.IP != nil {
		s.HasIP = true
		s.SrcIP = p.IP.Src
		s.DstIP = p.IP.Dst
		s.Proto = p.IP.Protocol
	}
	switch {
	case p.TCP != nil:
		s.SrcPort, s.DstPort = p.TCP.SrcPort, p.TCP.DstPort
		s.TCPSeq, s.TCPAck, s.TCPFlags = p.TCP.Seq, p.TCP.Ack, p.TCP.Flags
	case p.UDP != nil:
		s.SrcPort, s.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	case p.ICMP != nil:
		s.ICMPType, s.ICMPCode = p.ICMP.Type, p.ICMP.Code
		s.ICMPID, s.ICMPSeq = p.ICMP.ID, p.ICMP.Seq
	}
	return s
}

// String renders the snapshot in the same compact form as packet.Packet.
func (s Snapshot) String() string {
	var b []byte
	b = fmt.Appendf(b, "%s>%s", s.Src, s.Dst)
	if s.HasVLAN {
		b = fmt.Appendf(b, " vlan=%d", s.VLANID)
	}
	if s.HasIP {
		b = fmt.Appendf(b, " %s>%s", s.SrcIP, s.DstIP)
		switch s.Proto {
		case packet.ProtoTCP:
			b = fmt.Appendf(b, " tcp %d>%d seq=%d ack=%d flags=%#x",
				s.SrcPort, s.DstPort, s.TCPSeq, s.TCPAck, s.TCPFlags)
		case packet.ProtoUDP:
			b = fmt.Appendf(b, " udp %d>%d", s.SrcPort, s.DstPort)
		case packet.ProtoICMP:
			b = fmt.Appendf(b, " icmp type=%d id=%d seq=%d", s.ICMPType, s.ICMPID, s.ICMPSeq)
		}
	}
	b = fmt.Appendf(b, " len=%d", s.WireLen)
	return string(b)
}

// Record is one captured transmission. Pkt is a snapshot, not a pointer:
// records stay valid however the captured frame is recycled afterwards.
type Record struct {
	At   time.Duration
	Node string
	Port int
	Pkt  Snapshot
}

// String renders the record tcpdump-style.
func (r Record) String() string {
	return fmt.Sprintf("%12v %s:%d %s", r.At, r.Node, r.Port, r.Pkt)
}

// Tracer captures switch transmissions into a bounded ring buffer.
type Tracer struct {
	capacity int
	ring     []Record
	next     int
	wrapped  bool
	total    uint64

	filter func(*packet.Packet) bool
}

// New creates a tracer retaining up to capacity records (default 4096).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{capacity: capacity, ring: make([]Record, 0, capacity)}
}

// SetFilter restricts capture to packets the predicate accepts.
func (t *Tracer) SetFilter(fn func(*packet.Packet) bool) { t.filter = fn }

// Attach captures every transmission of sw, chaining any existing
// OnTransmit hook.
func (t *Tracer) Attach(sw *switching.Switch) {
	prev := sw.OnTransmit
	name := sw.Name()
	sched := sw.Scheduler()
	sw.OnTransmit = func(outPort int, pkt *packet.Packet) {
		if prev != nil {
			prev(outPort, pkt)
		}
		t.Capture(sched.Now(), name, outPort, pkt)
	}
}

// Capture records one transmission directly (for non-switch nodes). The
// record copies everything it needs out of pkt before returning, so the
// caller remains free to recycle the frame.
func (t *Tracer) Capture(at time.Duration, node string, port int, pkt *packet.Packet) {
	if t.filter != nil && !t.filter(pkt) {
		return
	}
	t.total++
	rec := Record{At: at, Node: node, Port: port, Pkt: Snap(pkt)}
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, rec)
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % t.capacity
	t.wrapped = true
}

// Total returns how many records matched the filter (including ones the
// ring has since evicted).
func (t *Tracer) Total() uint64 { return t.total }

// Records returns the retained records, oldest first.
func (t *Tracer) Records() []Record {
	if !t.wrapped {
		out := make([]Record, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Record, 0, t.capacity)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Matching returns retained records accepted by the predicate.
func (t *Tracer) Matching(fn func(Record) bool) []Record {
	var out []Record
	for _, r := range t.Records() {
		if fn(r) {
			out = append(out, r)
		}
	}
	return out
}

// Dump writes the retained records, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, r := range t.Records() {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}
