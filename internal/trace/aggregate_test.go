package trace_test

import (
	"math"
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/trace"
	"netco/internal/traffic"
)

// TestAggregatorMatchesTracerStatistics runs the same packet stream
// through the per-record Tracer and the streaming Aggregator and checks
// the aggregate reproduces the record-derived statistics within the
// sketch's relative-error bound.
func TestAggregatorMatchesTracerStatistics(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw"})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
	net.Add(sw)
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, 0, sw, 0, netem.LinkConfig{Bandwidth: 100e6, Delay: time.Microsecond})
	net.Connect(h2, 0, sw, 1, netem.LinkConfig{Bandwidth: 100e6, Delay: time.Microsecond})
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 1,
		Match:    openflow.MatchAll().WithDlDst(h2.MAC()),
		Actions:  []openflow.Action{openflow.Output(1)},
	})

	tr := trace.New(256)
	tr.Attach(sw)
	agg := trace.NewAggregator()
	agg.Attach(sw) // chained on the same switch

	src := traffic.NewUDPSource(h1, 5000, h2.Endpoint(6000),
		traffic.UDPSourceConfig{Rate: 5e6, PayloadSize: 700})
	traffic.NewUDPSink(h2, 6000)
	src.Start()
	sched.RunFor(100 * time.Millisecond)
	src.Stop()
	sched.Run()

	if agg.Total() == 0 || agg.Total() != tr.Total() {
		t.Fatalf("capture counts diverged: aggregator %d, tracer %d", agg.Total(), tr.Total())
	}

	recs := tr.Records()
	var sum, min, max float64
	min = math.Inf(1)
	for _, r := range recs {
		v := float64(r.Pkt.WireLen)
		sum += v
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	exactMean := sum / float64(len(recs))

	wire := agg.WireLen()
	if wire.N() != uint64(len(recs)) {
		t.Fatalf("wire sketch n=%d, want %d", wire.N(), len(recs))
	}
	if wire.Min() != min || wire.Max() != max {
		t.Fatalf("sketch min/max %v/%v, want %v/%v", wire.Min(), wire.Max(), min, max)
	}
	if math.Abs(wire.Mean()-exactMean) > 1e-9*exactMean {
		t.Fatalf("sketch mean %v, want %v", wire.Mean(), exactMean)
	}
	// Quantiles land within the sketch's 1% relative-error bound.
	if q := wire.Quantile(0.5); math.Abs(q-exactMean) > 0.02*exactMean {
		// All frames are equal-sized here, so the median must be close
		// to the mean.
		t.Fatalf("median %v far from %v", q, exactMean)
	}
	gap := agg.Gap()
	if gap.N() != uint64(len(recs))-1 {
		t.Fatalf("gap sketch n=%d, want %d", gap.N(), len(recs)-1)
	}
}

func TestAggregatorFilterAndMerge(t *testing.T) {
	a := trace.NewAggregator()
	a.SetFilter(func(p *packet.Packet) bool { return p.UDP != nil && p.UDP.DstPort == 7 })
	keep := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 7},
		make([]byte, 100))
	drop := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 8},
		make([]byte, 100))
	a.Capture(time.Millisecond, keep)
	a.Capture(2*time.Millisecond, drop)
	a.Capture(3*time.Millisecond, keep)
	if a.Total() != 2 {
		t.Fatalf("filtered total = %d, want 2", a.Total())
	}
	// The filtered-out capture must not contribute a gap either: the
	// one recorded gap spans 1 ms → 3 ms.
	if g := a.Gap(); g.N() != 1 || math.Abs(g.Mean()-2000) > 25 {
		t.Fatalf("gap sketch n=%d mean=%v, want 1 gap of ≈2000 µs", g.N(), g.Mean())
	}

	b := trace.NewAggregator()
	b.Capture(time.Millisecond, keep)
	b.Merge(a)
	bw := b.WireLen()
	if b.Total() != 3 || bw.N() != 3 {
		t.Fatalf("merge: total=%d wire n=%d, want 3/3", b.Total(), bw.N())
	}
	// Merging must not alias the source's sketches.
	b.Capture(4*time.Millisecond, keep)
	aw := a.WireLen()
	if aw.N() != 2 {
		t.Fatalf("merge aliased source sketch: n=%d", aw.N())
	}
}
