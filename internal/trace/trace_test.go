package trace_test

import (
	"strings"
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/trace"
	"netco/internal/traffic"
)

func testFrame(n uint32) *packet.Packet {
	return packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1},
		packet.Endpoint{MAC: packet.HostMAC(n), IP: packet.HostIP(n), Port: 2},
		[]byte("x"),
	)
}

func TestTracerCapturesSwitchTransmissions(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw"})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
	net.Add(sw)
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, 0, sw, 0, netem.LinkConfig{})
	net.Connect(h2, 0, sw, 1, netem.LinkConfig{})
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 1,
		Match:    openflow.MatchAll().WithDlDst(h2.MAC()),
		Actions:  []openflow.Action{openflow.Output(1)},
	})

	tr := trace.New(16)
	tr.Attach(sw)
	for i := 0; i < 5; i++ {
		h1.Send(testFrame(2))
	}
	sched.Run()

	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
	recs := tr.Records()
	if len(recs) != 5 {
		t.Fatalf("retained %d, want 5", len(recs))
	}
	for _, r := range recs {
		if r.Node != "sw" || r.Port != 1 {
			t.Fatalf("record %+v, want sw:1", r)
		}
	}
}

func TestTracerChainsExistingHook(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw"})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
	net.Add(sw)
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, 0, sw, 0, netem.LinkConfig{})
	net.Connect(h2, 0, sw, 1, netem.LinkConfig{})
	sw.Table().Add(&openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll(), Actions: []openflow.Action{openflow.Output(1)}})

	prevCalls := 0
	sw.OnTransmit = func(int, *packet.Packet) { prevCalls++ }
	tr := trace.New(0)
	tr.Attach(sw)
	h1.Send(testFrame(2))
	sched.Run()
	if prevCalls != 1 || tr.Total() != 1 {
		t.Fatalf("prev=%d traced=%d, want 1/1", prevCalls, tr.Total())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := trace.New(4)
	for i := 0; i < 10; i++ {
		tr.Capture(time.Duration(i), "n", i, testFrame(2))
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want 4", len(recs))
	}
	// Oldest-first: ports 6,7,8,9.
	for i, r := range recs {
		if r.Port != 6+i {
			t.Fatalf("record %d port %d, want %d", i, r.Port, 6+i)
		}
	}
}

func TestTracerFilterAndMatching(t *testing.T) {
	tr := trace.New(16)
	tr.SetFilter(func(p *packet.Packet) bool { return p.Eth.Dst == packet.HostMAC(7) })
	tr.Capture(0, "n", 0, testFrame(7))
	tr.Capture(0, "n", 1, testFrame(8))
	tr.Capture(0, "n", 2, testFrame(7))
	if tr.Total() != 2 {
		t.Fatalf("Total = %d, want 2 (filtered)", tr.Total())
	}
	m := tr.Matching(func(r trace.Record) bool { return r.Port == 2 })
	if len(m) != 1 {
		t.Fatalf("Matching = %d, want 1", len(m))
	}
}

// Regression: Capture must snapshot the frame, not retain the pointer.
// With pooled frames, the captured *packet.Packet is zeroed and rewritten
// as a different packet the moment the consumer recycles it; a tracer
// that keeps the pointer would see its records rewritten after the fact.
func TestTracerRecordSurvivesFrameRecycle(t *testing.T) {
	var pool packet.Pool
	p := pool.Get()
	p.Eth.Src = packet.HostMAC(1)
	p.Eth.Dst = packet.HostMAC(2)
	p.Eth.EtherType = packet.EtherTypeIPv4
	p.IP = &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: packet.HostIP(1), Dst: packet.HostIP(2),
	}
	p.UDP = &packet.UDP{SrcPort: 1111, DstPort: 2222}
	p.Payload = append(p.Payload, []byte("payload")...)
	p.Meta.UID = 42

	tr := trace.New(8)
	tr.Capture(time.Millisecond, "sw", 3, p)
	want := tr.Records()[0]

	// Consumer finishes with the frame; the pool hands it back out as a
	// completely different packet.
	packet.Recycle(p)
	q := pool.Get()
	if q != p {
		t.Fatalf("pool did not reuse the frame; test needs the aliasing case")
	}
	q.Eth.Src = packet.HostMAC(9)
	q.Eth.Dst = packet.HostMAC(10)
	q.IP = &packet.IPv4{TTL: 1, Protocol: packet.ProtoICMP,
		Src: packet.HostIP(9), Dst: packet.HostIP(10)}
	q.ICMP = &packet.ICMP{Type: 8, ID: 7, Seq: 1}
	q.Meta.UID = 1000

	got := tr.Records()[0]
	if got != want {
		t.Fatalf("record changed after frame recycle:\n got %v\nwant %v", got, want)
	}
	if got.Pkt.SrcPort != 1111 || got.Pkt.DstPort != 2222 || got.Pkt.UID != 42 {
		t.Fatalf("record lost captured fields: %+v", got.Pkt)
	}
	if !strings.Contains(got.String(), "udp") {
		t.Fatalf("record no longer renders as the captured UDP frame: %v", got)
	}
}

// Wraparound: once capacity is exceeded, Records stays oldest-first,
// Total keeps counting evicted records, and the filter governs what
// enters the ring (not what is evicted).
func TestTracerWraparoundOrderTotalsAndFilter(t *testing.T) {
	tr := trace.New(3)
	tr.SetFilter(func(p *packet.Packet) bool { return p.Eth.Dst != packet.HostMAC(13) })

	for i := 0; i < 10; i++ {
		dst := uint32(2)
		if i%2 == 1 {
			dst = 13 // filtered out
		}
		tr.Capture(time.Duration(i)*time.Millisecond, "n", i, testFrame(dst))
	}

	// Even i = 0,2,4,6,8 pass the filter: total 5, ring keeps last 3.
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5 (filter applies before counting)", tr.Total())
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want capacity 3", len(recs))
	}
	wantPorts := []int{4, 6, 8}
	for i, r := range recs {
		if r.Port != wantPorts[i] {
			t.Fatalf("record %d port = %d, want %d (oldest first)", i, r.Port, wantPorts[i])
		}
		if r.At != time.Duration(wantPorts[i])*time.Millisecond {
			t.Fatalf("record %d At = %v, want %dms", i, r.At, wantPorts[i])
		}
	}

	// Matching operates on the retained window only.
	m := tr.Matching(func(r trace.Record) bool { return r.Port >= 6 })
	if len(m) != 2 {
		t.Fatalf("Matching = %d, want 2", len(m))
	}

	// Exactly at a multiple of capacity the ring is full and still
	// oldest-first (next == 0 edge).
	tr2 := trace.New(4)
	for i := 0; i < 8; i++ {
		tr2.Capture(0, "n", i, testFrame(2))
	}
	for i, r := range tr2.Records() {
		if r.Port != 4+i {
			t.Fatalf("full-wrap record %d port = %d, want %d", i, r.Port, 4+i)
		}
	}
}

func TestTracerDump(t *testing.T) {
	tr := trace.New(8)
	tr.Capture(time.Millisecond, "core0", 3, testFrame(2))
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"core0:3", "udp", "1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump %q missing %q", out, want)
		}
	}
}
