package trace

import (
	"time"

	"netco/internal/metrics"
	"netco/internal/packet"
	"netco/internal/switching"
)

// Aggregator is the capture mode for fluid-dominated paths: instead of
// retaining per-packet records (whose volume a million-flow hybrid
// scenario makes both unaffordable and mostly meaningless — fluid flows
// have no packets to record), it folds every captured transmission into
// mergeable log-bucketed histogram sketches (metrics.Hist). The
// sketches plug straight into the experiment Result/Summary/digest
// machinery: they marshal deterministically and merge exactly across
// runs and partitions.
type Aggregator struct {
	wire metrics.Hist // frame wire length, bytes
	gap  metrics.Hist // spacing between consecutive captures, µs

	last    time.Duration
	hasLast bool
	total   uint64

	filter func(*packet.Packet) bool
}

// NewAggregator creates an empty streaming capture.
func NewAggregator() *Aggregator { return &Aggregator{} }

// SetFilter restricts capture to packets the predicate accepts.
func (a *Aggregator) SetFilter(fn func(*packet.Packet) bool) { a.filter = fn }

// Attach folds every transmission of sw into the sketches, chaining any
// existing OnTransmit hook (a Tracer and an Aggregator can share a
// switch).
func (a *Aggregator) Attach(sw *switching.Switch) {
	prev := sw.OnTransmit
	sched := sw.Scheduler()
	sw.OnTransmit = func(outPort int, pkt *packet.Packet) {
		if prev != nil {
			prev(outPort, pkt)
		}
		a.Capture(sched.Now(), pkt)
	}
}

// Capture folds one transmission. Unlike Tracer.Capture it keeps
// nothing per-packet — O(1) memory however long the run.
func (a *Aggregator) Capture(at time.Duration, pkt *packet.Packet) {
	if a.filter != nil && !a.filter(pkt) {
		return
	}
	a.total++
	a.wire.Add(float64(pkt.WireLen()))
	if a.hasLast {
		a.gap.Add(float64(at-a.last) / float64(time.Microsecond))
	}
	a.last = at
	a.hasLast = true
}

// Total returns how many transmissions matched the filter.
func (a *Aggregator) Total() uint64 { return a.total }

// WireLen returns an independent copy of the wire-length sketch.
func (a *Aggregator) WireLen() metrics.Hist {
	var out metrics.Hist
	out.Merge(a.wire)
	return out
}

// Gap returns an independent copy of the inter-capture-gap sketch (µs).
func (a *Aggregator) Gap() metrics.Hist {
	var out metrics.Hist
	out.Merge(a.gap)
	return out
}

// Merge folds another aggregator's sketches into this one (gap
// continuity across the seam is not reconstructed — the seam gap is
// unknowable after the fact).
func (a *Aggregator) Merge(other *Aggregator) {
	a.total += other.total
	a.wire.Merge(other.wire)
	a.gap.Merge(other.gap)
}
