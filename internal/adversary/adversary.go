// Package adversary implements the attacker model of §II: compromised
// routers that ignore their installed flow rules and instead reroute,
// mirror, modify, drop or mass-generate packets. Behaviors attach to an
// ordinary switching.Switch and intercept its forwarding decisions, so a
// "malicious router" is exactly an honest router plus a behavior — the
// paper's threat model, where hardware is subverted but indistinguishable
// from the outside.
//
// Behaviors compose with Chain, and each records what it did so tests and
// the §VI case study can assert on attack activity.
package adversary

import (
	"bytes"
	"time"

	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
)

// Reroute forwards matching packets to the wrong port (§II attack 1),
// e.g. to bypass a firewall or break a logical isolation domain.
type Reroute struct {
	// Match selects victim packets (zero value selects nothing; use
	// MatchAll() for everything).
	Match openflow.Match
	// ToPort is where victims are misdirected.
	ToPort uint16

	// Rerouted counts victims.
	Rerouted uint64
}

var _ switching.Behavior = (*Reroute)(nil)

// Attach implements switching.Behavior.
func (r *Reroute) Attach(sw *switching.Switch) {}

// Forward implements switching.Behavior.
func (r *Reroute) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	if !r.Match.Matches(uint16(inPort), pkt) {
		return pkt, honest
	}
	r.Rerouted++
	return pkt, []openflow.Action{openflow.Output(r.ToPort)}
}

// Mirror duplicates matching packets to an extra port while still
// forwarding the original (§II attack 2) — the exfiltration primitive of
// the §VI case study.
type Mirror struct {
	// Match selects victim packets.
	Match openflow.Match
	// ToPort receives the extra copy.
	ToPort uint16

	// Mirrored counts extra copies produced.
	Mirrored uint64
}

var _ switching.Behavior = (*Mirror)(nil)

// Attach implements switching.Behavior.
func (m *Mirror) Attach(sw *switching.Switch) {}

// Forward implements switching.Behavior.
func (m *Mirror) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	if !m.Match.Matches(uint16(inPort), pkt) {
		return pkt, honest
	}
	m.Mirrored++
	// Mirror first so later honest header rewrites cannot leak into the
	// copy ordering semantics.
	actions := make([]openflow.Action, 0, len(honest)+1)
	actions = append(actions, openflow.Output(m.ToPort))
	actions = append(actions, honest...)
	return pkt, actions
}

// Drop silently discards matching packets (§II attacks 3/4: deletion as a
// denial-of-service vector).
type Drop struct {
	// Match selects victim packets.
	Match openflow.Match
	// Probability drops only this fraction (1.0 when zero and Always is
	// set via Match); use Rng for reproducibility when < 1.
	Probability float64
	// Rng drives probabilistic dropping; nil means drop always.
	Rng *sim.RNG

	// Dropped counts victims.
	Dropped uint64
}

var _ switching.Behavior = (*Drop)(nil)

// Attach implements switching.Behavior.
func (d *Drop) Attach(sw *switching.Switch) {}

// Forward implements switching.Behavior.
func (d *Drop) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	if !d.Match.Matches(uint16(inPort), pkt) {
		return pkt, honest
	}
	if d.Rng != nil && d.Probability > 0 && d.Rng.Float64() >= d.Probability {
		return pkt, honest
	}
	d.Dropped++
	return pkt, nil
}

// Modify rewrites header fields of matching packets before forwarding
// them honestly (§II attack 3), e.g. "changing the VLAN field to break
// isolation domains".
type Modify struct {
	// Match selects victim packets.
	Match openflow.Match
	// Rewrite is the header actions applied to victims.
	Rewrite []openflow.Action

	// Modified counts victims.
	Modified uint64
}

var _ switching.Behavior = (*Modify)(nil)

// Attach implements switching.Behavior.
func (m *Modify) Attach(sw *switching.Switch) {}

// Forward implements switching.Behavior.
func (m *Modify) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	if !m.Match.Matches(uint16(inPort), pkt) {
		return pkt, honest
	}
	out := pkt.Clone()
	for _, a := range m.Rewrite {
		openflow.ApplyHeader(a, out)
	}
	if bytes.Equal(out.Marshal(), pkt.Marshal()) {
		// The rewrite did not touch this packet — e.g. a transport-port
		// rewrite on ICMP, which has no ports. An unaltered packet is not
		// a victim, so it must not count as attack activity.
		return pkt, honest
	}
	m.Modified++
	return out, honest
}

// Replay retransmits every matching packet n extra times — the
// duplication flavour of §II attack 2/4 that the compare's DoS case (§IV
// case 2) is designed to catch.
type Replay struct {
	// Match selects victim packets.
	Match openflow.Match
	// Extra is how many additional copies to emit.
	Extra int

	// Replayed counts extra copies.
	Replayed uint64
}

var _ switching.Behavior = (*Replay)(nil)

// Attach implements switching.Behavior.
func (r *Replay) Attach(sw *switching.Switch) {}

// Forward implements switching.Behavior.
func (r *Replay) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	if !r.Match.Matches(uint16(inPort), pkt) || len(honest) == 0 {
		return pkt, honest
	}
	actions := make([]openflow.Action, 0, len(honest)*(r.Extra+1))
	for i := 0; i <= r.Extra; i++ {
		actions = append(actions, honest...)
	}
	r.Replayed += uint64(r.Extra)
	return pkt, actions
}

// Flood mass-generates unsolicited packets out of a port (§II attack 4:
// "generate a very large number of packets in order to overload the
// network"). It starts when attached and stops after Duration (or with
// Stop).
type Flood struct {
	// OutPort is where generated packets are injected.
	OutPort int
	// Rate is packets per second.
	Rate float64
	// Template is cloned for every generated packet; its payload gets a
	// varying suffix when Vary is set so each packet is distinct.
	Template *packet.Packet
	// Vary makes every generated packet unique (distinct frames stress
	// the compare cache; identical frames trigger its DoS case).
	Vary bool
	// Duration bounds the flood (zero = until Stop).
	Duration time.Duration

	// Injected counts generated packets.
	Injected uint64

	sw      *switching.Switch
	timer   sim.Timer
	stopped bool
	seq     uint64
}

var _ switching.Behavior = (*Flood)(nil)

// Attach implements switching.Behavior: it starts the generator.
func (f *Flood) Attach(sw *switching.Switch) {
	f.sw = sw
	if f.Rate <= 0 || f.Template == nil {
		return
	}
	interval := time.Duration(float64(time.Second) / f.Rate)
	start := sw.Scheduler().Now()
	var tick func()
	tick = func() {
		if f.stopped {
			return
		}
		if f.Duration > 0 && sw.Scheduler().Now()-start >= f.Duration {
			return
		}
		pkt := f.Template.Clone()
		if f.Vary {
			f.seq++
			pkt.Payload = append(pkt.Payload, byte(f.seq), byte(f.seq>>8), byte(f.seq>>16), byte(f.seq>>24))
		}
		f.Injected++
		sw.InjectLocal(f.OutPort, pkt)
		f.timer = sw.Scheduler().After(interval, tick)
	}
	f.timer = sw.Scheduler().After(interval, tick)
}

// Stop halts the generator.
func (f *Flood) Stop() {
	f.stopped = true
	f.timer.Stop()
}

// Forward implements switching.Behavior: Flood leaves transit traffic
// untouched.
func (f *Flood) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	return pkt, honest
}

// Activity reports how many packets a behavior actually interfered with:
// the sum of its attack counters, recursing through Chain. A compromised
// router whose behavior never matched anything (Activity == 0) is
// indistinguishable from an honest one, which is exactly the distinction
// the harness's detection oracle needs.
func Activity(b switching.Behavior) uint64 {
	switch v := b.(type) {
	case *Reroute:
		return v.Rerouted
	case *Mirror:
		return v.Mirrored
	case *Drop:
		return v.Dropped
	case *Modify:
		return v.Modified
	case *Replay:
		return v.Replayed
	case *Flood:
		return v.Injected
	case Chain:
		var total uint64
		for _, link := range v {
			total += Activity(link)
		}
		return total
	default:
		return 0
	}
}

// Chain composes behaviors: each link sees the packet/actions produced by
// the previous one. A nil action list short-circuits (the packet is
// dropped).
type Chain []switching.Behavior

var _ switching.Behavior = (Chain)(nil)

// Attach implements switching.Behavior.
func (c Chain) Attach(sw *switching.Switch) {
	for _, b := range c {
		b.Attach(sw)
	}
}

// Forward implements switching.Behavior.
func (c Chain) Forward(inPort int, pkt *packet.Packet, honest []openflow.Action) (*packet.Packet, []openflow.Action) {
	out, actions := pkt, honest
	for _, b := range c {
		out, actions = b.Forward(inPort, out, actions)
		if actions == nil {
			return out, nil
		}
	}
	return out, actions
}
