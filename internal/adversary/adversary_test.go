package adversary

import (
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
)

type sinkNode struct {
	name  string
	ports netem.Ports
	got   []*packet.Packet
}

func (s *sinkNode) Name() string        { return s.name }
func (s *sinkNode) Ports() *netem.Ports { return &s.ports }
func (s *sinkNode) Receive(port int, pkt *packet.Packet) {
	s.got = append(s.got, pkt)
}

// rig: in --sw-- out0/out1, flow rule forwards dst HostMAC(2) to port 1.
func rig(t *testing.T, b switching.Behavior) (*sim.Scheduler, *sinkNode, *sinkNode, *sinkNode) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	sw := switching.New(sched, switching.Config{Name: "sw"})
	in := &sinkNode{name: "in"}
	out0 := &sinkNode{name: "out0"}
	out1 := &sinkNode{name: "out1"}
	net.Add(sw)
	net.Add(in)
	net.Add(out0)
	net.Add(out1)
	net.Connect(in, 0, sw, 0, netem.LinkConfig{})
	net.Connect(out0, 0, sw, 1, netem.LinkConfig{})
	net.Connect(out1, 0, sw, 2, netem.LinkConfig{})
	sw.Table().Add(&openflow.FlowEntry{
		Priority: 10,
		Match:    openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
		Actions:  []openflow.Action{openflow.Output(1)},
	})
	if b != nil {
		sw.SetBehavior(b)
	}
	return sched, in, out0, out1
}

func victim() *packet.Packet {
	return packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2},
		[]byte("confidential"),
	)
}

func TestRerouteRedirects(t *testing.T) {
	b := &Reroute{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2)), ToPort: 2}
	sched, in, out0, out1 := rig(t, b)
	in.ports.Send(0, victim())
	sched.Run()
	if len(out0.got) != 0 {
		t.Fatal("victim still reached the honest port")
	}
	if len(out1.got) != 1 {
		t.Fatal("victim not rerouted")
	}
	if b.Rerouted != 1 {
		t.Fatalf("Rerouted = %d, want 1", b.Rerouted)
	}
}

func TestRerouteLeavesOthersAlone(t *testing.T) {
	b := &Reroute{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(9)), ToPort: 2}
	sched, in, out0, out1 := rig(t, b)
	in.ports.Send(0, victim())
	sched.Run()
	if len(out0.got) != 1 || len(out1.got) != 0 {
		t.Fatal("non-matching packet was affected")
	}
}

func TestMirrorDuplicates(t *testing.T) {
	b := &Mirror{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2)), ToPort: 2}
	sched, in, out0, out1 := rig(t, b)
	in.ports.Send(0, victim())
	sched.Run()
	if len(out0.got) != 1 {
		t.Fatal("original copy lost")
	}
	if len(out1.got) != 1 {
		t.Fatal("mirror copy missing")
	}
	if b.Mirrored != 1 {
		t.Fatalf("Mirrored = %d, want 1", b.Mirrored)
	}
}

func TestDropDiscards(t *testing.T) {
	b := &Drop{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2))}
	sched, in, out0, out1 := rig(t, b)
	in.ports.Send(0, victim())
	sched.Run()
	if len(out0.got)+len(out1.got) != 0 {
		t.Fatal("dropped packet delivered")
	}
	if b.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Dropped)
	}
}

func TestDropProbabilistic(t *testing.T) {
	b := &Drop{
		Match:       openflow.MatchAll(),
		Probability: 0.5,
		Rng:         sim.NewRNG(3),
	}
	sched, in, out0, _ := rig(t, b)
	for i := 0; i < 200; i++ {
		in.ports.Send(0, victim())
	}
	sched.Run()
	if b.Dropped < 60 || b.Dropped > 140 {
		t.Fatalf("Dropped = %d of 200 at p=0.5", b.Dropped)
	}
	if len(out0.got) != 200-int(b.Dropped) {
		t.Fatal("accounting mismatch")
	}
}

func TestModifyRewritesWithoutMutatingOriginal(t *testing.T) {
	b := &Modify{
		Match:   openflow.MatchAll(),
		Rewrite: []openflow.Action{openflow.SetVLANVID(666)},
	}
	sched, in, out0, _ := rig(t, b)
	orig := victim()
	in.ports.Send(0, orig)
	sched.Run()
	if len(out0.got) != 1 || out0.got[0].Eth.VLAN == nil || out0.got[0].Eth.VLAN.VID != 666 {
		t.Fatal("packet not rewritten")
	}
	if orig.Eth.VLAN != nil {
		t.Fatal("original packet mutated — immutability violated")
	}
}

func TestReplayEmitsExtraCopies(t *testing.T) {
	b := &Replay{Match: openflow.MatchAll(), Extra: 3}
	sched, in, out0, _ := rig(t, b)
	in.ports.Send(0, victim())
	sched.Run()
	if len(out0.got) != 4 {
		t.Fatalf("delivered %d copies, want 4", len(out0.got))
	}
	if b.Replayed != 3 {
		t.Fatalf("Replayed = %d, want 3", b.Replayed)
	}
}

func TestFloodGenerates(t *testing.T) {
	f := &Flood{
		OutPort:  1,
		Rate:     10000,
		Template: victim(),
		Vary:     true,
		Duration: 100 * time.Millisecond,
	}
	sched, _, out0, _ := rig(t, f)
	sched.RunUntil(200 * time.Millisecond)
	if f.Injected < 900 || f.Injected > 1100 {
		t.Fatalf("Injected = %d in 100ms at 10kpps, want ≈1000", f.Injected)
	}
	if uint64(len(out0.got)) != f.Injected {
		t.Fatalf("delivered %d of %d injected", len(out0.got), f.Injected)
	}
	// Vary makes frames distinct.
	if len(out0.got) > 1 {
		a := out0.got[0].Marshal()
		bts := out0.got[1].Marshal()
		if string(a) == string(bts) {
			t.Fatal("varied flood produced identical frames")
		}
	}
}

func TestFloodStop(t *testing.T) {
	f := &Flood{OutPort: 1, Rate: 10000, Template: victim()}
	sched, _, out0, _ := rig(t, f)
	sched.RunUntil(50 * time.Millisecond)
	f.Stop()
	n := len(out0.got)
	sched.RunUntil(200 * time.Millisecond)
	if len(out0.got) != n {
		t.Fatal("flood continued after Stop")
	}
}

func TestChainComposes(t *testing.T) {
	mirror := &Mirror{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2)), ToPort: 2}
	drop := &Drop{Match: openflow.MatchAll().WithNwProto(packet.ProtoICMP)}
	sched, in, out0, out1 := rig(t, Chain{mirror, drop})

	in.ports.Send(0, victim()) // UDP: mirrored, not dropped
	icmp := packet.NewICMPEcho(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1)},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2)},
		packet.ICMPEchoRequest, 1, 1, nil,
	)
	in.ports.Send(0, icmp) // ICMP: dropped by the second link
	sched.Run()

	if len(out0.got) != 1 {
		t.Fatalf("honest port got %d, want 1 (the UDP)", len(out0.got))
	}
	if len(out1.got) != 1 {
		t.Fatalf("mirror port got %d, want 1", len(out1.got))
	}
	if drop.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", drop.Dropped)
	}
}

func TestActivitySumsChainCounters(t *testing.T) {
	mirror := &Mirror{Mirrored: 3}
	drop := &Drop{Dropped: 2}
	inner := Chain{&Replay{Replayed: 4}, &Flood{Injected: 5}}
	if got := Activity(Chain{mirror, drop, inner}); got != 14 {
		t.Fatalf("Activity = %d, want 14", got)
	}
	if got := Activity(&Reroute{}); got != 0 {
		t.Fatalf("Activity of idle behavior = %d, want 0", got)
	}
	if got := Activity(&Modify{Modified: 7}); got != 7 {
		t.Fatalf("Activity = %d, want 7", got)
	}
}

func TestChainShortCircuitsOnDrop(t *testing.T) {
	drop := &Drop{Match: openflow.MatchAll()}
	mirror := &Mirror{Match: openflow.MatchAll(), ToPort: 2}
	sched, in, out0, out1 := rig(t, Chain{drop, mirror})
	in.ports.Send(0, victim())
	sched.Run()
	if len(out0.got)+len(out1.got) != 0 {
		t.Fatal("packet survived a drop earlier in the chain")
	}
	if mirror.Mirrored != 0 {
		t.Fatal("mirror ran after the packet was dropped")
	}
}

// Regression for a bug the scenario fuzzer surfaced: a transport-port
// rewrite matched against ICMP traffic changes nothing (ICMP has no
// ports), so the packet must pass through unaltered and must NOT count
// as a modification — phantom activity broke the harness detection
// oracle's accounting.
func TestModifyVacuousRewriteNotCounted(t *testing.T) {
	b := &Modify{
		Match:   openflow.MatchAll(),
		Rewrite: []openflow.Action{openflow.SetTpDst(9999)},
	}
	sched, in, out0, _ := rig(t, b)
	ping := packet.NewICMPEcho(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1)},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2)},
		packet.ICMPEchoRequest, 7, 1, []byte("abcd"),
	)
	want := ping.Marshal()
	in.ports.Send(0, ping)
	sched.Run()
	if b.Modified != 0 {
		t.Fatalf("Modified = %d for a rewrite that changed nothing, want 0", b.Modified)
	}
	if len(out0.got) != 1 {
		t.Fatalf("got %d packets, want 1", len(out0.got))
	}
	if got := out0.got[0].Marshal(); !bytesEqual(got, want) {
		t.Fatal("vacuously rewritten packet differs from original")
	}
	// A rewrite that does bite still counts.
	in.ports.Send(0, victim())
	sched.Run()
	if b.Modified != 1 {
		t.Fatalf("Modified = %d after a real rewrite, want 1", b.Modified)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
