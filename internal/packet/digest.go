package packet

import (
	"crypto/sha256"
)

// Digest is a fixed-size fingerprint of a frame, used by the compare
// element to bucket candidate copies before byte-exact verification.
type Digest [sha256.Size]byte

// DigestBytes fingerprints a wire-form frame.
func DigestBytes(b []byte) Digest {
	return sha256.Sum256(b)
}

// FNV-1a constants (the 64-bit variant of hash/fnv, inlined so the hot
// path neither allocates a hash.Hash64 nor calls through an interface).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// FastKey is a cheap 64-bit bucketing key over a frame. The compare uses it
// as the map key and then confirms candidates byte-for-byte, so FNV
// collisions cost a comparison, never correctness. The output is identical
// to hash/fnv's New64a over the same bytes.
func FastKey(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// fnvBytes folds a byte slice into a running FNV-1a state.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// fnvByte folds one byte into a running FNV-1a state.
func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// fnv16 folds a big-endian uint16 into a running FNV-1a state.
func fnv16(h uint64, v uint16) uint64 {
	h = fnvByte(h, byte(v>>8))
	return fnvByte(h, byte(v))
}

// fnv32 folds a big-endian uint32 into a running FNV-1a state.
func fnv32(h uint64, v uint32) uint64 {
	h = fnvByte(h, byte(v>>24))
	h = fnvByte(h, byte(v>>16))
	h = fnvByte(h, byte(v>>8))
	return fnvByte(h, byte(v))
}

// HeaderKey fingerprints only the L2–L4 headers of a frame (everything up
// to the transport payload). It implements the paper's "compared ... just
// based on the header" mode: cheaper, but blind to payload tampering. The
// digest matches what the previous hash/fnv-based implementation produced,
// byte order and all, without allocating.
func HeaderKey(p *Packet) uint64 {
	h := fnvOffset64
	h = fnvBytes(h, p.Eth.Dst[:])
	h = fnvBytes(h, p.Eth.Src[:])
	if p.Eth.VLAN != nil {
		h = fnv16(h, p.Eth.VLAN.VID|uint16(p.Eth.VLAN.PCP)<<13)
	}
	h = fnv16(h, p.Eth.EtherType)
	if p.IP != nil {
		h = fnvBytes(h, p.IP.Src[:])
		h = fnvBytes(h, p.IP.Dst[:])
		h = fnvByte(h, p.IP.Protocol)
		h = fnvByte(h, p.IP.TOS)
		h = fnvByte(h, p.IP.TTL)
		h = fnv16(h, p.IP.ID)
	}
	switch {
	case p.TCP != nil:
		h = fnv16(h, p.TCP.SrcPort)
		h = fnv16(h, p.TCP.DstPort)
		h = fnv32(h, p.TCP.Seq)
		h = fnv32(h, p.TCP.Ack)
		h = fnvByte(h, p.TCP.Flags)
	case p.UDP != nil:
		h = fnv16(h, p.UDP.SrcPort)
		h = fnv16(h, p.UDP.DstPort)
		h = fnv16(h, uint16(len(p.Payload)))
	case p.ICMP != nil:
		h = fnvByte(h, p.ICMP.Type)
		h = fnvByte(h, p.ICMP.Code)
		h = fnv16(h, p.ICMP.ID)
		h = fnv16(h, p.ICMP.Seq)
	}
	return h
}
