package packet

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/fnv"
)

// Digest is a fixed-size fingerprint of a frame, used by the compare
// element to bucket candidate copies before byte-exact verification.
type Digest [sha256.Size]byte

// DigestBytes fingerprints a wire-form frame.
func DigestBytes(b []byte) Digest {
	return sha256.Sum256(b)
}

// FastKey is a cheap 64-bit bucketing key over a frame. The compare uses it
// as the map key and then confirms candidates byte-for-byte, so FNV
// collisions cost a comparison, never correctness.
func FastKey(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// HeaderKey fingerprints only the L2–L4 headers of a frame (everything up
// to the transport payload). It implements the paper's "compared ... just
// based on the header" mode: cheaper, but blind to payload tampering.
func HeaderKey(p *Packet) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	_, _ = h.Write(p.Eth.Dst[:])
	_, _ = h.Write(p.Eth.Src[:])
	if p.Eth.VLAN != nil {
		binary.BigEndian.PutUint16(scratch[:2], p.Eth.VLAN.VID|uint16(p.Eth.VLAN.PCP)<<13)
		_, _ = h.Write(scratch[:2])
	}
	binary.BigEndian.PutUint16(scratch[:2], p.Eth.EtherType)
	_, _ = h.Write(scratch[:2])
	if p.IP != nil {
		_, _ = h.Write(p.IP.Src[:])
		_, _ = h.Write(p.IP.Dst[:])
		_, _ = h.Write([]byte{p.IP.Protocol, p.IP.TOS, p.IP.TTL})
		binary.BigEndian.PutUint16(scratch[:2], p.IP.ID)
		_, _ = h.Write(scratch[:2])
	}
	switch {
	case p.TCP != nil:
		binary.BigEndian.PutUint16(scratch[0:2], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(scratch[2:4], p.TCP.DstPort)
		binary.BigEndian.PutUint32(scratch[4:8], p.TCP.Seq)
		_, _ = h.Write(scratch[:8])
		binary.BigEndian.PutUint32(scratch[0:4], p.TCP.Ack)
		scratch[4] = p.TCP.Flags
		_, _ = h.Write(scratch[:5])
	case p.UDP != nil:
		binary.BigEndian.PutUint16(scratch[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(scratch[2:4], p.UDP.DstPort)
		binary.BigEndian.PutUint16(scratch[4:6], uint16(len(p.Payload)))
		_, _ = h.Write(scratch[:6])
	case p.ICMP != nil:
		scratch[0] = p.ICMP.Type
		scratch[1] = p.ICMP.Code
		binary.BigEndian.PutUint16(scratch[2:4], p.ICMP.ID)
		binary.BigEndian.PutUint16(scratch[4:6], p.ICMP.Seq)
		_, _ = h.Write(scratch[:6])
	}
	return h.Sum64()
}
