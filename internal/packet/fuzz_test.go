package packet

import (
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics: the parser faces frames crafted by
// adversarial routers; it must reject garbage gracefully.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %x: %v", b, r)
			}
		}()
		if p, err := Unmarshal(b); err == nil {
			// Anything accepted must survive re-marshalling.
			p.Marshal()
			_ = p.String()
			_ = p.WireLen()
			p.Clone()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalMutatedValidNeverPanics flips bits in valid frames.
func TestUnmarshalMutatedValidNeverPanics(t *testing.T) {
	src := Endpoint{MAC: HostMAC(1), IP: HostIP(1), Port: 9}
	dst := Endpoint{MAC: HostMAC(2), IP: HostIP(2), Port: 10}
	seeds := [][]byte{
		NewUDP(src, dst, []byte("payload")).Marshal(),
		NewTCP(src, dst, 1, 2, TCPAck, 100, []byte("data")).Marshal(),
		NewICMPEcho(src, dst, ICMPEchoRequest, 1, 2, []byte("ping")).Marshal(),
	}
	for _, seed := range seeds {
		for offset := 0; offset < len(seed); offset++ {
			for _, bit := range []byte{0x01, 0x80} {
				b := append([]byte(nil), seed...)
				b[offset] ^= bit
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("Unmarshal panicked at offset %d: %v", offset, r)
						}
					}()
					_, _ = Unmarshal(b)
				}()
			}
		}
	}
}
