package packet

import (
	"fmt"
)

// EtherType values used by the emulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// ICMP message types (echo only; that is all ping needs).
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// FrameOverhead is the per-frame cost on the physical medium that does not
// appear in Marshal output: preamble+SFD (8 B), FCS (4 B) and minimum
// inter-frame gap (12 B). Links charge it when computing serialisation time,
// which is why a 500 Mbit/s link carries ~474 Mbit/s of TCP goodput at
// MSS 1460 — the paper's Linespeed figure.
const FrameOverhead = 24

// Ethernet is the L2 header. VLAN is non-nil when an 802.1Q tag is present.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	VLAN      *VLANTag
	EtherType uint16
}

// VLANTag is an 802.1Q tag.
type VLANTag struct {
	PCP uint8  // priority code point (3 bits)
	VID uint16 // VLAN identifier (12 bits)
}

// IPv4 is the L3 header. Options are not modelled (IHL is always 5).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8  // 3 bits (bit 1 = don't fragment)
	FragOff  uint16 // 13 bits
	TTL      uint8
	Protocol uint8
	Src      IPAddr
	Dst      IPAddr
}

// TCP is the L4 TCP header. Options are not modelled (data offset always 5).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
}

// UDP is the L4 UDP header. Length and checksum are computed at marshal
// time.
type UDP struct {
	SrcPort uint16
	DstPort uint16
}

// ICMP is an ICMP echo request/reply header.
type ICMP struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// Packet is a parsed frame plus simulation metadata. Exactly one of TCP,
// UDP, ICMP is non-nil when IP is non-nil and the protocol is modelled;
// payloads of unmodelled protocols live in Payload directly under IP.
type Packet struct {
	Eth     Ethernet
	IP      *IPv4
	TCP     *TCP
	UDP     *UDP
	ICMP    *ICMP
	Payload []byte

	// Meta carries simulation-only bookkeeping; it is not marshalled and
	// therefore invisible to the compare element.
	Meta Meta

	// pool, when non-nil, is the Pool this packet was obtained from and
	// may be recycled into (see Recycle). Clones never inherit it.
	pool *Pool
}

// Meta is simulation bookkeeping attached to a packet. It never reaches the
// wire.
type Meta struct {
	// UID identifies the logical packet across clones, for tracing which
	// combiner copies stem from the same original.
	UID uint64
	// Corrupted marks a packet whose bytes a netem Corrupt impairment
	// stage flipped. Simulation bookkeeping only — it lets receivers and
	// oracles distinguish modelled line noise from adversarial
	// modification without re-deriving it from the payload.
	Corrupted bool
}

// Clone returns a deep copy. The copy shares no mutable state with the
// original, so an adversarial switch mutating one copy can never corrupt
// the copies travelling through honest routers.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pool = nil // the clone is independently owned, never pool-recycled
	if p.Eth.VLAN != nil {
		v := *p.Eth.VLAN
		q.Eth.VLAN = &v
	}
	if p.IP != nil {
		ip := *p.IP
		q.IP = &ip
	}
	if p.TCP != nil {
		t := *p.TCP
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.ICMP != nil {
		ic := *p.ICMP
		q.ICMP = &ic
	}
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// WireLen returns the marshalled frame length in bytes (excluding
// FrameOverhead).
func (p *Packet) WireLen() int {
	n := 14 // Ethernet
	if p.Eth.VLAN != nil {
		n += 4
	}
	if p.IP != nil {
		n += 20
		switch {
		case p.TCP != nil:
			n += 20
		case p.UDP != nil:
			n += 8
		case p.ICMP != nil:
			n += 8
		}
	}
	return n + len(p.Payload)
}

// String returns a compact human-readable summary for logs and traces.
func (p *Packet) String() string {
	var b []byte
	b = fmt.Appendf(b, "%s>%s", p.Eth.Src, p.Eth.Dst)
	if p.Eth.VLAN != nil {
		b = fmt.Appendf(b, " vlan=%d", p.Eth.VLAN.VID)
	}
	if p.IP != nil {
		b = fmt.Appendf(b, " %s>%s", p.IP.Src, p.IP.Dst)
	}
	switch {
	case p.TCP != nil:
		b = fmt.Appendf(b, " tcp %d>%d seq=%d ack=%d flags=%#x",
			p.TCP.SrcPort, p.TCP.DstPort, p.TCP.Seq, p.TCP.Ack, p.TCP.Flags)
	case p.UDP != nil:
		b = fmt.Appendf(b, " udp %d>%d", p.UDP.SrcPort, p.UDP.DstPort)
	case p.ICMP != nil:
		b = fmt.Appendf(b, " icmp type=%d id=%d seq=%d", p.ICMP.Type, p.ICMP.ID, p.ICMP.Seq)
	}
	b = fmt.Appendf(b, " len=%d", p.WireLen())
	return string(b)
}
