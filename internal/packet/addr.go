// Package packet models the frames that flow through the emulated network:
// Ethernet (with optional 802.1Q VLAN tag), IPv4, TCP, UDP and ICMP echo.
//
// Packets exist in two representations. The struct form (Packet) is what
// nodes manipulate; the wire form ([]byte, produced by Marshal) is what the
// NetCo compare element compares bit-by-bit, exactly as the paper's C
// prototype does with memcmp(3) over raw Ethernet frames. Marshal and
// Unmarshal are exact inverses for well-formed packets, a property enforced
// by the package's quick-check tests.
package packet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses the canonical colon-separated form ("02:00:00:00:00:01").
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("parse MAC %q: want 6 octets, got %d", s, len(parts))
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("parse MAC %q: octet %d: %w", s, i, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustParseMAC is ParseMAC that panics on error; for use in tests and
// topology literals.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// HostMAC returns a deterministic locally-administered unicast MAC for host
// index n; used by topology builders.
func HostMAC(n uint32) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	binary.BigEndian.PutUint32(m[2:], n)
	return m
}

// String returns the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit is set (includes broadcast).
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IPAddr is an IPv4 address.
type IPAddr [4]byte

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IPAddr, error) {
	var ip IPAddr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("parse IP %q: want 4 octets, got %d", s, len(parts))
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("parse IP %q: octet %d: %w", s, i, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustParseIP is ParseIP that panics on error.
func MustParseIP(s string) IPAddr {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// HostIP returns the deterministic address 10.0.x.y for host index n;
// used by topology builders.
func HostIP(n uint32) IPAddr {
	return IPAddr{10, 0, byte(n >> 8), byte(n)}
}

// String returns dotted-quad notation.
func (ip IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian integer (for OpenFlow nw
// matching).
func (ip IPAddr) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPFromUint32 converts a big-endian integer to an address.
func IPFromUint32(v uint32) IPAddr {
	var ip IPAddr
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}
