package packet

import (
	"encoding/binary"
	"fmt"
)

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an Ethernet/IPv4 ARP message (RFC 826), carried as the payload
// of an EtherTypeARP frame. Hosts use it to resolve IP addresses to MAC
// addresses; the SDN substrate floods the requests like any L2 fabric.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IPAddr
	TargetMAC MAC
	TargetIP  IPAddr
}

// arpWireLen is the Ethernet/IPv4 ARP body length.
const arpWireLen = 28

// MarshalARP serialises the message body.
func MarshalARP(a ARP) []byte {
	b := make([]byte, arpWireLen)
	binary.BigEndian.PutUint16(b[0:2], 1)      // htype: Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // ptype: IPv4
	b[4] = 6                                   // hlen
	b[5] = 4                                   // plen
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	copy(b[14:18], a.SenderIP[:])
	copy(b[18:24], a.TargetMAC[:])
	copy(b[24:28], a.TargetIP[:])
	return b
}

// ParseARP parses an ARP body.
func ParseARP(b []byte) (ARP, error) {
	var a ARP
	if len(b) < arpWireLen {
		return a, fmt.Errorf("%w: arp body (%d bytes)", ErrTruncated, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return a, fmt.Errorf("%w: arp hardware/protocol types", ErrBadHeader)
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}

// NewARPRequest builds a broadcast who-has frame.
func NewARPRequest(sender Endpoint, targetIP IPAddr) *Packet {
	return &Packet{
		Eth: Ethernet{Dst: Broadcast, Src: sender.MAC, EtherType: EtherTypeARP},
		Payload: MarshalARP(ARP{
			Op:        ARPRequest,
			SenderMAC: sender.MAC,
			SenderIP:  sender.IP,
			TargetIP:  targetIP,
		}),
	}
}

// NewARPReply builds a unicast is-at frame answering req.
func NewARPReply(sender Endpoint, req ARP) *Packet {
	return &Packet{
		Eth: Ethernet{Dst: req.SenderMAC, Src: sender.MAC, EtherType: EtherTypeARP},
		Payload: MarshalARP(ARP{
			Op:        ARPReply,
			SenderMAC: sender.MAC,
			SenderIP:  sender.IP,
			TargetMAC: req.SenderMAC,
			TargetIP:  req.SenderIP,
		}),
	}
}
