package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Marshalling errors a caller may want to match.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// Marshal serialises the packet to its wire form. Length fields and
// checksums (IPv4 header, TCP, UDP, ICMP) are computed here, so callers can
// freely mutate header fields and re-marshal.
func (p *Packet) Marshal() []byte {
	return p.MarshalInto(make([]byte, 0, p.WireLen()))
}

// MarshalInto appends the packet's wire form to buf and returns the
// extended slice. Hot paths pass a recycled scratch buffer (typically
// buf[:0] of the previous call's result) to avoid a per-packet allocation;
// Marshal is MarshalInto with a fresh, exactly-sized buffer.
func (p *Packet) MarshalInto(buf []byte) []byte {
	// Ethernet.
	buf = append(buf, p.Eth.Dst[:]...)
	buf = append(buf, p.Eth.Src[:]...)
	if p.Eth.VLAN != nil {
		buf = binary.BigEndian.AppendUint16(buf, EtherTypeVLAN)
		tci := uint16(p.Eth.VLAN.PCP&0x7)<<13 | p.Eth.VLAN.VID&0x0fff
		buf = binary.BigEndian.AppendUint16(buf, tci)
	}
	buf = binary.BigEndian.AppendUint16(buf, p.Eth.EtherType)

	if p.IP == nil {
		return append(buf, p.Payload...)
	}

	// IPv4 (IHL = 5, no options).
	l4len := len(p.Payload)
	switch {
	case p.TCP != nil:
		l4len += 20
	case p.UDP != nil:
		l4len += 8
	case p.ICMP != nil:
		l4len += 8
	}
	total := 20 + l4len
	ipStart := len(buf)
	buf = append(buf, 0x45, p.IP.TOS)
	buf = binary.BigEndian.AppendUint16(buf, uint16(total))
	buf = binary.BigEndian.AppendUint16(buf, p.IP.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(p.IP.Flags&0x7)<<13|p.IP.FragOff&0x1fff)
	buf = append(buf, p.IP.TTL, p.IP.Protocol, 0, 0) // checksum placeholder
	buf = append(buf, p.IP.Src[:]...)
	buf = append(buf, p.IP.Dst[:]...)
	ipSum := checksum(buf[ipStart:], 0)
	binary.BigEndian.PutUint16(buf[ipStart+10:], ipSum)

	switch {
	case p.TCP != nil:
		t := p.TCP
		l4 := len(buf)
		buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
		buf = binary.BigEndian.AppendUint32(buf, t.Seq)
		buf = binary.BigEndian.AppendUint32(buf, t.Ack)
		buf = append(buf, 5<<4, t.Flags)
		buf = binary.BigEndian.AppendUint16(buf, t.Window)
		buf = append(buf, 0, 0) // checksum placeholder
		buf = binary.BigEndian.AppendUint16(buf, t.Urgent)
		buf = append(buf, p.Payload...)
		sum := pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoTCP, buf[l4:])
		binary.BigEndian.PutUint16(buf[l4+16:], sum)
	case p.UDP != nil:
		u := p.UDP
		l4 := len(buf)
		buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
		buf = binary.BigEndian.AppendUint16(buf, uint16(8+len(p.Payload)))
		buf = append(buf, 0, 0) // checksum placeholder
		buf = append(buf, p.Payload...)
		sum := pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoUDP, buf[l4:])
		if sum == 0 {
			sum = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		binary.BigEndian.PutUint16(buf[l4+6:], sum)
	case p.ICMP != nil:
		ic := p.ICMP
		l4 := len(buf)
		buf = append(buf, ic.Type, ic.Code, 0, 0) // checksum placeholder
		buf = binary.BigEndian.AppendUint16(buf, ic.ID)
		buf = binary.BigEndian.AppendUint16(buf, ic.Seq)
		buf = append(buf, p.Payload...)
		sum := checksum(buf[l4:], 0)
		binary.BigEndian.PutUint16(buf[l4+2:], sum)
	default:
		buf = append(buf, p.Payload...)
	}
	return buf
}

// Unmarshal parses a wire-form frame produced by Marshal (or hand-crafted
// by an adversary). Checksums are verified; a frame corrupted in flight
// fails with ErrBadChecksum, which is how honest hosts discard packets an
// adversarial router has tampered with below the compare's protection.
func Unmarshal(b []byte) (*Packet, error) {
	p := &Packet{}
	if len(b) < 14 {
		return nil, fmt.Errorf("%w: ethernet header (%d bytes)", ErrTruncated, len(b))
	}
	copy(p.Eth.Dst[:], b[0:6])
	copy(p.Eth.Src[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	rest := b[14:]
	if et == EtherTypeVLAN {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: vlan tag", ErrTruncated)
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		p.Eth.VLAN = &VLANTag{PCP: uint8(tci >> 13), VID: tci & 0x0fff}
		et = binary.BigEndian.Uint16(rest[2:4])
		rest = rest[4:]
	}
	p.Eth.EtherType = et

	if et != EtherTypeIPv4 {
		p.Payload = cloneBytes(rest)
		return p, nil
	}
	if len(rest) < 20 {
		return nil, fmt.Errorf("%w: ipv4 header", ErrTruncated)
	}
	if rest[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: ip version %d", ErrBadHeader, rest[0]>>4)
	}
	ihl := int(rest[0]&0x0f) * 4
	if ihl != 20 {
		return nil, fmt.Errorf("%w: ip options unsupported (ihl=%d)", ErrBadHeader, ihl)
	}
	total := int(binary.BigEndian.Uint16(rest[2:4]))
	if total < 20 || total > len(rest) {
		return nil, fmt.Errorf("%w: ip total length %d of %d", ErrTruncated, total, len(rest))
	}
	if checksum(rest[:20], 0) != 0 {
		return nil, fmt.Errorf("%w: ipv4 header", ErrBadChecksum)
	}
	fragWord := binary.BigEndian.Uint16(rest[6:8])
	ip := &IPv4{
		TOS:      rest[1],
		ID:       binary.BigEndian.Uint16(rest[4:6]),
		Flags:    uint8(fragWord >> 13),
		FragOff:  fragWord & 0x1fff,
		TTL:      rest[8],
		Protocol: rest[9],
	}
	copy(ip.Src[:], rest[12:16])
	copy(ip.Dst[:], rest[16:20])
	p.IP = ip
	l4 := rest[20:total]

	switch ip.Protocol {
	case ProtoTCP:
		if len(l4) < 20 {
			return nil, fmt.Errorf("%w: tcp header", ErrTruncated)
		}
		if off := int(l4[12]>>4) * 4; off != 20 {
			return nil, fmt.Errorf("%w: tcp options unsupported (offset=%d)", ErrBadHeader, off)
		}
		if pseudoChecksum(ip.Src, ip.Dst, ProtoTCP, l4) != 0 {
			return nil, fmt.Errorf("%w: tcp", ErrBadChecksum)
		}
		p.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(l4[0:2]),
			DstPort: binary.BigEndian.Uint16(l4[2:4]),
			Seq:     binary.BigEndian.Uint32(l4[4:8]),
			Ack:     binary.BigEndian.Uint32(l4[8:12]),
			Flags:   l4[13],
			Window:  binary.BigEndian.Uint16(l4[14:16]),
			Urgent:  binary.BigEndian.Uint16(l4[18:20]),
		}
		p.Payload = cloneBytes(l4[20:])
	case ProtoUDP:
		if len(l4) < 8 {
			return nil, fmt.Errorf("%w: udp header", ErrTruncated)
		}
		ulen := int(binary.BigEndian.Uint16(l4[4:6]))
		if ulen < 8 || ulen > len(l4) {
			return nil, fmt.Errorf("%w: udp length %d of %d", ErrTruncated, ulen, len(l4))
		}
		if binary.BigEndian.Uint16(l4[6:8]) != 0 && pseudoChecksum(ip.Src, ip.Dst, ProtoUDP, l4[:ulen]) != 0 {
			return nil, fmt.Errorf("%w: udp", ErrBadChecksum)
		}
		p.UDP = &UDP{
			SrcPort: binary.BigEndian.Uint16(l4[0:2]),
			DstPort: binary.BigEndian.Uint16(l4[2:4]),
		}
		p.Payload = cloneBytes(l4[8:ulen])
	case ProtoICMP:
		if len(l4) < 8 {
			return nil, fmt.Errorf("%w: icmp header", ErrTruncated)
		}
		if checksum(l4, 0) != 0 {
			return nil, fmt.Errorf("%w: icmp", ErrBadChecksum)
		}
		p.ICMP = &ICMP{
			Type: l4[0],
			Code: l4[1],
			ID:   binary.BigEndian.Uint16(l4[4:6]),
			Seq:  binary.BigEndian.Uint16(l4[6:8]),
		}
		p.Payload = cloneBytes(l4[8:])
	default:
		p.Payload = cloneBytes(l4)
	}
	return p, nil
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// checksum computes the RFC 1071 Internet checksum of b folded into an
// initial partial sum. Verifying a buffer that embeds a correct checksum
// yields zero.
//
// The one's-complement sum is associative across word sizes, so the loop
// accumulates eight bytes per iteration into a 64-bit register and defers
// all folding to the end — ~6× faster than a 16-bit-per-step loop on the
// MTU-sized frames that dominate the simulator's hot path. A frame is at
// most ~64 KiB, so the 64-bit accumulator cannot overflow.
func checksum(b []byte, initial uint32) uint16 {
	sum := uint64(initial)
	for len(b) >= 8 {
		v := binary.BigEndian.Uint64(b[:8])
		sum += v>>32 + v&0xffffffff
		b = b[8:]
	}
	if len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b[:4]))
		b = b[4:]
	}
	if len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum over the IPv4
// pseudo-header plus the transport segment.
func pseudoChecksum(src, dst IPAddr, proto uint8, segment []byte) uint16 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(len(segment))
	return checksum(segment, sum)
}
