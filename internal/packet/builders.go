package packet

// Endpoint identifies one side of an emulated conversation.
type Endpoint struct {
	MAC  MAC
	IP   IPAddr
	Port uint16
}

// NewUDP builds a UDP datagram from src to dst carrying payload.
func NewUDP(src, dst Endpoint, payload []byte) *Packet {
	return &Packet{
		Eth: Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4},
		IP: &IPv4{
			TTL:      64,
			Protocol: ProtoUDP,
			Src:      src.IP,
			Dst:      dst.IP,
		},
		UDP:     &UDP{SrcPort: src.Port, DstPort: dst.Port},
		Payload: payload,
	}
}

// NewTCP builds a TCP segment from src to dst.
func NewTCP(src, dst Endpoint, seq, ack uint32, flags uint8, window uint16, payload []byte) *Packet {
	return &Packet{
		Eth: Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4},
		IP: &IPv4{
			TTL:      64,
			Protocol: ProtoTCP,
			Src:      src.IP,
			Dst:      dst.IP,
		},
		TCP: &TCP{
			SrcPort: src.Port,
			DstPort: dst.Port,
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  window,
		},
		Payload: payload,
	}
}

// NewICMPEcho builds an ICMP echo request (or reply, per typ) from src to
// dst. src.Port and dst.Port are ignored.
func NewICMPEcho(src, dst Endpoint, typ uint8, id, seq uint16, payload []byte) *Packet {
	return &Packet{
		Eth: Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4},
		IP: &IPv4{
			TTL:      64,
			Protocol: ProtoICMP,
			Src:      src.IP,
			Dst:      dst.IP,
		},
		ICMP:    &ICMP{Type: typ, ID: id, Seq: seq},
		Payload: payload,
	}
}

// EchoReply derives the matching echo reply for a received echo request:
// L2/L3 addresses swapped, type flipped, ID/Seq/payload preserved.
func EchoReply(req *Packet) *Packet {
	rep := req.Clone()
	rep.Eth.Src, rep.Eth.Dst = req.Eth.Dst, req.Eth.Src
	rep.IP.Src, rep.IP.Dst = req.IP.Dst, req.IP.Src
	rep.ICMP.Type = ICMPEchoReply
	rep.IP.TTL = 64
	return rep
}
