package packet

// Pool recycles Packets together with their payload buffers. It exists
// for the compare channel's encapsulation frames — the highest-rate
// allocation site in the simulator — where a frame's lifetime is strictly
// "creation at one node, point-to-point link, consumption at the peer".
//
// Get returns a zeroed Packet whose Payload retains its previous capacity
// (length 0), so refilling it with append allocates only until the pool
// warms up. Recycle returns a packet to the pool it came from; packets
// not obtained from a Pool are ignored, which makes Recycle safe to call
// on any frame a node has finished consuming (hand-crafted test frames
// simply are not recycled). A second Recycle of the same packet is a
// no-op, not a double-free: Recycle clears the pool association and Get
// restores it.
//
// Pools are not safe for concurrent use; each belongs to a node on one
// scheduler, like every other simulator structure.
type Pool struct {
	free []*Packet
}

// Get returns a packet owned by this pool. All fields are zero; Payload
// has length 0 and whatever capacity the recycled frame carried.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free = pl.free[:n-1]
		p.pool = pl
		return p
	}
	return &Packet{pool: pl}
}

// Recycle returns p to its owning pool, if it has one. The caller must
// not use p afterwards.
func Recycle(p *Packet) {
	pl := p.pool
	if pl == nil {
		return
	}
	payload := p.Payload[:0]
	*p = Packet{Payload: payload}
	pl.free = append(pl.free, p)
}
