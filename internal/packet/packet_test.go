package packet

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testEndpoints() (Endpoint, Endpoint) {
	src := Endpoint{MAC: HostMAC(1), IP: HostIP(1), Port: 5001}
	dst := Endpoint{MAC: HostMAC(2), IP: HostIP(2), Port: 5002}
	return src, dst
}

func TestParseMAC(t *testing.T) {
	tests := []struct {
		in      string
		want    MAC
		wantErr bool
	}{
		{in: "02:00:00:00:00:01", want: MAC{2, 0, 0, 0, 0, 1}},
		{in: "ff:ff:ff:ff:ff:ff", want: Broadcast},
		{in: "AB:cd:EF:01:23:45", want: MAC{0xab, 0xcd, 0xef, 0x01, 0x23, 0x45}},
		{in: "02:00:00:00:01", wantErr: true},
		{in: "02:00:00:00:00:zz", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseMAC(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMAC(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMACRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPRoundTrip(t *testing.T) {
	f := func(ip IPAddr) bool {
		parsed, err := ParseIP(ip.String())
		if err != nil || parsed != ip {
			return false
		}
		return IPFromUint32(ip.Uint32()) == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACClassification(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast misclassified")
	}
	if HostMAC(1).IsBroadcast() || HostMAC(1).IsMulticast() {
		t.Error("unicast misclassified")
	}
	if !(MAC{0x01, 0, 0x5e, 0, 0, 1}).IsMulticast() {
		t.Error("multicast misclassified")
	}
}

func TestUDPMarshalRoundTrip(t *testing.T) {
	src, dst := testEndpoints()
	p := NewUDP(src, dst, []byte("hello netco"))
	wire := p.Marshal()
	if len(wire) != p.WireLen() {
		t.Fatalf("wire length %d != WireLen %d", len(wire), p.WireLen())
	}
	q, err := Unmarshal(wire)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	p.Meta = Meta{}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestTCPMarshalRoundTrip(t *testing.T) {
	src, dst := testEndpoints()
	p := NewTCP(src, dst, 1000, 2000, TCPAck|TCPPsh, 65535, []byte("segment data"))
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestICMPMarshalRoundTrip(t *testing.T) {
	src, dst := testEndpoints()
	p := NewICMPEcho(src, dst, ICMPEchoRequest, 7, 42, bytes.Repeat([]byte{0xab}, 56))
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestVLANMarshalRoundTrip(t *testing.T) {
	src, dst := testEndpoints()
	p := NewUDP(src, dst, []byte("tagged"))
	p.Eth.VLAN = &VLANTag{PCP: 3, VID: 100}
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.Eth.VLAN == nil || q.Eth.VLAN.VID != 100 || q.Eth.VLAN.PCP != 3 {
		t.Fatalf("VLAN tag lost: %+v", q.Eth.VLAN)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestOddLengthPayloadChecksum(t *testing.T) {
	src, dst := testEndpoints()
	for _, n := range []int{0, 1, 3, 7, 1469} {
		p := NewUDP(src, dst, bytes.Repeat([]byte{0x5a}, n))
		if _, err := Unmarshal(p.Marshal()); err != nil {
			t.Errorf("payload len %d: %v", n, err)
		}
	}
}

// Property: for arbitrary header values and payloads, Unmarshal(Marshal(p))
// reproduces p exactly.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(srcM, dstM MAC, srcIP, dstIP IPAddr, sport, dport uint16,
		seq, ack uint32, flagSel uint8, win uint16, payload []byte, kind uint8, vid uint16) bool {
		src := Endpoint{MAC: srcM, IP: srcIP, Port: sport}
		dst := Endpoint{MAC: dstM, IP: dstIP, Port: dport}
		var p *Packet
		switch kind % 3 {
		case 0:
			p = NewUDP(src, dst, payload)
		case 1:
			p = NewTCP(src, dst, seq, ack, flagSel&0x3f, win, payload)
		default:
			p = NewICMPEcho(src, dst, ICMPEchoRequest, uint16(seq), uint16(ack), payload)
		}
		if vid%2 == 0 {
			p.Eth.VLAN = &VLANTag{PCP: uint8(vid>>13) & 7, VID: vid & 0x0fff}
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		// Normalise nil-vs-empty payload ambiguity.
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	src, dst := testEndpoints()
	wire := NewTCP(src, dst, 1, 2, TCPAck, 100, []byte("payload")).Marshal()
	for cut := 1; cut < len(wire); cut++ {
		if _, err := Unmarshal(wire[:cut]); err == nil {
			// Cuts inside the payload legitimately truncate IP total
			// length checks; any successful parse must have consistent
			// lengths, so only flag parses of frames cut inside headers.
			if cut < 54 {
				t.Errorf("Unmarshal accepted frame truncated at %d bytes", cut)
			}
		}
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	src, dst := testEndpoints()
	wire := NewUDP(src, dst, bytes.Repeat([]byte{1}, 64)).Marshal()
	for _, offset := range []int{15, 20, 30, 36, 40, 50} {
		bad := append([]byte(nil), wire...)
		bad[offset] ^= 0xff
		if _, err := Unmarshal(bad); err == nil {
			t.Errorf("corruption at offset %d went undetected", offset)
		}
	}
}

func TestUnmarshalBadChecksumMatchable(t *testing.T) {
	src, dst := testEndpoints()
	wire := NewUDP(src, dst, []byte{1, 2, 3}).Marshal()
	wire[len(wire)-1] ^= 0xff
	_, err := Unmarshal(wire)
	if !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestClone(t *testing.T) {
	src, dst := testEndpoints()
	p := NewTCP(src, dst, 1, 2, TCPSyn, 10, []byte("abc"))
	p.Eth.VLAN = &VLANTag{VID: 5}
	q := p.Clone()
	if !reflect.DeepEqual(p, q) {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	q.Payload[0] = 'X'
	q.TCP.Seq = 99
	q.IP.TTL = 1
	q.Eth.VLAN.VID = 9
	if p.Payload[0] != 'a' || p.TCP.Seq != 1 || p.IP.TTL != 64 || p.Eth.VLAN.VID != 5 {
		t.Fatal("clone shares state with original")
	}
}

func TestCloneBitExact(t *testing.T) {
	f := func(payload []byte, seq uint32) bool {
		src, dst := testEndpoints()
		p := NewTCP(src, dst, seq, 0, TCPAck, 1000, payload)
		return bytes.Equal(p.Marshal(), p.Clone().Marshal())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestStability(t *testing.T) {
	src, dst := testEndpoints()
	p := NewUDP(src, dst, []byte("x"))
	w1, w2 := p.Marshal(), p.Clone().Marshal()
	if DigestBytes(w1) != DigestBytes(w2) {
		t.Fatal("digests of identical packets differ")
	}
	if FastKey(w1) != FastKey(w2) {
		t.Fatal("fast keys of identical packets differ")
	}
	q := p.Clone()
	q.Payload = []byte("y")
	if DigestBytes(w1) == DigestBytes(q.Marshal()) {
		t.Fatal("digest blind to payload change")
	}
}

func TestHeaderKeyIgnoresPayload(t *testing.T) {
	src, dst := testEndpoints()
	a := NewTCP(src, dst, 10, 20, TCPAck, 500, []byte("aaaa"))
	b := a.Clone()
	b.Payload = []byte("bbbb")
	if HeaderKey(a) != HeaderKey(b) {
		t.Fatal("HeaderKey changed with payload")
	}
	c := a.Clone()
	c.TCP.Seq = 11
	if HeaderKey(a) == HeaderKey(c) {
		t.Fatal("HeaderKey blind to seq change")
	}
	d := a.Clone()
	d.Eth.VLAN = &VLANTag{VID: 7}
	if HeaderKey(a) == HeaderKey(d) {
		t.Fatal("HeaderKey blind to VLAN tag — would miss isolation attacks")
	}
}

func TestEchoReply(t *testing.T) {
	src, dst := testEndpoints()
	req := NewICMPEcho(src, dst, ICMPEchoRequest, 3, 9, []byte("ping"))
	rep := EchoReply(req)
	if rep.ICMP.Type != ICMPEchoReply {
		t.Errorf("type = %d, want echo reply", rep.ICMP.Type)
	}
	if rep.IP.Src != dst.IP || rep.IP.Dst != src.IP {
		t.Error("IP addresses not swapped")
	}
	if rep.Eth.Src != dst.MAC || rep.Eth.Dst != src.MAC {
		t.Error("MACs not swapped")
	}
	if rep.ICMP.ID != 3 || rep.ICMP.Seq != 9 {
		t.Error("ID/Seq not preserved")
	}
	if !bytes.Equal(rep.Payload, req.Payload) {
		t.Error("payload not preserved")
	}
}

func TestPacketString(t *testing.T) {
	src, dst := testEndpoints()
	s := NewUDP(src, dst, []byte("x")).String()
	for _, want := range []string{"udp", "5001>5002", "10.0.0.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestWireLenMatchesMarshal(t *testing.T) {
	f := func(payload []byte, kind uint8, tagged bool) bool {
		src, dst := testEndpoints()
		var p *Packet
		switch kind % 3 {
		case 0:
			p = NewUDP(src, dst, payload)
		case 1:
			p = NewTCP(src, dst, 0, 0, 0, 0, payload)
		default:
			p = NewICMPEcho(src, dst, ICMPEchoRequest, 0, 0, payload)
		}
		if tagged {
			p.Eth.VLAN = &VLANTag{VID: 1}
		}
		return len(p.Marshal()) == p.WireLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalUDP1470(b *testing.B) {
	src, dst := testEndpoints()
	p := NewUDP(src, dst, make([]byte, 1470))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Marshal()
	}
}

func BenchmarkUnmarshalUDP1470(b *testing.B) {
	src, dst := testEndpoints()
	wire := NewUDP(src, dst, make([]byte, 1470)).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}
