// Package sim provides the deterministic discrete-event core that every
// other package in this repository is built on.
//
// All network activity — link serialisation, propagation, switch pipelines,
// the NetCo compare engine, traffic generators — is expressed as events on a
// single virtual clock. Two properties make the whole reproduction
// trustworthy:
//
//   - Virtual time: a 10-second iperf run finishes in milliseconds of wall
//     time and is not perturbed by the host machine.
//   - Determinism: events firing at the same instant are executed in the
//     order they were scheduled, and all randomness flows through a seeded
//     RNG, so every experiment is bit-for-bit repeatable.
package sim

import (
	"container/heap"
	"time"
)

// Scheduler is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; construct with NewScheduler. A Scheduler is
// not safe for concurrent use: a simulation is a single logical thread of
// control (parallelism across *experiments* is achieved by running multiple
// schedulers).
type Scheduler struct {
	now    time.Duration
	events eventQueue
	seq    uint64

	// executed counts events that have fired; useful for progress
	// reporting and runaway detection in tests.
	executed uint64
}

// NewScheduler returns a scheduler with the clock at zero and no pending
// events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 {
	return s.executed
}

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int {
	return len(s.events)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time instead, preserving the
// no-time-travel invariant. The returned Timer may be used to cancel the
// event before it fires.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time. Negative d is
// treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its deadline. It reports whether an event was executed (false when the
// queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d from the current virtual time.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

func (s *Scheduler) peek() *event {
	for len(s.events) > 0 {
		if s.events[0].cancelled {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0]
	}
	return nil
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Stop cancels the event if it has not fired yet. It reports whether the
// call prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Deadline returns the virtual time at which the event fires (or would have
// fired).
func (t *Timer) Deadline() time.Duration {
	return t.ev.at
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

// eventQueue is a min-heap ordered by (deadline, insertion sequence), which
// yields deterministic FIFO semantics for simultaneous events.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	ev.fired = true
	return ev
}
