// Package sim provides the deterministic discrete-event core that every
// other package in this repository is built on.
//
// All network activity — link serialisation, propagation, switch pipelines,
// the NetCo compare engine, traffic generators — is expressed as events on a
// single virtual clock. Two properties make the whole reproduction
// trustworthy:
//
//   - Virtual time: a 10-second iperf run finishes in milliseconds of wall
//     time and is not perturbed by the host machine.
//   - Determinism: events firing at the same instant are executed in the
//     order they were scheduled, and all randomness flows through a seeded
//     RNG, so every experiment is bit-for-bit repeatable.
//
// The scheduler is the simulator's hottest data structure: every packet
// transmission, delivery and processing step is one event. It therefore
// avoids per-event heap allocations entirely: events live in a recycled
// arena indexed by a free list, the priority queue is a 4-ary min-heap of
// inline (deadline, seq, index) records, and Timer is a value type. Only
// the caller's closure escapes.
package sim

import (
	"time"
)

// Scheduler is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; construct with NewScheduler. A Scheduler is
// not safe for concurrent use: a simulation is a single logical thread of
// control (parallelism across *experiments* is achieved by running multiple
// schedulers).
type Scheduler struct {
	now time.Duration
	seq uint64

	// heap is a 4-ary min-heap over inline nodes ordered by (deadline,
	// band, key), which yields deterministic FIFO semantics for
	// simultaneous events. Nodes reference event records by arena index.
	heap []heapNode
	// recs is the event arena; free lists recycled indices. A record is
	// recycled only when its heap node is popped (fire or lazy cancel
	// sweep), never by Timer.Stop — the heap node still references it.
	recs []eventRec
	free []int32

	// executed counts events that have fired; useful for progress
	// reporting and runaway detection in tests.
	executed uint64
	// live counts scheduled-but-not-yet-fired events, excluding
	// lazily-cancelled ones still parked in the heap (see Live).
	live int
}

// heapNode orders events by (at, band, key):
//
//   - Ordinary events carry band 0 and key = the scheduler's insertion
//     sequence: FIFO among simultaneous locals.
//   - Channel events (AtCallChan) carry band = channel id + 1 and key =
//     the caller's per-channel sequence. They sort after every ordinary
//     event at the same instant, and among themselves by (channel, seq) —
//     an order that is a pure function of the event's origin, not of when
//     this scheduler learned about it. That property is what makes a
//     partitioned run (internal/sim/par) bit-identical to a serial one:
//     a cross-partition delivery injected at an epoch barrier lands in
//     exactly the position it would have occupied had it been scheduled
//     the moment it was sent.
type heapNode struct {
	at   time.Duration
	key  uint64
	band uint32
	rec  int32
}

func nodeLess(a, b heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.band != b.band {
		return a.band < b.band
	}
	return a.key < b.key
}

// CallFunc is the argument-carrying form of an event callback, used by
// AtCall. The two any slots carry pointer-shaped values (pointers, func
// values) that box without allocating; n carries a small integer inline.
type CallFunc func(a0, a1 any, n int)

// eventRec is one pooled event. gen increments each time the record is
// recycled so that stale Timers (whose event already fired) can be told
// apart from live ones without keeping the record alive. Exactly one of
// fn and call is set.
type eventRec struct {
	fn   func()
	call CallFunc
	a0   any
	a1   any
	n    int

	gen       uint32
	cancelled bool
}

// NewScheduler returns a scheduler with the clock at zero and no pending
// events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration {
	return s.now
}

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 {
	return s.executed
}

// Pending returns the number of events currently scheduled (including
// cancelled events not yet removed from the queue). For progress or
// idleness decisions use Live, which ignores the cancelled residue.
func (s *Scheduler) Pending() int {
	return len(s.heap)
}

// Live returns the number of events that are scheduled and will actually
// fire: cancelled-but-not-yet-popped events (Timer.Stop is lazy) are
// excluded. Live()==0 means running the scheduler would execute nothing —
// the idle test Pending cannot provide, since phantom cancelled events
// keep Pending nonzero indefinitely.
func (s *Scheduler) Live() int {
	return s.live
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time instead, preserving the
// no-time-travel invariant. The returned Timer may be used to cancel the
// event before it fires.
func (s *Scheduler) At(t time.Duration, fn func()) Timer {
	idx, rec := s.allocRec()
	rec.fn = fn
	return s.arm(t, 0, s.nextSeq(), idx, rec)
}

// AtCall schedules fn(a0, a1, n) at absolute virtual time t without
// allocating: the arguments are stored inline in the pooled event record,
// so hot paths (link delivery, processing pipelines) that would otherwise
// capture state in a fresh closure per event stay allocation-free. a0 and
// a1 should be pointer-shaped (pointers, func values) — other types box
// on conversion to any, which reintroduces the allocation.
func (s *Scheduler) AtCall(t time.Duration, fn CallFunc, a0, a1 any, n int) Timer {
	idx, rec := s.allocRec()
	rec.call = fn
	rec.a0 = a0
	rec.a1 = a1
	rec.n = n
	return s.arm(t, 0, s.nextSeq(), idx, rec)
}

// AtCallChan schedules fn(a0, a1, n) at absolute virtual time t on a
// delivery channel: at equal deadlines the event sorts after every
// ordinary event and among channel events by (ch, seq). The caller owns
// the (ch, seq) numbering and must keep it unique per (deadline, ch);
// netem assigns ch per link direction and seq from a per-direction
// counter. Because the ordering key travels with the event instead of
// being assigned at insertion, a partitioned engine can inject the event
// late (at an epoch barrier) without perturbing execution order — the
// foundation of the serial/parallel bit-identity guarantee.
func (s *Scheduler) AtCallChan(t time.Duration, ch, seq uint64, fn CallFunc, a0, a1 any, n int) Timer {
	if ch >= ^uint64(0)>>1 || ch+1 > 1<<32-1 {
		panic("sim: channel id out of range")
	}
	idx, rec := s.allocRec()
	rec.call = fn
	rec.a0 = a0
	rec.a1 = a1
	rec.n = n
	return s.arm(t, uint32(ch+1), seq, idx, rec)
}

func (s *Scheduler) allocRec() (int32, *eventRec) {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.recs = append(s.recs, eventRec{})
		idx = int32(len(s.recs) - 1)
	}
	return idx, &s.recs[idx]
}

func (s *Scheduler) nextSeq() uint64 {
	seq := s.seq
	s.seq++
	return seq
}

func (s *Scheduler) arm(t time.Duration, band uint32, key uint64, idx int32, rec *eventRec) Timer {
	if t < s.now {
		t = s.now
	}
	rec.cancelled = false
	s.push(heapNode{at: t, band: band, key: key, rec: idx})
	s.live++
	return Timer{s: s, at: t, idx: idx, gen: rec.gen}
}

// After schedules fn to run d after the current virtual time. Negative d is
// treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Ticker is a repeating timer created by Every. Stop halts future firings.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       func()
	timer    Timer
	stopped  bool
}

// Every schedules fn to run every interval of virtual time, first firing
// one interval from now. The returned Ticker must be stopped for a
// finite simulation's queue to drain; interval must be positive. The
// callback runs before the next firing is armed, so fn observing the
// Ticker (e.g. calling Stop) takes effect immediately.
func (s *Scheduler) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	tk := &Ticker{s: s, interval: interval, fn: fn}
	tk.arm()
	return tk
}

func (tk *Ticker) arm() {
	tk.timer = tk.s.After(tk.interval, tk.fire)
}

func (tk *Ticker) fire() {
	if tk.stopped {
		return
	}
	tk.fn()
	if !tk.stopped {
		tk.arm()
	}
}

// Stop halts the ticker. It is idempotent and safe to call from the
// ticker's own callback.
func (tk *Ticker) Stop() {
	if tk.stopped {
		return
	}
	tk.stopped = true
	tk.timer.Stop()
}

// Step executes the single earliest pending event, advancing the clock to
// its deadline. It reports whether an event was executed (false when the
// queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		node := s.popMin()
		rec := &s.recs[node.rec]
		fn := rec.fn
		call, a0, a1, n := rec.call, rec.a0, rec.a1, rec.n
		cancelled := rec.cancelled
		s.release(node.rec)
		if cancelled {
			continue
		}
		s.live--
		s.now = node.at
		s.executed++
		if fn != nil {
			fn()
		} else {
			call(a0, a1, n)
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		at, ok := s.peekDeadline()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d from the current virtual time.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// RunBefore executes events with deadlines strictly < t, then advances
// the clock to exactly t. It is RunUntil's half-open sibling, used by the
// partitioned engine to run an epoch [now, t) whose right boundary
// belongs to the next epoch (cross-partition handoffs can land exactly on
// a barrier, so events *at* a barrier must wait for injection).
func (s *Scheduler) RunBefore(t time.Duration) {
	for {
		at, ok := s.peekDeadline()
		if !ok || at >= t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// PeekDeadline returns the deadline of the earliest event that will
// actually fire, lazily discarding cancelled events. ok is false when
// nothing live is scheduled.
func (s *Scheduler) PeekDeadline() (at time.Duration, ok bool) {
	return s.peekDeadline()
}

// peekDeadline returns the deadline of the earliest live event, discarding
// cancelled events lazily.
func (s *Scheduler) peekDeadline() (time.Duration, bool) {
	for len(s.heap) > 0 {
		node := s.heap[0]
		if s.recs[node.rec].cancelled {
			n := s.popMin()
			s.release(n.rec)
			continue
		}
		return node.at, true
	}
	return 0, false
}

// release recycles an event record whose heap node has been popped. The
// generation bump is what invalidates outstanding Timers; clearing fn
// releases the closure to the GC.
func (s *Scheduler) release(idx int32) {
	rec := &s.recs[idx]
	rec.fn = nil
	rec.call = nil
	rec.a0 = nil
	rec.a1 = nil
	rec.n = 0
	rec.cancelled = false
	rec.gen++
	s.free = append(s.free, idx)
}

// push inserts a node into the 4-ary heap.
func (s *Scheduler) push(n heapNode) {
	s.heap = append(s.heap, n)
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// popMin removes and returns the heap minimum.
func (s *Scheduler) popMin() heapNode {
	h := s.heap
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	h = s.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if nodeLess(h[j], h[best]) {
				best = j
			}
		}
		if !nodeLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return min
}

// Timer is a handle to a scheduled event. It is a plain value (no heap
// allocation per event); the zero Timer refers to no event. A Timer stays
// valid after its event fires: Stop then reports false, because the
// underlying pooled record's generation has moved on.
type Timer struct {
	s   *Scheduler
	at  time.Duration
	idx int32
	gen uint32
}

// Stop cancels the event if it has not fired yet. It reports whether the
// call prevented the event from firing.
//
// Stop must not recycle the event record: the heap still holds a node
// referencing it, and recycling would let a new event claim the index and
// then be released by the stale node's pop. Cancellation therefore only
// marks the record; the pop path recycles it.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	rec := &t.s.recs[t.idx]
	if rec.gen != t.gen || rec.cancelled {
		return false
	}
	rec.cancelled = true
	t.s.live--
	return true
}

// Deadline returns the virtual time at which the event fires (or would have
// fired).
func (t Timer) Deadline() time.Duration {
	return t.at
}

// Scheduled reports whether the Timer refers to an event at all (the zero
// Timer does not). It is the replacement for comparing a *Timer against
// nil; it says nothing about whether the event has already fired.
func (t Timer) Scheduled() bool {
	return t.s != nil
}
