// Package par is a conservative parallel discrete-event engine: the
// topology is split into domains, each owning a private sim.Scheduler,
// and domains advance in epochs bounded by the simulation's lookahead —
// the minimum cross-partition link propagation delay.
//
// The correctness argument is the classic Chandy–Misra–Bryant one,
// specialised to a global barrier: an event executing at time u in
// domain A can influence domain B no earlier than u + L, where L is the
// smallest delay on any A→B channel. If every domain runs its local
// events in the half-open window [B, B+L) while cross-domain sends are
// buffered as timestamped handoffs, then no handoff generated during the
// epoch can have a deliver time inside it — injection at the barrier is
// always causally safe.
//
// Determinism is stronger than "same results": the parallel run is
// bit-identical to the serial run of the same topology. Cross-domain
// deliveries carry a (channel, sequence) key assigned at the *source*
// (netem gives every link direction a channel id from its deterministic
// creation order, and numbers deliveries per direction), and
// sim.Scheduler orders channel events at equal deadlines by exactly that
// key — after all ordinary local events, which never cross domains. A
// delivery injected at a barrier therefore executes in the same position
// it would have in the serial heap, and by induction every domain
// processes an identical event sequence under any partition or worker
// count. The differential suites in internal/experiment and
// internal/harness enforce this byte-for-byte.
package par

import (
	"math"
	"runtime"
	"time"

	"netco/internal/sim"
)

// Handoff is one buffered cross-partition event: a delivery scheduled by
// a source domain for execution in another domain. At is the absolute
// deliver time; Ch/Seq the channel ordering key (see sim.AtCallChan);
// Fn/A0/A1/N the argument-carrying callback exactly as the source would
// have scheduled locally.
type Handoff struct {
	At      time.Duration
	Ch, Seq uint64
	Fn      sim.CallFunc
	A0, A1  any
	N       int
}

// Domain is one partition: a private scheduler plus per-source mailboxes
// for inbound handoffs. inbox[src] is appended to only by source domain
// src's worker goroutine during an epoch and drained only by the
// coordinator between epochs, so no locking is needed; the epoch
// barrier's channel synchronisation provides the happens-before edges.
type Domain struct {
	id    int
	sched *sim.Scheduler
	inbox [][]Handoff
}

// Scheduler returns the domain's private scheduler.
func (d *Domain) Scheduler() *sim.Scheduler { return d.sched }

// Boundary is the cross-partition post target for one (src, dst) domain
// pair; it satisfies netem.CrossPost. Post buffers the event in the
// destination's mailbox slot owned by the source.
type Boundary struct {
	src, dst *Domain
}

// Post enqueues a handoff for injection at the next epoch barrier.
func (b Boundary) Post(at time.Duration, ch, seq uint64, fn sim.CallFunc, a0, a1 any, n int) {
	box := &b.dst.inbox[b.src.id]
	*box = append(*box, Handoff{At: at, Ch: ch, Seq: seq, Fn: fn, A0: a0, A1: a1, N: n})
}

const maxTime = time.Duration(math.MaxInt64)

// Engine coordinates the domains. It implements sim.Runner, so a
// partitioned testbed is driven exactly like a serial one.
//
// An Engine is not safe for concurrent use; RunFor/RunUntil/Run must be
// called from one goroutine (workers are spawned per call and joined
// before it returns, so no goroutines outlive a run — an idle Engine
// holds no resources and needs no Close).
type Engine struct {
	domains   []*Domain
	lookahead time.Duration
	workers   int
	now       time.Duration
	bounded   bool // a Boundary was handed out: lookahead must be set
}

// New creates an engine with n fresh domains. workers bounds the worker
// goroutines per run; <= 0 means min(n, GOMAXPROCS).
func New(n, workers int) *Engine {
	if n < 1 {
		panic("par: need at least one domain")
	}
	e := &Engine{workers: workers}
	for i := 0; i < n; i++ {
		e.domains = append(e.domains, &Domain{
			id:    i,
			sched: sim.NewScheduler(),
			inbox: make([][]Handoff, n),
		})
	}
	return e
}

// Domains returns the number of partitions.
func (e *Engine) Domains() int { return len(e.domains) }

// Scheduler returns domain i's scheduler.
func (e *Engine) Scheduler(i int) *sim.Scheduler { return e.domains[i].sched }

// Schedulers returns every domain's scheduler, by domain id.
func (e *Engine) Schedulers() []*sim.Scheduler {
	out := make([]*sim.Scheduler, len(e.domains))
	for i, d := range e.domains {
		out[i] = d.sched
	}
	return out
}

// Boundary returns the post target for src→dst handoffs. The topology
// layer hands it to every cross-partition link.
func (e *Engine) Boundary(src, dst int) Boundary {
	e.bounded = true
	return Boundary{src: e.domains[src], dst: e.domains[dst]}
}

// SetLookahead declares the epoch bound: the minimum propagation delay
// over all cross-partition links. It must be positive once any Boundary
// is in use — a zero-delay cut would make barrier injection causally
// unsafe — and is normally taken from netem.Network.MinCrossDelay after
// wiring.
func (e *Engine) SetLookahead(d time.Duration) {
	if d < 0 {
		panic("par: negative lookahead")
	}
	e.lookahead = d
}

// Lookahead returns the configured epoch bound.
func (e *Engine) Lookahead() time.Duration { return e.lookahead }

// Now returns the engine's virtual time (the epoch frontier).
func (e *Engine) Now() time.Duration { return e.now }

// Executed sums fired events over all domains. A parallel run executes
// exactly the events of the serial run, so this matches the serial
// scheduler's count.
func (e *Engine) Executed() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.sched.Executed()
	}
	return n
}

// Live sums live (will-fire) events over all domains; buffered handoffs
// count too, since injection will schedule them.
func (e *Engine) Live() int {
	n := 0
	for _, d := range e.domains {
		n += d.sched.Live()
		for _, box := range d.inbox {
			n += len(box)
		}
	}
	return n
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

// RunUntil executes events with deadlines <= t across all domains, then
// advances every clock to exactly t — observationally equivalent to
// sim.Scheduler.RunUntil on the union of the domains.
func (e *Engine) RunUntil(t time.Duration) {
	if t < e.now {
		t = e.now
	}
	e.checkBounded()
	e.withWorkers(func(dispatch func(until time.Duration, inclusive bool)) {
		// Epochs are strictly half-open: [B, min(B+L, t)). An event at u
		// in such a window hands off at >= u+L >= the window end, so by
		// the time the frontier reaches t every handoff with deliver
		// time <= t has been generated by some already-executed event
		// and sits in a mailbox. That makes the single inclusive pass
		// below exact: all events at deadline t — local and injected —
		// are in their heaps before it starts, so the (band, key) order
		// matches the serial heap's. (An inclusive pass per epoch would
		// not be: a handoff landing exactly on a barrier could execute
		// after a same-deadline channel event with a larger key.)
		for {
			e.inject()
			next, ok := e.nextDeadline()
			if !ok || next >= t {
				break
			}
			if next > e.now {
				e.now = next // idle-skip: jump dead air between events
			}
			end := e.now + e.lookahead
			if e.lookahead == 0 || end > t {
				end = t
			}
			dispatch(end, false)
			e.now = end
		}
		// Execute events at exactly t, and sync every domain clock to t,
		// matching serial RunUntil's "advance the clock to exactly t"
		// contract. Events at t hand off at >= t+L, never at <= t, so no
		// further injection round is needed.
		e.inject()
		dispatch(t, true)
		e.now = t
	})
}

// Run executes events until no domain has anything live and no handoffs
// are buffered — the parallel analogue of sim.Scheduler.Run.
func (e *Engine) Run() {
	e.checkBounded()
	e.withWorkers(func(dispatch func(until time.Duration, inclusive bool)) {
		for {
			e.inject()
			next, ok := e.nextDeadline()
			if !ok {
				break
			}
			if next > e.now {
				e.now = next
			}
			if e.lookahead == 0 {
				// No boundaries: the domains are independent; drain them.
				dispatch(maxTime, true)
				continue
			}
			end := e.now + e.lookahead
			dispatch(end, false)
			e.now = end
		}
	})
}

func (e *Engine) checkBounded() {
	if e.bounded && e.lookahead == 0 {
		panic("par: boundaries wired but no lookahead set (SetLookahead after Connect)")
	}
}

// inject drains every mailbox into its domain's scheduler. Injection
// order is irrelevant: the scheduler orders channel events by the
// (Ch, Seq) key carried in the handoff.
func (e *Engine) inject() {
	for _, d := range e.domains {
		for si, box := range d.inbox {
			if len(box) == 0 {
				continue
			}
			for i := range box {
				h := &box[i]
				d.sched.AtCallChan(h.At, h.Ch, h.Seq, h.Fn, h.A0, h.A1, h.N)
				h.Fn, h.A0, h.A1 = nil, nil, nil // release to GC; slice is reused
			}
			d.inbox[si] = box[:0]
		}
	}
}

// nextDeadline returns the earliest live deadline across all domains
// (mailboxes must already be drained).
func (e *Engine) nextDeadline() (time.Duration, bool) {
	next, any := maxTime, false
	for _, d := range e.domains {
		if at, ok := d.sched.PeekDeadline(); ok && (!any || at < next) {
			next, any = at, true
		}
	}
	return next, any
}

// runSlice advances this worker's statically assigned domains. The
// static domain→worker map keeps the execution schedule independent of
// goroutine timing.
func (e *Engine) runSlice(off, stride int, until time.Duration, inclusive bool) {
	for i := off; i < len(e.domains); i += stride {
		s := e.domains[i].sched
		switch {
		case inclusive && until == maxTime:
			s.Run() // drain without parking the clock at infinity
		case inclusive:
			s.RunUntil(until)
		default:
			s.RunBefore(until)
		}
	}
}

type epochCmd struct {
	until     time.Duration
	inclusive bool
}

// withWorkers runs body with an epoch dispatcher. With one worker (or one
// domain) dispatch runs inline; otherwise per-call worker goroutines each
// own a static slice of domains and synchronise over channels, whose
// send/receive pairs provide the happens-before edges that make the
// lock-free mailboxes safe.
func (e *Engine) withWorkers(body func(dispatch func(until time.Duration, inclusive bool))) {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(e.domains) {
		w = len(e.domains)
	}
	if w <= 1 {
		body(func(until time.Duration, inclusive bool) {
			e.runSlice(0, 1, until, inclusive)
		})
		return
	}
	cmds := make([]chan epochCmd, w)
	done := make(chan struct{}, w)
	for i := range cmds {
		cmds[i] = make(chan epochCmd)
		go func(off int) {
			for c := range cmds[off] {
				e.runSlice(off, w, c.until, c.inclusive)
				done <- struct{}{}
			}
		}(i)
	}
	defer func() {
		for _, c := range cmds {
			close(c)
		}
	}()
	body(func(until time.Duration, inclusive bool) {
		c := epochCmd{until: until, inclusive: inclusive}
		for _, ch := range cmds {
			ch <- c
		}
		for range cmds {
			<-done
		}
	})
}
