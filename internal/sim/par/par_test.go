package par_test

import (
	"reflect"
	"testing"
	"time"

	"netco/internal/sim"
	"netco/internal/sim/par"
)

// The model under test is a bidirectional token ring: every node relays
// tokens to both neighbours over keyed channels with a fixed transmit +
// propagation cost, mimicking how netem schedules link deliveries. Two
// counter-rotating token pairs are launched so that deliveries from
// *different* channels collide at the same node at the same nanosecond —
// the tie the (band, key) ordering must break identically in serial and
// parallel runs.
const (
	ringDelay = 200 * time.Microsecond
	ringTx    = 30 * time.Microsecond
	ringHops  = 40
)

type postFunc func(at time.Duration, ch, seq uint64, fn sim.CallFunc, a0, a1 any, n int)

type ringNode struct {
	id           int
	sched        *sim.Scheduler
	fnext, bnext *ringNode
	fch, bch     uint64
	fseq, bseq   uint64
	fout, bout   postFunc
	log          []ev
}

type ev struct {
	at  time.Duration
	hop int
	fwd bool
}

func (nd *ringNode) send(fwd bool, hop int) {
	if fwd {
		s := nd.fseq
		nd.fseq++
		nd.fout(nd.sched.Now()+ringDelay, nd.fch, s, deliver, nd.fnext, true, hop)
	} else {
		s := nd.bseq
		nd.bseq++
		nd.bout(nd.sched.Now()+ringDelay, nd.bch, s, deliver, nd.bnext, false, hop)
	}
}

func deliver(a0, a1 any, hop int) {
	nd := a0.(*ringNode)
	fwd := a1.(bool)
	nd.log = append(nd.log, ev{at: nd.sched.Now(), hop: hop, fwd: fwd})
	if hop >= ringHops {
		return
	}
	nd.sched.At(nd.sched.Now()+ringTx, func() { nd.send(fwd, hop+1) })
}

type ring struct {
	nodes  []*ringNode
	runner sim.Runner
}

// buildRing wires n nodes over parts domains (contiguous blocks); parts
// <= 0 builds the serial reference on a single scheduler. Channel ids
// and per-channel sequence numbers are assigned identically in both
// modes, exactly as netem does for links.
func buildRing(n, parts, workers int) *ring {
	r := &ring{}
	scheds := make([]*sim.Scheduler, n)
	var eng *par.Engine
	dom := func(i int) int { return i * parts / n }
	if parts <= 0 {
		s := sim.NewScheduler()
		r.runner = s
		for i := range scheds {
			scheds[i] = s
		}
		dom = func(int) int { return 0 }
	} else {
		eng = par.New(parts, workers)
		eng.SetLookahead(ringDelay)
		r.runner = eng
		for i := range scheds {
			scheds[i] = eng.Scheduler(dom(i))
		}
	}
	for i := 0; i < n; i++ {
		r.nodes = append(r.nodes, &ringNode{id: i, sched: scheds[i]})
	}
	post := func(src, dst int) postFunc {
		if dom(src) == dom(dst) {
			s := scheds[dst]
			return func(at time.Duration, ch, seq uint64, fn sim.CallFunc, a0, a1 any, n int) {
				s.AtCallChan(at, ch, seq, fn, a0, a1, n)
			}
		}
		return eng.Boundary(dom(src), dom(dst)).Post
	}
	for i, nd := range r.nodes {
		f, bk := (i+1)%n, (i-1+n)%n
		nd.fnext, nd.bnext = r.nodes[f], r.nodes[bk]
		nd.fch, nd.bch = uint64(i), uint64(n+i)
		nd.fout, nd.bout = post(i, f), post(i, bk)
	}
	return r
}

func (r *ring) kick(start int, fwd bool) {
	nd := r.nodes[start]
	nd.sched.At(0, func() { nd.send(fwd, 1) })
}

func (r *ring) launch() {
	r.kick(0, true)
	r.kick(0, false)
	r.kick(3, true)
	r.kick(3, false)
}

func (r *ring) logs() [][]ev {
	out := make([][]ev, len(r.nodes))
	for i, nd := range r.nodes {
		out[i] = nd.log
	}
	return out
}

// drive advances in uneven chunks, one of which lands exactly on a
// delivery time (first-hop arrival at ringDelay + ringTx + ringDelay),
// so epoch restarts and exact-deadline handoffs are both exercised.
func drive(r sim.Runner) {
	r.RunUntil(ringDelay + ringTx + ringDelay)
	r.RunFor(3 * time.Millisecond)
	r.RunUntil(12 * time.Millisecond)
}

func TestParallelMatchesSerial(t *testing.T) {
	const n = 12
	serial := buildRing(n, 0, 0)
	serial.launch()
	drive(serial.runner)
	want := serial.logs()

	// The test is only meaningful if same-time deliveries on different
	// channels actually occur — check the counter-rotating tokens met.
	collided := false
	for _, l := range want {
		for i := 1; i < len(l); i++ {
			if l[i].at == l[i-1].at {
				collided = true
			}
		}
	}
	if !collided {
		t.Fatal("model produced no same-time deliveries; tie-order coverage lost")
	}

	for _, parts := range []int{1, 2, 3, 4, 6} {
		for _, workers := range []int{1, 2, 4} {
			p := buildRing(n, parts, workers)
			p.launch()
			drive(p.runner)
			if got := p.logs(); !reflect.DeepEqual(got, want) {
				t.Errorf("parts=%d workers=%d: node logs diverge from serial", parts, workers)
			}
			if got, wantN := p.runner.Executed(), serial.runner.Executed(); got != wantN {
				t.Errorf("parts=%d workers=%d: executed %d events, serial %d", parts, workers, got, wantN)
			}
			if p.runner.Live() != 0 {
				t.Errorf("parts=%d workers=%d: %d live events after drain", parts, workers, p.runner.Live())
			}
			if got, wantT := p.runner.Now(), serial.runner.Now(); got != wantT {
				t.Errorf("parts=%d workers=%d: clock %v, serial %v", parts, workers, got, wantT)
			}
		}
	}
}

func TestRunDrains(t *testing.T) {
	serial := buildRing(12, 0, 0)
	serial.launch()
	serial.runner.(*sim.Scheduler).Run()
	want := serial.logs()

	p := buildRing(12, 3, 2)
	p.launch()
	p.runner.(*par.Engine).Run()
	if got := p.logs(); !reflect.DeepEqual(got, want) {
		t.Error("Run(): node logs diverge from serial")
	}
	if p.runner.Live() != 0 {
		t.Errorf("Run(): %d live events left", p.runner.Live())
	}
	if got, wantN := p.runner.Executed(), serial.runner.Executed(); got != wantN {
		t.Errorf("Run(): executed %d events, serial %d", got, wantN)
	}
}

// TestIdleSkip pairs a tiny lookahead with events seconds apart: without
// the jump-to-next-deadline shortcut RunUntil would grind through ~4e6
// empty epochs and time out.
func TestIdleSkip(t *testing.T) {
	eng := par.New(2, 2)
	eng.SetLookahead(time.Microsecond)
	b01 := eng.Boundary(0, 1)
	b10 := eng.Boundary(1, 0)
	done := false
	var hop2 sim.CallFunc = func(any, any, int) { done = true }
	hop1 := func(any, any, int) { b10.Post(3*time.Second, 2, 0, hop2, nil, nil, 0) }
	eng.Scheduler(0).At(time.Second, func() {
		b01.Post(2*time.Second, 1, 0, hop1, nil, nil, 0)
	})
	eng.RunUntil(4 * time.Second)
	if !done {
		t.Fatal("cross-domain chain did not complete")
	}
	if got := eng.Executed(); got != 3 {
		t.Fatalf("executed %d events, want 3", got)
	}
}

func TestHandoffLandsExactlyOnDeadline(t *testing.T) {
	eng := par.New(2, 2)
	eng.SetLookahead(200 * time.Microsecond)
	b := eng.Boundary(0, 1)
	s1 := eng.Scheduler(1)
	var got []time.Duration
	eng.Scheduler(0).At(100*time.Microsecond, func() {
		b.Post(300*time.Microsecond, 0, 0, func(any, any, int) {
			got = append(got, s1.Now())
		}, nil, nil, 0)
	})
	eng.RunUntil(300 * time.Microsecond)
	if len(got) != 1 || got[0] != 300*time.Microsecond {
		t.Fatalf("handoff on the RunUntil deadline fired %v, want exactly once at 300µs", got)
	}
	if eng.Live() != 0 {
		t.Fatalf("%d live events left", eng.Live())
	}
}

func TestBoundaryWithoutLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil with wired boundaries and zero lookahead should panic")
		}
	}()
	eng := par.New(2, 1)
	eng.Boundary(0, 1)
	eng.RunUntil(time.Millisecond)
}
