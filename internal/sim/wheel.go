package sim

import (
	"sort"
	"time"
)

// Wheel is a hierarchical timer wheel layered on a Scheduler: a bulk
// lifecycle scheduler for workloads that arm and expire timers by the
// hundreds of thousands per simulated second (the churn engine's flow
// departures). Arming a wheel entry is O(1) — an append to a slot
// bucket — instead of an O(log n) heap push, and the scheduler's 4-ary
// heap only ever sees one event per firing instant, not one per timer,
// so a churn epoch costs O(expiring entries) rather than O(log n) heap
// churn per lifecycle event.
//
// Semantics are a strict subset of the Scheduler's: an entry armed for
// virtual time t fires at exactly t, and entries sharing an instant
// fire in arm order — the same (deadline, sequence) discipline as the
// heap's band-0 events, which is what the differential test in
// wheel_test.go pins (a randomized schedule armed through the wheel
// produces the identical (time, id) firing sequence as the same
// schedule armed through Scheduler.At). Relative to *non-wheel* events
// at the same instant, wheel entries fire inside the wheel's own
// scheduler event, whose position follows the ordinary insertion-
// sequence tie-break of the moment the wheel armed it; a workload that
// needs a total order across same-instant lifecycle work routes all of
// it through the wheel.
//
// The slot structure is an indexing heuristic, never a source of
// truth: every entry carries its exact deadline, expiry batches are
// sorted by (deadline, seq), and the wheel's single scheduler timer is
// always armed at the exact minimum pending deadline. Cancellation is
// lazy (the entry is reaped at its deadline, like Timer.Stop's
// cancelled-node sweep), which keeps Stop O(1) without ever letting a
// stale bucket perturb a live entry's firing time.
//
// Entries live in a recycled arena chained through int32 links, so
// steady-state arm/fire/cancel allocates nothing once the arena has
// grown to the working set.

const (
	wheelSlots  = 256 // slots per level (power of two: mask indexing)
	wheelLevels = 4
	// wheelHorizon is the addressable range in ticks. Deadlines beyond
	// it are bucketed at the horizon edge and re-placed as the wheel
	// advances; they still fire at their exact time (the bucket is an
	// index, the deadline is the truth), at the cost of extra cascade
	// work — irrelevant in practice (256^4 ticks ≈ 5 sim-days at 100 µs).
	wheelHorizon = int64(wheelSlots) * wheelSlots * wheelSlots * wheelSlots
)

// wheelEntry is one pooled timer. next chains the slot bucket; gen
// tells stale WheelTimers from live ones after recycling, exactly like
// the scheduler's event arena.
type wheelEntry struct {
	at   time.Duration
	seq  uint64
	next int32

	fn   func()
	call CallFunc
	a0   any
	a1   any
	n    int

	gen       uint32
	cancelled bool
}

// Wheel schedules bulk timers onto a Scheduler. Not safe for
// concurrent use (like the Scheduler itself); create one per
// simulation.
type Wheel struct {
	sched *Scheduler
	tick  time.Duration

	// slots[l][i] heads an intrusive free-list chain of entry indices
	// (-1 = empty); count tracks population so scans skip empties
	// without walking chains. A level-l slot s covers the tick window
	// [s·256^l, (s+1)·256^l); every entry in it has deadline at or
	// after the window start — the lower-bound property the cascade
	// relies on.
	slots [wheelLevels][wheelSlots]int32
	count [wheelLevels][wheelSlots]int

	ents []wheelEntry
	free []int32

	pos     int64  // current tick floor: no entry's tick is below it
	seq     uint64 // arm order, the intra-instant tie-break
	pending int    // armed, un-cancelled, unfired entries

	// due is the current tick's expiry batch, sorted by (at, seq);
	// dueNext indexes the first unfired element. Reused scratch.
	due     []int32
	dueNext int
	sorter  dueSorter

	armed     bool
	timer     Timer
	fireFn    func()
	fireOneFn CallFunc
	expired   uint64
}

// NewWheel creates a wheel on sched with the given tick granularity
// (the level-0 slot width). Deadlines are not quantized — an entry
// fires at its exact virtual time — the tick only sets how much
// expiry batching one slot can amortize. tick must be positive.
func NewWheel(sched *Scheduler, tick time.Duration) *Wheel {
	if tick <= 0 {
		panic("sim: wheel tick must be positive")
	}
	w := &Wheel{sched: sched, tick: tick}
	for l := range w.slots {
		for i := range w.slots[l] {
			w.slots[l][i] = -1
		}
	}
	w.pos = int64(sched.Now() / tick)
	w.fireFn = w.fire // bound once: re-arming allocates nothing
	w.fireOneFn = w.fireOne
	w.sorter.w = w
	return w
}

// Pending returns the number of armed, un-cancelled entries that have
// not fired yet.
func (w *Wheel) Pending() int { return w.pending }

// Expired returns how many entries have fired — the wheel's lifecycle
// event counter.
func (w *Wheel) Expired() uint64 { return w.expired }

// WheelTimer is a cancellation handle for one wheel entry, a plain
// value like sim.Timer. The zero WheelTimer refers to no entry.
type WheelTimer struct {
	w   *Wheel
	idx int32
	gen uint32
}

// Stop cancels the entry if it has not fired, reporting whether it
// did. Cancellation is lazy: the entry stays bucketed and is reaped
// silently at its deadline.
func (t WheelTimer) Stop() bool {
	if t.w == nil {
		return false
	}
	e := &t.w.ents[t.idx]
	if e.gen != t.gen || e.cancelled {
		return false
	}
	e.cancelled = true
	t.w.pending--
	return true
}

// After arms fn to fire d after the current virtual time. Negative d
// is treated as zero.
func (w *Wheel) After(d time.Duration, fn func()) WheelTimer {
	if d < 0 {
		d = 0
	}
	return w.At(w.sched.Now()+d, fn)
}

// At arms fn to fire at absolute virtual time at (clamped to now, like
// Scheduler.At).
func (w *Wheel) At(at time.Duration, fn func()) WheelTimer {
	idx, e := w.alloc(at)
	e.fn = fn
	return w.arm(idx, e)
}

// AtCall is the allocation-free form: fn(a0, a1, n) fires at the given
// time with the arguments stored inline in the pooled entry, exactly
// like Scheduler.AtCall. Mass lifecycle timers (one per churn flow)
// use this so arming never allocates a closure.
func (w *Wheel) AtCall(at time.Duration, fn CallFunc, a0, a1 any, n int) WheelTimer {
	idx, e := w.alloc(at)
	e.call = fn
	e.a0 = a0
	e.a1 = a1
	e.n = n
	return w.arm(idx, e)
}

func (w *Wheel) alloc(at time.Duration) (int32, *wheelEntry) {
	if now := w.sched.Now(); at < now {
		at = now
	}
	var idx int32
	if n := len(w.free); n > 0 {
		idx = w.free[n-1]
		w.free = w.free[:n-1]
	} else {
		w.ents = append(w.ents, wheelEntry{})
		idx = int32(len(w.ents) - 1)
	}
	e := &w.ents[idx]
	e.at = at
	e.seq = w.seq
	w.seq++
	return idx, e
}

// arm routes the entry: same-instant entries bypass the wheel and
// become ordinary scheduler events (they fire this instant, after the
// currently-executing event, in arm order); future entries are
// bucketed, and the wheel's scheduler timer is pulled earlier if the
// new deadline beats it.
func (w *Wheel) arm(idx int32, e *wheelEntry) WheelTimer {
	w.pending++
	t := WheelTimer{w: w, idx: idx, gen: e.gen}
	if e.at <= w.sched.Now() {
		w.sched.AtCall(e.at, w.fireOneFn, nil, nil, int(idx))
		return t
	}
	w.place(idx, e)
	if !w.armed || e.at < w.timer.Deadline() {
		w.rearmAt(e.at)
	}
	return t
}

// fireOne runs a single same-instant entry scheduled directly on the
// scheduler by arm.
func (w *Wheel) fireOne(_, _ any, n int) {
	idx := int32(n)
	e := &w.ents[idx]
	fn, call, a0, a1, k := e.fn, e.call, e.a0, e.a1, e.n
	cancelled := e.cancelled
	w.release(idx)
	if cancelled {
		return
	}
	w.pending--
	w.expired++
	if fn != nil {
		fn()
	} else {
		call(a0, a1, k)
	}
}

// place buckets the entry at the lowest level whose horizon contains
// its deadline, relative to the wheel's current position. Deadlines
// beyond the addressable horizon are indexed at the horizon edge (the
// deadline itself stays exact).
func (w *Wheel) place(idx int32, e *wheelEntry) {
	tickAt := int64(e.at / w.tick)
	delta := tickAt - w.pos
	if delta < 0 {
		delta = 0
		tickAt = w.pos
	}
	if delta >= wheelHorizon {
		delta = wheelHorizon - 1
		tickAt = w.pos + delta
	}
	span := int64(1)
	for l := 0; l < wheelLevels; l++ {
		if delta < span*wheelSlots || l == wheelLevels-1 {
			slot := (tickAt / span) & (wheelSlots - 1)
			e.next = w.slots[l][slot]
			w.slots[l][slot] = idx
			w.count[l][slot]++
			return
		}
		span *= wheelSlots
	}
}

// rearmAt points the wheel's single scheduler event at the given
// deadline, lazily cancelling any previously armed one.
func (w *Wheel) rearmAt(at time.Duration) {
	if w.armed {
		w.timer.Stop()
	}
	w.armed = true
	w.timer = w.sched.At(at, w.fireFn)
}

// release recycles a popped entry.
func (w *Wheel) release(idx int32) {
	e := &w.ents[idx]
	e.fn = nil
	e.call = nil
	e.a0 = nil
	e.a1 = nil
	e.n = 0
	e.next = -1
	e.cancelled = false
	e.gen++
	w.free = append(w.free, idx)
}

// dueSorter orders the unfired suffix of the due batch by (deadline,
// seq) without allocating (sort.Sort on a cached field, not
// sort.Slice's reflective swapper).
type dueSorter struct {
	w *Wheel
	s []int32
}

func (d *dueSorter) Len() int      { return len(d.s) }
func (d *dueSorter) Swap(i, j int) { d.s[i], d.s[j] = d.s[j], d.s[i] }
func (d *dueSorter) Less(i, j int) bool {
	a, b := &d.w.ents[d.s[i]], &d.w.ents[d.s[j]]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// fire is the wheel's scheduler event: it advances the wheel to the
// current tick, merges that tick's bucket into the due batch, runs
// every entry whose deadline is now (in (deadline, seq) order), and
// re-arms for the earliest remaining deadline.
func (w *Wheel) fire() {
	w.armed = false
	now := w.sched.Now()
	tick := int64(now / w.tick)
	if w.dueNext >= len(w.due) {
		w.due = w.due[:0]
		w.dueNext = 0
	}
	if tick > w.pos {
		w.cascadeThrough(tick)
		w.pos = tick
	}

	// Merge the wheel-position slot — the initial fill on the first
	// firing of a tick, plus any entries armed into it after a previous
	// partial firing — and keep the unfired suffix sorted. The position
	// slot, not the clock-tick slot: nextDeadline advances pos to the
	// next *populated* tick, which may be ahead of real time, and place
	// clamp-buckets entries armed for ticks behind pos into pos's slot.
	// Those stragglers keep exact deadlines earlier than pos's tick, so
	// a firing for one must drain pos's slot or it would spin forever
	// re-arming a deadline the tick-slot merge can never collect.
	slot := w.pos & (wheelSlots - 1)
	if w.count[0][slot] > 0 {
		for idx := w.slots[0][slot]; idx >= 0; {
			e := &w.ents[idx]
			next := e.next
			e.next = -1
			w.due = append(w.due, idx)
			idx = next
		}
		w.slots[0][slot] = -1
		w.count[0][slot] = 0
		w.sorter.s = w.due[w.dueNext:]
		sort.Sort(&w.sorter)
		w.sorter.s = nil
	}

	// Run the due prefix. Callbacks may arm new entries: same-instant
	// ones bypass the wheel (arm's direct path) and fire after this
	// event; future ones bucket normally and are covered by the
	// re-arm below.
	for w.dueNext < len(w.due) {
		idx := w.due[w.dueNext]
		e := &w.ents[idx]
		if e.at > now {
			break
		}
		w.dueNext++
		fn, call, a0, a1, n := e.fn, e.call, e.a0, e.a1, e.n
		cancelled := e.cancelled
		w.release(idx)
		if cancelled {
			continue
		}
		w.pending--
		w.expired++
		if fn != nil {
			fn()
		} else {
			call(a0, a1, n)
		}
	}

	// Re-arm at the earliest remaining deadline: the unfired remainder
	// of this tick's batch, a callback-armed entry (already armed), or
	// the next bucketed deadline.
	if w.dueNext < len(w.due) {
		if at := w.ents[w.due[w.dueNext]].at; !w.armed || at < w.timer.Deadline() {
			w.rearmAt(at)
		}
		return
	}
	if at, ok := w.nextDeadline(); ok && (!w.armed || at < w.timer.Deadline()) {
		w.rearmAt(at)
	}
}

// cascadeThrough opens, in window-start order, every higher-level slot
// whose window begins at or before tick, so that all entries with
// ticks <= tick end up in level 0. Cost is proportional to the slots
// actually crossed that hold entries.
func (w *Wheel) cascadeThrough(tick int64) {
	for w.cascadeEarliest(tick) {
	}
}

// cascadeEarliest finds the populated higher-level slot with the
// smallest window start (clamped to pos) at or below bound and
// redistributes it one level down, advancing pos to the window start.
// Choosing the minimum across levels before moving pos is what makes
// the jump safe: every other entry's deadline is bounded below by its
// own slot's window start, which is no smaller. Reports whether a
// slot was cascaded.
func (w *Wheel) cascadeEarliest(bound int64) bool {
	bestL := -1
	var bestSlot int32
	var bestStart int64
	span := int64(wheelSlots)
	for l := 1; l < wheelLevels; l++ {
		base := w.pos / span
		for off := int64(0); off < wheelSlots; off++ {
			s := base + off
			slot := int32(s & (wheelSlots - 1))
			if w.count[l][slot] == 0 {
				continue
			}
			start := s * span
			if start < w.pos {
				start = w.pos
			}
			if start <= bound && (bestL < 0 || start < bestStart) {
				bestL, bestSlot, bestStart = l, slot, start
			}
			break // slots scan in increasing start: first populated is the level's min
		}
		span *= wheelSlots
	}
	if bestL < 0 {
		return false
	}
	if bestStart > w.pos {
		w.pos = bestStart
	}
	head := w.slots[bestL][bestSlot]
	w.slots[bestL][bestSlot] = -1
	w.count[bestL][bestSlot] = 0
	for idx := head; idx >= 0; {
		e := &w.ents[idx]
		next := e.next
		e.next = -1
		w.place(idx, e)
		idx = next
	}
	return true
}

// nextDeadline returns the exact earliest deadline among all bucketed
// entries (cancelled ones included — they are reaped at their own
// deadline), cascading higher-level windows down as needed. Scan cost
// is bounded by slots per level, independent of entry count.
func (w *Wheel) nextDeadline() (time.Duration, bool) {
	for {
		// Earliest populated level-0 tick in the window [pos, pos+256).
		t0 := int64(-1)
		for s := w.pos; s < w.pos+wheelSlots; s++ {
			if w.count[0][s&(wheelSlots-1)] > 0 {
				t0 = s
				break
			}
		}
		// A higher-level window opening at or before t0 may hold
		// earlier entries: open it and rescan. With no level-0
		// candidate, open the earliest higher-level window
		// unconditionally.
		bound := t0
		if bound < 0 {
			bound = int64(1)<<62 - 1
		}
		if w.cascadeEarliest(bound) {
			continue
		}
		if t0 < 0 {
			return 0, false
		}
		if t0 > w.pos {
			w.pos = t0
		}
		best := time.Duration(-1)
		for idx := w.slots[0][t0&(wheelSlots-1)]; idx >= 0; idx = w.ents[idx].next {
			if e := &w.ents[idx]; best < 0 || e.at < best {
				best = e.at
			}
		}
		return best, true
	}
}
