package sim

import (
	"testing"
	"time"
)

// benchTick is the AtCall target for the scheduler guards: a package
// function taking a pointer argument, so scheduling it boxes nothing.
func benchTick(a0, _ any, n int) {
	*a0.(*int) += n
}

// TestSchedulerSteadyStateZeroAlloc guards the event-pool invariant: once
// the arena and heap have grown to working-set size, a schedule→fire cycle
// must not allocate. This covers both the closure form (At with a func
// value created once and reused) and the argument-carrying form (AtCall
// with a package function and pointer-shaped arguments).
func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	t.Run("At", func(t *testing.T) {
		s := NewScheduler()
		fired := 0
		tick := func() { fired++ } // one closure, reused every schedule
		// Warm the arena and heap.
		for i := 0; i < 64; i++ {
			s.At(time.Duration(i), tick)
		}
		s.Run()
		got := testing.AllocsPerRun(200, func() {
			for i := 0; i < 16; i++ {
				s.At(s.Now()+time.Duration(i+1), tick)
			}
			s.Run()
		})
		if got != 0 {
			t.Fatalf("At schedule/fire allocated %.1f per cycle, want 0", got)
		}
	})

	t.Run("AtCall", func(t *testing.T) {
		s := NewScheduler()
		sum := 0
		for i := 0; i < 64; i++ {
			s.AtCall(time.Duration(i), benchTick, &sum, nil, 1)
		}
		s.Run()
		got := testing.AllocsPerRun(200, func() {
			for i := 0; i < 16; i++ {
				s.AtCall(s.Now()+time.Duration(i+1), benchTick, &sum, nil, 1)
			}
			s.Run()
		})
		if got != 0 {
			t.Fatalf("AtCall schedule/fire allocated %.1f per cycle, want 0", got)
		}
	})

	t.Run("StopRecycle", func(t *testing.T) {
		// Cancelled timers must also recycle without leaking or
		// allocating: the record is reclaimed when its heap node pops.
		s := NewScheduler()
		fired := 0
		tick := func() { fired++ }
		for i := 0; i < 64; i++ {
			s.At(time.Duration(i), tick)
		}
		s.Run()
		got := testing.AllocsPerRun(200, func() {
			for i := 0; i < 16; i++ {
				tm := s.At(s.Now()+time.Duration(i+1), tick)
				if i%2 == 0 {
					tm.Stop()
				}
			}
			s.Run()
		})
		if got != 0 {
			t.Fatalf("Stop+drain allocated %.1f per cycle, want 0", got)
		}
	})
}

// BenchmarkSchedulerChurn measures the pooled schedule→fire round trip
// with a bounded pending set — the hot pattern of the packet pipeline
// (every link hop schedules two events, every proc one). Contrast with
// BenchmarkSchedulerThroughput, which measures a large pre-filled heap.
func BenchmarkSchedulerChurn(b *testing.B) {
	b.Run("At", func(b *testing.B) {
		s := NewScheduler()
		fired := 0
		tick := func() { fired++ }
		for i := 0; i < 64; i++ {
			s.At(time.Duration(i), tick)
		}
		s.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.At(s.Now()+1, tick)
			s.Step()
		}
	})
	b.Run("AtCall", func(b *testing.B) {
		s := NewScheduler()
		sum := 0
		for i := 0; i < 64; i++ {
			s.AtCall(time.Duration(i), benchTick, &sum, nil, 1)
		}
		s.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AtCall(s.Now()+1, benchTick, &sum, nil, 1)
			s.Step()
		}
	})
}
