package sim

import "time"

// Runner drives a simulation to a point in virtual time. Both the serial
// Scheduler and the partitioned engine (internal/sim/par) implement it,
// so experiment drivers advance a testbed without caring how many
// schedulers sit underneath.
type Runner interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// RunFor advances the simulation by d.
	RunFor(d time.Duration)
	// RunUntil executes events with deadlines <= t, then advances the
	// clock to exactly t.
	RunUntil(t time.Duration)
	// Executed returns the total number of events fired so far.
	Executed() uint64
	// Live returns the number of events still scheduled to fire.
	Live() int
}

var _ Runner = (*Scheduler)(nil)
