package sim

import (
	"testing"
	"time"
)

func TestTickerFiresAtIntervals(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	tk := s.Every(10*time.Millisecond, func() {
		fired = append(fired, s.Now())
	})
	s.RunFor(35 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d times, want 3 (%v)", len(fired), fired)
	}
	for i, at := range fired {
		if want := time.Duration(i+1) * 10 * time.Millisecond; at != want {
			t.Fatalf("firing %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop()
	s.RunFor(50 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired after Stop: %d", len(fired))
	}
	if s.Live() != 0 {
		t.Fatalf("stopped ticker left %d live events", s.Live())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	var tk *Ticker
	n := 0
	tk = s.Every(time.Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 2 {
		t.Fatalf("fired %d times, want 2", n)
	}
	tk.Stop() // idempotent
}
