package sim

import (
	"sync"
	"testing"
	"time"
)

// littleSim runs a self-contained event cascade on its own scheduler and
// RNG and returns a digest of what executed. It is the shape of one
// sweep-runner job in miniature.
func littleSim(seed int64) (executed uint64, digest uint64) {
	sched := NewScheduler()
	rng := NewRNG(seed)
	var acc uint64
	var tick func()
	n := 0
	tick = func() {
		acc = acc*31 + rng.Uint64()%1000
		n++
		if n < 200 {
			sched.At(sched.Now()+time.Duration(1+rng.Intn(50))*time.Microsecond, tick)
		}
	}
	sched.At(0, tick)
	sched.Run()
	return sched.Executed(), acc
}

// Schedulers are single-threaded by contract, but whole simulations must
// be freely parallelisable: one scheduler per goroutine, nothing shared.
// Under -race this doubles as a check that the scheduler, its event pool
// and the RNG hold no hidden global state.
func TestSchedulersIsolatedAcrossGoroutines(t *testing.T) {
	const goroutines = 16
	wantExec, wantDigest := littleSim(7)

	var wg sync.WaitGroup
	execs := make([]uint64, goroutines)
	digests := make([]uint64, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			execs[g], digests[g] = littleSim(7)
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if execs[g] != wantExec || digests[g] != wantDigest {
			t.Fatalf("goroutine %d diverged: exec=%d digest=%#x, want exec=%d digest=%#x",
				g, execs[g], digests[g], wantExec, wantDigest)
		}
	}
}

// Different seeds on concurrent schedulers stay independent: each
// reproduces its own single-threaded reference exactly.
func TestConcurrentSchedulersMatchSerialReference(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13}
	type ref struct{ exec, digest uint64 }
	want := make([]ref, len(seeds))
	for i, s := range seeds {
		want[i].exec, want[i].digest = littleSim(s)
	}

	var wg sync.WaitGroup
	got := make([]ref, len(seeds))
	wg.Add(len(seeds))
	for i, s := range seeds {
		go func(i int, s int64) {
			defer wg.Done()
			got[i].exec, got[i].digest = littleSim(s)
		}(i, s)
	}
	wg.Wait()
	for i := range seeds {
		if got[i] != want[i] {
			t.Fatalf("seed %d: concurrent run %+v != serial reference %+v", seeds[i], got[i], want[i])
		}
	}
}
