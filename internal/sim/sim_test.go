package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Microsecond, func() { got = append(got, 3) })
	s.At(10*time.Microsecond, func() { got = append(got, 1) })
	s.At(20*time.Microsecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Microsecond {
		t.Fatalf("Now() = %v, want 30µs", s.Now())
	}
}

func TestSchedulerSimultaneousFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO at index %d: got %d", i, got[i])
		}
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler()
	s.At(time.Second, func() {
		s.At(time.Millisecond, func() {
			if s.Now() != time.Second {
				t.Errorf("past event ran at %v, want clock held at 1s", s.Now())
			}
		})
	})
	s.Run()
}

func TestSchedulerAfterNegative(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.After(0, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop() = true after event fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	s.At(time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.At(3*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.RunUntil(2 * time.Millisecond)
	if len(fired) != 1 {
		t.Fatalf("fired %d events, want 1", len(fired))
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now() = %v, want 2ms", s.Now())
	}
	s.RunFor(time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events after RunFor, want 2", len(fired))
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(time.Millisecond, func() { fired = true })
	s.RunUntil(time.Millisecond)
	if !fired {
		t.Fatal("event at boundary did not fire")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 50 {
			s.After(time.Microsecond, schedule)
		}
	}
	s.After(0, schedule)
	s.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if s.Executed() != 50 {
		t.Fatalf("Executed() = %d, want 50", s.Executed())
	}
}

// TestSchedulerDeterminism is the determinism contract: identical schedules
// execute identically, regardless of insertion pattern randomness.
func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		g := NewRNG(seed)
		s := NewScheduler()
		var order []time.Duration
		for i := 0; i < 500; i++ {
			d := time.Duration(g.Intn(1000)) * time.Microsecond
			s.At(d, func() { order = append(order, s.Now()) })
		}
		s.Run()
		return order
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(deadlines []uint16) bool {
		s := NewScheduler()
		var fired []time.Duration
		for _, d := range deadlines {
			dd := time.Duration(d) * time.Microsecond
			s.At(dd, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(deadlines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndFork(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	// Forks from identically-advanced parents are identical.
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Uint64() != fb.Uint64() {
			t.Fatal("forked RNGs diverge")
		}
	}
	// A fork is independent of further parent use.
	if a.Intn(10) < 0 {
		t.Fatal("Intn out of range")
	}
}

func TestRNGBytes(t *testing.T) {
	g := NewRNG(1)
	b := make([]byte, 64)
	g.Bytes(b)
	allZero := true
	for _, x := range b {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("Bytes produced all zeros")
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i)*time.Nanosecond, func() {})
	}
	s.Run()
}

func TestLiveCounter(t *testing.T) {
	s := NewScheduler()
	t1 := s.After(time.Millisecond, func() {})
	t2 := s.After(2*time.Millisecond, func() {})
	s.After(3*time.Millisecond, func() {})
	if s.Live() != 3 {
		t.Fatalf("Live() = %d, want 3", s.Live())
	}
	t1.Stop()
	if s.Live() != 2 {
		t.Fatalf("Live() after Stop = %d, want 2", s.Live())
	}
	// The cancelled node is still heap residue: Pending overcounts, Live
	// does not.
	if s.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3 (lazy cancellation)", s.Pending())
	}
	s.RunUntil(2 * time.Millisecond)
	if s.Live() != 1 {
		t.Fatalf("Live() mid-run = %d, want 1", s.Live())
	}
	t2.Stop() // already fired: must not double-decrement
	if s.Live() != 1 {
		t.Fatalf("Live() after post-fire Stop = %d, want 1", s.Live())
	}
	s.Run()
	if s.Live() != 0 {
		t.Fatalf("Live() after drain = %d, want 0", s.Live())
	}
}

func TestRunBeforeHalfOpen(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(time.Millisecond, func() { got = append(got, 1) })
	s.At(2*time.Millisecond, func() { got = append(got, 2) })
	s.RunBefore(2 * time.Millisecond)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RunBefore executed %v, want only the 1ms event", got)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now() = %v, want clock advanced to the bound", s.Now())
	}
	s.RunUntil(2 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("boundary event lost: got %v", got)
	}
}

func TestChannelEventOrdering(t *testing.T) {
	// At one deadline: ordinary (band-0) events first in insertion
	// order, then channel events by (channel, sequence) regardless of
	// insertion order — the invariant the parallel engine's bit-identity
	// rests on.
	s := NewScheduler()
	var got []string
	rec := func(tag string) CallFunc {
		return func(any, any, int) { got = append(got, tag) }
	}
	at := time.Millisecond
	s.AtCallChan(at, 7, 1, rec("ch7.1"), nil, nil, 0)
	s.AtCallChan(at, 3, 5, rec("ch3.5"), nil, nil, 0)
	s.At(at, func() { got = append(got, "plain0") })
	s.AtCallChan(at, 3, 2, rec("ch3.2"), nil, nil, 0)
	s.At(at, func() { got = append(got, "plain1") })
	s.Run()
	want := []string{"plain0", "plain1", "ch3.2", "ch3.5", "ch7.1"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break order = %v, want %v", got, want)
		}
	}
}

func TestPeekDeadline(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.PeekDeadline(); ok {
		t.Fatal("PeekDeadline on empty scheduler reported an event")
	}
	tm := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	tm.Stop()
	at, ok := s.PeekDeadline()
	if !ok || at != 2*time.Millisecond {
		t.Fatalf("PeekDeadline = %v,%v; want 2ms (cancelled head skipped)", at, ok)
	}
}
