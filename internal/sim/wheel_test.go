package sim

import (
	"fmt"
	"testing"
	"time"
)

// firing is one observed callback: the virtual time it ran at and the
// arm-order id it was registered with.
type firing struct {
	at time.Duration
	id int
}

// wheelScript is a randomized timer schedule: initial arms, a cancel
// set, and rearm chains (callbacks that arm further timers when they
// fire) — the differential workload run identically through the raw
// scheduler heap and through the wheel.
type wheelScript struct {
	arms    []time.Duration // initial deadlines, index = id
	cancel  map[int]bool    // ids cancelled immediately after arming everything
	chain   map[int]time.Duration // id -> extra delay to arm a child timer on fire
	chainID map[int]int           // id -> child id
}

func genWheelScript(seed int64, n int) *wheelScript {
	rng := NewRNG(seed)
	s := &wheelScript{
		cancel:  map[int]bool{},
		chain:   map[int]time.Duration{},
		chainID: map[int]int{},
	}
	nextID := n
	for i := 0; i < n; i++ {
		var d time.Duration
		switch rng.Intn(10) {
		case 0: // same-instant duplicates: exercise the seq tie-break
			d = time.Duration(rng.Intn(4)) * time.Millisecond
		case 1: // level-2 horizon (tick = 100µs → level 1 tops out at 6.55s)
			d = 7*time.Second + time.Duration(rng.Intn(1000))*time.Millisecond
		case 2: // level-3 horizon (level 2 tops out at ~1677s)
			d = 1700*time.Second + time.Duration(rng.Intn(100))*time.Second
		case 3: // immediate
			d = 0
		default: // dense short-range churn, sub-tick offsets included
			d = time.Duration(rng.Intn(50_000)) * 10 * time.Microsecond
		}
		s.arms = append(s.arms, d)
		if rng.Intn(5) == 0 {
			s.cancel[i] = true
		} else if rng.Intn(4) == 0 {
			s.chain[i] = time.Duration(rng.Intn(2000)) * 100 * time.Microsecond
			s.chainID[i] = nextID
			nextID++
		}
	}
	return s
}

// runScriptHeap arms the script directly on a Scheduler.
func runScriptHeap(s *wheelScript) []firing {
	sched := NewScheduler()
	var got []firing
	var armChain func(id int)
	timers := make([]Timer, len(s.arms))
	armChain = func(id int) {
		if d, ok := s.chain[id]; ok {
			child := s.chainID[id]
			sched.After(d, func() {
				got = append(got, firing{sched.Now(), child})
			})
		}
	}
	for i, d := range s.arms {
		id := i
		timers[i] = sched.After(d, func() {
			got = append(got, firing{sched.Now(), id})
			armChain(id)
		})
	}
	for id := range s.cancel {
		timers[id].Stop()
	}
	sched.Run()
	return got
}

// runScriptWheel arms the identical script through a Wheel.
func runScriptWheel(s *wheelScript, tick time.Duration) ([]firing, *Wheel) {
	sched := NewScheduler()
	w := NewWheel(sched, tick)
	var got []firing
	var armChain func(id int)
	timers := make([]WheelTimer, len(s.arms))
	armChain = func(id int) {
		if d, ok := s.chain[id]; ok {
			child := s.chainID[id]
			w.After(d, func() {
				got = append(got, firing{sched.Now(), child})
			})
		}
	}
	for i, d := range s.arms {
		id := i
		timers[i] = w.After(d, func() {
			got = append(got, firing{sched.Now(), id})
			armChain(id)
		})
	}
	for id := range s.cancel {
		if !timers[id].Stop() {
			panic("wheel: Stop on a pending timer reported false")
		}
	}
	sched.Run()
	return got, w
}

// TestWheelMatchesHeapOnRandomSchedules is the wheel's ordering
// contract: a randomized schedule (same-instant duplicates, sub-tick
// offsets, deadlines spanning every wheel level, cancellations, and
// rearm chains from inside callbacks) armed through the wheel must
// produce the exact (time, arm-order) firing sequence as the same
// schedule armed directly on the 4-ary heap.
func TestWheelMatchesHeapOnRandomSchedules(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		s := genWheelScript(seed, 400)
		want := runScriptHeap(s)
		got, w := runScriptWheel(s, 100*time.Microsecond)
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d callbacks, heap fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d diverged: wheel (%v, id %d) vs heap (%v, id %d)",
					seed, i, got[i].at, got[i].id, want[i].at, want[i].id)
			}
		}
		if w.Pending() != 0 {
			t.Fatalf("seed %d: %d entries still pending after drain", seed, w.Pending())
		}
		fired := len(s.arms) - len(s.cancel)
		for id := range s.chain {
			if !s.cancel[id] {
				fired++
			}
		}
		if int(w.Expired()) != fired {
			t.Fatalf("seed %d: Expired() = %d, want %d", seed, w.Expired(), fired)
		}
	}
}

// TestWheelTickGranularityInvariance pins that the tick size is pure
// indexing: the same schedule fires identically at wildly different
// granularities (including ticks so coarse that everything lands in
// one slot, and so fine that top-level horizon clamping kicks in).
func TestWheelTickGranularityInvariance(t *testing.T) {
	s := genWheelScript(11, 300)
	want := runScriptHeap(s)
	for _, tick := range []time.Duration{time.Microsecond, 100 * time.Microsecond, 50 * time.Millisecond, 10 * time.Second} {
		got, _ := runScriptWheel(s, tick)
		if len(got) != len(want) {
			t.Fatalf("tick %v: fired %d, want %d", tick, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tick %v: firing %d diverged: (%v, id %d) vs (%v, id %d)",
					tick, i, got[i].at, got[i].id, want[i].at, want[i].id)
			}
		}
	}
}

// TestWheelCascade exercises entries placed at a high level whose
// windows must open and redistribute down before firing, including an
// early entry armed *after* a far one (the wheel timer must pull in).
func TestWheelCascade(t *testing.T) {
	sched := NewScheduler()
	w := NewWheel(sched, 100*time.Microsecond)
	var order []string
	w.After(2000*time.Second, func() { order = append(order, "far") })   // level 3
	w.After(100*time.Second, func() { order = append(order, "mid") })    // level 2
	w.After(time.Second, func() { order = append(order, "near") })       // level 1
	w.After(time.Millisecond, func() { order = append(order, "soon") })  // level 0
	sched.Run()
	want := []string{"soon", "near", "mid", "far"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("cascade order = %v, want %v", order, want)
	}
	if w.Pending() != 0 || w.Expired() != 4 {
		t.Fatalf("pending %d expired %d after cascade run", w.Pending(), w.Expired())
	}
}

// TestWheelStop pins cancellation semantics: Stop reports true exactly
// once, a cancelled entry never fires, a fired entry's handle reports
// false, and a handle is not confused by arena recycling (generation
// check).
func TestWheelStop(t *testing.T) {
	sched := NewScheduler()
	w := NewWheel(sched, time.Millisecond)
	fired := 0
	tm := w.After(10*time.Millisecond, func() { fired++ })
	if !tm.Stop() {
		t.Fatal("first Stop reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel", w.Pending())
	}
	keep := w.After(20*time.Millisecond, func() { fired++ })
	sched.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (cancelled entry must not fire)", fired)
	}
	if keep.Stop() {
		t.Fatal("Stop after firing reported true")
	}
	// The cancelled entry's slot is recycled by now; a fresh timer may
	// reuse it. The stale handle must not cancel the new tenant.
	tm2 := w.After(5*time.Millisecond, func() { fired++ })
	if tm.Stop() {
		t.Fatal("stale handle cancelled a recycled entry")
	}
	sched.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	_ = tm2
	var zero WheelTimer
	if zero.Stop() {
		t.Fatal("zero WheelTimer Stop reported true")
	}
}

// TestWheelSameInstantArm covers the direct-dispatch path: a callback
// arming work at the current instant runs it this instant, after the
// firing event, in arm order.
func TestWheelSameInstantArm(t *testing.T) {
	sched := NewScheduler()
	w := NewWheel(sched, time.Millisecond)
	var order []string
	w.After(time.Millisecond, func() {
		order = append(order, "a")
		w.After(0, func() { order = append(order, "c") })
		w.After(0, func() { order = append(order, "d") })
		order = append(order, "b")
	})
	w.After(2*time.Millisecond, func() { order = append(order, "e") })
	sched.Run()
	want := []string{"a", "b", "c", "d", "e"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("same-instant order = %v, want %v", order, want)
	}
}

// TestWheelPosAheadStraggler reproduces the churn-engine arming
// pattern that once live-locked the wheel: periodic waves each arming
// timers whose deadlines spread far past the wave period (level-1
// territory at a 100 µs tick). After a quiet gap, nextDeadline
// advances pos to the next *populated* tick — which can run ahead of
// the clock — and the next wave's near deadlines then land behind pos,
// where place clamp-buckets them into the current pos slot. fire must
// merge the pos slot (not the clock-tick slot) or those stragglers are
// never collected and the wheel re-arms their past deadline forever.
func TestWheelPosAheadStraggler(t *testing.T) {
	sched := NewScheduler()
	w := NewWheel(sched, 100*time.Microsecond)
	rng := NewRNG(3)
	fired := 0
	armed := 0
	const (
		waveEvery = 1250 * time.Microsecond
		waves     = 32
		perWave   = 10
	)
	var wave func()
	wavesLeft := waves
	wave = func() {
		for i := 0; i < perWave; i++ {
			// Deadlines 1..160 ms out: most land in level 1, and the
			// short ones from later waves fall behind an advanced pos.
			d := time.Duration(1+rng.Intn(160_000)) * time.Microsecond
			w.After(d, func() { fired++ })
			armed++
		}
		if wavesLeft--; wavesLeft > 0 {
			sched.After(waveEvery, wave)
		}
	}
	sched.After(0, wave)
	sched.RunFor(400 * time.Millisecond)
	if fired != armed {
		t.Fatalf("fired %d of %d armed timers (wheel stranded %d)", fired, armed, armed-fired)
	}
	if w.Pending() != 0 {
		t.Fatalf("%d entries still pending after drain", w.Pending())
	}
}

// wheelExpireSink is the allocation-guard CallFunc target.
var wheelExpireCount int

func wheelExpireCall(_, _ any, n int) { wheelExpireCount += n }

// TestWheelSteadyStateAllocs is the churn-lifecycle allocation guard:
// once the entry arena has grown to the working set, arming and
// expiring timers through AtCall allocates nothing.
func TestWheelSteadyStateAllocs(t *testing.T) {
	sched := NewScheduler()
	w := NewWheel(sched, 100*time.Microsecond)
	// Warm the arena and the due scratch.
	prime := func(base time.Duration) {
		for i := 0; i < 512; i++ {
			w.AtCall(base+time.Duration(i%40)*250*time.Microsecond, wheelExpireCall, nil, nil, 1)
		}
		sched.RunUntil(base + 20*time.Millisecond)
	}
	prime(sched.Now() + time.Millisecond)
	round := 0
	avg := testing.AllocsPerRun(50, func() {
		round++
		prime(sched.Now() + time.Duration(round)*25*time.Millisecond)
	})
	if avg > 0 {
		t.Fatalf("steady-state churn arm/expire allocated %.1f allocs per 512-timer round, want 0", avg)
	}
}

// BenchmarkWheelChurnLifecycle measures the mass-lifecycle hot path:
// arm a batch of AtCall timers and drain them, the wheel analogue of
// one churn epoch. Runs under bench-guard's -benchmem leg.
func BenchmarkWheelChurnLifecycle(b *testing.B) {
	sched := NewScheduler()
	w := NewWheel(sched, 100*time.Microsecond)
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := sched.Now() + time.Millisecond
		for j := 0; j < batch; j++ {
			w.AtCall(base+time.Duration(j%64)*100*time.Microsecond, wheelExpireCall, nil, nil, 1)
		}
		sched.RunUntil(base + 10*time.Millisecond)
	}
	if w.Pending() != 0 {
		b.Fatalf("pending %d after drain", w.Pending())
	}
}

// BenchmarkHeapChurnLifecycle is the baseline for the same workload
// armed directly on the scheduler heap, for the speedup comparison in
// bench-guard output.
func BenchmarkHeapChurnLifecycle(b *testing.B) {
	sched := NewScheduler()
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := sched.Now() + time.Millisecond
		for j := 0; j < batch; j++ {
			sched.AtCall(base+time.Duration(j%64)*100*time.Microsecond, wheelExpireCall, nil, nil, 1)
		}
		sched.RunUntil(base + 10*time.Millisecond)
	}
}
