package sim

import "math/rand"

// RNG is a deterministic random-number source for simulations. Every
// component that needs randomness (burst spacing, adversarial payloads, DoS
// inter-arrival times) receives an *RNG derived from the experiment seed, so
// results are reproducible run to run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child RNG. Components should each receive
// their own fork so that adding a consumer does not perturb the stream seen
// by the others.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Bytes fills b with random bytes.
func (g *RNG) Bytes(b []byte) {
	// math/rand Read never fails.
	_, _ = g.r.Read(b)
}
