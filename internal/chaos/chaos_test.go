package chaos

import (
	"testing"
	"time"

	"netco/internal/netem"
	"netco/internal/sim"
)

// recorder captures outage windows without running anything.
type recorder struct{ windows [][2]time.Duration }

func (r *recorder) ScheduleOutage(failAt, recoverAt time.Duration) {
	r.windows = append(r.windows, [2]time.Duration{failAt, recoverAt})
}

func TestPlanScheduleExpandsFlaps(t *testing.T) {
	rec := &recorder{}
	p := Plan{Actions: []Action{
		{Target: "r0", At: 10 * time.Millisecond, Down: 5 * time.Millisecond, Cycles: 3, Period: 20 * time.Millisecond},
	}}
	if err := p.Schedule(Registry{"r0": rec}); err != nil {
		t.Fatal(err)
	}
	want := [][2]time.Duration{
		{10 * time.Millisecond, 15 * time.Millisecond},
		{30 * time.Millisecond, 35 * time.Millisecond},
		{50 * time.Millisecond, 55 * time.Millisecond},
	}
	if len(rec.windows) != len(want) {
		t.Fatalf("scheduled %d outages, want %d", len(rec.windows), len(want))
	}
	for i, w := range want {
		if rec.windows[i] != w {
			t.Fatalf("outage %d = %v, want %v", i, rec.windows[i], w)
		}
	}
}

func TestPlanDefaultPeriodAndCycles(t *testing.T) {
	rec := &recorder{}
	p := Plan{Actions: []Action{
		{Target: "l", At: 0, Down: 4 * time.Millisecond, Cycles: 2}, // period defaults to 2×Down
	}}
	if err := p.Schedule(Registry{"l": rec}); err != nil {
		t.Fatal(err)
	}
	if rec.windows[1][0] != 8*time.Millisecond {
		t.Fatalf("second cycle at %v, want 8ms (default half-duty period)", rec.windows[1][0])
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Actions: []Action{{Target: "", At: 0, Down: time.Millisecond}}},
		{Actions: []Action{{Target: "x", At: -time.Millisecond, Down: time.Millisecond}}},
		{Actions: []Action{{Target: "x", At: 0, Down: 0}}},
		{Actions: []Action{{Target: "x", At: 0, Down: 10 * time.Millisecond, Cycles: 2, Period: 5 * time.Millisecond}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %d validated, want error", i)
		}
	}
	if err := (Plan{Actions: []Action{{Target: "x", At: 0, Down: time.Millisecond}}}).Schedule(Registry{}); err == nil {
		t.Fatal("unknown target scheduled, want error")
	}
}

func TestTimelineAndLastRecovery(t *testing.T) {
	p := Plan{Actions: []Action{
		{Target: "b", At: 5 * time.Millisecond, Down: 10 * time.Millisecond},
		{Target: "a", At: 5 * time.Millisecond, Down: 2 * time.Millisecond, Cycles: 2, Period: 4 * time.Millisecond},
	}}
	tl := p.Timeline()
	if len(tl) != 6 {
		t.Fatalf("timeline has %d transitions, want 6", len(tl))
	}
	// Ties at 5ms: downs first, then by name.
	if tl[0] != (Transition{At: 5 * time.Millisecond, Target: "a", Down: true}) {
		t.Fatalf("tl[0] = %+v", tl[0])
	}
	if tl[1] != (Transition{At: 5 * time.Millisecond, Target: "b", Down: true}) {
		t.Fatalf("tl[1] = %+v", tl[1])
	}
	if got, want := p.LastRecovery(), 15*time.Millisecond; got != want {
		t.Fatalf("LastRecovery = %v, want %v", got, want)
	}
}

func TestNodeTargetFiresOnScheduler(t *testing.T) {
	sched := sim.NewScheduler()
	var downs, ups []time.Duration
	tgt := NodeTarget(sched,
		func() { downs = append(downs, sched.Now()) },
		func() { ups = append(ups, sched.Now()) },
	)
	p := Plan{Actions: []Action{{Target: "n", At: 3 * time.Millisecond, Down: 2 * time.Millisecond, Cycles: 2, Period: 10 * time.Millisecond}}}
	if err := p.Schedule(Registry{"n": tgt}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(downs) != 2 || downs[0] != 3*time.Millisecond || downs[1] != 13*time.Millisecond {
		t.Fatalf("downs = %v", downs)
	}
	if len(ups) != 2 || ups[0] != 5*time.Millisecond || ups[1] != 15*time.Millisecond {
		t.Fatalf("ups = %v", ups)
	}
}

// capRecorder records SetCapacity calls with their virtual times.
type capRecorder struct {
	sched *sim.Scheduler
	calls []capCall
}

type capCall struct {
	end int
	bps float64
	at  time.Duration
}

func (r *capRecorder) SetCapacity(l *netem.Link, end int, bps float64) {
	r.calls = append(r.calls, capCall{end: end, bps: bps, at: r.sched.Now()})
}

// TestCapacityTargetDegradesAndRestores covers the capacity-resize
// chaos action: a flap plan against a CapacityTarget drives the fluid
// allocator's SetCapacity hook down to the degraded rate at each
// failure edge and back to the link's configured capacity at each
// recovery, on virtual time.
func TestCapacityTargetDegradesAndRestores(t *testing.T) {
	sched := sim.NewScheduler()
	l := netem.NewLink(sched, "trunk", netem.LinkConfig{Bandwidth: 10e6, Delay: time.Microsecond})
	rec := &capRecorder{sched: sched}
	tgt := CapacityTarget(sched, rec, l, 1, 2.5e6)
	p := Plan{Actions: []Action{{
		Target: "trunk", At: 5 * time.Millisecond, Down: 3 * time.Millisecond,
		Cycles: 2, Period: 10 * time.Millisecond,
	}}}
	if err := p.Schedule(Registry{"trunk": tgt}); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	want := []capCall{
		{end: 1, bps: 2.5e6, at: 5 * time.Millisecond},
		{end: 1, bps: 10e6, at: 8 * time.Millisecond},
		{end: 1, bps: 2.5e6, at: 15 * time.Millisecond},
		{end: 1, bps: 10e6, at: 18 * time.Millisecond},
	}
	if len(rec.calls) != len(want) {
		t.Fatalf("SetCapacity called %d times, want %d", len(rec.calls), len(want))
	}
	for i, w := range want {
		if rec.calls[i] != w {
			t.Fatalf("call %d = %+v, want %+v", i, rec.calls[i], w)
		}
	}
}
