// Package chaos is the runtime fault-injection layer: a Plan of timed
// actions — router crash and cold restart, compare restart, link flaps,
// controller outages, partition-and-heal — executed on virtual time via
// sim.Scheduler events, so every chaotic run is exactly as deterministic
// and replayable as a calm one.
//
// The layering rule that keeps chaos race-free under the partitioned
// engine (internal/sim/par) is the same thread-ownership rule the rest of
// the simulator follows: a fault toggles a node's state only from events
// on that node's own scheduler. Plan.Schedule therefore arms everything
// during single-threaded setup, before workers start, and each Target
// implementation routes its transitions to the right domain —
// netem.Link.ScheduleDown arms one event per link end on that end's
// scheduler; node targets arm crash/restart on the node's scheduler.
//
// The plan is also statically analysable: Timeline returns every
// down/up transition without running the simulation, which is what the
// harness's recovery oracle uses to know when the last heal lands.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"netco/internal/netem"
	"netco/internal/sim"
)

// Target is one unit of failure the plan can take down and bring back.
// ScheduleOutage arms a single outage window at setup time; the
// transitions themselves execute later, as scheduler events in the
// target's own domain.
type Target interface {
	ScheduleOutage(failAt, recoverAt time.Duration)
}

// Action is one timed fault against a named target: down at At, up
// Down later. Cycles > 1 repeats the outage every Period — a flap.
type Action struct {
	// Target names an entry in the Registry the plan is scheduled
	// against.
	Target string
	// At is the first failure instant.
	At time.Duration
	// Down is how long each outage lasts.
	Down time.Duration
	// Cycles is the number of outages (0 and 1 both mean one).
	Cycles int
	// Period is the flap period, failure to failure. Zero defaults to
	// 2×Down (half-duty flapping).
	Period time.Duration
}

// normalized fills the defaults.
func (a Action) normalized() Action {
	if a.Cycles < 1 {
		a.Cycles = 1
	}
	if a.Period == 0 {
		a.Period = 2 * a.Down
	}
	return a
}

// Validate rejects actions that cannot be scheduled sanely.
func (a Action) Validate() error {
	if a.Target == "" {
		return fmt.Errorf("chaos: action has no target")
	}
	if a.At < 0 {
		return fmt.Errorf("chaos: %s at negative time %v", a.Target, a.At)
	}
	if a.Down <= 0 {
		return fmt.Errorf("chaos: %s outage duration %v, want > 0", a.Target, a.Down)
	}
	n := a.normalized()
	if n.Cycles > 1 && n.Period <= n.Down {
		return fmt.Errorf("chaos: %s flap period %v not longer than outage %v", a.Target, n.Period, n.Down)
	}
	return nil
}

// Plan is a deterministic chaos schedule.
type Plan struct {
	Actions []Action
}

// Validate checks every action.
func (p Plan) Validate() error {
	for _, a := range p.Actions {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Transition is one down or up edge of the plan, computed statically.
type Transition struct {
	At     time.Duration
	Target string
	Down   bool
}

// Timeline expands the plan into its transitions, sorted by time (ties:
// downs before ups, then target name) — the static view oracles and
// metrics use.
func (p Plan) Timeline() []Transition {
	var out []Transition
	for _, a := range p.Actions {
		n := a.normalized()
		for c := 0; c < n.Cycles; c++ {
			base := n.At + time.Duration(c)*n.Period
			out = append(out, Transition{At: base, Target: n.Target, Down: true})
			out = append(out, Transition{At: base + n.Down, Target: n.Target, Down: false})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Down != out[j].Down {
			return out[i].Down
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// LastRecovery returns the instant the final outage heals (zero for an
// empty plan) — the point after which the recovery oracle may probe.
func (p Plan) LastRecovery() time.Duration {
	var last time.Duration
	for _, tr := range p.Timeline() {
		if !tr.Down && tr.At > last {
			last = tr.At
		}
	}
	return last
}

// Registry maps action target names to their implementations.
type Registry map[string]Target

// Schedule validates the plan and arms every outage against reg. Call
// during single-threaded setup, before simulation workers start.
func (p Plan) Schedule(reg Registry) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, a := range p.Actions {
		tgt, ok := reg[a.Target]
		if !ok {
			return fmt.Errorf("chaos: unknown target %q", a.Target)
		}
		n := a.normalized()
		for c := 0; c < n.Cycles; c++ {
			base := n.At + time.Duration(c)*n.Period
			tgt.ScheduleOutage(base, base+n.Down)
		}
	}
	return nil
}

// NodeTarget adapts a crash/restart (or outage/heal) callback pair into a
// Target, arming both transitions on the node's own scheduler. It covers
// switch crashes, compare restarts and controller outages alike.
func NodeTarget(sched *sim.Scheduler, fail, recover func()) Target {
	return nodeTarget{sched: sched, fail: fail, recover: recover}
}

type nodeTarget struct {
	sched         *sim.Scheduler
	fail, recover func()
}

func (t nodeTarget) ScheduleOutage(failAt, recoverAt time.Duration) {
	t.sched.At(failAt, t.fail)
	t.sched.At(recoverAt, t.recover)
}

// LinkTarget makes a link a Target: outages become timed administrative
// down/up events on both end schedulers (netem.Link.ScheduleDown), the
// race-free toggle path.
func LinkTarget(l *netem.Link) Target { return linkTarget{l} }

type linkTarget struct{ l *netem.Link }

func (t linkTarget) ScheduleOutage(failAt, recoverAt time.Duration) {
	t.l.ScheduleDown(failAt, true)
	t.l.ScheduleDown(recoverAt, false)
}

// CapacitySetter is the fluid-tier hook a capacity-resize action
// drives: traffic.FluidNet satisfies it, so a chaos plan can degrade
// and restore the allocator's view of a link direction without this
// package importing the traffic layer.
type CapacitySetter interface {
	SetCapacity(l *netem.Link, end int, bps float64)
}

// CapacityTarget makes a (link, end) direction's fluid capacity a
// Target: an outage window degrades the direction to the given
// capacity (bits/s) at failAt and restores the link's configured
// capacity at recoverAt — a router that slows down rather than dies.
// Transitions run as events on the allocator's scheduler (the fluid
// tier is single-domain), and the reallocations land at the epoch
// boundaries following each edge, like every other capacity change.
func CapacityTarget(sched *sim.Scheduler, cs CapacitySetter, l *netem.Link, end int, degraded float64) Target {
	return capacityTarget{sched: sched, cs: cs, l: l, end: end, degraded: degraded}
}

type capacityTarget struct {
	sched    *sim.Scheduler
	cs       CapacitySetter
	l        *netem.Link
	end      int
	degraded float64
}

func (t capacityTarget) ScheduleOutage(failAt, recoverAt time.Duration) {
	t.sched.At(failAt, func() { t.cs.SetCapacity(t.l, t.end, t.degraded) })
	t.sched.At(recoverAt, func() { t.cs.SetCapacity(t.l, t.end, t.l.Capacity()) })
}

// Multi fans one action out to several targets at once — a network
// partition is Multi over every link crossing the cut, healed together.
func Multi(targets ...Target) Target { return multiTarget(targets) }

type multiTarget []Target

func (m multiTarget) ScheduleOutage(failAt, recoverAt time.Duration) {
	for _, t := range m {
		t.ScheduleOutage(failAt, recoverAt)
	}
}
