package core_test

import (
	"testing"
	"time"

	"netco/internal/core"
	"netco/internal/traffic"
)

// TestRouterCrashRestartRecovers crashes one of three routers mid-stream
// and restarts it through the combiner: the majority keeps forwarding
// throughout (availability under churn), and after RestartRouter replays
// the proactive rules the router participates again.
func TestRouterCrashRestartRecovers(t *testing.T) {
	r := buildRig(t, 3, core.CombinerCentral, nil)
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 20e6, PayloadSize: 1000,
	})
	src.Start()

	crashed := r.comb.Routers[0]
	r.sched.At(100*time.Millisecond, func() { crashed.Crash() })
	r.sched.At(200*time.Millisecond, func() { r.comb.RestartRouter(0) })
	r.sched.RunUntil(400 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d — 2-of-3 majority should mask a crashed router", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 {
		t.Fatalf("combiner leaked %d duplicates across the crash", st.Duplicates)
	}
	life := crashed.Lifecycle()
	if life.Crashes != 1 || life.Restarts != 1 {
		t.Fatalf("lifecycle = %+v, want one crash and one restart", life)
	}
	if life.RxWhileDown == 0 {
		t.Fatal("router saw no traffic while down — crash window missed the stream")
	}
	// The replayed rules carry traffic after the restart: the router
	// transmitted more packets than it had received before the crash.
	if pc := crashed.PortCounters(core.RouterPortRight); pc.TxPackets == 0 {
		t.Fatal("restarted router never transmitted — proactive rules not replayed")
	}
	if crashed.Table().Len() == 0 {
		t.Fatal("restarted router has an empty table")
	}
}

// TestCompareCrashRestartFlushesCaches crashes the compare mid-stream:
// while down every copy is dropped (no forwarding in Central mode — the
// compare gates release), and after restart the flushed caches accept the
// stream again with no duplicate releases.
func TestCompareCrashRestartFlushesCaches(t *testing.T) {
	r := buildRig(t, 3, core.CombinerCentral, nil)
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 20e6, PayloadSize: 1000,
	})
	src.Start()

	comp := r.comb.Compare
	r.sched.At(100*time.Millisecond, func() { comp.Crash() })
	r.sched.At(150*time.Millisecond, func() { comp.Restart() })
	r.sched.RunUntil(300 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	cs := comp.Stats()
	if cs.Crashes != 1 || cs.Restarts != 1 {
		t.Fatalf("compare lifecycle = %+v, want one crash and one restart", cs)
	}
	if cs.DownDrops == 0 {
		t.Fatal("compare dropped nothing while down — crash window missed the stream")
	}
	if st.Unique == 0 || st.Unique == src.Sent {
		t.Fatalf("delivered %d of %d — want partial loss (the outage window)", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 {
		t.Fatalf("%d duplicate releases across the cache flush", st.Duplicates)
	}
	// The engine totals include the flushed pre-crash generation.
	es := comp.EngineStats()
	if es.Released != st.Unique {
		t.Fatalf("EngineStats.Released = %d, sink saw %d", es.Released, st.Unique)
	}
}
