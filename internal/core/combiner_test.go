package core_test

import (
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

type rig struct {
	sched *sim.Scheduler
	net   *netem.Network
	comb  *core.Combiner
	h1    *traffic.Host
	h2    *traffic.Host
}

func buildRig(t *testing.T, k int, mode core.CombinerMode, compromise func(i int) switching.Behavior) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)

	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}
	spec := core.CombinerSpec{
		K:    k,
		Mode: mode,
		Compare: core.CompareNodeConfig{
			Engine:          core.Config{HoldTimeout: 20 * time.Millisecond, CacheCapacity: 1 << 16},
			PerCopyCost:     2 * time.Microsecond,
			CleanupPerEntry: 100 * time.Nanosecond,
			BlockDuration:   100 * time.Millisecond,
		},
		EdgeProcDelay: time.Microsecond,
		RouterLink:    link,
		CompareLink:   netem.LinkConfig{Bandwidth: 2e9, Delay: 5 * time.Microsecond, QueueLimit: 200},
	}
	comb := core.Build(net, spec, func(i int) *switching.Switch {
		sw := switching.New(sched, switching.Config{
			Name:       "r" + string(rune('0'+i)),
			DatapathID: uint64(i + 1),
			ProcDelay:  2 * time.Microsecond,
			ProcQueue:  500,
		})
		if compromise != nil {
			if b := compromise(i); b != nil {
				sw.SetBehavior(b)
			}
		}
		return sw
	})

	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, core.SideLeft, h1, traffic.HostPort, h1.MAC(), link)
	comb.AttachHost(net, core.SideRight, h2, traffic.HostPort, h2.MAC(), link)
	return &rig{sched: sched, net: net, comb: comb, h1: h1, h2: h2}
}

func TestCentral3DeliversExactlyOnce(t *testing.T) {
	r := buildRig(t, 3, core.CombinerCentral, nil)
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 20e6, PayloadSize: 1000,
	})
	src.Start()
	r.sched.RunUntil(500 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 {
		t.Fatalf("combiner leaked %d duplicates — compare must release exactly one copy", st.Duplicates)
	}
	es := r.comb.Compare.EngineStats()
	if es.Released != src.Sent {
		t.Fatalf("compare released %d of %d", es.Released, src.Sent)
	}
	// Every benign packet eventually shows up on all 3 ports; the extra
	// copies beyond majority are late.
	if es.Ingested != 3*src.Sent {
		t.Fatalf("compare ingested %d copies, want %d", es.Ingested, 3*src.Sent)
	}
}

func TestDup3DeliversKCopies(t *testing.T) {
	r := buildRig(t, 3, core.CombinerDup, nil)
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 10e6, PayloadSize: 1000,
	})
	src.Start()
	r.sched.RunUntil(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d", st.Unique, src.Sent)
	}
	if st.Duplicates != 2*src.Sent {
		t.Fatalf("duplicates = %d, want %d (k-1 extra copies each)", st.Duplicates, 2*src.Sent)
	}
}

func TestCentralPingBothDirections(t *testing.T) {
	r := buildRig(t, 3, core.CombinerCentral, nil)
	p := traffic.NewPinger(r.h1, r.h2.Endpoint(0), traffic.PingerConfig{Count: 20, ID: 1})
	var res traffic.PingResult
	p.Run(func(pr traffic.PingResult) { res = pr })
	r.sched.RunUntil(2 * time.Second)
	if res.Received != 20 {
		t.Fatalf("received %d of 20 echo replies", res.Received)
	}
	if res.Duplicates != 0 {
		t.Fatalf("%d duplicate replies through a combining path", res.Duplicates)
	}
}

func TestCombinerPreventsRerouteExfiltration(t *testing.T) {
	// One router rewrites dst MAC and misroutes — §IV case 1. With k=3
	// the two honest copies win and nothing leaks past the compare.
	r := buildRig(t, 3, core.CombinerCentral, func(i int) switching.Behavior {
		if i != 1 {
			return nil
		}
		return &adversary.Modify{
			Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
			Rewrite: []openflow.Action{openflow.SetVLANVID(666)},
		}
	})
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 10e6, PayloadSize: 500,
	})
	src.Start()
	r.sched.RunUntil(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d despite 2 honest routers", got, src.Sent)
	}
	es := r.comb.Compare.EngineStats()
	if es.Suppressed == 0 {
		t.Fatal("tampered copies were not suppressed")
	}
	// The tampered copies stay minority entries and must never release.
	if es.Released != src.Sent {
		t.Fatalf("released %d, want %d", es.Released, src.Sent)
	}
}

func TestCombinerPreventsDropAttack(t *testing.T) {
	// One router drops everything; majority still delivers.
	r := buildRig(t, 3, core.CombinerCentral, func(i int) switching.Behavior {
		if i != 2 {
			return nil
		}
		return &adversary.Drop{Match: openflow.MatchAll()}
	})
	var alarms []core.Alarm
	r.comb.Compare.OnAlarm = func(a core.Alarm) { alarms = append(alarms, a) }

	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 10e6, PayloadSize: 500,
	})
	src.Start()
	r.sched.RunUntil(300 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d", got, src.Sent)
	}
	// §IV case 3: the silent router must raise an operator alarm.
	silent := false
	for _, a := range alarms {
		if a.Kind == core.EventPortSilent && a.Router == 2 {
			silent = true
		}
	}
	if !silent {
		t.Fatalf("no port-silent alarm for the dropping router (alarms: %+v)", alarms)
	}
}

func TestCombinerDoSBlocksPort(t *testing.T) {
	// One router replays every packet many times — §IV case 2. The
	// compare must flag it and advise the edge to block the port, and
	// the flood must not reach h2.
	r := buildRig(t, 3, core.CombinerCentral, func(i int) switching.Behavior {
		if i != 0 {
			return nil
		}
		return &adversary.Replay{Match: openflow.MatchAll(), Extra: 10}
	})
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 5e6, PayloadSize: 500,
	})
	src.Start()
	r.sched.RunUntil(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Duplicates != 0 {
		t.Fatalf("%d flood copies leaked to the destination", st.Duplicates)
	}
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d", st.Unique, src.Sent)
	}
	cs := r.comb.Compare.Stats()
	if cs.Blocks == 0 {
		t.Fatal("compare never advised a port block")
	}
	if r.comb.Right.Stats().BlockedDrops == 0 {
		t.Fatal("edge never enforced the advised block")
	}
	if r.comb.Compare.EngineStats().DoSFlagged == 0 {
		t.Fatal("DoS never flagged")
	}
}

func TestCombinerSuppressesUnsolicitedInjection(t *testing.T) {
	// A compromised router fabricates packets out of thin air (§II:
	// "fabricate and transmit any type of message"). None may pass.
	r := buildRig(t, 3, core.CombinerCentral, nil)
	evil := r.comb.Routers[1]
	forged := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(66), IP: packet.HostIP(66), Port: 9},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 5001},
		[]byte("forged"),
	)
	flood := &adversary.Flood{
		OutPort:  core.RouterPortRight,
		Rate:     10000,
		Template: forged,
		Vary:     true,
		Duration: 100 * time.Millisecond,
	}
	evil.SetBehavior(flood)

	sink := traffic.NewUDPSink(r.h2, 5001)
	r.sched.RunUntil(300 * time.Millisecond)

	if flood.Injected == 0 {
		t.Fatal("flood generated nothing")
	}
	if got := sink.Stats().Unique + sink.Stats().Duplicates; got != 0 {
		t.Fatalf("%d forged packets reached h2", got)
	}
	if s := r.comb.Compare.EngineStats().Suppressed; s == 0 {
		t.Fatal("forged packets not accounted as suppressed")
	}
}

func TestDetectOnlyK2RaisesDetectionAlarm(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}
	spec := core.CombinerSpec{
		K:    2,
		Mode: core.CombinerCentral,
		Compare: core.CompareNodeConfig{
			Engine:      core.Config{HoldTimeout: 10 * time.Millisecond, DetectOnly: true},
			PerCopyCost: 2 * time.Microsecond,
		},
		RouterLink:  link,
		CompareLink: link,
	}
	comb := core.Build(net, spec, func(i int) *switching.Switch {
		sw := switching.New(sched, switching.Config{Name: "r" + string(rune('0'+i)), ProcDelay: time.Microsecond})
		if i == 1 {
			sw.SetBehavior(&adversary.Drop{Match: openflow.MatchAll()})
		}
		return sw
	})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, core.SideLeft, h1, traffic.HostPort, h1.MAC(), link)
	comb.AttachHost(net, core.SideRight, h2, traffic.HostPort, h2.MAC(), link)

	detections := 0
	comb.Compare.OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventDetection {
			detections++
		}
	}

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 5e6, PayloadSize: 500})
	src.Start()
	sched.RunUntil(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	// Detection mode must not cost availability...
	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d in detect-only mode", got, src.Sent)
	}
	// ...and must detect the dropping router.
	if detections == 0 {
		t.Fatal("no detection alarms despite a dropping router")
	}
}

func TestCentralTCPFlow(t *testing.T) {
	r := buildRig(t, 3, core.CombinerCentral, nil)
	flow := traffic.StartTCPFlow(r.h1, r.h2, 40000, 5001, traffic.TCPConfig{})
	r.sched.RunUntil(time.Second)
	flow.Stop()
	st := flow.Stats()
	goodput := st.Goodput(time.Second)
	if goodput < 50e6 {
		t.Fatalf("TCP through Central3 = %.1f Mbit/s, want a usable flow", goodput/1e6)
	}
	if st.GoodputBytes == 0 {
		t.Fatal("no bytes delivered")
	}
}

func TestEdgeSpoofValidation(t *testing.T) {
	// A frame arriving on the host port with a wrong source MAC must be
	// dropped by the edge's ingress check.
	r := buildRig(t, 3, core.CombinerCentral, nil)
	spoof := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(99), IP: packet.HostIP(99), Port: 1},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 5001},
		[]byte("spoof"),
	)
	sink := traffic.NewUDPSink(r.h2, 5001)
	// Bypass the host stack's own MAC stamping by sending raw.
	r.h1.Ports().Send(traffic.HostPort, spoof)
	r.sched.RunFor(10 * time.Millisecond)
	if r.comb.Left.Stats().SpoofDrops != 1 {
		t.Fatalf("SpoofDrops = %d, want 1", r.comb.Left.Stats().SpoofDrops)
	}
	if sink.Stats().Unique != 0 {
		t.Fatal("spoofed frame delivered")
	}
}

func TestCombinerClose(t *testing.T) {
	r := buildRig(t, 3, core.CombinerCentral, nil)
	r.comb.Close()
	// After Close the periodic sweep must stop rescheduling, so the
	// event queue drains.
	r.sched.Run()
	if r.sched.Pending() != 0 {
		t.Fatalf("%d events still pending after Close", r.sched.Pending())
	}
}

func TestHubReplicates(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	hub := core.NewHub(sched, "hub")
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	sinks := make([]*traffic.Host, 3)
	net.Add(hub)
	net.Add(h1)
	net.Connect(h1, traffic.HostPort, hub, 0, netem.LinkConfig{})
	for i := range sinks {
		sinks[i] = traffic.NewHost(sched, "d"+string(rune('0'+i)), packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
		net.Add(sinks[i])
		net.Connect(sinks[i], traffic.HostPort, hub, i+1, netem.LinkConfig{})
	}
	h1.Send(packet.NewUDP(h1.Endpoint(1), packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2}, []byte("x")))
	sched.Run()
	for i, s := range sinks {
		if s.Stats().RxPackets != 1 {
			t.Fatalf("sink %d got %d packets, want 1", i, s.Stats().RxPackets)
		}
	}
	if hub.Replicated != 3 {
		t.Fatalf("Replicated = %d, want 3", hub.Replicated)
	}
}

func TestCombinerTransparentToARP(t *testing.T) {
	// With broadcast routes installed, address resolution works across
	// the combiner: the ARP request is replicated, majority-voted and
	// released like any other frame.
	r := buildRig(t, 3, core.CombinerCentral, nil)
	defer r.comb.Close()
	r.comb.InstallBroadcastRoutes()

	var mac packet.MAC
	ok := false
	r.h1.Resolve(r.h2.IP(), func(m packet.MAC, o bool) { mac, ok = m, o })
	r.sched.RunFor(100 * time.Millisecond)

	if !ok {
		t.Fatal("ARP resolution across the combiner failed")
	}
	if mac != r.h2.MAC() {
		t.Fatalf("resolved %v, want %v", mac, r.h2.MAC())
	}
	// Exactly one request and one reply were released (no broadcast
	// storms, no duplicates).
	if rel := r.comb.Compare.EngineStats().Released; rel != 2 {
		t.Fatalf("compare released %d frames, want 2 (request + reply)", rel)
	}
}

func TestCombinerWithoutBroadcastRoutesBlocksARP(t *testing.T) {
	// Without the explicit broadcast rules the routers drop the
	// request on a table miss — resolution must time out cleanly.
	r := buildRig(t, 3, core.CombinerCentral, nil)
	defer r.comb.Close()
	resolved, ok := false, true
	r.h1.Resolve(r.h2.IP(), func(_ packet.MAC, o bool) { resolved, ok = true, o })
	r.sched.RunFor(2 * time.Second)
	if !resolved || ok {
		t.Fatalf("resolution resolved=%v ok=%v, want timeout failure", resolved, ok)
	}
}

func TestCombinerMasksRouterCrash(t *testing.T) {
	// A router dying mid-flow (both its links go down) must not cost a
	// single datagram — the remaining two routers keep the majority —
	// and must raise the §IV case-3 availability alarm.
	r := buildRig(t, 3, core.CombinerCentral, nil)
	defer r.comb.Close()

	var silent int
	r.comb.Compare.OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventPortSilent && a.Router == 1 {
			silent++
		}
	}
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 20e6, PayloadSize: 800,
	})
	src.Start()

	// Crash router 1 at t=100ms: every link it touches goes dark.
	r.sched.After(100*time.Millisecond, func() {
		victim := r.comb.Routers[1]
		for _, l := range r.net.Links() {
			if peerOf(l, victim) {
				l.SetDown(true)
			}
		}
	})

	r.sched.RunFor(400 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d across the crash", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 || st.Corrupted != 0 {
		t.Fatalf("dups=%d corrupted=%d", st.Duplicates, st.Corrupted)
	}
	if silent == 0 {
		t.Fatal("no availability alarm for the crashed router")
	}
}

// peerOf reports whether either end of l attaches to node.
func peerOf(l *netem.Link, node netem.Node) bool {
	if r, _ := l.Peer(0); r == netem.Receiver(node) {
		return true
	}
	if r, _ := l.Peer(1); r == netem.Receiver(node) {
		return true
	}
	return false
}
