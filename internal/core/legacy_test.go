package core_test

import (
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

// buildMixedRig hand-wires a combiner whose candidates mix OpenFlow
// switches and a fixed-function legacy router — §IX: "our approach can
// easily be extended to legacy routers." candidates[i] builds router i.
func buildMixedRig(t *testing.T, candidates []func(sched *sim.Scheduler) switching.MACRouter) (*sim.Scheduler, *core.Combiner, *traffic.Host, *traffic.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}
	k := len(candidates)

	comb := &core.Combiner{K: k}
	comb.Left = core.NewEdgeSwitch(sched, core.EdgeConfig{Name: "s1", EdgeID: 0, ProcDelay: time.Microsecond})
	comb.Right = core.NewEdgeSwitch(sched, core.EdgeConfig{Name: "s2", EdgeID: 1, ProcDelay: time.Microsecond})
	net.Add(comb.Left)
	net.Add(comb.Right)

	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)

	for i, build := range candidates {
		r := build(sched)
		net.Add(r)
		edgePort := 1 + i
		net.Connect(comb.Left, edgePort, r, core.RouterPortLeft, link)
		net.Connect(comb.Right, edgePort, r, core.RouterPortRight, link)
		comb.Left.AddRouterPort(edgePort, i)
		comb.Right.AddRouterPort(edgePort, i)
		r.AddMACRoute(h2.MAC(), core.RouterPortRight)
		r.AddMACRoute(h1.MAC(), core.RouterPortLeft)
	}

	comb.Compare = core.NewCompareNode(sched, core.CompareNodeConfig{
		Name:        "compare",
		Engine:      core.Config{K: k, HoldTimeout: 20 * time.Millisecond},
		PerCopyCost: 2 * time.Microsecond,
	})
	net.Add(comb.Compare)
	comparePort := 1 + k
	net.Connect(comb.Compare, 0, comb.Left, comparePort, link)
	net.Connect(comb.Compare, 1, comb.Right, comparePort, link)
	comb.Left.SetComparePort(comparePort)
	comb.Right.SetComparePort(comparePort)
	comb.Compare.RegisterEdge(0, comb.Left)
	comb.Compare.RegisterEdge(1, comb.Right)

	net.Connect(h1, traffic.HostPort, comb.Left, core.EdgeHostPort, link)
	net.Connect(h2, traffic.HostPort, comb.Right, core.EdgeHostPort, link)
	comb.Left.AddHostPort(core.EdgeHostPort, h1.MAC())
	comb.Right.AddHostPort(core.EdgeHostPort, h2.MAC())
	return sched, comb, h1, h2
}

func ofCandidate(name string, proc time.Duration, b switching.Behavior) func(*sim.Scheduler) switching.MACRouter {
	return func(sched *sim.Scheduler) switching.MACRouter {
		sw := switching.New(sched, switching.Config{Name: name, ProcDelay: proc, ProcQueue: 500})
		if b != nil {
			sw.SetBehavior(b)
		}
		return sw
	}
}

func legacyCandidate(name string, proc time.Duration) func(*sim.Scheduler) switching.MACRouter {
	return func(sched *sim.Scheduler) switching.MACRouter {
		return switching.NewLegacy(sched, name, proc, 500)
	}
}

func TestCombinerWithLegacyCandidate(t *testing.T) {
	// Two OpenFlow switches (one compromised) plus one legacy router:
	// the honest OF switch and the legacy box form the majority.
	sched, comb, h1, h2 := buildMixedRig(t, []func(*sim.Scheduler) switching.MACRouter{
		ofCandidate("of0", 2*time.Microsecond, nil),
		ofCandidate("of1", 2*time.Microsecond, &adversary.Modify{
			Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
			Rewrite: []openflow.Action{openflow.SetVLANVID(666)},
		}),
		legacyCandidate("cisco-legacy", 4*time.Microsecond),
	})
	defer comb.Close()

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 600})
	src.Start()
	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 || st.Corrupted != 0 {
		t.Fatalf("unique=%d/%d dups=%d corrupted=%d", st.Unique, src.Sent, st.Duplicates, st.Corrupted)
	}
	if s := comb.Compare.EngineStats().Suppressed; s == 0 {
		t.Fatal("compromised OF switch's rewrites not suppressed")
	}
}

func TestCombinerLatencyIsMedianCandidate(t *testing.T) {
	// With strongly heterogeneous candidate latencies, the combiner's
	// latency tracks the majority-th (here: second-fastest) candidate —
	// the compare releases as soon as ⌊k/2⌋+1 copies agree, so one slow
	// vendor does not drag the path down, and one fast one cannot speed
	// it up alone.
	rtt := func(procs [3]time.Duration) time.Duration {
		sched, comb, h1, h2 := buildMixedRig(t, []func(*sim.Scheduler) switching.MACRouter{
			ofCandidate("a", procs[0], nil),
			ofCandidate("b", procs[1], nil),
			legacyCandidate("c", procs[2]),
		})
		defer comb.Close()
		p := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 9})
		var res traffic.PingResult
		p.Run(func(r traffic.PingResult) { res = r })
		sched.RunFor(2 * time.Second)
		if res.Received != 10 {
			t.Fatalf("received %d of 10", res.Received)
		}
		return res.RTT.MeanDuration()
	}

	uniform := rtt([3]time.Duration{10 * time.Microsecond, 10 * time.Microsecond, 10 * time.Microsecond})
	// One candidate 100× slower: latency must barely move.
	oneSlow := rtt([3]time.Duration{10 * time.Microsecond, 10 * time.Microsecond, time.Millisecond})
	if oneSlow > uniform+50*time.Microsecond {
		t.Fatalf("one slow candidate dragged RTT from %v to %v", uniform, oneSlow)
	}
	// Two slow candidates: now the median is slow and latency follows.
	twoSlow := rtt([3]time.Duration{10 * time.Microsecond, time.Millisecond, time.Millisecond})
	if twoSlow < oneSlow+time.Millisecond {
		t.Fatalf("two slow candidates should dominate: %v vs %v", twoSlow, oneSlow)
	}
}
