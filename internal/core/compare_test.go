package core

import (
	"testing"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

// newQuotaNode builds a bare CompareNode (no links wired — quota
// accounting happens before any frame leaves the node).
func newQuotaNode(sched *sim.Scheduler, isolation bool) *CompareNode {
	return NewCompareNode(sched, CompareNodeConfig{
		Name:              "compare",
		Engine:            Config{K: 3, HoldTimeout: 20 * time.Millisecond},
		PerCopyCost:       time.Microsecond,
		QueueLimit:        30,
		NoBufferIsolation: !isolation,
	})
}

// TestCompareNodeQuotaIsolation pins down the per-router ingest quota and
// its increment-after-accept accounting: flooding a single router port
// must be cut off at exactly QueueLimit/K copies in flight — the quota is
// checked and the backlog incremented in Receive, before the scheduler
// runs, so a burst arriving "simultaneously" (no intervening scheduler
// steps) cannot overshoot. The decrement runs inside the deferred serve;
// because Submit only enqueues and never runs synchronously, the counter
// exactly tracks copies in flight.
func TestCompareNodeQuotaIsolation(t *testing.T) {
	sched := sim.NewScheduler()
	c := newQuotaNode(sched, true)
	defer c.Close()

	const quota = 30 / 3 // QueueLimit / K
	frames := benchFrames(quota+5, 64)

	// Flood router 0 on edge 0 without stepping the scheduler: every copy
	// is "in flight" until the proc serves it.
	for _, w := range frames {
		pkt, err := packet.Unmarshal(w)
		if err != nil {
			t.Fatal(err)
		}
		c.Receive(0, encapPacketIn(0, pkt))
	}
	st := c.Stats()
	if got, want := st.QuotaDrops, uint64(5); got != want {
		t.Fatalf("QuotaDrops = %d, want %d (quota %d of %d copies)", got, want, quota, quota+5)
	}
	if st.IngestDrops != 0 {
		t.Fatalf("IngestDrops = %d; quota must reject before the shared queue fills", st.IngestDrops)
	}

	// Isolation: a different router port still has its own full quota even
	// while router 0 is saturated.
	for i := 0; i < quota; i++ {
		pkt, err := packet.Unmarshal(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		c.Receive(0, encapPacketIn(1, pkt))
	}
	if got := c.Stats().QuotaDrops; got != 5 {
		t.Fatalf("QuotaDrops = %d after honest port burst, want still 5", got)
	}

	// Drain: serving a copy decrements the backlog, so after the scheduler
	// runs the same port accepts a fresh burst without a single drop. (Run
	// to a fixed horizon — the node's expiry sweep re-arms forever.)
	sched.RunUntil(10 * time.Millisecond)
	before := c.Stats().QuotaDrops
	for i := 0; i < quota; i++ {
		pkt, err := packet.Unmarshal(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		c.Receive(0, encapPacketIn(0, pkt))
	}
	if got := c.Stats().QuotaDrops; got != before {
		t.Fatalf("QuotaDrops rose %d -> %d after drain; backlog not decremented on serve", before, got)
	}
}

// TestCompareNodeQuotaAblation: with buffer isolation disabled (the §IV
// resource-attack ablation), one router can occupy the whole ingest queue
// and further copies hit the shared limit instead of a per-port quota.
func TestCompareNodeQuotaAblation(t *testing.T) {
	sched := sim.NewScheduler()
	c := newQuotaNode(sched, false)
	defer c.Close()

	frames := benchFrames(35, 64)
	for _, w := range frames {
		pkt, err := packet.Unmarshal(w)
		if err != nil {
			t.Fatal(err)
		}
		c.Receive(0, encapPacketIn(0, pkt))
	}
	st := c.Stats()
	if st.QuotaDrops != 0 {
		t.Fatalf("QuotaDrops = %d with isolation off, want 0", st.QuotaDrops)
	}
	if got, want := st.IngestDrops, uint64(5); got != want {
		t.Fatalf("IngestDrops = %d, want %d (queue limit 30 of 35 copies)", got, want)
	}
}
