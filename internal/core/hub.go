package core

import (
	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// Hub is the trusted stateless replicator of §III: "the logic boils down
// to multiplying the packets, in a stateless manner" (§IV). Every packet
// received on any port is forwarded out of every other port.
//
// Hub is deliberately trivial: the paper's premise is that trusted
// components are affordable exactly because they are this simple.
type Hub struct {
	name  string
	sched *sim.Scheduler
	ports netem.Ports

	// Replicated counts forwarded copies.
	Replicated uint64
}

var _ netem.Node = (*Hub)(nil)

// NewHub creates a hub.
func NewHub(sched *sim.Scheduler, name string) *Hub {
	return &Hub{name: name, sched: sched}
}

// Name implements netem.Node.
func (h *Hub) Name() string { return h.name }

// Ports implements netem.Node.
func (h *Hub) Ports() *netem.Ports { return &h.ports }

// Receive implements netem.Receiver: replicate to all other ports.
func (h *Hub) Receive(port int, pkt *packet.Packet) {
	for _, p := range h.ports.List() {
		if p == port {
			continue
		}
		if h.ports.Send(p, pkt) {
			h.Replicated++
		}
	}
}
