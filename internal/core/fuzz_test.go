package core_test

import (
	"fmt"
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

// randomBehavior draws one of the §II attack classes with randomised
// parameters.
func randomBehavior(rng *sim.RNG, victimMAC packet.MAC) (string, switching.Behavior) {
	match := openflow.MatchAll().WithDlDst(victimMAC)
	switch rng.Intn(7) {
	case 0:
		return "drop-all", &adversary.Drop{Match: match}
	case 1:
		p := 0.1 + 0.8*rng.Float64()
		return fmt.Sprintf("drop-%.0f%%", p*100), &adversary.Drop{Match: match, Probability: p, Rng: rng.Fork()}
	case 2:
		return "reroute-back", &adversary.Reroute{Match: match, ToPort: core.RouterPortLeft}
	case 3:
		return "mirror-back", &adversary.Mirror{Match: match, ToPort: core.RouterPortLeft}
	case 4:
		vid := uint16(1 + rng.Intn(4000))
		return fmt.Sprintf("vlan-%d", vid), &adversary.Modify{
			Match: match, Rewrite: []openflow.Action{openflow.SetVLANVID(vid)},
		}
	case 5:
		return "payload-ish-tos", &adversary.Modify{
			Match: match, Rewrite: []openflow.Action{openflow.SetNwTOS(uint8(rng.Intn(64)) << 2)},
		}
	default:
		return "replay", &adversary.Replay{Match: match, Extra: 1 + rng.Intn(8)}
	}
}

// TestSingleCompromisedRouterNeverCorrupts is the combiner's headline
// guarantee, fuzzed: for any single compromised router out of k=3
// running any §II attack with random parameters, the receiver observes
// exactly the sender's datagrams — no loss, no duplicates, no tampered
// payloads — and nothing the attacker fabricated.
func TestSingleCompromisedRouterNeverCorrupts(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			evil := rng.Intn(3)
			var label string
			r := buildRig(t, 3, core.CombinerCentral, func(i int) switching.Behavior {
				if i != evil {
					return nil
				}
				var b switching.Behavior
				label, b = randomBehavior(rng, packet.HostMAC(2))
				return b
			})
			defer r.comb.Close()

			sink := traffic.NewUDPSink(r.h2, 5001)
			src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
				Rate:        15e6,
				PayloadSize: 700,
				Jitter:      100 * time.Microsecond,
				Rng:         rng.Fork(),
			})
			src.Start()
			r.sched.RunFor(300 * time.Millisecond)
			src.Stop()
			r.sched.RunFor(100 * time.Millisecond)

			st := sink.Stats()
			if st.Unique != src.Sent {
				t.Errorf("attack %q on router %d: delivered %d of %d", label, evil, st.Unique, src.Sent)
			}
			if st.Duplicates != 0 {
				t.Errorf("attack %q: %d duplicates leaked", label, st.Duplicates)
			}
			if st.Corrupted != 0 {
				t.Errorf("attack %q: %d corrupted payloads delivered", label, st.Corrupted)
			}
			if st.Reordered != 0 {
				t.Errorf("attack %q: %d reordered datagrams", label, st.Reordered)
			}
		})
	}
}

// TestSingleCompromisedRouterInlineNeverCorrupts fuzzes the same
// guarantee for the middlebox (inline) deployment.
func TestSingleCompromisedRouterInlineNeverCorrupts(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			evil := rng.Intn(3)
			var label string
			r := buildInlineRig(t, 3, func(i int) switching.Behavior {
				if i != evil {
					return nil
				}
				var b switching.Behavior
				label, b = randomBehavior(rng, packet.HostMAC(2))
				return b
			})
			defer r.comb.Close()

			sink := traffic.NewUDPSink(r.h2, 5001)
			src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
				Rate:        15e6,
				PayloadSize: 700,
				Jitter:      100 * time.Microsecond,
				Rng:         rng.Fork(),
			})
			src.Start()
			r.sched.RunFor(300 * time.Millisecond)
			src.Stop()
			r.sched.RunFor(100 * time.Millisecond)

			st := sink.Stats()
			if st.Unique != src.Sent || st.Duplicates != 0 || st.Corrupted != 0 {
				t.Errorf("attack %q on router %d: unique=%d/%d dups=%d corrupted=%d",
					label, evil, st.Unique, src.Sent, st.Duplicates, st.Corrupted)
			}
		})
	}
}

// TestTwoCompromisedOfFiveNeverCorrupt extends the guarantee to the
// strong combiner: any two compromised routers out of k=5.
func TestTwoCompromisedOfFiveNeverCorrupt(t *testing.T) {
	for seed := int64(200); seed < 208; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			evilA := rng.Intn(5)
			evilB := (evilA + 1 + rng.Intn(4)) % 5
			labels := make(map[int]string)
			r := buildRig(t, 5, core.CombinerCentral, func(i int) switching.Behavior {
				if i != evilA && i != evilB {
					return nil
				}
				label, b := randomBehavior(rng, packet.HostMAC(2))
				labels[i] = label
				return b
			})
			defer r.comb.Close()

			sink := traffic.NewUDPSink(r.h2, 5001)
			src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
				Rate:        15e6,
				PayloadSize: 700,
			})
			src.Start()
			r.sched.RunFor(300 * time.Millisecond)
			src.Stop()
			r.sched.RunFor(100 * time.Millisecond)

			st := sink.Stats()
			if st.Unique != src.Sent || st.Duplicates != 0 || st.Corrupted != 0 {
				t.Errorf("attacks %v: unique=%d/%d dups=%d corrupted=%d",
					labels, st.Unique, src.Sent, st.Duplicates, st.Corrupted)
			}
		})
	}
}

// TestMajorityCompromisedBreaks documents the model's boundary: two
// colluding routers out of three CAN defeat the combiner — NetCo's
// guarantee explicitly rests on the non-cooperation assumption (§II).
func TestMajorityCompromisedBreaks(t *testing.T) {
	rewrite := []openflow.Action{openflow.SetVLANVID(666)}
	r := buildRig(t, 3, core.CombinerCentral, func(i int) switching.Behavior {
		if i == 2 {
			return nil
		}
		// Two routers collude on an identical rewrite.
		return &adversary.Modify{
			Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
			Rewrite: rewrite,
		}
	})
	defer r.comb.Close()

	got := 0
	r.h2.HandleUDP(5001, func(pkt *packet.Packet) {
		if pkt.Eth.VLAN != nil && pkt.Eth.VLAN.VID == 666 {
			got++
		}
	})
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{
		Rate: 5e6, PayloadSize: 500,
	})
	src.Start()
	r.sched.RunFor(100 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	if got == 0 {
		t.Fatal("colluding majority failed to push its rewrite through — the model boundary moved")
	}
}
