package core

import (
	"testing"
	"time"

	"netco/internal/packet"
)

// benchFrames pre-marshals n distinct UDP frames of the given payload
// size, so benchmarks and allocation guards exercise the engine without
// charging packet construction to the measured path.
func benchFrames(n, payload int) [][]byte {
	frames := make([][]byte, n)
	src := packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1000}
	dst := packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2000}
	for i := range frames {
		body := make([]byte, payload)
		body[0], body[1], body[2] = byte(i), byte(i>>8), byte(i>>16)
		frames[i] = packet.NewUDP(src, dst, body).Marshal()
	}
	return frames
}

// ingestRotation pushes every frame through a full 3-copy majority cycle
// and then expires the batch so all entries retire and recycle. One call
// is the engine's steady state in miniature: cache grows, releases, and
// drains back to empty with every object returning to a pool.
func ingestRotation(e *Engine, frames [][]byte, now time.Duration) time.Duration {
	for _, w := range frames {
		now += time.Microsecond
		e.Ingest(now, 0, w, nil)
		e.Ingest(now, 1, w, nil)
		e.Ingest(now, 2, w, nil)
	}
	now += e.cfg.HoldTimeout + time.Microsecond
	e.Expire(now)
	return now
}

// TestEngineIngestSteadyStateZeroAlloc is the tentpole's regression guard:
// once the pools are warm, a full ingest→release→expire→recycle cycle must
// perform zero heap allocations. Any future change that re-introduces a
// per-packet allocation (boxed hashing, event slices, entry churn, fifo
// growth) fails this test rather than silently regressing throughput.
func TestEngineIngestSteadyStateZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"bitexact", ModeBitExact},
		{"hashed", ModeHashed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(Config{K: 3, Mode: tc.mode, HoldTimeout: time.Millisecond})
			frames := benchFrames(64, 256)
			now := time.Duration(0)
			// Warm the pools: entry free list, wire buffers, event
			// scratch, ring and heap capacity.
			for i := 0; i < 4; i++ {
				now = ingestRotation(e, frames, now)
			}
			got := testing.AllocsPerRun(50, func() {
				now = ingestRotation(e, frames, now)
			})
			if got != 0 {
				t.Fatalf("steady-state ingest allocated %.1f objects per rotation, want 0", got)
			}
			if e.Size() != 0 {
				t.Fatalf("cache not drained: %d entries live", e.Size())
			}
		})
	}
}

// BenchmarkEngineIngestSteadyState measures the pooled ingest path: cost
// of one 3-copy majority decision (hash ×3, match, release, and the
// amortised expiry sweep) with zero allocations per operation.
func BenchmarkEngineIngestSteadyState(b *testing.B) {
	for _, size := range []int{64, 1470} {
		b.Run(map[int]string{64: "64B", 1470: "1470B"}[size], func(b *testing.B) {
			e := NewEngine(Config{K: 3, HoldTimeout: time.Millisecond})
			frames := benchFrames(64, size)
			now := ingestRotation(e, frames, 0) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := frames[i&63]
				now += time.Microsecond
				e.Ingest(now, 0, w, nil)
				e.Ingest(now, 1, w, nil)
				e.Ingest(now, 2, w, nil)
				if i&63 == 63 {
					now += e.cfg.HoldTimeout
					e.Expire(now)
				}
			}
		})
	}
}

// BenchmarkEngineExpire measures the retirement sweep in isolation: fill
// the cache with suppressed (minority) entries, then expire them all.
func BenchmarkEngineExpire(b *testing.B) {
	e := NewEngine(Config{K: 3, HoldTimeout: time.Millisecond})
	frames := benchFrames(256, 128)
	b.ReportAllocs()
	b.ResetTimer()
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		w := frames[i&255]
		now += time.Microsecond
		e.Ingest(now, 0, w, nil)
		if i&255 == 255 {
			now += e.Config().HoldTimeout
			e.Expire(now)
		}
	}
}

// TestEngineFifoMemoryBounded is the regression test for the fifo
// backing-array leak: the previous implementation advanced the queue with
// fifo = fifo[1:], so the backing array retained every entry ever queued
// until Go happened to reallocate it. With the ring buffer, sustained
// churn far beyond the live population must leave the backing capacity
// proportional to the peak live size, not to the total ingested.
func TestEngineFifoMemoryBounded(t *testing.T) {
	e := NewEngine(Config{K: 3, HoldTimeout: time.Millisecond})
	src := packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1000}
	dst := packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2000}

	const total = 50_000
	const window = time.Millisecond // matches HoldTimeout
	peak := 0
	for i := 0; i < total; i++ {
		body := []byte{byte(i), byte(i >> 8), byte(i >> 16), 0}
		w := packet.NewUDP(src, dst, body).Marshal()
		now := time.Duration(i) * 10 * time.Microsecond
		e.Ingest(now, 0, w, nil)
		e.Ingest(now, 1, w, nil)
		e.Expire(now)
		if e.Size() > peak {
			peak = e.Size()
		}
	}
	// Live population is bounded by HoldTimeout/interarrival ≈ 100.
	if peak > 256 {
		t.Fatalf("peak live entries %d, expected bounded by expiry window", peak)
	}
	// The ring holds at most the next power of two above the peak; the
	// old slice-advance fifo would have grown toward `total` here.
	if cap := e.fifoCap(); cap > 1024 {
		t.Fatalf("fifo backing array capacity %d after %d entries churned; leak (peak live %d)",
			cap, total, peak)
	}
	if e.Size() > 200 {
		t.Fatalf("cache failed to drain: %d live", e.Size())
	}
}

// TestEngineCleanupAtExactCapacity: a cache at exactly CacheCapacity is
// not over capacity — cleanup must be a no-op and charge no scan stall.
func TestEngineCleanupAtExactCapacity(t *testing.T) {
	e := NewEngine(Config{K: 3, HoldTimeout: time.Minute, CacheCapacity: 8})
	frames := benchFrames(8, 64)
	for i, w := range frames {
		e.Ingest(time.Duration(i)*time.Microsecond, 0, w, nil)
	}
	if e.Size() != 8 {
		t.Fatalf("size = %d, want 8", e.Size())
	}
	if e.OverCapacity() {
		t.Fatal("OverCapacity true at exactly CacheCapacity")
	}
	events, scanned := e.Cleanup(time.Millisecond)
	if events != nil || scanned != 0 {
		t.Fatalf("cleanup at capacity: events=%v scanned=%d, want none", events, scanned)
	}
	if e.Stats().CleanupPasses != 0 {
		t.Fatal("cleanup pass counted despite no-op")
	}
	// One entry beyond capacity must trigger a pass down to half.
	extra := benchFrames(9, 96)[8]
	e.Ingest(time.Millisecond, 0, extra, nil)
	if !e.OverCapacity() {
		t.Fatal("OverCapacity false at capacity+1")
	}
	_, scanned = e.Cleanup(time.Millisecond)
	if scanned == 0 {
		t.Fatal("cleanup over capacity scanned nothing")
	}
	if want := 8 / 2; e.Size() != want {
		t.Fatalf("size after cleanup = %d, want %d", e.Size(), want)
	}
}

// TestEngineCleanupSameTickRelease: an entry that reaches majority and is
// cleaned up in the same virtual instant must be released exactly once and
// never also reported suppressed — the cleanup pass sees released=true.
func TestEngineCleanupSameTickRelease(t *testing.T) {
	e := NewEngine(Config{K: 3, HoldTimeout: time.Minute, CacheCapacity: 2})
	frames := benchFrames(3, 64)
	now := 5 * time.Microsecond

	// Two old minority entries fill the cache.
	e.Ingest(now, 0, frames[0], nil)
	e.Ingest(now, 0, frames[1], nil)
	// The third reaches majority at the same tick the cache overflows.
	events := e.Ingest(now, 0, frames[2], nil)
	events = append([]Event(nil), events...) // keep across next engine call
	ev2 := e.Ingest(now, 1, frames[2], nil)
	if !hasKind(ev2, EventRelease) {
		t.Fatalf("no release at majority: %v", kinds(ev2))
	}
	if !e.OverCapacity() {
		t.Fatal("cache not over capacity")
	}
	cleanupEvents, _ := e.Cleanup(now)
	for _, ev := range cleanupEvents {
		if ev.Kind == EventRelease {
			t.Fatal("cleanup re-released an already released entry")
		}
	}
	st := e.Stats()
	if st.Released != 1 {
		t.Fatalf("released = %d, want 1", st.Released)
	}
	// The two minority entries retired by the pass are the suppressions.
	if st.Suppressed > 3 {
		t.Fatalf("suppressed = %d, want at most the three minority entries", st.Suppressed)
	}
	_ = events
}

// TestEngineCleanupUnboundedCache: CacheCapacity zero means unbounded —
// never over capacity, cleanup never fires regardless of size.
func TestEngineCleanupUnboundedCache(t *testing.T) {
	e := NewEngine(Config{K: 3, HoldTimeout: time.Minute})
	frames := benchFrames(128, 64)
	for i, w := range frames {
		e.Ingest(time.Duration(i)*time.Microsecond, 0, w, nil)
	}
	if e.OverCapacity() {
		t.Fatal("unbounded cache reports OverCapacity")
	}
	events, scanned := e.Cleanup(time.Second)
	if events != nil || scanned != 0 {
		t.Fatalf("cleanup on unbounded cache: events=%v scanned=%d", events, scanned)
	}
	if e.Size() != 128 {
		t.Fatalf("size = %d, want 128", e.Size())
	}
}
