package core

import (
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// VirtualEdgeConfig parameterises one end of the virtualized combiner of
// §VII: instead of physical parallel routers, flows are split over k
// disjoint *paths* through heterogeneous existing devices, using VLAN
// tags as tunnel labels, and the compare runs inband at the egress edge.
type VirtualEdgeConfig struct {
	// Name is the node name.
	Name string
	// Paths is k: the number of disjoint paths. Path i attaches to node
	// port PathPort(i) and carries VLAN tag TagBase+i.
	Paths int
	// TagBase is the first VLAN id used for tunnel labels (default 101).
	TagBase uint16
	// Engine configures the inband compare (Engine.K is forced to
	// Paths).
	Engine Config
	// PerCopyCost is the inband compare's CPU cost per arriving copy.
	PerCopyCost time.Duration
	// QueueLimit bounds the compare's ingest queue.
	QueueLimit int
	// ProcDelay is the edge's forwarding pipeline cost for the
	// splitting direction.
	ProcDelay time.Duration
}

// VirtualEdgeStats counts virtual-edge activity.
type VirtualEdgeStats struct {
	// Split counts copies fanned out over the paths.
	Split uint64
	// Combined counts packets released by the inband compare.
	Combined uint64
	// TagViolations counts copies arriving on a path with the wrong
	// tunnel label — evidence of VLAN rewriting in transit.
	TagViolations uint64
	// TableMisses counts releases with no MAC route.
	TableMisses uint64
}

// VirtualEdge is one end of a virtualized combiner. Traffic from the
// protected side (port HostPort) is replicated over the k tagged paths;
// traffic arriving from the paths is label-checked, stripped, and
// majority-combined inband before leaving toward the protected side —
// "splitting a flow into two (for detection) or three (for prevention)
// copies along different segments of the path, using tunneling, has a
// similar effect as in the physical robust combiner approach" (§VII).
type VirtualEdge struct {
	cfg   VirtualEdgeConfig
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	engine   *Engine
	macTable map[packet.MAC]int
	// wireBuf is marshal scratch; the engine copies ingested wire bytes,
	// so the buffer is reused across copies.
	wireBuf []byte

	// OnAlarm receives DoS / silence / detection alarms from the inband
	// compare.
	OnAlarm func(Alarm)

	stats      VirtualEdgeStats
	sweepTimer sim.Timer
}

var _ netem.Node = (*VirtualEdge)(nil)

// VirtualHostPort is the protected-side port of a VirtualEdge.
const VirtualHostPort = 0

// PathPort returns the node port for path i.
func (v *VirtualEdge) PathPort(i int) int { return 1 + i }

// NewVirtualEdge creates a virtual combiner edge and starts its expiry
// sweep; Close stops it.
func NewVirtualEdge(sched *sim.Scheduler, cfg VirtualEdgeConfig) *VirtualEdge {
	if cfg.TagBase == 0 {
		cfg.TagBase = 101
	}
	cfg.Engine.K = cfg.Paths
	v := &VirtualEdge{
		cfg:      cfg,
		sched:    sched,
		proc:     netem.NewProc(sched, cfg.PerCopyCost, cfg.QueueLimit),
		engine:   NewEngine(cfg.Engine),
		macTable: make(map[packet.MAC]int),
	}
	v.scheduleSweep()
	return v
}

// Name implements netem.Node.
func (v *VirtualEdge) Name() string { return v.cfg.Name }

// Ports implements netem.Node.
func (v *VirtualEdge) Ports() *netem.Ports { return &v.ports }

// Stats returns the edge counters.
func (v *VirtualEdge) Stats() VirtualEdgeStats { return v.stats }

// EngineStats returns the inband compare's counters.
func (v *VirtualEdge) EngineStats() Stats { return v.engine.Stats() }

// Tag returns the VLAN label of path i.
func (v *VirtualEdge) Tag(i int) uint16 { return v.cfg.TagBase + uint16(i) }

// AddRoute declares that released packets for mac leave via the given
// node port (usually VirtualHostPort).
func (v *VirtualEdge) AddRoute(mac packet.MAC, port int) {
	v.macTable[mac] = port
}

// Close stops the periodic sweep.
func (v *VirtualEdge) Close() {
	v.sweepTimer.Stop()
	v.sweepTimer = sim.Timer{}
}

func (v *VirtualEdge) scheduleSweep() {
	interval := v.engine.Config().HoldTimeout / 2
	v.sweepTimer = v.sched.After(interval, func() {
		v.handleEvents(v.engine.Expire(v.sched.Now()))
		v.scheduleSweep()
	})
}

// Receive implements netem.Receiver.
func (v *VirtualEdge) Receive(port int, pkt *packet.Packet) {
	if port == VirtualHostPort {
		v.split(pkt)
		return
	}
	idx := port - 1
	if idx < 0 || idx >= v.cfg.Paths {
		return
	}
	if !v.proc.SubmitArgs(virtualCombine, v, pkt, idx) {
		return
	}
}

func virtualCombine(a0, a1 any, idx int) {
	a0.(*VirtualEdge).combine(idx, a1.(*packet.Packet))
}

// split replicates a protected-side packet over the k tagged paths.
func (v *VirtualEdge) split(pkt *packet.Packet) {
	for i := 0; i < v.cfg.Paths; i++ {
		copyPkt := pkt.Clone()
		copyPkt.Eth.VLAN = &packet.VLANTag{VID: v.Tag(i)}
		if v.ports.Send(v.PathPort(i), copyPkt) {
			v.stats.Split++
		}
	}
}

// combine label-checks and majority-combines one copy arriving from path
// idx.
func (v *VirtualEdge) combine(idx int, pkt *packet.Packet) {
	if pkt.Eth.VLAN == nil || pkt.Eth.VLAN.VID != v.Tag(idx) {
		// Wrong or missing tunnel label: either a device rewrote the
		// VLAN field (the §II isolation attack) or traffic leaked
		// across paths. Never combine it.
		v.stats.TagViolations++
		v.alarm(Alarm{Kind: EventDetection, Router: idx, At: v.sched.Now()})
		return
	}
	stripped := pkt.Clone()
	stripped.Eth.VLAN = nil
	v.wireBuf = stripped.MarshalInto(v.wireBuf[:0])
	events := v.engine.Ingest(v.sched.Now(), idx, v.wireBuf, stripped)
	v.handleEvents(events)
	if v.engine.OverCapacity() {
		cleanupEvents, scanned := v.engine.Cleanup(v.sched.Now())
		if scanned > 0 {
			v.proc.Stall(time.Duration(scanned) * 500 * time.Nanosecond)
		}
		v.handleEvents(cleanupEvents)
	}
}

func (v *VirtualEdge) handleEvents(events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EventRelease:
			v.stats.Combined++
			port, ok := v.macTable[ev.Pkt.Eth.Dst]
			if !ok {
				v.stats.TableMisses++
				port = VirtualHostPort
			}
			v.ports.Send(port, ev.Pkt)
		case EventDoS, EventPortSilent, EventDetection:
			v.alarm(Alarm{Kind: ev.Kind, Router: ev.Port, At: v.sched.Now(), Copies: ev.Copies})
		}
	}
}

func (v *VirtualEdge) alarm(a Alarm) {
	if v.OnAlarm != nil {
		v.OnAlarm(a)
	}
}
