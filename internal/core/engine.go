// Package core implements the NetCo robust network combiner — the paper's
// contribution. A combiner replaces one untrusted router with:
//
//   - a trusted hub that replicates every packet to k untrusted routers in
//     parallel (Hub, or the ingress half of EdgeSwitch),
//   - the k untrusted routers themselves (ordinary OpenFlow switches from
//     internal/switching, possibly compromised via internal/adversary), and
//   - a trusted compare that forwards a packet only once it has been
//     received from a majority (> ⌊k/2⌋) of the routers (Engine, deployed
//     either as the data-plane CompareNode — the paper's C prototype — or
//     as a controller application — the POX3 baseline).
//
// Two routers suffice to detect misbehaviour (DetectOnly mode), three to
// prevent it (§III). The package also contains the virtualized combiner of
// §VII, which trades the physical parallel routers for VLAN-tagged
// disjoint paths, and the sampling compare sketched in §IX.
package core

import (
	"bytes"
	"time"

	"netco/internal/packet"
)

// Mode selects how the compare decides that two copies are "the same
// packet" (§III: "packets may be compared bit-by-bit, or just based on the
// header, or hashing can be used").
type Mode int

// Compare modes.
const (
	// ModeBitExact stores the full frame and confirms candidate matches
	// with a byte comparison — the memcmp() of the C prototype. Safest.
	ModeBitExact Mode = iota + 1
	// ModeHashed matches on a digest of the full frame, trading a
	// negligible collision risk for not storing packet bodies.
	ModeHashed
	// ModeHeader matches on the L2–L4 headers only: cheapest, detects
	// rerouting/mirroring, but blind to payload tampering.
	ModeHeader
)

// EventKind classifies compare engine outcomes.
type EventKind int

// Engine event kinds.
const (
	// EventRelease: a packet reached majority and must be forwarded once.
	EventRelease EventKind = iota + 1
	// EventDoS: one ingress port delivered the same packet repeatedly
	// (§IV case 2); the combiner should block that port for a while.
	EventDoS
	// EventPortSilent: several consecutive packets were never seen on a
	// port (§IV case 3); the router is presumed unavailable — alarm.
	EventPortSilent
	// EventSuppressed: an entry expired without reaching majority (§IV
	// case 1: rewritten, exfiltrated or unsolicited packets). The packet
	// was never forwarded.
	EventSuppressed
	// EventDetection: in DetectOnly mode, an entry retired without
	// unanimity — evidence that some router dropped or altered the
	// packet.
	EventDetection
)

// String names the event kind for logs and alarms.
func (k EventKind) String() string {
	switch k {
	case EventRelease:
		return "release"
	case EventDoS:
		return "dos"
	case EventPortSilent:
		return "port-silent"
	case EventSuppressed:
		return "suppressed"
	case EventDetection:
		return "detection"
	case EventPoisoned:
		return "poisoned"
	}
	return "unknown"
}

// Event is one compare engine outcome. Port is meaningful for EventDoS,
// EventPortSilent and EventSuppressed (first port seen); Pkt/Wire for
// EventRelease and EventSuppressed.
//
// Events returned by Ingest, Expire and Cleanup alias engine-owned scratch
// storage: they are valid until the next call into the same engine and must
// be consumed (or copied) before then.
type Event struct {
	Kind EventKind
	Port int
	// Pkt is the parsed frame, when the caller provided one to Ingest.
	Pkt *packet.Packet
	// Wire is the frame's wire form (engine-owned copy for entry-backed
	// events). Data-plane deployments release from Wire directly so
	// parsed packets never need to be re-marshalled.
	Wire []byte
	// Copies is how many copies had arrived when the event fired.
	Copies int
}

// Config parameterises the compare engine.
type Config struct {
	// K is the number of parallel untrusted routers. Each logical packet
	// is expected once per port in [0, K).
	K int
	// Mode selects the equality notion (default ModeBitExact).
	Mode Mode
	// Majority overrides the release threshold (default ⌊K/2⌋+1).
	Majority int
	// DetectOnly releases the first copy immediately and uses the
	// remaining copies only to detect disagreement — the k=2 deployment
	// of §III.
	DetectOnly bool
	// HoldTimeout bounds how long an entry waits for more copies. The
	// paper: "our construction should bound the waiting time ...
	// otherwise it is exposed to denial-of-service attacks" (§IV).
	HoldTimeout time.Duration
	// CacheCapacity bounds the number of cached entries; exceeding it
	// triggers a cleanup pass (the jitter mechanism of Fig. 8). Zero
	// means unbounded.
	CacheCapacity int
	// DoSThreshold is the per-port copy count that flags a DoS (≥ 2
	// copies of the same packet from one port is already misbehaviour;
	// the default is 3 to tolerate benign L2 retransmission quirks).
	DoSThreshold int
	// SilenceThreshold is the number of consecutive retired entries a
	// port may miss before EventPortSilent fires (default 8).
	SilenceThreshold int
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeBitExact
	}
	if c.Majority == 0 {
		c.Majority = c.K/2 + 1
	}
	if c.DoSThreshold == 0 {
		c.DoSThreshold = 3
	}
	if c.SilenceThreshold == 0 {
		c.SilenceThreshold = 8
	}
	if c.HoldTimeout == 0 {
		c.HoldTimeout = 50 * time.Millisecond
	}
	return c
}

// Stats aggregates engine activity.
type Stats struct {
	// Ingested counts copies offered to the engine.
	Ingested uint64
	// Released counts packets forwarded (each exactly once).
	Released uint64
	// LateCopies counts copies that arrived after their packet was
	// already released ("if additional packets arrive later, they are
	// ignored", §IV).
	LateCopies uint64
	// Suppressed counts entries that expired without majority: the
	// attacks NetCo prevented.
	Suppressed uint64
	// DoSFlagged counts EventDoS occurrences.
	DoSFlagged uint64
	// Detections counts EventDetection occurrences (DetectOnly mode).
	Detections uint64
	// CleanupPasses counts cache cleanups; CleanupScanned the total
	// entries scanned by them.
	CleanupPasses  uint64
	CleanupScanned uint64
}

// entry is one cached packet awaiting majority. Entries are pooled: retire
// recycles them onto the engine's free list, and Ingest reuses them (and
// their wire buffers) instead of allocating, so the steady-state ingest
// path performs no heap allocations.
type entry struct {
	key uint64
	// next links entries in two mutually exclusive states: colliding
	// entries within one key bucket while live, and the engine's free
	// list while recycled.
	next     *entry
	wire     []byte // engine-owned copy of the frame (confirmation + release)
	pkt      *packet.Packet
	seen     [MaxK]uint8 // copies per port
	distinct int
	released bool
	dosSent  bool
	first    time.Duration
	firstPt  int
}

// Engine is the compare decision core: a deterministic state machine with
// no I/O, time injected by the caller. CompareNode (data plane) and the
// controller CompareApp (POX3) both embed one.
type Engine struct {
	cfg Config

	// entries buckets live entries by key; collisions chain via
	// entry.next (intrusive, so inserting a new key allocates nothing).
	entries map[uint64]*entry
	// fifo holds entries in arrival order for expiry and cleanup scans.
	// A ring buffer keeps memory bounded by the peak number of live
	// entries; the previous fifo = fifo[1:] slice retained every popped
	// entry until the backing array happened to be reallocated.
	fifo entryRing
	size int

	silent []int // consecutive missed retirements per port

	free    *entry  // recycled entries
	scratch []Event // reused backing array for returned events

	stats Stats
}

// NewEngine returns an engine for the given configuration. K must not
// exceed MaxK.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.K > MaxK {
		panic("core: engine K exceeds MaxK")
	}
	return &Engine{
		cfg:     cfg,
		entries: make(map[uint64]*entry),
		silent:  make([]int, cfg.K),
	}
}

// entryRing is a FIFO of entries backed by a power-of-two ring buffer.
type entryRing struct {
	buf  []*entry
	head int
	n    int
}

func (r *entryRing) push(en *entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = en
	r.n++
}

func (r *entryRing) pop() *entry {
	en := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return en
}

func (r *entryRing) peek() *entry { return r.buf[r.head] }

func (r *entryRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	buf := make([]*entry, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

// alloc takes an entry from the free list, or allocates one cold.
func (e *Engine) alloc() *entry {
	en := e.free
	if en == nil {
		return &entry{}
	}
	e.free = en.next
	en.next = nil
	return en
}

// recycle resets an entry (keeping its wire buffer's capacity) and pushes
// it onto the free list.
func (e *Engine) recycle(en *entry) {
	wire := en.wire[:0]
	*en = entry{wire: wire, next: e.free}
	e.free = en
}

// Config returns the effective configuration (defaults applied).
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Size returns the number of live cache entries.
func (e *Engine) Size() int { return e.size }

func (e *Engine) keyOf(wire []byte, pkt *packet.Packet) uint64 {
	switch e.cfg.Mode {
	case ModeHeader:
		return packet.HeaderKey(pkt)
	default:
		return packet.FastKey(wire)
	}
}

// sameFrame confirms that a candidate entry really holds the same packet.
func (e *Engine) sameFrame(en *entry, wire []byte) bool {
	if e.cfg.Mode != ModeBitExact {
		return true // key equality is the whole test
	}
	return bytes.Equal(en.wire, wire)
}

// Ingest offers one copy received on port at virtual time now. wire is the
// frame's marshalled form and pkt its parsed form. pkt may be nil unless
// Mode is ModeHeader (whose key is computed from parsed headers); the
// data-plane CompareNode exploits this to ingest decapsulated wire bytes
// without re-parsing or re-marshalling them. The engine copies wire into
// entry-owned storage, so callers may reuse their buffer; it never mutates
// either argument. The returned events must be acted on by the deployment
// wrapper before the next call into the engine (they alias engine scratch).
func (e *Engine) Ingest(now time.Duration, port int, wire []byte, pkt *packet.Packet) []Event {
	e.poisonScratch()
	e.stats.Ingested++
	events := e.scratch[:0]
	if port < 0 || port >= e.cfg.K {
		// Unknown ingress: treat as a lone suppressed packet.
		e.stats.Suppressed++
		events = append(events, Event{Kind: EventSuppressed, Port: port, Pkt: pkt, Wire: wire, Copies: 1})
		return e.emit(events)
	}

	key := e.keyOf(wire, pkt)
	var en *entry
	for cand := e.entries[key]; cand != nil; cand = cand.next {
		if e.sameFrame(cand, wire) {
			en = cand
			break
		}
	}

	if en == nil {
		en = e.alloc()
		en.key = key
		en.pkt = pkt
		en.wire = append(en.wire[:0], wire...)
		en.first = now
		en.firstPt = port
		en.next = e.entries[key]
		e.entries[key] = en
		e.fifo.push(en)
		e.size++
	}

	if en.seen[port] < 0xff {
		en.seen[port]++
	}
	if en.seen[port] == 1 {
		en.distinct++
	}

	// DoS: the same port keeps delivering the same packet.
	if int(en.seen[port]) >= e.cfg.DoSThreshold && !en.dosSent {
		en.dosSent = true
		e.stats.DoSFlagged++
		events = append(events, Event{Kind: EventDoS, Port: port, Pkt: pkt, Wire: en.wire, Copies: int(en.seen[port])})
	}

	if en.released {
		e.stats.LateCopies++
		return e.emit(events)
	}

	release := en.distinct >= e.cfg.Majority
	if e.cfg.DetectOnly && en.distinct >= 1 {
		release = true
	}
	if release {
		en.released = true
		e.stats.Released++
		events = append(events, Event{Kind: EventRelease, Port: port, Pkt: en.pkt, Wire: en.wire, Copies: en.distinct})
	}
	return e.emit(events)
}

// emit stores the scratch backing array for reuse and normalises an empty
// slice to nil (matching the historical API).
func (e *Engine) emit(events []Event) []Event {
	e.scratch = events
	if len(events) == 0 {
		return nil
	}
	return events
}

// Expire retires entries older than HoldTimeout, returning suppression,
// detection and port-silence events. Deployments call it periodically.
// Like Ingest's, the returned slice is valid until the next engine call.
func (e *Engine) Expire(now time.Duration) []Event {
	e.poisonScratch()
	events := e.scratch[:0]
	cutoff := now - e.cfg.HoldTimeout
	for e.fifo.n > 0 && e.fifo.peek().first <= cutoff {
		events = e.retire(e.fifo.pop(), events)
	}
	return e.emit(events)
}

// retire removes an entry from the cache, accounts for its outcome, and
// recycles it. The appended events borrow the entry's pkt and wire; they
// remain intact until the entry is reused by a later Ingest.
func (e *Engine) retire(en *entry, events []Event) []Event {
	// Unlink from the key bucket's chain.
	if head := e.entries[en.key]; head == en {
		if en.next == nil {
			delete(e.entries, en.key)
		} else {
			e.entries[en.key] = en.next
		}
	} else {
		for cand := head; cand != nil; cand = cand.next {
			if cand.next == en {
				cand.next = en.next
				break
			}
		}
	}
	e.size--

	if !en.released {
		e.stats.Suppressed++
		events = append(events, Event{
			Kind:   EventSuppressed,
			Port:   en.firstPt,
			Pkt:    en.pkt,
			Wire:   en.wire,
			Copies: en.distinct,
		})
	} else if e.cfg.DetectOnly && en.distinct < e.cfg.K {
		e.stats.Detections++
		events = append(events, Event{Kind: EventDetection, Port: en.firstPt, Pkt: en.pkt, Wire: en.wire, Copies: en.distinct})
	}

	// Port-silence accounting: only meaningful for entries that reached
	// majority (a suppressed unique packet says nothing about the other
	// routers — it likely never existed on their paths).
	if en.released {
		for p := 0; p < e.cfg.K; p++ {
			if en.seen[p] > 0 {
				e.silent[p] = 0
				continue
			}
			e.silent[p]++
			if e.silent[p] == e.cfg.SilenceThreshold {
				events = append(events, Event{Kind: EventPortSilent, Port: p})
			}
		}
	}
	e.recycle(en)
	return events
}

// Cleanup runs the cache-full cleanup pass: it retires, oldest first, as
// many entries as needed to bring the cache back under capacity (released
// and expired entries are preferred implicitly because they are the
// oldest). It returns the retirement events and the number of entries
// scanned — the deployment charges a proportional CPU stall, which is the
// jitter mechanism the paper observes in Fig. 8.
func (e *Engine) Cleanup(now time.Duration) (events []Event, scanned int) {
	e.poisonScratch()
	if e.cfg.CacheCapacity <= 0 || e.size <= e.cfg.CacheCapacity {
		return nil, 0
	}
	e.stats.CleanupPasses++
	events = e.scratch[:0]
	target := e.cfg.CacheCapacity / 2
	for e.size > target && e.fifo.n > 0 {
		scanned++
		events = e.retire(e.fifo.pop(), events)
	}
	e.stats.CleanupScanned += uint64(scanned)
	return e.emit(events), scanned
}

// fifoCap exposes the ring's backing capacity for memory-bound regression
// tests.
func (e *Engine) fifoCap() int { return len(e.fifo.buf) }

// OverCapacity reports whether the cache exceeds its configured capacity.
func (e *Engine) OverCapacity() bool {
	return e.cfg.CacheCapacity > 0 && e.size > e.cfg.CacheCapacity
}
