package core

import (
	"os"
	"sync/atomic"
)

// Scratch poison mode. Events returned by Ingest, Expire and Cleanup alias
// engine-owned scratch storage and are only valid until the next call into
// the same engine. A deployment that retains such a slice across calls is
// reading freed memory in spirit — but in practice the stale values often
// survive long enough for tests to pass. Poison mode makes the violation
// deterministic: at the start of every engine call, the events handed out
// by the previous call are scribbled with EventPoisoned, so any retained
// slice visibly decays and assertion-based tests (and the -race suite,
// which runs with NETCO_POISON_SCRATCH=1) catch the bug immediately.

// EventPoisoned marks a scratch event that was invalidated by a later call
// into the engine. Seeing this kind means the caller violated the event
// lifetime contract.
const EventPoisoned EventKind = -1

// scratchPoison enables scribbling globally. An atomic so tests can flip
// it without racing parallel packages; engines themselves stay
// single-threaded.
var scratchPoison atomic.Bool

func init() {
	if v := os.Getenv("NETCO_POISON_SCRATCH"); v != "" && v != "0" {
		scratchPoison.Store(true)
	}
}

// SetScratchPoison turns poison mode on or off and reports the previous
// setting, so tests can restore it.
func SetScratchPoison(on bool) (prev bool) { return scratchPoison.Swap(on) }

// ScratchPoisonEnabled reports whether poison mode is active.
func ScratchPoisonEnabled() bool { return scratchPoison.Load() }

// poisonScratch scribbles the events handed out by the previous engine
// call. Called at the top of every entry point, before the scratch array
// is reused, so a contract-abiding caller never observes it.
func (e *Engine) poisonScratch() {
	if !scratchPoison.Load() {
		return
	}
	for i := range e.scratch {
		e.scratch[i] = Event{Kind: EventPoisoned, Port: -1, Copies: -1}
	}
}
