package core

import (
	"testing"
	"time"

	"netco/internal/packet"
)

func poisonFrame(t *testing.T, seq uint32) ([]byte, *packet.Packet) {
	t.Helper()
	p := packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1000},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: uint16(2000 + seq)},
		[]byte("poison-probe"),
	)
	return p.Marshal(), p
}

// A caller that retains the event slice across engine calls must see its
// events scribbled to EventPoisoned — the contract violation becomes a
// deterministic test failure instead of silently-stale data.
func TestScratchPoisonScribblesRetainedEvents(t *testing.T) {
	prev := SetScratchPoison(true)
	defer SetScratchPoison(prev)

	e := NewEngine(Config{K: 3})
	wire, pkt := poisonFrame(t, 0)
	if ev := e.Ingest(0, 0, wire, pkt); ev != nil {
		t.Fatalf("first copy released early: %v", ev)
	}
	retained := e.Ingest(time.Millisecond, 1, wire, pkt) // majority → release
	if len(retained) != 1 || retained[0].Kind != EventRelease {
		t.Fatalf("events = %v, want one release", retained)
	}
	// Copying before the next call is the sanctioned pattern and must
	// survive poisoning.
	copied := append([]Event(nil), retained...)

	wire2, pkt2 := poisonFrame(t, 1)
	e.Ingest(2*time.Millisecond, 0, wire2, pkt2)

	if retained[0].Kind != EventPoisoned || retained[0].Port != -1 {
		t.Fatalf("retained event not poisoned: %+v", retained[0])
	}
	if copied[0].Kind != EventRelease {
		t.Fatalf("copied event was affected by poisoning: %+v", copied[0])
	}
}

// Every entry point invalidates the previous call's events, including
// Expire and a Cleanup that early-returns under capacity.
func TestScratchPoisonCoversAllEntryPoints(t *testing.T) {
	prev := SetScratchPoison(true)
	defer SetScratchPoison(prev)

	for _, next := range []string{"ingest", "expire", "cleanup"} {
		e := NewEngine(Config{K: 3, HoldTimeout: time.Millisecond})
		wire, pkt := poisonFrame(t, 0)
		e.Ingest(0, 0, wire, pkt)
		retained := e.Ingest(0, 1, wire, pkt)
		if len(retained) != 1 {
			t.Fatalf("%s: want one release event", next)
		}
		switch next {
		case "ingest":
			w2, p2 := poisonFrame(t, 1)
			e.Ingest(0, 0, w2, p2)
		case "expire":
			e.Expire(time.Hour)
		case "cleanup":
			e.Cleanup(0) // under capacity: still a call into the engine
		}
		if retained[0].Kind != EventPoisoned {
			t.Fatalf("after %s: retained event not poisoned: %+v", next, retained[0])
		}
	}
}

// Poison off (the default) leaves scratch alone between calls, so the
// optimisation of reusing the backing array stays observable only through
// the documented contract, not through behaviour changes.
func TestScratchPoisonDisabledLeavesScratchAlone(t *testing.T) {
	prev := SetScratchPoison(false)
	defer SetScratchPoison(prev)

	e := NewEngine(Config{K: 3})
	wire, pkt := poisonFrame(t, 0)
	e.Ingest(0, 0, wire, pkt)
	retained := e.Ingest(0, 1, wire, pkt)
	e.Cleanup(0)
	if retained[0].Kind != EventRelease {
		t.Fatalf("events mutated with poison disabled: %+v", retained[0])
	}
}
