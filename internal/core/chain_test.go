package core_test

import (
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

// buildChain wires two combiners in series — Fig. 2's deployment, where
// *every* router on a path is replaced by a combiner: h1 – C1 – C2 – h2.
// compromise(c, i) selects a behavior for router i of combiner c.
func buildChain(t *testing.T, compromise func(c, i int) switching.Behavior) (*sim.Scheduler, []*core.Combiner, *traffic.Host, *traffic.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}

	combs := make([]*core.Combiner, 2)
	for c := range combs {
		c := c
		spec := core.CombinerSpec{
			NamePrefix: []string{"a-", "b-"}[c],
			K:          3,
			Mode:       core.CombinerCentral,
			Compare: core.CompareNodeConfig{
				Engine:      core.Config{HoldTimeout: 20 * time.Millisecond, CacheCapacity: 1 << 16},
				PerCopyCost: 2 * time.Microsecond,
			},
			EdgeProcDelay: time.Microsecond,
			RouterLink:    link,
			CompareLink:   netem.LinkConfig{Bandwidth: 2e9, Delay: 5 * time.Microsecond, QueueLimit: 200},
		}
		combs[c] = core.Build(net, spec, func(i int) *switching.Switch {
			sw := switching.New(sched, switching.Config{
				Name:      spec.NamePrefix + "r" + string(rune('0'+i)),
				ProcDelay: time.Microsecond,
				ProcQueue: 500,
			})
			if compromise != nil {
				if b := compromise(c, i); b != nil {
					sw.SetBehavior(b)
				}
			}
			return sw
		})
	}

	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)

	// Outer attachments.
	combs[0].AttachHost(net, core.SideLeft, h1, traffic.HostPort, h1.MAC(), link)
	combs[1].AttachHost(net, core.SideRight, h2, traffic.HostPort, h2.MAC(), link)
	// Splice the combiners: C1's right host side ↔ C2's left host side.
	net.Connect(combs[0].Right, core.EdgeHostPort, combs[1].Left, core.EdgeHostPort, link)
	// Through-routes: each combiner must know both endpoints.
	combs[0].Right.AddRoute(h2.MAC(), core.EdgeHostPort)
	combs[0].InstallRoute(h2.MAC(), core.SideRight)
	combs[1].Left.AddRoute(h1.MAC(), core.EdgeHostPort)
	combs[1].InstallRoute(h1.MAC(), core.SideLeft)
	return sched, combs, h1, h2
}

func TestChainedCombinersDeliverExactlyOnce(t *testing.T) {
	sched, combs, h1, h2 := buildChain(t, nil)
	defer combs[0].Close()
	defer combs[1].Close()

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 900})
	src.Start()
	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 || st.Corrupted != 0 {
		t.Fatalf("unique=%d/%d dups=%d corrupted=%d", st.Unique, src.Sent, st.Duplicates, st.Corrupted)
	}
	// Both compares voted on every packet.
	for c, comb := range combs {
		if rel := comb.Compare.EngineStats().Released; rel != src.Sent {
			t.Fatalf("combiner %d released %d of %d", c, rel, src.Sent)
		}
	}
}

func TestChainedCombinersSurviveOneAttackerEach(t *testing.T) {
	// One compromised router inside *each* combiner, attacking
	// differently: drops in the first, VLAN rewrites in the second.
	sched, combs, h1, h2 := buildChain(t, func(c, i int) switching.Behavior {
		switch {
		case c == 0 && i == 1:
			return &adversary.Drop{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2))}
		case c == 1 && i == 2:
			return &adversary.Modify{
				Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
				Rewrite: []openflow.Action{openflow.SetVLANVID(666)},
			}
		}
		return nil
	})
	defer combs[0].Close()
	defer combs[1].Close()

	sink := traffic.NewUDPSink(h2, 5001)
	src := traffic.NewUDPSource(h1, 4001, h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 600})
	src.Start()
	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 || st.Corrupted != 0 {
		t.Fatalf("unique=%d/%d dups=%d corrupted=%d", st.Unique, src.Sent, st.Duplicates, st.Corrupted)
	}
	if s := combs[1].Compare.EngineStats().Suppressed; s == 0 {
		t.Fatal("second combiner suppressed nothing despite the rewriter")
	}
}

func TestChainedCombinersPing(t *testing.T) {
	sched, combs, h1, h2 := buildChain(t, nil)
	defer combs[0].Close()
	defer combs[1].Close()
	p := traffic.NewPinger(h1, h2.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 4})
	var res traffic.PingResult
	p.Run(func(r traffic.PingResult) { res = r })
	sched.RunFor(2 * time.Second)
	if res.Received != 10 || res.Duplicates != 0 {
		t.Fatalf("received %d/10, %d dups", res.Received, res.Duplicates)
	}
	// Two compare detours per direction: RTT clearly above a single
	// combiner's on the same parameters.
	single := buildRig(t, 3, core.CombinerCentral, nil)
	defer single.comb.Close()
	sp := traffic.NewPinger(single.h1, single.h2.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 4})
	var sres traffic.PingResult
	sp.Run(func(r traffic.PingResult) { sres = r })
	single.sched.RunFor(2 * time.Second)

	chained, one := res.RTT.MeanDuration(), sres.RTT.MeanDuration()
	if chained <= one+one/2 {
		t.Fatalf("chained RTT %v not clearly above single-combiner RTT %v", chained, one)
	}
}
