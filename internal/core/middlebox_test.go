package core_test

import (
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

func buildInlineRig(t *testing.T, k int, compromise func(i int) switching.Behavior) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}
	spec := core.CombinerSpec{
		K:    k,
		Mode: core.CombinerInline,
		Compare: core.CompareNodeConfig{
			Engine:      core.Config{HoldTimeout: 20 * time.Millisecond, CacheCapacity: 1 << 16},
			PerCopyCost: 2 * time.Microsecond,
		},
		EdgeProcDelay: time.Microsecond,
		RouterLink:    link,
		CompareLink:   netem.LinkConfig{Bandwidth: 2e9, Delay: 5 * time.Microsecond, QueueLimit: 200},
	}
	comb := core.Build(net, spec, func(i int) *switching.Switch {
		sw := switching.New(sched, switching.Config{Name: "r" + string(rune('0'+i)), ProcDelay: time.Microsecond, ProcQueue: 500})
		if compromise != nil {
			if b := compromise(i); b != nil {
				sw.SetBehavior(b)
			}
		}
		return sw
	})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, core.SideLeft, h1, traffic.HostPort, h1.MAC(), link)
	comb.AttachHost(net, core.SideRight, h2, traffic.HostPort, h2.MAC(), link)
	return &rig{sched: sched, net: net, comb: comb, h1: h1, h2: h2}
}

func TestInlineDeliversExactlyOnce(t *testing.T) {
	r := buildInlineRig(t, 3, nil)
	defer r.comb.Close()
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 1000})
	src.Start()
	r.sched.RunFor(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 {
		t.Fatalf("unique=%d dups=%d sent=%d", st.Unique, st.Duplicates, src.Sent)
	}
	// Copies were combined at the Right middlebox.
	if got := r.comb.Middleboxes[1].Stats().Combined; got != src.Sent {
		t.Fatalf("mb2 combined %d of %d", got, src.Sent)
	}
	// Delivered packets carry no attribution label.
	if r.h2.Stats().RxUnclaimed != 0 {
		t.Fatalf("%d unclaimed packets at h2", r.h2.Stats().RxUnclaimed)
	}
}

func TestInlinePreventsTamper(t *testing.T) {
	r := buildInlineRig(t, 3, func(i int) switching.Behavior {
		if i != 0 {
			return nil
		}
		return &adversary.Modify{
			Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
			Rewrite: []openflow.Action{openflow.SetNwTOS(0xfc)},
		}
	})
	defer r.comb.Close()
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
	src.Start()
	r.sched.RunFor(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d", got, src.Sent)
	}
	if s := r.comb.Middleboxes[1].EngineStats().Suppressed; s == 0 {
		t.Fatal("tampered copies not suppressed")
	}
}

func TestInlineAttributionDefeatsSelfMajority(t *testing.T) {
	// A single malicious router replays each packet 3×. Without
	// attribution labels that would be an instant forged majority; with
	// them the copies all count against one router (and trip the DoS
	// detector).
	r := buildInlineRig(t, 3, func(i int) switching.Behavior {
		if i != 0 {
			return nil
		}
		return adversary.Chain{
			&adversary.Modify{
				Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
				Rewrite: []openflow.Action{openflow.SetNwTOS(0xfc)},
			},
			&adversary.Replay{Match: openflow.MatchAll().WithDlDst(packet.HostMAC(2)), Extra: 2},
		}
	})
	defer r.comb.Close()
	var dosAlarms int
	r.comb.Middleboxes[1].OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventDoS && a.Router == 0 {
			dosAlarms++
		}
	}
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
	src.Start()
	r.sched.RunFor(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d", st.Unique, src.Sent)
	}
	// None of the forged-TOS copies may have been released.
	if st.Duplicates != 0 {
		t.Fatalf("%d duplicates leaked", st.Duplicates)
	}
	if dosAlarms == 0 {
		t.Fatal("self-majority replay not flagged as DoS")
	}
}

func TestInlinePingRTTBelowCentral(t *testing.T) {
	// The middlebox architecture removes the out-of-band detour, so its
	// RTT must sit strictly between Dup and Central.
	rtt := func(mode core.CombinerMode) time.Duration {
		var r *rig
		if mode == core.CombinerInline {
			r = buildInlineRig(t, 3, nil)
		} else {
			r = buildRig(t, 3, mode, nil)
		}
		defer r.comb.Close()
		p := traffic.NewPinger(r.h1, r.h2.Endpoint(0), traffic.PingerConfig{Count: 10, ID: 3})
		var res traffic.PingResult
		p.Run(func(pr traffic.PingResult) { res = pr })
		r.sched.RunFor(2 * time.Second)
		if res.Received != 10 {
			t.Fatalf("mode %v: received %d of 10", mode, res.Received)
		}
		return res.RTT.MeanDuration()
	}
	inline := rtt(core.CombinerInline)
	central := rtt(core.CombinerCentral)
	if inline >= central {
		t.Fatalf("inline RTT %v not below central %v", inline, central)
	}
}

func TestMiddleboxDropsUnattributed(t *testing.T) {
	sched := sim.NewScheduler()
	net := netem.New(sched)
	mb := core.NewMiddlebox(sched, core.MiddleboxConfig{Name: "mb", K: 3, PerCopyCost: time.Microsecond})
	defer mb.Close()
	h := traffic.NewHost(sched, "h", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{})
	feeder := traffic.NewHost(sched, "f", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{})
	net.Add(mb)
	net.Add(h)
	net.Add(feeder)
	net.Connect(feeder, traffic.HostPort, mb, core.MiddleboxNetPort, netem.LinkConfig{})
	net.Connect(h, traffic.HostPort, mb, core.MiddleboxHostPort, netem.LinkConfig{})

	// Untagged and out-of-range tags must never be combined.
	plain := packet.NewUDP(feeder.Endpoint(1), h.Endpoint(2), []byte("x"))
	feeder.Send(plain)
	badTag := plain.Clone()
	badTag.Eth.VLAN = &packet.VLANTag{VID: 999}
	feeder.Send(badTag)
	sched.RunFor(10 * time.Millisecond)

	if got := mb.Stats().Unattributed; got != 2 {
		t.Fatalf("Unattributed = %d, want 2", got)
	}
	if h.Stats().RxPackets != 0 {
		t.Fatal("unattributed packets leaked to the host")
	}
}
